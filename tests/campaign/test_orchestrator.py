"""Orchestrator: crash/resume byte-identity, supervision, verification.

The central property (the reason the journal exists): a campaign killed
after unit *k* and resumed produces artifacts **byte-identical** to an
uninterrupted run under the same scenario and seed — for every k and
several seeds.
"""

import pytest

from repro.campaign.journal import Journal
from repro.campaign.orchestrator import Orchestrator, aggregate_metrics
from repro.campaign.spec import get_spec
from repro.errors import CampaignError
from repro.exitcodes import ExitCode
from repro.faults.scenarios import CampaignFaultPlan


def _run_clean(directory, scenario, seed):
    orch = Orchestrator(
        directory, spec=get_spec("smoke"), scenario=scenario, seed=seed
    )
    return orch.run(), orch


def _artifact_bytes(orch):
    out = {}
    import os

    for name in sorted(os.listdir(orch.tables_dir)):
        with open(os.path.join(orch.tables_dir, name), "rb") as fh:
            out[name] = fh.read()
    with open(orch.manifest_path, "rb") as fh:
        out["manifest.json"] = fh.read()
    return out


# Uninterrupted reference runs, one per (scenario, seed), shared below.
@pytest.fixture(scope="module")
def clean_runs(tmp_path_factory):
    cache = {}

    def get(scenario, seed):
        key = (scenario, seed)
        if key not in cache:
            directory = tmp_path_factory.mktemp("clean") / "campaign"
            code, orch = _run_clean(directory, scenario, seed)
            cache[key] = (code, _artifact_bytes(orch))
        return cache[key]

    return get


class TestCrashResumeByteIdentity:
    @pytest.mark.parametrize("seed", [0, 7])
    @pytest.mark.parametrize("crash_after", [0, 1, 2, 3])
    def test_kill_after_unit_k_then_resume_matches_clean(
        self, tmp_path, clean_runs, crash_after, seed
    ):
        scenario = "plane-outage"
        clean_code, clean_bytes = clean_runs(scenario, seed)
        plan = CampaignFaultPlan(
            scenario="crash-midrun", seed=seed, crash_after_unit=crash_after
        )
        orch = Orchestrator(
            tmp_path / "c",
            spec=get_spec("smoke"),
            scenario=scenario,
            seed=seed,
            campaign_plan=plan,
        )
        assert orch.run() == ExitCode.INTERRUPTED
        resumed = Orchestrator(tmp_path / "c")
        assert resumed.resume() == clean_code
        assert _artifact_bytes(resumed) == clean_bytes

    @pytest.mark.parametrize("seed", [0, 3])
    def test_journal_truncate_then_resume_matches_clean(
        self, tmp_path, clean_runs, seed
    ):
        scenario = "plane-outage"
        clean_code, clean_bytes = clean_runs(scenario, seed)
        plan = CampaignFaultPlan(
            scenario="journal-truncate",
            seed=seed,
            crash_after_unit=1,
            truncate_journal=True,
        )
        orch = Orchestrator(
            tmp_path / "c",
            spec=get_spec("smoke"),
            scenario=scenario,
            seed=seed,
            campaign_plan=plan,
        )
        assert orch.run() == ExitCode.INTERRUPTED
        resumed = Orchestrator(tmp_path / "c")
        assert resumed.resume() == clean_code
        assert _artifact_bytes(resumed) == clean_bytes

    def test_interrupt_mid_unit_then_resume_matches_clean(
        self, tmp_path, clean_runs, monkeypatch
    ):
        scenario, seed = "plane-outage", 0
        clean_code, clean_bytes = clean_runs(scenario, seed)
        import repro.campaign.orchestrator as mod

        real = mod.execute_unit
        calls = []

        def interrupting(unit, scn, sd, deps, profile=False):
            calls.append(unit.id)
            if unit.id == "table3:dawn":
                raise KeyboardInterrupt
            return real(unit, scn, sd, deps, profile)

        monkeypatch.setattr(mod, "execute_unit", interrupting)
        orch = Orchestrator(
            tmp_path / "c", spec=get_spec("smoke"), scenario=scenario, seed=seed
        )
        assert orch.run() == ExitCode.INTERRUPTED
        journal = Journal.load(orch.journal_path)
        assert journal.of_type("interrupted")[0]["during"] == "table3:dawn"
        monkeypatch.setattr(mod, "execute_unit", real)
        resumed = Orchestrator(tmp_path / "c")
        assert resumed.resume() == clean_code
        assert _artifact_bytes(resumed) == clean_bytes


class TestResumeSelectivity:
    def test_truncated_journal_reruns_only_the_torn_unit_onward(self, tmp_path):
        plan = CampaignFaultPlan(
            scenario="journal-truncate",
            seed=0,
            crash_after_unit=1,
            truncate_journal=True,
        )
        orch = Orchestrator(
            tmp_path / "c", spec=get_spec("smoke"), campaign_plan=plan
        )
        orch.run()
        # The torn record was table3:dawn's unit-done: its completion is
        # lost, but table3:aurora's intact record must be honoured.
        resumed = Orchestrator(tmp_path / "c")
        resumed.resume()
        resume_rec = Journal.load(orch.journal_path).of_type("resume")[0]
        assert resume_rec["skipped"] == ["table3:aurora"]
        assert resume_rec["rerun"] == [
            "table3:dawn",
            "table3:render",
            "campaign:summary",
        ]
        assert resume_rec["dropped_records"] == 1

    def test_corrupt_store_payload_reruns_only_that_unit(self, tmp_path):
        code, orch = _run_clean(tmp_path / "c", None, 0)
        assert code == ExitCode.OK
        before = _artifact_bytes(orch)
        # Tamper with one completed payload on disk.
        with open(orch.store.path("table3:aurora"), "a") as fh:
            fh.write("\n")
        resumed = Orchestrator(tmp_path / "c")
        assert resumed.resume() == ExitCode.OK
        resume_rec = Journal.load(orch.journal_path).of_type("resume")[-1]
        assert resume_rec["corrupt_store"] == ["table3:aurora"]
        assert resume_rec["rerun"] == ["table3:aurora"]
        assert _artifact_bytes(resumed) == before

    def test_resume_of_complete_campaign_is_a_noop(self, tmp_path):
        code, orch = _run_clean(tmp_path / "c", None, 0)
        n_records = len(Journal.load(orch.journal_path))
        resumed = Orchestrator(tmp_path / "c")
        assert resumed.resume() == code
        assert len(Journal.load(orch.journal_path)) == n_records


class TestSupervision:
    def test_watchdog_demotes_overbudget_units(self, tmp_path):
        orch = Orchestrator(
            tmp_path / "c", spec=get_spec("smoke"), unit_timeout_s=1e-12
        )
        assert orch.run() == ExitCode.UNHEALTHY
        journal = Journal.load(orch.journal_path)
        done = {r["unit"]: r for r in journal.of_type("unit-done")}
        # Measuring units consume simulated time and trip the watchdog;
        # render units are instantaneous and stay healthy.
        assert done["table3:aurora"]["status"] == "FAILED"
        assert "watchdog" in done["table3:aurora"]
        assert done["table3:render"]["status"] == "FAILED"  # dep status

    def test_deadline_stops_scheduling_resumably(self, tmp_path):
        orch = Orchestrator(
            tmp_path / "c", spec=get_spec("smoke"), deadline_s=1e-9
        )
        assert orch.run() == ExitCode.INTERRUPTED
        journal = Journal.load(orch.journal_path)
        assert journal.of_type("deadline")
        # Without the deadline, resume completes the campaign.
        resumed = Orchestrator(tmp_path / "c")
        assert resumed.resume() == ExitCode.OK

    def test_second_run_in_same_directory_refused(self, tmp_path):
        _run_clean(tmp_path / "c", None, 0)
        orch = Orchestrator(tmp_path / "c", spec=get_spec("smoke"))
        with pytest.raises(CampaignError, match="resume"):
            orch.run()

    def test_resume_without_journal_refused(self, tmp_path):
        with pytest.raises(CampaignError):
            Orchestrator(tmp_path / "empty").resume()

    def test_resume_refuses_changed_spec(self, tmp_path):
        directory = tmp_path / "c"
        directory.mkdir()
        journal = Journal(directory / "journal.jsonl")
        journal.append(
            "campaign-start",
            spec="smoke",
            spec_digest="0" * 64,
            scenario=None,
            campaign_scenario=None,
            seed=0,
            units=[],
        )
        with pytest.raises(CampaignError, match="digest"):
            Orchestrator(directory).resume()


class TestVerify:
    def test_complete_campaign_verifies_clean(self, tmp_path):
        _, orch = _run_clean(tmp_path / "c", None, 0)
        assert Orchestrator(tmp_path / "c").verify() == ExitCode.OK

    def test_incomplete_campaign_is_resumable(self, tmp_path):
        plan = CampaignFaultPlan(
            scenario="crash-midrun", seed=0, crash_after_unit=0
        )
        Orchestrator(
            tmp_path / "c", spec=get_spec("smoke"), campaign_plan=plan
        ).run()
        assert Orchestrator(tmp_path / "c").verify() == ExitCode.INTERRUPTED

    def test_torn_journal_is_corrupt(self, tmp_path):
        _, orch = _run_clean(tmp_path / "c", None, 0)
        Journal.load(orch.journal_path)  # sanity: loads
        with open(orch.journal_path) as fh:
            text = fh.read()
        with open(orch.journal_path, "w") as fh:
            fh.write(text[:-25])
        assert Orchestrator(tmp_path / "c").verify() == ExitCode.CORRUPT

    def test_tampered_store_is_corrupt(self, tmp_path):
        _, orch = _run_clean(tmp_path / "c", None, 0)
        with open(orch.store.path("table3:dawn"), "a") as fh:
            fh.write(" ")
        assert Orchestrator(tmp_path / "c").verify() == ExitCode.CORRUPT


class TestIdempotentMetricAttribution:
    PAYLOAD = {
        "unit": "table3:aurora",
        "metrics": {
            "retry.count": {
                "kind": "counter",
                "samples": [
                    {"labels": {"unit": "table3:aurora"}, "value": 3.0}
                ],
            },
            "rep.time_us": {"kind": "histogram", "samples": []},
        },
    }

    def test_same_unit_merged_twice_counts_once(self):
        merged = aggregate_metrics([self.PAYLOAD, self.PAYLOAD])
        assert merged.value("retry.count", unit="table3:aurora") == 3.0

    def test_distinct_units_accumulate(self):
        other = {
            "unit": "table3:dawn",
            "metrics": {
                "retry.count": {
                    "kind": "counter",
                    "samples": [
                        {"labels": {"unit": "table3:dawn"}, "value": 2.0}
                    ],
                }
            },
        }
        merged = aggregate_metrics([self.PAYLOAD, other])
        assert merged.counter("retry.count").total() == 5.0

    def test_campaign_metrics_attribute_by_unit(self, tmp_path):
        """A faulty campaign's counters carry unit labels exactly once."""
        _, orch = _run_clean(tmp_path / "c", "device-loss", 0)
        payloads = [
            orch.store.get(u.id) for u in orch.spec.execution_order()
        ]
        merged = aggregate_metrics(payloads)
        faults = merged.counter("fault.count").samples()
        assert faults, "device-loss must record injected faults"
        measuring = {"table3:aurora", "table3:dawn"}
        for labels, _ in faults:
            assert dict(labels)["unit"] in measuring
        # Re-aggregating after a duplicate merge changes nothing: the
        # duplicated unit's earlier samples are dropped first.
        again = aggregate_metrics(payloads + payloads[:1])
        for name in merged.names():
            assert (
                again.counter(name).total() == merged.counter(name).total()
            ), name

    def test_drop_label_after_resumed_unit_reprofiles(self):
        """Re-executing a profiled unit (the resume path) must neither
        double-count its metrics nor change its profile digest."""
        from repro.campaign.spec import get_spec
        from repro.campaign.units import execute_unit

        unit = get_spec("smoke").unit("table3:aurora")
        first = execute_unit(unit, "device-loss", 0, {}, profile=True)
        second = execute_unit(unit, "device-loss", 0, {}, profile=True)
        assert first["profile"]["digest"] == second["profile"]["digest"]
        assert first == second
        merged = aggregate_metrics([first])
        remerged = aggregate_metrics([first, second])
        for name in merged.names():
            assert (
                remerged.counter(name).total()
                == merged.counter(name).total()
            ), name
