"""Parallel campaign execution: the serial/parallel determinism contract.

The property under test: for any worker count N and any crash point,
``--jobs N`` produces journal, store, manifest, and table artifacts
**byte-identical** to a serial run — and a campaign interrupted under
parallel execution resumes (serially or in parallel) to the same bytes.
"""

import os

import pytest

import repro.campaign.orchestrator as orch_mod
import repro.campaign.scheduler as sched_mod
from repro.campaign.journal import Journal
from repro.campaign.orchestrator import Orchestrator
from repro.campaign.scheduler import JOBS_ENV, DagScheduler, resolve_jobs
from repro.campaign.spec import get_spec
from repro.errors import CampaignError, ReproError
from repro.exitcodes import ExitCode
from repro.faults.scenarios import CampaignFaultPlan


def _tree_bytes(directory, exclude=()):
    """Every artifact byte under *directory*, keyed by relative path.

    ``live.ndjson`` is always skipped: the live telemetry stream is
    wall-clock by contract (docs/observability.md) and never part of
    the byte-identity story.
    """
    out = {}
    for root, _, files in os.walk(directory):
        for name in files:
            full = os.path.join(root, name)
            rel = os.path.relpath(full, directory)
            if rel in exclude or name == "live.ndjson":
                continue
            with open(full, "rb") as fh:
                out[rel] = fh.read()
    return out


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_jobs(None) == 1

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "3")
        assert resolve_jobs(None) == 3

    def test_explicit_flag_beats_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "3")
        assert resolve_jobs(2) == 2

    def test_non_integer_env_rejected(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "lots")
        with pytest.raises(CampaignError, match="integer"):
            resolve_jobs(None)

    def test_nonpositive_jobs_rejected(self):
        with pytest.raises(CampaignError, match=">= 1"):
            resolve_jobs(0)

    def test_env_reaches_the_orchestrator(self, tmp_path, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "2")
        orch = Orchestrator(tmp_path / "c", spec=get_spec("smoke"))
        assert orch.jobs == 2


class TestWaves:
    def test_waves_partition_respects_dependencies(self):
        spec = get_spec("paper")
        waves = spec.waves()
        depth = {u.id: i for i, wave in enumerate(waves) for u in wave}
        assert len(depth) == len(spec.execution_order())
        for unit in spec.execution_order():
            for dep in unit.deps:
                assert depth[dep] < depth[unit.id]

    def test_smoke_measuring_units_share_the_first_wave(self):
        waves = get_spec("smoke").waves()
        assert {u.id for u in waves[0]} == {"table3:aurora", "table3:dawn"}
        assert [u.id for u in waves[1]] == ["table3:render"]
        assert [u.id for u in waves[2]] == ["campaign:summary"]


class TestParallelByteIdentity:
    @pytest.mark.parametrize("scenario,seed", [(None, 0), ("plane-outage", 7)])
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_jobs_n_matches_serial(self, tmp_path, jobs, scenario, seed):
        serial = Orchestrator(
            tmp_path / "s", spec=get_spec("smoke"), scenario=scenario, seed=seed
        )
        code = serial.run()
        parallel = Orchestrator(
            tmp_path / "p",
            spec=get_spec("smoke"),
            scenario=scenario,
            seed=seed,
            jobs=jobs,
        )
        assert parallel.run() == code
        assert _tree_bytes(tmp_path / "p") == _tree_bytes(tmp_path / "s")

    def test_watchdog_demotions_match_serial(self, tmp_path):
        serial = Orchestrator(
            tmp_path / "s", spec=get_spec("smoke"), unit_timeout_s=1e-12
        )
        code = serial.run()
        assert code == ExitCode.UNHEALTHY
        parallel = Orchestrator(
            tmp_path / "p", spec=get_spec("smoke"), unit_timeout_s=1e-12, jobs=4
        )
        assert parallel.run() == code
        assert _tree_bytes(tmp_path / "p") == _tree_bytes(tmp_path / "s")

    def test_failed_unit_propagation_matches_serial(self, tmp_path, monkeypatch):
        real = sched_mod.execute_unit

        def flaky(unit, scenario, seed, deps, profile=False):
            if unit.id == "table3:dawn":
                raise ReproError("injected benchmark failure")
            return real(unit, scenario, seed, deps, profile)

        # Serial runs resolve execute_unit through the orchestrator
        # module, workers through the scheduler module; fork inherits
        # the patched parent state.
        monkeypatch.setattr(orch_mod, "execute_unit", flaky)
        monkeypatch.setattr(sched_mod, "execute_unit", flaky)
        serial = Orchestrator(tmp_path / "s", spec=get_spec("smoke"))
        code = serial.run()
        assert code == ExitCode.UNHEALTHY
        parallel = Orchestrator(tmp_path / "p", spec=get_spec("smoke"), jobs=2)
        assert parallel.run() == code
        assert _tree_bytes(tmp_path / "p") == _tree_bytes(tmp_path / "s")


class TestCrashResumeUnderParallel:
    def _clean_serial(self, directory):
        orch = Orchestrator(directory, spec=get_spec("smoke"))
        return orch.run(), orch

    @pytest.mark.parametrize("crash_after", [0, 2])
    @pytest.mark.parametrize("resume_jobs", [1, 4])
    def test_crash_under_jobs4_then_resume(
        self, tmp_path, crash_after, resume_jobs
    ):
        clean_code, clean = self._clean_serial(tmp_path / "s")
        plan = CampaignFaultPlan(
            scenario="crash-midrun", seed=0, crash_after_unit=crash_after
        )
        orch = Orchestrator(
            tmp_path / "c", spec=get_spec("smoke"), campaign_plan=plan, jobs=4
        )
        assert orch.run() == ExitCode.INTERRUPTED
        # Crashing at unit k under --jobs 4 leaves the exact journal a
        # serial run crashing at unit k would: commit order is
        # execution-order regardless of which workers had already
        # finished later units.
        serial_crash = Orchestrator(
            tmp_path / "sc", spec=get_spec("smoke"), campaign_plan=plan
        )
        assert serial_crash.run() == ExitCode.INTERRUPTED
        with open(orch.journal_path, "rb") as fh:
            parallel_journal = fh.read()
        with open(serial_crash.journal_path, "rb") as fh:
            serial_journal = fh.read()
        assert parallel_journal == serial_journal
        resumed = Orchestrator(tmp_path / "c", jobs=resume_jobs)
        assert resumed.resume() == clean_code
        # Everything except the journal and event stream (which record
        # the interruption + resume as history) is byte-identical to
        # the uninterrupted serial run.
        exclude = ("journal.jsonl", "events.ndjson")
        assert _tree_bytes(tmp_path / "c", exclude) == _tree_bytes(
            tmp_path / "s", exclude
        )

    def test_torn_journal_under_parallel_heals_on_resume(self, tmp_path):
        clean_code, clean = self._clean_serial(tmp_path / "s")
        plan = CampaignFaultPlan(
            scenario="journal-truncate",
            seed=0,
            crash_after_unit=1,
            truncate_journal=True,
        )
        orch = Orchestrator(
            tmp_path / "c", spec=get_spec("smoke"), campaign_plan=plan, jobs=2
        )
        assert orch.run() == ExitCode.INTERRUPTED
        resumed = Orchestrator(tmp_path / "c", jobs=2)
        assert resumed.resume() == clean_code
        Journal.load(resumed.journal_path, strict=True)
        exclude = ("journal.jsonl", "events.ndjson")
        assert _tree_bytes(tmp_path / "c", exclude) == _tree_bytes(
            tmp_path / "s", exclude
        )

    def test_deadline_under_parallel_is_resumable(self, tmp_path):
        orch = Orchestrator(
            tmp_path / "c", spec=get_spec("smoke"), deadline_s=1e-9, jobs=4
        )
        assert orch.run() == ExitCode.INTERRUPTED
        assert Journal.load(orch.journal_path).of_type("deadline")
        resumed = Orchestrator(tmp_path / "c")
        assert resumed.resume() == ExitCode.OK


class TestWorkerFailureContainment:
    def test_unexpected_worker_exception_is_a_campaign_error(
        self, monkeypatch
    ):
        def boom(unit, scenario, seed, deps, profile=False):
            raise RuntimeError("simulated worker bug")

        monkeypatch.setattr(sched_mod, "execute_unit", boom)
        scheduler = DagScheduler(
            get_spec("smoke"), scenario=None, seed=0, profile=False, jobs=2
        )
        with pytest.raises(CampaignError, match="crashed in a worker"):
            list(scheduler.outcomes())

    def test_preloaded_units_are_not_reexecuted(self, tmp_path):
        """Resume under --jobs only forks work for the incomplete units."""
        plan = CampaignFaultPlan(
            scenario="crash-midrun", seed=0, crash_after_unit=2
        )
        orch = Orchestrator(
            tmp_path / "c", spec=get_spec("smoke"), campaign_plan=plan
        )
        assert orch.run() == ExitCode.INTERRUPTED
        resumed = Orchestrator(tmp_path / "c", jobs=4)
        spec = get_spec("smoke")
        preloaded = {
            rec["unit"]: resumed.store.get(rec["unit"])
            for rec in Journal.load(resumed.journal_path).of_type("unit-done")
        }
        scheduler = DagScheduler(
            spec,
            scenario=None,
            seed=0,
            profile=False,
            jobs=4,
            preloaded=preloaded,
        )
        assert [u.id for u in scheduler.pending] == ["campaign:summary"]
        outcomes = list(scheduler.outcomes())
        assert [o.unit.id for o in outcomes] == ["campaign:summary"]
