"""Worker supervision: respawn, quarantine, hang kills, degradation.

These are the unit-level contracts of the self-healing scheduler; the
byte-identity property under random kills lives in
``tests/properties/test_prop_chaos.py``.
"""

import multiprocessing

import pytest

import repro.campaign.scheduler as sched_mod
from repro.campaign.scheduler import DagScheduler, scheduler_selfcheck
from repro.campaign.spec import get_spec
from repro.campaign.supervisor import (
    DEFAULT_MAX_RESPAWNS,
    SupervisionStats,
    WorkerSupervisor,
)
from repro.errors import CampaignError, ReproError, WorkerCrashError
from repro.faults.process import WorkerFaultPlan


def _campaign_children():
    return [
        p
        for p in multiprocessing.active_children()
        if p.name.startswith("campaign-worker-")
    ]


def _scheduler(plan=None, **kwargs):
    defaults = dict(
        scenario=None, seed=0, profile=False, jobs=2, log=lambda _m: None
    )
    defaults.update(kwargs)
    return DagScheduler(get_spec("smoke"), worker_faults=plan, **defaults)


def _unit_ids(spec_name="smoke"):
    return [u.id for u in get_spec(spec_name).execution_order()]


class TestSupervisorConstruction:
    def test_rejects_empty_pool(self):
        with pytest.raises(WorkerCrashError, match=">= 1 worker"):
            WorkerSupervisor(0, worker_body=lambda *a: None)

    def test_rejects_negative_budget(self):
        with pytest.raises(WorkerCrashError, match="max-respawns"):
            WorkerSupervisor(1, worker_body=lambda *a: None, max_respawns=-1)

    def test_rejects_nonpositive_poison_threshold(self):
        with pytest.raises(WorkerCrashError, match="poison"):
            WorkerSupervisor(1, worker_body=lambda *a: None, poison_crashes=0)

    def test_default_budget(self):
        sup = WorkerSupervisor(1, worker_body=lambda *a: None)
        assert sup.max_respawns == DEFAULT_MAX_RESPAWNS


class TestRespawn:
    def test_killed_worker_is_respawned_and_unit_reexecuted(self):
        uids = _unit_ids()
        plan = WorkerFaultPlan("worker-kill", 0, kills={uids[0]: (1, "start")})
        scheduler = _scheduler(plan)
        outcomes = list(scheduler.outcomes())
        assert [o.unit.id for o in outcomes] == uids
        assert all(o.error is None for o in outcomes)
        assert scheduler.stats.respawns == 1
        assert scheduler.stats.crashes == 1
        # The victim needed two dispatches, everyone else one.
        assert scheduler.stats.attempts[uids[0]] == 2
        assert all(
            scheduler.stats.attempts[u] == 1 for u in uids[1:]
        )
        assert not scheduler.stats.quarantined
        assert not scheduler.stats.degraded

    def test_all_dead_workers_are_reported_not_just_the_first(self):
        # Two victims on independent units: both deaths must be recorded
        # (the old scheduler reported only dead[0] and aborted).
        uids = _unit_ids()
        plan = WorkerFaultPlan(
            "worker-kill",
            0,
            kills={uids[0]: (1, "start"), uids[1]: (1, "start")},
        )
        scheduler = _scheduler(plan)
        outcomes = list(scheduler.outcomes())
        assert len(outcomes) == len(uids)
        assert scheduler.stats.respawns == 2
        assert len(scheduler.stats.worker_exits) == 2
        assert all(code == -9 for _, code in scheduler.stats.worker_exits)

    def test_queued_result_of_a_dead_worker_is_committed_not_rerun(self):
        # Kill *after* the result is flushed: the supervisor must drain
        # and commit the queued outcome instead of re-executing (the
        # swallowed-result bug).
        uids = _unit_ids()
        plan = WorkerFaultPlan("worker-kill", 0, kills={uids[0]: (1, "done")})
        scheduler = _scheduler(plan)
        outcomes = list(scheduler.outcomes())
        assert [o.unit.id for o in outcomes] == uids
        assert all(o.error is None for o in outcomes)
        # One dispatch only: the flushed result survived the kill.  (A
        # *different* unit may show a second attempt — the parent can
        # dispatch it to the dying worker before noticing the SIGKILL —
        # but that heals transparently and is not asserted on.)
        assert scheduler.stats.attempts[uids[0]] == 1
        assert not scheduler.stats.quarantined


class TestQuarantine:
    def test_poison_unit_quarantined_after_k_crashes(self):
        uids = _unit_ids()
        plan = WorkerFaultPlan("worker-poison", 0, kills={uids[0]: (3, "start")})
        scheduler = _scheduler(plan)
        outcomes = {o.unit.id: o for o in scheduler.outcomes()}
        assert len(outcomes) == len(uids)  # the DAG still completed
        poisoned = outcomes[uids[0]]
        assert poisoned.quarantined == (-9, -9, -9)
        assert poisoned.payload["status"] == "FAILED"
        assert poisoned.payload["quarantined"] == [-9, -9, -9]
        assert "quarantined after crashing 3 worker" in poisoned.error
        assert scheduler.stats.quarantined == {uids[0]: [-9, -9, -9]}

    def test_custom_poison_threshold(self):
        uids = _unit_ids()
        plan = WorkerFaultPlan("worker-poison", 0, kills={uids[0]: (2, "start")})
        scheduler = _scheduler(plan, poison_crashes=2)
        outcomes = {o.unit.id: o for o in scheduler.outcomes()}
        assert outcomes[uids[0]].quarantined == (-9, -9)

    def test_transient_crash_below_threshold_recovers_cleanly(self):
        # Two crashes against a threshold of three: healed, not poisoned.
        uids = _unit_ids()
        plan = WorkerFaultPlan("worker-poison", 0, kills={uids[0]: (2, "start")})
        scheduler = _scheduler(plan)
        outcomes = {o.unit.id: o for o in scheduler.outcomes()}
        assert outcomes[uids[0]].error is None
        assert not scheduler.stats.quarantined
        assert scheduler.stats.attempts[uids[0]] == 3


class TestHangDetection:
    def test_hung_worker_is_killed_and_unit_retried(self):
        uids = _unit_ids()
        plan = WorkerFaultPlan("worker-hang", 0, hangs={uids[0]: 1})
        scheduler = _scheduler(plan, hang_timeout_s=1.0)
        outcomes = list(scheduler.outcomes())
        assert [o.unit.id for o in outcomes] == uids
        assert all(o.error is None for o in outcomes)
        assert scheduler.stats.hang_kills == 1
        assert scheduler.stats.respawns == 1
        assert scheduler.stats.attempts[uids[0]] == 2

    def test_no_hang_detection_without_deadline(self):
        # hang_timeout_s=None (the default) never kills slow workers.
        scheduler = _scheduler()
        outcomes = list(scheduler.outcomes())
        assert scheduler.stats.hang_kills == 0
        assert len(outcomes) == len(_unit_ids())


class TestDegradedMode:
    def test_exhausted_budget_drains_serially(self):
        uids = _unit_ids()
        plan = WorkerFaultPlan("worker-poison", 0, kills={uids[0]: (2, "start")})
        scheduler = _scheduler(plan, max_respawns=0)
        outcomes = {o.unit.id: o for o in scheduler.outcomes()}
        # Both workers died, no respawns allowed: the drain still
        # completes every unit (faults do not fire in-process).
        assert len(outcomes) == len(uids)
        assert all(o.error is None for o in outcomes.values())
        assert scheduler.stats.degraded
        assert scheduler.stats.respawns == 0

    def test_degraded_drain_propagates_unit_failures_normally(self, monkeypatch):
        def boom(unit, scenario, seed, deps, profile=False):
            raise ReproError(f"no result for {unit.id}")

        monkeypatch.setattr(sched_mod, "execute_unit", boom)
        uids = _unit_ids()
        plan = WorkerFaultPlan("worker-kill", 0, kills={uids[0]: (1, "start")})
        scheduler = _scheduler(plan, max_respawns=0)
        outcomes = list(scheduler.outcomes())
        assert len(outcomes) == len(uids)
        assert all(o.error is not None for o in outcomes)


class TestWorkerCrashStillFatal:
    def test_unexpected_exception_in_worker_raises(self, monkeypatch):
        def boom(unit, scenario, seed, deps, profile=False):
            raise RuntimeError("programming error")

        monkeypatch.setattr(sched_mod, "execute_unit", boom)
        scheduler = _scheduler()
        with pytest.raises(CampaignError, match="crashed in a worker"):
            list(scheduler.outcomes())

    def test_worker_crash_error_is_a_campaign_error(self):
        assert issubclass(WorkerCrashError, CampaignError)


class TestNoLeakedChildren:
    def test_clean_run_leaves_no_children(self):
        scheduler = _scheduler()
        list(scheduler.outcomes())
        assert _campaign_children() == []

    def test_crashed_run_leaves_no_children(self, monkeypatch):
        def boom(unit, scenario, seed, deps, profile=False):
            raise RuntimeError("programming error")

        monkeypatch.setattr(sched_mod, "execute_unit", boom)
        scheduler = _scheduler(jobs=4)
        with pytest.raises(CampaignError):
            list(scheduler.outcomes())
        assert _campaign_children() == []

    def test_chaotic_run_leaves_no_children(self):
        uids = _unit_ids()
        plan = WorkerFaultPlan("worker-poison", 0, kills={uids[0]: (3, "start")})
        scheduler = _scheduler(plan)
        list(scheduler.outcomes())
        assert _campaign_children() == []


class TestSupervisionStats:
    def test_to_doc_is_deterministic_fields_only(self):
        stats = SupervisionStats(
            respawns=2,
            crashes=3,
            hang_kills=1,
            degraded=True,
            worker_exits=[("campaign-worker-0", -9)],
            quarantined={"u": [-9, -9]},
        )
        doc = stats.to_doc()
        assert doc == {
            "respawns": 2,
            "hang_kills": 1,
            "degraded": True,
            "quarantined": {"u": [-9, -9]},
        }

    def test_eventful_only_for_visible_outcomes(self):
        assert not SupervisionStats(respawns=5, crashes=5).eventful()
        assert SupervisionStats(degraded=True).eventful()
        assert SupervisionStats(quarantined={"u": [-9]}).eventful()


class TestSchedulerSelfcheck:
    def test_selfcheck_passes(self):
        checks = scheduler_selfcheck()
        assert checks, "selfcheck produced no results"
        failed = [c for c in checks if not c.passed]
        assert not failed, [f"{c.name}: {c.detail}" for c in failed]
        names = {c.name for c in checks}
        assert "scheduler.survives-worker-death" in names
        assert "scheduler.no-leaked-children" in names
