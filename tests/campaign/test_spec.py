"""Campaign specs: DAG validation, digests, the paper/smoke schedules."""

import pytest

from repro.campaign.spec import (
    CampaignSpec,
    CampaignUnit,
    SPEC_NAMES,
    get_spec,
)
from repro.errors import CampaignError


class TestValidation:
    def test_duplicate_unit_ids_rejected(self):
        u = CampaignUnit(id="a", kind="static", table="table1")
        with pytest.raises(CampaignError):
            CampaignSpec("x", (u, u))

    def test_forward_dependency_rejected(self):
        late = CampaignUnit(id="late", kind="static", table="table1")
        early = CampaignUnit(
            id="early", kind="render", table="table2", deps=("late",)
        )
        with pytest.raises(CampaignError):
            CampaignSpec("x", (early, late))

    def test_unknown_kind_rejected(self):
        with pytest.raises(CampaignError):
            CampaignUnit(id="a", kind="dance")

    def test_unknown_unit_lookup(self):
        with pytest.raises(CampaignError):
            get_spec("smoke").unit("nope")

    def test_unknown_spec_name(self):
        with pytest.raises(CampaignError):
            get_spec("nope")


class TestDigest:
    def test_digest_is_stable(self):
        assert get_spec("paper").digest() == get_spec("paper").digest()

    def test_digest_distinguishes_specs(self):
        assert get_spec("paper").digest() != get_spec("smoke").digest()


class TestSchedules:
    def test_spec_names(self):
        assert SPEC_NAMES == ("paper", "smoke")

    def test_smoke_spec_shape(self):
        spec = get_spec("smoke")
        assert [u.id for u in spec.execution_order()] == [
            "table3:aurora",
            "table3:dawn",
            "table3:render",
            "campaign:summary",
        ]
        assert spec.systems() == ["aurora", "dawn"]

    def test_paper_spec_covers_every_artifact(self):
        spec = get_spec("paper")
        artifacts = {u.artifact for u in spec.units if u.artifact}
        assert artifacts == {
            "table1.txt",
            "table2.txt",
            "table3.txt",
            "table4.txt",
            "table5.txt",
            "table6.txt",
            "fig1.txt",
            "fig2.txt",
            "fig3.txt",
            "fig4.txt",
            "summary.txt",
        }

    def test_paper_spec_measures_all_four_systems(self):
        assert get_spec("paper").systems() == [
            "aurora",
            "dawn",
            "jlse-h100",
            "jlse-mi250",
        ]

    def test_deps_precede_units(self):
        for spec_name in SPEC_NAMES:
            seen = set()
            for unit in get_spec(spec_name).execution_order():
                assert all(d in seen for d in unit.deps)
                seen.add(unit.id)
