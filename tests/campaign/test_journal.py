"""Write-ahead journal: checksums, tail recovery, atomic healing."""

import json

import pytest

import repro.campaign.journal as journal_mod
from repro.campaign.journal import WRITE_VERSION, Journal, JournalRecord
from repro.errors import CampaignCorruptError


@pytest.fixture
def path(tmp_path):
    return tmp_path / "journal.jsonl"


class TestRecordIntegrity:
    def test_sealed_record_is_intact(self):
        rec = JournalRecord.seal({"v": 1, "type": "unit-start", "unit": "x"})
        assert rec.intact()
        assert len(rec["sha256"]) == 64

    def test_tampered_record_detected(self):
        rec = JournalRecord.seal({"v": 1, "type": "unit-start", "unit": "x"})
        rec["unit"] = "y"
        assert not rec.intact()

    def test_checksum_excludes_itself(self):
        rec = JournalRecord.seal({"v": 1, "type": "resume"})
        resealed = JournalRecord.seal(dict(rec))
        assert resealed["sha256"] == rec["sha256"]


class TestAppendAndLoad:
    def test_roundtrip(self, path):
        j = Journal(path)
        j.append("campaign-start", spec="smoke", seed=0)
        j.append("unit-start", unit="a")
        j.append("unit-done", unit="a", digest="d" * 64, status="OK")
        loaded = Journal.load(path)
        assert len(loaded) == 3
        assert loaded.dropped_tail == 0
        assert [r["type"] for r in loaded.records] == [
            "campaign-start",
            "unit-start",
            "unit-done",
        ]

    def test_unknown_record_type_rejected_at_append(self, path):
        with pytest.raises(ValueError):
            Journal(path).append("nonsense")

    def test_missing_file_loads_empty(self, path):
        j = Journal.load(path)
        assert len(j) == 0 and j.dropped_tail == 0

    def test_of_type_filters(self, path):
        j = Journal(path)
        j.append("unit-start", unit="a")
        j.append("unit-done", unit="a", digest="d", status="OK")
        j.append("unit-start", unit="b")
        assert [r["unit"] for r in j.of_type("unit-start")] == ["a", "b"]


class TestCorruptTail:
    def _journal_with_three(self, path):
        j = Journal(path)
        j.append("campaign-start", spec="smoke", seed=0)
        j.append("unit-done", unit="a", digest="d" * 64, status="OK")
        j.append("unit-done", unit="b", digest="e" * 64, status="OK")
        return j

    def test_truncated_last_record_is_detected_and_dropped(self, path):
        j = self._journal_with_three(path)
        j.truncate_tail()
        loaded = Journal.load(path)
        assert len(loaded) == 2
        assert loaded.dropped_tail == 1
        # Only the torn record is lost; the prefix survives verbatim.
        assert [r["unit"] for r in loaded.of_type("unit-done")] == ["a"]

    def test_strict_load_raises_on_torn_record(self, path):
        j = self._journal_with_three(path)
        j.truncate_tail()
        with pytest.raises(CampaignCorruptError):
            Journal.load(path, strict=True)

    def test_flipped_byte_mid_journal_drops_suffix(self, path):
        self._journal_with_three(path)
        lines = path.read_text().splitlines()
        doc = json.loads(lines[1])
        doc["digest"] = "f" * 64  # checksum now wrong
        lines[1] = json.dumps(doc, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        loaded = Journal.load(path)
        assert len(loaded) == 1
        assert loaded.dropped_tail == 2

    def test_append_after_recovery_heals_the_file(self, path):
        j = self._journal_with_three(path)
        j.truncate_tail()
        recovered = Journal.load(path)
        recovered.append("resume", skipped=["a"], rerun=["b"])
        # The rewritten journal is fully intact again.
        healed = Journal.load(path, strict=True)
        assert [r["type"] for r in healed.records] == [
            "campaign-start",
            "unit-done",
            "resume",
        ]

    def test_torn_first_record_after_campaign_start_heals(self, path):
        """The boundary case: the torn record is the *first* record after
        the header — the crash happened while journalling the very first
        unit.  The campaign-start prefix must survive and the next append
        must heal the file back to full integrity."""
        j = Journal(path)
        j.append("campaign-start", spec="smoke", seed=0)
        j.append("unit-start", unit="a")
        j.truncate_tail()
        loaded = Journal.load(path)
        assert len(loaded) == 1
        assert loaded.dropped_tail == 1
        assert loaded.records[0]["type"] == "campaign-start"
        loaded.append("unit-start", unit="a")
        healed = Journal.load(path, strict=True)
        assert [r["type"] for r in healed.records] == [
            "campaign-start",
            "unit-start",
        ]

    def test_torn_very_first_record_loads_empty_and_heals(self, path):
        """Even the campaign-start record itself can tear (crash during
        the very first append).  The journal then loads empty — the
        resume CLI reports 'no campaign to resume' — and a fresh run can
        heal the file from scratch."""
        j = Journal(path)
        j.append("campaign-start", spec="smoke", seed=0)
        j.truncate_tail()
        loaded = Journal.load(path)
        assert len(loaded) == 0
        assert loaded.dropped_tail == 1
        loaded.append("campaign-start", spec="smoke", seed=0)
        healed = Journal.load(path, strict=True)
        assert [r["type"] for r in healed.records] == ["campaign-start"]

    def test_record_missing_trailing_newline_is_torn(self, path):
        """A record that parses and checksums but lost its newline is a
        torn append: trusting it would corrupt the next write."""
        self._journal_with_three(path)
        text = path.read_text()
        assert text.endswith("\n")
        path.write_text(text[:-1])
        loaded = Journal.load(path)
        assert len(loaded) == 2
        assert loaded.dropped_tail == 1
        with pytest.raises(CampaignCorruptError, match="newline"):
            Journal.load(path, strict=True)


class TestFormatV2:
    """The O(1)-append format: fsync'd lines, versioned records."""

    def _counting(self, monkeypatch):
        calls = {"rewrites": 0, "appends": 0}
        real_write = journal_mod.atomic_write_text
        real_append = journal_mod.fsync_append_text

        def counting_write(*args, **kwargs):
            calls["rewrites"] += 1
            return real_write(*args, **kwargs)

        def counting_append(*args, **kwargs):
            calls["appends"] += 1
            return real_append(*args, **kwargs)

        monkeypatch.setattr(journal_mod, "atomic_write_text", counting_write)
        monkeypatch.setattr(journal_mod, "fsync_append_text", counting_append)
        return calls

    def test_appends_are_o1_after_the_first(self, path, monkeypatch):
        calls = self._counting(monkeypatch)
        j = Journal(path)
        for i in range(20):
            j.append("unit-start", unit=f"u{i}")
        # A fresh Journal doesn't know the disk state, so the first
        # append pays one atomic rewrite; every later record is one
        # fsync'd append — the whole file is never rewritten again.
        assert calls["rewrites"] == 1
        assert calls["appends"] == 19

    def test_loaded_clean_journal_never_rewrites(self, path, monkeypatch):
        j = Journal(path)
        for i in range(3):
            j.append("unit-start", unit=f"u{i}")
        calls = self._counting(monkeypatch)
        loaded = Journal.load(path)
        loaded.append("resume", skipped=[], rerun=[])
        assert calls == {"rewrites": 0, "appends": 1}

    def test_heal_after_torn_tail_then_back_to_o1(self, path, monkeypatch):
        j = Journal(path)
        for i in range(3):
            j.append("unit-done", unit=f"u{i}", digest="d" * 64, status="OK")
        j.truncate_tail()
        calls = self._counting(monkeypatch)
        recovered = Journal.load(path)
        recovered.append("resume", skipped=[], rerun=["u2"])
        recovered.append("unit-start", unit="u2")
        # One healing rewrite for the torn tail, then O(1) appends again.
        assert calls == {"rewrites": 1, "appends": 1}
        Journal.load(path, strict=True)

    def test_foreign_bytes_on_disk_trigger_a_heal(self, path):
        j = Journal(path)
        j.append("unit-start", unit="a")
        with open(path, "a") as fh:
            fh.write("junk that is not a record")
        j.append("unit-start", unit="b")
        healed = Journal.load(path, strict=True)
        assert [r["unit"] for r in healed.records] == ["a", "b"]

    def test_new_records_carry_the_write_version(self, path):
        j = Journal(path)
        rec = j.append("unit-start", unit="a")
        assert rec["v"] == WRITE_VERSION == 2

    def _write_raw(self, path, docs):
        with open(path, "w", encoding="utf-8") as fh:
            for doc in docs:
                fh.write(JournalRecord.seal(doc).line())

    def test_v1_journals_still_load(self, path):
        self._write_raw(
            path,
            [
                {"v": 1, "type": "campaign-start", "spec": "smoke"},
                {"v": 1, "type": "unit-start", "unit": "a"},
            ],
        )
        loaded = Journal.load(path, strict=True)
        assert [r["v"] for r in loaded.records] == [1, 1]

    def test_mixed_version_journal_is_legal(self, path):
        """An old campaign resumed by a new binary appends v2 after v1."""
        self._write_raw(path, [{"v": 1, "type": "campaign-start", "spec": "smoke"}])
        loaded = Journal.load(path)
        loaded.append("resume", skipped=[], rerun=[])
        reloaded = Journal.load(path, strict=True)
        assert [r["v"] for r in reloaded.records] == [1, 2]

    def test_unsupported_version_ends_the_trusted_prefix(self, path):
        self._write_raw(
            path,
            [
                {"v": 2, "type": "unit-start", "unit": "a"},
                {"v": 99, "type": "unit-start", "unit": "b"},
            ],
        )
        loaded = Journal.load(path)
        assert len(loaded) == 1
        assert loaded.dropped_tail == 1

    def test_bytes_are_a_pure_function_of_the_records(self, path, tmp_path):
        """Same record sequence -> same file bytes, whatever mix of
        fresh appends, reloads, and heals produced it.  This is the
        property that lets serial and parallel runs be cmp-compared."""
        other = tmp_path / "other.jsonl"
        j = Journal(path)
        j.append("campaign-start", spec="smoke", seed=0)
        j.append("unit-start", unit="a")
        j.append("unit-done", unit="a", digest="d" * 64, status="OK")
        k = Journal(other)
        k.append("campaign-start", spec="smoke", seed=0)
        k = Journal.load(other)
        k.append("unit-start", unit="a")
        k = Journal.load(other)
        k.append("unit-done", unit="a", digest="d" * 64, status="OK")
        assert path.read_bytes() == other.read_bytes()
