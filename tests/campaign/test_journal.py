"""Write-ahead journal: checksums, tail recovery, atomic healing."""

import json

import pytest

from repro.campaign.journal import Journal, JournalRecord
from repro.errors import CampaignCorruptError


@pytest.fixture
def path(tmp_path):
    return tmp_path / "journal.jsonl"


class TestRecordIntegrity:
    def test_sealed_record_is_intact(self):
        rec = JournalRecord.seal({"v": 1, "type": "unit-start", "unit": "x"})
        assert rec.intact()
        assert len(rec["sha256"]) == 64

    def test_tampered_record_detected(self):
        rec = JournalRecord.seal({"v": 1, "type": "unit-start", "unit": "x"})
        rec["unit"] = "y"
        assert not rec.intact()

    def test_checksum_excludes_itself(self):
        rec = JournalRecord.seal({"v": 1, "type": "resume"})
        resealed = JournalRecord.seal(dict(rec))
        assert resealed["sha256"] == rec["sha256"]


class TestAppendAndLoad:
    def test_roundtrip(self, path):
        j = Journal(path)
        j.append("campaign-start", spec="smoke", seed=0)
        j.append("unit-start", unit="a")
        j.append("unit-done", unit="a", digest="d" * 64, status="OK")
        loaded = Journal.load(path)
        assert len(loaded) == 3
        assert loaded.dropped_tail == 0
        assert [r["type"] for r in loaded.records] == [
            "campaign-start",
            "unit-start",
            "unit-done",
        ]

    def test_unknown_record_type_rejected_at_append(self, path):
        with pytest.raises(ValueError):
            Journal(path).append("nonsense")

    def test_missing_file_loads_empty(self, path):
        j = Journal.load(path)
        assert len(j) == 0 and j.dropped_tail == 0

    def test_of_type_filters(self, path):
        j = Journal(path)
        j.append("unit-start", unit="a")
        j.append("unit-done", unit="a", digest="d", status="OK")
        j.append("unit-start", unit="b")
        assert [r["unit"] for r in j.of_type("unit-start")] == ["a", "b"]


class TestCorruptTail:
    def _journal_with_three(self, path):
        j = Journal(path)
        j.append("campaign-start", spec="smoke", seed=0)
        j.append("unit-done", unit="a", digest="d" * 64, status="OK")
        j.append("unit-done", unit="b", digest="e" * 64, status="OK")
        return j

    def test_truncated_last_record_is_detected_and_dropped(self, path):
        j = self._journal_with_three(path)
        j.truncate_tail()
        loaded = Journal.load(path)
        assert len(loaded) == 2
        assert loaded.dropped_tail == 1
        # Only the torn record is lost; the prefix survives verbatim.
        assert [r["unit"] for r in loaded.of_type("unit-done")] == ["a"]

    def test_strict_load_raises_on_torn_record(self, path):
        j = self._journal_with_three(path)
        j.truncate_tail()
        with pytest.raises(CampaignCorruptError):
            Journal.load(path, strict=True)

    def test_flipped_byte_mid_journal_drops_suffix(self, path):
        self._journal_with_three(path)
        lines = path.read_text().splitlines()
        doc = json.loads(lines[1])
        doc["digest"] = "f" * 64  # checksum now wrong
        lines[1] = json.dumps(doc, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        loaded = Journal.load(path)
        assert len(loaded) == 1
        assert loaded.dropped_tail == 2

    def test_append_after_recovery_heals_the_file(self, path):
        j = self._journal_with_three(path)
        j.truncate_tail()
        recovered = Journal.load(path)
        recovered.append("resume", skipped=["a"], rerun=["b"])
        # The rewritten journal is fully intact again.
        healed = Journal.load(path, strict=True)
        assert [r["type"] for r in healed.records] == [
            "campaign-start",
            "unit-done",
            "resume",
        ]
