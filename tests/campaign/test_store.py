"""Integrity-verified result store."""

import pytest

from repro.campaign.store import ResultStore
from repro.errors import CampaignCorruptError


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


class TestRoundtrip:
    def test_put_get(self, store):
        digest = store.put("table3:aurora", {"unit": "table3:aurora", "x": 1})
        assert store.exists("table3:aurora")
        assert store.get("table3:aurora", digest) == {
            "unit": "table3:aurora",
            "x": 1,
        }

    def test_digest_matches_put(self, store):
        digest = store.put("u", {"a": 1})
        assert store.digest("u") == digest
        assert store.verify("u", digest)

    def test_put_is_deterministic(self, store):
        d1 = store.put("u", {"a": 1, "b": [1, 2]})
        d2 = store.put("u", {"b": [1, 2], "a": 1})
        assert d1 == d2

    def test_unit_ids_are_sanitised_to_filenames(self, store):
        store.put("table3:aurora", {"x": 1})
        assert ":" not in store.path("table3:aurora").rsplit("/", 1)[-1]


class TestCorruption:
    def test_missing_payload_raises(self, store):
        with pytest.raises(CampaignCorruptError):
            store.get("ghost")
        assert store.digest("ghost") is None
        assert not store.verify("ghost", "d" * 64)

    def test_tampered_payload_fails_digest(self, store, tmp_path):
        digest = store.put("u", {"a": 1})
        path = store.path("u")
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(" ")
        assert not store.verify("u", digest)
        with pytest.raises(CampaignCorruptError):
            store.get("u", digest)

    def test_get_without_expected_digest_skips_check(self, store):
        store.put("u", {"a": 1})
        assert store.get("u") == {"a": 1}
