"""ExecutionContext: engine caching, status accounting, isolation."""

import pytest

from repro.core.result import CellStatus
from repro.errors import ScenarioError
from repro.faults import ExecutionContext
from repro.hw.ids import StackRef
from repro.hw.systems import get_system


class TestLifecycle:
    def test_inactive_by_default(self):
        ctx = ExecutionContext()
        assert not ctx.active
        assert ctx.engine("aurora").faults is None
        assert ctx.exit_code() == 0
        assert ctx.describe() == "fault injection: off"

    def test_active_engines_carry_injector(self):
        ctx = ExecutionContext("device-loss", 0)
        engine = ctx.engine("aurora")
        assert engine.faults is not None
        assert engine.faults.plan.scenario == "device-loss"
        assert ctx.engine("aurora") is engine  # cached

    def test_bad_scenario_rejected_eagerly(self):
        with pytest.raises(ScenarioError):
            ExecutionContext("meteor-strike", 0)


class TestStatusAccounting:
    def test_worst_status_wins(self):
        ctx = ExecutionContext("device-loss", 0)
        ctx.record(CellStatus.OK)
        assert ctx.exit_code() == 0
        ctx.record(CellStatus.DEGRADED)
        ctx.record(CellStatus.OK)
        assert ctx.exit_code() == 1
        ctx.record(CellStatus.FAILED)
        assert ctx.exit_code() == 2
        ctx.record(CellStatus.DEGRADED)
        assert ctx.worst_status is CellStatus.FAILED


class TestIsolation:
    def test_fabric_mutations_do_not_leak(self):
        ctx = ExecutionContext("device-loss", 0)
        engine = ctx.engine("aurora")
        engine.faults.fast_forward()
        assert engine.node.fabric.has_degradation
        # A fresh System (and any other context) sees a pristine fabric.
        assert not get_system("aurora").node.fabric.has_degradation
        other = ExecutionContext("device-loss", 0).engine("aurora")
        assert not other.node.fabric.has_degradation

    def test_same_seed_same_plan_across_contexts(self):
        a = ExecutionContext("all", 5).engine("aurora").faults.plan
        b = ExecutionContext("all", 5).engine("aurora").faults.plan
        assert a.describe() == b.describe()


class TestReporting:
    def test_describe_lists_materialised_systems(self):
        ctx = ExecutionContext("throttle", 0)
        ctx.engine("aurora")
        ctx.engine("dawn")
        text = ctx.describe()
        assert "scenario 'throttle'" in text
        assert "aurora:" in text and "dawn:" in text

    def test_incident_log_prefixes_system(self):
        ctx = ExecutionContext("device-loss", 0)
        ctx.engine("aurora").faults.fast_forward()
        log = ctx.incident_log()
        assert log and all(entry.startswith("aurora: ") for entry in log)


class TestHealthReport:
    def test_clean_node_healthy(self):
        from repro.hw.selfcheck import node_health

        report = node_health(get_system("aurora"))
        assert report.healthy
        assert "HEALTHY" in report.render()

    def test_injected_node_degraded(self):
        from repro.hw.selfcheck import node_health

        ctx = ExecutionContext("device-loss", 0)
        engine = ctx.engine("aurora")
        engine.faults.fast_forward()
        report = node_health(engine.system, engine.faults)
        assert not report.healthy
        assert report.dead_stacks
        assert "DEGRADED" in report.render()

    def test_partition_counts_unroutable_pairs(self):
        from repro.hw.selfcheck import node_health

        ctx = ExecutionContext("partition", 0)
        engine = ctx.engine("aurora")
        engine.faults.fast_forward()
        report = node_health(engine.system, engine.faults)
        assert report.unroutable_pairs > 0
