"""The injector: tick/stream firing, fabric overlay, integrity helpers."""

import numpy as np
import pytest

from repro.errors import (
    AllocationError,
    DeviceLostError,
    TopologyError,
    TransientKernelError,
)
from repro.faults import FaultEvent, FaultInjector, FaultKind, FaultPlan
from repro.hw.ids import StackRef
from repro.hw.systems import get_system
from repro.sim.engine import PerfEngine
from repro.sim.noise import QUIET


def _injector(*events, system="aurora", scenario="test"):
    system = get_system(system)
    plan = FaultPlan(scenario=scenario, seed=0, events=tuple(events))
    injector = FaultInjector(plan, system.node)
    engine = PerfEngine(system, noise=QUIET, faults=injector)
    return engine, injector


class TestDeviceLoss:
    def test_loss_applies_at_tick(self):
        ref = StackRef(2, 1)
        engine, inj = _injector(
            FaultEvent(FaultKind.DEVICE_LOSS, at=3, target=ref)
        )
        inj.tick()
        assert not inj.is_dead(ref)
        inj.tick(), inj.tick()
        assert inj.is_dead(ref)
        assert engine.node.fabric.is_down(ref)
        assert ref not in engine.alive_stacks()

    def test_check_stack_raises(self):
        ref = StackRef(0, 0)
        _, inj = _injector(FaultEvent(FaultKind.DEVICE_LOSS, at=1, target=ref))
        inj.fast_forward()
        with pytest.raises(DeviceLostError):
            inj.check_stack(ref)
        inj.check_stack(StackRef(1, 0))  # survivors stay usable

    def test_scope_clips_to_survivors(self):
        ref = StackRef(0, 0)
        engine, inj = _injector(
            FaultEvent(FaultKind.DEVICE_LOSS, at=1, target=ref)
        )
        inj.fast_forward()
        n = engine.node.n_stacks
        assert len(engine.select_stacks(n)) == n - 1
        assert any("only" in msg for msg in inj.drain())

    def test_routing_avoids_dead_stack(self):
        ref = StackRef(1, 0)
        engine, inj = _injector(
            FaultEvent(FaultKind.DEVICE_LOSS, at=1, target=ref)
        )
        inj.fast_forward()
        fabric = engine.node.fabric
        with pytest.raises(TopologyError):
            fabric.route(StackRef(0, 0), ref)


class TestFabricDegradation:
    def test_plane_outage_reroutes_with_penalty(self):
        engine, inj = _injector(
            FaultEvent(FaultKind.PLANE_OUTAGE, at=1, target=0, magnitude=0.0)
        )
        clean = PerfEngine(get_system("aurora"), noise=QUIET)
        inj.fast_forward()
        fabric = engine.node.fabric
        # Find a pair whose route got longer and check the relay penalty.
        hit = [
            (a, b)
            for a, b in __import__("itertools").combinations(
                fabric.alive_stacks, 2
            )
            if a.card != b.card
            and fabric.route(a, b).n_hops > fabric.healthy_hops(a, b)
        ]
        assert hit, "plane outage should lengthen at least one route"
        a, b = hit[0]
        assert engine.transfers.p2p_bw(a, b) < clean.transfers.p2p_bw(a, b)

    def test_link_degrade_halves_bottleneck(self):
        engine, inj = _injector(
            FaultEvent(FaultKind.LINK_DEGRADE, at=1, target=0, magnitude=0.5)
        )
        clean = PerfEngine(get_system("aurora"), noise=QUIET)
        inj.fast_forward()
        fabric = engine.node.fabric
        degraded = [
            (a, b, f) for a, b, f in fabric.degraded_links if f == 0.5
        ]
        assert degraded
        a, b, _ = degraded[0]
        assert engine.transfers.p2p_bw(a, b) == pytest.approx(
            0.5 * clean.transfers.p2p_bw(a, b), rel=0.2
        )

    def test_link_cut_makes_pair_unroutable(self):
        a, b = StackRef(0, 0), StackRef(0, 1)
        engine, inj = _injector(
            FaultEvent(FaultKind.PLANE_OUTAGE, at=1, target=0, magnitude=0.0),
            FaultEvent(FaultKind.PLANE_OUTAGE, at=1, target=1, magnitude=0.0),
            FaultEvent(FaultKind.LINK_CUT, at=1, target=(a, b)),
        )
        inj.fast_forward()
        with pytest.raises(TopologyError):
            engine.node.fabric.route(a, b)

    def test_reset_health_restores(self):
        engine, inj = _injector(
            FaultEvent(FaultKind.DEVICE_LOSS, at=1, target=StackRef(0, 0)),
            FaultEvent(FaultKind.PLANE_OUTAGE, at=1, target=0, magnitude=0.0),
        )
        inj.fast_forward()
        assert engine.node.fabric.has_degradation
        inj.restore()
        assert not engine.node.fabric.has_degradation
        assert not inj.dead_stacks


class TestThrottle:
    def test_excursion_lasts_one_tick(self):
        engine, inj = _injector(
            FaultEvent(FaultKind.DVFS_THROTTLE, at=2, magnitude=0.4)
        )
        inj.tick()
        assert inj.clock_ratio() == 1.0
        inj.tick()
        assert inj.clock_ratio() == 0.4
        inj.tick()
        assert inj.clock_ratio() == 1.0

    def test_throttle_slows_kernels(self):
        engine, inj = _injector(
            FaultEvent(FaultKind.DVFS_THROTTLE, at=1, magnitude=0.4)
        )
        clean = PerfEngine(get_system("aurora"), noise=QUIET)
        from repro.dtypes import Precision

        base = clean.fma_rate(Precision.FP64, 1)
        inj.tick()
        assert engine.fma_rate(Precision.FP64, 1) == pytest.approx(
            0.4 * base, rel=0.01
        )


class TestStreamFaults:
    def test_kernel_transient_fires_once(self):
        engine, inj = _injector(
            FaultEvent(FaultKind.KERNEL_TRANSIENT, at=2)
        )
        inj.on_kernel("a")  # op 1: clean
        with pytest.raises(TransientKernelError):
            inj.on_kernel("b")  # op 2: fires
        inj.on_kernel("c")  # op 3: cleared — transient

    def test_alloc_failure_fires_once(self):
        _, inj = _injector(FaultEvent(FaultKind.ALLOC_FAIL, at=1))
        with pytest.raises(AllocationError):
            inj.on_alloc("device", 1024)
        inj.on_alloc("device", 1024)

    def test_hang_rank_modulo_size(self):
        _, inj = _injector(FaultEvent(FaultKind.MPI_HANG, at=1, target=13))
        assert inj.mpi_hang_rank(4) == 13 % 4

    def test_hang_skipped_for_single_rank(self):
        _, inj = _injector(FaultEvent(FaultKind.MPI_HANG, at=1, target=13))
        assert inj.mpi_hang_rank(1) is None


class TestIntegrity:
    def test_corruption_breaks_checksum(self):
        _, inj = _injector(FaultEvent(FaultKind.MPI_CORRUPT, at=1))
        payload = np.arange(64.0)
        before = FaultInjector.checksum(payload)
        assert inj.corrupt_payload(payload, 0, 1)
        assert FaultInjector.checksum(payload) != before

    def test_clean_send_keeps_checksum(self):
        _, inj = _injector(FaultEvent(FaultKind.MPI_CORRUPT, at=5))
        payload = np.arange(64.0)
        before = FaultInjector.checksum(payload)
        assert not inj.corrupt_payload(payload, 0, 1)
        assert FaultInjector.checksum(payload) == before


class TestIncidentLog:
    def test_drain_dedupes_but_history_keeps_all(self):
        _, inj = _injector()
        inj.note("same thing")
        inj.note("same thing")
        inj.note("other thing")
        assert inj.drain() == ["same thing", "other thing"]
        assert inj.drain() == []
        assert inj.history == ["same thing", "same thing", "other thing"]
