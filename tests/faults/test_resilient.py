"""ResilientRunner: retry, backoff, quarantine, timeouts, provenance."""

import pytest

from repro.core.resilient import ResiliencePolicy, ResilientRunner
from repro.core.result import CellStatus, DeviceScope, Measurement
from repro.core.runner import RunPlan
from repro.errors import (
    BenchmarkTimeoutError,
    MeasurementError,
    TransientKernelError,
)
from repro.faults import FaultEvent, FaultInjector, FaultKind, FaultPlan
from repro.hw.systems import get_system

_SCOPE = DeviceScope("One Stack", 1)


def _run(runner, measure):
    return runner.run(
        benchmark="bench", system="test", scope=_SCOPE, measure=measure
    )


def _sample(elapsed=1e-3):
    return Measurement(elapsed_s=elapsed, work=1.0, unit="B/s")


class TestPolicy:
    def test_defaults_valid(self):
        ResiliencePolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"backoff_s": -0.1},
            {"quarantine_ratio": 1.0},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ResiliencePolicy(**kwargs)

    def test_backoff_doubles(self):
        policy = ResiliencePolicy(backoff_s=0.5)
        assert policy.backoff_for(1) == 0.5
        assert policy.backoff_for(2) == 1.0
        assert policy.backoff_for(3) == 2.0


class TestRetry:
    def test_transient_cleared_by_retry(self):
        calls = {"n": 0}

        def measure(rep):
            calls["n"] += 1
            if calls["n"] == 1:
                raise TransientKernelError("injected")
            return _sample()

        runner = ResilientRunner(RunPlan(repetitions=3, warmup=0))
        result = _run(runner, measure)
        assert len(result.samples) == 3
        prov = result.provenance
        assert prov.status is CellStatus.DEGRADED
        assert prov.retries == 1

    def test_gives_up_after_max_retries(self):
        def measure(rep):
            raise TransientKernelError("permanent after all")

        runner = ResilientRunner(
            RunPlan(repetitions=2, warmup=0),
            ResiliencePolicy(max_retries=1),
        )
        with pytest.raises(MeasurementError) as info:
            _run(runner, measure)
        assert info.value.benchmark == "bench"
        assert "no usable samples" in str(info.value)

    def test_partial_loss_keeps_surviving_reps(self):
        def measure(rep):
            if rep == 1:
                raise TransientKernelError("rep 1 always fails")
            return _sample()

        runner = ResilientRunner(
            RunPlan(repetitions=3, warmup=0),
            ResiliencePolicy(max_retries=0),
        )
        result = _run(runner, measure)
        assert len(result.samples) == 2
        assert result.provenance.status is CellStatus.DEGRADED
        assert any("gave up" in f for f in result.provenance.faults)


class TestQuarantine:
    def test_slow_outlier_quarantined(self):
        def measure(rep):
            return _sample(10e-3 if rep == 2 else 1e-3)

        runner = ResilientRunner(RunPlan(repetitions=4, warmup=0))
        result = _run(runner, measure)
        assert len(result.samples) == 3
        assert result.provenance.quarantined == 1
        assert result.provenance.status is CellStatus.DEGRADED

    def test_tight_spread_untouched(self):
        runner = ResilientRunner(RunPlan(repetitions=4, warmup=0))
        result = _run(runner, lambda rep: _sample(1e-3 * (1 + 0.01 * rep)))
        assert len(result.samples) == 4
        assert result.provenance.status is CellStatus.OK


class TestTimeouts:
    def test_rep_timeout_discards_sample(self):
        def measure(rep):
            return _sample(5.0 if rep == 1 else 1e-3)

        runner = ResilientRunner(
            RunPlan(repetitions=3, warmup=0),
            ResiliencePolicy(rep_timeout_s=1.0),
        )
        result = _run(runner, measure)
        assert len(result.samples) == 2
        assert result.provenance.timeouts == 1

    def test_all_reps_timing_out_raises_timeout_error(self):
        runner = ResilientRunner(
            RunPlan(repetitions=2, warmup=0),
            ResiliencePolicy(rep_timeout_s=0.1),
        )
        with pytest.raises(BenchmarkTimeoutError):
            _run(runner, lambda rep: _sample(5.0))

    def test_deadline_skips_remaining_reps(self):
        seen = []

        def measure(rep):
            seen.append(rep)
            return _sample(1.0)

        runner = ResilientRunner(
            RunPlan(repetitions=10, warmup=0),
            ResiliencePolicy(deadline_s=2.5),
        )
        result = _run(runner, measure)
        assert len(seen) < 10
        assert "deadline" in result.provenance.detail


class TestInjectorIntegration:
    def test_injected_transient_retries_and_degrades(self):
        system = get_system("aurora")
        plan = FaultPlan(
            scenario="test",
            seed=0,
            events=(FaultEvent(FaultKind.KERNEL_TRANSIENT, at=2),),
        )
        injector = FaultInjector(plan, system.node)

        def measure(rep):
            injector.on_kernel("k")
            return _sample()

        runner = ResilientRunner(
            RunPlan(repetitions=3, warmup=0), injector=injector
        )
        result = _run(runner, measure)
        assert len(result.samples) == 3
        prov = result.provenance
        assert prov.retries == 1
        assert any("transient" in f for f in prov.faults)

    def test_clean_run_is_ok(self):
        system = get_system("aurora")
        injector = FaultInjector(
            FaultPlan(scenario="test", seed=0), system.node
        )
        runner = ResilientRunner(
            RunPlan(repetitions=3, warmup=1), injector=injector
        )
        result = _run(runner, lambda rep: _sample())
        assert result.provenance.status is CellStatus.OK
        assert injector.clock.now == 4  # one tick per repetition
