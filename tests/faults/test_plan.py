"""Fault plans: seeded draws, clocks, scenario builders, determinism."""

import pytest

from repro.errors import ScenarioError
from repro.faults import SCENARIO_NAMES, FaultClock, FaultKind, SeededDraw, build_plan
from repro.hw.systems import get_system


class TestSeededDraw:
    def test_unit_is_stable(self):
        a = SeededDraw(7, "ns").unit("k")
        b = SeededDraw(7, "ns").unit("k")
        assert a == b
        assert 0.0 <= a < 1.0

    def test_seed_and_namespace_decorrelate(self):
        base = SeededDraw(7, "ns").unit("k")
        assert SeededDraw(8, "ns").unit("k") != base
        assert SeededDraw(7, "other").unit("k") != base

    def test_randint_range(self):
        draw = SeededDraw(0, "ns")
        for i in range(50):
            assert 3 <= draw.randint(3, 9, i) < 9

    def test_randint_empty_range_rejected(self):
        with pytest.raises(ValueError):
            SeededDraw(0, "ns").randint(5, 5)

    def test_distinct_ints_sorted_unique(self):
        out = SeededDraw(1, "ns").distinct_ints(4, 0, 100, "x")
        assert out == sorted(set(out))
        assert len(out) == 4


class TestFaultClock:
    def test_tick_monotonic(self):
        clock = FaultClock()
        assert clock.now == 0
        assert [clock.tick() for _ in range(3)] == [1, 2, 3]
        assert clock.now == 3

    def test_streams_independent(self):
        clock = FaultClock()
        assert clock.advance("kernel") == 1
        assert clock.advance("alloc") == 1
        assert clock.advance("kernel") == 2
        assert clock.count("kernel") == 2
        assert clock.count("missing") == 0


class TestScenarios:
    @pytest.mark.parametrize("scenario", SCENARIO_NAMES)
    def test_same_seed_same_schedule(self, scenario):
        node = get_system("aurora").node
        a = build_plan(scenario, 3, node)
        b = build_plan(scenario, 3, node)
        assert a.describe() == b.describe()
        assert a.events == b.events

    def test_different_seed_different_schedule(self):
        node = get_system("aurora").node
        a = build_plan("device-loss", 0, node)
        b = build_plan("device-loss", 1, node)
        assert a.describe() != b.describe()

    def test_systems_get_independent_schedules(self):
        a = build_plan("device-loss", 0, get_system("aurora").node)
        d = build_plan("device-loss", 0, get_system("dawn").node)
        assert a.events != d.events

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ScenarioError, match="unknown fault scenario"):
            build_plan("meteor-strike", 0, get_system("aurora").node)

    def test_all_excludes_partition(self):
        node = get_system("aurora").node
        plan = build_plan("all", 0, node)
        kinds = {e.kind for e in plan.events}
        assert FaultKind.LINK_CUT not in kinds  # partition's signature fault
        assert FaultKind.DEVICE_LOSS in kinds
        assert FaultKind.KERNEL_TRANSIENT in kinds

    def test_hang_scenarios_shorten_watchdog(self):
        node = get_system("aurora").node
        assert build_plan("mpi-hang", 0, node).mpi_timeout_s == 2.0
        assert build_plan("all", 0, node).mpi_timeout_s == 2.0
        assert build_plan("throttle", 0, node).mpi_timeout_s is None

    def test_stream_vs_tick_split(self):
        node = get_system("aurora").node
        plan = build_plan("all", 0, node)
        ticks = plan.tick_events()
        streams = plan.stream_events()
        assert all(e.kind.stream is None for e in ticks)
        assert ticks == sorted(ticks, key=lambda e: e.at)
        for stream, events in streams.items():
            for at, event in events.items():
                assert event.kind.stream == stream
                assert event.at == at
