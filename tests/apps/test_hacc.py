"""CRK-HACC: gravity + CRK-SPH physics oracles + node FOM."""

import numpy as np
import pytest

from repro.apps.hacc import (
    Hacc,
    NBodySystem,
    crk_coefficients,
    crk_interpolate,
    cubic_spline_kernel,
    sph_density,
    two_body_circular,
)
from repro.errors import ConfigurationError, NotMeasuredError


class TestGravity:
    def test_momentum_conserved_exactly(self):
        rng = np.random.default_rng(0)
        system = NBodySystem(
            pos=rng.uniform(-1, 1, (32, 3)),
            vel=rng.normal(0, 0.1, (32, 3)),
            mass=rng.uniform(0.5, 1.5, 32),
            softening=0.05,
        )
        p0 = system.total_momentum()
        system.run(50, dt=0.01)
        assert np.allclose(system.total_momentum(), p0, atol=1e-10)

    def test_two_body_energy_stable(self):
        system = two_body_circular()
        e0 = system.total_energy()
        system.run(500, dt=0.005)
        assert system.total_energy() == pytest.approx(e0, rel=1e-5)

    def test_two_body_orbit_period(self):
        # Circular orbit: separation stays constant over a full period.
        system = two_body_circular(separation=1.0, mass=0.5)
        sep0 = np.linalg.norm(system.pos[1] - system.pos[0])
        system.run(200, dt=0.01)
        sep = np.linalg.norm(system.pos[1] - system.pos[0])
        assert sep == pytest.approx(sep0, rel=1e-3)

    def test_forces_antisymmetric(self):
        system = two_body_circular()
        acc = system.accelerations()
        # Equal masses: a_0 = -a_1.
        assert np.allclose(acc[0], -acc[1], atol=1e-12)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NBodySystem(
                pos=np.zeros((2, 3)),
                vel=np.zeros((2, 3)),
                mass=np.array([1.0, -1.0]),
            )
        system = two_body_circular()
        with pytest.raises(ConfigurationError):
            system.step(-0.1)


class TestSph:
    def test_kernel_normalised(self):
        # Integral of W over 3D space = 1 (radial quadrature).
        h = 1.0
        r = np.linspace(0, 2 * h, 4001)
        w = cubic_spline_kernel(r, h)
        integral = np.trapezoid(4 * np.pi * r**2 * w, r)
        assert integral == pytest.approx(1.0, rel=1e-4)

    def test_kernel_compact_support(self):
        assert cubic_spline_kernel(np.array([2.1]), 1.0)[0] == 0.0
        assert cubic_spline_kernel(np.array([0.5]), 1.0)[0] > 0.0

    def test_kernel_monotone_decreasing(self):
        r = np.linspace(0, 2, 100)
        w = cubic_spline_kernel(r, 1.0)
        assert np.all(np.diff(w) <= 1e-12)

    def test_density_of_uniform_lattice(self):
        # Regular lattice of unit-density particles: SPH density near 1.
        n = 6
        x = (np.arange(n) + 0.5) / n
        grid = np.stack(np.meshgrid(x, x, x, indexing="ij"), axis=-1).reshape(-1, 3)
        mass = np.full(len(grid), 1.0 / len(grid))
        rho = sph_density(grid, mass, h=1.6 / n)
        inner = rho.reshape(n, n, n)[2:-2, 2:-2, 2:-2]
        assert np.allclose(inner, 1.0, rtol=0.05)

    def test_rejects_bad_h(self):
        with pytest.raises(ConfigurationError):
            cubic_spline_kernel(np.ones(3), 0.0)


class TestCrk:
    def _cloud(self, n=100, seed=0):
        rng = np.random.default_rng(seed)
        pos = rng.uniform(0, 1, (n, 3))
        vol = np.full(n, 1.0 / n)
        return pos, vol

    def test_moment_conditions_hold(self):
        pos, vol = self._cloud()
        a, b = crk_coefficients(pos, vol, h=0.35)
        # Corrected kernel must reproduce the constant field 1.
        ones = crk_interpolate(pos, vol, np.ones(len(pos)), h=0.35)
        assert np.allclose(ones, 1.0, atol=1e-12)
        assert np.all(np.isfinite(a)) and np.all(np.isfinite(b))

    def test_linear_field_reproduced_exactly(self):
        # The CRKSPH property standard SPH lacks.
        pos, vol = self._cloud(seed=2)
        field = 1.0 + 2.0 * pos[:, 0] - 0.5 * pos[:, 1] + 3.0 * pos[:, 2]
        interp = crk_interpolate(pos, vol, field, h=0.4)
        assert np.allclose(interp, field, atol=1e-10)

    def test_standard_sph_fails_where_crk_succeeds(self):
        pos, vol = self._cloud(seed=3)
        field = np.ones(len(pos))
        # Plain SPH "interpolation" of 1 is sum V W != 1 on irregular sets.
        diff = pos[:, None, :] - pos[None, :, :]
        r = np.sqrt((diff**2).sum(-1))
        plain = cubic_spline_kernel(r, 0.4) @ (vol * field)
        crk = crk_interpolate(pos, vol, field, h=0.4)
        assert np.abs(plain - 1.0).max() > 0.05
        assert np.abs(crk - 1.0).max() < 1e-10


class TestFom:
    def test_table_vi_full_nodes(self, engines):
        paper = {
            "aurora": 13.81,
            "dawn": 12.26,
            "jlse-h100": 12.46,
            "jlse-mi250": 10.70,
        }
        app = Hacc()
        for name, value in paper.items():
            assert app.fom(engines[name]) == pytest.approx(value, rel=0.02), name

    def test_partial_node_not_measured(self, aurora):
        with pytest.raises(NotMeasuredError):
            Hacc().fom(aurora, 2)

    def test_ranking_matches_paper(self, engines):
        app = Hacc()
        foms = {n: app.fom(e) for n, e in engines.items()}
        order = sorted(foms, key=foms.get, reverse=True)
        assert order == ["aurora", "jlse-h100", "dawn", "jlse-mi250"]

    def test_functional_runner(self):
        system = Hacc().run_functional(n_particles=16, steps=5)
        assert system.n == 16
