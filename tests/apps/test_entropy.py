"""Shannon-entropy source-convergence diagnostic."""

import numpy as np
import pytest

from repro.apps.openmc import (
    KEigenvalueSolver,
    Material,
    TransportProblem,
    shannon_entropy,
)


class TestShannonEntropy:
    def test_uniform_source_maximal(self):
        rng = np.random.default_rng(0)
        sites = rng.uniform(0, 10.0, (50_000, 3))
        h = shannon_entropy(sites, np.ones(50_000), size=10.0, nmesh=4)
        assert h == pytest.approx(np.log2(64), abs=0.01)

    def test_point_source_zero(self):
        sites = np.full((100, 3), 5.0)
        assert shannon_entropy(sites, np.ones(100), 10.0, 4) == 0.0

    def test_empty_bank(self):
        assert shannon_entropy(np.empty((0, 3)), np.empty(0), 10.0, 4) == 0.0

    def test_weights_shift_entropy(self):
        # Two cells, all weight pushed onto one -> entropy drops.
        sites = np.array([[1.0, 1.0, 1.0], [9.0, 9.0, 9.0]])
        equal = shannon_entropy(sites, np.array([1.0, 1.0]), 10.0, 2)
        skewed = shannon_entropy(sites, np.array([1.0, 1e-9]), 10.0, 2)
        assert equal == pytest.approx(1.0)
        assert skewed < 0.01


class TestSourceConvergence:
    def test_infinite_medium_converges(self):
        medium = Material(
            name="m",
            sigma_t=np.array([1.0]),
            sigma_a=np.array([0.4]),
            scatter=np.array([[0.6]]),
            nu_fission=np.array([0.44]),
        )
        problem = TransportProblem(
            (medium,), boundary="reflective", checkerboard=False, nmesh=4
        )
        result = KEigenvalueSolver(
            problem, 2000, inactive_batches=4, active_batches=6, seed=3
        ).solve()
        assert result.entropy_per_batch is not None
        assert len(result.entropy_per_batch) == 10
        assert result.source_converged()
        # Near-uniform converged source in an infinite medium.
        assert result.entropy_per_batch[-1] == pytest.approx(
            np.log2(64), abs=0.5
        )

    def test_unconverged_without_history(self):
        from repro.apps.openmc import KEffResult

        r = KEffResult(k_per_batch=np.array([1.0]), inactive=0)
        assert not r.source_converged()
