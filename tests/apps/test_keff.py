"""k-eigenvalue power iteration."""

import numpy as np
import pytest

from repro.apps.openmc import (
    KEigenvalueSolver,
    Material,
    TransportProblem,
    smr_materials,
)
from repro.errors import ConfigurationError


def _critical_medium(k_inf: float, sigma_a=0.3, sigma_s=0.7) -> Material:
    return Material(
        name="medium",
        sigma_t=np.array([sigma_a + sigma_s]),
        sigma_a=np.array([sigma_a]),
        scatter=np.array([[sigma_s]]),
        nu_fission=np.array([k_inf * sigma_a]),
    )


def _infinite_problem(k_inf: float) -> TransportProblem:
    return TransportProblem(
        (_critical_medium(k_inf),),
        boundary="reflective",
        checkerboard=False,
        nmesh=2,
    )


class TestPowerIteration:
    def test_k_converges_to_analytic_k_inf(self):
        solver = KEigenvalueSolver(
            _infinite_problem(1.10),
            particles_per_batch=3000,
            inactive_batches=2,
            active_batches=8,
            seed=3,
        )
        result = solver.solve()
        assert result.k_eff == pytest.approx(1.10, abs=4 * result.k_std_error)
        assert result.k_eff == pytest.approx(1.10, rel=0.03)

    def test_subcritical_medium(self):
        solver = KEigenvalueSolver(
            _infinite_problem(0.80),
            particles_per_batch=2000,
            inactive_batches=2,
            active_batches=6,
            seed=5,
        )
        assert solver.solve().k_eff == pytest.approx(0.80, rel=0.04)

    def test_leakage_lowers_k_below_k_inf(self):
        # A finite vacuum-bounded core must be less reactive than the
        # infinite medium with the same composition.
        fuel, moderator = smr_materials()
        finite = TransportProblem((fuel, moderator), size=30.0, nmesh=4)
        big = TransportProblem((fuel, moderator), size=120.0, nmesh=4)
        k_small = KEigenvalueSolver(
            finite, 2000, inactive_batches=2, active_batches=5, seed=1
        ).solve()
        k_big = KEigenvalueSolver(
            big, 2000, inactive_batches=2, active_batches=5, seed=1
        ).solve()
        assert k_small.k_eff < k_big.k_eff

    def test_batch_accounting(self):
        result = KEigenvalueSolver(
            _infinite_problem(1.0),
            particles_per_batch=500,
            inactive_batches=3,
            active_batches=4,
            seed=0,
        ).solve()
        assert len(result.k_per_batch) == 7
        assert len(result.active_batches) == 4
        assert result.k_std_error > 0

    def test_configuration_validation(self):
        with pytest.raises(ConfigurationError):
            KEigenvalueSolver(_infinite_problem(1.0), particles_per_batch=5)
        with pytest.raises(ConfigurationError):
            KEigenvalueSolver(_infinite_problem(1.0), active_batches=0)


class TestFissionBank:
    def test_banked_sites_have_weights(self):
        problem = _infinite_problem(1.05)
        result = problem.run(1000, seed=2, bank_fission=True)
        assert result.fission_sites is not None
        assert result.fission_weights is not None
        assert len(result.fission_sites) == len(result.fission_weights)
        assert len(result.fission_sites) > 0
        assert np.all(result.fission_weights > 0)

    def test_bank_total_matches_production(self):
        problem = _infinite_problem(1.05)
        result = problem.run(1000, seed=2, bank_fission=True)
        assert result.fission_weights.sum() == pytest.approx(
            result.fission_production
        )

    def test_no_bank_by_default(self):
        result = _infinite_problem(1.0).run(200, seed=1)
        assert result.fission_sites is None

    def test_custom_source_shape_validated(self):
        problem = _infinite_problem(1.0)
        with pytest.raises(ConfigurationError):
            problem.run(100, source=np.zeros((50, 3)))

    def test_source_positions_used(self):
        # All particles born in one corner: early collisions cluster there.
        problem = TransportProblem(
            (_critical_medium(1.0, sigma_a=1.0, sigma_s=1.0),),
            size=40.0,
            boundary="reflective",
            checkerboard=False,
            nmesh=4,
        )
        corner = np.full((2000, 3), 2.0)
        result = problem.run(2000, seed=4, source=corner)
        corner_tally = result.flux[0, 0, 0].sum()
        far_tally = result.flux[3, 3, 3].sum()
        assert corner_tally > far_tally
