"""SPH gas dynamics (the hydrodynamic half of CRK-HACC)."""

import numpy as np
import pytest

from repro.apps.hacc import SphGasSystem, cubic_spline_gradient
from repro.errors import ConfigurationError


def _lattice_gas(n: int = 5, u0: float = 1.0) -> SphGasSystem:
    x = (np.arange(n) + 0.5) / n
    grid = np.stack(np.meshgrid(x, x, x, indexing="ij"), axis=-1).reshape(-1, 3)
    count = len(grid)
    return SphGasSystem(
        pos=grid.copy(),
        vel=np.zeros((count, 3)),
        mass=np.full(count, 1.0 / count),
        internal_energy=np.full(count, u0),
        h=2.0 / n,
    )


class TestKernelGradient:
    def test_points_from_j_toward_lower_w(self):
        # dW/dr < 0 inside support: gradient w.r.t. x_i points away from j
        # with negative magnitude along +diff.
        diff = np.array([[0.5, 0.0, 0.0]])
        r = np.array([0.5])
        g = cubic_spline_gradient(diff, r, h=1.0)
        assert g[0, 0] < 0.0
        assert g[0, 1] == 0.0

    def test_zero_outside_support(self):
        diff = np.array([[3.0, 0.0, 0.0]])
        g = cubic_spline_gradient(diff, np.array([3.0]), h=1.0)
        assert np.allclose(g, 0.0)

    def test_antisymmetry(self):
        diff = np.array([[0.4, 0.3, -0.2]])
        r = np.linalg.norm(diff, axis=1)
        g_ij = cubic_spline_gradient(diff, r, h=1.0)
        g_ji = cubic_spline_gradient(-diff, r, h=1.0)
        assert np.allclose(g_ij, -g_ji)

    def test_finite_difference_check(self):
        from repro.apps.hacc import cubic_spline_kernel

        h, eps = 1.0, 1e-6
        diff = np.array([[0.7, 0.2, 0.1]])
        r = np.linalg.norm(diff, axis=1)
        g = cubic_spline_gradient(diff, r, h)[0]
        for axis in range(3):
            d_plus = diff.copy()
            d_plus[0, axis] += eps
            d_minus = diff.copy()
            d_minus[0, axis] -= eps
            w_plus = cubic_spline_kernel(np.linalg.norm(d_plus, axis=1), h)
            w_minus = cubic_spline_kernel(np.linalg.norm(d_minus, axis=1), h)
            fd = (w_plus[0] - w_minus[0]) / (2 * eps)
            assert g[axis] == pytest.approx(fd, rel=1e-4, abs=1e-8)

    def test_bad_h_rejected(self):
        with pytest.raises(ConfigurationError):
            cubic_spline_gradient(np.zeros((1, 3)), np.zeros(1), h=0.0)


class TestGasDynamics:
    def test_momentum_conserved_to_roundoff(self):
        gas = _lattice_gas()
        p0 = gas.total_momentum()
        for _ in range(8):
            gas.step()
        assert np.abs(gas.total_momentum() - p0).max() < 1e-12

    def test_energy_conserved_to_integration_error(self):
        gas = _lattice_gas()
        e0 = gas.total_energy()
        t = 0.0
        while t < 0.05:
            t += gas.step(gas.stable_dt() * 0.25)
        assert gas.total_energy() == pytest.approx(e0, rel=0.01)

    def test_energy_drift_converges_with_dt(self):
        drifts = []
        for scale in (1.0, 0.25):
            gas = _lattice_gas()
            e0 = gas.total_energy()
            t = 0.0
            while t < 0.04:
                t += gas.step(gas.stable_dt() * scale)
            drifts.append(abs(gas.total_energy() - e0) / e0)
        assert drifts[1] < 0.5 * drifts[0]

    def test_free_expansion_converts_thermal_to_kinetic(self):
        gas = _lattice_gas(u0=2.0)
        thermal0 = float(np.sum(gas.mass * gas.internal_energy))
        for _ in range(10):
            gas.step()
        thermal1 = float(np.sum(gas.mass * gas.internal_energy))
        kinetic1 = 0.5 * float(
            np.sum(gas.mass * np.sum(gas.vel**2, axis=1))
        )
        assert thermal1 < thermal0
        assert kinetic1 > 0.01

    def test_edge_particles_accelerate_outward(self):
        gas = _lattice_gas()
        acc = gas.accelerations()
        centre = gas.pos - 0.5
        radial = np.einsum("ik,ik->i", acc, centre)
        # Outermost particles feel net outward pressure force.
        outer = np.linalg.norm(centre, axis=1) > 0.6
        assert np.all(radial[outer] > 0)

    def test_pressure_ideal_gas(self):
        gas = _lattice_gas(u0=3.0)
        rho = gas.density()
        p = gas.pressure(rho)
        assert np.allclose(p, (gas.gamma - 1.0) * rho * 3.0)

    def test_stable_dt_positive(self):
        gas = _lattice_gas()
        assert 0 < gas.stable_dt() < 1.0

    def test_validation(self):
        gas = _lattice_gas()
        with pytest.raises(ConfigurationError):
            gas.step(-0.1)
        with pytest.raises(ConfigurationError):
            SphGasSystem(
                pos=np.zeros((2, 3)),
                vel=np.zeros((2, 3)),
                mass=np.ones(2),
                internal_energy=np.array([1.0, -1.0]),
                h=0.5,
            )
