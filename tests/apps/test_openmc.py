"""OpenMC-style transport: physics oracles + FOM."""

import numpy as np
import pytest

from repro.apps.openmc import (
    Material,
    OpenMc,
    TransportProblem,
    smr_materials,
)
from repro.errors import ConfigurationError


def _one_group_medium(sigma_a=0.2, sigma_s=0.8, nu_f=0.0) -> Material:
    return Material(
        name="medium",
        sigma_t=np.array([sigma_a + sigma_s]),
        sigma_a=np.array([sigma_a]),
        scatter=np.array([[sigma_s]]),
        nu_fission=np.array([nu_f]),
    )


class TestMaterial:
    def test_cross_section_balance_enforced(self):
        with pytest.raises(ConfigurationError):
            Material(
                name="bad",
                sigma_t=np.array([1.0]),
                sigma_a=np.array([0.5]),
                scatter=np.array([[0.6]]),  # 0.5 + 0.6 != 1.0
                nu_fission=np.zeros(1),
            )

    def test_smr_materials_consistent(self):
        fuel, moderator = smr_materials()
        assert fuel.n_groups == 2
        assert moderator.nu_fission.sum() == 0.0
        assert fuel.n_nuclides == 16


class TestInfiniteMediumPhysics:
    """Reflective box with one material = infinite medium: analytic answers."""

    def _run(self, sigma_a, sigma_s, nu_f=0.0, n=20000):
        problem = TransportProblem(
            (_one_group_medium(sigma_a, sigma_s, nu_f),),
            boundary="reflective",
            checkerboard=False,
            nmesh=2,
        )
        return problem.run(n, seed=42)

    def test_collisions_per_history(self):
        # Expected collisions per absorbed history = sigma_t / sigma_a.
        res = self._run(sigma_a=0.25, sigma_s=0.75)
        assert res.collisions_per_history == pytest.approx(4.0, rel=0.05)

    def test_all_histories_absorbed(self):
        res = self._run(sigma_a=0.5, sigma_s=0.5, n=5000)
        assert res.absorptions == res.histories
        assert res.leaks == 0

    def test_k_inf_matches_analytic(self):
        # k_inf = nu*sigma_f / sigma_a for a one-group infinite medium.
        res = self._run(sigma_a=0.3, sigma_s=0.7, nu_f=0.36)
        assert res.k_estimate == pytest.approx(0.36 / 0.3, rel=0.05)

    def test_pure_absorber_one_collision(self):
        res = self._run(sigma_a=1.0, sigma_s=0.0, n=5000)
        assert res.collisions_per_history == pytest.approx(1.0, rel=0.02)


class TestVacuumLeakage:
    def test_small_box_leaks_heavily(self):
        thin = TransportProblem(
            (_one_group_medium(0.05, 0.05),),
            size=1.0,
            boundary="vacuum",
            checkerboard=False,
        )
        res = thin.run(4000, seed=1)
        assert res.leakage_fraction > 0.8

    def test_big_dense_box_leaks_little(self):
        thick = TransportProblem(
            (_one_group_medium(0.5, 1.0),),
            size=200.0,
            boundary="vacuum",
            checkerboard=False,
        )
        res = thick.run(2000, seed=1)
        assert res.leakage_fraction < 0.05

    def test_conservation_of_histories(self):
        problem = TransportProblem(smr_materials(), size=30.0)
        res = problem.run(3000, seed=7)
        assert res.absorptions + res.leaks == res.histories


class TestTallies:
    def test_flux_shape_includes_nuclide_axis(self):
        problem = TransportProblem(smr_materials(n_nuclides=16), nmesh=4)
        res = problem.run(2000, seed=0)
        assert res.flux.shape == (4, 4, 4, 2, 16)
        assert res.flux.sum() == res.collisions

    def test_fuel_cells_see_fast_flux(self):
        problem = TransportProblem(smr_materials(), nmesh=4, size=40.0)
        res = problem.run(5000, seed=3)
        # Group 0 (fast) collisions happen everywhere the source is born.
        assert res.flux[..., 0, :].sum() > 0

    def test_deterministic_given_seed(self):
        problem = TransportProblem(smr_materials(), nmesh=2)
        a = problem.run(1000, seed=5)
        b = problem.run(1000, seed=5)
        assert a.collisions == b.collisions
        assert np.array_equal(a.flux, b.flux)

    def test_input_validation(self):
        with pytest.raises(ConfigurationError):
            TransportProblem((), boundary="vacuum")
        with pytest.raises(ConfigurationError):
            TransportProblem(smr_materials(), boundary="mirror")
        problem = TransportProblem(smr_materials())
        with pytest.raises(ConfigurationError):
            problem.run(0)


class TestFom:
    def test_table_vi_full_nodes(self, engines):
        paper = {"aurora": 2039.0, "jlse-h100": 1191.0, "jlse-mi250": 720.0}
        app = OpenMc()
        for name, value in paper.items():
            assert app.fom(engines[name]) == pytest.approx(value, rel=0.02), name

    def test_dawn_prediction_scales_with_xe_cores(self, aurora, dawn):
        # The paper leaves Dawn blank; the model predicts 64/56 per stack.
        app = OpenMc()
        per_stack_a = app.fom(aurora) / 12
        per_stack_d = app.fom(dawn) / 8
        assert per_stack_d / per_stack_a == pytest.approx(64 / 56, rel=0.01)

    def test_functional_smoke(self):
        res = OpenMc().run_functional(n_particles=500)
        assert res.histories == 500
