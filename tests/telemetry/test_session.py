"""Telemetry session: lane conventions, fault markers, queue cache."""

import pytest

from repro.hw.ids import StackRef
from repro.hw.systems import get_system
from repro.sim.engine import PerfEngine
from repro.sim.noise import QUIET
from repro.telemetry import Telemetry
from repro.telemetry.trace import INSTANT


def _engine(telemetry: Telemetry) -> PerfEngine:
    return PerfEngine(get_system("aurora"), noise=QUIET, telemetry=telemetry)


class TestLanes:
    def test_lane_order_run_ranks_gpus_faults(self):
        telemetry = Telemetry()
        telemetry.fault_lane()
        telemetry.gpu_lane(StackRef(1, 0))
        telemetry.rank_lane(3)
        telemetry.rank_lane(0)
        telemetry.gpu_lane(StackRef(0, 1))
        assert telemetry.tracer.lanes() == [
            "run",
            "rank 0",
            "rank 3",
            "gpu 0.1",
            "gpu 1.0",
            "faults",
        ]

    def test_predeclared_resilience_counters(self):
        metrics = Telemetry().metrics
        for name in ("retry.count", "quarantine.count", "fault.count"):
            assert name in metrics
            assert metrics.value(name) == 0.0


class TestFaultMarkers:
    def test_instant_fault_records_marker_and_counter(self):
        telemetry = Telemetry()
        event = telemetry.instant_fault(
            "device 0.0 lost", lane=telemetry.gpu_lane(StackRef(0, 0)),
            kind="device-loss", tick=5,
        )
        assert event.phase == INSTANT
        assert event.lane == "gpu 0.0"
        assert telemetry.faults_observed() == 1
        assert telemetry.metrics.value("fault.count", kind="device-loss") == 1

    def test_default_lane_is_the_fault_lane(self):
        telemetry = Telemetry()
        event = telemetry.instant_fault("plane 1 outage", kind="plane-outage")
        assert event.lane == "faults"


class TestQueueCache:
    def test_queue_cached_per_stack(self):
        telemetry = Telemetry()
        engine = _engine(telemetry)
        ref = engine.node.stacks()[0]
        q1 = telemetry.sycl_queue(engine, ref)
        q2 = telemetry.sycl_queue(engine, ref)
        assert q1 is q2
        other = telemetry.sycl_queue(engine, engine.node.stacks()[1])
        assert other is not q1
        assert other.lane != q1.lane

    def test_lost_device_raises_retryable(self):
        from repro.errors import DeviceLostError
        from repro.faults import ExecutionContext

        telemetry = Telemetry()
        ctx = ExecutionContext("device-loss", seed=7, telemetry=telemetry)
        engine = ctx.engine("aurora")
        engine.faults.fast_forward()
        dead = [r for r in engine.node.stacks() if engine.faults.is_dead(r)]
        assert dead
        with pytest.raises(DeviceLostError):
            telemetry.sycl_queue(engine, dead[0])


class TestSummary:
    def test_summary_counts(self):
        telemetry = Telemetry()
        telemetry.tracer.complete("k", telemetry.run_lane(), duration_us=1.0)
        telemetry.instant_fault("boom", kind="device-loss")
        text = telemetry.summary()
        assert "1 span(s)" in text
        assert "1 instant event(s)" in text
        assert "1 fault(s) observed" in text
