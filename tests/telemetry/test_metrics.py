"""Metrics registry: counters, gauges, histograms, exporters."""

import json

import pytest

from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_labelled_increments(self):
        reg = MetricsRegistry()
        reg.inc("transfer.bytes", 100.0, path="xelink")
        reg.inc("transfer.bytes", 50.0, path="xelink")
        reg.inc("transfer.bytes", 7.0, path="pcie")
        counter = reg.counter("transfer.bytes")
        assert counter.value(path="xelink") == 150.0
        assert counter.value(path="pcie") == 7.0
        assert counter.total() == 157.0

    def test_counters_cannot_decrease(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1.0)

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.inc("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_bad_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.inc("kernel flops")
        with pytest.raises(ValueError):
            reg.inc("ok.name", 1.0, **{"le!": "x"})


class TestGauge:
    def test_set_and_add(self):
        reg = MetricsRegistry()
        reg.set_gauge("kernel.occupancy", 0.5, kernel="dgemm")
        reg.set_gauge("kernel.occupancy", 0.9, kernel="dgemm")
        assert reg.value("kernel.occupancy", kernel="dgemm") == 0.9
        gauge = reg.gauge("kernel.occupancy")
        gauge.add(-0.4, kernel="dgemm")
        assert gauge.value(kernel="dgemm") == pytest.approx(0.5)


class TestHistogram:
    def test_cumulative_buckets(self):
        hist = Histogram("t", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            hist.observe(v)
        assert hist.cumulative_counts() == [1, 2, 3]
        assert hist.count() == 4
        assert hist.sum_observed() == pytest.approx(555.5)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("t", buckets=(10.0, 1.0))

    def test_default_buckets_cover_microseconds(self):
        assert DEFAULT_BUCKETS == tuple(sorted(DEFAULT_BUCKETS))
        reg = MetricsRegistry()
        reg.observe("kernel.time_us", 130.0, kernel="dgemm")
        assert reg.histogram("kernel.time_us").count(kernel="dgemm") == 1


class TestPrometheusExport:
    def test_text_format(self):
        reg = MetricsRegistry()
        reg.counter("retry.count", help="retried repetitions")
        reg.inc("retry.count", 2.0, benchmark="gemm")
        reg.set_gauge("roofline.regime", 2.0, kernel="dgemm")
        reg.observe("kernel.time_us", 42.0)
        text = reg.to_prometheus()
        assert "# HELP retry_count retried repetitions" in text
        assert "# TYPE retry_count counter" in text
        assert 'retry_count{benchmark="gemm"} 2' in text
        assert "# TYPE roofline_regime gauge" in text
        assert 'roofline_regime{kernel="dgemm"} 2' in text
        assert "# TYPE kernel_time_us histogram" in text
        assert 'kernel_time_us_bucket{le="100"} 1' in text
        assert 'kernel_time_us_bucket{le="+Inf"} 1' in text
        assert "kernel_time_us_sum 42" in text
        assert "kernel_time_us_count 1" in text

    def test_untouched_counter_prints_zero(self):
        reg = MetricsRegistry()
        reg.counter("retry.count")
        assert "retry_count 0" in reg.to_prometheus()

    def test_export_sorted_and_deterministic(self):
        def build() -> MetricsRegistry:
            reg = MetricsRegistry()
            reg.inc("b.count", 1.0, z="1", a="2")
            reg.inc("a.count", 2.0)
            reg.set_gauge("c.gauge", 3.0)
            return reg

        assert build().to_prometheus() == build().to_prometheus()
        text = build().to_prometheus()
        assert text.index("a_count") < text.index("b_count") < text.index(
            "c_gauge"
        )
        assert 'b_count{a="2",z="1"} 1' in text  # labels sorted too

    def test_export_sorts_labels_defensively(self):
        # Byte-stability must hold even if a label set reaches the store
        # unsorted (hand-built tuples, future refactors, PYTHONHASHSEED
        # differences in whatever produced them): both exporters sort at
        # export time, not just at construction.
        sorted_reg, unsorted_reg = MetricsRegistry(), MetricsRegistry()
        sorted_reg.counter("transfer.bytes")._values[
            (("path", "xelink"), ("plane", "0"))
        ] = 5.0
        unsorted_reg.counter("transfer.bytes")._values[
            (("plane", "0"), ("path", "xelink"))
        ] = 5.0
        assert 'transfer_bytes{path="xelink",plane="0"} 5' in (
            unsorted_reg.to_prometheus()
        )
        assert sorted_reg.to_json() == unsorted_reg.to_json()

    def test_snapshot_label_dicts_are_sorted(self):
        reg = MetricsRegistry()
        reg.inc("route.count", 1.0, hops="2", degraded="no")
        reg.observe("rep.time_us", 9.0, benchmark="gemm", system="aurora")
        doc = reg.snapshot()
        counter_labels = doc["route.count"]["samples"][0]["labels"]
        assert list(counter_labels) == sorted(counter_labels)
        hist_labels = doc["rep.time_us"]["samples"][0]["labels"]
        assert list(hist_labels) == sorted(hist_labels)

    def test_json_snapshot_round_trips(self):
        reg = MetricsRegistry()
        reg.inc("kernel.flops", 1e12, kernel="dgemm")
        reg.observe("kernel.time_us", 5.0)
        doc = json.loads(reg.to_json())
        assert doc["kernel.flops"]["kind"] == "counter"
        assert doc["kernel.flops"]["samples"][0]["value"] == 1e12
        assert doc["kernel.time_us"]["kind"] == "histogram"
        assert doc["kernel.time_us"]["samples"][0]["count"] == 1


class TestPercentiles:
    def test_interpolates_inside_the_bucket(self):
        # 10 observations spread uniformly through the (1, 10] bucket:
        # the PromQL estimator puts the median at the bucket midpoint
        # walk — lower + width * rank_fraction.
        h = Histogram("lat", buckets=(1.0, 10.0, 100.0))
        for _ in range(10):
            h.observe(5.0)
        assert h.percentile(0.5) == pytest.approx(1.0 + 9.0 * 0.5)
        assert h.percentile(1.0) == pytest.approx(10.0)

    def test_rank_straddling_buckets(self):
        h = Histogram("lat", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 0.5, 50.0, 50.0):
            h.observe(v)
        # p50 rank (2.0) is satisfied by the first bucket boundary.
        assert h.percentile(0.5) == pytest.approx(1.0)
        # p99 rank (3.96) lands inside the (10, 100] bucket.
        p99 = h.percentile(0.99)
        assert 10.0 < p99 <= 100.0

    def test_overflow_rank_clamps_to_largest_finite_bound(self):
        h = Histogram("lat", buckets=(1.0, 10.0))
        h.observe(1e9)  # +Inf bucket only
        assert h.percentile(0.99) == 10.0

    def test_empty_histogram_is_zero(self):
        h = Histogram("lat", buckets=DEFAULT_BUCKETS)
        assert h.percentile(0.99) == 0.0

    def test_quantile_out_of_range_rejected(self):
        h = Histogram("lat", buckets=DEFAULT_BUCKETS)
        with pytest.raises(ValueError, match="quantile"):
            h.percentile(1.5)
        with pytest.raises(ValueError, match="quantile"):
            h.percentile(-0.1)

    def test_percentiles_returns_the_standard_keys(self):
        h = Histogram("lat", buckets=(1.0, 10.0))
        h.observe(0.5)
        row = h.percentiles()
        assert sorted(row) == ["p50", "p95", "p99"]
        assert all(v > 0 for v in row.values())

    def test_summary_folds_label_sets_together(self):
        reg = MetricsRegistry()
        for system in ("aurora", "dawn"):
            for _ in range(5):
                reg.observe("rep.time_us", 5.0, system=system)
        summary = reg.percentile_summary()
        assert list(summary) == ["rep.time_us"]
        row = summary["rep.time_us"]
        assert row["count"] == 10.0
        assert row["sum"] == pytest.approx(50.0)
        # Folded percentile equals the single-label-set percentile
        # because both sets saw identical observations.
        h = reg.histogram("rep.time_us")
        assert row["p50"] == pytest.approx(h.percentile(0.5, system="dawn"))

    def test_summary_skips_non_histograms(self):
        reg = MetricsRegistry()
        reg.inc("events.count")
        reg.set_gauge("phase", 2.0)
        assert reg.percentile_summary() == {}


class TestOpenMetricsExport:
    def test_counter_samples_get_total_suffix(self):
        reg = MetricsRegistry()
        reg.inc("transfer.bytes", 5.0, path="xelink")
        text = reg.to_openmetrics()
        # TYPE names the bare family; the sample carries _total.
        assert "# TYPE transfer_bytes counter" in text
        assert 'transfer_bytes_total{path="xelink"} 5' in text
        assert "transfer_bytes{" not in text

    def test_histogram_family_gets_type_help_and_series(self):
        reg = MetricsRegistry()
        hist = reg.histogram(
            "kernel.time_us", help="per-kernel device time", buckets=(1.0, 10.0)
        )
        hist.observe(0.5)
        hist.observe(5.0)
        text = reg.to_openmetrics()
        assert "# HELP kernel_time_us per-kernel device time" in text
        assert "# TYPE kernel_time_us histogram" in text
        assert 'kernel_time_us_bucket{le="1"} 1' in text
        assert 'kernel_time_us_bucket{le="10"} 2' in text
        assert 'kernel_time_us_bucket{le="+Inf"} 2' in text
        assert "kernel_time_us_sum 5.5" in text
        assert "kernel_time_us_count 2" in text

    def test_gauges_are_unsuffixed(self):
        reg = MetricsRegistry()
        reg.set_gauge("campaign.complete", 1.0)
        text = reg.to_openmetrics()
        assert "# TYPE campaign_complete gauge" in text
        assert "campaign_complete 1" in text
        assert "campaign_complete_total" not in text

    def test_exposition_ends_with_eof(self):
        assert MetricsRegistry().to_openmetrics() == "# EOF\n"
        reg = MetricsRegistry()
        reg.inc("a.b")
        assert reg.to_openmetrics().endswith("# EOF\n")

    def test_deterministic_across_builds(self):
        def build():
            reg = MetricsRegistry()
            reg.inc("units.count", 2.0, status="OK")
            reg.observe("sim.us", 42.0, unit="u1")
            reg.set_gauge("done", 1.0)
            return reg.to_openmetrics()

        assert build() == build()
