"""Run manifests: schema, provenance binding, determinism."""

import json

from repro.faults import ExecutionContext
from repro.telemetry import Telemetry
from repro.telemetry.manifest import (
    SCHEMA,
    build_manifest,
    render_manifest,
    write_manifest,
)


def _fault_ctx() -> ExecutionContext:
    ctx = ExecutionContext("device-loss", seed=3, telemetry=Telemetry())
    engine = ctx.engine("aurora")
    engine.faults.fast_forward()
    return ctx


class TestManifest:
    def test_schema_and_config(self):
        ctx = _fault_ctx()
        doc = build_manifest("health", ctx)
        assert doc["schema"] == SCHEMA
        assert doc["command"] == "health"
        assert doc["config"]["systems"] == ["aurora"]
        assert doc["config"]["scenario"] == "device-loss"
        assert doc["config"]["seed"] == 3
        cal = doc["config"]["calibration"]["aurora"]
        assert cal["key"] == "aurora"
        assert cal["noise_amplitude"] > 0
        assert "citation" in cal

    def test_binds_telemetry_and_provenance(self):
        ctx = _fault_ctx()
        doc = build_manifest("health", ctx, trace_files=["t.json"])
        assert doc["telemetry"]["enabled"] is True
        assert doc["telemetry"]["faults_observed"] >= 1
        assert "run" in doc["telemetry"]["lanes"]
        assert doc["metrics"]["fault.count"]["samples"]
        assert doc["provenance"]["incidents"]
        assert "aurora" in doc["provenance"]["fault_plans"]
        assert doc["trace_files"] == ["t.json"]

    def test_without_telemetry(self):
        ctx = ExecutionContext()
        doc = build_manifest("table2", ctx)
        assert doc["telemetry"]["enabled"] is False
        assert doc["telemetry"]["spans"] == 0
        assert doc["metrics"] == {}
        assert doc["status"] == {"exit_code": 0, "worst_cell": "OK"}

    def test_deterministic_under_fixed_seed(self):
        one = render_manifest(build_manifest("health", _fault_ctx()))
        two = render_manifest(build_manifest("health", _fault_ctx()))
        assert one == two
        assert one.endswith("\n")

    def test_write_manifest(self, tmp_path):
        path = tmp_path / "manifest.json"
        write_manifest(str(path), build_manifest("table2", ExecutionContext()))
        doc = json.loads(path.read_text())
        assert doc["schema"] == SCHEMA
