"""The performance engine: achieved rates, roofline, ablations."""

import pytest

from repro.dtypes import Precision
from repro.hw.frequency import WorkloadKind
from repro.hw.systems import get_system
from repro.sim.engine import PerfEngine
from repro.sim.kernel import gemm_kernel, pointer_chase_kernel, triad_kernel
from repro.sim.noise import QUIET


class TestRates:
    def test_aurora_fp64_fma_17t(self, aurora):
        assert aurora.fma_rate(Precision.FP64, 1) == pytest.approx(17e12, rel=0.02)

    def test_fp32_fp64_ratio_1p3(self, aurora):
        ratio = aurora.fma_rate(Precision.FP32, 1) / aurora.fma_rate(
            Precision.FP64, 1
        )
        assert ratio == pytest.approx(23 / 17, rel=0.05)

    def test_stream_1tb(self, aurora, dawn):
        assert aurora.stream_bw(1) == pytest.approx(1e12, rel=0.02)
        assert dawn.stream_bw(1) == pytest.approx(1e12, rel=0.02)

    def test_stream_scales_perfectly(self, aurora):
        assert aurora.stream_bw(12) == pytest.approx(12 * aurora.stream_bw(1))

    def test_dgemm_13t(self, aurora):
        assert aurora.gemm_rate(Precision.FP64, 1) == pytest.approx(
            13e12, rel=0.02
        )

    def test_mi250_gemm_uses_matrix_cores(self, mi250):
        # DGEMM (24.1) exceeds the vector FP64 peak (22.6) per GCD.
        dgemm = mi250.gemm_rate(Precision.FP64, 1)
        vector_peak = mi250.sustained_peak(Precision.FP64)
        assert dgemm > vector_peak
        assert dgemm == pytest.approx(24.1e12, rel=0.02)

    def test_fft_rates(self, aurora):
        assert aurora.fft_rate(1, 1) == pytest.approx(3.1e12, rel=0.02)
        assert aurora.fft_rate(2, 1) == pytest.approx(3.4e12, rel=0.02)
        with pytest.raises(ValueError):
            aurora.fft_rate(3, 1)

    def test_stack_count_validated(self, aurora):
        with pytest.raises(ValueError):
            aurora.fma_rate(Precision.FP64, 0)
        with pytest.raises(ValueError):
            aurora.fma_rate(Precision.FP64, 13)


class TestLatency:
    def test_l1_latency_76_cycles(self, aurora):
        assert aurora.latency_cycles(16 * 1024) == pytest.approx(76.0, rel=0.02)

    def test_latency_seconds_uses_stream_clock(self, aurora):
        lat_s = aurora.latency_seconds(16 * 1024)
        assert lat_s == pytest.approx(76.0 / 1.6e9, rel=0.02)


class TestRoofline:
    def test_triad_is_memory_bound(self, aurora):
        pt = aurora.roofline(triad_kernel())
        assert pt.bound == "memory"

    def test_gemm_is_compute_bound(self, aurora):
        pt = aurora.roofline(gemm_kernel(Precision.FP64))
        assert pt.bound == "compute"

    def test_pointer_chase_is_latency_bound(self, aurora):
        pt = aurora.roofline(pointer_chase_kernel(1 << 30, n_chases=100_000))
        assert pt.bound == "latency"

    def test_kernel_time_with_noise_slower_or_equal(self, noisy_aurora):
        spec = triad_kernel()
        clean = noisy_aurora.kernel_time_s(spec)
        noisy = noisy_aurora.kernel_time_s(spec, rep=0)
        assert noisy >= clean


class TestAblations:
    def test_tdp_off_equalizes_fp32_fp64(self):
        e = PerfEngine(get_system("aurora"), noise=QUIET, enable_tdp=False)
        r64 = e.fma_rate(Precision.FP64, 1)
        r32 = e.fma_rate(Precision.FP32, 1)
        # fma efficiencies differ by ~1%; clocks are now equal.
        assert r32 / r64 == pytest.approx(1.0, abs=0.02)

    def test_tdp_off_raises_fp64_peak(self, aurora):
        e = PerfEngine(get_system("aurora"), noise=QUIET, enable_tdp=False)
        assert e.fma_rate(Precision.FP64, 1) > aurora.fma_rate(Precision.FP64, 1)

    def test_quiet_copy_preserves_flags(self):
        e = PerfEngine(
            get_system("aurora"), enable_tdp=False, enable_planes=False
        )
        q = e.quiet()
        assert q.enable_tdp is False
        assert q.transfers.enable_planes is False


class TestSustainedPeak:
    def test_gemm_kind_downclocks_fp64(self, aurora):
        fma = aurora.sustained_peak(Precision.FP64, WorkloadKind.FMA_CHAIN)
        gemm = aurora.sustained_peak(Precision.FP64, WorkloadKind.GEMM)
        assert fma == gemm  # both at the 1.2 GHz TDP clock

    def test_unknown_precision_raises(self, mi250):
        with pytest.raises(ValueError):
            mi250.sustained_peak(Precision.TF32)
