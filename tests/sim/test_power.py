"""Power and energy-to-solution model."""

import pytest

from repro.dtypes import Precision
from repro.hw.frequency import WorkloadKind
from repro.sim.kernel import gemm_kernel, triad_kernel
from repro.sim.power import PowerModel


@pytest.fixture(scope="module")
def power_aurora(aurora):
    return PowerModel(aurora)


@pytest.fixture(scope="module")
def power_dawn(dawn):
    return PowerModel(dawn)


class TestPowerDraw:
    def test_card_caps_per_system(self, power_aurora, power_dawn):
        assert power_aurora.card_cap_w == 500.0
        assert power_dawn.card_cap_w == 600.0

    def test_compute_kernel_pins_the_cap(self, power_aurora):
        # Two stacks of one card at a compute workload = the full cap.
        assert power_aurora.kernel_power_w(
            gemm_kernel(Precision.FP64), n_stacks=2
        ) == pytest.approx(500.0)

    def test_stream_draws_less_than_compute(self, power_aurora):
        stream = power_aurora.stack_power_w(WorkloadKind.STREAM)
        compute = power_aurora.stack_power_w(WorkloadKind.FMA_CHAIN)
        assert stream < compute

    def test_node_power_budget(self, power_aurora, power_dawn):
        # 6 x 500 W = 3000 W vs 4 x 600 W = 2400 W.
        assert power_aurora.node_power_budget_w() == 3000.0
        assert power_dawn.node_power_budget_w() == 2400.0


class TestEnergyToSolution:
    def test_report_fields(self, power_aurora):
        report = power_aurora.energy_to_solution(gemm_kernel(Precision.FP64))
        assert report.time_s > 0
        assert report.energy_j == pytest.approx(
            report.total_power_w * report.time_s
        )
        assert report.work_per_joule > 0
        assert report.work_unit == "Flop"

    def test_pure_transfer_kernel_counts_bytes(self, power_aurora):
        spec = triad_kernel(1 << 20)
        report = power_aurora.energy_to_solution(spec)
        assert report.work_unit == "Flop"  # triad does flops too

    def test_host_power_scales_with_ranks(self, power_aurora):
        one = power_aurora.energy_to_solution(gemm_kernel(Precision.FP64), 1)
        twelve = power_aurora.energy_to_solution(
            gemm_kernel(Precision.FP64), 12
        )
        assert twelve.host_power_w == pytest.approx(12 * one.host_power_w)


class TestEfficiencyComparisons:
    def test_aurora_more_fp64_flops_per_watt_than_dawn(
        self, power_aurora, power_dawn
    ):
        """Aurora's 500 W cap + binned-down stacks still deliver slightly
        better FP64 efficiency than Dawn's 600 W full parts."""
        a = power_aurora.flops_per_watt(Precision.FP64)
        d = power_dawn.flops_per_watt(Precision.FP64)
        assert a > d

    def test_fp32_more_efficient_than_fp64_on_pvc(self, power_aurora):
        # Same power envelope, higher clock for FP32.
        assert power_aurora.flops_per_watt(
            Precision.FP32
        ) > power_aurora.flops_per_watt(Precision.FP64)
