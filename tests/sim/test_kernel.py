"""Kernel workload descriptors."""

import math

import pytest

from repro.core.units import MIB
from repro.dtypes import Precision
from repro.errors import KernelSpecError
from repro.hw.frequency import WorkloadKind
from repro.sim.kernel import (
    GEMM_N,
    TRIAD_ARRAY_BYTES,
    KernelSpec,
    fft_kernel,
    fma_chain_kernel,
    gemm_kernel,
    pointer_chase_kernel,
    triad_kernel,
)


class TestKernelSpec:
    def test_rejects_negative_flops(self):
        with pytest.raises(KernelSpecError):
            KernelSpec("bad", flops=-1.0)

    def test_rejects_empty_kernel(self):
        with pytest.raises(KernelSpecError):
            KernelSpec("empty")

    def test_arithmetic_intensity(self):
        spec = KernelSpec("k", flops=100.0, bytes_read=40.0, bytes_written=10.0)
        assert spec.arithmetic_intensity == pytest.approx(2.0)

    def test_pure_compute_intensity_infinite(self):
        spec = KernelSpec("k", flops=1.0)
        assert math.isinf(spec.arithmetic_intensity)

    def test_scaled(self):
        spec = triad_kernel(1000).scaled(2.0)
        assert spec.bytes_read == pytest.approx(4000.0)
        with pytest.raises(KernelSpecError):
            spec.scaled(0.0)


class TestConstructors:
    def test_triad_sizing_rule(self):
        # 192 MiB LLC x 4 = 805 MB per array (Section IV-A.2).
        assert TRIAD_ARRAY_BYTES == 192 * MIB * 4
        assert TRIAD_ARRAY_BYTES == pytest.approx(805e6, rel=2e-3)

    def test_triad_two_loads_one_store(self):
        spec = triad_kernel(100)
        assert spec.bytes_read == pytest.approx(200.0)
        assert spec.bytes_written == pytest.approx(100.0)
        assert spec.kind is WorkloadKind.STREAM

    def test_gemm_flop_count(self):
        # "A total of 2 * N^3 floating point operations" (Section IV-A.5).
        spec = gemm_kernel(Precision.FP64, 100)
        assert spec.flops == pytest.approx(2.0 * 100**3)
        assert GEMM_N == 20480

    def test_gemm_bytes_follow_itemsize(self):
        d = gemm_kernel(Precision.FP64, 64)
        s = gemm_kernel(Precision.FP32, 64)
        assert d.total_bytes == pytest.approx(2 * s.total_bytes)

    def test_fft_complex_flop_rule(self):
        # 5 N log2 N for complex transforms (Section IV-A.6).
        n = 4096
        spec = fft_kernel(n, ndim=1)
        assert spec.flops == pytest.approx(5 * n * math.log2(n))

    def test_fft_real_half_flops(self):
        n = 4096
        assert fft_kernel(n, real=True).flops == pytest.approx(
            fft_kernel(n).flops / 2
        )

    def test_fft_2d_counts_total_points(self):
        n = 64
        spec = fft_kernel(n, ndim=2)
        pts = n * n
        assert spec.flops == pytest.approx(5 * pts * math.log2(pts))

    def test_fma_chain_length(self):
        # 16 x 128 FMAs x 2 flops per lane per repeat (Section IV-A.1).
        spec = fma_chain_kernel(Precision.FP32, lanes=1, repeats=1)
        assert spec.flops == pytest.approx(2 * 16 * 128)

    def test_pointer_chase_latency_bound(self):
        spec = pointer_chase_kernel(4096, n_chases=100)
        assert spec.serial_chases == 100
        assert spec.flops == 0
