"""Calibration tables and scaling curves."""

import pytest

from repro.dtypes import Precision
from repro.errors import CalibrationError
from repro.sim.calibration import (
    APP_CALIBRATIONS,
    CALIBRATIONS,
    ScalingCurve,
    get_app_calibration,
    get_calibration,
)


class TestScalingCurve:
    def test_interpolates_linearly(self):
        c = ScalingCurve.of({1: 1.0, 3: 0.8})
        assert c.efficiency(2) == pytest.approx(0.9)

    def test_clamps_beyond_last_point(self):
        c = ScalingCurve.of({1: 1.0, 2: 0.9})
        assert c.efficiency(10) == pytest.approx(0.9)

    def test_clamps_below_first_point(self):
        c = ScalingCurve.of({2: 0.9})
        assert c.efficiency(1) == pytest.approx(0.9)

    def test_aggregate(self):
        c = ScalingCurve.of({1: 1.0, 2: 0.5})
        assert c.aggregate(10.0, 2) == pytest.approx(10.0)

    def test_rejects_unsorted(self):
        with pytest.raises(CalibrationError):
            ScalingCurve(((2, 0.9), (1, 1.0)))

    def test_rejects_bad_efficiency(self):
        with pytest.raises(CalibrationError):
            ScalingCurve.of({1: 1.5})

    def test_rejects_zero_stacks(self):
        with pytest.raises(CalibrationError):
            ScalingCurve.of({1: 1.0}).efficiency(0)

    def test_rejects_empty(self):
        with pytest.raises(CalibrationError):
            ScalingCurve(())


class TestSystemCalibrations:
    def test_all_four_paper_systems_present(self):
        assert set(CALIBRATIONS) >= {"aurora", "dawn", "jlse-h100", "jlse-mi250"}

    def test_unknown_system_raises(self):
        with pytest.raises(CalibrationError):
            get_calibration("frontier")

    def test_efficiencies_are_fractions(self):
        for cal in CALIBRATIONS.values():
            assert 0 < cal.stream_efficiency <= 1
            for eff in cal.gemm_efficiency.values():
                assert 0 < eff <= 1
            for eff in cal.pcie_efficiency.values():
                assert 0 < eff <= 1

    def test_aurora_scaling_quotes(self):
        # Section IV-B.1: 97% two-stack, ~95% full-node FP64 scaling.
        curve = get_calibration("aurora").scaling_curve("flops-fp64")
        assert curve.efficiency(2) == pytest.approx(0.97, abs=0.01)
        assert curve.efficiency(12) == pytest.approx(0.95, abs=0.01)

    def test_pcie_bidir_factor_below_two(self):
        # Section IV-B.4: "we observe only 1.4x bandwidth for bi- vs uni-".
        for cal in CALIBRATIONS.values():
            assert cal.pcie_bidir_factor < 2.0

    def test_aurora_host_caps_bind_d2h(self):
        caps = get_calibration("aurora").host_agg_caps
        assert caps["d2h"] == pytest.approx(264e9)

    def test_dawn_host_caps_unbounded(self):
        caps = get_calibration("dawn").host_agg_caps
        assert all(v is None for v in caps.values())

    def test_missing_gemm_precision_raises(self):
        cal = get_calibration("jlse-mi250")
        with pytest.raises(CalibrationError):
            cal.require_gemm(Precision.TF32)

    def test_default_scaling_is_perfect(self):
        cal = get_calibration("aurora")
        assert cal.scaling_curve("nonexistent").efficiency(5) == 1.0


class TestAppCalibrations:
    def test_every_app_has_all_four_systems(self):
        apps = {k[0] for k in APP_CALIBRATIONS}
        for app in apps:
            systems = {k[1] for k in APP_CALIBRATIONS if k[0] == app}
            assert systems >= {"aurora", "dawn", "jlse-h100", "jlse-mi250"}, app

    def test_unknown_pair_raises(self):
        with pytest.raises(CalibrationError):
            get_app_calibration("minibude", "frontier")

    def test_minibude_fractions_match_prose(self):
        # Section V-B: ~45% on Aurora, ~49% on Dawn.
        assert get_app_calibration("minibude", "aurora").fp32_fraction == (
            pytest.approx(0.45, abs=0.01)
        )
        assert get_app_calibration("minibude", "dawn").fp32_fraction == (
            pytest.approx(0.49, abs=0.015)
        )

    def test_rimp2_mi250_marked_broken(self):
        assert get_app_calibration("rimp2", "jlse-mi250").build_fails
        assert not get_app_calibration("rimp2", "aurora").build_fails
