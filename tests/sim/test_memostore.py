"""MemoStore: persistence, LRU eviction, quarantine, crash recovery.

The store is the service's memory across restarts; these tests pin the
failure-first contract — corruption is quarantined not raised, the
index journal tolerates torn tails and disagreement with the disk, and
transient ENOSPC on the index append is absorbed by the shared bounded
retry (the ``io-enospc`` drill pointed at the cache).
"""

import errno
import json
import os

import pytest

from repro.ioutils import seal_record, set_io_fault_gate
from repro.sim.memo import MemoCache, content_digest
from repro.sim.memostore import (
    MemoStore,
    PersistentMemoCache,
    read_index,
)
from repro.sim.roofline import RooflinePoint


def _digest(i: int) -> str:
    return content_digest(("key", i))


class TestRoundTrip:
    def test_put_get(self, tmp_path):
        store = MemoStore(tmp_path / "cache")
        store.put(_digest(1), {"answer": 42})
        assert store.get(_digest(1)) == {"answer": 42}
        assert store.stats()["hits"] == 1

    def test_missing_key_is_miss(self, tmp_path):
        store = MemoStore(tmp_path / "cache")
        assert store.get(_digest(9)) is None
        assert store.stats()["misses"] == 1

    def test_none_rejected(self, tmp_path):
        store = MemoStore(tmp_path / "cache")
        with pytest.raises(ValueError, match="miss sentinel"):
            store.put(_digest(1), None)

    def test_survives_reopen(self, tmp_path):
        MemoStore(tmp_path / "cache").put(_digest(1), [1, 2, 3])
        reopened = MemoStore(tmp_path / "cache")
        assert reopened.get(_digest(1)) == [1, 2, 3]
        assert len(reopened) == 1

    def test_put_is_idempotent(self, tmp_path):
        store = MemoStore(tmp_path / "cache")
        store.put(_digest(1), "v")
        store.put(_digest(1), "v")
        assert len(store) == 1


class TestEviction:
    def test_lru_bound_holds(self, tmp_path):
        store = MemoStore(tmp_path / "cache", max_entries=3)
        for i in range(5):
            store.put(_digest(i), i)
        assert len(store) == 3
        assert store.stats()["evictions"] == 2
        # The two oldest are gone, from memory AND disk.
        assert store.get(_digest(0)) is None
        assert not os.path.exists(store.object_path(_digest(1)))
        assert store.get(_digest(4)) == 4

    def test_get_refreshes_recency(self, tmp_path):
        store = MemoStore(tmp_path / "cache", max_entries=2)
        store.put(_digest(0), 0)
        store.put(_digest(1), 1)
        assert store.get(_digest(0)) == 0  # 0 is now hottest
        store.put(_digest(2), 2)  # evicts 1, not 0
        assert store.get(_digest(0)) == 0
        assert store.get(_digest(1)) is None

    def test_recency_survives_restart(self, tmp_path):
        store = MemoStore(tmp_path / "cache", max_entries=2)
        store.put(_digest(0), 0)
        store.put(_digest(1), 1)
        store.get(_digest(0))
        reopened = MemoStore(tmp_path / "cache", max_entries=2)
        reopened.put(_digest(2), 2)
        assert reopened.get(_digest(0)) == 0
        assert reopened.get(_digest(1)) is None


class TestQuarantine:
    def test_garbage_object_quarantined_not_raised(self, tmp_path):
        store = MemoStore(tmp_path / "cache")
        store.put(_digest(1), {"v": 1})
        with open(store.object_path(_digest(1)), "w") as fh:
            fh.write("not json at all {{{")
        assert store.get(_digest(1)) is None
        assert store.stats()["quarantined"] == 1
        assert _digest(1) not in store
        assert len(os.listdir(store.quarantine_dir)) == 1

    def test_checksum_mismatch_quarantined(self, tmp_path):
        store = MemoStore(tmp_path / "cache")
        store.put(_digest(1), {"v": 1})
        path = store.object_path(_digest(1))
        doc = json.load(open(path))
        doc["value"] = {"v": 2}  # valid JSON, wrong seal
        with open(path, "w") as fh:
            json.dump(doc, fh)
        assert store.get(_digest(1)) is None
        assert store.stats()["quarantined"] == 1

    def test_recompute_after_quarantine(self, tmp_path):
        store = MemoStore(tmp_path / "cache")
        store.put(_digest(1), "good")
        with open(store.object_path(_digest(1)), "w") as fh:
            fh.write("X")
        assert store.get(_digest(1)) is None
        store.put(_digest(1), "good")  # the caller's recompute path
        assert store.get(_digest(1)) == "good"

    def test_quarantine_observer_called(self, tmp_path):
        store = MemoStore(tmp_path / "cache")
        seen = []
        store.on_quarantine = seen.append
        store.put(_digest(1), "v")
        with open(store.object_path(_digest(1)), "w") as fh:
            fh.write("X")
        store.get(_digest(1))
        assert seen == [_digest(1)]

    def test_failing_observer_does_not_fail_read(self, tmp_path):
        store = MemoStore(tmp_path / "cache")
        store.on_quarantine = lambda key: 1 / 0
        store.put(_digest(1), "v")
        with open(store.object_path(_digest(1)), "w") as fh:
            fh.write("X")
        assert store.get(_digest(1)) is None


class TestRecovery:
    def test_orphan_objects_adopted(self, tmp_path):
        """Crash between object write and index append: object survives."""
        store = MemoStore(tmp_path / "cache")
        store.put(_digest(1), "indexed")
        # Simulate the torn second phase: write the object by hand.
        orphan = _digest(2)
        path = store.object_path(orphan)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as fh:
            json.dump(seal_record({"key": orphan, "value": "orphan"}), fh)
        reopened = MemoStore(tmp_path / "cache")
        assert reopened.get(orphan) == "orphan"
        assert len(reopened) == 2

    def test_stale_index_entry_dropped(self, tmp_path):
        store = MemoStore(tmp_path / "cache")
        store.put(_digest(1), "v")
        os.unlink(store.object_path(_digest(1)))
        reopened = MemoStore(tmp_path / "cache")
        assert len(reopened) == 0
        assert _digest(1) not in reopened

    def test_torn_index_tail_dropped(self, tmp_path):
        store = MemoStore(tmp_path / "cache")
        store.put(_digest(1), "v")
        with open(store.index_path, "a") as fh:
            fh.write('{"v": 1, "op": "put", "key": "torn')
        reopened = MemoStore(tmp_path / "cache")
        assert reopened.get(_digest(1)) == "v"

    def test_index_compaction_bounds_journal(self, tmp_path):
        store = MemoStore(tmp_path / "cache")
        store.put(_digest(1), "v")
        for _ in range(100):
            store.get(_digest(1))
        records, dropped = read_index(store.index_path)
        assert dropped == 0
        # Compaction keeps the journal a small multiple of entry count.
        assert len(records) <= 16

    def test_missing_index_rebuilt_from_objects(self, tmp_path):
        store = MemoStore(tmp_path / "cache")
        for i in range(3):
            store.put(_digest(i), i)
        os.unlink(store.index_path)
        reopened = MemoStore(tmp_path / "cache")
        assert len(reopened) == 3
        assert reopened.get(_digest(2)) == 2


class TestEnospcDrill:
    """Satellite: the bounded ENOSPC retry covers memostore writes."""

    def test_transient_enospc_absorbed(self, tmp_path):
        failures = {"remaining": 2}

        def gate(op, path, attempt):
            if "index.jsonl" in str(path) and failures["remaining"] > 0:
                failures["remaining"] -= 1
                raise OSError(errno.ENOSPC, "injected", str(path))

        store = MemoStore(tmp_path / "cache")
        set_io_fault_gate(gate)
        try:
            store.put(_digest(1), "squeezed")
        finally:
            set_io_fault_gate(None)
        assert failures["remaining"] == 0
        assert store.get(_digest(1)) == "squeezed"
        # The retried append left no torn or duplicate records.
        records, dropped = read_index(store.index_path)
        assert dropped == 0
        assert [r["key"] for r in records if r["op"] == "put"] == [_digest(1)]

    def test_persistent_enospc_surfaces(self, tmp_path):
        def gate(op, path, attempt):
            raise OSError(errno.ENOSPC, "disk full forever", str(path))

        store = MemoStore(tmp_path / "cache")
        set_io_fault_gate(gate)
        try:
            with pytest.raises(OSError):
                store.put(_digest(1), "v")
        finally:
            set_io_fault_gate(None)


class TestPersistentMemoCache:
    def test_roofline_point_round_trip(self, tmp_path):
        store = MemoStore(tmp_path / "cache")
        cache = PersistentMemoCache(store)
        point = RooflinePoint(
            compute_s=1.5e-3, memory_s=2.5e-3, latency_s=1e-6,
            compute_rate=2e13, mem_bw=1e12,
        )
        cache.put(("gemm", 4096), point)
        # A fresh cache over the same store starts warm.
        warm = PersistentMemoCache(MemoStore(tmp_path / "cache"))
        got = warm.get(("gemm", 4096))
        assert got == point
        # Promotion: the second read is served from the memory tier.
        hits_before = warm.store.hits
        assert warm.get(("gemm", 4096)) == point
        assert warm.store.hits == hits_before

    def test_is_a_memocache(self, tmp_path):
        cache = PersistentMemoCache(MemoStore(tmp_path / "cache"))
        assert isinstance(cache, MemoCache)

    def test_custom_codec(self, tmp_path):
        store = MemoStore(tmp_path / "cache")
        cache = PersistentMemoCache(
            store, encode=lambda v: {"n": v}, decode=lambda d: d["n"]
        )
        cache.put("k", 7)
        fresh = PersistentMemoCache(
            MemoStore(tmp_path / "cache"),
            encode=lambda v: {"n": v},
            decode=lambda d: d["n"],
        )
        assert fresh.get("k") == 7
