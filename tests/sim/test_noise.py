"""Deterministic noise model."""

import pytest

from repro.sim.noise import QUIET, NoiseModel


class TestNoiseModel:
    def test_deterministic_across_instances(self):
        a = NoiseModel(amplitude=0.02)
        b = NoiseModel(amplitude=0.02)
        for rep in range(10):
            assert a.slowdown("key", rep) == b.slowdown("key", rep)

    def test_different_keys_differ(self):
        m = NoiseModel(amplitude=0.02)
        factors_a = [m.slowdown("a", r) for r in range(1, 20)]
        factors_b = [m.slowdown("b", r) for r in range(1, 20)]
        assert factors_a != factors_b

    def test_slowdown_at_least_one(self):
        m = NoiseModel(amplitude=0.05)
        assert all(m.slowdown("k", r) >= 1.0 for r in range(50))

    def test_bounded_by_amplitude(self):
        m = NoiseModel(amplitude=0.05, warmup_penalty=0.0)
        assert all(m.slowdown("k", r) <= 1.05 + 1e-12 for r in range(1, 50))

    def test_warmup_penalty_on_rep_zero(self):
        m = NoiseModel(amplitude=0.0, warmup_penalty=0.25)
        assert m.slowdown("k", 0) == pytest.approx(1.25)
        assert m.slowdown("k", 1) == pytest.approx(1.0)

    def test_some_repetition_hits_clean_value(self):
        # Best-of-N must be able to observe the noise-free time.
        m = NoiseModel(amplitude=0.05)
        assert any(
            m.slowdown("k", r) == pytest.approx(1.0) for r in range(1, 10)
        )

    def test_quiet_is_identity(self):
        assert QUIET.apply(2.5, "k", 7) == 2.5

    def test_seed_changes_stream(self):
        a = NoiseModel(amplitude=0.02, seed=0)
        b = NoiseModel(amplitude=0.02, seed=1)
        assert [a.slowdown("k", r) for r in range(1, 10)] != [
            b.slowdown("k", r) for r in range(1, 10)
        ]

    def test_rejects_negative_params(self):
        with pytest.raises(ValueError):
            NoiseModel(amplitude=-0.1)
