"""Roofline arithmetic."""

import pytest

from repro.sim.kernel import KernelSpec
from repro.sim.roofline import classify, kernel_time


def _spec(flops=0.0, rbytes=0.0, wbytes=0.0, chases=0):
    return KernelSpec(
        "k",
        flops=flops,
        bytes_read=rbytes,
        bytes_written=wbytes,
        serial_chases=chases,
        working_set_bytes=1,
    )


class TestKernelTime:
    def test_compute_bound(self):
        pt = kernel_time(_spec(flops=100.0, rbytes=1.0), 10.0, 1000.0)
        assert pt.bound == "compute"
        assert pt.total_s == pytest.approx(10.0)

    def test_memory_bound(self):
        pt = kernel_time(_spec(flops=1.0, rbytes=1000.0), 1000.0, 10.0)
        assert pt.bound == "memory"
        assert pt.total_s == pytest.approx(100.0)

    def test_overlap_takes_max_not_sum(self):
        pt = kernel_time(_spec(flops=100.0, rbytes=100.0), 10.0, 10.0)
        assert pt.total_s == pytest.approx(10.0)

    def test_latency_term_added_serially(self):
        pt = kernel_time(
            _spec(flops=100.0, chases=20), 10.0, 1e9, chase_latency_s=1.0
        )
        assert pt.bound == "latency"
        assert pt.total_s == pytest.approx(10.0 + 20.0)

    def test_rejects_nonpositive_rates(self):
        with pytest.raises(ValueError):
            kernel_time(_spec(flops=1.0), 0.0, 1.0)
        with pytest.raises(ValueError):
            kernel_time(_spec(flops=1.0), 1.0, -1.0)


class TestClassify:
    def test_ridge_point(self):
        # Ridge at 10 flops/byte: intensity 20 -> compute, 5 -> memory.
        assert classify(_spec(flops=20.0, rbytes=1.0), 100.0, 10.0) == "compute"
        assert classify(_spec(flops=5.0, rbytes=1.0), 100.0, 10.0) == "memory"
