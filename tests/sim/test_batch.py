"""The vectorized batch engine: parity, memoization, codecs, contracts.

The batch path's single promise is that it is the scalar engine run
faster: every numeric column must equal what point-by-point
:meth:`PerfEngine.roofline` calls produce, bit for bit.  These tests
pin that promise on the paper's own kernels, plus the batch-specific
surfaces — struct-of-arrays validation, chunk slicing, the block
digest, chunk-granular memoization, the memostore codec, and the
fault-engine rejection.
"""

import numpy as np
import pytest

from repro.dtypes import Precision
from repro.errors import KernelSpecError
from repro.hw.frequency import WorkloadKind
from repro.hw.systems import get_system
from repro.sim.batch import (
    BATCH_CODEC,
    BOUND_LABELS,
    BatchEngine,
    BatchResult,
    KernelBatch,
)
from repro.sim.engine import PerfEngine
from repro.sim.kernel import (
    fma_chain_kernel,
    gemm_kernel,
    pointer_chase_kernel,
    triad_kernel,
)
from repro.sim.memostore import MemoStore, PersistentMemoCache
from repro.sim.noise import QUIET


def _engine(name="aurora", **kwargs) -> PerfEngine:
    return PerfEngine(get_system(name), noise=QUIET, **kwargs)


def _paper_specs():
    return [
        fma_chain_kernel(Precision.FP64),
        fma_chain_kernel(Precision.FP32),
        triad_kernel(),
        gemm_kernel(Precision.FP64),
        gemm_kernel(Precision.FP16),
        pointer_chase_kernel(64 * 1024, 10_000),
    ]


class TestKernelBatch:
    def test_from_specs_round_trips(self):
        specs = _paper_specs()
        batch = KernelBatch.from_specs(specs, n_stacks=2)
        assert len(batch) == len(specs)
        for i, spec in enumerate(specs):
            rebuilt = batch.spec(i, name=spec.name)
            assert rebuilt == spec

    def test_scalars_broadcast(self):
        batch = KernelBatch.from_arrays(
            flops=[1.0, 2.0, 3.0], precision=Precision.FP64
        )
        assert len(batch) == 3
        assert batch.precision_code.tolist() == [0, 0, 0]
        assert batch.n_stacks.tolist() == [1, 1, 1]

    def test_integer_code_arrays_accepted(self):
        codes = np.array([0, 1, 0], dtype=np.int64)
        batch = KernelBatch.from_arrays(flops=[1.0, 1.0, 1.0], precision=codes)
        assert batch.precision_code.tolist() == [0, 1, 0]

    def test_length_mismatch_rejected(self):
        with pytest.raises(KernelSpecError):
            KernelBatch.from_arrays(flops=[1.0, 2.0], bytes_read=[1.0] * 3)

    def test_empty_point_rejected(self):
        with pytest.raises(KernelSpecError, match="empty kernel"):
            KernelBatch.from_arrays(flops=[1.0, 0.0])

    def test_negative_work_rejected(self):
        with pytest.raises(KernelSpecError, match="negative work"):
            KernelBatch.from_arrays(flops=[-1.0])

    def test_chase_needs_working_set(self):
        with pytest.raises(KernelSpecError, match="positive working set"):
            KernelBatch.from_arrays(serial_chases=[10], working_set_bytes=[0])

    def test_slicing_chunks(self):
        batch = KernelBatch.from_specs(_paper_specs())
        head, tail = batch[:2], batch[2:]
        assert len(head) == 2 and len(tail) == len(batch) - 2
        assert head.spec(0, name="p") == batch.spec(0, name="p")
        assert tail.spec(0, name="p") == batch.spec(2, name="p")
        with pytest.raises(TypeError):
            batch[0]

    def test_digest_is_content_addressed(self):
        a = KernelBatch.from_arrays(flops=[1.0, 2.0])
        b = KernelBatch.from_arrays(flops=[1.0, 2.0])
        c = KernelBatch.from_arrays(flops=[1.0, 3.0])
        assert a.digest() == b.digest()
        assert a.digest() != c.digest()


class TestParity:
    def test_paper_kernels_bit_for_bit(self):
        for name in ("aurora", "dawn", "jlse-h100"):
            engine = _engine(name)
            batch_engine = engine.batch()
            for n_stacks in (1, 2, engine.node.n_stacks):
                specs = _paper_specs()
                batch = KernelBatch.from_specs(specs, n_stacks=n_stacks)
                result = batch_engine.evaluate(batch)
                for i, spec in enumerate(specs):
                    assert result.point(i) == engine.roofline(spec, n_stacks)

    def test_mixed_stack_counts_in_one_batch(self):
        engine = _engine("aurora")
        spec = gemm_kernel(Precision.FP64)
        stacks = list(range(1, engine.node.n_stacks + 1))
        batch = KernelBatch.from_specs([spec] * len(stacks), n_stacks=stacks)
        result = engine.batch().evaluate(batch)
        for i, n in enumerate(stacks):
            assert result.point(i) == engine.roofline(spec, n)

    def test_bounds_match_scalar_labels(self):
        engine = _engine("aurora")
        specs = _paper_specs()
        batch = KernelBatch.from_specs(specs)
        result = engine.batch().evaluate(batch)
        bounds = result.bounds()
        for i, spec in enumerate(specs):
            assert bounds[i] == engine.roofline(spec, 1).bound
            assert bounds[i] in BOUND_LABELS

    def test_total_and_fom_columns(self):
        engine = _engine("dawn")
        specs = _paper_specs()
        batch = KernelBatch.from_specs(specs)
        result = engine.batch().evaluate(batch)
        fom = result.flops_per_s(batch.flops)
        for i, spec in enumerate(specs):
            point = engine.roofline(spec, 1)
            assert result.total_s[i] == point.total_s
            if spec.flops:
                assert fom[i] == spec.flops / point.total_s
            else:
                assert fom[i] == 0.0


class TestContracts:
    def test_fault_engine_rejected(self):
        from repro.faults import ExecutionContext

        ctx = ExecutionContext("device-loss", 0)
        engine = ctx.engine("aurora")
        with pytest.raises(ValueError, match="fault-free"):
            engine.batch()
        assert isinstance(_engine().batch(), BatchEngine)

    def test_stack_range_enforced(self):
        engine = _engine("aurora")
        batch = KernelBatch.from_arrays(flops=[1.0], n_stacks=[99])
        with pytest.raises(ValueError, match="1..12 stacks"):
            engine.batch().evaluate(batch)

    def test_rate_combos_resolved_once(self):
        engine = _engine("aurora")
        batch_engine = engine.batch()
        spec = gemm_kernel(Precision.FP64)
        batch = KernelBatch.from_specs([spec] * 1000, n_stacks=2)
        batch_engine.evaluate(batch)
        assert len(batch_engine._rate_cache) == 1
        batch_engine.evaluate(batch)
        assert len(batch_engine._rate_cache) == 1


class TestMemoization:
    def test_chunk_memoizes_as_one_entry(self):
        engine = _engine("aurora")
        batch_engine = engine.batch()
        batch = KernelBatch.from_specs(_paper_specs())
        assert len(engine.memo) == 0
        first = batch_engine.evaluate(batch, memoize=True)
        assert len(engine.memo) == 1
        again = batch_engine.evaluate(batch, memoize=True)
        assert again is first
        assert engine.memo.hits == 1

    def test_memo_key_separates_engines(self):
        batch = KernelBatch.from_specs(_paper_specs())
        aurora = _engine("aurora")
        ablated = PerfEngine(
            get_system("aurora"), noise=QUIET, enable_tdp=False
        )
        shared = aurora.memo
        ablated.memo = shared
        aurora.batch().evaluate(batch, memoize=True)
        ablated.batch().evaluate(batch, memoize=True)
        assert len(shared) == 2  # distinct identity digests, no collision


class TestCodec:
    def test_result_doc_round_trip(self):
        engine = _engine("dawn")
        batch = KernelBatch.from_specs(_paper_specs())
        result = engine.batch().evaluate(batch)
        doc = result.to_doc()
        rebuilt = BatchResult.from_doc(doc)
        for i in range(len(batch)):
            assert rebuilt.point(i) == result.point(i)

    def test_bad_schema_rejected(self):
        with pytest.raises(ValueError, match="batch-result"):
            BatchResult.from_doc({"schema": "nope"})

    def test_persistent_cache_round_trip(self, tmp_path):
        encode, decode = BATCH_CODEC
        engine = _engine("aurora")
        batch = KernelBatch.from_specs(_paper_specs())
        key = ("batch", engine.identity_digest(), batch.digest())

        store = MemoStore(tmp_path / "cache")
        cache = PersistentMemoCache(store, encode=encode, decode=decode)
        engine.memo = cache
        result = engine.batch().evaluate(batch, memoize=True)

        # A second process (fresh in-memory tier, same store) starts warm.
        warm = PersistentMemoCache(
            MemoStore(tmp_path / "cache"), encode=encode, decode=decode
        )
        restored = warm.get(key)
        assert restored is not None
        for i in range(len(batch)):
            assert restored.point(i) == result.point(i)


class TestTelemetry:
    def test_batch_counters(self):
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
        engine = PerfEngine(
            get_system("aurora"), noise=QUIET, telemetry=telemetry
        )
        batch_engine = engine.batch()
        batch = KernelBatch.from_specs(_paper_specs())
        batch_engine.evaluate(batch, memoize=True)
        batch_engine.evaluate(batch, memoize=True)
        snapshot = telemetry.metrics.snapshot()

        def total(name: str) -> float:
            return sum(s["value"] for s in snapshot[name]["samples"])

        assert total("batch.evals") == 2.0
        assert total("batch.points") == 2.0 * len(batch)
        assert total("batch.chunk_hits") == 1.0
