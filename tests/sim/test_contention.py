"""Proportional-share host contention."""

import pytest

from repro.sim.contention import (
    aggregate_rate,
    proportional_share,
    shared_throughput,
)


class TestProportionalShare:
    def test_no_cap_passthrough(self):
        assert proportional_share([1.0, 2.0], None) == [1.0, 2.0]

    def test_under_cap_passthrough(self):
        assert proportional_share([1.0, 2.0], 10.0) == [1.0, 2.0]

    def test_over_cap_scales_fairly(self):
        shares = proportional_share([30.0, 10.0], 20.0)
        assert shares == [pytest.approx(15.0), pytest.approx(5.0)]
        assert sum(shares) == pytest.approx(20.0)

    def test_rejects_negative_demand(self):
        with pytest.raises(ValueError):
            proportional_share([-1.0], 10.0)

    def test_empty(self):
        assert proportional_share([], 10.0) == []


class TestAggregateRate:
    def test_paper_d2h_example(self):
        # 12 stacks demand 53 GB/s each; host caps at 264 GB/s -> 40%.
        total = aggregate_rate([53e9] * 12, 264e9)
        assert total == pytest.approx(264e9)
        assert total / (53e9 * 12) == pytest.approx(0.415, abs=0.01)


class TestSharedThroughput:
    def test_identical_flows(self):
        assert shared_throughput(10.0, 4, 20.0) == pytest.approx(20.0)
        assert shared_throughput(10.0, 1, 20.0) == pytest.approx(10.0)

    def test_zero_flows(self):
        assert shared_throughput(10.0, 0, 20.0) == 0.0

    def test_rejects_negative_flows(self):
        with pytest.raises(ValueError):
            shared_throughput(10.0, -1, None)
