"""Content-addressed memoization of model evaluations."""

import pytest

from repro.dtypes import Precision
from repro.faults.context import ExecutionContext
from repro.hw.systems import get_system
from repro.sim.engine import PerfEngine
from repro.sim.kernel import gemm_kernel, triad_kernel
from repro.sim.memo import MemoCache, content_digest, kernel_signature


class TestMemoCache:
    def test_miss_then_hit(self):
        cache = MemoCache()
        assert cache.get("k") is None
        cache.put("k", 42)
        assert cache.get("k") == 42
        assert cache.stats() == {
            "entries": 1,
            "hits": 1,
            "misses": 1,
            "hit_rate": 0.5,
            "evictions": 0,
        }

    def test_none_values_rejected(self):
        with pytest.raises(ValueError, match="None"):
            MemoCache().put("k", None)

    def test_max_entries_validated(self):
        with pytest.raises(ValueError):
            MemoCache(max_entries=0)

    def test_fifo_eviction_at_capacity(self):
        cache = MemoCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts the oldest insertion, "a"
        assert len(cache) == 2
        assert cache.get("a") is None
        assert cache.get("b") == 2
        assert cache.get("c") == 3

    def test_no_eviction_at_exactly_max_entries(self):
        # Filling to exactly the cap must not evict: the boundary is
        # "would exceed", not "reached".
        cache = MemoCache(max_entries=3)
        for i, key in enumerate("abc"):
            cache.put(key, i)
        assert len(cache) == 3
        assert [cache.get(k) for k in "abc"] == [0, 1, 2]

    def test_single_eviction_one_past_the_boundary(self):
        cache = MemoCache(max_entries=3)
        for i, key in enumerate("abc"):
            cache.put(key, i)
        cache.put("d", 3)  # exactly one over: exactly one eviction
        assert len(cache) == 3
        assert cache.get("a") is None
        assert [cache.get(k) for k in "bcd"] == [1, 2, 3]

    def test_capacity_of_one_boundary(self):
        cache = MemoCache(max_entries=1)
        cache.put("a", 1)
        assert len(cache) == 1 and cache.get("a") == 1
        cache.put("b", 2)
        assert len(cache) == 1
        assert cache.get("a") is None and cache.get("b") == 2

    def test_overwrite_at_full_capacity_keeps_all_keys(self):
        # Overwriting an existing key while exactly full must not evict
        # a bystander.
        cache = MemoCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("b", 20)
        assert len(cache) == 2
        assert cache.get("a") == 1 and cache.get("b") == 20

    def test_overwrite_does_not_evict(self):
        cache = MemoCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert cache.get("b") == 2 and cache.get("a") == 10

    def test_clear_resets_counters(self):
        cache = MemoCache()
        cache.put("a", 1)
        cache.get("a")
        cache.get("zzz")
        cache.clear()
        assert cache.stats() == {
            "entries": 0,
            "hits": 0,
            "misses": 0,
            "hit_rate": 0.0,
            "evictions": 0,
        }


class TestContentDigest:
    def test_equal_content_equal_digest(self):
        a = gemm_kernel(Precision.FP64)
        b = gemm_kernel(Precision.FP64)
        assert a is not b
        assert content_digest(a) == content_digest(b)

    def test_different_content_different_digest(self):
        assert content_digest(gemm_kernel(Precision.FP64)) != content_digest(
            gemm_kernel(Precision.FP32)
        )
        assert content_digest(gemm_kernel(Precision.FP64, n=512)) != (
            content_digest(gemm_kernel(Precision.FP64))
        )

    def test_enum_keys_canonicalised(self):
        by_enum = {Precision.FP64: 1.0}
        by_name = {str(Precision.FP64): 1.0}
        assert content_digest(by_enum) == content_digest(by_name)

    def test_kernel_signature_matches_content_digest(self):
        spec = triad_kernel()
        assert spec.signature() == kernel_signature(spec) == content_digest(spec)


class TestEngineMemoization:
    def test_repeated_roofline_hits_the_cache(self):
        engine = PerfEngine(get_system("aurora"))
        spec = gemm_kernel(Precision.FP64)
        first = engine.roofline(spec, 1)
        second = engine.roofline(spec, 1)
        assert second is first  # the cached object, not a re-evaluation
        assert engine.memo.hits == 1 and engine.memo.misses == 1

    def test_scope_and_kernel_key_the_cache(self):
        engine = PerfEngine(get_system("aurora"))
        engine.roofline(gemm_kernel(Precision.FP64), 1)
        engine.roofline(gemm_kernel(Precision.FP64), 2)
        engine.roofline(triad_kernel(), 1)
        assert engine.memo.misses == 3 and engine.memo.hits == 0

    def test_quiet_copy_shares_the_memo(self):
        engine = PerfEngine(get_system("aurora"))
        quiet = engine.quiet()
        assert quiet.memo is engine.memo
        point = engine.roofline(triad_kernel(), 1)
        assert quiet.roofline(triad_kernel(), 1) is point

    def test_equal_content_engines_share_entries(self):
        shared = MemoCache()
        a = PerfEngine(get_system("aurora"), memo=shared)
        b = PerfEngine(get_system("aurora"), memo=shared)
        assert a.identity_digest() == b.identity_digest()
        point = a.roofline(triad_kernel(), 1)
        assert b.roofline(triad_kernel(), 1) is point

    def test_identity_digest_separates_systems(self):
        shared = MemoCache()
        aurora = PerfEngine(get_system("aurora"), memo=shared)
        dawn = PerfEngine(get_system("dawn"), memo=shared)
        assert aurora.identity_digest() != dawn.identity_digest()
        a = aurora.roofline(triad_kernel(), 1)
        d = dawn.roofline(triad_kernel(), 1)
        assert a is not d
        assert shared.misses == 2 and shared.hits == 0

    def test_fault_injected_engine_bypasses_the_cache(self):
        ctx = ExecutionContext("plane-outage", seed=0)
        engine = ctx.engine("aurora")
        assert engine.faults is not None
        engine.roofline(triad_kernel(), 1)
        engine.roofline(triad_kernel(), 1)
        assert ctx.memo.hits == 0 and ctx.memo.misses == 0

    def test_each_context_owns_a_private_cache(self):
        """Context scope keeps a campaign unit's hit/miss counters a
        pure function of the unit (the serial/parallel byte-identity
        requirement)."""
        a, b = ExecutionContext(), ExecutionContext()
        assert a.memo is not b.memo
        assert a.engine("aurora").memo is a.memo
