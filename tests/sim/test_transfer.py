"""Transfer model: PCIe, MDFI, Xe-Link, contention, ablations."""

import pytest

from repro.hw.ids import StackRef
from repro.hw.interconnect import LinkKind
from repro.hw.systems import get_system
from repro.sim.calibration import get_calibration
from repro.sim.engine import PerfEngine
from repro.sim.noise import QUIET
from repro.sim.transfer import TransferModel


def _model(name="aurora", **kw) -> TransferModel:
    system = get_system(name)
    return TransferModel(system.node, get_calibration(name), **kw)


class TestHostDevice:
    def test_single_stack_h2d_matches_table_ii(self):
        assert _model().host_device_bw(StackRef(0, 0), "h2d") == pytest.approx(
            54e9, rel=0.01
        )

    def test_d2h_slightly_slower(self):
        m = _model()
        assert m.host_device_bw(StackRef(0, 0), "d2h") < m.host_device_bw(
            StackRef(0, 0), "h2d"
        )

    def test_bidir_is_1p4x_not_2x(self):
        m = _model()
        uni = m.host_device_bw(StackRef(0, 0), "h2d")
        bidir = m.host_device_bw(StackRef(0, 0), "bidir")
        assert bidir / uni == pytest.approx(1.41, abs=0.02)

    def test_bad_direction_rejected(self):
        with pytest.raises(ValueError):
            _model().host_device_bw(StackRef(0, 0), "sideways")

    def test_two_stacks_share_card_link(self):
        # "One PVC" PCIe rate ~= "One Stack" rate (Table II).
        m = _model()
        card = m.node_host_bw("h2d", [StackRef(0, 0), StackRef(0, 1)])
        single = m.host_device_bw(StackRef(0, 0), "h2d")
        assert card == pytest.approx(single, rel=0.01)

    def test_full_node_d2h_capped_at_264(self):
        assert _model().node_host_bw("d2h") == pytest.approx(264e9, rel=0.01)

    def test_full_node_h2d_near_linear_in_cards(self):
        m = _model()
        total = m.node_host_bw("h2d")
        assert total == pytest.approx(6 * 54e9, rel=0.02)

    def test_contention_ablation_removes_cap(self):
        free = _model(enable_contention=False)
        assert free.node_host_bw("d2h") == pytest.approx(6 * 53e9, rel=0.02)

    def test_dawn_never_caps(self):
        m = _model("dawn")
        assert m.node_host_bw("h2d") == pytest.approx(4 * 53e9, rel=0.02)

    def test_transfer_time_includes_latency(self):
        m = _model()
        t_small = m.host_transfer_time(StackRef(0, 0), 1.0)
        assert t_small > 0
        t_large = m.host_transfer_time(StackRef(0, 0), 500e6)
        assert t_large == pytest.approx(500e6 / 54e9, rel=0.05)


class TestPeerToPeer:
    def test_local_pair_197(self):
        m = _model()
        assert m.p2p_bw(StackRef(0, 0), StackRef(0, 1)) == pytest.approx(
            197e9, rel=0.01
        )

    def test_local_bidir_284(self):
        m = _model()
        bw = m.p2p_bw(StackRef(0, 0), StackRef(0, 1), bidirectional=True)
        assert bw == pytest.approx(284e9, rel=0.01)

    def test_remote_pair_15(self):
        m = _model()
        assert m.p2p_bw(StackRef(0, 0), StackRef(1, 0)) == pytest.approx(
            15e9, rel=0.01
        )

    def test_remote_bidir_23(self):
        m = _model()
        bw = m.p2p_bw(StackRef(0, 0), StackRef(1, 0), bidirectional=True)
        assert bw == pytest.approx(23e9, rel=0.01)

    def test_remote_slower_than_pcie(self):
        # Section IV-B.7: Xe-Link "in fact slower than PCIe".
        m = _model()
        assert m.p2p_bw(StackRef(0, 0), StackRef(1, 0)) < m.host_device_bw(
            StackRef(0, 0), "h2d"
        )

    def test_cross_plane_same_rate_as_same_plane(self):
        # The Xe-Link hop bottlenecks either route.
        m = _model()
        same_plane = m.p2p_bw(StackRef(0, 0), StackRef(2, 0))
        cross_plane = m.p2p_bw(StackRef(0, 0), StackRef(1, 0))
        assert same_plane == pytest.approx(cross_plane)

    def test_pair_class(self):
        m = _model()
        assert m.pair_class(StackRef(0, 0), StackRef(0, 1)) == "local"
        assert m.pair_class(StackRef(0, 0), StackRef(5, 1)) == "remote"

    def test_concurrent_local_pairs_aurora(self):
        # Table III: six local pairs -> 1129 GB/s (95% parallel eff).
        m = _model()
        pairs = [(StackRef(c, 0), StackRef(c, 1)) for c in range(6)]
        assert m.concurrent_p2p_bw(pairs) == pytest.approx(1129e9, rel=0.01)

    def test_concurrent_empty(self):
        assert _model().concurrent_p2p_bw([]) == 0.0

    def test_planes_ablation_keeps_remote_rate(self):
        m = _model(enable_planes=False)
        assert m.p2p_bw(StackRef(0, 0), StackRef(1, 0)) == pytest.approx(
            15e9, rel=0.01
        )

    def test_mi250_gcd_to_gcd_37(self):
        # Table IV: 37 GB/s GCD-to-GCD.
        m = _model("jlse-mi250")
        assert m.p2p_bw(StackRef(0, 0), StackRef(0, 1)) == pytest.approx(
            37e9, rel=0.01
        )

    def test_achieved_link_bw_default_efficiency(self):
        m = _model()
        # NVLink isn't calibrated on Aurora; the default efficiency applies.
        assert m.achieved_link_bw(LinkKind.NVLINK4) == pytest.approx(
            450e9 * 0.85
        )


class TestEngineTransferFacade:
    def test_engine_p2p_with_noise_reproducible(self):
        e1 = PerfEngine(get_system("aurora"))
        e2 = PerfEngine(get_system("aurora"))
        t1 = e1.p2p_transfer_time(StackRef(0, 0), StackRef(0, 1), 5e8, rep=3)
        t2 = e2.p2p_transfer_time(StackRef(0, 0), StackRef(0, 1), 5e8, rep=3)
        assert t1 == t2

    def test_quiet_engine_has_no_noise(self):
        e = PerfEngine(get_system("aurora"), noise=QUIET)
        t_a = e.host_transfer_time(StackRef(0, 0), 5e8, rep=0)
        t_b = e.host_transfer_time(StackRef(0, 0), 5e8, rep=4)
        assert t_a == t_b
