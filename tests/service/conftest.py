"""Service-test helpers: an in-process daemon and a subprocess daemon.

The in-process fixture is what most tests want (fast, introspectable).
The subprocess helper exists for the drills that kill the daemon with
SIGKILL — you cannot crash-test a process you are running inside.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

from repro.service.daemon import BenchDaemon

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "src",
)


def post_request(url: str, doc: dict, wait: bool = True, timeout: float = 60.0):
    """POST one request; returns ``(status, decoded_body, headers)``."""
    suffix = "?wait=1" if wait else ""
    req = urllib.request.Request(
        url + "/v1/requests" + suffix,
        data=json.dumps(doc).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


def get_json(url: str, path: str, timeout: float = 30.0):
    try:
        with urllib.request.urlopen(url + path, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


@pytest.fixture
def daemon(tmp_path):
    d = BenchDaemon(tmp_path / "state", workers=2)
    d.start()
    yield d
    d.stop(timeout_s=10.0)


class DaemonProc:
    """A ``pvc-bench serve-bench`` subprocess (for kill drills)."""

    def __init__(self, state_dir: str, workers: int = 2) -> None:
        self.state_dir = str(state_dir)
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve-bench",
                "--dir", self.state_dir, "--workers", str(workers),
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
        )
        # The daemon announces its ephemeral port on stderr once ready.
        line = self.proc.stderr.readline()
        assert " at http://" in line, f"daemon failed to start: {line!r}"
        self.url = line.split(" at ")[1].split()[0]

    def sigkill(self) -> None:
        self.proc.kill()
        self.proc.wait(timeout=10)

    def sigterm(self, timeout: float = 30.0) -> int:
        self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=timeout)

    def stop(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=10)


def wait_for_done(url: str, request_id: str, timeout_s: float = 60.0) -> dict:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        status, doc = get_json(url, f"/v1/requests/{request_id}")
        if status == 200 and doc.get("status") in ("done", "failed",
                                                   "interrupted"):
            return doc
        time.sleep(0.1)
    raise AssertionError(f"request {request_id} never finished")
