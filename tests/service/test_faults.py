"""Service fault plans and the drills they drive against a live daemon."""

import pytest

from repro.errors import ScenarioError
from repro.faults.service import (
    SERVICE_SCENARIO_NAMES,
    build_service_plan,
    corrupt_store_objects,
)
from repro.service.daemon import BenchDaemon
from repro.service.loadgen import run_loadgen
from repro.sim.memo import content_digest
from repro.sim.memostore import MemoStore

from .conftest import post_request


class TestPlans:
    @pytest.mark.parametrize("scenario", SERVICE_SCENARIO_NAMES)
    def test_pure_function_of_scenario_and_seed(self, scenario):
        assert build_service_plan(scenario, 3) == build_service_plan(scenario, 3)
        assert build_service_plan(scenario, 3) != build_service_plan(scenario, 4)

    @pytest.mark.parametrize("scenario", SERVICE_SCENARIO_NAMES)
    def test_describe_names_the_scenario(self, scenario):
        plan = build_service_plan(scenario, 0)
        assert scenario in plan.describe()

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ScenarioError, match="unknown service fault"):
            build_service_plan("coffee-spill", 0)

    def test_storm_parameters_exceed_defaults(self):
        plan = build_service_plan("request-storm", 1)
        assert plan.storm_requests >= 200
        assert plan.storm_concurrency >= 32

    def test_kill_plan_has_a_target(self):
        plan = build_service_plan("service-kill", 5)
        assert plan.kill_after_completions >= 1


class TestCacheCorruptionDrill:
    def _filled_store(self, tmp_path, n=5):
        store = MemoStore(tmp_path / "cache")
        for i in range(n):
            store.put(content_digest(("unit", i)), {"i": i})
        return store

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_victims_quarantined_and_recomputable(self, tmp_path, seed):
        store = self._filled_store(tmp_path)
        plan = build_service_plan("cache-corruption", seed)
        victims = corrupt_store_objects(store, plan)
        assert 1 <= len(victims) <= plan.corrupt_count
        for key in victims:
            assert store.get(key) is None  # quarantined, not raised
        assert store.stats()["quarantined"] == len(victims)
        # The recompute path restores service.
        for key in victims:
            store.put(key, {"healed": True})
            assert store.get(key) == {"healed": True}

    def test_targets_are_deterministic(self, tmp_path):
        plan = build_service_plan("cache-corruption", 9)
        a = corrupt_store_objects(self._filled_store(tmp_path / "a"), plan)
        b = corrupt_store_objects(self._filled_store(tmp_path / "b"), plan)
        assert a == b

    def test_empty_store_is_a_noop(self, tmp_path):
        store = MemoStore(tmp_path / "cache")
        plan = build_service_plan("cache-corruption", 0)
        assert corrupt_store_objects(store, plan) == []

    def test_wrong_plan_rejected(self, tmp_path):
        store = MemoStore(tmp_path / "cache")
        with pytest.raises(ScenarioError, match="not 'cache-corruption'"):
            corrupt_store_objects(store, build_service_plan("slow-loris", 0))


class TestLiveDrills:
    def test_corruption_mid_service_heals(self, daemon):
        """Corrupt the live result cache between requests: the daemon
        quarantines, recomputes, and the answer stays byte-identical."""
        _, cold, _ = post_request(
            daemon.url, {"request_id": "a", "command": "table4"}
        )
        plan = build_service_plan("cache-corruption", 1)
        victims = corrupt_store_objects(daemon.state.cache, plan)
        assert victims
        _, healed, _ = post_request(
            daemon.url, {"request_id": "b", "command": "table4"}
        )
        assert healed["status"] == "done"
        assert healed["text"] == cold["text"]
        assert daemon.state.cache.stats()["quarantined"] >= 1
        # The quarantine surfaced on the live event stream.
        types = [r["type"] for r in daemon.events.live_records()]
        assert "cache-quarantined" in types

    def test_slow_loris_disconnected_not_queued(self, tmp_path):
        daemon = BenchDaemon(tmp_path / "s", workers=1)
        daemon.server.request_timeout = 1.0  # tight for the drill
        daemon.start()
        try:
            host, port = daemon.server.server_address[:2]
            plan = build_service_plan("slow-loris", 0)
            report = run_loadgen(
                host,
                port,
                requests=plan.loris_connections,
                concurrency=plan.loris_connections,
                distinct=1,
                seed=0,
                slow_loris_s=3.0,  # dribble past the 1s socket timeout
                timeout_s=15.0,
            )
            # Every loris was dropped; none became an accepted request.
            assert report.completed == 0
            assert daemon.admission.stats()["admitted"] == 0
            # And an honest client still gets served afterwards.
            status, doc, _ = post_request(
                daemon.url, {"request_id": "honest", "command": "table4"}
            )
            assert status == 200 and doc["status"] == "done"
        finally:
            daemon.stop(timeout_s=10.0)
