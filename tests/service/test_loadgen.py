"""Loadgen: deterministic populations, percentile math, live drills."""

from repro.service.admission import AdmissionController
from repro.service.daemon import BenchDaemon
from repro.service.loadgen import (
    LoadgenReport,
    VARIED_COMMANDS,
    build_requests,
    run_loadgen,
)


class TestPopulation:
    def test_same_knobs_same_population(self):
        a = build_requests(50, tenants=3, distinct=4, seed=7)
        b = build_requests(50, tenants=3, distinct=4, seed=7)
        assert a == b

    def test_seed_changes_content(self):
        a = build_requests(50, distinct=6, seed=1)
        b = build_requests(50, distinct=6, seed=2)
        assert a != b

    def test_distinct_one_shares_one_body(self):
        population = build_requests(20, distinct=1, seed=0)
        bodies = {(r["command"], r["seed"]) for r in population}
        assert len(bodies) == 1
        ids = {r["request_id"] for r in population}
        assert len(ids) == 20

    def test_distinct_spreads_commands(self):
        population = build_requests(60, distinct=6, seed=0)
        commands = {r["command"] for r in population}
        assert len(commands) > 1
        assert commands <= set(VARIED_COMMANDS)

    def test_tenants_cycle(self):
        population = build_requests(8, tenants=4)
        assert {r["tenant"] for r in population} == {
            "tenant-0", "tenant-1", "tenant-2", "tenant-3"
        }


class TestReport:
    def test_percentiles_from_shared_histogram(self):
        # Quantiles now come from the shared Histogram estimator: a
        # per-outcome percentile is bounded by the bucket the samples
        # landed in, and an empty outcome reads as 0.0.
        report = LoadgenReport()
        for _ in range(100):
            report.record("done", 0.03)
        p99 = report.percentile(0.99, "done")
        assert 0.01 < p99 <= 0.05
        assert report.percentile(0.99, "shed") == 0.0
        # The folded quantile over all outcomes matches when there is
        # only one outcome.
        assert report.percentile(0.99) == p99

    def test_deadline_population_carries_deadline(self):
        population = build_requests(4, deadline_s=0.5)
        assert all(r["deadline_s"] == 0.5 for r in population)
        bare = build_requests(4)
        assert all("deadline_s" not in r for r in bare)

    def test_hit_rate(self):
        report = LoadgenReport()
        report.record("done", 0.01, cached=True)
        report.record("done", 0.02, cached=True)
        report.record("done", 0.03, cached=False)
        assert report.hit_rate == 2 / 3

    def test_render_mentions_outcomes(self):
        report = LoadgenReport()
        report.record("done", 0.01, cached=True)
        report.record("shed", 0.001)
        text = report.render()
        assert "done" in text and "shed" in text and "hit rate" in text

    def test_to_dict_shape(self):
        report = LoadgenReport()
        report.record("done", 0.5)
        doc = report.to_dict()
        assert doc["outcomes"] == {"done": 1}
        assert doc["latency"]["done"]["count"] == 1
        assert doc["errors"] == 0


class TestDrills:
    def test_warm_cache_hit_rate(self, tmp_path):
        daemon = BenchDaemon(tmp_path / "s", workers=4)
        daemon.start()
        try:
            host, port = daemon.server.server_address[:2]
            report = run_loadgen(
                host, port, requests=60, concurrency=8, distinct=1, seed=1
            )
            assert report.errors == []
            assert report.completed == 60
            # One cold fill (plus at most a few concurrent races), then warm.
            assert report.hit_rate >= 0.9
            # Every response carried the daemon-minted traceparent.
            assert report.traced == 60
        finally:
            daemon.stop(timeout_s=10.0)

    def test_storm_sheds_with_retry_hints(self, tmp_path):
        daemon = BenchDaemon(
            tmp_path / "s",
            workers=2,
            admission=AdmissionController(
                bucket_capacity=5, bucket_rate=1.0, queue_depth=8
            ),
        )
        daemon.start()
        try:
            host, port = daemon.server.server_address[:2]
            report = run_loadgen(
                host, port, requests=40, concurrency=20, tenants=1,
                distinct=1, seed=2,
            )
            outcomes = report.to_dict()["outcomes"]
            assert outcomes.get("shed", 0) > 0
            assert report.retry_after_seen == outcomes["shed"]
            # Everything admitted still completed.
            assert outcomes.get("done", 0) >= 5
            assert report.errors == []
        finally:
            daemon.stop(timeout_s=10.0)
