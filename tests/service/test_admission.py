"""Admission control: token buckets, bounded queue, fair dequeue."""

import threading

import pytest

from repro.service.admission import AdmissionController, Decision, TokenBucket


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestTokenBucket:
    def test_burst_then_shed(self):
        bucket = TokenBucket(capacity=3, rate=1.0, now=0.0)
        assert bucket.take(0.0) == 0.0
        assert bucket.take(0.0) == 0.0
        assert bucket.take(0.0) == 0.0
        wait = bucket.take(0.0)
        assert wait == pytest.approx(1.0)

    def test_refill_restores_tokens(self):
        bucket = TokenBucket(capacity=2, rate=2.0, now=0.0)
        bucket.take(0.0)
        bucket.take(0.0)
        assert bucket.take(0.0) > 0.0
        assert bucket.take(1.0) == 0.0  # 2 tokens/s for 1s

    def test_refill_caps_at_capacity(self):
        bucket = TokenBucket(capacity=2, rate=100.0, now=0.0)
        bucket._refill(1000.0)
        assert bucket.tokens == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(capacity=0, rate=1.0, now=0.0)
        with pytest.raises(ValueError):
            TokenBucket(capacity=1, rate=0.0, now=0.0)


class TestAdmission:
    def _controller(self, clock, **kw):
        defaults = dict(bucket_capacity=2, bucket_rate=1.0, queue_depth=4)
        defaults.update(kw)
        return AdmissionController(clock=clock, **defaults)

    def test_admits_within_budget(self):
        ctl = self._controller(FakeClock())
        decision = ctl.submit("a", "item")
        assert decision == Decision(True)
        assert ctl.depth == 1

    def test_tenant_rate_shed_with_exact_hint(self):
        clock = FakeClock()
        ctl = self._controller(clock)
        ctl.submit("a", 1)
        ctl.submit("a", 2)
        decision = ctl.submit("a", 3)
        assert not decision.admitted
        assert decision.reason == "tenant rate"
        assert decision.retry_after_s == pytest.approx(1.0)

    def test_tenants_have_independent_buckets(self):
        ctl = self._controller(FakeClock())
        ctl.submit("a", 1)
        ctl.submit("a", 2)
        assert not ctl.submit("a", 3).admitted
        assert ctl.submit("b", 1).admitted

    def test_backlog_shed_when_queue_full(self):
        ctl = self._controller(FakeClock(), queue_depth=2, bucket_capacity=10)
        ctl.submit("a", 1)
        ctl.submit("a", 2)
        decision = ctl.submit("b", 3)
        assert not decision.admitted
        assert decision.reason == "queue full"
        assert decision.retry_after_s >= 1.0
        assert ctl.stats()["shed_backlog"] == 1

    def test_round_robin_across_tenants(self):
        ctl = self._controller(FakeClock(), bucket_capacity=10, queue_depth=10)
        for item in ("a1", "a2", "a3"):
            ctl.submit("a", item)
        ctl.submit("b", "b1")
        order = [ctl.take(timeout_s=0.1) for _ in range(4)]
        items = [item for _, item in order]
        # b's single item is served before a's backlog drains.
        assert items.index("b1") < items.index("a3")
        assert items[0] == "a1"  # FIFO within a tenant

    def test_take_blocks_until_submit(self):
        ctl = self._controller(FakeClock())
        results = []

        def taker():
            results.append(ctl.take(timeout_s=5.0))

        thread = threading.Thread(target=taker)
        thread.start()
        ctl.submit("a", "late")
        thread.join(timeout=5.0)
        assert results == [("a", "late")]

    def test_take_times_out_empty(self):
        ctl = self._controller(FakeClock())
        assert ctl.take(timeout_s=0.05) is None

    def test_closed_refuses_and_wakes(self):
        ctl = self._controller(FakeClock())
        ctl.close()
        decision = ctl.submit("a", 1)
        assert not decision.admitted
        assert decision.reason == "draining"
        assert ctl.take(timeout_s=5.0) is None

    def test_requeue_skips_admission_and_goes_first(self):
        clock = FakeClock()
        ctl = self._controller(clock)
        ctl.submit("a", "new")
        # Requeue ignores the (exhausted) bucket entirely.
        ctl.submit("a", "x")
        ctl.requeue("a", "recovered")
        tenant, item = ctl.take(timeout_s=0.1)
        assert item == "recovered"

    def test_admit_reserves_slot_before_enqueue(self):
        ctl = self._controller(FakeClock(), queue_depth=2, bucket_capacity=10)
        assert ctl.admit("a").admitted
        assert ctl.admit("a").admitted
        # Reserved-but-not-enqueued slots still count against depth.
        decision = ctl.admit("a")
        assert not decision.admitted
        assert decision.reason == "queue full"
        assert ctl.stats()["reserved"] == 2
        assert ctl.depth == 0

    def test_enqueue_and_release_consume_reservations(self):
        ctl = self._controller(FakeClock(), queue_depth=2, bucket_capacity=10)
        ctl.admit("a")
        ctl.admit("a")
        ctl.enqueue("a", "item")
        ctl.release()
        assert ctl.depth == 1
        assert ctl.stats()["reserved"] == 0
        # The released slot is admissible again.
        assert ctl.admit("a").admitted
        assert ctl.take(timeout_s=0.1) == ("a", "item")

    def test_submit_is_admit_plus_enqueue(self):
        ctl = self._controller(FakeClock(), bucket_capacity=10)
        assert ctl.submit("a", "x").admitted
        assert ctl.stats()["reserved"] == 0
        assert ctl.depth == 1

    def test_drain_items_empties_queue(self):
        ctl = self._controller(FakeClock(), bucket_capacity=10, queue_depth=10)
        ctl.submit("a", 1)
        ctl.submit("b", 2)
        items = ctl.drain_items()
        assert sorted(i for _, i in items) == [1, 2]
        assert ctl.depth == 0
