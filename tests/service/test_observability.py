"""Service observability: trace propagation, RED/SLO surfaces, board."""

import json

from repro.obs.requests import (
    TRACEPARENT_HEADER,
    mint_trace,
    parse_traceparent,
    read_requests,
)
from repro.service.admission import AdmissionController
from repro.service.daemon import BenchDaemon
from repro.service.loadgen import run_loadgen
from repro.service.state import ServiceState, normalize_request

from .conftest import get_json, post_request


class TestTracePropagation:
    def test_response_carries_deterministic_traceparent(self, daemon):
        status, doc, headers = post_request(
            daemon.url, {"request_id": "t-1", "command": "table4"}
        )
        assert status == 200
        minted = mint_trace("t-1", doc["digest"])
        assert doc["trace_id"] == minted.trace_id
        assert doc["span_id"] == minted.span_id
        header = {k.lower(): v for k, v in headers.items()}[
            TRACEPARENT_HEADER
        ]
        assert parse_traceparent(header) == minted

    def test_terminal_record_has_trace_and_phases(self, daemon):
        _, doc, _ = post_request(
            daemon.url, {"request_id": "t-2", "command": "table1"}
        )
        assert doc["status"] == "done"
        # The terminal record is written before its own serialization
        # completes, so it carries every phase but "serialize"; the
        # full set (serialize included) lands in requests.ndjson.
        assert set(doc["phases"]) == {
            "parse", "admission", "queue", "cache", "execute"
        }
        assert all(v >= 0 for v in doc["phases"].values())
        assert len(doc["trace_id"]) == 32
        records = read_requests(daemon.state.requests_stream_path)
        span = next(r for r in records if r["request"] == "t-2")
        assert "serialize" in span["phases"]

    def test_warm_replay_echoes_original_trace(self, daemon):
        _, cold, _ = post_request(
            daemon.url, {"request_id": "t-3", "command": "table5"}
        )
        _, warm, headers = post_request(
            daemon.url, {"request_id": "t-3", "command": "table5"}
        )
        assert warm["trace_id"] == cold["trace_id"]
        header = {k.lower(): v for k, v in headers.items()}[
            TRACEPARENT_HEADER
        ]
        assert parse_traceparent(header).trace_id == cold["trace_id"]

    def test_trace_ids_identical_serial_vs_parallel(self, tmp_path):
        """The acceptance drill: a request's trace id is a pure function
        of its content — worker count must not leak into it."""
        docs = {}
        for workers in (1, 4):
            d = BenchDaemon(tmp_path / f"w{workers}", workers=workers)
            d.start()
            try:
                _, doc, _ = post_request(
                    d.url, {"request_id": "det-1", "command": "fig1"}
                )
            finally:
                d.stop(timeout_s=10.0)
            docs[workers] = doc
        assert docs[1]["trace_id"] == docs[4]["trace_id"]
        assert docs[1]["span_id"] == docs[4]["span_id"]

    def test_trace_id_survives_journal_replay(self, tmp_path):
        """A recovered (journal-replayed) request carries the same trace
        id the original accept minted — crash recovery does not re-roll
        identity."""
        root = tmp_path / "state"
        state = ServiceState(root)
        body = normalize_request({"command": "table1"})
        state.journal_accepted("replay-1", "default", body)
        from repro.service.state import request_digest

        minted = mint_trace("replay-1", request_digest(body))
        daemon = BenchDaemon(root, workers=1)
        daemon.start()
        try:
            from .conftest import wait_for_done

            doc = wait_for_done(daemon.url, "replay-1")
        finally:
            daemon.stop(timeout_s=10.0)
        assert doc["status"] == "done"
        assert doc["trace_id"] == minted.trace_id


class TestRequestStream:
    def test_span_logged_per_terminal_request(self, daemon):
        post_request(daemon.url, {"request_id": "s-1", "command": "table4"})
        post_request(daemon.url, {"request_id": "s-2", "command": "table4"})
        records = read_requests(daemon.state.requests_stream_path)
        spans = [r for r in records if r["type"] == "request-span"]
        assert [s["request"] for s in spans] == ["s-1", "s-2"]
        assert spans[0]["cached"] is False
        assert spans[1]["cached"] is True
        assert spans[0]["endpoint"] == "bench:table4"
        assert spans[0]["latency_s"] > 0

    def test_shed_logged_with_reason(self, tmp_path):
        daemon = BenchDaemon(
            tmp_path / "s",
            workers=1,
            admission=AdmissionController(
                bucket_capacity=1, bucket_rate=0.001
            ),
        )
        daemon.start()
        try:
            post_request(
                daemon.url,
                {"request_id": "ok-1", "command": "table4",
                 "tenant": "alpha"},
            )
            status, doc, _ = post_request(
                daemon.url,
                {"request_id": "no-1", "command": "table1",
                 "tenant": "alpha"},
                wait=False,
            )
            assert status == 429
            assert doc["trace_id"]
        finally:
            daemon.stop(timeout_s=10.0)
        sheds = [
            r
            for r in read_requests(daemon.state.requests_stream_path)
            if r["type"] == "request-shed"
        ]
        assert len(sheds) == 1
        assert sheds[0]["request"] == "no-1"
        assert sheds[0]["tenant"] == "alpha"


class TestRedSloSurfaces:
    def test_metrics_scrape_is_openmetrics(self, daemon):
        post_request(daemon.url, {"request_id": "m-1", "command": "table4"})
        import urllib.request

        with urllib.request.urlopen(
            daemon.url + "/metrics", timeout=30
        ) as resp:
            assert resp.status == 200
            assert "openmetrics" in resp.headers["Content-Type"]
            text = resp.read().decode()
        assert "service_request_latency" in text
        assert "service_request_count" in text
        assert text.rstrip().endswith("# EOF")

    def test_healthz_embeds_slo_snapshot(self, daemon):
        post_request(daemon.url, {"request_id": "h-1", "command": "table4"})
        status, doc = get_json(daemon.url, "/healthz")
        assert status == 200
        slo = doc["slo"]
        assert slo["total"] >= 1
        assert slo["status"] in ("ok", "burning")
        assert set(slo["windows"]) == {"60s", "300s", "3600s"}
        for window in slo["windows"].values():
            assert {"total", "good", "error_rate", "burn_rate"} <= set(
                window
            )

    def test_board_document_shape(self, daemon):
        post_request(
            daemon.url,
            {"request_id": "b-1", "command": "table4", "tenant": "alpha"},
        )
        status, board = get_json(daemon.url, "/board")
        assert status == 200
        assert board["draining"] is False
        tenant = board["tenants"]["alpha"]
        assert tenant["requests"] == 1
        assert tenant["errors"] == 0
        assert tenant["p99_s"] > 0
        assert tenant["slo"]["total"] == 1
        assert board["phases"]["execute"]["count"] == 1
        assert board["slo"]["status"] == "ok"

    def test_custom_slo_objective_flows_through(self, tmp_path):
        from repro.obs.requests import SLOConfig

        daemon = BenchDaemon(
            tmp_path / "s",
            workers=1,
            slo=SLOConfig(latency_s=2.0, availability=0.95),
        )
        daemon.start()
        try:
            _, doc = get_json(daemon.url, "/healthz")
        finally:
            daemon.stop(timeout_s=10.0)
        assert doc["slo"]["objective"] == {
            "latency_s": 2.0, "availability": 0.95
        }


class TestDeadlineOutcome:
    def test_expired_request_is_distinct_outcome(self, daemon):
        status, doc, _ = post_request(
            daemon.url,
            {"request_id": "d-1", "command": "table4",
             "deadline_s": 1e-9},
        )
        assert status == 200
        assert doc["status"] == "failed"
        assert doc["reason"] == "deadline-expired"

    def test_loadgen_reports_expired_distinctly(self, daemon):
        host, port = daemon.server.server_address[:2]
        report = run_loadgen(
            host, port, requests=4, concurrency=2, distinct=1, seed=3,
            deadline_s=1e-9,
        )
        assert report.errors == []
        outcomes = report.to_dict()["outcomes"]
        assert outcomes.get("expired", 0) == 4
        assert "failed" not in outcomes

    def test_expired_requests_do_not_replay_on_recovery(self, tmp_path):
        """Deadline expiry must be terminal: a restart over the state
        directory finds nothing to replay."""
        root = tmp_path / "state"
        daemon = BenchDaemon(root, workers=1)
        daemon.start()
        try:
            post_request(
                daemon.url,
                {"request_id": "d-2", "command": "table4",
                 "deadline_s": 1e-9},
            )
        finally:
            daemon.stop(timeout_s=10.0)
        assert ServiceState(root).recover() == []


class TestServiceWatch:
    def test_offline_board_folds_stream(self, tmp_path):
        root = tmp_path / "state"
        daemon = BenchDaemon(root, workers=2)
        daemon.start()
        try:
            post_request(
                daemon.url,
                {"request_id": "w-1", "command": "table4",
                 "tenant": "alpha"},
            )
            post_request(
                daemon.url,
                {"request_id": "w-2", "command": "table4",
                 "tenant": "alpha"},
            )
        finally:
            daemon.stop(timeout_s=10.0)
        from repro.obs.watch import load_service_board, render_service_board

        board = load_service_board(root)
        assert board["tenants"]["alpha"]["requests"] == 2
        assert board["cache"]["hits"] == 1
        text = render_service_board(board, source=str(root))
        assert "alpha" in text
        assert "slo" in text
        assert "execute" in text

    def test_live_board_scrape_matches_daemon(self, daemon):
        post_request(
            daemon.url,
            {"request_id": "w-3", "command": "table4", "tenant": "beta"},
        )
        from repro.obs.watch import _scrape_board

        host, port = daemon.server.server_address[:2]
        board = _scrape_board(host, port)
        assert board["tenants"]["beta"]["requests"] == 1
        assert board["tenants"]["beta"]["tokens"] is not None

    def test_watch_cli_once_renders(self, tmp_path, capsys):
        root = tmp_path / "state"
        daemon = BenchDaemon(root, workers=1)
        daemon.start()
        try:
            post_request(
                daemon.url, {"request_id": "w-4", "command": "table1"}
            )
        finally:
            daemon.stop(timeout_s=10.0)
        from repro.cli import main

        assert main(["service", "watch", str(root), "--once"]) == 0
        out = capsys.readouterr().out
        assert "service board" in out
        assert "default" in out
