"""BenchDaemon: routes, idempotency, caching, drain, crash recovery.

The subprocess drills at the bottom are the PR's acceptance invariant:
SIGKILL the daemon at an arbitrary point, restart it over the same
state directory, and every accepted request completes exactly once
with byte-identical results.
"""

import json
import threading
import time
import urllib.request

import pytest

from repro.service.admission import AdmissionController
from repro.service.daemon import BenchDaemon
from repro.service.state import ServiceState

from .conftest import DaemonProc, get_json, post_request, wait_for_done


class TestRoutes:
    def test_root_and_healthz(self, daemon):
        status, doc = get_json(daemon.url, "/healthz")
        assert status == 200 and doc["status"] == "ok"
        with urllib.request.urlopen(daemon.url + "/", timeout=10) as resp:
            assert b"/v1/requests" in resp.read()

    def test_unknown_route_404(self, daemon):
        status, _ = get_json(daemon.url, "/nope")
        assert status == 404
        status, _ = get_json(daemon.url, "/v1/requests/missing")
        assert status == 404

    def test_bench_round_trip(self, daemon):
        status, doc, _ = post_request(
            daemon.url, {"request_id": "r1", "command": "table4"}
        )
        assert status == 200
        assert doc["status"] == "done"
        assert "Table IV" in doc["text"]
        assert doc["exit"] == 0

    def test_result_route_serves_plain_text(self, daemon):
        post_request(daemon.url, {"request_id": "r1", "command": "table4"})
        with urllib.request.urlopen(
            daemon.url + "/v1/requests/r1/result", timeout=30
        ) as resp:
            assert resp.headers["Content-Type"].startswith("text/plain")
            assert b"Table IV" in resp.read()

    def test_result_route_409_while_unfinished(self, daemon):
        status, doc = get_json(daemon.url, "/v1/requests/never/result")
        assert status == 404

    def test_malformed_requests_get_400(self, daemon):
        cases = [
            {"request_id": "x", "kind": "nope"},
            {"request_id": "x"},  # bench without command
            {"command": "table4"},  # missing id
            {"request_id": "", "command": "table4"},
            # Wrong-typed JSON values must map to 400 too (int({}) and
            # friends raise TypeError, not ValueError — a dropped
            # connection here would break the never-a-traceback
            # contract).
            {"request_id": "x", "command": "table4", "seed": {}},
            {"request_id": "x", "command": "table4", "seed": "abc"},
            {"request_id": "x", "command": "table4", "deadline_s": {"x": 1}},
            {"request_id": "x", "kind": "campaign", "jobs": [1]},
            ["not", "an", "object"],
        ]
        for doc in cases:
            status, body, _ = post_request(daemon.url, doc)
            assert status == 400, doc
            assert "error" in body

    def test_null_numeric_fields_mean_absent(self, daemon):
        # JSON null for an optional numeric reads as the default, not
        # a TypeError escaping as a dropped connection.
        status, doc, _ = post_request(
            daemon.url,
            {"request_id": "n1", "command": "table4", "seed": None,
             "deadline_s": None},
        )
        assert status == 200
        assert doc["status"] == "done"

    def test_unknown_command_fails_cleanly(self, daemon):
        status, doc, _ = post_request(
            daemon.url, {"request_id": "bad", "command": "tableX"}
        )
        assert status == 200
        assert doc["status"] == "failed"
        assert "unknown bench command" in doc["text"]

    def test_metrics_exposition(self, daemon):
        post_request(daemon.url, {"request_id": "m1", "command": "table4"})
        with urllib.request.urlopen(daemon.url + "/metrics", timeout=10) as resp:
            body = resp.read().decode()
        assert "service_cache_hit_rate" in body
        assert "service_requests" in body
        assert body.rstrip().endswith("# EOF")


class TestIdempotency:
    def test_same_id_replays_without_rerun(self, daemon):
        _, first, _ = post_request(
            daemon.url, {"request_id": "r1", "command": "table4"}
        )
        status, again, _ = post_request(
            daemon.url, {"request_id": "r1", "command": "table4"}
        )
        assert status == 200
        assert again["replayed"] is True
        assert again["text"] == first["text"]

    def test_distinct_ids_same_content_hit_cache(self, daemon):
        _, first, _ = post_request(
            daemon.url, {"request_id": "a", "command": "table4"}
        )
        _, second, _ = post_request(
            daemon.url, {"request_id": "b", "command": "table4"}
        )
        assert first["cached"] is False
        assert second["cached"] is True
        assert second["text"] == first["text"]
        assert second["digest"] == first["digest"]

    def test_scenario_and_seed_are_identity(self, daemon):
        _, a, _ = post_request(
            daemon.url, {"request_id": "a", "command": "table4", "seed": 1}
        )
        _, b, _ = post_request(
            daemon.url, {"request_id": "b", "command": "table4", "seed": 2}
        )
        assert a["digest"] != b["digest"]
        assert b["cached"] is False

    def test_concurrent_same_id_admits_exactly_once(self, daemon):
        # The retry key must dedupe even when the retry races the
        # original: of N simultaneous submits, one is fresh and the
        # rest replay.
        doc = {"request_id": "race", "command": "table4"}
        barrier = threading.Barrier(8)
        results = []
        results_lock = threading.Lock()

        def poster():
            barrier.wait()
            outcome = daemon.submit(dict(doc))
            with results_lock:
                results.append(outcome)

        threads = [threading.Thread(target=poster) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        done = daemon.wait_for("race", timeout_s=30.0)
        assert done["status"] == "done"
        fresh = [r for r in results if not r[1].get("replayed")]
        assert len(fresh) == 1
        accepted = [
            rec
            for rec in daemon.state.read_queue()[0]
            if rec["op"] == "accepted" and rec["request_id"] == "race"
        ]
        assert len(accepted) == 1  # journalled (and executed) once

    def test_concurrent_same_digest_serializes_execution(self, tmp_path):
        # Two distinct ids with equal content must never execute
        # concurrently (for campaigns both orchestrators would share
        # one run directory): the loser waits, then is served from the
        # cache entry the winner wrote.
        daemon = BenchDaemon(tmp_path / "s", workers=2)
        gauge = {"running": 0, "peak": 0}
        gauge_lock = threading.Lock()

        def slow_bench(body):
            with gauge_lock:
                gauge["running"] += 1
                gauge["peak"] = max(gauge["peak"], gauge["running"])
            time.sleep(0.3)
            with gauge_lock:
                gauge["running"] -= 1
            return "done", 0, "payload\n"

        daemon._run_bench = slow_bench
        daemon.start()
        try:
            for rid in ("twin-a", "twin-b"):
                status, _, _ = daemon.submit(
                    {"request_id": rid, "command": "table4"}
                )
                assert status == 202
            first = daemon.wait_for("twin-a", timeout_s=30.0)
            second = daemon.wait_for("twin-b", timeout_s=30.0)
            assert first["status"] == second["status"] == "done"
            assert first["text"] == second["text"] == "payload\n"
            assert gauge["peak"] == 1
            assert sorted([first["cached"], second["cached"]]) == [False, True]
        finally:
            daemon.stop(timeout_s=10.0)

    def test_shed_request_is_unregistered_and_unjournalled(self, tmp_path):
        daemon = BenchDaemon(
            tmp_path / "s",
            workers=1,
            admission=AdmissionController(
                bucket_capacity=1, bucket_rate=0.01, queue_depth=4
            ),
        )
        try:
            status, _, _ = daemon.submit(
                {"request_id": "ok", "command": "table4"}
            )
            assert status == 202
            status, body, _ = daemon.submit(
                {"request_id": "shed", "command": "table4"}
            )
            assert status == 429 and "retry_after_s" in body
            # The shed id left no trace: not in-flight, not journalled,
            # and a later retry is a fresh request, not a replay.
            assert daemon.request_status("shed") is None
            ops = [
                (rec["op"], rec["request_id"])
                for rec in daemon.state.read_queue()[0]
            ]
            assert ("accepted", "shed") not in ops
        finally:
            daemon.stop(timeout_s=10.0)


class TestDrain:
    def test_drain_endpoint_refuses_new_work(self, daemon):
        status, doc, _ = post_request(daemon.url, {"wait": 0}, wait=False)
        # (malformed, but proves the route is live before drain)
        with urllib.request.urlopen(
            urllib.request.Request(
                daemon.url + "/v1/drain", data=b"{}", method="POST"
            ),
            timeout=10,
        ) as resp:
            assert resp.status == 200
        status, doc, headers = post_request(
            daemon.url, {"request_id": "late", "command": "table4"}
        )
        assert status == 503
        assert "Retry-After" in headers

    def test_stop_is_clean_and_idempotent(self, tmp_path):
        daemon = BenchDaemon(tmp_path / "s", workers=1)
        daemon.start()
        assert daemon.stop(timeout_s=10.0) is True
        assert daemon.stop(timeout_s=1.0) is True

    def test_healthz_reports_draining(self, daemon):
        daemon.begin_drain()
        status, doc = get_json(daemon.url, "/healthz")
        assert doc["status"] == "draining"


class TestRecovery:
    def test_journalled_requests_replay_on_construction(self, tmp_path):
        state = ServiceState(tmp_path / "s")
        from repro.service.state import normalize_request

        body = normalize_request({"command": "table4"})
        state.journal_accepted("lost-1", "default", body)
        state.journal_accepted("lost-2", "default", body)
        daemon = BenchDaemon(tmp_path / "s", workers=1)
        try:
            assert daemon._recovered == 2
            daemon.start()
            done = wait_for_done(daemon.url, "lost-1")
            assert done["status"] == "done"
            done = wait_for_done(daemon.url, "lost-2")
            assert done["status"] == "done"
        finally:
            daemon.stop(timeout_s=10.0)

    def test_done_requests_not_replayed(self, tmp_path):
        daemon = BenchDaemon(tmp_path / "s", workers=1)
        daemon.start()
        post_request(daemon.url, {"request_id": "done-1", "command": "table4"})
        daemon.stop(timeout_s=10.0)
        again = BenchDaemon(tmp_path / "s", workers=1)
        try:
            assert again._recovered == 0
        finally:
            again.stop(timeout_s=5.0)


class TestCampaignRequests:
    def test_campaign_round_trip_and_shared_dir(self, daemon):
        status, doc, _ = post_request(
            daemon.url,
            {"request_id": "c1", "kind": "campaign", "spec": "smoke"},
            timeout=120,
        )
        assert status == 200
        assert doc["status"] == "done"
        assert doc["text"]
        # Same content under a different id: served from cache, not
        # re-run (the run directory is shared by content digest).
        status, again, _ = post_request(
            daemon.url,
            {"request_id": "c2", "kind": "campaign", "spec": "smoke"},
            timeout=120,
        )
        assert again["cached"] is True
        assert again["text"] == doc["text"]


@pytest.mark.slow
class TestKillDrill:
    """SIGKILL the daemon mid-flight; restart; nothing lost, bytes equal."""

    def test_sigkill_restart_idempotent_byte_identical(self, tmp_path):
        commands = ["table1", "table4", "table5", "fig1", "fig2", "fig3"]
        # Reference answers from an undisturbed daemon.
        reference = {}
        ref = DaemonProc(tmp_path / "ref")
        try:
            for i, command in enumerate(commands):
                _, doc, _ = post_request(
                    ref.url,
                    {"request_id": f"r-{i}", "command": command},
                    timeout=120,
                )
                reference[f"r-{i}"] = doc["text"]
        finally:
            assert ref.sigterm() == 0

        victim = DaemonProc(tmp_path / "state")
        accepted = []
        for i, command in enumerate(commands):
            status, doc, _ = post_request(
                victim.url,
                {"request_id": f"r-{i}", "command": command},
                wait=False,
                timeout=30,
            )
            assert status in (200, 202)
            accepted.append(f"r-{i}")
        victim.sigkill()  # mid-flight: some done, some queued, some running

        revived = DaemonProc(tmp_path / "state")
        try:
            for rid in accepted:
                done = wait_for_done(revived.url, rid, timeout_s=120)
                assert done["status"] == "done", rid
                assert done["text"] == reference[rid], rid
            # No duplicated work: the queue journal holds no survivors.
            state = ServiceState(tmp_path / "state")
            assert state.recover() == []
        finally:
            assert revived.sigterm() == 0

    def test_sigterm_drains_with_exit_zero(self, tmp_path):
        proc = DaemonProc(tmp_path / "state")
        post_request(
            proc.url, {"request_id": "d1", "command": "table4"}, timeout=60
        )
        assert proc.sigterm() == 0
