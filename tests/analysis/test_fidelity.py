"""Cell-by-cell fidelity: simulated output vs every published number.

These are the headline reproduction tests.  Tolerances are deliberately
explicit per table family; the few cells the paper itself reports with
unusual scatter (Dawn's 2-stack GEMM rows, Dawn full-node TF32) carry a
wider tolerance, documented in EXPERIMENTS.md.
"""

import pytest

from repro.analysis.paper_values import TABLE_II, TABLE_III, TABLE_VI
from repro.dtypes import Precision
from repro.hw.ids import StackRef
from repro.micro.p2p import local_pairs, remote_pairs

#: Default relative tolerance for Table II cells.
TOL = 0.06
#: Wider tolerance for the paper's own outlier cells.
WIDE = {"hgemm", "bf16gemm", "tf32gemm", "i8gemm", "dgemm", "fft_2d"}

_SCOPES = {"aurora": {1: 1, 2: 2, "node": 12}, "dawn": {1: 1, 2: 2, "node": 8}}


def _rate(engine, row: str, n: int) -> float:
    if row == "fp64_flops":
        return engine.fma_rate(Precision.FP64, n)
    if row == "fp32_flops":
        return engine.fma_rate(Precision.FP32, n)
    if row == "triad":
        return engine.stream_bw(n)
    if row.startswith("pcie"):
        direction = row.split("_")[1]
        refs = engine.node.stacks()[:n]
        if n == 1:
            return engine.transfers.host_device_bw(refs[0], direction)
        return engine.transfers.node_host_bw(direction, refs)
    if row.startswith("fft"):
        return engine.fft_rate(int(row[-2]), n)
    raise KeyError(row)


_GEMM_PRECISION = {
    "dgemm": Precision.FP64,
    "sgemm": Precision.FP32,
    "hgemm": Precision.FP16,
    "bf16gemm": Precision.BF16,
    "tf32gemm": Precision.TF32,
    "i8gemm": Precision.I8,
}


def _value(engine, row: str, n: int) -> float:
    if row in _GEMM_PRECISION:
        return engine.gemm_rate(_GEMM_PRECISION[row], n)
    return _rate(engine, row, n)


class TestTableII:
    @pytest.mark.parametrize("row", sorted(TABLE_II))
    @pytest.mark.parametrize("system", ["aurora", "dawn"])
    def test_cell(self, row, system, engines):
        engine = engines[system]
        for scope, paper in TABLE_II[row][system].items():
            n = _SCOPES[system][scope]
            got = _value(engine, row, n)
            tol = 0.15 if row in WIDE else TOL
            assert got == pytest.approx(paper, rel=tol), (
                f"{row}/{system}/{scope}: got {got:.3g}, paper {paper:.3g}"
            )


class TestTableIII:
    def test_local_pairs(self, engines):
        for system in ("aurora", "dawn"):
            engine = engines[system]
            tm = engine.transfers
            pairs = local_pairs(engine)
            uni_one = tm.p2p_bw(*pairs[0])
            bi_one = tm.p2p_bw(*pairs[0], bidirectional=True)
            uni_all = tm.concurrent_p2p_bw(pairs)
            bi_all = tm.concurrent_p2p_bw(pairs, bidirectional=True)
            t3 = TABLE_III
            assert uni_one == pytest.approx(t3["local_uni"][system]["one"], rel=0.03)
            assert bi_one == pytest.approx(t3["local_bidir"][system]["one"], rel=0.03)
            assert uni_all == pytest.approx(t3["local_uni"][system]["all"], rel=0.03)
            assert bi_all == pytest.approx(t3["local_bidir"][system]["all"], rel=0.03)

    def test_remote_pairs_aurora(self, aurora):
        tm = aurora.transfers
        pairs = remote_pairs(aurora)
        assert tm.p2p_bw(*pairs[0]) == pytest.approx(15e9, rel=0.03)
        assert tm.p2p_bw(*pairs[0], bidirectional=True) == pytest.approx(
            23e9, rel=0.03
        )
        assert tm.concurrent_p2p_bw(pairs) == pytest.approx(95e9, rel=0.07)
        assert tm.concurrent_p2p_bw(pairs, bidirectional=True) == pytest.approx(
            142e9, rel=0.05
        )


class TestTableVI:
    def test_every_published_cell(self, engines):
        from repro.apps import Hacc, OpenMc
        from repro.errors import BuildError, NotMeasuredError
        from repro.miniapps import CloverLeaf, MiniBude, MiniQmc, Rimp2

        apps = {
            "minibude": MiniBude(),
            "cloverleaf": CloverLeaf(),
            "miniqmc": MiniQmc(),
            "rimp2": Rimp2(),
            "openmc": OpenMc(),
            "hacc": Hacc(),
        }
        checked = 0
        for app_key, columns in TABLE_VI.items():
            app = apps[app_key]
            for system, cells in columns.items():
                engine = engines[system]
                for scope, paper in cells.items():
                    if paper is None:
                        continue
                    n = engine.node.n_stacks if scope == "node" else int(scope)
                    got = app.fom(engine, n)
                    assert got == pytest.approx(paper, rel=0.10), (
                        f"{app_key}/{system}/{scope}"
                    )
                    checked += 1
        assert checked == 39  # the paper publishes 39 non-blank FOM cells

    def test_blank_cells_stay_blank(self, mi250):
        from repro.errors import BuildError
        from repro.miniapps import Rimp2

        with pytest.raises(BuildError):
            Rimp2().fom(mi250, 1)
