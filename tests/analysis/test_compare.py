"""Every prose claim of the evaluation section must hold in simulation."""

from repro.analysis.compare import (
    all_claims,
    fp32_fp64_ratio,
    gemm_efficiencies,
    latency_relations,
    miniqmc_inversion,
    pcie_full_node_scaling,
    scaling_efficiencies,
    xelink_slower_than_pcie,
)


class TestIndividualClaimGroups:
    def test_scaling_efficiencies(self):
        assert all(c.holds for c in scaling_efficiencies())

    def test_fp32_fp64_ratio(self):
        assert all(c.holds for c in fp32_fp64_ratio())

    def test_gemm_efficiencies(self):
        assert all(c.holds for c in gemm_efficiencies())

    def test_pcie_full_node_scaling(self):
        assert all(c.holds for c in pcie_full_node_scaling())

    def test_xelink_slower_than_pcie(self):
        assert all(c.holds for c in xelink_slower_than_pcie())

    def test_latency_relations(self):
        assert all(c.holds for c in latency_relations())

    def test_miniqmc_inversion(self):
        assert all(c.holds for c in miniqmc_inversion())


class TestAllClaims:
    def test_every_claim_holds(self):
        claims = all_claims()
        failing = [c.name for c in claims if not c.holds]
        assert not failing, failing

    def test_claim_count_substantial(self):
        assert len(all_claims()) >= 20

    def test_claims_carry_both_sides(self):
        for c in all_claims():
            assert c.paper and c.simulated
