"""Scaling-curve studies and hardware self-checks."""

import pytest

from repro.analysis.scaling_study import app_scaling, micro_scaling
from repro.hw.selfcheck import self_check
from repro.hw.systems import all_systems


class TestMicroScaling:
    def test_full_curves_cover_all_counts(self, aurora):
        studies = {s.name: s for s in micro_scaling(aurora)}
        assert len(studies["fp64_flops"].points) == 12
        assert studies["fp64_flops"].points[0].efficiency == pytest.approx(1.0)

    def test_triad_is_perfectly_efficient(self, aurora):
        studies = {s.name: s for s in micro_scaling(aurora)}
        assert studies["triad"].full_node_efficiency == pytest.approx(1.0)
        assert studies["triad"].knee(0.99) is None

    def test_flops_knee_matches_quote(self, aurora):
        # Aurora FP64 scaling dips to ~95% at the full node.
        studies = {s.name: s for s in micro_scaling(aurora)}
        assert studies["fp64_flops"].full_node_efficiency == pytest.approx(
            0.955, abs=0.01
        )

    def test_pcie_d2h_knee_from_contention(self, aurora):
        """The D2H curve collapses once the host cap binds (~42%)."""
        studies = {s.name: s for s in micro_scaling(aurora)}
        d2h = studies["pcie_d2h"]
        assert d2h.full_node_efficiency < 0.5
        assert d2h.knee(0.9) is not None

    def test_dawn_curves_shorter(self, dawn):
        studies = micro_scaling(dawn)
        assert all(s.points[-1].n_stacks == 8 for s in studies)


class TestAppScaling:
    def test_miniqmc_congestion_knee(self, aurora):
        studies = {s.name: s for s in app_scaling(aurora)}
        qmc = studies["miniqmc"]
        # Efficiency collapses well before the full node.
        assert qmc.full_node_efficiency < 0.5
        assert qmc.knee(0.8) is not None
        assert qmc.knee(0.8) <= 8

    def test_cloverleaf_stays_efficient(self, aurora):
        studies = {s.name: s for s in app_scaling(aurora)}
        assert studies["cloverleaf"].full_node_efficiency > 0.9

    def test_rimp2_strong_scaling_decay(self, aurora):
        studies = {s.name: s for s in app_scaling(aurora)}
        effs = [p.efficiency for p in studies["rimp2"].points]
        # Strong scaling: monotonically decaying efficiency.
        assert all(b <= a + 1e-9 for a, b in zip(effs, effs[1:]))


class TestSelfCheck:
    @pytest.mark.parametrize("system", all_systems(), ids=lambda s: s.name)
    def test_every_paper_system_passes(self, system):
        results = self_check(system)
        failing = [c.name for c in results if not c.passed]
        assert not failing, failing
        assert len(results) >= 7

    def test_extension_systems_pass(self):
        from repro.hw.extensions import frontier, jlse_a100

        for system in (frontier(), jlse_a100()):
            assert all(c.passed for c in self_check(system)), system.name
