"""Figure regenerators: series shapes and paper ratios."""

import numpy as np
import pytest

from repro.analysis.figures import figure1, figure2, figure3, figure4


class TestFigure1:
    def test_four_series(self):
        series = figure1()
        assert {s.system for s in series} == {
            "aurora",
            "dawn",
            "jlse-h100",
            "jlse-mi250",
        }

    def test_curves_monotone_nondecreasing(self):
        for s in figure1():
            assert np.all(np.diff(s.latency_cycles) >= -1e-9), s.system

    def test_pvc_systems_track_each_other(self):
        series = {s.system: s for s in figure1()}
        a, d = series["aurora"], series["dawn"]
        n = min(len(a.sizes_bytes), len(d.sizes_bytes))
        assert np.allclose(
            a.latency_cycles[:n], d.latency_cycles[:n], rtol=0.02
        )

    def test_h100_fastest_l1(self):
        series = {s.system: s for s in figure1()}
        assert series["jlse-h100"].latency_cycles[0] < min(
            series["aurora"].latency_cycles[0],
            series["jlse-mi250"].latency_cycles[0],
        )

    def test_mi250_l2_plateau_below_pvc(self):
        series = {s.system: s for s in figure1()}

        def at(s, size):
            idx = int(np.argmin(np.abs(s.sizes_bytes - size)))
            return s.latency_cycles[idx]

        assert at(series["jlse-mi250"], 4 << 20) < at(series["aurora"], 4 << 20)


class TestFigure2:
    def test_measured_ratios_match_paper(self):
        points = {(p.app, p.scope): p for p in figure2()}
        # Paper Table VI ratios.
        assert points[("minibude", "One Stack")].ratio == pytest.approx(
            293.02 / 366.17, rel=0.03
        )
        assert points[("miniqmc", "Full node")].ratio == pytest.approx(
            15.64 / 16.28, rel=0.05
        )

    def test_bars_near_measurements(self):
        # "In general the black expected performance bars are close to the
        # columns" — every bar within 25% where one exists.
        for p in figure2():
            if p.expected.ratio is not None and p.ratio is not None:
                assert p.within_expectation, (p.app, p.scope)

    def test_miniqmc_has_no_bars(self):
        for p in figure2():
            if p.app == "miniqmc":
                assert p.expected.ratio is None


class TestFigure3:
    def test_single_gpu_range_0p6_to_1p8(self):
        # "The performance of a single PVC on Aurora and Dawn relative to
        # an H100 ranges from 0.6x and 1.8x".
        ratios = [
            p.ratio
            for p in figure3()
            if p.scope in ("gpu",) and p.ratio is not None
        ]
        assert 0.55 <= min(ratios) <= 0.7
        assert 1.3 <= max(ratios) <= 1.9

    def test_cloverleaf_lowest_miniqmc_highest(self):
        points = [p for p in figure3() if p.scope == "gpu" and p.ratio]
        lowest = min(points, key=lambda p: p.ratio)
        highest = max(points, key=lambda p: p.ratio)
        assert lowest.app.startswith("cloverleaf")
        assert highest.app.startswith("miniqmc")

    def test_minibude_beats_expectation(self):
        # "we see miniBUDE performing better than expected".
        for p in figure3():
            if p.app.startswith("minibude") and p.expected.ratio is not None:
                assert p.ratio > p.expected.ratio


class TestFigure4:
    def test_stack_vs_gcd_range_0p8_to_7p5(self):
        # "the performance of a single Stack ... range from 0.8x to 7.5x,
        # with again Cloverleaf as the lowest and miniQMC as the highest".
        points = [p for p in figure4() if p.scope == "stack" and p.ratio]
        ratios = [p.ratio for p in points]
        assert 0.7 <= min(ratios) <= 0.95
        assert 6.0 <= max(ratios) <= 8.0
        assert min(points, key=lambda p: p.ratio).app.startswith("cloverleaf")
        assert max(points, key=lambda p: p.ratio).app.startswith("miniqmc")

    def test_node_miniqmc_up_to_18x(self):
        # "For a single node, the performance ... ranges from 0.8x to 18x".
        node_qmc = [
            p.ratio
            for p in figure4()
            if p.app.startswith("miniqmc") and p.scope == "node" and p.ratio
        ]
        assert max(node_qmc) == pytest.approx(16.28 / 0.90, rel=0.1)

    def test_rimp2_absent_for_mi250(self):
        # mini-GAMESS failed to build on MI250: ratios undefined.
        for p in figure4():
            if p.app.startswith("rimp2"):
                assert p.ratio is None
