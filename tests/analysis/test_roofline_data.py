"""Roofline chart data."""

import numpy as np
import pytest

from repro.analysis.roofline_data import paper_kernels, roofline_series
from repro.dtypes import Precision


class TestRooflineSeries:
    def test_ridge_point_is_roof_over_slope(self, aurora):
        series = roofline_series(aurora, Precision.FP64)
        assert series.ridge_intensity == pytest.approx(
            series.compute_roof / series.memory_slope
        )
        # PVC stack: 17e12 / 1e12 = 13 flop/B.
        assert series.ridge_intensity == pytest.approx(17.0, rel=0.05)

    def test_attainable_below_both_roofs(self, aurora):
        series = roofline_series(aurora, Precision.FP64)
        assert np.all(series.attainable <= series.compute_roof + 1e-6)
        assert np.all(
            series.attainable <= series.memory_slope * series.intensity + 1e-6
        )

    def test_attainable_monotone(self, aurora):
        series = roofline_series(aurora, Precision.FP32)
        assert np.all(np.diff(series.attainable) >= -1e-9)

    def test_full_node_roof_scales(self, aurora):
        one = roofline_series(aurora, Precision.FP64, n_stacks=1)
        node = roofline_series(aurora, Precision.FP64, n_stacks=12)
        assert node.compute_roof > 11 * one.compute_roof


class TestPaperKernels:
    def test_kernels_classified_correctly(self, aurora):
        points = {p.name: p for p in paper_kernels(aurora)}
        assert points["stream-triad"].bound == "memory"
        assert points["gemm-fp64-n20480"].bound == "compute"
        assert points["fma-chain-fp64"].bound == "compute"

    def test_triad_sits_left_of_ridge(self, aurora):
        series = roofline_series(aurora, Precision.FP64)
        points = {p.name: p for p in paper_kernels(aurora)}
        assert points["stream-triad"].intensity < series.ridge_intensity
        assert points["gemm-fp64-n20480"].intensity > series.ridge_intensity

    def test_achieved_below_attainable(self, aurora):
        series = roofline_series(aurora, Precision.FP64)
        for p in paper_kernels(aurora):
            if p.name.startswith("gemm-fp32"):
                continue  # FP32 kernel judged against its own roof
            roof = min(
                series.compute_roof, series.memory_slope * p.intensity
            )
            assert p.achieved <= roof * 1.05
