"""Expected-ratio black bars (the appendix's worked examples)."""

import pytest

from repro.analysis.expected import fig2_expected, fig3_expected, fig4_expected


class TestFig2Bars:
    def test_minibude_0p88(self, aurora, dawn):
        # "the expected relative performance is the ratio of the peak
        # single precision performance on Aurora to that on Dawn, 0.88X
        # (23 Tflops/s / 26 Tflop/s)".
        bar = fig2_expected("minibude", aurora, dawn)
        assert bar.ratio == pytest.approx(23 / 26, rel=0.02)

    def test_cloverleaf_unity(self, aurora, dawn):
        # Memory-bound: both systems stream at the same per-stack rate.
        bar = fig2_expected("cloverleaf", aurora, dawn)
        assert bar.ratio == pytest.approx(1.0, rel=0.01)

    def test_rimp2_dgemm_ratio(self, aurora, dawn):
        bar = fig2_expected("rimp2", aurora, dawn)
        assert bar.ratio == pytest.approx(13 / 17, rel=0.03)

    def test_miniqmc_has_no_bar(self, aurora, dawn):
        # "miniQMC does not have the expected performance bars".
        assert fig2_expected("miniqmc", aurora, dawn).ratio is None

    def test_unknown_app_rejected(self, aurora, dawn):
        with pytest.raises(ValueError):
            fig2_expected("hacc", aurora, dawn)


class TestFig3Bars:
    def test_cloverleaf_0p59(self, aurora):
        # "the expected ratio is 0.59" (2 TB/s / 3.35 TB/s).
        bar = fig3_expected("cloverleaf", aurora, "gpu")
        assert bar.ratio == pytest.approx(2.0 / 3.35, rel=0.02)

    def test_minibude_one_pvc_vs_h100(self, aurora):
        bar = fig3_expected("minibude", aurora, "gpu")
        assert bar.ratio == pytest.approx(45 / 67, rel=0.03)

    def test_node_scope_scales_reference(self, aurora):
        gpu = fig3_expected("cloverleaf", aurora, "gpu")
        node = fig3_expected("cloverleaf", aurora, "node")
        # 12 TB/s vs 4 x 3.35 TB/s = 0.896.
        assert node.ratio == pytest.approx(12 / 13.4, rel=0.02)
        assert node.ratio > gpu.ratio

    def test_bad_scope(self, aurora):
        with pytest.raises(ValueError):
            fig3_expected("minibude", aurora, "rack")


class TestFig4Bars:
    def test_minibude_aurora_unity(self, aurora):
        # Appendix: "For Aurora it's 1.0X (23 Tflops/s / (45.3/2) Tflop/s)".
        bar = fig4_expected("minibude", aurora, "stack")
        assert bar.ratio == pytest.approx(23 / (45.3 / 2), rel=0.02)

    def test_minibude_dawn_1p1(self, dawn):
        bar = fig4_expected("minibude", dawn, "stack")
        assert bar.ratio == pytest.approx(26 / (45.3 / 2), rel=0.02)

    def test_cloverleaf_stack_vs_gcd(self, aurora):
        bar = fig4_expected("cloverleaf", aurora, "stack")
        assert bar.ratio == pytest.approx(1.0 / 1.6, rel=0.02)

    def test_formula_recorded(self, aurora):
        bar = fig4_expected("rimp2", aurora, "stack")
        assert "mi250" in bar.formula
