"""Table regenerators render the paper's layout."""

import pytest

from repro.analysis.tables import (
    table_i,
    table_ii,
    table_iii,
    table_iv,
    table_v,
    table_vi,
)


@pytest.fixture(scope="module")
def rendered_ii():
    return table_ii()


class TestTableI:
    def test_lists_all_micros(self):
        text = table_i()
        for name in ("fft", "gemm", "lats", "p2p", "pcie", "peak_flops", "triad"):
            assert name in text


class TestTableII:
    def test_has_14_rows_and_6_columns(self, rendered_ii):
        assert len(rendered_ii.rows) == 14
        assert len(rendered_ii.columns) == 6

    def test_headline_cells(self, rendered_ii):
        q = rendered_ii.get(
            "Double Precision Peak Flops", "Aurora (PVC) / One Stack"
        )
        assert q.value == pytest.approx(17e12, rel=0.03)
        q = rendered_ii.get("DGEMM", "Dawn (PVC) / One Stack")
        assert q.value == pytest.approx(17e12, rel=0.03)

    def test_render_contains_units(self, rendered_ii):
        text = rendered_ii.render()
        assert "TFlop/s" in text
        assert "GB/s" in text
        assert "PIop/s" in text or "PFlop/s" in text


class TestTableIII:
    def test_dawn_remote_cells_blank(self):
        t = table_iii()
        assert t.get(
            "Remote Stack Unidirectional Bandwidth",
            "Dawn (PVC) / One Stack-Pair",
        ) is None
        rendered = t.render()
        assert "-" in rendered

    def test_aurora_local_cell(self):
        t = table_iii()
        q = t.get(
            "Local Stack Unidirectional Bandwidth",
            "Aurora (PVC) / One Stack-Pair",
        )
        assert q.value == pytest.approx(197e9, rel=0.03)


class TestTableIV:
    def test_reference_peaks(self):
        t = table_iv()
        assert t.get("FP32 peak", "H100").value == pytest.approx(67e12)
        assert t.get("FP64 peak", "MI250").value == pytest.approx(45.3e12)
        assert t.get("DGEMM", "1x GCD MI250x").value == pytest.approx(24.1e12)
        assert t.get("DGEMM", "H100") is None


class TestTableV:
    def test_mentions_every_app(self):
        text = table_v()
        for name in (
            "miniBUDE",
            "CloverLeaf",
            "miniQMC",
            "RI-MP2",
            "OpenMC",
            "HACC",
        ):
            assert name in text


class TestTableVI:
    def test_blank_and_filled_cells(self):
        t = table_vi()
        # miniBUDE has only single-device cells.
        assert t.get("miniBUDE", "Aurora (PVC) / One GPU") is None
        assert t.get("miniBUDE", "Aurora (PVC) / One Stack").value == (
            pytest.approx(293.02, rel=0.03)
        )
        # mini-GAMESS blank on MI250 (build failure).
        assert t.get("mini-GAMESS", "JLSE (MI250) / One GCD") is None
        # HACC full-node only.
        assert t.get("HACC", "Aurora (PVC) / One Stack") is None
        assert t.get("HACC", "Aurora (PVC) / Six PVC").value == pytest.approx(
            13.81, rel=0.02
        )
