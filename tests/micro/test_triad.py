"""STREAM triad microbenchmark."""

import numpy as np
import pytest

from repro.core.units import MIB
from repro.micro.triad import STREAM_FACTOR, Triad, triad, triad_array_bytes


class TestTriadNumerics:
    def test_elementwise_result(self):
        b = np.arange(10.0)
        c = np.ones(10)
        assert np.allclose(triad(b, c, 2.5), b + 2.5)

    def test_out_buffer_reused(self):
        b = np.ones(8)
        c = np.ones(8)
        out = np.empty(8)
        result = triad(b, c, 1.0, out=out)
        assert result is out
        assert np.allclose(out, 2.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            triad(np.ones(4), np.ones(5), 1.0)


class TestSizing:
    def test_pvc_arrays_are_4x_llc(self, aurora):
        # 192 MiB LLC x 4 = the paper's 805 MB per array.
        assert triad_array_bytes(aurora) == 192 * MIB * STREAM_FACTOR

    def test_h100_arrays_follow_its_l2(self, h100):
        assert triad_array_bytes(h100) == 50 * MIB * STREAM_FACTOR


class TestMeasurement:
    def test_one_stack_1tb(self, aurora):
        result = Triad().measure(aurora, 1)
        assert result.value == pytest.approx(1e12, rel=0.02)

    def test_scaling_is_linear(self, aurora):
        r1 = Triad().measure(aurora, 1).value
        r12 = Triad().measure(aurora, 12).value
        assert r12 == pytest.approx(12 * r1, rel=0.01)

    def test_h100_stream_2p7tb(self, h100):
        assert Triad().measure(h100, 1).value == pytest.approx(2.75e12, rel=0.03)

    def test_mi250_gcd_1p3tb(self, mi250):
        # Table IV: 1.3 TB/s per GCD.
        assert Triad().measure(mi250, 1).value == pytest.approx(1.3e12, rel=0.02)
