"""PCIe transfer microbenchmark (Table II PCIe rows)."""

import pytest

from repro.core.units import MB
from repro.micro.pcie import TRANSFER_BYTES, PcieBandwidth


class TestConfig:
    def test_paper_message_size(self):
        assert TRANSFER_BYTES == 500 * MB

    def test_bad_direction_rejected(self):
        with pytest.raises(ValueError):
            PcieBandwidth("up")


class TestSingleStack:
    def test_h2d_54(self, aurora):
        result = PcieBandwidth("h2d").measure(aurora, 1)
        assert result.value == pytest.approx(54e9, rel=0.03)

    def test_d2h_53(self, aurora):
        assert PcieBandwidth("d2h").measure(aurora, 1).value == pytest.approx(
            53e9, rel=0.03
        )

    def test_bidir_76(self, aurora):
        assert PcieBandwidth("bidir").measure(aurora, 1).value == pytest.approx(
            76e9, rel=0.03
        )

    def test_dawn_slightly_slower(self, aurora, dawn):
        a = PcieBandwidth("d2h").measure(aurora, 1).value
        d = PcieBandwidth("d2h").measure(dawn, 1).value
        assert d < a


class TestScopes:
    def test_one_pvc_same_as_one_stack(self, aurora):
        # Both stacks share the card's single PCIe link.
        one = PcieBandwidth("h2d").measure(aurora, 1).value
        card = PcieBandwidth("h2d").measure(aurora, 2).value
        assert card == pytest.approx(one, rel=0.03)

    def test_aurora_node_d2h_contention(self, aurora):
        node = PcieBandwidth("d2h").measure(aurora, 12).value
        assert node == pytest.approx(264e9, rel=0.03)
        # "40% = 264/(53 x 12)".
        single = PcieBandwidth("d2h").measure(aurora, 1).value
        assert node / (single * 12) == pytest.approx(0.42, abs=0.04)

    def test_aurora_node_bidir_350(self, aurora):
        assert PcieBandwidth("bidir").measure(aurora, 12).value == (
            pytest.approx(350e9, rel=0.03)
        )

    def test_dawn_node_no_contention(self, dawn):
        node = PcieBandwidth("h2d").measure(dawn, 8).value
        assert node == pytest.approx(4 * 53e9, rel=0.03)

    def test_mi250_pcie_gen4_25(self, mi250):
        # Table IV: 25 GB/s unidirectional over Gen4.
        assert PcieBandwidth("h2d").measure(mi250, 1).value == pytest.approx(
            25e9, rel=0.03
        )
