"""The full STREAM kernel suite and the quantization helpers."""

import numpy as np
import pytest

from repro.micro.gemm import quantize_bf16, quantize_tf32
from repro.micro.triad import (
    STREAM_BYTES_PER_ELEMENT,
    stream_add,
    stream_copy,
    stream_scale,
)


class TestStreamKernels:
    def test_copy(self):
        a = np.arange(8.0)
        out = stream_copy(a)
        assert np.array_equal(out, a)
        assert out is not a

    def test_scale(self):
        a = np.arange(8.0)
        assert np.allclose(stream_scale(a, 2.5), 2.5 * a)

    def test_add(self):
        a, b = np.arange(8.0), np.ones(8)
        assert np.allclose(stream_add(a, b), a + 1.0)
        with pytest.raises(ValueError):
            stream_add(a, np.ones(4))

    def test_out_buffers_reused(self):
        a = np.arange(8.0)
        out = np.empty(8)
        assert stream_copy(a, out) is out
        assert stream_scale(a, 2.0, out) is out
        assert stream_add(a, a, out) is out

    def test_bytes_accounting(self):
        assert STREAM_BYTES_PER_ELEMENT["copy"] == 16
        assert STREAM_BYTES_PER_ELEMENT["triad"] == 24
        # Add and triad move the same traffic; copy and scale likewise.
        assert (
            STREAM_BYTES_PER_ELEMENT["add"] == STREAM_BYTES_PER_ELEMENT["triad"]
        )


class TestQuantization:
    def test_bf16_idempotent(self):
        x = np.random.default_rng(0).standard_normal(100).astype(np.float32)
        q = quantize_bf16(x)
        assert np.array_equal(quantize_bf16(q), q)

    def test_tf32_idempotent(self):
        x = np.random.default_rng(1).standard_normal(100).astype(np.float32)
        q = quantize_tf32(x)
        assert np.array_equal(quantize_tf32(q), q)

    def test_bf16_relative_error_bound(self):
        # 7-bit explicit mantissa: round-to-nearest error <= 2^-8 relative.
        x = np.random.default_rng(2).uniform(0.5, 2.0, 1000).astype(np.float32)
        q = quantize_bf16(x)
        assert np.max(np.abs(q - x) / x) <= 2.0**-8 + 1e-7

    def test_tf32_relative_error_bound(self):
        # 10-bit mantissa: rounding error <= 2^-11 relative.
        x = np.random.default_rng(3).uniform(0.5, 2.0, 1000).astype(np.float32)
        q = quantize_tf32(x)
        assert np.max(np.abs(q - x) / x) <= 2.0**-11 + 1e-7

    def test_tf32_finer_than_bf16(self):
        x = np.random.default_rng(4).standard_normal(1000).astype(np.float32)
        err_bf16 = np.abs(quantize_bf16(x) - x).mean()
        err_tf32 = np.abs(quantize_tf32(x) - x).mean()
        assert err_tf32 < err_bf16

    def test_exact_values_preserved(self):
        # Powers of two and small integers are exactly representable.
        x = np.array([1.0, 2.0, 0.5, -4.0, 0.0], dtype=np.float32)
        assert np.array_equal(quantize_bf16(x), x)
        assert np.array_equal(quantize_tf32(x), x)
