"""Peak-flops microbenchmark."""

import numpy as np
import pytest

from repro.dtypes import Precision
from repro.micro.peak_flops import (
    CHAIN_LENGTH,
    PeakFlops,
    fma_chain,
    fma_chain_reference,
)


class TestFmaChainNumerics:
    def test_matches_closed_form(self):
        x0 = np.linspace(-1, 1, 32)
        out = fma_chain(x0, 0.5, 2.0, 100)
        ref = fma_chain_reference(x0, 0.5, 2.0, 100)
        assert np.allclose(out, ref)

    def test_identity_coefficient(self):
        x0 = np.ones(4)
        # a=1: x_n = x_0 + n*b.
        assert np.allclose(fma_chain(x0, 1.0, 0.25, 8), 3.0)
        assert np.allclose(fma_chain_reference(x0, 1.0, 0.25, 8), 3.0)

    def test_zero_length_chain(self):
        x0 = np.array([3.0])
        assert fma_chain(x0, 0.9, 1.0, 0)[0] == 3.0

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            fma_chain(np.ones(2), 0.9, 1.0, -1)

    def test_paper_chain_length(self):
        assert CHAIN_LENGTH == 16 * 128


class TestMeasurement:
    def test_fp64_rate_matches_engine(self, aurora):
        result = PeakFlops(Precision.FP64).measure(aurora, 1)
        assert result.value == pytest.approx(
            aurora.fma_rate(Precision.FP64, 1), rel=0.01
        )

    def test_fp32_faster_than_fp64(self, aurora):
        r64 = PeakFlops(Precision.FP64).measure(aurora, 1).value
        r32 = PeakFlops(Precision.FP32).measure(aurora, 1).value
        assert r32 / r64 == pytest.approx(1.35, abs=0.07)

    def test_full_node_aurora_195t(self, aurora):
        result = PeakFlops(Precision.FP64).measure(aurora, 12)
        assert result.value == pytest.approx(195e12, rel=0.03)

    def test_best_of_n_with_noise(self, noisy_aurora):
        result = PeakFlops(Precision.FP64).measure(noisy_aurora, 1)
        # Best-of-5 lands on (or within noise amplitude of) the clean rate.
        clean = noisy_aurora.quiet().fma_rate(Precision.FP64, 1)
        assert result.value == pytest.approx(clean, rel=0.02)
        assert result.samples.spread < 0.05

    def test_params_recorded(self, aurora):
        result = PeakFlops(Precision.FP32).measure(aurora, 1)
        assert result.params["precision"] == "fp32"

    def test_scope_names(self, aurora, h100):
        assert str(PeakFlops().measure(aurora, 1).scope) == "One Stack"
        assert str(PeakFlops().measure(aurora, 2).scope) == "One PVC"
        assert str(PeakFlops().measure(aurora, 12).scope) == "Six PVC"
        assert str(PeakFlops().measure(h100, 1).scope) == "One GPU"
