"""GEMM microbenchmark: blocked-GEMM numerics + Table II rates."""

import numpy as np
import pytest

from repro.dtypes import Precision
from repro.micro.gemm import GEMM_PRECISIONS, Gemm, blocked_gemm


class TestBlockedGemm:
    def test_matches_numpy_fp64(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((37, 23))
        b = rng.standard_normal((23, 41))
        assert np.allclose(blocked_gemm(a, b, block=8), a @ b)

    def test_non_divisible_blocks(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((17, 17))
        b = rng.standard_normal((17, 17))
        assert np.allclose(blocked_gemm(a, b, block=5), a @ b)

    def test_int8_accumulates_in_int32(self):
        rng = np.random.default_rng(2)
        a = rng.integers(-128, 127, (64, 64), dtype=np.int8)
        b = rng.integers(-128, 127, (64, 64), dtype=np.int8)
        c = blocked_gemm(a, b, block=16)
        assert c.dtype == np.int32
        assert np.array_equal(c, a.astype(np.int32) @ b.astype(np.int32))

    def test_out_buffer(self):
        a = np.eye(8)
        out = np.full((8, 8), 99.0)
        result = blocked_gemm(a, a, block=4, out=out)
        assert result is out
        assert np.allclose(out, np.eye(8))

    def test_bad_shapes_rejected(self):
        with pytest.raises(ValueError):
            blocked_gemm(np.ones((2, 3)), np.ones((4, 5)))
        with pytest.raises(ValueError):
            blocked_gemm(np.ones((2, 2)), np.ones((2, 2)), block=0)


class TestRates:
    def test_table_ii_rows_aurora_one_stack(self, aurora):
        expected = {
            Precision.FP64: 13e12,
            Precision.FP32: 21e12,
            Precision.FP16: 207e12,
            Precision.BF16: 216e12,
            Precision.TF32: 107e12,
            Precision.I8: 448e12,
        }
        for precision, value in expected.items():
            got = Gemm(precision).measure(aurora, 1).value
            assert got == pytest.approx(value, rel=0.03), precision

    def test_i8_reports_iops(self, aurora):
        result = Gemm(Precision.I8).measure(aurora, 1)
        assert result.best.unit == "Iop/s"

    def test_dgemm_efficiency_below_sgemm(self, dawn):
        from repro.dtypes import Precision as P

        dg = Gemm(P.FP64).measure(dawn, 1).value / dawn.fma_rate(P.FP64, 1)
        sg = Gemm(P.FP32).measure(dawn, 1).value / dawn.fma_rate(P.FP32, 1)
        assert dg < sg  # "relative drop of DGEMM efficiency"

    def test_mi250_dgemm_24t(self, mi250):
        assert Gemm(Precision.FP64).measure(mi250, 1).value == pytest.approx(
            24.1e12, rel=0.03
        )

    def test_mi250_sgemm_33p8t(self, mi250):
        assert Gemm(Precision.FP32).measure(mi250, 1).value == pytest.approx(
            33.8e12, rel=0.03
        )

    def test_all_precision_list(self):
        assert len(GEMM_PRECISIONS) == 6
