"""Our FFT stack (radix-2 + Bluestein + 2D) and the Table II FFT rates."""

import numpy as np
import pytest

from repro.micro.fft import FFT_1D_SIZES, FFT_2D_SIZE, Fft, fft, fft2, ifft, ifft2


def _rand(shape, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(shape) + 1j * rng.standard_normal(shape)


class TestForward1D:
    @pytest.mark.parametrize("n", [2, 4, 8, 64, 256, 1024])
    def test_power_of_two_matches_numpy(self, n):
        x = _rand(n)
        assert np.allclose(fft(x), np.fft.fft(x), atol=1e-9)

    @pytest.mark.parametrize("n", [3, 5, 6, 7, 12, 20, 100, 625])
    def test_bluestein_matches_numpy(self, n):
        x = _rand(n, seed=n)
        assert np.allclose(fft(x), np.fft.fft(x), atol=1e-8)

    def test_paper_size_20000_class(self):
        # 20,000 is not a power of two; a reduced same-factorisation size
        # (2^5 x 5^4 / 10 = 2000) exercises the same Bluestein path.
        x = _rand(2000)
        assert np.allclose(fft(x), np.fft.fft(x), atol=1e-7)

    def test_batched_transform(self):
        x = _rand((5, 64))
        assert np.allclose(fft(x), np.fft.fft(x, axis=-1), atol=1e-9)

    def test_single_point(self):
        x = np.array([3.0 + 1j])
        assert np.allclose(fft(x), x)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fft(np.empty(0))

    def test_linearity(self):
        x, y = _rand(32, 1), _rand(32, 2)
        assert np.allclose(fft(2 * x + 3 * y), 2 * fft(x) + 3 * fft(y))

    def test_parseval(self):
        x = _rand(128)
        energy_time = np.sum(np.abs(x) ** 2)
        energy_freq = np.sum(np.abs(fft(x)) ** 2) / 128
        assert energy_freq == pytest.approx(energy_time)


class TestBackward:
    @pytest.mark.parametrize("n", [16, 20, 243])
    def test_roundtrip(self, n):
        x = _rand(n, seed=n)
        assert np.allclose(ifft(fft(x)), x, atol=1e-8)

    def test_matches_numpy_ifft(self):
        x = _rand(60)
        assert np.allclose(ifft(x), np.fft.ifft(x), atol=1e-9)


class Test2D:
    @pytest.mark.parametrize("shape", [(8, 8), (16, 4), (12, 20)])
    def test_matches_numpy_fft2(self, shape):
        x = _rand(shape)
        assert np.allclose(fft2(x), np.fft.fft2(x), atol=1e-8)

    def test_roundtrip_2d(self):
        x = _rand((24, 24))
        assert np.allclose(ifft2(fft2(x)), x, atol=1e-8)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            fft2(np.ones(8, dtype=complex))


class TestRates:
    def test_aurora_1d_3p1t(self, aurora):
        assert Fft(1).measure(aurora, 1).value == pytest.approx(3.1e12, rel=0.03)

    def test_aurora_2d_3p4t(self, aurora):
        assert Fft(2).measure(aurora, 1).value == pytest.approx(3.4e12, rel=0.03)

    def test_backward_same_rate(self, aurora):
        fwd = Fft(1).measure(aurora, 1).value
        bwd = Fft(1, backward=True).measure(aurora, 1).value
        assert bwd == pytest.approx(fwd, rel=0.01)

    def test_node_scaling_aurora(self, aurora):
        assert Fft(1).measure(aurora, 12).value == pytest.approx(33e12, rel=0.03)
        assert Fft(2).measure(aurora, 12).value == pytest.approx(34e12, rel=0.03)

    def test_paper_sizes_recorded(self):
        assert FFT_1D_SIZES == (4096, 20_000)
        assert FFT_2D_SIZE == 10_000
        assert Fft(1).n == 20_000
        assert Fft(2).n == 10_000

    def test_bad_ndim(self):
        with pytest.raises(ValueError):
            Fft(3)
