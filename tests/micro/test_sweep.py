"""Microbenchmark parameter sweeps."""

import numpy as np
import pytest

from repro.dtypes import Precision
from repro.hw.ids import StackRef
from repro.micro.sweep import (
    fma_chain_sweep,
    gemm_size_sweep,
    half_bandwidth_point,
    message_size_sweep,
)


class TestMessageSizeSweep:
    def test_ramps_to_link_bandwidth(self, aurora):
        points = message_size_sweep(aurora, StackRef(0, 0), StackRef(0, 1))
        values = [p.value for p in points]
        assert all(b >= a for a, b in zip(values, values[1:]))
        assert values[-1] == pytest.approx(197e9, rel=0.02)
        assert values[0] < 0.1 * values[-1]  # latency-dominated start

    def test_remote_link_ramps_lower(self, aurora):
        local = message_size_sweep(aurora, StackRef(0, 0), StackRef(0, 1))
        remote = message_size_sweep(aurora, StackRef(0, 0), StackRef(1, 0))
        assert remote[-1].value == pytest.approx(15e9, rel=0.02)
        assert remote[-1].value < local[-1].value

    def test_half_bandwidth_point(self, aurora):
        points = message_size_sweep(aurora, StackRef(0, 0), StackRef(0, 1))
        n_half = half_bandwidth_point(points)
        # alpha-beta model: n_1/2 ~ latency x BW ~ 0.5 us x 197 GB/s ~ 100 kB.
        assert 1e4 < n_half < 1e7

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            half_bandwidth_point([])


class TestGemmSizeSweep:
    def test_ramps_to_dgemm_roof(self, aurora):
        points = gemm_size_sweep(aurora, Precision.FP64)
        values = [p.value for p in points]
        assert all(b >= a - 1e-6 for a, b in zip(values, values[1:]))
        assert values[-1] == pytest.approx(13e12, rel=0.03)

    def test_small_matrices_memory_bound(self, aurora):
        points = gemm_size_sweep(aurora, Precision.FP64, sizes=(64,))
        # N=64: AI = N/12 ~ 5.3 flop/B for fp64 -> below the ~13 ridge.
        assert points[0].value < 0.55 * 13e12


class TestFmaChainSweep:
    def test_short_chains_stall_the_pipeline(self, aurora):
        points = fma_chain_sweep(aurora, Precision.FP64)
        assert points[0].value < 0.2 * points[-1].value

    def test_long_chains_reach_peak(self, aurora):
        points = fma_chain_sweep(aurora, Precision.FP64)
        assert points[-1].value == pytest.approx(
            aurora.fma_rate(Precision.FP64, 1), rel=0.01
        )

    def test_monotone(self, aurora):
        values = [p.value for p in fma_chain_sweep(aurora, Precision.FP32)]
        assert all(b > a for a, b in zip(values, values[1:]))
