"""Pointer-chase latency benchmark (Figure 1)."""

import numpy as np
import pytest

from repro.core.units import KIB, MIB
from repro.micro.lats import (
    SUBGROUP_SIZE,
    Lats,
    build_chain,
    chase,
    chase_coalesced,
    default_sizes,
    latency_curve,
)


class TestChainConstruction:
    def test_random_chain_is_single_cycle(self):
        n = 257
        chain = build_chain(n, seed=3)
        seen = set()
        idx = 0
        for _ in range(n):
            seen.add(idx)
            idx = int(chain[idx])
        assert idx == 0  # returned to start after exactly n steps
        assert len(seen) == n  # visited every slot

    def test_ring_chain(self):
        chain = build_chain(8, ring=True)
        assert list(chain) == [1, 2, 3, 4, 5, 6, 7, 0]

    def test_different_seeds_differ(self):
        assert not np.array_equal(build_chain(64, 0), build_chain(64, 1))

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            build_chain(1)


class TestChase:
    def test_full_cycle_returns_home(self):
        chain = build_chain(100, seed=1)
        assert chase(chain, 100) == 0

    def test_partial_chase_moves(self):
        chain = build_chain(100, seed=1)
        assert chase(chain, 1) != 0

    def test_coalesced_lockstep(self):
        chain = build_chain(64, seed=2)
        end = chase_coalesced(chain, 64)
        assert np.array_equal(end, np.arange(SUBGROUP_SIZE))

    def test_coalesced_width_validation(self):
        chain = build_chain(8)
        with pytest.raises(ValueError):
            chase_coalesced(chain, 1, width=0)
        with pytest.raises(ValueError):
            chase_coalesced(chain, 1, width=9)


class TestLatencyCurve:
    def test_default_sizes_monotone(self):
        sizes = default_sizes(1 << 30)
        assert np.all(np.diff(sizes) > 0)
        assert sizes[0] == 16 * KIB

    def test_staircase_levels_visible(self, aurora):
        sizes, lats = latency_curve(aurora)
        assert np.all(np.diff(lats) >= -1e-9)
        # Deep-L1 plateau ~76 cycles; deep-HBM plateau ~689.
        assert lats[0] == pytest.approx(76.0, rel=0.05)
        assert lats[-1] == pytest.approx(689.0, rel=0.05)

    def test_l2_plateau(self, aurora):
        lat = Lats(16 * MIB).latency_cycles(aurora)
        assert lat == pytest.approx(396.0, rel=0.03)

    def test_dawn_aurora_within_2pct(self, aurora, dawn):
        # "both Dawn and Aurora consistently perform within 1-2% of each
        # other, as expected, since it's the same architecture".
        for size in (64 * KIB, 16 * MIB, 1 << 30):
            a = Lats(size).latency_cycles(aurora)
            d = Lats(size).latency_cycles(dawn)
            assert a == pytest.approx(d, rel=0.02)

    def test_measurement_runs(self, aurora):
        result = Lats(64 * KIB).measure(aurora, 1)
        assert result.value > 0
        assert result.params["working_set_bytes"] == 64 * KIB

    def test_ring_mode_measurement(self, aurora):
        result = Lats(64 * KIB, coalesced=False).measure(aurora, 1)
        assert result.value > 0
