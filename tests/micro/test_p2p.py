"""Device-to-device microbenchmark (Table III)."""

import pytest

from repro.hw.ids import StackRef
from repro.micro.p2p import MESSAGE_BYTES, P2PBandwidth, local_pairs, remote_pairs


class TestPairEnumeration:
    def test_aurora_local_pairs(self, aurora):
        pairs = local_pairs(aurora)
        assert len(pairs) == 6
        assert pairs[0] == (StackRef(0, 0), StackRef(0, 1))

    def test_aurora_remote_pairs_disjoint(self, aurora):
        pairs = remote_pairs(aurora)
        assert len(pairs) == 6
        used = [r for pair in pairs for r in pair]
        assert len(set(used)) == len(used)

    def test_dawn_has_four_each(self, dawn):
        assert len(local_pairs(dawn)) == 4
        assert len(remote_pairs(dawn)) == 4

    def test_h100_has_no_local_pairs(self, h100):
        assert local_pairs(h100) == []
        with pytest.raises(ValueError):
            P2PBandwidth("local").measure(h100, 1)

    def test_bad_class_rejected(self):
        with pytest.raises(ValueError):
            P2PBandwidth("diagonal")


class TestSinglePair:
    def test_local_uni_197(self, aurora):
        result = P2PBandwidth("local").measure(aurora, 1)
        assert result.value == pytest.approx(197e9, rel=0.03)
        assert "One Stack-Pair" in str(result.scope)

    def test_local_bidir_284(self, aurora):
        result = P2PBandwidth("local", bidirectional=True).measure(aurora, 1)
        assert result.value == pytest.approx(284e9, rel=0.03)

    def test_remote_uni_15(self, aurora):
        assert P2PBandwidth("remote").measure(aurora, 1).value == pytest.approx(
            15e9, rel=0.03
        )

    def test_remote_bidir_23(self, aurora):
        result = P2PBandwidth("remote", bidirectional=True).measure(aurora, 1)
        assert result.value == pytest.approx(23e9, rel=0.03)

    def test_message_size_is_500mb(self):
        assert MESSAGE_BYTES == 500 * 10**6


class TestAllPairs:
    def test_aurora_six_local_pairs_1129(self, aurora):
        result = P2PBandwidth("local").measure(aurora, 12)
        assert result.value == pytest.approx(1129e9, rel=0.03)
        assert "Six Stack-Pairs" in str(result.scope)

    def test_aurora_six_local_bidir_1661(self, aurora):
        result = P2PBandwidth("local", bidirectional=True).measure(aurora, 12)
        assert result.value == pytest.approx(1661e9, rel=0.03)

    def test_dawn_four_local_pairs_786(self, dawn):
        result = P2PBandwidth("local").measure(dawn, 8)
        assert result.value == pytest.approx(786e9, rel=0.03)

    def test_remote_all_pairs_aurora(self, aurora):
        result = P2PBandwidth("remote").measure(aurora, 12)
        # Paper: 95 GB/s; the model's 6 x 15 with unit parallel efficiency.
        assert result.value == pytest.approx(95e9, rel=0.07)
