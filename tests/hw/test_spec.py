"""PVC architecture model: every derivation in Section II must hold."""

import pytest

from repro.core.units import GB, KIB, MIB
from repro.dtypes import Precision
from repro.hw.spec import (
    PVC_FP64_FMA_CLOCK_HZ,
    PVC_MAX_CLOCK_HZ,
    MatrixEngine,
    PVCCard,
    VectorEngine,
    XeCore,
    XeSlice,
    XeStack,
    aurora_pvc_card,
    full_pvc_card,
)


class TestVectorEngine:
    def test_fp64_is_8_wide(self):
        assert VectorEngine().lanes(Precision.FP64) == 8

    def test_two_fmas_per_clock(self):
        # 8 lanes x 2 FMA x 2 flops = 32 flops/clock (the paper's factors).
        assert VectorEngine().flops_per_clock(Precision.FP64) == 32

    def test_fp32_same_throughput_as_fp64(self):
        ve = VectorEngine()
        assert ve.flops_per_clock(Precision.FP32) == ve.flops_per_clock(
            Precision.FP64
        )

    def test_rejects_matrix_precisions(self):
        with pytest.raises(ValueError):
            VectorEngine().lanes(Precision.FP16)


class TestMatrixEngine:
    def test_lower_precision_only(self):
        me = MatrixEngine()
        with pytest.raises(ValueError):
            me.ops_per_clock(Precision.FP64)

    def test_i8_is_twice_fp16(self):
        me = MatrixEngine()
        assert me.ops_per_clock(Precision.I8) == 2 * me.ops_per_clock(
            Precision.FP16
        )

    def test_tf32_is_half_bf16(self):
        me = MatrixEngine()
        assert 2 * me.ops_per_clock(Precision.TF32) == me.ops_per_clock(
            Precision.BF16
        )


class TestXeCore:
    def test_256_fp64_flops_per_clock(self):
        # Section II: "together all the vector engines in each Xe-Core can
        # perform 256 double precision floating point operations per clock".
        assert XeCore().flops_per_clock(Precision.FP64) == 256

    def test_register_file_512kb(self):
        assert XeCore().register_file_bytes == 512 * 1024

    def test_hw_thread_partitions(self):
        # "8 active hardware threads with 128 registers each, or 4 active
        # hardware threads with 256 registers each".
        assert XeCore().hw_thread_partitions() == {8: 128, 4: 256}

    def test_l1_is_512_kib(self):
        assert XeCore().l1_cache_bytes == 512 * KIB


class TestXeStack:
    def test_slice_has_16_cores(self):
        assert XeSlice().n_xe_cores == 16

    def test_dawn_stack_has_512_vector_engines(self):
        assert XeStack(active_xe_cores=64).n_vector_engines == 512

    def test_aurora_stack_has_448_vector_engines(self):
        # The paper's peak formula uses "448 (vector engines per Stack)".
        assert XeStack(active_xe_cores=56).n_vector_engines == 448

    def test_llc_is_192_mib(self):
        assert XeStack().llc_bytes == 192 * MIB

    def test_hbm_capacity_64gb(self):
        assert XeStack().hbm_capacity_bytes == 64 * GB

    def test_aurora_theoretical_fp64_peak(self):
        # 1.2 GHz x 448 x 8 x 2 x 2 = 17.2 TFlop/s (Section IV-B.1).
        stack = XeStack(active_xe_cores=56)
        peak = stack.peak_flops(Precision.FP64, PVC_FP64_FMA_CLOCK_HZ)
        assert peak == pytest.approx(17.2e12, rel=1e-3)

    def test_dawn_fp32_peak_at_max_clock(self):
        stack = XeStack(active_xe_cores=64)
        peak = stack.peak_flops(Precision.FP32, PVC_MAX_CLOCK_HZ)
        assert peak == pytest.approx(26.2e12, rel=1e-2)

    def test_rejects_bad_core_count(self):
        with pytest.raises(ValueError):
            XeStack(active_xe_cores=0)
        with pytest.raises(ValueError):
            XeStack(active_xe_cores=65)


class TestPVCCard:
    def test_card_fp64_flops_per_clock(self):
        # "32,768 double precision ... floating point operations per clock"
        # for the full 128-Xe-Core card.
        assert full_pvc_card().flops_per_clock(Precision.FP64) == 32_768

    def test_card_has_128_xe_cores(self):
        assert full_pvc_card().total_xe_cores == 128

    def test_aurora_card_has_112_active_cores(self):
        assert aurora_pvc_card().total_xe_cores == 112

    def test_hbm_128gb_per_card(self):
        assert full_pvc_card().hbm_capacity_bytes == 128 * GB

    def test_pcie_on_stack_zero_only(self):
        assert PVCCard().pcie_stack == 0
