"""Memory-hierarchy model behind Figure 1."""

import numpy as np
import pytest

from repro.core.units import KIB, MIB
from repro.hw.memory import MemoryHierarchy, MemoryLevel


def _hierarchy() -> MemoryHierarchy:
    return MemoryHierarchy(
        [
            MemoryLevel("L1", 512 * KIB, 76.0),
            MemoryLevel("L2", 192 * MIB, 396.0),
            MemoryLevel("HBM", 64 * 10**9, 689.0),
        ]
    )


class TestMemoryLevel:
    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            MemoryLevel("L1", 0, 1.0)
        with pytest.raises(ValueError):
            MemoryLevel("L1", 1, 0.0)


class TestMemoryHierarchy:
    def test_levels_must_grow(self):
        with pytest.raises(ValueError):
            MemoryHierarchy(
                [MemoryLevel("a", 100, 10.0), MemoryLevel("b", 50, 20.0)]
            )

    def test_latency_must_grow(self):
        with pytest.raises(ValueError):
            MemoryHierarchy(
                [MemoryLevel("a", 100, 20.0), MemoryLevel("b", 200, 10.0)]
            )

    def test_level_for_small_set_is_l1(self):
        assert _hierarchy().level_for(1024).name == "L1"

    def test_level_for_huge_set_is_hbm(self):
        assert _hierarchy().level_for(10**12).name == "HBM"

    def test_boundary_belongs_to_smaller_level(self):
        h = _hierarchy()
        assert h.level_for(512 * KIB).name == "L1"
        assert h.level_for(512 * KIB + 1).name == "L2"

    def test_getitem(self):
        assert _hierarchy()["L2"].latency_cycles == 396.0
        with pytest.raises(KeyError):
            _hierarchy()["L3"]

    def test_smoothed_latency_monotone(self):
        h = _hierarchy()
        sizes = np.logspace(3, 10.5, 60)
        lats = h.latency_curve(sizes.astype(int))
        assert np.all(np.diff(lats) >= -1e-9)

    def test_plateaus_far_from_boundaries(self):
        h = _hierarchy()
        assert h.latency_cycles(16 * KIB) == pytest.approx(76.0, rel=0.02)
        assert h.latency_cycles(16 * MIB) == pytest.approx(396.0, rel=0.02)
        assert h.latency_cycles(8 * 10**9) == pytest.approx(689.0, rel=0.02)

    def test_transition_region_blends(self):
        h = _hierarchy()
        at_boundary = h.latency_cycles(512 * KIB)
        assert 76.0 < at_boundary < 396.0

    def test_rejects_nonpositive_working_set(self):
        with pytest.raises(ValueError):
            _hierarchy().latency_cycles(0)

    def test_plateau_latency_is_staircase(self):
        h = _hierarchy()
        assert h.plateau_latency(1024) == 76.0
        assert h.plateau_latency(1 * MIB) == 396.0

    def test_empty_hierarchy_rejected(self):
        with pytest.raises(ValueError):
            MemoryHierarchy([])
