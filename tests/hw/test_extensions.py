"""Extension systems: Frontier (MI250X) and the A100 comparison point."""

import pytest

from repro.dtypes import Precision
from repro.errors import UnknownSystemError
from repro.hw.extensions import (
    EXTENSION_SYSTEMS,
    a100_sxm4_device,
    frontier,
    get_extension_system,
    jlse_a100,
    mi250x_gcd_device,
)
from repro.sim.engine import PerfEngine
from repro.sim.noise import QUIET


class TestFrontier:
    @pytest.fixture(scope="class")
    def engine(self):
        return PerfEngine(frontier(), noise=QUIET)

    def test_node_inventory(self, engine):
        node = engine.node
        assert node.n_cards == 4
        assert node.n_stacks == 8  # eight GCDs
        assert node.total_cores == 64  # one Trento as two NUMA halves

    def test_gcd_vector_peak_47p9_per_card(self):
        dev = mi250x_gcd_device()
        assert dev.nameplate_flops(Precision.FP64) == pytest.approx(
            47.9e12 / 2, rel=0.01
        )

    def test_stream_matches_table_iv(self, engine):
        # "MI250x on Frontier reach 1.3 TB/s per GCD" (Section IV-B.3).
        assert engine.stream_bw(1) == pytest.approx(1.3e12, rel=0.02)

    def test_dgemm_near_table_iv(self, engine):
        # Table IV: 24.1 TFlop/s measured; the shared MI250 calibration
        # applied to the 110-CU MI250X lands within ~6%.
        assert engine.gemm_rate(Precision.FP64, 1) == pytest.approx(
            24.1e12, rel=0.06
        )

    def test_gcd_to_gcd_37(self, engine):
        from repro.hw.ids import StackRef

        assert engine.transfers.p2p_bw(
            StackRef(0, 0), StackRef(0, 1)
        ) == pytest.approx(37e9, rel=0.02)


class TestA100:
    @pytest.fixture(scope="class")
    def engine(self):
        return PerfEngine(jlse_a100(), noise=QUIET)

    def test_device_peaks(self):
        dev = a100_sxm4_device()
        assert dev.nameplate_flops(Precision.FP32) == pytest.approx(
            19.5e12, rel=0.01
        )
        assert dev.nameplate_flops(Precision.FP64) == pytest.approx(
            9.7e12, rel=0.01
        )

    def test_minibude_reaches_62_percent(self, engine):
        # Section V-B.2: "an A100, which reached 62% of its peak".
        from repro.miniapps import MiniBude

        app = MiniBude()
        assert app.achieved_fp32_fraction(engine) == pytest.approx(0.62)
        fom = app.fom(engine, 1)
        # A100 efficiency beats H100's 0.337 but lower absolute FOM.
        assert 300 < fom < 400

    def test_h100_lower_efficiency_than_a100(self, engine, h100):
        # The paper's puzzle: newer H100 runs miniBUDE less efficiently.
        from repro.miniapps import MiniBude

        app = MiniBude()
        assert app.achieved_fp32_fraction(h100) < app.achieved_fp32_fraction(
            engine
        )


class TestLookup:
    def test_extension_names(self):
        assert set(EXTENSION_SYSTEMS) == {"frontier", "jlse-a100"}

    def test_get_extension_system(self):
        assert get_extension_system("frontier").name == "frontier"
        with pytest.raises(UnknownSystemError):
            get_extension_system("elcapitan")
