"""Node model: enumeration, locality, aggregates."""

import pytest

from repro.errors import ConfigurationError
from repro.hw.ids import StackRef
from repro.hw.systems import get_system


class TestEnumeration:
    def test_stacks_card_major(self):
        node = get_system("aurora").node
        stacks = node.stacks()
        assert stacks[0] == StackRef(0, 0)
        assert stacks[1] == StackRef(0, 1)
        assert stacks[2] == StackRef(1, 0)
        assert len(stacks) == 12

    def test_stacks_of_card(self):
        node = get_system("dawn").node
        assert node.stacks_of_card(2) == [StackRef(2, 0), StackRef(2, 1)]
        with pytest.raises(ConfigurationError):
            node.stacks_of_card(4)


class TestLocality:
    def test_socket_of_follows_card_placement(self):
        node = get_system("aurora").node  # cards 0-2 socket 0, 3-5 socket 1
        assert node.socket_of(StackRef(0, 1)) == 0
        assert node.socket_of(StackRef(3, 0)) == 1

    def test_stacks_on_socket(self):
        node = get_system("aurora").node
        assert len(node.stacks_on_socket(0)) == 6
        assert len(node.stacks_on_socket(1)) == 6

    def test_cards_on_socket(self):
        node = get_system("dawn").node
        assert node.cards_on_socket(0) == [0, 1]
        assert node.cards_on_socket(1) == [2, 3]


class TestAggregates:
    def test_total_cores(self):
        assert get_system("aurora").node.total_cores == 104
        assert get_system("jlse-mi250").node.total_cores == 128

    def test_usable_cores_excludes_os_reserved(self):
        node = get_system("aurora").node
        # One core reserved per socket (cores 0 and 52).
        assert node.usable_cores == 102

    def test_total_hbm(self):
        node = get_system("aurora").node
        assert node.total_hbm_bytes == 12 * 64 * 10**9

    def test_host_mem_bw_prefers_hbm(self):
        aurora = get_system("aurora").node
        dawn = get_system("dawn").node
        # Aurora's HBM-backed Xeons beat Dawn's DDR5-only sockets.
        assert aurora.total_host_mem_bw > dawn.total_host_mem_bw
