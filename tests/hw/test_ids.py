"""GPU_ID.STACK_ID notation."""

import pytest

from repro.hw.ids import StackRef, parse_stack_ref


class TestStackRef:
    def test_str_matches_paper_notation(self):
        assert str(StackRef(5, 1)) == "5.1"

    def test_ordering_card_major(self):
        refs = sorted([StackRef(1, 0), StackRef(0, 1), StackRef(0, 0)])
        assert refs == [StackRef(0, 0), StackRef(0, 1), StackRef(1, 0)]

    def test_sibling(self):
        assert StackRef(3, 0).sibling() == StackRef(3, 1)
        assert StackRef(3, 1).sibling() == StackRef(3, 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            StackRef(-1, 0)

    def test_hashable(self):
        assert len({StackRef(0, 0), StackRef(0, 0), StackRef(0, 1)}) == 2


class TestParse:
    def test_parse_roundtrip(self):
        assert parse_stack_ref("2.1") == StackRef(2, 1)
        assert parse_stack_ref(" 0.0 ") == StackRef(0, 0)

    @pytest.mark.parametrize("bad", ["", "x.y", "1", "1.2.3", "-1.0"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_stack_ref(bad)
