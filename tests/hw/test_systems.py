"""System factories must match the node inventories of Section III."""

import pytest

from repro.core.units import GB
from repro.dtypes import Precision
from repro.errors import UnknownSystemError
from repro.hw.systems import SYSTEM_NAMES, all_systems, get_system


class TestInventory:
    def test_aurora_six_pvc_two_52core_sockets(self):
        node = get_system("aurora").node
        assert node.n_cards == 6
        assert node.n_stacks == 12
        assert all(s.cores == 52 for s in node.sockets)
        assert all(s.threads == 104 for s in node.sockets)
        assert all(s.hbm_capacity_bytes == 64 * GB for s in node.sockets)

    def test_aurora_56_active_xe_cores(self):
        dev = get_system("aurora").device
        assert dev.spec is not None
        assert dev.spec.active_xe_cores == 56

    def test_dawn_four_pvc_64_cores_per_stack(self):
        system = get_system("dawn")
        assert system.node.n_cards == 4
        assert system.node.n_stacks == 8
        assert system.device.spec.active_xe_cores == 64
        assert all(s.cores == 48 for s in system.node.sockets)

    def test_power_caps(self):
        # 600 W on Dawn, 500 W on Aurora (Section III).
        assert get_system("aurora").device.frequency.power_cap_w == 500.0
        assert get_system("dawn").device.frequency.power_cap_w == 600.0

    def test_h100_node(self):
        node = get_system("jlse-h100").node
        assert node.n_cards == 4
        assert node.n_stacks == 4
        assert node.device.hbm_capacity_bytes == 80 * GB

    def test_mi250_node(self):
        node = get_system("jlse-mi250").node
        assert node.n_cards == 4
        assert node.n_stacks == 8  # two GCDs per card
        assert all(s.cores == 64 for s in node.sockets)

    def test_cards_split_across_sockets(self):
        for system in all_systems():
            node = system.node
            per_socket = [node.gpus_per_socket(s) for s in range(2)]
            assert sum(per_socket) == node.n_cards
            assert abs(per_socket[0] - per_socket[1]) <= 0


class TestPeaks:
    def test_aurora_stack_peaks_match_paper_arithmetic(self, aurora):
        dev = aurora.device
        assert dev.peak_flops(Precision.FP64) == pytest.approx(17.2e12, rel=1e-3)
        assert dev.peak_flops(Precision.FP32) == pytest.approx(22.9e12, rel=1e-2)

    def test_dawn_stack_peaks(self, dawn):
        dev = dawn.device
        assert dev.peak_flops(Precision.FP64) == pytest.approx(19.7e12, rel=1e-2)
        assert dev.peak_flops(Precision.FP32) == pytest.approx(26.2e12, rel=1e-2)

    def test_h100_table_iv_peaks(self, h100):
        dev = h100.device
        assert dev.peak_flops(Precision.FP32) == pytest.approx(67e12, rel=2e-2)
        assert dev.peak_flops(Precision.FP64) == pytest.approx(34e12, rel=2e-2)

    def test_mi250_gcd_is_half_card(self, mi250):
        dev = mi250.device
        assert dev.peak_flops(Precision.FP64) == pytest.approx(
            45.3e12 / 2, rel=2e-2
        )
        # MI250: FP32 vector peak equals FP64 (Table IV).
        assert dev.peak_flops(Precision.FP32) == dev.peak_flops(Precision.FP64)


class TestLookup:
    def test_names(self):
        assert set(SYSTEM_NAMES) == {"aurora", "dawn", "jlse-h100", "jlse-mi250"}

    def test_aliases(self):
        assert get_system("H100").name == "jlse-h100"
        assert get_system("mi250").name == "jlse-mi250"

    def test_unknown_raises(self):
        with pytest.raises(UnknownSystemError):
            get_system("frontier")

    def test_full_node_scope_names(self):
        assert get_system("aurora").full_node_scope_name() == "Six PVC"
        assert get_system("dawn").full_node_scope_name() == "Four PVC"
        assert get_system("jlse-h100").full_node_scope_name() == "Four GPU"

    def test_describe_mentions_hardware(self):
        text = get_system("aurora").node.describe()
        assert "Max 1550" in text and "12" in text
