"""Device models: derived latencies and peaks."""

import pytest

from repro.core.units import KIB, MIB
from repro.dtypes import Precision
from repro.hw.gpu import (
    H100_MEMORY_LATENCY_CYCLES,
    MI250_MEMORY_LATENCY_CYCLES,
    PVC_MEMORY_LATENCY_CYCLES,
    h100_sxm5_device,
    mi250_gcd_device,
    pvc_stack_device,
)


class TestLatencyDerivations:
    """The Section IV-B.6 percentages must hold by construction."""

    def test_pvc_l1_90pct_above_h100(self):
        assert PVC_MEMORY_LATENCY_CYCLES["L1"] == pytest.approx(
            H100_MEMORY_LATENCY_CYCLES["L1"] * 1.90
        )

    def test_pvc_l1_51pct_below_mi250(self):
        assert PVC_MEMORY_LATENCY_CYCLES["L1"] == pytest.approx(
            MI250_MEMORY_LATENCY_CYCLES["L1"] * 0.49
        )

    def test_pvc_l2_50_and_78pct_higher(self):
        assert PVC_MEMORY_LATENCY_CYCLES["L2"] == pytest.approx(
            H100_MEMORY_LATENCY_CYCLES["L2"] * 1.50
        )
        assert PVC_MEMORY_LATENCY_CYCLES["L2"] == pytest.approx(
            MI250_MEMORY_LATENCY_CYCLES["L2"] * 1.78
        )

    def test_pvc_hbm_23_and_44pct_higher(self):
        assert PVC_MEMORY_LATENCY_CYCLES["HBM"] == pytest.approx(
            H100_MEMORY_LATENCY_CYCLES["HBM"] * 1.23
        )
        assert PVC_MEMORY_LATENCY_CYCLES["HBM"] == pytest.approx(
            MI250_MEMORY_LATENCY_CYCLES["HBM"] * 1.44
        )


class TestPvcDevice:
    def test_cache_sizes(self):
        dev = pvc_stack_device(64, power_cap_w=600, idle_pinned=False)
        assert dev.memory["L1"].capacity_bytes == 512 * KIB
        assert dev.memory["L2"].capacity_bytes == 192 * MIB

    def test_matrix_precisions_available(self):
        dev = pvc_stack_device(56, power_cap_w=500, idle_pinned=True)
        for p in (Precision.FP16, Precision.BF16, Precision.TF32, Precision.I8):
            assert dev.flops_per_clock[p] > 0

    def test_nameplate_vs_sustained_fp64(self):
        dev = pvc_stack_device(56, power_cap_w=500, idle_pinned=True)
        # Nameplate (1.6 GHz) exceeds sustained (1.2 GHz) by 4/3.
        assert dev.nameplate_flops(Precision.FP64) == pytest.approx(
            dev.peak_flops(Precision.FP64) * 4.0 / 3.0
        )

    def test_unknown_precision_raises(self):
        dev = h100_sxm5_device()
        with pytest.raises(ValueError):
            # H100 model declares no FP8-style precision beyond I8 table.
            dev.peak_flops("not-a-precision")  # type: ignore[arg-type]


class TestReferenceDevices:
    def test_h100_hbm_bandwidth(self):
        assert h100_sxm5_device().hbm_peak_bw == pytest.approx(3.35e12)

    def test_mi250_gcd_hbm_is_half_card(self):
        assert mi250_gcd_device().hbm_peak_bw == pytest.approx(1.6e12)

    def test_mi250_has_no_tf32(self):
        assert Precision.TF32 not in mi250_gcd_device().flops_per_clock

    def test_mi250_l1_smallest(self):
        assert mi250_gcd_device().memory["L1"].capacity_bytes == 16 * KIB
