"""Fabric topology: planes, routing, the paper's two-path example."""

import pytest

from repro.errors import TopologyError
from repro.hw.ids import StackRef, parse_stack_ref
from repro.hw.interconnect import (
    HOST,
    Fabric,
    Link,
    LinkKind,
    aurora_planes,
    build_dual_gcd_fabric,
    build_pvc_fabric,
    build_single_device_fabric,
    parity_planes,
)


def _aurora_fabric() -> Fabric:
    return build_pvc_fabric(6, (0, 0, 0, 1, 1, 1), planes=aurora_planes())


class TestPlanes:
    def test_aurora_planes_match_section_iv(self):
        planes = aurora_planes()
        plane_a = {str(r) for r in planes[0]}
        plane_b = {str(r) for r in planes[1]}
        assert plane_a == {"0.0", "1.1", "2.0", "3.0", "4.0", "5.1"}
        assert plane_b == {"0.1", "1.0", "2.1", "3.1", "4.1", "5.0"}

    def test_planes_partition_all_stacks(self):
        planes = aurora_planes()
        union = set(planes[0]) | set(planes[1])
        assert len(union) == 12
        assert not set(planes[0]) & set(planes[1])

    def test_parity_planes_partition(self):
        planes = parity_planes(4)
        union = set(planes[0]) | set(planes[1])
        assert len(union) == 8

    def test_plane_of(self):
        f = _aurora_fabric()
        assert f.plane_of(parse_stack_ref("0.0")) == 0
        assert f.plane_of(parse_stack_ref("1.0")) == 1

    def test_same_plane_example_from_paper(self):
        # "Even though 0.0 and 1.1 Stack are in different positions ...
        # they are connected in a single plane."
        f = _aurora_fabric()
        assert f.same_plane(parse_stack_ref("0.0"), parse_stack_ref("1.1"))
        assert not f.same_plane(parse_stack_ref("0.0"), parse_stack_ref("1.0"))


class TestRouting:
    def test_same_plane_is_one_xelink_hop(self):
        f = _aurora_fabric()
        route = f.route(parse_stack_ref("0.0"), parse_stack_ref("2.0"))
        assert route.n_hops == 1
        assert route.kinds == (LinkKind.XELINK,)

    def test_cross_plane_has_exactly_the_two_paper_paths(self):
        # "to transfer data from 0.0 to 1.0, the driver can use one of two
        # possible paths: 0.0 -> 1.1 -> 1.0 or 0.0 -> 0.1 -> 1.0".
        f = _aurora_fabric()
        routes = f.routes(parse_stack_ref("0.0"), parse_stack_ref("1.0"))
        described = {r.describe() for r in routes}
        assert len(routes) == 2
        assert any("0.1" in d for d in described)
        assert any("1.1" in d for d in described)
        for r in routes:
            assert r.n_hops == 2
            assert set(r.kinds) == {LinkKind.XELINK, LinkKind.MDFI}

    def test_gpu_routes_never_cross_host(self):
        f = _aurora_fabric()
        for r in f.routes(StackRef(0, 0), StackRef(1, 0)):
            for u, v, _ in r.hops:
                assert not (isinstance(u, tuple) and u[0] == HOST)
                assert not (isinstance(v, tuple) and v[0] == HOST)

    def test_local_pair_is_mdfi(self):
        f = _aurora_fabric()
        route = f.route(StackRef(0, 0), StackRef(0, 1))
        assert route.kinds == (LinkKind.MDFI,)

    def test_host_route_stack0_is_direct_pcie(self):
        f = _aurora_fabric()
        route = f.host_route(0, StackRef(0, 0))
        assert route.kinds == (LinkKind.PCIE_GEN5_X16,)

    def test_host_route_stack1_crosses_mdfi(self):
        # Section II: "Data movement from the second Xe-Stack needs to go
        # via the high-speed Stack-to-Stack interconnect".
        f = _aurora_fabric()
        route = f.host_route(0, StackRef(0, 1))
        assert LinkKind.MDFI in route.kinds
        assert LinkKind.PCIE_GEN5_X16 in route.kinds

    def test_route_to_self_rejected(self):
        f = _aurora_fabric()
        with pytest.raises(TopologyError):
            f.route(StackRef(0, 0), StackRef(0, 0))

    def test_bottleneck_bw(self):
        f = _aurora_fabric()
        route = f.route(StackRef(0, 0), StackRef(1, 0))
        bw = route.bottleneck_bw(lambda kind: 1.0)
        assert bw == pytest.approx(LinkKind.XELINK.peak_bw_per_dir)

    def test_route_latency_accumulates(self):
        f = _aurora_fabric()
        one_hop = f.route(StackRef(0, 0), StackRef(0, 1))
        two_hop = f.route(StackRef(0, 0), StackRef(1, 0))
        assert two_hop.latency_s > one_hop.latency_s


class TestBuilders:
    def test_single_device_fabric_h100(self):
        f = build_single_device_fabric(
            4, (0, 0, 1, 1), LinkKind.PCIE_GEN5_X16, LinkKind.NVLINK4
        )
        assert len(f.stacks) == 4
        route = f.route(StackRef(0, 0), StackRef(3, 0))
        assert route.kinds == (LinkKind.NVLINK4,)

    def test_dual_gcd_fabric_mi250(self):
        f = build_dual_gcd_fabric(4, (0, 0, 1, 1))
        assert len(f.stacks) == 8
        local = f.route(StackRef(0, 0), StackRef(0, 1))
        assert local.kinds == (LinkKind.INFINITY_FABRIC,)

    def test_socket_count_mismatch_rejected(self):
        with pytest.raises(TopologyError):
            build_pvc_fabric(4, (0, 0, 1))

    def test_connect_unknown_endpoint_rejected(self):
        f = Fabric()
        f.add_host(0)
        with pytest.raises(TopologyError):
            f.connect((HOST, 0), StackRef(0, 0), Link(LinkKind.MDFI))

    def test_xelink_neighbors(self):
        f = _aurora_fabric()
        nbrs = f.xelink_neighbors(parse_stack_ref("0.0"))
        # 0.0's plane has five other members.
        assert len(nbrs) == 5
        assert parse_stack_ref("1.1") in nbrs
