"""TDP/DVFS frequency model (Section IV-B.2)."""

import pytest

from repro.dtypes import Precision
from repro.hw.frequency import FrequencyModel, WorkloadKind


def _pvc() -> FrequencyModel:
    return FrequencyModel(
        max_hz=1.6e9, fp64_fma_hz=1.2e9, idle_hz=1.6e9, power_cap_w=500.0
    )


class TestFrequencyModel:
    def test_fp64_fma_downclocks(self):
        # "the PVC operated at ~1.2GHz for FP64 ... FMA operations".
        assert _pvc().sustained_hz(Precision.FP64, WorkloadKind.FMA_CHAIN) == 1.2e9

    def test_fp32_fma_full_clock(self):
        # "~1.6GHz for FP32".
        assert _pvc().sustained_hz(Precision.FP32, WorkloadKind.FMA_CHAIN) == 1.6e9

    def test_fp64_gemm_also_downclocks(self):
        assert _pvc().sustained_hz(Precision.FP64, WorkloadKind.GEMM) == 1.2e9

    def test_stream_at_max(self):
        assert _pvc().sustained_hz(None, WorkloadKind.STREAM) == 1.6e9

    def test_idle_pinned(self):
        # Aurora pins the idle frequency to 1.6 GHz (Section III).
        assert _pvc().sustained_hz(None, WorkloadKind.IDLE) == 1.6e9

    def test_downclock_ratio_origin_of_1p3x(self):
        # 1.6/1.2 = 1.33x is the paper's FP32:FP64 flops ratio cause.
        model = _pvc()
        ratio = model.downclock_ratio(Precision.FP32) / model.downclock_ratio(
            Precision.FP64
        )
        assert ratio == pytest.approx(4.0 / 3.0)

    def test_no_downclock_model(self):
        flat = FrequencyModel(max_hz=1.98e9)
        assert flat.sustained_hz(Precision.FP64, WorkloadKind.FMA_CHAIN) == 1.98e9

    def test_rejects_fp64_clock_above_max(self):
        with pytest.raises(ValueError):
            FrequencyModel(max_hz=1.0e9, fp64_fma_hz=2.0e9)

    def test_rejects_nonpositive_max(self):
        with pytest.raises(ValueError):
            FrequencyModel(max_hz=0.0)
