"""HPCG-style CG solver + HPL/HPCG node models."""

import numpy as np
import pytest

from repro.dtypes import Precision
from repro.extras.hpcg import (
    HpcgModel,
    HplModel,
    build_hpcg_operator,
    conjugate_gradient,
)


class TestOperator:
    def test_symmetric(self):
        a = build_hpcg_operator(5)
        assert (a - a.T).nnz == 0

    def test_diagonal_26(self):
        a = build_hpcg_operator(4)
        assert np.allclose(a.diagonal(), 26.0)

    def test_interior_row_has_27_entries(self):
        n = 5
        a = build_hpcg_operator(n)
        interior = (n * n + n + 1) * 1 + n * n + n + 1  # an interior index
        interior = np.ravel_multi_index((2, 2, 2), (n, n, n))
        row = a.getrow(interior)
        assert row.nnz == 27
        assert row.sum() == pytest.approx(0.0)  # 26 - 26 neighbours

    def test_positive_definite(self):
        a = build_hpcg_operator(4).toarray()
        eigenvalues = np.linalg.eigvalsh(a)
        assert eigenvalues.min() > 0

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            build_hpcg_operator(1)


class TestConjugateGradient:
    def test_solves_against_direct(self):
        import scipy.sparse.linalg as spla

        a = build_hpcg_operator(5)
        rng = np.random.default_rng(0)
        b = rng.standard_normal(a.shape[0])
        result = conjugate_gradient(a, b, tol=1e-10)
        assert result.converged
        direct = spla.spsolve(a.tocsc(), b)
        assert np.allclose(result.x, direct, atol=1e-7)

    def test_preconditioner_reduces_iterations(self):
        # Large enough that the near-singular interior (zero row sums)
        # makes the SGS preconditioner pay off.
        a = build_hpcg_operator(8)
        b = np.random.default_rng(1).standard_normal(a.shape[0])
        plain = conjugate_gradient(a, b, preconditioned=False, tol=1e-9)
        pre = conjugate_gradient(a, b, preconditioned=True, tol=1e-9)
        assert pre.converged and plain.converged
        assert pre.iterations < plain.iterations

    def test_residual_reported(self):
        a = build_hpcg_operator(4)
        b = np.ones(a.shape[0])
        result = conjugate_gradient(a, b, tol=1e-12, max_iter=3)
        assert not result.converged
        assert result.residual_norm > 0

    def test_shape_mismatch_rejected(self):
        a = build_hpcg_operator(3)
        with pytest.raises(ValueError):
            conjugate_gradient(a, np.ones(5))


class TestNodeModels:
    def test_hpl_is_dgemm_bound(self, aurora):
        hpl = HplModel(aurora)
        assert hpl.node_rate() == pytest.approx(
            aurora.gemm_rate(Precision.FP64, 12) * 0.92
        )
        assert 0.6 < hpl.fraction_of_peak() < 0.9

    def test_hpcg_tiny_fraction_of_peak(self, aurora):
        # The Top500 phenomenon: HPCG is a percent-scale fraction of HPL.
        hpcg = HpcgModel(aurora)
        assert hpcg.fraction_of_peak() < 0.02
        assert hpcg.node_rate() > 0

    def test_hpcg_tracks_bandwidth_not_compute(self, aurora, h100):
        # Aurora node streams 12 TB/s vs H100 node ~11 TB/s: HPCG ratio
        # follows bandwidth, not the 195-vs-134 TF FP64 ratio.
        r_aurora = HpcgModel(aurora).node_rate()
        r_h100 = HpcgModel(h100).node_rate()
        bw_ratio = aurora.stream_bw(12) / h100.stream_bw(4)
        assert r_aurora / r_h100 == pytest.approx(bw_ratio, rel=0.01)

    def test_aurora_hpl_beats_dawn(self, aurora, dawn):
        assert HplModel(aurora).node_rate() > HplModel(dawn).node_rate()
