"""Property-based tests for memory hierarchy and CRK-SPH invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.hacc import crk_interpolate
from repro.hw.memory import MemoryHierarchy, MemoryLevel


@st.composite
def hierarchies(draw):
    n_levels = draw(st.integers(2, 4))
    caps = sorted(
        draw(
            st.lists(
                st.integers(10, 10**9),
                min_size=n_levels,
                max_size=n_levels,
                unique=True,
            )
        )
    )
    lats = sorted(
        draw(
            st.lists(
                st.floats(1.0, 2000.0),
                min_size=n_levels,
                max_size=n_levels,
                unique=True,
            )
        )
    )
    return MemoryHierarchy(
        [
            MemoryLevel(f"L{i}", cap, lat)
            for i, (cap, lat) in enumerate(zip(caps, lats))
        ]
    )


@settings(max_examples=40, deadline=None)
@given(h=hierarchies(), size=st.integers(1, 10**10))
def test_latency_bounded_by_extremes(h, size):
    lat = h.latency_cycles(size)
    assert h.levels[0].latency_cycles - 1e-9 <= lat
    assert lat <= h.levels[-1].latency_cycles + 1e-9


@settings(max_examples=30, deadline=None)
@given(h=hierarchies(), seed=st.integers(0, 999))
def test_latency_monotone_in_working_set(h, seed):
    rng = np.random.default_rng(seed)
    sizes = np.sort(rng.integers(1, 10**10, size=20))
    lats = [h.latency_cycles(int(s)) for s in sizes]
    assert all(b >= a - 1e-9 for a, b in zip(lats, lats[1:]))


@settings(max_examples=40, deadline=None)
@given(h=hierarchies(), size=st.integers(1, 10**10))
def test_level_for_contains_working_set(h, size):
    level = h.level_for(size)
    if level is not h.last:
        assert size <= level.capacity_bytes


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(30, 90),
    seed=st.integers(0, 2**16),
    c0=st.floats(-5, 5),
    cx=st.floats(-5, 5),
    cy=st.floats(-5, 5),
    cz=st.floats(-5, 5),
)
def test_crk_reproduces_arbitrary_linear_fields(n, seed, c0, cx, cy, cz):
    """The CRKSPH defining property, for any coefficients and particle set."""
    rng = np.random.default_rng(seed)
    pos = rng.uniform(0, 1, (n, 3))
    vol = np.full(n, 1.0 / n)
    field = c0 + cx * pos[:, 0] + cy * pos[:, 1] + cz * pos[:, 2]
    interp = crk_interpolate(pos, vol, field, h=0.45)
    assert np.allclose(interp, field, atol=1e-8)
