"""Property-based tests for the Monte Carlo transport kernel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.openmc import Material, TransportProblem


def _medium(sigma_a: float, sigma_s: float, nu_f: float = 0.0) -> Material:
    return Material(
        name="m",
        sigma_t=np.array([sigma_a + sigma_s]),
        sigma_a=np.array([sigma_a]),
        scatter=np.array([[sigma_s]]),
        nu_fission=np.array([nu_f]),
    )


@settings(max_examples=10, deadline=None)
@given(
    sigma_a=st.floats(0.2, 1.0),
    sigma_s=st.floats(0.0, 1.0),
    seed=st.integers(0, 2**16),
)
def test_history_conservation(sigma_a, sigma_s, seed):
    """Every history ends absorbed or leaked — no particles lost."""
    problem = TransportProblem(
        (_medium(sigma_a, sigma_s),), size=20.0, nmesh=2
    )
    result = problem.run(800, seed=seed)
    assert result.absorptions + result.leaks == result.histories


@settings(max_examples=8, deadline=None)
@given(
    sigma_a=st.floats(0.25, 1.0),
    sigma_s=st.floats(0.0, 1.5),
    seed=st.integers(0, 2**16),
)
def test_infinite_medium_collision_count(sigma_a, sigma_s, seed):
    """E[collisions per history] = sigma_t / sigma_a, any cross sections."""
    problem = TransportProblem(
        (_medium(sigma_a, sigma_s),),
        boundary="reflective",
        checkerboard=False,
        nmesh=2,
    )
    n = 4000
    result = problem.run(n, seed=seed)
    expected = (sigma_a + sigma_s) / sigma_a
    # Binomial-ish error bar: generous 5-sigma band.
    tolerance = 5.0 * expected / np.sqrt(n)
    assert abs(result.collisions_per_history - expected) < max(tolerance, 0.15)


@settings(max_examples=8, deadline=None)
@given(
    k_inf=st.floats(0.3, 1.5),
    seed=st.integers(0, 2**16),
)
def test_k_estimate_tracks_nu_over_absorption(k_inf, seed):
    sigma_a, sigma_s = 0.4, 0.6
    problem = TransportProblem(
        (_medium(sigma_a, sigma_s, nu_f=k_inf * sigma_a),),
        boundary="reflective",
        checkerboard=False,
        nmesh=2,
    )
    result = problem.run(4000, seed=seed)
    assert result.k_estimate == pytest.approx(k_inf, rel=0.08)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 2**16), size=st.floats(2.0, 100.0))
def test_leakage_monotone_in_optical_thickness(seed, size):
    """Bigger boxes of the same material always leak less (statistically)."""
    medium = (_medium(0.1, 0.2),)
    small = TransportProblem(medium, size=size, nmesh=2)
    large = TransportProblem(medium, size=size * 4.0, nmesh=2)
    leak_small = small.run(1500, seed=seed).leakage_fraction
    leak_large = large.run(1500, seed=seed).leakage_fraction
    assert leak_large <= leak_small + 0.05
