"""Property-based invariants of calibration curves, contention, units."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.units import parse_rate, si_format
from repro.sim.calibration import ScalingCurve
from repro.sim.contention import aggregate_rate, proportional_share

_eff = st.floats(0.05, 1.0)


@settings(max_examples=50, deadline=None)
@given(
    e2=_eff,
    e_full=_eff,
    n=st.integers(1, 12),
)
def test_curve_efficiency_stays_within_endpoints(e2, e_full, n):
    lo, hi = sorted((e2, e_full))
    curve = ScalingCurve.of({1: 1.0, 2: e2, 12: e_full})
    eff = curve.efficiency(n)
    assert min(lo, 1.0) - 1e-12 <= eff <= 1.0 + 1e-12


@settings(max_examples=50, deadline=None)
@given(
    single=st.floats(1e9, 1e14),
    n=st.integers(1, 12),
    eff=_eff,
)
def test_aggregate_bounded_by_linear(single, n, eff):
    curve = ScalingCurve.of({1: 1.0, 12: eff})
    agg = curve.aggregate(single, n)
    assert agg <= single * n * (1 + 1e-12)
    assert agg >= single * eff * n * (1 - 1e-12)


@settings(max_examples=50, deadline=None)
@given(
    demands=st.lists(st.floats(0, 1e12), min_size=0, max_size=16),
    cap=st.one_of(st.none(), st.floats(1e3, 1e13)),
)
def test_proportional_share_never_exceeds_cap_or_demand(demands, cap):
    shares = proportional_share(demands, cap)
    assert len(shares) == len(demands)
    for share, demand in zip(shares, demands):
        assert share <= demand + 1e-6
    if cap is not None:
        assert sum(shares) <= cap * (1 + 1e-9)
    assert aggregate_rate(demands, cap) == pytest.approx(sum(shares))


@settings(max_examples=50, deadline=None)
@given(
    demands=st.lists(st.floats(1e3, 1e12), min_size=2, max_size=8),
    cap=st.floats(1e3, 1e13),
)
def test_throttling_preserves_demand_ordering(demands, cap):
    shares = proportional_share(demands, cap)
    order_before = sorted(range(len(demands)), key=demands.__getitem__)
    order_after = sorted(range(len(shares)), key=shares.__getitem__)
    assert order_before == order_after


@settings(max_examples=60, deadline=None)
@given(
    value=st.floats(1.0, 9.99e15),
    unit=st.sampled_from(["Flop/s", "B/s", "Iop/s"]),
)
def test_format_parse_roundtrip_within_rounding(value, unit):
    text = si_format(value, unit)
    parsed = parse_rate(text)
    # Formatting keeps 2-3 significant digits.
    assert parsed == pytest.approx(value, rel=0.06)
