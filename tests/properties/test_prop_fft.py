"""Property-based tests for the FFT stack."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.micro.fft import fft, fft2, ifft

_sizes = st.integers(min_value=2, max_value=96)


def _signal(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.standard_normal(n) + 1j * rng.standard_normal(n)


@settings(max_examples=40, deadline=None)
@given(n=_sizes, seed=st.integers(0, 2**16))
def test_matches_numpy_for_any_size(n, seed):
    x = _signal(n, seed)
    assert np.allclose(fft(x), np.fft.fft(x), atol=1e-7)


@settings(max_examples=40, deadline=None)
@given(n=_sizes, seed=st.integers(0, 2**16))
def test_roundtrip(n, seed):
    x = _signal(n, seed)
    assert np.allclose(ifft(fft(x)), x, atol=1e-7)


@settings(max_examples=30, deadline=None)
@given(n=_sizes, seed=st.integers(0, 2**16), a=st.floats(-3, 3), b=st.floats(-3, 3))
def test_linearity(n, seed, a, b):
    x, y = _signal(n, seed), _signal(n, seed + 1)
    assert np.allclose(
        fft(a * x + b * y), a * fft(x) + b * fft(y), atol=1e-6
    )


@settings(max_examples=30, deadline=None)
@given(n=_sizes, seed=st.integers(0, 2**16))
def test_parseval(n, seed):
    x = _signal(n, seed)
    assert np.isclose(
        np.sum(np.abs(fft(x)) ** 2) / n, np.sum(np.abs(x) ** 2), rtol=1e-9
    )


@settings(max_examples=30, deadline=None)
@given(n=_sizes, seed=st.integers(0, 2**16), shift=st.integers(0, 95))
def test_time_shift_preserves_magnitude(n, seed, shift):
    """Circularly shifting the input only changes the spectrum's phase."""
    x = _signal(n, seed)
    shifted = np.roll(x, shift % n)
    assert np.allclose(np.abs(fft(shifted)), np.abs(fft(x)), atol=1e-7)


@settings(max_examples=20, deadline=None)
@given(
    rows=st.integers(2, 24),
    cols=st.integers(2, 24),
    seed=st.integers(0, 2**16),
)
def test_2d_matches_numpy(rows, cols, seed):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((rows, cols)) + 1j * rng.standard_normal((rows, cols))
    assert np.allclose(fft2(x), np.fft.fft2(x), atol=1e-7)


@settings(max_examples=20, deadline=None)
@given(n=_sizes, seed=st.integers(0, 2**16))
def test_dc_bin_is_sum(n, seed):
    x = _signal(n, seed)
    assert np.isclose(fft(x)[0], x.sum(), atol=1e-8)
