"""Property-based tests for the blocked GEMM."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.micro.gemm import blocked_gemm

_dims = st.integers(min_value=1, max_value=48)
_blocks = st.integers(min_value=1, max_value=64)


@settings(max_examples=40, deadline=None)
@given(m=_dims, k=_dims, n=_dims, block=_blocks, seed=st.integers(0, 2**16))
def test_matches_reference_for_any_shape_and_block(m, k, n, block, seed):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))
    assert np.allclose(blocked_gemm(a, b, block=block), a @ b, atol=1e-9)


@settings(max_examples=25, deadline=None)
@given(n=_dims, b1=_blocks, b2=_blocks, seed=st.integers(0, 2**16))
def test_block_size_invariance(n, b1, b2, seed):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    b = rng.standard_normal((n, n))
    assert np.allclose(
        blocked_gemm(a, b, block=b1), blocked_gemm(a, b, block=b2), atol=1e-9
    )


@settings(max_examples=25, deadline=None)
@given(n=_dims, seed=st.integers(0, 2**16))
def test_identity_is_neutral(n, seed):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    assert np.allclose(blocked_gemm(a, np.eye(n), block=16), a, atol=1e-12)


@settings(max_examples=25, deadline=None)
@given(
    m=_dims, k=_dims, n=_dims, alpha=st.floats(-4, 4), seed=st.integers(0, 2**16)
)
def test_scalar_homogeneity(m, k, n, alpha, seed):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))
    assert np.allclose(
        blocked_gemm(alpha * a, b, block=8),
        alpha * blocked_gemm(a, b, block=8),
        atol=1e-8,
    )


@settings(max_examples=25, deadline=None)
@given(n=st.integers(1, 32), seed=st.integers(0, 2**16))
def test_int8_never_overflows_int32_accumulator(n, seed):
    rng = np.random.default_rng(seed)
    a = rng.integers(-128, 128, (n, n), dtype=np.int8)
    b = rng.integers(-128, 128, (n, n), dtype=np.int8)
    c = blocked_gemm(a, b, block=8)
    # Worst case |sum| <= n * 128 * 128 < 2^31 for n <= 32.
    assert c.dtype == np.int32
    assert np.array_equal(c, a.astype(np.int64) @ b.astype(np.int64))
