"""Property test: the batch engine IS the scalar engine, bit for bit.

Randomized kernels (flops / bytes / working sets / chase counts /
precision incl. "none" / workload kind) x systems x stack counts x
ablations (TDP downclock off, contention off) — every point evaluated
through :class:`BatchEngine` must equal the scalar
:meth:`PerfEngine.roofline` result under strict float equality, not
tolerance.  The one excluded corner is real: MI250's calibration has
no TF32 GEMM efficiency, so the scalar path raises there and the grid
generator never emits it (sweep specs obey the same constraint).
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.dtypes import ENGINE_MATRIX, Precision
from repro.hw.frequency import WorkloadKind
from repro.hw.systems import get_system
from repro.sim.batch import KernelBatch
from repro.sim.engine import PerfEngine
from repro.sim.kernel import KernelSpec
from repro.sim.noise import QUIET

_SYSTEMS = ("aurora", "dawn", "jlse-h100", "jlse-mi250")

_flops = st.one_of(
    st.just(0.0), st.floats(min_value=1.0, max_value=1e16)
)
_bytes = st.one_of(
    st.just(0.0), st.floats(min_value=1.0, max_value=1e13)
)
_precisions = st.sampled_from(list(Precision) + [None])
_kinds = st.sampled_from(list(WorkloadKind))


@st.composite
def _kernel(draw):
    flops = draw(_flops)
    bytes_read = draw(_bytes)
    bytes_written = draw(_bytes)
    chases = draw(st.one_of(st.just(0), st.integers(1, 10**6)))
    working_set = draw(st.integers(0, 2**34))
    if chases and working_set == 0:
        working_set = draw(st.integers(1, 2**34))
    assume(flops or bytes_read or bytes_written or chases)
    return KernelSpec(
        name="prop",
        precision=draw(_precisions),
        flops=flops,
        bytes_read=bytes_read,
        bytes_written=bytes_written,
        working_set_bytes=working_set,
        kind=draw(_kinds),
        serial_chases=chases,
    )


def _needs_gemm_calibration(spec: KernelSpec) -> bool:
    precision = spec.precision or Precision.FP32
    return (
        spec.kind is WorkloadKind.GEMM or precision.engine == ENGINE_MATRIX
    )


@settings(max_examples=60, deadline=None)
@given(
    specs=st.lists(_kernel(), min_size=1, max_size=8),
    system=st.sampled_from(_SYSTEMS),
    stacks_seed=st.integers(0, 2**16),
    enable_tdp=st.booleans(),
    enable_contention=st.booleans(),
)
def test_batch_equals_scalar_bit_for_bit(
    specs, system, stacks_seed, enable_tdp, enable_contention
):
    # MI250's calibration carries no TF32 GEMM efficiency: the scalar
    # path raises CalibrationError there, so the space excludes it.
    assume(
        not (
            system == "jlse-mi250"
            and any(
                s.precision is Precision.TF32
                and _needs_gemm_calibration(s)
                for s in specs
            )
        )
    )
    engine = PerfEngine(
        get_system(system),
        noise=QUIET,
        enable_tdp=enable_tdp,
        enable_contention=enable_contention,
    )
    n_stacks = [
        1 + (stacks_seed + i) % engine.node.n_stacks
        for i in range(len(specs))
    ]
    batch = KernelBatch.from_specs(specs, n_stacks=n_stacks)
    result = engine.batch().evaluate(batch)
    for i, spec in enumerate(specs):
        scalar = engine.roofline(spec, n_stacks[i])
        point = result.point(i)
        assert point == scalar, (
            f"divergence at point {i} ({spec.kind}, {spec.precision}, "
            f"{n_stacks[i]} stack(s)) on {system}: {point} != {scalar}"
        )
        assert result.bounds()[i] == scalar.bound


@settings(max_examples=20, deadline=None)
@given(
    specs=st.lists(_kernel(), min_size=1, max_size=6),
    system=st.sampled_from(("aurora", "dawn")),
)
def test_ablations_shift_results_not_parity(specs, system):
    """The ablation switches change the numbers; parity must survive."""
    batch = KernelBatch.from_specs(specs)
    for enable_tdp in (True, False):
        engine = PerfEngine(
            get_system(system), noise=QUIET, enable_tdp=enable_tdp
        )
        result = engine.batch().evaluate(batch)
        for i, spec in enumerate(specs):
            assert result.point(i) == engine.roofline(spec, 1)
