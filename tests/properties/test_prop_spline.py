"""Property-based tests for the B-spline substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.miniapps.miniqmc import CubicBspline3D


def _random_grid(n: int, seed: int) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal((n, n, n))


@settings(max_examples=15, deadline=None)
@given(n=st.integers(6, 14), seed=st.integers(0, 2**16))
def test_interpolates_every_grid_node(n, seed):
    values = _random_grid(n, seed)
    spline = CubicBspline3D(values, box=1.0)
    idx = np.stack(
        np.meshgrid(np.arange(n), np.arange(n), np.arange(n), indexing="ij"),
        axis=-1,
    ).reshape(-1, 3)
    pts = idx / n
    got = spline.evaluate(pts)
    assert np.allclose(got, values.ravel(), atol=1e-8)


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(6, 12),
    seed=st.integers(0, 2**16),
    c=st.floats(-10, 10, allow_nan=False),
)
def test_linearity_in_grid_values(n, seed, c):
    values = _random_grid(n, seed)
    pts = np.random.default_rng(seed + 1).uniform(0, 1, (20, 3))
    a = CubicBspline3D(values, 1.0).evaluate(pts)
    b = CubicBspline3D(c * values, 1.0).evaluate(pts)
    assert np.allclose(b, c * a, rtol=1e-9, atol=1e-9)


@settings(max_examples=15, deadline=None)
@given(n=st.integers(6, 12), seed=st.integers(0, 2**16))
def test_periodic_shift_invariance(n, seed):
    """Rolling the grid by one cell equals shifting evaluation points."""
    values = _random_grid(n, seed)
    rolled = np.roll(values, 1, axis=0)
    pts = np.random.default_rng(seed + 2).uniform(0, 1, (15, 3))
    shifted = pts.copy()
    shifted[:, 0] -= 1.0 / n
    a = CubicBspline3D(rolled, 1.0).evaluate(pts)
    b = CubicBspline3D(values, 1.0).evaluate(shifted)
    assert np.allclose(a, b, atol=1e-9)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_constant_grid_constant_everywhere(seed):
    value = float(np.random.default_rng(seed).uniform(-5, 5))
    spline = CubicBspline3D(np.full((8, 8, 8), value), 1.0)
    pts = np.random.default_rng(seed + 3).uniform(-2, 3, (25, 3))
    assert np.allclose(spline.evaluate(pts), value, atol=1e-9)
