"""Property-based tests: the Euler solver conserves, stays positive."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.miniapps.cloverleaf import EulerSolver2D, EulerState


def _random_state(n: int, seed: int) -> EulerState:
    rng = np.random.default_rng(seed)
    u = np.zeros((4, n, n))
    u[0] = 0.5 + rng.random((n, n))  # density in [0.5, 1.5]
    u[1] = 0.2 * rng.standard_normal((n, n)) * u[0]
    u[2] = 0.2 * rng.standard_normal((n, n)) * u[0]
    kinetic = 0.5 * (u[1] ** 2 + u[2] ** 2) / u[0]
    u[3] = kinetic + (0.5 + rng.random((n, n))) / 0.4  # p in [0.5, 1.5]
    return EulerState(u)


@settings(max_examples=15, deadline=None)
@given(n=st.integers(8, 24), seed=st.integers(0, 2**16), steps=st.integers(1, 15))
def test_periodic_conservation(n, seed, steps):
    solver = EulerSolver2D(_random_state(n, seed), boundary="periodic")
    before = solver.state.totals()
    solver.run(steps)
    after = solver.state.totals()
    assert np.allclose(before, after, rtol=1e-9, atol=1e-9)


@settings(max_examples=15, deadline=None)
@given(n=st.integers(8, 24), seed=st.integers(0, 2**16))
def test_density_and_pressure_stay_positive(n, seed):
    solver = EulerSolver2D(_random_state(n, seed), boundary="periodic")
    solver.run(10)
    rho, _, _, p = solver.state.primitives()
    assert np.all(rho > 0)
    assert np.all(p > -1e-9)


@settings(max_examples=15, deadline=None)
@given(n=st.integers(8, 20), seed=st.integers(0, 2**16))
def test_reflective_walls_conserve_mass_and_energy(n, seed):
    solver = EulerSolver2D(_random_state(n, seed), boundary="reflective")
    before = solver.state.totals()
    solver.run(8)
    after = solver.state.totals()
    assert np.isclose(after[0], before[0], rtol=1e-10)
    assert np.isclose(after[3], before[3], rtol=1e-10)


@settings(max_examples=10, deadline=None)
@given(n=st.integers(8, 16), seed=st.integers(0, 2**16))
def test_galilean_shift_of_uniform_flow(n, seed):
    """A uniform flow on a periodic domain stays exactly uniform."""
    u = np.zeros((4, n, n))
    u[0] = 1.3
    u[1] = 1.3 * 0.4
    u[2] = 1.3 * (-0.2)
    u[3] = 0.5 * (u[1] ** 2 + u[2] ** 2) / u[0] + 2.0
    solver = EulerSolver2D(EulerState(u.copy()), boundary="periodic")
    solver.run(6)
    assert np.allclose(solver.state.u, u, atol=1e-10)
