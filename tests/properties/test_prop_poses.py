"""Property-based tests: pose transforms and docking energies."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.miniapps.minibude import evaluate_poses, make_deck, pose_transforms

_angles = st.floats(-np.pi, np.pi, allow_nan=False)


@settings(max_examples=40, deadline=None)
@given(ax=_angles, ay=_angles, az=_angles, tx=st.floats(-5, 5))
def test_pose_rotations_orthonormal(ax, ay, az, tx):
    poses = np.array([[ax, ay, az, tx, 0.0, 0.0]], dtype=np.float32)
    rot, trans = pose_transforms(poses)
    assert np.allclose(rot[0] @ rot[0].T, np.eye(3), atol=1e-5)
    assert abs(np.linalg.det(rot[0]) - 1.0) < 1e-5
    assert trans[0, 0] == np.float32(tx)


@settings(max_examples=40, deadline=None)
@given(ax=_angles, ay=_angles, az=_angles, seed=st.integers(0, 999))
def test_rotation_preserves_lengths(ax, ay, az, seed):
    rng = np.random.default_rng(seed)
    v = rng.standard_normal(3).astype(np.float32)
    rot, _ = pose_transforms(np.array([[ax, ay, az, 0, 0, 0]], dtype=np.float32))
    assert abs(np.linalg.norm(rot[0] @ v) - np.linalg.norm(v)) < 1e-4


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_energy_invariant_under_pose_order(seed):
    deck = make_deck(n_ligand=8, n_protein=8, n_poses=12, seed=seed)
    energies = evaluate_poses(deck)
    from dataclasses import replace

    perm = np.random.default_rng(seed).permutation(12)
    shuffled = replace(deck, poses=deck.poses[perm])
    assert np.allclose(evaluate_poses(shuffled), energies[perm], rtol=1e-5)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**16), shift=st.floats(50.0, 500.0))
def test_far_translation_zeroes_energy(seed, shift):
    """Beyond the electrostatic cutoff and any steric overlap, E = 0."""
    deck = make_deck(n_ligand=6, n_protein=6, n_poses=4, seed=seed)
    from dataclasses import replace

    far = deck.poses.copy()
    far[:, 3] += np.float32(shift)
    assert np.allclose(evaluate_poses(replace(deck, poses=far)), 0.0, atol=1e-2)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_energies_finite(seed):
    deck = make_deck(n_ligand=10, n_protein=10, n_poses=16, seed=seed)
    energies = evaluate_poses(deck)
    assert np.all(np.isfinite(energies))
