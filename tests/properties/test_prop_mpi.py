"""Property-based tests for the simulated MPI layer."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.mpi import SUM, SimMPI


@settings(max_examples=10, deadline=None)
@given(
    n_ranks=st.integers(2, 8),
    seed=st.integers(0, 2**16),
)
def test_allreduce_equals_local_sum(aurora_engine, n_ranks, seed):
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((n_ranks, 4))

    def prog(comm):
        return comm.Allreduce(data[comm.rank].copy(), SUM)

    results = SimMPI(aurora_engine, n_ranks).run(prog)
    expected = data.sum(axis=0)
    for r in results:
        assert np.allclose(r, expected)


@settings(max_examples=10, deadline=None)
@given(n_ranks=st.integers(2, 8), root=st.integers(0, 7), seed=st.integers(0, 99))
def test_bcast_reaches_everyone(aurora_engine, n_ranks, root, seed):
    root = root % n_ranks
    payload = np.arange(6.0) * (seed + 1)

    def prog(comm):
        data = payload.copy() if comm.rank == root else None
        return comm.Bcast(data, root=root)

    for r in SimMPI(aurora_engine, n_ranks).run(prog):
        assert np.allclose(r, payload)


@settings(max_examples=10, deadline=None)
@given(n_ranks=st.integers(2, 6), seed=st.integers(0, 2**16))
def test_ring_pass_preserves_payload(aurora_engine, n_ranks, seed):
    """Send a token around a ring; everyone ends with its left
    neighbour's value and virtual clocks are consistent."""
    rng = np.random.default_rng(seed)
    tokens = rng.standard_normal(n_ranks)

    def prog(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        send = comm.Isend(np.array([tokens[comm.rank]]), right, tag=5)
        got = comm.Irecv(left, tag=5).wait()
        send.wait()
        return float(got[0])

    results = SimMPI(aurora_engine, n_ranks).run(prog)
    assert results == [tokens[(r - 1) % n_ranks] for r in range(n_ranks)]


# hypothesis needs a non-fixture engine; build one lazily per module.
import pytest  # noqa: E402

from repro.hw.systems import get_system  # noqa: E402
from repro.sim.engine import PerfEngine  # noqa: E402
from repro.sim.noise import QUIET  # noqa: E402

_ENGINE = None


@pytest.fixture(name="aurora_engine", scope="module")
def _aurora_engine():
    global _ENGINE
    if _ENGINE is None:
        _ENGINE = PerfEngine(get_system("aurora"), noise=QUIET)
    return _ENGINE
