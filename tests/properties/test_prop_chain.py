"""Property-based tests for pointer chains and the FMA chain."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.micro.lats import build_chain, chase, chase_coalesced
from repro.micro.peak_flops import fma_chain, fma_chain_reference


@settings(max_examples=40, deadline=None)
@given(n=st.integers(2, 600), seed=st.integers(0, 2**16))
def test_chain_is_a_permutation(n, seed):
    chain = build_chain(n, seed=seed)
    assert sorted(chain) == list(range(n))


@settings(max_examples=40, deadline=None)
@given(n=st.integers(2, 400), seed=st.integers(0, 2**16))
def test_chain_is_one_cycle(n, seed):
    """Sattolo's algorithm guarantees a single n-cycle: the chase returns
    home after exactly n steps and never earlier."""
    chain = build_chain(n, seed=seed)
    idx = 0
    for step in range(1, n + 1):
        idx = int(chain[idx])
        if idx == 0:
            assert step == n
            break


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(16, 300),
    steps=st.integers(0, 500),
    seed=st.integers(0, 2**16),
)
def test_coalesced_agrees_with_scalar_chase(n, steps, seed):
    chain = build_chain(n, seed=seed)
    lanes = chase_coalesced(chain, steps)
    for w in range(4):  # spot-check a few lanes against the scalar chase
        assert lanes[w] == chase(chain, steps, start=w)


@settings(max_examples=40, deadline=None)
@given(
    lanes=st.integers(1, 64),
    a=st.floats(-1.2, 1.2, allow_nan=False),
    b=st.floats(-2, 2, allow_nan=False),
    n=st.integers(0, 200),
    seed=st.integers(0, 2**16),
)
def test_fma_chain_matches_closed_form(lanes, a, b, n, seed):
    rng = np.random.default_rng(seed)
    x0 = rng.standard_normal(lanes)
    out = fma_chain(x0, a, b, n)
    ref = fma_chain_reference(x0, a, b, n)
    assert np.allclose(out, ref, rtol=1e-9, atol=1e-9)
