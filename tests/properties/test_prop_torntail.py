"""Torn-tail property: every byte-level chop of a stream reads cleanly.

A concurrent reader (``campaign watch`` tailing ``live.ndjson``, a
memostore recovering its index while yesterday's daemon was
SIGKILLed mid-append) can observe an NDJSON file cut at *any* byte
offset.  The property, swept exhaustively over every chop point of a
representative stream, is:

* the reader never raises;
* it returns exactly the records whose full line (including the
  terminating newline) survived the chop — the longest intact prefix,
  never a partial or reassembled record;
* for the sealed readers, a chop is indistinguishable from a torn
  write: the dropped-tail count matches what was cut.

This is the byte-level generalisation of the line-level torn-tail
tests the journal already has, and it covers the three readers the
service daemon depends on: the live event stream, the memostore index
journal, and the service queue journal.
"""

import json

import pytest

from repro.ioutils import seal_record
from repro.obs.events import EVENT_SCHEMA_VERSION, EventBus, read_events
from repro.sim.memo import content_digest
from repro.sim.memostore import INDEX_VERSION, MemoStore, read_index
from repro.obs.requests import RequestLog, read_requests
from repro.service.state import QUEUE_VERSION, ServiceState


def _chop_points(data: bytes) -> range:
    return range(len(data) + 1)


def _intact_prefix_lines(data: bytes, chop: int) -> int:
    """Lines wholly (newline included) inside ``data[:chop]``."""
    return data[:chop].count(b"\n")


class TestLiveStreamChopSweep:
    def test_every_chop_reads_longest_intact_prefix(self, tmp_path):
        bus = EventBus(tmp_path)
        for index in range(6):
            bus.live("worker-heartbeat", index=index, unit=f"u{index}")
        data = open(bus.live_path, "rb").read()
        full = read_events(bus.live_path)
        assert len(full) == 6
        chopped = tmp_path / "chopped.ndjson"
        for chop in _chop_points(data):
            chopped.write_bytes(data[:chop])
            records = read_events(chopped)
            expected = _intact_prefix_lines(data, chop)
            assert records == full[:expected], f"chop at byte {chop}"

    def test_garbage_tail_ends_prefix(self, tmp_path):
        bus = EventBus(tmp_path)
        bus.live("pool-degraded")
        with open(bus.live_path, "ab") as fh:
            fh.write(b"\x00\xffnot json\n")
        records = read_events(bus.live_path)
        assert len(records) == 1
        assert records[0]["type"] == "pool-degraded"


class TestMemostoreIndexChopSweep:
    def test_every_chop_recovers_without_error(self, tmp_path):
        store = MemoStore(tmp_path / "cache")
        keys = [content_digest(("k", i)) for i in range(5)]
        for i, key in enumerate(keys):
            store.put(key, {"i": i})
        data = open(store.index_path, "rb").read()
        full, dropped = read_index(store.index_path)
        assert dropped == 0 and len(full) == 5
        chopped = tmp_path / "chopped.jsonl"
        for chop in _chop_points(data):
            chopped.write_bytes(data[:chop])
            records, _ = read_index(chopped)
            expected = _intact_prefix_lines(data, chop)
            assert records == full[:expected], f"chop at byte {chop}"

    def test_store_survives_chopped_index_at_every_point(self, tmp_path):
        """A SIGKILL mid-index-append never loses objects on disk."""
        seed_root = tmp_path / "seed"
        store = MemoStore(seed_root)
        keys = [content_digest(("k", i)) for i in range(3)]
        for i, key in enumerate(keys):
            store.put(key, {"i": i})
        data = open(store.index_path, "rb").read()
        # Sweep a coarse grid (every 7 bytes) of index truncations: the
        # rebuilt store must always serve every object.
        for chop in range(0, len(data) + 1, 7):
            with open(store.index_path, "wb") as fh:
                fh.write(data[:chop])
            recovered = MemoStore(seed_root)
            for i, key in enumerate(keys):
                assert recovered.get(key) == {"i": i}, f"chop at byte {chop}"

    def test_checksum_flip_ends_prefix(self, tmp_path):
        rec1 = seal_record({"v": INDEX_VERSION, "op": "put", "key": "a" * 64})
        rec2 = seal_record({"v": INDEX_VERSION, "op": "put", "key": "b" * 64})
        rec2["sha256"] = "0" * 64  # forged seal
        path = tmp_path / "index.jsonl"
        path.write_text(
            json.dumps(rec1, sort_keys=True) + "\n"
            + json.dumps(rec2, sort_keys=True) + "\n"
        )
        records, dropped = read_index(path)
        assert [r["key"] for r in records] == ["a" * 64]
        assert dropped == 1


class TestRequestLogChopSweep:
    def _seed_log(self, directory) -> RequestLog:
        log = RequestLog(directory)
        for index in range(5):
            log.append(
                "request-span",
                trace_id=f"{index:032x}",
                span_id=f"{index:016x}",
                request=f"r-{index}",
                tenant=f"tenant-{index % 2}",
                endpoint="bench:table4",
                status="done",
                cached=bool(index % 2),
                latency_s=0.01 * (index + 1),
                phases={"queue": 0.001, "execute": 0.009},
            )
        log.append(
            "request-shed",
            trace_id="f" * 32,
            request="r-shed",
            tenant="tenant-0",
            endpoint="bench:table4",
            reason="tenant-rate",
        )
        return log

    def test_every_chop_reads_longest_intact_prefix(self, tmp_path):
        log = self._seed_log(tmp_path)
        data = open(log.path, "rb").read()
        full = read_requests(log.path)
        assert len(full) == 6
        chopped = tmp_path / "chopped.ndjson"
        for chop in _chop_points(data):
            chopped.write_bytes(data[:chop])
            records = read_requests(chopped)
            expected = _intact_prefix_lines(data, chop)
            assert records == full[:expected], f"chop at byte {chop}"

    def test_schema_invalid_record_ends_prefix(self, tmp_path):
        """Unlike raw NDJSON readers, the request reader also stops at
        the first record that parses but fails schema validation — a
        half-migrated or corrupted stream never feeds garbage into the
        RED fold."""
        log = self._seed_log(tmp_path)
        with open(log.path, "a", encoding="utf-8") as fh:
            fh.write(
                json.dumps(
                    {"v": 1, "type": "request-span", "ts": 0.0,
                     "trace_id": "a" * 32, "span_id": "b" * 16,
                     "request": "r-bad", "tenant": "t", "endpoint": "e",
                     "status": "done", "cached": False,
                     "latency_s": 0.1, "phases": {"bogus": 0.1}}
                )
                + "\n"
            )
            fh.write(
                json.dumps(
                    {"v": 1, "type": "request-shed", "ts": 0.0,
                     "trace_id": "c" * 32, "request": "r-after",
                     "tenant": "t", "endpoint": "e", "reason": "x"}
                )
                + "\n"
            )
        records = read_requests(log.path)
        assert len(records) == 6
        assert all(r["request"] != "r-bad" for r in records)
        assert all(r["request"] != "r-after" for r in records)

    def test_garbage_tail_ends_prefix(self, tmp_path):
        log = self._seed_log(tmp_path)
        with open(log.path, "ab") as fh:
            fh.write(b"\x00\xffnot json\n")
        records = read_requests(log.path)
        assert len(records) == 6


class TestQueueJournalChopSweep:
    def test_every_chop_yields_valid_recovery(self, tmp_path):
        state = ServiceState(tmp_path / "svc")
        from repro.service.state import normalize_request

        body = normalize_request({"command": "table4"})
        for i in range(4):
            state.journal_accepted(f"r-{i}", "default", body)
        state.journal_done("r-0", "done", "d" * 64)
        data = open(state.queue_path, "rb").read()
        for chop in _chop_points(data):
            root = tmp_path / f"chop-{chop}"
            chopped = ServiceState(root)
            with open(chopped.queue_path, "wb") as fh:
                fh.write(data[:chop])
            survivors = chopped.recover()
            ids = [s["request_id"] for s in survivors]
            # Recovery must be a prefix of the true backlog story:
            # never a duplicate, never an unknown id, never r-0 after
            # its 'done' record became visible.
            assert len(ids) == len(set(ids))
            assert set(ids) <= {f"r-{i}" for i in range(4)}
            if chop == len(data):
                assert ids == ["r-1", "r-2", "r-3"]

    def test_recovery_compaction_is_itself_chop_safe(self, tmp_path):
        """recover() rewrites the journal; the rewrite must be sealed
        NDJSON a second recovery reads identically."""
        state = ServiceState(tmp_path / "svc")
        from repro.service.state import normalize_request

        body = normalize_request({"command": "table1"})
        for i in range(3):
            state.journal_accepted(f"r-{i}", "t", body)
        first = [s["request_id"] for s in state.recover()]
        second = [s["request_id"] for s in state.recover()]
        assert first == second == ["r-0", "r-1", "r-2"]
