"""Process-level chaos: byte-identity of supervised campaigns.

The property (ISSUE 6 acceptance): for every injected worker SIGKILL,
hang, or transient-ENOSPC point, at ``--jobs`` 2 and 4, the campaign
completes and its journal, result store, manifest, and rendered tables
are **byte-identical** to a clean serial run — except for the two
deliberately visible outcomes, poison-unit quarantine and degraded
mode, whose provenance is itself deterministic.

Every kill point of the smoke spec is swept exhaustively (each unit,
killed both before execution and after its result is flushed), not
sampled: the supervisor's in-flight accounting must hold at *any*
point, and four units x two points x two pool sizes is cheap enough to
enumerate.
"""

import json
import os

import pytest

from repro.campaign.journal import Journal
from repro.campaign.orchestrator import Orchestrator
from repro.campaign.spec import get_spec
from repro.exitcodes import ExitCode
from repro.faults.process import WorkerFaultPlan, build_worker_plan
from repro.ioutils import io_retry_count, reset_io_retry_count

SPEC = "smoke"
_UNIT_IDS = [u.id for u in get_spec(SPEC).execution_order()]


def _tree_bytes(directory, exclude=()):
    out = {}
    for root, _, files in os.walk(directory):
        for name in files:
            full = os.path.join(root, name)
            rel = os.path.relpath(full, directory)
            # live.ndjson is wall-clock telemetry, outside the
            # byte-identity contract (docs/observability.md).
            if rel in exclude or name == "live.ndjson":
                continue
            with open(full, "rb") as fh:
                out[rel] = fh.read()
    return out


def _run(directory, *, jobs=1, worker_plan=None, max_respawns=None,
         hang_timeout_s=None):
    orch = Orchestrator(
        directory,
        spec=get_spec(SPEC),
        seed=0,
        jobs=jobs,
        worker_plan=worker_plan,
        max_respawns=max_respawns,
        hang_timeout_s=hang_timeout_s,
    )
    return orch.run()


@pytest.fixture(scope="module")
def golden(tmp_path_factory):
    """One clean serial run: the byte-level ground truth."""
    directory = tmp_path_factory.mktemp("golden") / "campaign"
    code = _run(str(directory))
    assert code == ExitCode.OK
    return _tree_bytes(directory)


class TestKillSweep:
    """Every (unit, kill point, pool size) heals to identical bytes."""

    @pytest.mark.parametrize("jobs", [2, 4])
    @pytest.mark.parametrize("point", ["start", "done"])
    @pytest.mark.parametrize("unit_id", _UNIT_IDS)
    def test_any_kill_point_is_byte_identical(
        self, golden, tmp_path, unit_id, point, jobs
    ):
        plan = WorkerFaultPlan(
            "worker-kill", 0, kills={unit_id: (1, point)}
        )
        code = _run(str(tmp_path / "c"), jobs=jobs, worker_plan=plan)
        assert code == ExitCode.OK
        assert _tree_bytes(tmp_path / "c") == golden


class TestHang:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_hung_worker_heals_to_identical_bytes(self, golden, tmp_path, jobs):
        for unit_id in _UNIT_IDS:
            directory = tmp_path / f"h-{jobs}-{unit_id.replace(':', '_')}"
            plan = WorkerFaultPlan("worker-hang", 0, hangs={unit_id: 1})
            code = _run(
                str(directory), jobs=jobs, worker_plan=plan,
                hang_timeout_s=1.0,
            )
            assert code == ExitCode.OK
            assert _tree_bytes(directory) == golden


class TestQuarantine:
    """Poison units quarantine with provenance; the DAG completes."""

    def _poison_run(self, directory, victim, jobs=2):
        plan = WorkerFaultPlan(
            "worker-poison", 0, kills={victim: (3, "start")}
        )
        return _run(str(directory), jobs=jobs, worker_plan=plan)

    def test_quarantined_campaign_completes_unhealthy(self, tmp_path):
        code = self._poison_run(tmp_path / "c", _UNIT_IDS[0])
        assert code == ExitCode.UNHEALTHY

    def test_journal_records_quarantine_with_exit_codes(self, tmp_path):
        victim = _UNIT_IDS[0]
        self._poison_run(tmp_path / "c", victim)
        journal = Journal.load(tmp_path / "c" / "journal.jsonl")
        quarantined = journal.of_type("unit-quarantined")
        assert len(quarantined) == 1
        rec = quarantined[0]
        assert rec["unit"] == victim
        assert rec["exit_codes"] == [-9, -9, -9]
        assert rec["status"] == "FAILED"
        # The campaign still finished: every unit journalled, plus done.
        assert journal.of_type("campaign-done")
        committed = {
            r["unit"]
            for r in journal.records
            if r["type"] in ("unit-done", "unit-failed", "unit-quarantined")
        }
        assert committed == set(_UNIT_IDS)

    def test_unrelated_unit_payloads_match_serial(self, golden, tmp_path):
        # Quarantining table3:aurora fails its dependents, but an
        # independent unit's stored bytes must equal the serial run's.
        self._poison_run(tmp_path / "c", "table3:aurora")
        chaos = _tree_bytes(tmp_path / "c")
        independent = [
            rel
            for rel in golden
            if "table3_dawn" in rel or "table3:dawn" in rel
        ]
        assert independent, "store layout changed; fix this test's key"
        for rel in independent:
            assert chaos[rel] == golden[rel]

    def test_manifest_carries_supervision_provenance(self, tmp_path):
        victim = _UNIT_IDS[0]
        self._poison_run(tmp_path / "c", victim)
        with open(tmp_path / "c" / "manifest.json", encoding="utf-8") as fh:
            doc = json.load(fh)
        supervision = doc["campaign"]["supervision"]
        assert supervision["quarantined"] == {victim: [-9, -9, -9]}
        assert supervision["degraded"] is False
        metrics = doc["campaign"]["metrics"]
        assert metrics["unit.quarantined"]["samples"] == [
            {"labels": {"unit": victim}, "value": 1.0}
        ]

    def test_quarantine_is_sticky_across_resume(self, tmp_path):
        victim = _UNIT_IDS[0]
        self._poison_run(tmp_path / "c", victim)
        orch = Orchestrator(str(tmp_path / "c"))
        # Already complete: resume converges without re-running the
        # poison unit (which would crash nothing now, but must not be
        # retried regardless).
        assert orch.resume() == ExitCode.UNHEALTHY


class TestDegradedMode:
    def test_exhausted_budget_completes_via_serial_drain(
        self, golden, tmp_path
    ):
        plan = WorkerFaultPlan(
            "worker-poison", 0, kills={_UNIT_IDS[0]: (2, "start")}
        )
        directory = tmp_path / "c"
        code = _run(str(directory), jobs=2, worker_plan=plan, max_respawns=0)
        assert code == ExitCode.OK
        # Everything but the manifest (which records the degradation) is
        # byte-identical to serial.
        assert _tree_bytes(directory, exclude=("manifest.json",)) == {
            rel: data
            for rel, data in golden.items()
            if rel != "manifest.json"
        }
        with open(directory / "manifest.json", encoding="utf-8") as fh:
            doc = json.load(fh)
        supervision = doc["campaign"]["supervision"]
        assert supervision["degraded"] is True
        assert supervision["respawns"] == 0
        metrics = doc["campaign"]["metrics"]
        assert metrics["scheduler.degraded"]["samples"][0]["value"] == 1.0


class TestTransientEnospc:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_enospc_is_absorbed_byte_identically(self, golden, tmp_path, jobs):
        reset_io_retry_count()
        plan = build_worker_plan("io-enospc", 0, _UNIT_IDS)
        assert plan.enospc, "seed 0 must schedule at least one failing op"
        directory = tmp_path / f"c{jobs}"
        code = _run(str(directory), jobs=jobs, worker_plan=plan)
        assert code == ExitCode.OK
        assert io_retry_count() > 0, "the fault never fired"
        assert _tree_bytes(directory) == golden


class TestSeededScenarios:
    """The CLI-facing builders stay deterministic and in range."""

    @pytest.mark.parametrize(
        "scenario", ["worker-kill", "worker-hang", "worker-poison"]
    )
    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_plans_are_pure_functions_of_seed(self, scenario, seed):
        a = build_worker_plan(scenario, seed, _UNIT_IDS)
        b = build_worker_plan(scenario, seed, _UNIT_IDS)
        assert a == b
        targeted = set(a.kills) | set(a.hangs)
        assert targeted and targeted <= set(_UNIT_IDS)

    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_seeded_kill_scenario_heals(self, golden, tmp_path, seed):
        plan = build_worker_plan("worker-kill", seed, _UNIT_IDS)
        directory = tmp_path / "c"
        code = _run(str(directory), jobs=2, worker_plan=plan)
        assert code == ExitCode.OK
        assert _tree_bytes(directory) == golden
