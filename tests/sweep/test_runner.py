"""The sweep runner: artifacts, determinism, NDJSON schema, the gate
entries, and agreement with an exhaustive scalar enumeration."""

import filecmp
import json

import pytest

from repro.errors import ConfigurationError
from repro.hw.systems import get_system
from repro.sim.engine import PerfEngine
from repro.sim.noise import QUIET
from repro.sweep.runner import (
    SWEEP_FILE,
    SWEEP_SUMMARY_SCHEMA,
    _chunk_batch,
    run_sweep,
    render_summary,
    sweep_benchmark_entries,
)
from repro.sweep.spec import get_sweep_spec

SMOKE = get_sweep_spec("smoke")

NDJSON_KEYS = {
    "v", "spec", "system", "index", "n_stacks", "precision", "params",
    "gflops", "total_s", "bound",
}


def _enumerate_scalar(spec):
    """Brute-force every point through the scalar golden reference."""
    rows = []
    for sysname in spec.systems:
        engine = PerfEngine(get_system(sysname), noise=QUIET)
        points = spec.system_points(sysname)
        for local in range(points):
            batch, _ = _chunk_batch(spec, sysname, local, 1)
            kernel = batch.spec(0)
            n_stacks = int(batch.n_stacks[0])
            point = engine.roofline(kernel, n_stacks)
            fom = kernel.flops / point.total_s if point.total_s else 0.0
            rows.append((sysname, local, fom, point))
    return rows


class TestRunSweep:
    def test_summary_and_artifacts(self, tmp_path):
        out = tmp_path / "run"
        outcome = run_sweep(
            SMOKE, out_dir=out, top_k=8, ndjson=True, verify=16
        )
        summary = outcome.summary
        assert summary["schema"] == SWEEP_SUMMARY_SCHEMA
        assert summary["points"] == SMOKE.n_points() == 72
        assert summary["scalar"]["verified"] is True
        assert summary["scalar"]["sample"] == 16
        assert summary["scalar"]["speedup"] is not None
        assert summary["best"] == outcome.topk[0] == outcome.best
        assert (out / SWEEP_FILE).exists()
        assert (out / "topk.ndjson").exists()
        assert (out / "results.ndjson").exists()
        on_disk = json.loads((out / SWEEP_FILE).read_text())
        assert on_disk["points"] == 72
        assert on_disk["results"] == "results.ndjson"

    def test_topk_matches_exhaustive_scalar_enumeration(self):
        outcome = run_sweep(SMOKE, top_k=8, verify=0)
        rows = _enumerate_scalar(SMOKE)
        rows.sort(key=lambda r: (-r[2], r[1]))
        for rank, row in enumerate(outcome.topk):
            sysname, local, fom, point = rows[rank]
            assert row["system"] == sysname
            assert row["index"] == local
            assert row["gflops"] == fom / 1e9
            assert row["total_s"] == point.total_s
            assert row["bound"] == point.bound

    def test_topk_is_sorted_and_bounded(self):
        outcome = run_sweep(SMOKE, top_k=5, verify=0)
        assert len(outcome.topk) == 5
        foms = [row["gflops"] for row in outcome.topk]
        assert foms == sorted(foms, reverse=True)

    def test_chunking_does_not_change_results(self, tmp_path):
        a = tmp_path / "one-chunk"
        b = tmp_path / "many-chunks"
        run_sweep(SMOKE, out_dir=a, ndjson=True, verify=0)
        run_sweep(SMOKE, out_dir=b, ndjson=True, verify=0, chunk_points=7)
        for name in ("topk.ndjson", "results.ndjson"):
            assert filecmp.cmp(a / name, b / name, shallow=False), name

    def test_fork_sharding_is_byte_identical(self, tmp_path):
        serial = tmp_path / "serial"
        forked = tmp_path / "forked"
        run_sweep(
            SMOKE, out_dir=serial, ndjson=True, verify=0, chunk_points=16
        )
        run_sweep(
            SMOKE, out_dir=forked, ndjson=True, verify=0, chunk_points=16,
            jobs=3,
        )
        for name in ("topk.ndjson", "results.ndjson"):
            assert filecmp.cmp(serial / name, forked / name, shallow=False)

    def test_results_ndjson_schema(self, tmp_path):
        out = tmp_path / "run"
        run_sweep(SMOKE, out_dir=out, ndjson=True, verify=0)
        lines = (out / "results.ndjson").read_text().splitlines()
        assert len(lines) == SMOKE.n_points()
        seen = set()
        for line in lines:
            row = json.loads(line)
            assert set(row) == NDJSON_KEYS
            assert row["v"] == 1
            assert row["spec"] == "smoke"
            assert row["system"] in SMOKE.systems
            assert set(row["params"]) == {"tile_m", "tile_n", "tile_k"}
            assert row["bound"] in ("latency", "memory", "compute")
            assert row["total_s"] > 0
            seen.add((row["system"], row["index"]))
        assert len(seen) == SMOKE.n_points()

    def test_ndjson_rows_match_topk_rows(self, tmp_path):
        out = tmp_path / "run"
        outcome = run_sweep(out_dir=out, spec=SMOKE, ndjson=True, verify=0)
        by_index = {}
        for line in (out / "results.ndjson").read_text().splitlines():
            row = json.loads(line)
            by_index[(row["system"], row["index"])] = row
        for row in outcome.topk:
            full = by_index[(row["system"], row["index"])]
            assert full["gflops"] == row["gflops"]
            assert full["total_s"] == row["total_s"]
            assert full["params"] == row["params"]
            assert full["bound"] == row["bound"]

    def test_verify_zero_skips_scalar_pass(self):
        outcome = run_sweep(SMOKE, verify=0)
        assert outcome.summary["scalar"] == {
            "sample": 0, "points_per_s": None, "verified": False,
            "speedup": None,
        }

    def test_config_validation(self):
        with pytest.raises(ConfigurationError, match="top_k"):
            run_sweep(SMOKE, top_k=0)
        with pytest.raises(ConfigurationError, match="chunk_points"):
            run_sweep(SMOKE, chunk_points=0)
        with pytest.raises(ConfigurationError, match="jobs"):
            run_sweep(SMOKE, jobs=0)

    def test_render_summary_mentions_the_headline(self):
        outcome = run_sweep(SMOKE, top_k=3, verify=8)
        text = render_summary(outcome.summary, outcome.topk)
        assert "72 points" in text.replace(",", "")
        assert "bit-for-bit OK" in text
        assert "batch speedup" in text


class TestBenchmarkEntries:
    def test_entry_shape(self):
        entries = sweep_benchmark_entries("smoke", verify=16)
        assert len(entries) == 1
        entry = entries[0]
        assert entry["bench"] == "sweep"
        assert entry["system"] == "smoke"
        assert entry["points"] == 72
        assert entry["verified_sample"] == 16
        assert entry["points_per_s"] > 0
        assert entry["batch_speedup"] > 0
        assert entry["fom"] > 0
