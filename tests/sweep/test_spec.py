"""SweepSpec: validation, geometry, serialization, the builtin spaces."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.hw.systems import get_system
from repro.sweep.spec import (
    SWEEP_SPEC_NAMES,
    SWEEP_SPEC_SCHEMA,
    WORKLOAD_NAMES,
    SweepSpec,
    get_sweep_spec,
    load_sweep_spec,
)


def _spec(**overrides) -> SweepSpec:
    kwargs = dict(
        name="t",
        workload="gemm-tile",
        systems=("aurora",),
        precisions=("fp64",),
        stacks=(1,),
        axes=(
            ("tile_m", (64, 128)),
            ("tile_n", (64,)),
            ("tile_k", (16,)),
        ),
    )
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


class TestValidation:
    def test_unknown_workload(self):
        with pytest.raises(ConfigurationError, match="unknown sweep workload"):
            _spec(workload="nope", axes=())

    def test_axes_must_match_workload(self):
        with pytest.raises(ConfigurationError, match="needs axes"):
            _spec(axes=(("tile_m", (64,)),))

    def test_unknown_system(self):
        from repro.errors import UnknownSystemError

        with pytest.raises(UnknownSystemError):
            _spec(systems=("summit",))

    def test_unknown_precision(self):
        with pytest.raises(ConfigurationError):
            _spec(precisions=("fp8",))

    def test_bad_stacks(self):
        with pytest.raises(ConfigurationError, match="'all'"):
            _spec(stacks="every")
        with pytest.raises(ConfigurationError, match="stack list"):
            _spec(stacks=())
        with pytest.raises(ConfigurationError, match="stack list"):
            _spec(stacks=(0,))

    def test_stacks_beyond_system(self):
        spec = _spec(stacks=(10,))
        spec.stack_values("aurora")  # 12 stacks: fine
        with pytest.raises(ConfigurationError, match="10 stack"):
            spec.stack_values("dawn")  # 8 stacks

    def test_empty_axis(self):
        with pytest.raises(ConfigurationError, match="is empty"):
            _spec(
                axes=(
                    ("tile_m", ()),
                    ("tile_n", (64,)),
                    ("tile_k", (16,)),
                )
            )


class TestGeometry:
    def test_system_points_is_the_cross_product(self):
        spec = _spec(
            precisions=("fp64", "fp32"),
            stacks=(1, 2, 4),
        )
        assert spec.system_points("aurora") == 3 * 2 * 2 * 1 * 1
        assert spec.n_points() == spec.system_points("aurora")

    def test_all_stacks_varies_per_system(self):
        spec = _spec(systems=("aurora", "dawn"), stacks="all")
        assert spec.stack_values("aurora") == tuple(range(1, 13))
        assert spec.stack_values("dawn") == tuple(range(1, 9))
        assert spec.n_points() == (12 + 8) * 1 * 2 * 1 * 1


class TestSerialization:
    def test_doc_round_trip(self):
        spec = get_sweep_spec("ci")
        assert SweepSpec.from_doc(spec.to_doc()) == spec
        assert spec.to_doc()["schema"] == SWEEP_SPEC_SCHEMA

    def test_bad_schema(self):
        with pytest.raises(ConfigurationError, match="not a sweep spec"):
            SweepSpec.from_doc({"schema": "nope"})

    def test_load_from_json_file(self, tmp_path):
        spec = _spec(name="from-file")
        path = tmp_path / "space.json"
        path.write_text(json.dumps(spec.to_doc()))
        assert load_sweep_spec(str(path)) == spec

    def test_load_unknown_name(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no builtin sweep spec"):
            load_sweep_spec(str(tmp_path / "missing.json"))

    def test_load_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_sweep_spec(str(path))


class TestBuiltins:
    def test_registry(self):
        assert set(SWEEP_SPEC_NAMES) == {
            "smoke", "ci", "million", "bude-tune", "mix"
        }
        for name in SWEEP_SPEC_NAMES:
            spec = get_sweep_spec(name)
            assert spec.workload in WORKLOAD_NAMES
            assert spec.n_points() > 0
        with pytest.raises(ConfigurationError, match="unknown sweep spec"):
            get_sweep_spec("gigantic")

    def test_million_meets_the_acceptance_floor(self):
        assert get_sweep_spec("million").n_points() >= 1_000_000

    def test_ci_space_is_ci_sized(self):
        assert 50_000 <= get_sweep_spec("ci").n_points() <= 500_000

    def test_smoke_is_test_sized(self):
        assert get_sweep_spec("smoke").n_points() <= 1000

    def test_mix_covers_every_system(self):
        spec = get_sweep_spec("mix")
        for sysname in spec.systems:
            get_system(sysname)
        assert len(spec.systems) == 4
