"""ApiProfiler: recording, aggregation, determinism, clock checks."""

import threading

import pytest

from repro.profiler.core import (
    LAYERS,
    ApiCall,
    ApiProfiler,
    KernelSample,
    host_overhead_us,
)


def _sample(name="axpy", achieved=2.0e-3, compute=1.9e-3, memory=0.5e-3):
    return KernelSample(
        name=name,
        system="aurora",
        n_stacks=12,
        achieved_s=achieved,
        compute_s=compute,
        memory_s=memory,
        latency_s=1e-5,
        flops=1e9,
        nbytes=1e6,
        compute_rate=5e14,
        mem_bw=1e12,
    )


def test_host_overhead_table_and_default():
    assert host_overhead_us("zeInit") == 120.0
    assert host_overhead_us("sycl::malloc_host") == 55.0
    assert host_overhead_us("MPI_Isend") == 5.0
    assert host_overhead_us("no-such-api") == 2.0


def test_record_defaults_host_time_from_table():
    p = ApiProfiler()
    call = p.record("zeInit", "ze")
    assert call.host_us == 120.0
    blocked = p.record("MPI_Wait", "mpi", host_us=321.5)
    assert blocked.host_us == 321.5


def test_record_rejects_unknown_layer():
    p = ApiProfiler()
    with pytest.raises(ValueError, match="unknown profiler layer"):
        p.record("zeInit", "cuda")
    with pytest.raises(ValueError):
        p.register("opencl", "clEnqueueNDRangeKernel")


def test_registration_is_idempotent_and_auto_on_record():
    p = ApiProfiler()
    p.register("ze", "zeInit", "zeDeviceGet")
    p.register("ze", "zeInit")
    p.record("sycl::free", "sycl")
    assert p.points("ze") == ("zeDeviceGet", "zeInit")
    assert p.points("sycl") == ("sycl::free",)
    assert p.layers() == ("sycl", "ze")
    assert set(LAYERS) == {"ze", "sycl", "mpi"}


def test_aggregation_is_insertion_order_independent():
    records = [
        ("zeCommandListAppendLaunchKernel", "ze", {"op": "k1"}),
        ("sycl::malloc_device", "sycl", {}),
        ("MPI_Isend", "mpi", {"bytes_moved": 4096.0}),
        ("zeCommandQueueSynchronize", "ze", {}),
    ]
    forward, backward = ApiProfiler(), ApiProfiler()
    for name, layer, kw in records:
        forward.record(name, layer, **kw)
    for name, layer, kw in reversed(records):
        backward.record(name, layer, **kw)
    assert forward.calls() == backward.calls()
    assert forward.to_doc() == backward.to_doc()
    assert forward.digest() == backward.digest()


def test_threaded_recording_matches_serial_digest():
    def fill(p: ApiProfiler, threads: int):
        def work(rank: int):
            for i in range(50):
                p.record(
                    "MPI_Isend",
                    "mpi",
                    bytes_moved=float(1024 * (i % 7)),
                    op=f"rank {rank}",
                )

        if threads == 1:
            for rank in range(4):
                work(rank)
        else:
            ts = [
                threading.Thread(target=work, args=(r,)) for r in range(4)
            ]
            for t in ts:
                t.start()
            for t in ts:
                t.join()

    serial, threaded = ApiProfiler(), ApiProfiler()
    fill(serial, threads=1)
    fill(threaded, threads=4)
    assert serial.digest() == threaded.digest()


def test_host_device_traffic_tables():
    p = ApiProfiler()
    p.record("zeCommandListAppendMemoryCopy", "ze",
             device_us=10.0, bytes_moved=100.0, op="memcpy[h->d]")
    p.record("zeCommandListAppendMemoryCopy", "ze",
             device_us=30.0, bytes_moved=300.0, op="memcpy[h->d]")
    p.record("zeCommandQueueSynchronize", "ze")
    host = p.host_table()["ze"]
    assert host["zeCommandListAppendMemoryCopy"]["calls"] == 2
    assert host["zeCommandQueueSynchronize"]["total"] == host_overhead_us(
        "zeCommandQueueSynchronize"
    )
    device = p.device_table()
    # Host-only calls never show in the device/traffic sections.
    assert set(device) == {"memcpy[h->d]"}
    assert device["memcpy[h->d]"] == {
        "calls": 2, "total": 40.0, "min": 10.0, "max": 30.0,
    }
    assert p.traffic_table()["memcpy[h->d]"]["total"] == 400.0
    assert p.traffic_total_bytes() == 400.0
    assert p.device_total_us() == 40.0


def test_stream_clock_monotonicity_check():
    p = ApiProfiler()
    s = "aurora:0.0"
    p.record("zeCommandQueueSynchronize", "ze", stream=s, clock_us=10.0)
    p.record("zeCommandQueueSynchronize", "ze", stream=s, clock_us=10.0)
    p.record("zeCommandQueueSynchronize", "ze", stream=s, clock_us=25.0)
    assert p.clock_violations == []
    p.record("zeCommandQueueSynchronize", "ze", stream=s, clock_us=5.0)
    assert len(p.clock_violations) == 1
    assert "clock went backwards" in p.clock_violations[0]
    # Calls with no stream/clock never participate in the check.
    p.record("zeInit", "ze")
    assert len(p.clock_violations) == 1


def test_stream_serial_suffix_for_additional_queues():
    p = ApiProfiler()
    assert p.stream("aurora:0.0") == "aurora:0.0"
    assert p.stream("aurora:0.0") == "aurora:0.0/q1"
    assert p.stream("aurora:0.0") == "aurora:0.0/q2"
    assert p.stream("dawn:1.1") == "dawn:1.1"


def test_kernel_attribution_compute_bound():
    p = ApiProfiler()
    p.kernel(_sample())
    p.kernel(_sample())
    rows = p.kernel_attribution()
    assert len(rows) == 1
    row = rows[0]
    assert row["kernel"] == "axpy"
    assert row["calls"] == 2
    assert row["bound"] == "compute"
    # model = max(compute, memory) + latency, summed over both calls.
    assert row["model_us"] == pytest.approx(2 * (1.9e-3 + 1e-5) * 1e6)
    assert row["model_pct"] == pytest.approx(
        100.0 * (1.9e-3 + 1e-5) / 2.0e-3
    )
    assert row["peak_pct"] == pytest.approx(100.0 * 1.9e-3 / 2.0e-3)
    assert row["intensity"] == pytest.approx(1e9 / 1e6)
    assert row["achieved_rate"] == pytest.approx(2e9 / 4.0e-3)


def test_kernel_attribution_sorts_by_device_time_desc():
    p = ApiProfiler()
    p.kernel(_sample(name="small", achieved=1e-4))
    p.kernel(_sample(name="big", achieved=5e-3))
    assert [r["kernel"] for r in p.kernel_attribution()] == ["big", "small"]


def test_memory_bound_classification():
    p = ApiProfiler()
    p.kernel(_sample(name="triad", compute=1e-4, memory=1.8e-3))
    assert p.kernel_attribution()[0]["bound"] == "memory"


def test_digest_tracks_content():
    a, b = ApiProfiler(), ApiProfiler()
    a.record("zeInit", "ze")
    b.record("zeInit", "ze")
    assert a.digest() == b.digest()
    b.record("zeDeviceGet", "ze")
    assert a.digest() != b.digest()


def test_summary_shape():
    p = ApiProfiler()
    p.record("zeInit", "ze")
    p.kernel(_sample())
    s = p.summary()
    assert s["api_calls"] == 1
    assert s["kernels"] == 1
    assert s["digest"] == p.digest()
    assert s["host_us"] == 120.0


def test_order_key_is_total():
    a = ApiCall(layer="ze", name="zeInit", host_us=1.0)
    b = ApiCall(layer="ze", name="zeInit", host_us=2.0)
    assert a.order_key() != b.order_key()
