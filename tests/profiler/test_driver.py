"""The profile driver: staged runs, entries, determinism."""

import pytest

from repro.errors import UnknownBenchmarkError
from repro.faults import ExecutionContext
from repro.profiler.driver import (
    PROFILE_BENCHES,
    SMOKE_SYSTEMS,
    profile_bench,
    run_bench,
)
from repro.telemetry import Telemetry


def test_run_bench_rejects_unknown():
    ctx = ExecutionContext(None, 0, telemetry=Telemetry())
    with pytest.raises(UnknownBenchmarkError, match="unknown benchmark"):
        run_bench(ctx, "hpl", "aurora")


def test_smoke_set_definition():
    assert set(PROFILE_BENCHES) == {"gemm", "triad", "p2p"}
    assert set(SMOKE_SYSTEMS) == {"aurora", "dawn"}


@pytest.mark.parametrize("bench", PROFILE_BENCHES)
def test_profile_bench_records_all_layers(bench):
    run = profile_bench(bench, "aurora")
    p = run.profiler
    assert p.n_calls > 0
    assert p.clock_violations == []
    layers = p.layers()
    assert "ze" in layers and "sycl" in layers
    if bench == "p2p":
        assert "MPI_Isend" in p.points("mpi")
    # The staging phase always moves some explicit traffic except p2p,
    # whose traffic flows through MPI messages instead.
    if bench != "p2p":
        assert p.traffic_total_bytes() > 0


def test_profile_bench_is_deterministic():
    a = profile_bench("triad", "dawn")
    b = profile_bench("triad", "dawn")
    assert a.profiler.digest() == b.profiler.digest()
    assert a.report() == b.report()
    assert a.entry() == b.entry()


def test_entry_carries_baseline_fields():
    run = profile_bench("gemm", "aurora")
    entry = run.entry()
    for key in (
        "bench", "system", "fom", "fom_unit", "api_calls",
        "host_us", "device_us", "traffic_bytes", "kernels",
        "profile_digest",
    ):
        assert key in entry, key
    assert entry["bench"] == "gemm"
    assert entry["system"] == "aurora"
    assert entry["fom"] > 0
    assert entry["kernels"] >= 1
    assert entry["profile_digest"] == run.profiler.digest()


def test_gemm_attribution_is_compute_bound():
    run = profile_bench("gemm", "aurora")
    rows = run.profiler.kernel_attribution()
    top = rows[0]
    assert top["bound"] == "compute"
    assert 50.0 < top["model_pct"] <= 101.0
    assert top["intensity"] > 100.0


def test_report_title_and_sections():
    run = profile_bench("p2p", "aurora")
    text = run.report()
    assert text.startswith("== p2p on aurora ")
    assert "BACKEND_MPI | Host profiling" in text
    assert "MPI_Wait" in text
