"""iprof-style rendering of profile aggregates."""

from repro.profiler.core import ApiProfiler, KernelSample
from repro.profiler.report import format_bytes, format_time_us, render_profile


def test_format_time_units():
    assert format_time_us(2.5e6) == "2.50s"
    assert format_time_us(1500.0) == "1.50ms"
    assert format_time_us(12.34) == "12.34us"
    assert format_time_us(0.98) == "980ns"


def test_format_byte_units():
    assert format_bytes(3 * 1024**3) == "3.00GB"
    assert format_bytes(2 * 1024**2) == "2.00MB"
    assert format_bytes(1536) == "1.50kB"
    assert format_bytes(17) == "17B"


def _profiler() -> ApiProfiler:
    p = ApiProfiler()
    p.record("zeInit", "ze")
    p.record("zeCommandListAppendLaunchKernel", "ze", op="axpy")
    p.record(
        "zeCommandQueueExecuteCommandLists",
        "ze",
        device_us=2000.0,
        op="axpy",
    )
    p.record(
        "zeCommandListAppendMemoryCopy",
        "ze",
        device_us=100.0,
        bytes_moved=4096.0,
        op="memcpy[host->device]",
    )
    p.record("sycl::malloc_device", "sycl")
    p.record("MPI_Barrier", "mpi")
    p.kernel(
        KernelSample(
            name="axpy",
            system="aurora",
            n_stacks=1,
            achieved_s=2.1e-3,
            compute_s=2.0e-3,
            memory_s=1.0e-3,
            latency_s=0.0,
            flops=1e9,
            nbytes=1e6,
            compute_rate=5e14,
            mem_bw=1e12,
        )
    )
    return p


def test_render_sections_and_summary_line():
    text = render_profile(_profiler(), title="axpy on aurora")
    assert text.startswith("== axpy on aurora ")
    for section in (
        "BACKEND_ZE | Host profiling",
        "BACKEND_SYCL | Host profiling",
        "BACKEND_MPI | Host profiling",
        "Device profiling",
        "Explicit memory traffic",
        "Kernel roofline attribution",
    ):
        assert section in text
    # Every table carries the iprof column header and a Total row.
    assert text.count("Time(%)") >= 4
    assert text.count("Total") >= 5
    assert "memcpy[host->device]" in text
    assert "4.00kB" in text
    assert "compute" in text
    assert text.rstrip().endswith("]")  # ... [digest abcdef123456]
    assert f"[digest {_profiler().digest()[:12]}]" in text
    assert text.endswith("\n")


def test_render_sorts_host_rows_by_total_descending():
    text = render_profile(_profiler())
    ze = text.split("BACKEND_ZE")[1].split("BACKEND_SYCL")[0]
    rows = [name for name in
            (line.split("|")[0].strip() for line in ze.splitlines()
             if "|" in line and "Name" not in line and "Total" not in line)
            if name]
    # zeInit (120us) outranks execute (13us), append (9+7), sync.
    assert rows[0] == "zeInit"


def test_render_empty_profile():
    text = render_profile(ApiProfiler())
    assert "(no calls recorded)" in text
    assert "(no kernels profiled)" in text
    assert "0 API call(s)" in text


def test_render_is_deterministic():
    assert render_profile(_profiler()) == render_profile(_profiler())
