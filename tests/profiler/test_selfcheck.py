"""The profiler self-check wired into ``pvc-bench health``."""

from repro.profiler.selfcheck import profiler_selfcheck


def test_selfcheck_passes_end_to_end():
    checks = profiler_selfcheck()
    assert checks, "self-check produced no results"
    failed = [c for c in checks if not c.passed]
    assert not failed, [f"{c.name}: {c.detail}" for c in failed]


def test_selfcheck_covers_the_contract():
    names = {c.name for c in profiler_selfcheck()}
    for expected in (
        "profiler layers registered",
        "ze interception points registered",
        "sycl interception points registered",
        "mpi interception points registered",
        "stream clocks monotonic",
        "kernel attribution joins the roofline",
        "profile digest stable",
    ):
        assert expected in names, f"missing check {expected!r}"


def test_selfcheck_is_deterministic():
    first = [(c.name, c.passed, c.detail) for c in profiler_selfcheck()]
    second = [(c.name, c.passed, c.detail) for c in profiler_selfcheck()]
    assert first == second
