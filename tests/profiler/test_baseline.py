"""Baseline snapshots and the tolerance-based regression comparator."""

import pytest

from repro.errors import ConfigurationError
from repro.profiler.baseline import (
    BASELINE_SCHEMA,
    DEFAULT_TOLERANCE,
    build_snapshot,
    compare_snapshots,
    load_baseline,
    write_baseline,
)


def _entry(bench="gemm", system="aurora", fom=100.0, device_us=50.0):
    return {
        "bench": bench,
        "system": system,
        "fom": fom,
        "fom_unit": "Flop/s",
        "device_us": device_us,
    }


def test_build_snapshot_keys_and_digest():
    doc = build_snapshot([_entry(), _entry(bench="triad")])
    assert doc["schema"] == BASELINE_SCHEMA
    assert doc["tolerance"] == DEFAULT_TOLERANCE
    assert sorted(doc["entries"]) == ["gemm@aurora", "triad@aurora"]
    assert len(doc["digest"]) == 64
    # Entry order does not change the document.
    again = build_snapshot([_entry(bench="triad"), _entry()])
    assert again == doc


def test_build_snapshot_rejects_bad_entries():
    with pytest.raises(ConfigurationError, match="missing 'system'"):
        build_snapshot([{"bench": "gemm"}])
    with pytest.raises(ConfigurationError, match="duplicate"):
        build_snapshot([_entry(), _entry()])


def test_write_load_roundtrip(tmp_path):
    doc = build_snapshot([_entry()])
    path = tmp_path / "BENCH_0.json"
    write_baseline(path, doc)
    body = path.read_text()
    assert body.endswith("\n")
    assert load_baseline(path) == doc
    # Writing is deterministic byte-for-byte.
    write_baseline(tmp_path / "again.json", doc)
    assert (tmp_path / "again.json").read_text() == body


def test_load_baseline_errors(tmp_path):
    with pytest.raises(ConfigurationError, match="not found"):
        load_baseline(tmp_path / "missing.json")
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(ConfigurationError, match="not valid JSON"):
        load_baseline(bad)
    wrong = tmp_path / "wrong.json"
    wrong.write_text('{"schema": "other/v9"}')
    with pytest.raises(ConfigurationError, match="unsupported schema"):
        load_baseline(wrong)


def test_compare_within_tolerance_is_ok():
    base = build_snapshot([_entry(fom=100.0, device_us=50.0)])
    cur = build_snapshot([_entry(fom=98.0, device_us=51.0)])
    cmp = compare_snapshots(base, cur)
    assert not cmp.regressed
    assert {d.verdict for d in cmp.deltas} == {"ok"}
    assert "verdict: OK" in cmp.render()


def test_fom_drop_regresses():
    base = build_snapshot([_entry(fom=100.0)])
    cur = build_snapshot([_entry(fom=90.0)])  # -10% < -5% tolerance
    cmp = compare_snapshots(base, cur)
    assert cmp.regressed
    (bad,) = cmp.regressions
    assert (bad.key, bad.metric) == ("gemm@aurora", "fom")
    assert bad.ratio == pytest.approx(0.9)
    assert "verdict: REGRESSED" in cmp.render()


def test_device_time_growth_regresses_and_drop_improves():
    base = build_snapshot([_entry(device_us=50.0)])
    slower = build_snapshot([_entry(device_us=60.0)])
    assert compare_snapshots(base, slower).regressed
    faster = build_snapshot([_entry(device_us=40.0)])
    cmp = compare_snapshots(base, faster)
    assert not cmp.regressed
    assert any(d.verdict == "improved" for d in cmp.deltas)


def test_fom_gain_is_improvement_not_regression():
    base = build_snapshot([_entry(fom=100.0)])
    cur = build_snapshot([_entry(fom=120.0)])
    cmp = compare_snapshots(base, cur)
    assert not cmp.regressed
    assert any(
        d.verdict == "improved" and d.metric == "fom" for d in cmp.deltas
    )


def test_missing_and_new_entries_do_not_fail():
    base = build_snapshot([_entry(), _entry(bench="triad")])
    cur = build_snapshot([_entry(), _entry(bench="p2p")])
    cmp = compare_snapshots(base, cur)
    assert not cmp.regressed
    verdicts = {(d.key, d.verdict) for d in cmp.deltas if d.metric == "-"}
    assert ("triad@aurora", "missing") in verdicts
    assert ("p2p@aurora", "new") in verdicts
    text = cmp.render()
    assert "missing" in text and "new" in text


def test_tolerance_override():
    base = build_snapshot([_entry(fom=100.0)])
    cur = build_snapshot([_entry(fom=90.0)])
    assert not compare_snapshots(base, cur, tolerance=0.15).regressed
    assert compare_snapshots(base, cur, tolerance=0.01).regressed
    with pytest.raises(ConfigurationError, match="non-negative"):
        compare_snapshots(base, cur, tolerance=-0.1)
