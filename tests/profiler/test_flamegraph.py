"""Collapsed-stack export: nesting, self time, determinism."""

from repro.profiler.flamegraph import collapsed_stacks, export_collapsed
from repro.telemetry.trace import TraceEvent, Tracer


def _tracer(events) -> Tracer:
    tracer = Tracer()
    for ev in events:
        tracer.lane(ev.lane)
        tracer.record(ev)
    return tracer


def test_nesting_and_self_time():
    events = [
        TraceEvent("outer", "run", 0.0, 10.0, category="span"),
        TraceEvent("inner", "run", 2.0, 4.0),
        TraceEvent("leaf", "run", 3.0, 1.0),
    ]
    lines = collapsed_stacks(_tracer(events))
    assert lines == [
        "run;outer 6000",           # 10 - 4 (inner) in ns
        "run;outer;inner 3000",     # 4 - 1 (leaf)
        "run;outer;inner;leaf 1000",
    ]


def test_siblings_merge_by_path():
    events = [
        TraceEvent("rep", "run", 0.0, 3.0),
        TraceEvent("rep", "run", 5.0, 4.0),
    ]
    assert collapsed_stacks(_tracer(events)) == ["run;rep 7000"]


def test_insertion_order_independent():
    events = [
        TraceEvent("outer", "run", 0.0, 10.0, category="span"),
        TraceEvent("inner", "run", 2.0, 4.0),
        TraceEvent("k", "gpu 0.0", 1.0, 2.0),
    ]
    forward = collapsed_stacks(_tracer(events))
    backward = collapsed_stacks(_tracer(list(reversed(events))))
    assert forward == backward


def test_instants_and_zero_self_time_skipped():
    events = [
        TraceEvent("wrap", "run", 0.0, 5.0, category="span"),
        TraceEvent("all", "run", 0.0, 5.0),  # consumes the whole parent
        TraceEvent("fault", "run", 1.0, phase="i"),
    ]
    lines = collapsed_stacks(_tracer(events))
    # wrap has zero self time and the instant is not a frame.
    assert lines == ["run;wrap;all 5000"]


def test_semicolons_scrubbed_from_frames():
    events = [TraceEvent("a;b", "lane;1", 0.0, 1.0)]
    assert collapsed_stacks(_tracer(events)) == ["lane,1;a,b 1000"]


def test_export_body_newline_terminated():
    assert export_collapsed(Tracer()) == ""
    body = export_collapsed(
        _tracer([TraceEvent("rep", "run", 0.0, 1.0)])
    )
    assert body == "run;rep 1000\n"


def test_multiple_lanes_sort_lexically():
    events = [
        TraceEvent("k", "gpu 0.0", 0.0, 1.0),
        TraceEvent("rep", "run", 0.0, 1.0),
        TraceEvent("send", "rank 0", 0.0, 1.0),
    ]
    lines = collapsed_stacks(_tracer(events))
    assert lines == sorted(lines)
    assert len(lines) == 3
