"""Chrome-trace export and the run-directory metrics registry."""

import json
import os

import pytest

from repro.campaign.orchestrator import Orchestrator
from repro.campaign.spec import get_spec
from repro.errors import CampaignError
from repro.obs.export import export_chrome, export_json, run_registry


@pytest.fixture(scope="module")
def rundir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("export") / "run"
    Orchestrator(directory, spec=get_spec("smoke"), jobs=2).run()
    return directory


def _thread_names(doc):
    return [
        e["args"]["name"]
        for e in doc["traceEvents"]
        if e["name"] == "thread_name"
    ]


class TestChromeExport:
    def test_parallel_run_gets_worker_lanes(self, rundir):
        doc = export_chrome(rundir)
        assert _thread_names(doc) == ["worker-0", "worker-1"]
        spans = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert {e["name"] for e in spans} == {
            u.id for u in get_spec("smoke").execution_order()
        }
        assert all(e["dur"] >= 0 and e["ts"] >= 0 for e in spans)
        assert all(e["args"]["status"] == "ok" for e in spans)

    def test_export_json_is_loadable_and_deterministic(self, rundir):
        text = export_json(rundir)
        assert json.loads(text) == export_chrome(rundir)
        assert text == export_json(rundir)

    def test_deterministic_only_directory_degrades_to_commit_lane(
        self, rundir, tmp_path
    ):
        clone = tmp_path / "det-only"
        clone.mkdir()
        for name in os.listdir(rundir):
            if name == "events.ndjson":
                (clone / name).write_bytes((rundir / name).read_bytes())
        doc = export_chrome(clone)
        assert _thread_names(doc) == ["commit"]
        spans = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert {e["name"] for e in spans} == {
            u.id for u in get_spec("smoke").execution_order()
        }
        # Spans sit on the simulated clock, ending at the stream total.
        ends = [e["ts"] + e["dur"] for e in spans]
        assert max(ends) == pytest.approx(1121252.44, abs=1.0)

    def test_empty_directory_is_an_error(self, tmp_path):
        with pytest.raises(CampaignError):
            export_chrome(tmp_path)


class TestRunRegistry:
    def test_counters_and_exposition(self, rundir):
        registry = run_registry(rundir)
        n_units = len(get_spec("smoke"))
        assert registry.value("campaign.units", status="OK") == n_units
        assert registry.value("campaign.complete") == 1.0
        text = registry.to_openmetrics()
        assert "# TYPE campaign_units counter" in text
        assert f'campaign_units_total{{status="OK"}} {n_units}' in text
        assert "# TYPE unit_simulated_us histogram" in text
        assert f"unit_simulated_us_count {n_units}" in text
        assert text.endswith("# EOF\n")

    def test_registry_tracks_supervision_from_live_stream(self, tmp_path):
        from repro.faults.process import build_worker_plan

        spec = get_spec("smoke")
        plan = build_worker_plan(
            "worker-poison", 0, [u.id for u in spec.execution_order()]
        )
        directory = tmp_path / "run"
        Orchestrator(directory, spec=spec, jobs=2, worker_plan=plan).run()
        registry = run_registry(directory)
        assert registry.value("worker.respawns") >= 2
        victim = next(iter(plan.kills))
        assert registry.value("unit.quarantined", unit=victim) == 1
