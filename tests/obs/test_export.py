"""Chrome-trace export and the run-directory metrics registry."""

import json
import os

import pytest

from repro.campaign.orchestrator import Orchestrator
from repro.campaign.spec import get_spec
from repro.errors import CampaignError
from repro.obs.export import export_chrome, export_json, run_registry


@pytest.fixture(scope="module")
def rundir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("export") / "run"
    Orchestrator(directory, spec=get_spec("smoke"), jobs=2).run()
    return directory


def _thread_names(doc):
    return [
        e["args"]["name"]
        for e in doc["traceEvents"]
        if e["name"] == "thread_name"
    ]


class TestChromeExport:
    def test_parallel_run_gets_worker_lanes(self, rundir):
        doc = export_chrome(rundir)
        assert _thread_names(doc) == ["worker-0", "worker-1"]
        spans = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert {e["name"] for e in spans} == {
            u.id for u in get_spec("smoke").execution_order()
        }
        assert all(e["dur"] >= 0 and e["ts"] >= 0 for e in spans)
        assert all(e["args"]["status"] == "ok" for e in spans)

    def test_export_json_is_loadable_and_deterministic(self, rundir):
        text = export_json(rundir)
        assert json.loads(text) == export_chrome(rundir)
        assert text == export_json(rundir)

    def test_deterministic_only_directory_degrades_to_commit_lane(
        self, rundir, tmp_path
    ):
        clone = tmp_path / "det-only"
        clone.mkdir()
        for name in os.listdir(rundir):
            if name == "events.ndjson":
                (clone / name).write_bytes((rundir / name).read_bytes())
        doc = export_chrome(clone)
        assert _thread_names(doc) == ["commit"]
        spans = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert {e["name"] for e in spans} == {
            u.id for u in get_spec("smoke").execution_order()
        }
        # Spans sit on the simulated clock, ending at the stream total.
        ends = [e["ts"] + e["dur"] for e in spans]
        assert max(ends) == pytest.approx(1121252.44, abs=1.0)

    def test_empty_directory_is_an_error(self, tmp_path):
        with pytest.raises(CampaignError):
            export_chrome(tmp_path)


class TestRunRegistry:
    def test_counters_and_exposition(self, rundir):
        registry = run_registry(rundir)
        n_units = len(get_spec("smoke"))
        assert registry.value("campaign.units", status="OK") == n_units
        assert registry.value("campaign.complete") == 1.0
        text = registry.to_openmetrics()
        assert "# TYPE campaign_units counter" in text
        assert f'campaign_units_total{{status="OK"}} {n_units}' in text
        assert "# TYPE unit_simulated_us histogram" in text
        assert f"unit_simulated_us_count {n_units}" in text
        assert text.endswith("# EOF\n")

    def test_registry_tracks_supervision_from_live_stream(self, tmp_path):
        from repro.faults.process import build_worker_plan

        spec = get_spec("smoke")
        plan = build_worker_plan(
            "worker-poison", 0, [u.id for u in spec.execution_order()]
        )
        directory = tmp_path / "run"
        Orchestrator(directory, spec=spec, jobs=2, worker_plan=plan).run()
        registry = run_registry(directory)
        assert registry.value("worker.respawns") >= 2
        victim = next(iter(plan.kills))
        assert registry.value("unit.quarantined", unit=victim) == 1


class TestServiceExport:
    @pytest.fixture(scope="class")
    def service_dir(self, tmp_path_factory):
        from tests.service.conftest import post_request

        from repro.service.daemon import BenchDaemon

        directory = tmp_path_factory.mktemp("svc") / "state"
        daemon = BenchDaemon(directory, workers=2)
        daemon.start()
        try:
            post_request(
                daemon.url,
                {"request_id": "e-1", "command": "table4",
                 "tenant": "alpha"},
            )
            post_request(
                daemon.url,
                {"request_id": "e-2", "kind": "campaign", "spec": "smoke",
                 "jobs": 2, "tenant": "beta"},
                timeout=300.0,
            )
        finally:
            daemon.stop(timeout_s=30.0)
        return directory

    def test_autodetects_service_directory(self, service_dir):
        from repro.obs.export import export_service_chrome

        assert export_chrome(service_dir) == export_service_chrome(
            service_dir
        )

    def test_merged_trace_has_request_and_worker_lanes(self, service_dir):
        doc = export_chrome(service_dir)
        names = _thread_names(doc)
        assert "service" in names
        assert "alpha" in names and "beta" in names
        assert any(n.endswith("/worker-0") for n in names)
        assert any(n.endswith("/worker-1") for n in names)

    def test_request_and_campaign_unit_share_trace_id(self, service_dir):
        """The acceptance drill: one trace id links the HTTP request
        span to the campaign worker's unit spans."""
        doc = export_chrome(service_dir)
        request_tids = {
            e["args"]["trace_id"]
            for e in doc["traceEvents"]
            if e.get("cat") == "request"
        }
        unit_tids = {
            e["args"]["trace_id"]
            for e in doc["traceEvents"]
            if e.get("cat") == "unit" and "trace_id" in e.get("args", {})
        }
        assert unit_tids, "campaign unit spans lost their trace ids"
        assert unit_tids <= request_tids

    def test_phase_spans_nest_inside_request_span(self, service_dir):
        doc = export_chrome(service_dir)
        requests = {
            e["name"]: e
            for e in doc["traceEvents"]
            if e.get("cat") == "request"
        }
        phases = [
            e for e in doc["traceEvents"] if e.get("cat") == "phase"
        ]
        assert phases
        for phase in phases:
            parent = requests[phase["args"]["request"]]
            assert phase["ts"] >= parent["ts"]
            # The serialize phase is timed after the whole-request
            # latency snapshot, so the tail may overshoot the parent
            # span by that sliver; everything else nests exactly.
            assert phase["ts"] + phase["dur"] <= (
                parent["ts"] + parent["dur"] + 50_000
            )

    def test_export_is_deterministic_for_same_bytes(self, service_dir):
        assert export_json(service_dir) == export_json(service_dir)


class TestSweepExport:
    @pytest.fixture(scope="class")
    def sweepdir(self, tmp_path_factory):
        from repro.sweep.runner import run_sweep
        from repro.sweep.spec import get_sweep_spec

        directory = tmp_path_factory.mktemp("export") / "sweep"
        run_sweep(
            get_sweep_spec("smoke"),
            out_dir=directory,
            chunk_points=32,
            verify=4,
        )
        return directory

    def test_sweep_dir_is_auto_detected(self, sweepdir):
        from repro.obs.export import export_sweep_chrome

        assert export_chrome(sweepdir) == export_sweep_chrome(sweepdir)

    def test_chunk_spans_tile_the_measured_walls(self, sweepdir):
        doc = export_chrome(sweepdir)
        assert _thread_names(doc) == ["sweep"]
        spans = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        # 72 points in 32-point chunks: 3 chunks, laid end to end.
        assert [e["name"] for e in spans] == [
            "chunk-0", "chunk-1", "chunk-2"
        ]
        assert [e["args"]["points"] for e in spans] == [32, 32, 8]
        assert all(e["args"]["system"] == "aurora" for e in spans)
        cursor = 0.0
        for span in spans:
            assert span["ts"] == pytest.approx(cursor)
            cursor += span["dur"]

    def test_best_point_and_summary_instants(self, sweepdir):
        doc = export_chrome(sweepdir)
        instants = {
            e["name"]: e["args"]
            for e in doc["traceEvents"]
            if e.get("ph") == "i"
        }
        best = instants["best-point"]
        assert best["system"] == "aurora"
        assert best["gflops"] > 0
        assert {"param_tile_m", "param_tile_n", "param_tile_k"} <= set(best)
        summary = instants["sweep-summary"]
        assert summary["spec"] == "smoke"
        assert summary["points"] == 72
        assert summary["verified_sample"] == 4
        assert summary["batch_speedup"] > 0

    def test_unreadable_summary_is_an_error(self, tmp_path):
        from repro.obs.export import export_sweep_chrome

        (tmp_path / "sweep.json").write_text("{broken")
        with pytest.raises(CampaignError, match="no readable sweep summary"):
            export_sweep_chrome(tmp_path)
