"""OpenMetrics HTTP exporter: stdlib server over a run directory."""

import urllib.error
import urllib.request

import pytest

from repro.campaign.orchestrator import Orchestrator
from repro.campaign.spec import get_spec
from repro.obs.serve import OPENMETRICS_CONTENT_TYPE, ObsServer


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    rundir = tmp_path_factory.mktemp("serve") / "run"
    Orchestrator(rundir, spec=get_spec("smoke"), jobs=2).run()
    srv = ObsServer(rundir, port=0)
    srv.serve_background()
    yield srv
    srv.shutdown()
    srv.server_close()


def _get(server, path):
    return urllib.request.urlopen(server.url + path, timeout=5)


class TestMetricsEndpoint:
    def test_exposition_parses_as_openmetrics(self, server):
        resp = _get(server, "/metrics")
        assert resp.status == 200
        assert resp.headers["Content-Type"] == OPENMETRICS_CONTENT_TYPE
        text = resp.read().decode("utf-8")
        assert text.endswith("# EOF\n")
        assert "# TYPE campaign_units counter" in text
        assert "# HELP campaign_units" in text
        assert 'campaign_units_total{status="OK"}' in text
        assert "# TYPE unit_simulated_us histogram" in text
        assert 'unit_simulated_us_bucket{le="+Inf"}' in text
        assert "unit_simulated_us_sum" in text
        assert "unit_simulated_us_count" in text
        assert "campaign_complete 1" in text

    def test_snapshot_reflects_the_run_directory_each_scrape(self, server):
        # Two scrapes of an immutable run directory agree byte-for-byte.
        first = _get(server, "/metrics").read()
        second = _get(server, "/metrics").read()
        assert first == second


class TestOtherRoutes:
    def test_healthz(self, server):
        resp = _get(server, "/healthz")
        assert resp.status == 200
        assert resp.read() == b"ok\n"

    def test_index_advertises_routes(self, server):
        body = _get(server, "/").read().decode("utf-8")
        assert "/metrics" in body and "/healthz" in body

    def test_unknown_route_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc:
            _get(server, "/nope")
        assert exc.value.code == 404
