"""Watch board: golden snapshots over real (faulted) run directories.

No live process anywhere: every scenario drives the orchestrator to a
terminal (or interrupted) state first, then the renderer is pointed at
the bytes on disk with a pinned ``now`` — the board must tell the
truth about crashed, quarantined and degraded runs from the streams
alone.
"""

import io

import pytest

from repro.campaign.orchestrator import Orchestrator
from repro.campaign.spec import get_spec
from repro.errors import CampaignError
from repro.faults.process import build_worker_plan
from repro.faults.scenarios import build_campaign_plan
from repro.obs.watch import (
    follow,
    load_snapshot,
    render,
    watch_main,
    worker_lanes,
)


def _run(directory, *, jobs=1, campaign_plan=None, worker_plan=None, **kw):
    orch = Orchestrator(
        directory,
        spec=get_spec("smoke"),
        jobs=jobs,
        campaign_plan=campaign_plan,
        worker_plan=worker_plan,
        **kw,
    )
    orch.run()
    return orch


class TestCompletedRun:
    def test_snapshot_and_board(self, tmp_path):
        _run(tmp_path / "run", jobs=2)
        snap = load_snapshot(tmp_path / "run")
        assert snap.complete and snap.exit_code == 0
        assert snap.done == snap.total == len(get_spec("smoke"))
        assert snap.jobs == 2 and snap.pid is not None
        assert len(snap.lanes) == 2
        board = render(snap, now=2_000_000_000.0)
        assert "COMPLETE (exit 0)" in board
        assert "campaign-worker-0" in board and "campaign-worker-1" in board
        assert f"{snap.total} OK" in board

    def test_serial_run_gets_a_synthetic_lane(self, tmp_path):
        _run(tmp_path / "run", jobs=1)
        snap = load_snapshot(tmp_path / "run")
        assert [ln.worker for ln in snap.lanes] == ["serial"]
        assert snap.lanes[0].state == "IDLE"

    def test_render_is_deterministic_for_fixed_now(self, tmp_path):
        _run(tmp_path / "run", jobs=2)
        snap = load_snapshot(tmp_path / "run")
        assert render(snap, now=1.0e9) == render(snap, now=1.0e9)

    def test_missing_journal_raises(self, tmp_path):
        with pytest.raises(CampaignError):
            load_snapshot(tmp_path)


class TestCrashedRun:
    def test_board_shows_resumable_partial_progress(self, tmp_path):
        plan = build_campaign_plan("crash-midrun", 0, len(get_spec("smoke")))
        _run(tmp_path / "run", campaign_plan=plan)
        snap = load_snapshot(tmp_path / "run")
        assert not snap.complete
        assert 0 < snap.done < snap.total
        board = render(snap, now=2_000_000_000.0)
        assert "RUNNING" in board or "INTERRUPTED" in board
        assert "campaign resume" in board or "watching" in board
        assert f"{snap.done}/{snap.total} unit(s)" in board

    def test_deadline_interrupt_reads_as_resumable(self, tmp_path):
        _run(tmp_path / "run", deadline_s=0.5)
        snap = load_snapshot(tmp_path / "run")
        assert snap.interrupted and not snap.complete
        board = render(snap, now=2_000_000_000.0)
        assert "INTERRUPTED (resumable)" in board
        assert "campaign resume" in board


class TestQuarantinedRun:
    def test_board_names_the_poison_unit(self, tmp_path):
        spec = get_spec("smoke")
        plan = build_worker_plan(
            "worker-poison", 0, [u.id for u in spec.execution_order()]
        )
        victim = next(iter(plan.kills))
        _run(tmp_path / "run", jobs=2, worker_plan=plan)
        snap = load_snapshot(tmp_path / "run")
        assert snap.quarantined, "worker-poison must quarantine a unit"
        board = render(snap, now=2_000_000_000.0)
        assert "QUARANTINED" in board
        assert "worker exit codes" in board
        assert "quarantined after repeated worker crashes" in board
        assert victim in board


class TestDegradedRun:
    def test_board_flags_pool_degradation(self, tmp_path):
        # Poison kills the victim's first 3 attempts; with a zero
        # respawn budget both workers die on it and the pool degrades
        # to the in-process drain (which poison deliberately spares).
        spec = get_spec("smoke")
        plan = build_worker_plan(
            "worker-poison", 0, [u.id for u in spec.execution_order()]
        )
        _run(
            tmp_path / "run", jobs=2, worker_plan=plan, max_respawns=0
        )
        snap = load_snapshot(tmp_path / "run")
        assert snap.degraded
        assert snap.complete  # degraded drain still finishes the DAG
        board = render(snap, now=2_000_000_000.0)
        assert "POOL DEGRADED" in board
        dead = [ln for ln in snap.lanes if ln.state == "DEAD"]
        assert dead and any("DEAD" in line for line in board.splitlines())


class TestWorkerLanes:
    def test_respawn_history_is_visible(self):
        live = [
            {"v": 1, "type": "run-live", "ts": 0.0, "jobs": 2, "pid": 1, "units": 4},
            {"v": 1, "type": "worker-spawn", "ts": 0.1, "worker": "campaign-worker-0", "index": 0},
            {"v": 1, "type": "worker-spawn", "ts": 0.1, "worker": "campaign-worker-1", "index": 1},
            {"v": 1, "type": "unit-dispatched", "ts": 0.2, "unit": "a", "index": 0, "attempt": 1},
            {"v": 1, "type": "worker-heartbeat", "ts": 0.3, "index": 0, "unit": "a"},
            {"v": 1, "type": "worker-exit", "ts": 0.4, "worker": "campaign-worker-0", "exitcode": -9, "unit": "a"},
            {"v": 1, "type": "worker-spawn", "ts": 0.5, "worker": "campaign-worker-2", "index": 2},
            {"v": 1, "type": "worker-respawn", "ts": 0.5, "worker": "campaign-worker-2", "replaces": "campaign-worker-0", "respawns_used": 1},
            {"v": 1, "type": "unit-dispatched", "ts": 0.6, "unit": "a", "index": 2, "attempt": 2},
            {"v": 1, "type": "unit-completed", "ts": 0.9, "unit": "a", "status": "ok"},
        ]
        lanes = worker_lanes(live)
        assert [ln.worker for ln in lanes] == [
            "campaign-worker-0",
            "campaign-worker-1",
            "campaign-worker-2",
        ]
        assert lanes[0].state == "RESPAWNED"
        assert lanes[0].exitcode == -9
        assert lanes[2].respawns_used == 1
        assert lanes[2].state == "IDLE"  # finished the retried unit
        assert lanes[2].last_beat == 0.9

    def test_hang_kill_marks_the_lane(self):
        live = [
            {"v": 1, "type": "worker-spawn", "ts": 0.0, "worker": "campaign-worker-0", "index": 0},
            {"v": 1, "type": "unit-dispatched", "ts": 0.1, "unit": "a", "index": 0, "attempt": 1},
            {"v": 1, "type": "worker-hang-kill", "ts": 5.0, "worker": "campaign-worker-0", "unit": "a"},
        ]
        assert worker_lanes(live)[0].state == "HUNG"


class TestFollow:
    def test_once_renders_final_snapshot(self, tmp_path):
        _run(tmp_path / "run", jobs=2)
        out = io.StringIO()
        code = follow(tmp_path / "run", once=True, stream=out)
        assert code == 0
        assert "COMPLETE (exit 0)" in out.getvalue()

    def test_waits_politely_for_a_missing_journal(self, tmp_path):
        out = io.StringIO()
        assert follow(tmp_path, once=True, stream=out) == 0
        assert "waiting for a campaign journal" in out.getvalue()

    def test_watch_main_positional_rundir(self, tmp_path, capsys):
        _run(tmp_path / "run", jobs=1)

        class Args:
            dir = None
            extra = [str(tmp_path / "run")]
            once = True
            interval = None

        assert watch_main(Args()) == 0
        assert "COMPLETE" in capsys.readouterr().out

    def test_watch_main_requires_a_rundir(self):
        class Args:
            dir = None
            extra = []

        with pytest.raises(CampaignError):
            watch_main(Args())
