"""Event bus: schema validation, torn tails, seq resume, determinism.

The load-bearing property is the last class: the deterministic stream
(``events.ndjson``) is byte-identical between a serial run and a
``--jobs N`` run of the same (spec, scenario, seed) — that is what the
CI ``obs-smoke`` job ``cmp``\\ s.
"""

import json

import pytest

from repro.campaign.orchestrator import Orchestrator
from repro.campaign.spec import get_spec
from repro.obs.events import (
    DETERMINISTIC_EVENTS,
    EVENT_SCHEMA_VERSION,
    EventBus,
    LIVE_EVENTS,
    read_events,
    validate_event,
)

#: One well-formed payload per deterministic event type.
_DET_SAMPLES = {
    "campaign-start": dict(
        spec="smoke", spec_digest="d" * 64, scenario=None, seed=0, units=4
    ),
    "unit-committed": dict(
        unit="u", status="OK", digest="d" * 64, simulated_s=1.5
    ),
    "cache-stats": dict(unit="u", hits=3.0, misses=1.0, bypasses=0.0),
    "fault-injected": dict(unit="u", incident="device-loss"),
    "profile-attributed": dict(
        unit="u", digest="d" * 64, device_us=12.5, kernels=2
    ),
    "resume": dict(skipped=2, rerun=2),
    "interrupted": dict(before="u"),
    "deadline": dict(before="u", simulated_s=9.0),
    "campaign-done": dict(exit=0),
}

#: One well-formed payload per live event type.
_LIVE_SAMPLES = {
    "run-live": dict(jobs=4, pid=123, units=19),
    "worker-spawn": dict(worker="campaign-worker-0", index=0),
    "unit-dispatched": dict(unit="u", index=0, attempt=1),
    "worker-heartbeat": dict(index=0, unit="u"),
    "unit-completed": dict(unit="u", status="ok"),
    "worker-exit": dict(worker="campaign-worker-0", exitcode=-9, unit="u"),
    "worker-respawn": dict(
        worker="campaign-worker-2",
        replaces="campaign-worker-0",
        respawns_used=1,
    ),
    "worker-hang-kill": dict(worker="campaign-worker-0", unit="u"),
    "pool-degraded": dict(),
    "quarantine": dict(unit="u", exit_codes=[-9, -9, -9]),
    "service-start": dict(pid=123, port=8080, recovered=2),
    "request-accepted": dict(request="r-1", tenant="default", kind="bench"),
    "request-shed": dict(tenant="default", reason="tenant rate"),
    "request-completed": dict(request="r-1", status="done", cached=True),
    "request-recovered": dict(request="r-1", tenant="default"),
    "request-executing": dict(request="r-1", tenant="default"),
    "request-cache": dict(request="r-1", hit=True),
    "cache-quarantined": dict(key="d" * 64),
    "service-drain": dict(inflight=1, queued=3),
}


class TestValidateEvent:
    @pytest.mark.parametrize("etype", sorted(DETERMINISTIC_EVENTS))
    def test_every_deterministic_type_validates(self, etype):
        record = {
            "v": EVENT_SCHEMA_VERSION,
            "type": etype,
            "seq": 0,
            "sim_us": 0.0,
            **_DET_SAMPLES[etype],
        }
        assert validate_event(record) == etype

    @pytest.mark.parametrize("etype", sorted(LIVE_EVENTS))
    def test_every_live_type_validates(self, etype):
        record = {
            "v": EVENT_SCHEMA_VERSION,
            "type": etype,
            "ts": 1000.0,
            **_LIVE_SAMPLES[etype],
        }
        assert validate_event(record) == etype

    def test_samples_cover_every_schema_type(self):
        assert set(_DET_SAMPLES) == set(DETERMINISTIC_EVENTS)
        assert set(_LIVE_SAMPLES) == set(LIVE_EVENTS)

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown event type"):
            validate_event({"v": 1, "type": "nope", "seq": 0, "sim_us": 0.0})

    def test_wrong_version_rejected(self):
        with pytest.raises(ValueError, match="schema version"):
            validate_event({"v": 99, "type": "campaign-done", "exit": 0})

    def test_missing_field_rejected(self):
        with pytest.raises(ValueError, match="missing field 'exit'"):
            validate_event(
                {"v": 1, "type": "campaign-done", "seq": 0, "sim_us": 0.0}
            )

    def test_wrong_field_type_rejected(self):
        with pytest.raises(ValueError, match="field 'exit'"):
            validate_event(
                {
                    "v": 1,
                    "type": "campaign-done",
                    "seq": 0,
                    "sim_us": 0.0,
                    "exit": "zero",
                }
            )

    def test_deterministic_record_must_not_carry_wall_time(self):
        with pytest.raises(ValueError, match="wall time"):
            validate_event(
                {
                    "v": 1,
                    "type": "campaign-done",
                    "seq": 0,
                    "sim_us": 0.0,
                    "ts": 12.0,
                    "exit": 0,
                }
            )

    def test_non_object_rejected(self):
        with pytest.raises(ValueError, match="not an object"):
            validate_event(["campaign-done"])


class TestEventBus:
    def test_emit_assigns_monotonic_seq(self, tmp_path):
        bus = EventBus(tmp_path)
        r0 = bus.emit("campaign-done", sim_us=0.0, exit=0)
        r1 = bus.emit("campaign-done", sim_us=1.0, exit=0)
        assert (r0["seq"], r1["seq"]) == (0, 1)

    def test_seq_resumes_after_existing_stream(self, tmp_path):
        EventBus(tmp_path).emit("campaign-done", sim_us=0.0, exit=0)
        rec = EventBus(tmp_path).emit("campaign-done", sim_us=1.0, exit=0)
        assert rec["seq"] == 1
        assert [r["seq"] for r in read_events(tmp_path / "events.ndjson")] == [
            0,
            1,
        ]

    def test_disabled_bus_writes_nothing(self, tmp_path):
        bus = EventBus(tmp_path, enabled=False)
        assert bus.emit("campaign-done", sim_us=0.0, exit=0) is None
        assert bus.live("pool-degraded") is None
        assert not (tmp_path / "events.ndjson").exists()
        assert not (tmp_path / "live.ndjson").exists()

    def test_unknown_types_rejected_at_emit(self, tmp_path):
        bus = EventBus(tmp_path)
        with pytest.raises(ValueError):
            bus.emit("worker-spawn", sim_us=0.0, worker="w", index=0)
        with pytest.raises(ValueError):
            bus.live("campaign-done", exit=0)

    def test_live_records_carry_wall_clock(self, tmp_path):
        bus = EventBus(tmp_path)
        rec = bus.live("pool-degraded")
        assert rec["ts"] > 0
        assert validate_event(rec) == "pool-degraded"

    def test_read_tolerates_torn_last_line(self, tmp_path):
        bus = EventBus(tmp_path)
        bus.emit("campaign-done", sim_us=0.0, exit=0)
        bus.emit("campaign-done", sim_us=1.0, exit=0)
        path = tmp_path / "events.ndjson"
        torn = path.read_bytes()[:-10]
        path.write_bytes(torn)
        records = read_events(path)
        assert len(records) == 1 and records[0]["seq"] == 0
        # A bus over the torn stream resumes after the trusted prefix.
        rec = EventBus(tmp_path).emit("campaign-done", sim_us=2.0, exit=0)
        assert rec["seq"] == 1

    def test_missing_stream_reads_empty(self, tmp_path):
        assert read_events(tmp_path / "events.ndjson") == []


class TestStreamDeterminism:
    def _run(self, directory, jobs):
        orch = Orchestrator(directory, spec=get_spec("smoke"), jobs=jobs)
        assert int(orch.run()) == 0
        return (directory / "events.ndjson").read_bytes()

    def test_serial_and_parallel_streams_byte_identical(self, tmp_path):
        serial = self._run(tmp_path / "serial", jobs=1)
        parallel = self._run(tmp_path / "parallel", jobs=2)
        assert serial == parallel

    def test_every_emitted_record_validates(self, tmp_path):
        self._run(tmp_path / "run", jobs=2)
        for name in ("events.ndjson", "live.ndjson"):
            records = read_events(tmp_path / "run" / name)
            assert records
            for rec in records:
                validate_event(rec)

    def test_stream_tells_the_campaign_story_in_commit_order(self, tmp_path):
        self._run(tmp_path / "run", jobs=2)
        records = read_events(tmp_path / "run" / "events.ndjson")
        types = [r["type"] for r in records]
        assert types[0] == "campaign-start"
        assert types[-1] == "campaign-done"
        committed = [r["unit"] for r in records if r["type"] == "unit-committed"]
        assert committed == [
            u.id for u in get_spec("smoke").execution_order()
        ]
        assert json.loads(json.dumps(records)) == records  # JSON-pure

    def test_resume_extends_the_stream(self, tmp_path):
        from repro.faults.scenarios import build_campaign_plan

        directory = tmp_path / "crashed"
        plan = build_campaign_plan("crash-midrun", 0, len(get_spec("smoke")))
        orch = Orchestrator(
            directory, spec=get_spec("smoke"), campaign_plan=plan
        )
        assert orch.run() is not None
        before = read_events(directory / "events.ndjson")
        assert int(Orchestrator(directory).resume()) == 0
        after = read_events(directory / "events.ndjson")
        assert after[: len(before)] == before
        types = [r["type"] for r in after]
        assert "resume" in types and types[-1] == "campaign-done"
        assert [r["seq"] for r in after] == list(range(len(after)))
