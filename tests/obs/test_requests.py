"""Request observability: trace minting, stream schema, RED fold, SLO."""

import pytest

from repro.obs.requests import (
    LATENCY_BUCKETS_S,
    PHASES,
    RequestLog,
    SLOConfig,
    SLOTracker,
    TraceContext,
    child_span_id,
    mint_trace,
    parse_traceparent,
    read_requests,
    record_span_metrics,
    red_registry,
    register_red_metrics,
    validate_request_record,
)
from repro.telemetry.metrics import MetricsRegistry


class TestTraceContext:
    def test_mint_is_deterministic(self):
        a = mint_trace("req-1", "d" * 64)
        b = mint_trace("req-1", "d" * 64)
        assert a == b
        assert len(a.trace_id) == 32 and len(a.span_id) == 16
        assert set(a.trace_id) <= set("0123456789abcdef")

    def test_mint_varies_with_inputs(self):
        base = mint_trace("req-1", "d" * 64)
        assert mint_trace("req-2", "d" * 64).trace_id != base.trace_id
        assert mint_trace("req-1", "e" * 64).trace_id != base.trace_id

    def test_traceparent_roundtrip(self):
        ctx = mint_trace("req-1", "d" * 64)
        parsed = parse_traceparent(ctx.traceparent)
        assert parsed == ctx
        assert ctx.traceparent.startswith("00-")
        assert ctx.traceparent.endswith("-01")

    def test_parse_rejects_malformed(self):
        assert parse_traceparent(None) is None
        assert parse_traceparent("") is None
        assert parse_traceparent("not-a-traceparent") is None
        assert parse_traceparent("00-short-beef-01") is None
        # The W3C all-zeros invalid sentinel.
        assert parse_traceparent(f"00-{'0' * 32}-{'0' * 16}-01") is None
        # Uppercase hex is invalid per spec.
        assert parse_traceparent(f"00-{'A' * 32}-{'b' * 16}-01") is None

    def test_parse_is_lenient_on_version_and_flags(self):
        ctx = TraceContext("ab" * 16, "cd" * 8)
        assert parse_traceparent(f"01-{ctx.trace_id}-{ctx.span_id}-00") == ctx
        assert (
            parse_traceparent(f"00-{ctx.trace_id}-{ctx.span_id}-01-extra")
            == ctx
        )

    def test_child_span_is_deterministic_and_distinct(self):
        ctx = mint_trace("req-1", "d" * 64)
        assert child_span_id(ctx, "execute") == child_span_id(ctx, "execute")
        assert child_span_id(ctx, "execute") != child_span_id(ctx, "queue")
        assert child_span_id(ctx, "execute") != ctx.span_id


def _span(**overrides) -> dict:
    record = {
        "v": 1,
        "type": "request-span",
        "ts": 100.0,
        "trace_id": "a" * 32,
        "span_id": "b" * 16,
        "request": "r-1",
        "tenant": "alpha",
        "endpoint": "bench:table4",
        "status": "done",
        "cached": False,
        "latency_s": 0.25,
        "phases": {"queue": 0.01, "execute": 0.2},
    }
    record.update(overrides)
    return record


class TestValidation:
    def test_valid_span_and_shed(self):
        assert validate_request_record(_span()) == "request-span"
        shed = {
            "v": 1, "type": "request-shed", "ts": 1.0,
            "trace_id": "c" * 32, "request": "r-2", "tenant": "beta",
            "endpoint": "bench:fig1", "reason": "tenant-rate",
        }
        assert validate_request_record(shed) == "request-shed"

    def test_rejects_bad_envelope(self):
        with pytest.raises(ValueError):
            validate_request_record("not a dict")
        with pytest.raises(ValueError):
            validate_request_record(_span(v=99))
        with pytest.raises(ValueError):
            validate_request_record(_span(type="request-mystery"))

    def test_rejects_missing_and_mistyped_fields(self):
        record = _span()
        del record["latency_s"]
        with pytest.raises(ValueError):
            validate_request_record(record)
        with pytest.raises(ValueError):
            validate_request_record(_span(cached="yes"))

    def test_rejects_unknown_or_negative_phase(self):
        with pytest.raises(ValueError):
            validate_request_record(_span(phases={"warmup": 0.1}))
        with pytest.raises(ValueError):
            validate_request_record(_span(phases={"queue": -0.1}))

    def test_phase_names_cover_lifecycle(self):
        assert PHASES == (
            "parse", "admission", "queue", "cache", "execute", "serialize"
        )


class TestRequestLog:
    def test_append_read_roundtrip(self, tmp_path):
        log = RequestLog(tmp_path)
        rec = log.append(
            "request-span",
            trace_id="a" * 32, span_id="b" * 16, request="r-1",
            tenant="alpha", endpoint="bench:table4", status="done",
            cached=True, latency_s=0.1, phases={"execute": 0.09},
        )
        assert rec["v"] == 1 and rec["ts"] > 0
        records = log.records()
        assert [r["request"] for r in records] == ["r-1"]

    def test_append_validates(self, tmp_path):
        log = RequestLog(tmp_path)
        with pytest.raises(ValueError):
            log.append("request-span", trace_id="a" * 32)

    def test_read_missing_file_is_empty(self, tmp_path):
        assert read_requests(tmp_path / "requests.ndjson") == []


class TestRedFold:
    def test_span_and_shed_fold(self):
        registry = MetricsRegistry()
        register_red_metrics(registry)
        record_span_metrics(registry, _span())
        record_span_metrics(registry, _span(
            request="r-2", status="failed", latency_s=9.0,
        ))
        record_span_metrics(registry, {
            "v": 1, "type": "request-shed", "ts": 2.0,
            "trace_id": "c" * 32, "request": "r-3", "tenant": "alpha",
            "endpoint": "bench:table4", "reason": "tenant-rate",
        })
        count = registry.counter("service.request.count")
        assert count.total(tenant="alpha") == 2
        assert count.total(tenant="alpha", status="failed") == 1
        assert registry.counter("service.request.errors").total() == 1
        assert registry.counter("service.request.sheds").total(
            reason="tenant-rate"
        ) == 1
        latency = registry.histogram("service.request.latency_s")
        assert latency.folded_state(tenant="alpha").total == 2

    def test_red_registry_offline_matches_fold(self, tmp_path):
        log = RequestLog(tmp_path)
        for index in range(3):
            log.append(
                "request-span",
                trace_id=f"{index:032x}", span_id=f"{index:016x}",
                request=f"r-{index}", tenant="alpha",
                endpoint="bench:table4",
                status="done" if index else "failed",
                cached=False, latency_s=0.01, phases={},
            )
        registry = red_registry(tmp_path)
        assert registry.counter("service.request.count").total() == 3
        assert registry.counter("service.request.errors").total() == 1

    def test_openmetrics_exposition_is_wellformed(self):
        registry = MetricsRegistry()
        register_red_metrics(registry)
        record_span_metrics(registry, _span())
        text = registry.to_openmetrics()
        assert "service_request_latency" in text
        assert text.rstrip().endswith("# EOF")

    def test_bucket_layout_is_shared(self):
        # The loadgen client and the daemon must use one estimator.
        from repro.service.loadgen import LoadgenReport

        report = LoadgenReport()
        assert report.latency.buckets == tuple(LATENCY_BUCKETS_S)


class TestSLO:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            SLOConfig(latency_s=0.0)
        with pytest.raises(ValueError):
            SLOConfig(availability=1.5)
        with pytest.raises(ValueError):
            SLOConfig(windows_s=())

    def test_good_requires_done_within_latency(self):
        tracker = SLOTracker(SLOConfig(latency_s=1.0))
        assert tracker.record(True, 0.5, now=0.0) is True
        assert tracker.record(True, 2.0, now=1.0) is False
        assert tracker.record(False, 0.1, now=2.0) is False
        assert tracker.total == 3 and tracker.good == 1

    def test_burn_rate_math(self):
        config = SLOConfig(latency_s=1.0, availability=0.99,
                           windows_s=(60.0,))
        tracker = SLOTracker(config)
        for i in range(99):
            tracker.record(True, 0.1, now=float(i) / 10)
        tracker.record(False, 0.1, now=10.0)
        # 1% errors against a 1% budget: burn rate exactly 1.0.
        assert tracker.burn_rate(60.0, now=10.0) == pytest.approx(1.0)
        snap = tracker.snapshot(now=10.0)
        assert snap["status"] == "ok"
        assert snap["windows"]["60s"]["burn_rate"] == pytest.approx(1.0)

    def test_burning_status_above_budget(self):
        tracker = SLOTracker(
            SLOConfig(availability=0.99, windows_s=(60.0,))
        )
        for i in range(10):
            tracker.record(i % 2 == 0, 0.1, now=float(i))
        snap = tracker.snapshot(now=10.0)
        assert snap["status"] == "burning"
        assert snap["compliance"] == pytest.approx(0.5)

    def test_windows_are_trailing(self):
        tracker = SLOTracker(SLOConfig(windows_s=(10.0, 100.0)))
        tracker.record(False, 0.1, now=0.0)
        tracker.record(True, 0.1, now=50.0)
        assert tracker.window_counts(10.0, now=50.0) == (1, 1)
        assert tracker.window_counts(100.0, now=50.0) == (1, 2)

    def test_empty_tracker_snapshot(self):
        snap = SLOTracker().snapshot(now=0.0)
        assert snap["total"] == 0
        assert snap["compliance"] == 1.0
        assert snap["status"] == "ok"
