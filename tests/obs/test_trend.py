"""Cross-run trend analytics over committed baseline snapshots."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.trend import kernel_deltas, trend_main, trend_report
from repro.obs.trend import _campaign_lines, _sweep_lines
from repro.profiler.baseline import build_snapshot, write_baseline


def _kernel_row(name, achieved_us, *, bound="compute", model_pct=95.0):
    return {
        "kernel": name,
        "bound": bound,
        "achieved_us": achieved_us,
        "model_pct": model_pct,
        "calls": 4,
    }


def _bench_entry(bench, system, device_us, *, kernels=()):
    entry = {
        "bench": bench,
        "system": system,
        "fom": 100.0,
        "device_us": device_us,
    }
    if kernels:
        entry["kernel_attribution"] = list(kernels)
        entry["kernels"] = len(kernels)
    return entry


def _campaign_entry(wall_s, hits, misses):
    evals = hits + misses
    return {
        "bench": "campaign-paper",
        "system": "jobs4",
        "wall_s": wall_s,
        "sim_cache_hits": hits,
        "sim_cache_misses": misses,
        "sim_cache_hit_rate": hits / evals if evals else 0.0,
    }


class TestKernelDeltas:
    def test_kernel_present_in_both_gets_a_ratio_line(self):
        base = {"kernel_attribution": [_kernel_row("gemm", 100.0)]}
        cur = {"kernel_attribution": [_kernel_row("gemm", 150.0)]}
        (line,) = kernel_deltas(base, cur)
        assert line == (
            "gemm [compute-bound] device 100.0us -> 150.0us (x1.5000)"
        )

    def test_new_kernel_reports_model_efficiency(self):
        cur = {
            "kernel_attribution": [
                _kernel_row("stream-triad", 42.0, bound="memory")
            ]
        }
        (line,) = kernel_deltas({}, cur)
        assert line == (
            "stream-triad [memory-bound] 42.0us achieved (95.0% of model)"
        )

    def test_dropped_kernel_is_called_out(self):
        base = {"kernel_attribution": [_kernel_row("gemm", 100.0)]}
        (line,) = kernel_deltas(base, {})
        assert "dropped" in line and line.startswith("gemm")

    def test_no_attribution_anywhere_yields_nothing(self):
        assert kernel_deltas({"device_us": 1.0}, {"device_us": 2.0}) == []


class TestCampaignLines:
    def test_both_snapshots_get_wall_and_cache_arrows(self):
        base = {"campaign-paper@jobs4": _campaign_entry(2.0, 900, 100)}
        cur = {"campaign-paper@jobs4": _campaign_entry(1.0, 950, 50)}
        (line,) = _campaign_lines(base, cur)
        assert "wall 2.00s -> 1.00s (x0.50, informational)" in line
        assert "sim-cache 90.0% -> 95.0%" in line

    def test_new_entry_is_flagged(self):
        cur = {"campaign-paper@jobs4": _campaign_entry(1.0, 950, 50)}
        (line,) = _campaign_lines({}, cur)
        assert line.endswith("[new entry]")
        assert "95.0% hit rate" in line

    def test_plain_bench_entries_are_ignored(self):
        entries = {"gemm@aurora": _bench_entry("gemm", "aurora", 5.0)}
        assert _campaign_lines(entries, entries) == []


class TestTrendReport:
    def _write(self, path, entries):
        write_baseline(path, build_snapshot(entries))
        return str(path)

    def test_needs_at_least_two_snapshots(self, tmp_path):
        path = self._write(tmp_path / "b0.json", [])
        with pytest.raises(ConfigurationError, match="at least two"):
            trend_report([path])

    def test_report_names_cache_and_kernel_movement(self, tmp_path):
        base = self._write(
            tmp_path / "b0.json",
            [
                _bench_entry(
                    "gemm",
                    "aurora",
                    100.0,
                    kernels=[_kernel_row("gemm-fp64", 100.0)],
                ),
                _campaign_entry(2.0, 900, 100),
            ],
        )
        cur = self._write(
            tmp_path / "b1.json",
            [
                _bench_entry(
                    "gemm",
                    "aurora",
                    150.0,
                    kernels=[_kernel_row("gemm-fp64", 150.0)],
                ),
                _campaign_entry(1.0, 950, 50),
            ],
        )
        report = trend_report([base, cur])
        assert "b0.json -> b1.json" in report
        assert "sim-cache 90.0% -> 95.0%" in report
        assert "kernel attribution:" in report
        assert (
            "gemm-fp64 [compute-bound] device 100.0us -> 150.0us (x1.5000)"
            in report
        )
        # device_us grew 50% — far past tolerance, so the gated
        # comparator must flag it in the same report.
        assert "regressed" in report

    def test_without_attribution_the_report_degrades_to_a_note(
        self, tmp_path
    ):
        base = self._write(
            tmp_path / "b0.json", [_bench_entry("gemm", "aurora", 100.0)]
        )
        cur = self._write(
            tmp_path / "b1.json", [_bench_entry("gemm", "aurora", 101.0)]
        )
        report = trend_report([base, cur])
        assert "not embedded in these snapshots" in report
        assert "profile full --write-baseline" in report

    def test_three_snapshots_yield_two_sections(self, tmp_path):
        paths = [
            self._write(
                tmp_path / f"b{i}.json",
                [_bench_entry("gemm", "aurora", 100.0 + i)],
            )
            for i in range(3)
        ]
        report = trend_report(paths)
        assert "b0.json -> b1.json" in report
        assert "b1.json -> b2.json" in report

    def test_trend_main_joins_bench_and_extra_positionals(
        self, tmp_path, capsys
    ):
        base = self._write(
            tmp_path / "b0.json", [_bench_entry("gemm", "aurora", 100.0)]
        )
        cur = self._write(
            tmp_path / "b1.json", [_bench_entry("gemm", "aurora", 100.0)]
        )

        class Args:
            bench = base
            extra = [cur]

        assert trend_main(Args()) == 0
        out = capsys.readouterr().out
        assert "perf trend across 2 snapshot(s)" in out

    def test_committed_baselines_are_trendable(self):
        import os

        root = os.path.join(os.path.dirname(__file__), "..", "..")
        report = trend_report(
            [
                os.path.join(root, "BENCH_0.json"),
                os.path.join(root, "BENCH_1.json"),
            ]
        )
        assert "sim-cache" in report
        assert "kernel attribution:" in report


def _sweep_entry(points_per_s, speedup, *, points=138240.0):
    return {
        "bench": "sweep",
        "system": "ci",
        "fom": 650000.0,
        "points": points,
        "points_per_s": points_per_s,
        "batch_speedup": speedup,
        "scalar_points_per_s": points_per_s / speedup,
        "verified_sample": 64.0,
        "wall_s": points / points_per_s,
    }


class TestSweepLines:
    def test_both_snapshots_get_throughput_arrows(self):
        (line,) = _sweep_lines(
            {"sweep@ci": _sweep_entry(4.0e6, 60.0)},
            {"sweep@ci": _sweep_entry(6.0e6, 75.0)},
        )
        assert line == (
            "sweep@ci: 138,240 points, 4.0 -> 6.0 M points/s (x1.50), "
            "batch speedup x60 -> x75"
        )

    def test_new_entry_is_flagged(self):
        (line,) = _sweep_lines({}, {"sweep@ci": _sweep_entry(5.0e6, 70.0)})
        assert line == (
            "sweep@ci: 138,240 points, 5.0 M points/s, "
            "batch speedup x70  [new entry]"
        )

    def test_dropped_entry_is_called_out(self):
        (line,) = _sweep_lines({"sweep@ci": _sweep_entry(5.0e6, 70.0)}, {})
        assert line == "sweep@ci: dropped from the newer snapshot"

    def test_plain_and_campaign_entries_are_ignored(self):
        entries = {
            "gemm@aurora": _bench_entry("gemm", "aurora", 100.0),
            "campaign-paper@jobs4": _campaign_entry(2.0, 9, 1),
        }
        assert _sweep_lines(entries, entries) == []


class TestSweepTrendReport:
    def _write(self, path, entries):
        write_baseline(path, build_snapshot(entries))
        return str(path)

    def test_report_carries_a_sweep_section(self, tmp_path):
        base = self._write(
            tmp_path / "b0.json", [_sweep_entry(4.0e6, 60.0)]
        )
        cur = self._write(
            tmp_path / "b1.json", [_sweep_entry(6.0e6, 75.0)]
        )
        report = trend_report([base, cur])
        assert "sweep throughput:" in report
        assert "4.0 -> 6.0 M points/s" in report

    def test_committed_bench3_is_trendable(self):
        import os

        root = os.path.join(os.path.dirname(__file__), "..", "..")
        report = trend_report(
            [
                os.path.join(root, "BENCH_2.json"),
                os.path.join(root, "BENCH_3.json"),
            ]
        )
        assert "sweep throughput:" in report
        assert "sweep@ci" in report
        assert "[new entry]" in report
