"""Distributed CloverLeaf driver (library code)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.miniapps.cloverleaf import (
    EulerSolver2D,
    run_distributed,
    sod_state,
)


class TestRunDistributed:
    def test_bit_identical_to_serial(self, aurora):
        n, steps = 32, 5
        serial = EulerSolver2D(sod_state(n), boundary="periodic")
        serial.run(steps)
        state, _ = run_distributed(aurora, n=n, steps=steps, n_ranks=4)
        assert np.allclose(state.u, serial.state.u, atol=1e-12)

    def test_rank_count_invariance(self, aurora):
        two, _ = run_distributed(aurora, n=24, steps=4, n_ranks=2)
        four, _ = run_distributed(aurora, n=24, steps=4, n_ranks=4)
        assert np.allclose(two.u, four.u, atol=1e-12)

    def test_vtime_positive_and_grows_with_steps(self, aurora):
        _, t1 = run_distributed(aurora, n=16, steps=2, n_ranks=2)
        _, t2 = run_distributed(aurora, n=16, steps=8, n_ranks=2)
        assert 0 < t1 < t2

    def test_indivisible_grid_rejected(self, aurora):
        with pytest.raises(ConfigurationError):
            run_distributed(aurora, n=30, steps=1, n_ranks=4)

    def test_conservation_preserved(self, aurora):
        n = 16
        initial = sod_state(n)
        before = initial.totals()
        state, _ = run_distributed(aurora, n=n, steps=6, n_ranks=4)
        assert np.allclose(state.totals(), before, rtol=1e-10)
