"""Second-order (MUSCL) option of the Euler solver."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.miniapps.cloverleaf import (
    GAMMA,
    EulerSolver2D,
    EulerState,
    sod_state,
)


def _advection_error(order: int, n: int = 64) -> float:
    """L1 error of a smooth density wave advected across the domain."""
    x = (np.arange(n) + 0.5) / n
    u0 = np.zeros((4, n, n))
    u0[0] = (1.0 + 0.2 * np.sin(2 * np.pi * x))[None, :]
    u0[1] = u0[0] * 1.0  # vx = 1
    u0[3] = 1.0 / (GAMMA - 1.0) + 0.5 * u0[0]
    solver = EulerSolver2D(
        EulerState(u0), boundary="periodic", order=order, cfl=0.3
    )
    t = 0.0
    while t < 4.0:
        dt = min(solver.stable_dt(), 4.0 - t)
        solver.step(dt)
        t += dt
    exact = 1.0 + 0.2 * np.sin(2 * np.pi * (x - 4.0 / n))
    return float(np.abs(solver.state.density[0] - exact).mean())


class TestMuscl:
    def test_order_validation(self):
        with pytest.raises(ConfigurationError):
            EulerSolver2D(sod_state(8), order=3)

    def test_conservation_periodic(self):
        rng = np.random.default_rng(1)
        u = np.zeros((4, 16, 16))
        u[0] = 1.0 + 0.1 * rng.random((16, 16))
        u[3] = 2.0 + 0.1 * rng.random((16, 16))
        solver = EulerSolver2D(EulerState(u), boundary="periodic", order=2)
        before = solver.state.totals()
        solver.run(20)
        assert np.allclose(solver.state.totals(), before, rtol=1e-12)

    def test_conservation_reflective(self):
        solver = EulerSolver2D(sod_state(32), boundary="reflective", order=2)
        before = solver.state.totals()
        solver.run(15)
        after = solver.state.totals()
        assert after[0] == pytest.approx(before[0], rel=1e-12)
        assert after[3] == pytest.approx(before[3], rel=1e-12)

    def test_positivity_on_sod(self):
        solver = EulerSolver2D(sod_state(64), boundary="reflective", order=2)
        solver.run(40)
        rho, _, _, p = solver.state.primitives()
        assert np.all(rho > 0)
        assert np.all(p > -1e-10)

    def test_muscl_sharply_more_accurate_on_smooth_flow(self):
        e1 = _advection_error(1)
        e2 = _advection_error(2)
        assert e2 < e1 / 4.0  # the limiter costs a bit of the formal 2x order

    def test_uniform_state_still_steady(self):
        u = np.zeros((4, 8, 8))
        u[0] = 1.0
        u[3] = 2.0
        solver = EulerSolver2D(EulerState(u.copy()), boundary="periodic", order=2)
        solver.run(10)
        assert np.allclose(solver.state.u, u, atol=1e-12)

    def test_order_one_unchanged_by_refactor(self):
        """The default path must still match the original scheme."""
        a = EulerSolver2D(sod_state(32), boundary="reflective", order=1)
        a.run(10)
        rho = a.state.density[0]
        assert rho[2] == pytest.approx(1.0, abs=0.02)
        assert np.all(np.isfinite(rho))
