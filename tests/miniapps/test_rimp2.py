"""RI-MP2 mini-app: correlation-energy numerics + strong-scaled FOM."""

import numpy as np
import pytest

from repro.errors import BuildError, ConfigurationError
from repro.miniapps.rimp2 import (
    Rimp2,
    Rimp2Input,
    make_input,
    rimp2_energy,
    rimp2_energy_reference,
)


class TestEnergy:
    def test_dgemm_path_matches_direct_contraction(self):
        inp = make_input(n_aux=12, n_occ=4, n_virt=6, seed=3)
        assert rimp2_energy(inp) == pytest.approx(
            rimp2_energy_reference(inp), rel=1e-12
        )

    def test_energy_is_negative(self):
        # MP2 correlation energy is strictly negative for a gapped system.
        for seed in range(5):
            inp = make_input(seed=seed)
            assert rimp2_energy(inp) < 0.0

    def test_scaling_with_integral_magnitude(self):
        # E ~ B^4: doubling B multiplies the energy by 16.
        inp = make_input(n_aux=8, n_occ=3, n_virt=5, seed=1)
        doubled = Rimp2Input(b=2.0 * inp.b, e_occ=inp.e_occ, e_virt=inp.e_virt)
        assert rimp2_energy(doubled) == pytest.approx(
            16.0 * rimp2_energy(inp), rel=1e-10
        )

    def test_input_validation(self):
        with pytest.raises(ConfigurationError):
            Rimp2Input(
                b=np.zeros((4, 2, 3)),
                e_occ=np.array([0.5, -1.0]),  # occupied must be negative
                e_virt=np.ones(3),
            )
        with pytest.raises(ConfigurationError):
            Rimp2Input(
                b=np.zeros((4, 2, 3)),
                e_occ=-np.ones(2),
                e_virt=np.ones(4),  # wrong length
            )


class TestFom:
    def test_table_vi_pvc_cells(self, aurora, dawn):
        app = Rimp2()
        assert app.fom(aurora, 1) == pytest.approx(19.44, rel=0.03)
        assert app.fom(aurora, 2) == pytest.approx(38.50, rel=0.03)
        assert app.fom(aurora, 12) == pytest.approx(197.08, rel=0.04)
        assert app.fom(dawn, 1) == pytest.approx(24.57, rel=0.04)
        assert app.fom(dawn, 8) == pytest.approx(164.71, rel=0.05)

    def test_h100_cells(self, h100):
        app = Rimp2()
        assert app.fom(h100, 1) == pytest.approx(49.30, rel=0.03)
        assert app.fom(h100, 4) == pytest.approx(168.97, rel=0.04)

    def test_mi250_build_fails(self, mi250):
        # Section V-B.3: absent "since it failed to build with the AMD
        # Fortran compiler".
        with pytest.raises(BuildError):
            Rimp2().fom(mi250, 1)

    def test_strong_scaling_sublinear(self, aurora):
        # Serial overhead: 12 stacks give < 12x the single-stack FOM.
        app = Rimp2()
        speedup = app.fom(aurora, 12) / app.fom(aurora, 1)
        assert 9.0 < speedup < 12.0

    def test_walltime_decreases_with_stacks(self, aurora):
        app = Rimp2()
        assert app.walltime_s(aurora, 12) < app.walltime_s(aurora, 2)

    def test_functional_runner(self):
        assert Rimp2().run_functional() < 0.0
