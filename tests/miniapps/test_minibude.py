"""miniBUDE: docking-energy numerics + FOM model."""

import numpy as np
import pytest

from repro.miniapps.minibude import (
    FLOPS_PER_INTERACTION,
    MiniBude,
    evaluate_poses,
    make_deck,
    pose_transforms,
)


class TestPoseTransforms:
    def test_rotations_are_orthonormal(self):
        deck = make_deck(n_poses=16)
        rot, _ = pose_transforms(deck.poses)
        eye = np.einsum("nij,nkj->nik", rot, rot)
        assert np.allclose(eye, np.eye(3), atol=1e-5)

    def test_determinant_plus_one(self):
        deck = make_deck(n_poses=8, seed=5)
        rot, _ = pose_transforms(deck.poses)
        assert np.allclose(np.linalg.det(rot), 1.0, atol=1e-5)

    def test_zero_pose_is_identity(self):
        rot, trans = pose_transforms(np.zeros((1, 6), dtype=np.float32))
        assert np.allclose(rot[0], np.eye(3), atol=1e-6)
        assert np.allclose(trans[0], 0.0)


class TestEnergies:
    def test_energy_per_pose_shape(self):
        deck = make_deck(n_ligand=8, n_protein=16, n_poses=10)
        energies = evaluate_poses(deck)
        assert energies.shape == (10,)
        assert energies.dtype == np.float32

    def test_translation_symmetry_of_far_poses(self):
        # A pose translated far away has zero steric and zero capped
        # electrostatic energy.
        deck = make_deck(n_ligand=4, n_protein=4, n_poses=1)
        far = deck.poses.copy()
        far[0, 3:] = 1000.0
        from dataclasses import replace

        deck_far = replace(deck, poses=far)
        assert evaluate_poses(deck_far)[0] == pytest.approx(0.0, abs=1e-3)

    def test_steric_clash_raises_energy(self):
        # Identical positions -> maximal overlap -> large positive energy.
        deck = make_deck(n_ligand=4, n_protein=4, n_poses=2, seed=1)
        from dataclasses import replace

        clash = replace(
            deck,
            protein_pos=deck.ligand_pos.copy(),
            poses=np.zeros((1, 6), dtype=np.float32),
        )
        assert evaluate_poses(clash)[0] > 100.0

    def test_best_pose_is_argmin(self):
        deck = make_deck(n_poses=32, seed=7)
        app = MiniBude()
        assert app.best_pose(deck) == int(np.argmin(evaluate_poses(deck)))

    def test_pose_block_selects_subset(self):
        deck = make_deck(n_poses=10)
        full = evaluate_poses(deck)
        part = evaluate_poses(deck, pose_block=slice(2, 5))
        assert np.allclose(part, full[2:5])

    def test_interaction_count(self):
        deck = make_deck(n_ligand=8, n_protein=16, n_poses=10)
        assert deck.n_interactions == 10 * 8 * 16


class TestFom:
    def test_paper_deck_size(self):
        app = MiniBude()
        assert app.interactions() == pytest.approx(983040 * 2672 * 2672)

    def test_table_vi_values(self, engines):
        paper = {
            "aurora": 293.02,
            "dawn": 366.17,
            "jlse-h100": 638.40,
            "jlse-mi250": 193.66,
        }
        app = MiniBude()
        for name, value in paper.items():
            assert app.fom(engines[name], 1) == pytest.approx(value, rel=0.04), name

    def test_one_pvc_doubles_single_stack(self, aurora):
        app = MiniBude()
        assert app.fom(aurora, 2) == pytest.approx(2 * app.fom(aurora, 1))

    def test_achieved_fraction_matches_prose(self, aurora):
        # "around 45% ... of their peak single precision flops".
        assert MiniBude().achieved_fp32_fraction(aurora) == pytest.approx(
            0.45, abs=0.01
        )

    def test_flops_per_interaction_constant(self):
        assert 30.0 < FLOPS_PER_INTERACTION < 40.0

    def test_builds_everywhere(self, engines):
        app = MiniBude()
        for engine in engines.values():
            assert app.build(engine).app == "miniBUDE"
