"""miniQMC: B-spline evaluator, VMC physics, congestion FOM."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.miniapps.miniqmc import (
    CubicBspline3D,
    HarmonicTrialWavefunction,
    MiniQmc,
    VmcDriver,
)


class TestBspline:
    def _grid_function(self, n=16, box=2.0):
        x = np.arange(n) / n * box
        xx, yy, zz = np.meshgrid(x, x, x, indexing="ij")
        values = np.sin(2 * np.pi * xx / box) * np.cos(
            2 * np.pi * yy / box
        ) + 0.3 * np.sin(2 * np.pi * zz / box)
        return values, box

    def test_interpolates_grid_points_exactly(self):
        values, box = self._grid_function()
        spline = CubicBspline3D(values, box)
        n = values.shape[0]
        pts = np.array([[0, 0, 0], [3, 5, 7], [15, 1, 9]]) / n * box
        got = spline.evaluate(pts)
        want = [values[0, 0, 0], values[3, 5, 7], values[15, 1, 9]]
        assert np.allclose(got, want, atol=1e-10)

    def test_smooth_function_between_grid_points(self):
        values, box = self._grid_function(n=32)
        spline = CubicBspline3D(values, box)
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, box, (50, 3))
        exact = np.sin(2 * np.pi * pts[:, 0] / box) * np.cos(
            2 * np.pi * pts[:, 1] / box
        ) + 0.3 * np.sin(2 * np.pi * pts[:, 2] / box)
        assert np.allclose(spline.evaluate(pts), exact, atol=2e-3)

    def test_periodic_wraparound(self):
        values, box = self._grid_function()
        spline = CubicBspline3D(values, box)
        a = spline.evaluate(np.array([[0.1, 0.2, 0.3]]))
        b = spline.evaluate(np.array([[0.1 + box, 0.2 - box, 0.3]]))
        assert np.allclose(a, b, atol=1e-10)

    def test_constant_field_reproduced(self):
        spline = CubicBspline3D(np.full((8, 8, 8), 4.2), 1.0)
        pts = np.random.default_rng(1).uniform(0, 1, (20, 3))
        assert np.allclose(spline.evaluate(pts), 4.2, atol=1e-9)

    def test_batch_shape_preserved(self):
        values, box = self._grid_function()
        spline = CubicBspline3D(values, box)
        pts = np.zeros((4, 5, 3))
        assert spline.evaluate(pts).shape == (4, 5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CubicBspline3D(np.zeros((4, 4)), 1.0)
        with pytest.raises(ConfigurationError):
            CubicBspline3D(np.zeros((4, 4, 5)), 1.0)
        with pytest.raises(ConfigurationError):
            CubicBspline3D(np.zeros((4, 4, 4)), -1.0)


class TestVmc:
    def test_zero_variance_at_exact_alpha(self):
        # alpha = omega: E_L = 1.5 * N exactly for every configuration.
        psi = HarmonicTrialWavefunction(alpha=1.0, omega=1.0)
        driver = VmcDriver(psi, n_walkers=16, n_electrons=4, seed=1)
        energies = driver.step()
        assert np.allclose(energies, 1.5 * 4, atol=1e-10)

    def test_variational_principle(self):
        # Any other alpha must give mean energy above the ground state.
        psi = HarmonicTrialWavefunction(alpha=0.6, omega=1.0)
        driver = VmcDriver(psi, n_walkers=256, n_electrons=2, seed=2)
        mean, err = driver.run(n_steps=60, warmup=20)
        ground = 1.5 * 2
        assert mean > ground - 3 * err
        assert mean - ground > -0.05

    def test_acceptance_reasonable(self):
        psi = HarmonicTrialWavefunction(alpha=1.0)
        driver = VmcDriver(psi, 64, 4, timestep=0.3, seed=3)
        driver.run(30)
        assert 0.5 < driver.acceptance_ratio <= 1.0

    def test_local_energy_formula(self):
        psi = HarmonicTrialWavefunction(alpha=0.5, omega=1.0)
        r = np.ones((1, 2, 3))  # sum r^2 = 6
        e = psi.local_energy(r)
        expected = 1.5 * 0.5 * 2 + 0.5 * (1.0 - 0.25) * 6.0
        assert e[0] == pytest.approx(expected)

    def test_drift_direction(self):
        psi = HarmonicTrialWavefunction(alpha=2.0)
        r = np.ones((1, 1, 3))
        assert np.allclose(psi.drift(r), -2.0)

    def test_validation(self):
        psi = HarmonicTrialWavefunction(alpha=1.0)
        with pytest.raises(ConfigurationError):
            VmcDriver(psi, 0, 4)


class TestFom:
    def test_table_vi_all_scopes(self, engines):
        paper = {
            "aurora": {1: 3.16, 2: 5.39, 12: 15.64},
            "dawn": {1: 3.72, 2: 6.85, 8: 16.28},
            "jlse-h100": {1: 3.89, 4: 12.32},
            "jlse-mi250": {1: 0.50, 8: 0.90},
        }
        app = MiniQmc()
        for name, cells in paper.items():
            for n, value in cells.items():
                got = app.fom(engines[name], n)
                assert got == pytest.approx(value, rel=0.03), (name, n)

    def test_aurora_full_below_dawn_full(self, aurora, dawn):
        # The paper's headline inversion.
        app = MiniQmc()
        assert app.fom(aurora, 12) < app.fom(dawn, 8)

    def test_congestion_grows_with_ranks_per_socket(self, aurora):
        app = MiniQmc()
        t1 = app.diffusion_time(aurora, 1)
        t12 = app.diffusion_time(aurora, 12)
        assert t12 > t1

    def test_functional_vmc_converges(self):
        mean, err = MiniQmc().run_functional(n_walkers=32, n_electrons=4, steps=20)
        assert mean == pytest.approx(6.0, abs=1e-8)  # zero-variance oracle
