"""miniBUDE launch-parameter autotuning."""

import pytest

from repro.miniapps.bude_tuning import (
    DEFAULT_PPWI,
    DEFAULT_WGSIZES,
    BudeAutotuner,
)


@pytest.fixture(scope="module")
def tuner(aurora):
    return BudeAutotuner(aurora)


class TestSweep:
    def test_covers_full_grid(self, tuner):
        results = tuner.sweep()
        assert len(results) == len(DEFAULT_PPWI) * len(DEFAULT_WGSIZES)

    def test_best_is_max(self, tuner):
        results = tuner.sweep()
        best = tuner.best()
        assert best.ginteractions_per_s == max(
            r.ginteractions_per_s for r in results
        )

    def test_optimum_is_interior_in_ppwi(self, tuner):
        """Throughput rises with ppwi (reuse) then collapses (spills)."""
        at = {
            (r.ppwi, r.wgsize): r.ginteractions_per_s for r in tuner.sweep()
        }
        best = tuner.best()
        assert 1 < best.ppwi < 128
        assert at[(1, best.wgsize)] < best.ginteractions_per_s
        assert at[(128, best.wgsize)] < best.ginteractions_per_s

    def test_spill_point_matches_register_budget(self, tuner):
        # 24 + 5*ppwi <= 128 -> ppwi <= 20: spill kicks in above 16.
        assert tuner._spill_factor(16) == 1.0
        assert tuner._spill_factor(32) < 1.0

    def test_tiny_workgroups_underfill(self, tuner):
        at = {
            (r.ppwi, r.wgsize): r.ginteractions_per_s for r in tuner.sweep()
        }
        assert at[(16, 32)] < at[(16, 256)]

    def test_invalid_config_rejected(self, tuner):
        with pytest.raises(ValueError):
            tuner.throughput(0, 64)
        with pytest.raises(ValueError):
            tuner.throughput(4, 0)


class TestBatchPath:
    """batch=True is the same sweep, vectorized: outputs must be
    identical down to the float bits, on every system."""

    def test_full_sweep_identical(self, aurora, dawn, h100, mi250):
        for engine in (aurora, dawn, h100, mi250):
            tuner = BudeAutotuner(engine)
            scalar = tuner.sweep()
            batched = tuner.sweep(batch=True)
            assert len(batched) == len(scalar)
            for a, b in zip(scalar, batched):
                assert (a.ppwi, a.wgsize) == (b.ppwi, b.wgsize)
                assert a.ginteractions_per_s == b.ginteractions_per_s

    def test_best_identical(self, tuner):
        assert tuner.best() == tuner.best(batch=True)

    def test_custom_grid(self, tuner):
        grid = dict(ppwi_values=(2, 8, 32), wgsizes=(64, 512))
        scalar = tuner.sweep(**grid)
        batched = tuner.sweep(batch=True, **grid)
        assert [
            (r.ppwi, r.wgsize, r.ginteractions_per_s) for r in scalar
        ] == [
            (r.ppwi, r.wgsize, r.ginteractions_per_s) for r in batched
        ]


class TestTunedFraction:
    def test_aurora_near_measured_45_percent(self, tuner):
        # The tuned model reproduces the paper's ~45-50% achieved peak.
        frac = tuner.tuned_fraction_of_peak()
        assert 0.42 <= frac <= 0.52

    def test_h100_model_same_shape(self, h100):
        tuner = BudeAutotuner(h100)
        best = tuner.best()
        assert best.ppwi == 16  # same register-pressure optimum
        assert best.ginteractions_per_s > 0

    def test_result_str(self, tuner):
        text = str(tuner.best())
        assert "ppwi=" in text and "GI/s" in text
