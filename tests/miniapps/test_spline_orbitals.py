"""Multi-spline orbital evaluation (miniQMC's dominant kernel)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.miniapps.miniqmc import SplineOrbitalSet


@pytest.fixture(scope="module")
def orbitals():
    return SplineOrbitalSet.plane_waves(6, grid_n=20, box=2.0)


class TestMultiSpline:
    def test_matches_single_spline_evaluation(self, orbitals):
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 2, (40, 3))
        multi = orbitals.evaluate(pts)
        for k in range(orbitals.n_orbitals):
            single = orbitals.evaluate_single(k, pts)
            assert np.allclose(multi[:, k], single, atol=1e-12)

    def test_output_shape(self, orbitals):
        pts = np.zeros((4, 5, 3))
        assert orbitals.evaluate(pts).shape == (4, 5, 6)

    def test_interpolates_grid_points(self, orbitals):
        n, box = orbitals.n, orbitals.box
        pts = np.array([[2, 3, 4], [7, 1, 5]]) / n * box
        vals = orbitals.evaluate(pts)
        # The plane-wave construction is exactly recoverable at nodes.
        x = pts / box * 2 * np.pi
        for row, p in enumerate(pts):
            k = 0  # orbital 0: cos(2pi*(1*x)/box) * cos(0)
            expected = np.cos(2 * np.pi * p[0] / box)
            assert vals[row, k] == pytest.approx(expected, abs=1e-9)

    def test_periodicity(self, orbitals):
        pts = np.array([[0.3, 0.4, 0.5]])
        wrapped = pts + np.array([[orbitals.box, -orbitals.box, 0.0]])
        assert np.allclose(
            orbitals.evaluate(pts), orbitals.evaluate(wrapped), atol=1e-10
        )

    def test_smooth_between_nodes(self, orbitals):
        rng = np.random.default_rng(1)
        pts = rng.uniform(0, 2, (30, 3))
        vals = orbitals.evaluate(pts)
        # orbital 0 is cos(2 pi x / box): spline error ~ O(h^4).
        expected = np.cos(2 * np.pi * pts[:, 0] / orbitals.box)
        assert np.allclose(vals[:, 0], expected, atol=5e-4)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SplineOrbitalSet(np.zeros((4, 4, 4)), 1.0)  # missing orbital axis


class TestWalkerEvaluationPattern:
    def test_all_electrons_all_orbitals(self, orbitals):
        """The miniQMC access pattern: (walkers, electrons) x orbitals."""
        rng = np.random.default_rng(2)
        walkers = rng.uniform(0, 2, (8, 16, 3))  # 8 walkers, 16 electrons
        vals = orbitals.evaluate(walkers)
        assert vals.shape == (8, 16, 6)
        assert np.all(np.isfinite(vals))
