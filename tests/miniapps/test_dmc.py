"""Diffusion Monte Carlo driver."""

import pytest

from repro.errors import ConfigurationError
from repro.miniapps import DmcDriver, HarmonicTrialWavefunction, VmcDriver


class TestDmc:
    def test_projects_out_trial_bias(self):
        """With a *wrong* alpha, VMC is biased above the ground state but
        DMC projects to 1.5*N*omega (up to timestep error)."""
        psi = HarmonicTrialWavefunction(alpha=0.6, omega=1.0)
        n_elec = 2
        exact = 1.5 * n_elec

        vmc = VmcDriver(psi, n_walkers=256, n_electrons=n_elec, seed=4)
        vmc_mean, vmc_err = vmc.run(80, warmup=30)
        assert vmc_mean > exact + 5 * vmc_err  # variational bias visible

        dmc = DmcDriver(psi, n_walkers=400, n_electrons=n_elec, seed=1)
        dmc_mean, dmc_err = dmc.run(300, warmup=100)
        assert dmc_mean == pytest.approx(exact, rel=0.03)
        assert abs(dmc_mean - exact) < abs(vmc_mean - exact)

    def test_exact_trial_has_tiny_variance(self):
        psi = HarmonicTrialWavefunction(alpha=1.0, omega=1.0)
        dmc = DmcDriver(psi, n_walkers=200, n_electrons=4, seed=2)
        mean, err = dmc.run(50, warmup=10)
        assert mean == pytest.approx(6.0, rel=1e-6)
        assert err < 1e-6  # zero-variance principle survives branching

    def test_population_stays_at_target(self):
        psi = HarmonicTrialWavefunction(alpha=0.8)
        dmc = DmcDriver(psi, n_walkers=128, n_electrons=2, seed=3)
        for _ in range(20):
            dmc.step()
            assert dmc.population == 128

    def test_trial_energy_tracks_estimate(self):
        psi = HarmonicTrialWavefunction(alpha=0.7)
        dmc = DmcDriver(psi, n_walkers=256, n_electrons=2, seed=5)
        for _ in range(100):
            dmc.step()
        assert dmc.e_trial == pytest.approx(3.0, rel=0.15)

    def test_small_population_rejected(self):
        with pytest.raises(ConfigurationError):
            DmcDriver(HarmonicTrialWavefunction(alpha=1.0), 4, 2)
