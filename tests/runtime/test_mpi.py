"""Simulated MPI: point-to-point, collectives, virtual time, deadlocks."""

import numpy as np
import pytest

from repro.errors import MPIError
from repro.runtime.mpi import MAX, SUM, SimMPI


class TestPointToPoint:
    def test_send_recv_payload(self, aurora):
        def prog(comm):
            if comm.rank == 0:
                comm.Send(np.arange(10.0), dest=1)
                return None
            if comm.rank == 1:
                return comm.Recv(source=0)
            return None

        results = SimMPI(aurora, 2).run(prog)
        assert np.array_equal(results[1], np.arange(10.0))

    def test_isend_irecv_waitall(self, aurora):
        def prog(comm):
            peer = 1 - comm.rank
            reqs = [
                comm.Isend(np.full(4, float(comm.rank)), peer, tag=9),
                comm.Irecv(peer, tag=9),
            ]
            out = comm.Waitall(reqs)
            return out[1][0]

        results = SimMPI(aurora, 2).run(prog)
        assert results == [1.0, 0.0]

    def test_declared_nbytes_drives_timing(self, aurora):
        def prog(comm):
            if comm.rank == 0:
                comm.Isend(np.zeros(4), 1, nbytes=500_000_000).wait()
                return comm.now
            if comm.rank == 1:
                comm.Irecv(0).wait()
                return comm.now
            return None

        times = SimMPI(aurora, 2).run(prog)
        # 500 MB over the 197 GB/s local pair: ~2.5 ms.
        assert times[1] == pytest.approx(0.5e9 / 197e9, rel=0.05)

    def test_declared_nbytes_smaller_than_payload_rejected(self, aurora):
        def prog(comm):
            if comm.rank == 0:
                comm.Isend(np.zeros(100), 1, nbytes=8)
            return None

        with pytest.raises(MPIError):
            SimMPI(aurora, 2).run(prog)

    def test_tags_demultiplex(self, aurora):
        def prog(comm):
            if comm.rank == 0:
                comm.Isend(np.array([1.0]), 1, tag=1)
                comm.Isend(np.array([2.0]), 1, tag=2)
                return None
            if comm.rank == 1:
                # Receive in reverse tag order.
                b = comm.Irecv(0, tag=2).wait()
                a = comm.Irecv(0, tag=1).wait()
                return (a[0], b[0])
            return None

        results = SimMPI(aurora, 2).run(prog)
        assert results[1] == (1.0, 2.0)

    def test_self_send_rejected(self, aurora):
        def prog(comm):
            comm.Isend(np.zeros(1), comm.rank)

        with pytest.raises(MPIError):
            SimMPI(aurora, 1).run(prog)

    def test_bad_rank_rejected(self, aurora):
        def prog(comm):
            comm.Isend(np.zeros(1), 99)

        with pytest.raises(MPIError):
            SimMPI(aurora, 2).run(prog)

    def test_sendrecv_exchanges(self, aurora):
        def prog(comm):
            peer = 1 - comm.rank
            got = comm.Sendrecv(np.array([float(comm.rank)]), peer)
            return got[0]

        assert SimMPI(aurora, 2).run(prog) == [1.0, 0.0]


class TestVirtualTime:
    def test_advance_accumulates(self, aurora):
        def prog(comm):
            comm.advance(1.5)
            comm.advance(0.5)
            return comm.now

        assert SimMPI(aurora, 1).run(prog) == [2.0]

    def test_advance_rejects_negative(self, aurora):
        def prog(comm):
            comm.advance(-1.0)

        with pytest.raises(MPIError):
            SimMPI(aurora, 1).run(prog)

    def test_recv_waits_for_late_sender(self, aurora):
        def prog(comm):
            if comm.rank == 0:
                comm.advance(5.0)  # sender is busy for 5 s first
                comm.Send(np.zeros(1), 1)
                return comm.now
            out = comm.Recv(source=0)
            assert out is not None
            return comm.now

        times = SimMPI(aurora, 2).run(prog)
        assert times[1] >= 5.0  # receiver clock jumped past the send time

    def test_deterministic_regardless_of_scheduling(self, aurora):
        def prog(comm):
            peer = 1 - comm.rank
            got = comm.Sendrecv(np.full(64, float(comm.rank)), peer)
            comm.advance(0.001 * comm.rank)
            return (comm.now, float(got[0]))

        a = SimMPI(aurora, 2).run(prog)
        for _ in range(3):
            assert SimMPI(aurora, 2).run(prog) == a


class TestCollectives:
    def test_allreduce_sum(self, aurora):
        def prog(comm):
            return comm.Allreduce(np.array([comm.rank + 1.0]), SUM)[0]

        results = SimMPI(aurora, 4).run(prog)
        assert results == [10.0] * 4

    def test_allreduce_max(self, aurora):
        def prog(comm):
            return comm.Allreduce(np.array([float(comm.rank)]), MAX)[0]

        assert SimMPI(aurora, 3).run(prog) == [2.0] * 3

    def test_allreduce_unknown_op(self, aurora):
        def prog(comm):
            comm.Allreduce(np.zeros(1), "median")

        with pytest.raises(MPIError):
            SimMPI(aurora, 2).run(prog)

    def test_bcast(self, aurora):
        def prog(comm):
            data = np.arange(4.0) if comm.rank == 0 else None
            return comm.Bcast(data, root=0)[2]

        assert SimMPI(aurora, 3).run(prog) == [2.0] * 3

    def test_gather_only_root_gets_data(self, aurora):
        def prog(comm):
            out = comm.Gather(np.array([float(comm.rank)]), root=0)
            return None if out is None else [a[0] for a in out]

        results = SimMPI(aurora, 3).run(prog)
        assert results[0] == [0.0, 1.0, 2.0]
        assert results[1] is None

    def test_allgather(self, aurora):
        def prog(comm):
            out = comm.Allgather(np.array([float(comm.rank) * 2]))
            return [a[0] for a in out]

        assert SimMPI(aurora, 3).run(prog) == [[0.0, 2.0, 4.0]] * 3

    def test_barrier_synchronizes_clocks(self, aurora):
        def prog(comm):
            comm.advance(float(comm.rank))
            comm.Barrier()
            return comm.now

        times = SimMPI(aurora, 4).run(prog)
        assert all(t >= 3.0 for t in times)
        assert len(set(times)) == 1

    def test_collectives_in_sequence(self, aurora):
        def prog(comm):
            a = comm.Allreduce(np.array([1.0]))[0]
            comm.Barrier()
            b = comm.Allreduce(np.array([2.0]))[0]
            return (a, b)

        assert SimMPI(aurora, 4).run(prog) == [(4.0, 8.0)] * 4


class TestLauncher:
    def test_default_one_rank_per_stack(self, aurora):
        assert SimMPI(aurora).size == 12

    def test_exception_propagates(self, aurora):
        def prog(comm):
            if comm.rank == 1:
                raise RuntimeError("boom")
            return comm.rank

        with pytest.raises(RuntimeError, match="boom"):
            SimMPI(aurora, 2).run(prog)

    def test_bindings_exposed(self, aurora):
        mpi = SimMPI(aurora, 3)
        assert mpi.bindings[0].cpu_core == 1


class TestFailFastPoisoning:
    """One failing rank must not leave survivors waiting out the watchdog."""

    def test_survivors_fail_fast_not_by_timeout(self, aurora, monkeypatch):
        import time

        import repro.runtime.mpi as mpi_mod

        # A generous watchdog: if poisoning is broken, this test hangs for
        # 30 s; with poisoning the survivors return almost immediately.
        monkeypatch.setattr(mpi_mod, "_TIMEOUT_S", 30.0)

        def prog(comm):
            if comm.rank == 0:
                raise RuntimeError("rank 0 exploded")
            comm.Recv(source=0)  # would block forever without poisoning
            return None

        start = time.monotonic()
        with pytest.raises(RuntimeError, match="exploded"):
            mpi_mod.SimMPI(aurora, 2).run(prog)
        assert time.monotonic() - start < 10.0

    def test_primary_error_carries_failing_rank(self, aurora):
        def prog(comm):
            if comm.rank == 2:
                raise ValueError("culprit")
            comm.Barrier()
            return None

        with pytest.raises(ValueError) as info:
            SimMPI(aurora, 4).run(prog)
        assert info.value.failing_rank == 2

    def test_poisoned_collective_blames_culprit(self, aurora):
        def prog(comm):
            if comm.rank == 1:
                raise RuntimeError("no barrier from me")
            comm.Barrier()
            return None

        with pytest.raises(RuntimeError) as info:
            SimMPI(aurora, 3).run(prog)
        assert info.value.failing_rank == 1


class TestDeadlockPaths:
    def test_tag_mismatch_times_out(self, aurora, monkeypatch):
        import repro.runtime.mpi as mpi_mod

        monkeypatch.setattr(mpi_mod, "_TIMEOUT_S", 0.3)

        def prog(comm):
            if comm.rank == 0:
                comm.Isend(np.zeros(4), 1, tag=7)
            if comm.rank == 1:
                comm.Recv(source=0, tag=8)  # wrong tag: never matches
            return None

        with pytest.raises(MPIError, match="timed out"):
            mpi_mod.SimMPI(aurora, 2).run(prog)

    def test_collective_reentry_mismatch_times_out(self, aurora, monkeypatch):
        import repro.runtime.mpi as mpi_mod

        monkeypatch.setattr(mpi_mod, "_TIMEOUT_S", 0.3)

        def prog(comm):
            comm.Barrier()
            if comm.rank == 0:
                comm.Barrier()  # re-enters; rank 1 never joins
            return None

        with pytest.raises(MPIError, match="timed out"):
            mpi_mod.SimMPI(aurora, 2).run(prog)


class TestInjectedFaults:
    @staticmethod
    def _engine(scenario, seed=0):
        from repro.faults import FaultInjector, build_plan
        from repro.hw.systems import get_system
        from repro.sim.engine import PerfEngine
        from repro.sim.noise import QUIET

        system = get_system("aurora")
        plan = build_plan(scenario, seed, system.node)
        injector = FaultInjector(plan, system.node)
        return PerfEngine(system, noise=QUIET, faults=injector)

    @staticmethod
    def _injector_engine(*events, timeout_s=None):
        from repro.faults import FaultInjector
        from repro.faults.plan import FaultPlan
        from repro.hw.systems import get_system
        from repro.sim.engine import PerfEngine
        from repro.sim.noise import QUIET

        system = get_system("aurora")
        plan = FaultPlan(
            scenario="test", seed=0, events=tuple(events),
            mpi_timeout_s=timeout_s,
        )
        injector = FaultInjector(plan, system.node)
        return PerfEngine(system, noise=QUIET, faults=injector)

    def test_corruption_detected_at_receiver(self):
        from repro.faults.plan import FaultEvent, FaultKind

        engine = self._injector_engine(
            FaultEvent(FaultKind.MPI_CORRUPT, at=1)
        )

        def prog(comm):
            if comm.rank == 0:
                comm.Send(np.arange(16.0), dest=1)
            if comm.rank == 1:
                return comm.Recv(source=0)
            return None

        with pytest.raises(MPIError, match="corruption"):
            SimMPI(engine, 2).run(prog)

    def test_clean_send_after_corruption_window(self):
        from repro.faults.plan import FaultEvent, FaultKind

        engine = self._injector_engine(
            FaultEvent(FaultKind.MPI_CORRUPT, at=1)
        )

        def prog(comm):
            if comm.rank == 0:
                comm.Send(np.arange(16.0), dest=1)
            if comm.rank == 1:
                return comm.Recv(source=0)
            return None

        with pytest.raises(MPIError):
            SimMPI(engine, 2).run(prog)
        # The corruption event fired on send #1; the next job is clean.
        out = SimMPI(engine, 2).run(prog)
        assert np.array_equal(out[1], np.arange(16.0))

    def test_injected_hang_surfaces_as_mpi_error(self):
        from repro.faults.plan import FaultEvent, FaultKind

        engine = self._injector_engine(
            FaultEvent(FaultKind.MPI_HANG, at=1, target=1),
            timeout_s=0.5,
        )

        def prog(comm):
            comm.Barrier()
            return comm.rank

        with pytest.raises(MPIError, match="hung") as info:
            SimMPI(engine, 2).run(prog)
        assert info.value.failing_rank == 1

    def test_hang_timeout_comes_from_plan(self):
        from repro.faults.plan import FaultEvent, FaultKind

        engine = self._injector_engine(
            FaultEvent(FaultKind.MPI_HANG, at=1, target=0),
            timeout_s=0.5,
        )
        assert SimMPI(engine, 2).timeout_s == 0.5
