"""ZE_AFFINITY_MASK semantics."""

import pytest

from repro.errors import AffinityError
from repro.hw.ids import StackRef
from repro.hw.systems import get_system
from repro.runtime.ze import COMPOSITE, FLAT, ZeDriver, parse_affinity_mask


@pytest.fixture(scope="module")
def node():
    return get_system("aurora").node


class TestParse:
    def test_card_entry_expands_both_stacks(self, node):
        assert parse_affinity_mask("0", node) == [StackRef(0, 0), StackRef(0, 1)]

    def test_stack_entry_single(self, node):
        assert parse_affinity_mask("3.1", node) == [StackRef(3, 1)]

    def test_mixed_list_keeps_order(self, node):
        refs = parse_affinity_mask("5.1,0", node)
        assert refs == [StackRef(5, 1), StackRef(0, 0), StackRef(0, 1)]

    def test_duplicates_removed(self, node):
        assert parse_affinity_mask("0.0,0.0", node) == [StackRef(0, 0)]

    @pytest.mark.parametrize("bad", ["9", "0.5", "a.b", "0.0.0", ""])
    def test_malformed_rejected(self, bad, node):
        with pytest.raises(AffinityError):
            parse_affinity_mask(bad, node)


class TestDriver:
    def test_no_mask_sees_everything_flat(self, node):
        driver = ZeDriver(node)
        assert driver.device_count() == 12
        assert driver.devices()[0].stacks == (StackRef(0, 0),)

    def test_mask_renumbers_densely(self, node):
        driver = ZeDriver(node, "4.0,2.1")
        devices = driver.devices()
        assert [d.index for d in devices] == [0, 1]
        assert devices[0].stacks == (StackRef(4, 0),)
        assert devices[1].stacks == (StackRef(2, 1),)

    def test_composite_groups_by_card(self, node):
        driver = ZeDriver(node, "0,1", hierarchy=COMPOSITE)
        devices = driver.devices()
        assert len(devices) == 2
        assert devices[0].n_sub_devices == 2
        assert devices[0].sub_device(1) == StackRef(0, 1)

    def test_composite_partial_card(self, node):
        driver = ZeDriver(node, "0.1", hierarchy=COMPOSITE)
        assert driver.devices()[0].stacks == (StackRef(0, 1),)

    def test_sub_device_out_of_range(self, node):
        dev = ZeDriver(node, "0.0").devices()[0]
        with pytest.raises(AffinityError):
            dev.sub_device(1)

    def test_bad_hierarchy_rejected(self, node):
        with pytest.raises(AffinityError):
            ZeDriver(node, hierarchy="SIDEWAYS")

    def test_h100_has_single_stack_devices(self):
        driver = ZeDriver(get_system("jlse-h100").node)
        assert driver.device_count() == 4
