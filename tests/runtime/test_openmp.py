"""OpenMP target offload facade."""

import numpy as np
import pytest

from repro.dtypes import Precision
from repro.runtime.openmp import OpenMPRuntime
from repro.sim.kernel import fma_chain_kernel, triad_kernel


class TestTargetRegion:
    def test_body_executes(self, aurora):
        rt = OpenMPRuntime(aurora)
        hit = []
        region = rt.target_teams_loop(triad_kernel(1 << 20), lambda: hit.append(1))
        assert hit == [1]
        assert region.kernel_s > 0
        assert region.total_s == region.kernel_s

    def test_map_clauses_add_transfer_time(self, aurora):
        rt = OpenMPRuntime(aurora)
        rt.set_repetition(2)
        region = rt.target_teams_loop(
            triad_kernel(1 << 20),
            map_to_bytes=500e6,
            map_from_bytes=500e6,
        )
        assert region.map_to_s == pytest.approx(500e6 / 54e9, rel=0.05)
        assert region.map_from_s == pytest.approx(500e6 / 53e9, rel=0.05)
        assert region.total_s > region.kernel_s

    def test_kernel_rate_matches_engine(self, aurora):
        rt = OpenMPRuntime(aurora)
        spec = fma_chain_kernel(Precision.FP64, lanes=2**20)
        region = rt.target_teams_loop(spec)
        assert spec.flops / region.kernel_s == pytest.approx(
            aurora.fma_rate(Precision.FP64, 1), rel=0.01
        )

    def test_parallel_for_vectorises(self, aurora):
        rt = OpenMPRuntime(aurora)
        out = np.zeros(8)

        def body(idx):
            out[idx] = idx * 2

        rt.parallel_for(8, body)
        assert np.array_equal(out, np.arange(8) * 2.0)
