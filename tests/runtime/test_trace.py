"""Execution tracing through the telemetry-wired SYCL queues."""

import json

import pytest

from repro.hw.systems import get_system
from repro.sim.engine import PerfEngine
from repro.sim.kernel import triad_kernel
from repro.sim.noise import QUIET
from repro.telemetry import Telemetry, TraceEvent, Tracer


def _engine(telemetry: Telemetry) -> PerfEngine:
    return PerfEngine(get_system("aurora"), noise=QUIET, telemetry=telemetry)


@pytest.fixture()
def traced():
    telemetry = Telemetry()
    engine = _engine(telemetry)
    queue = telemetry.sycl_queue(engine, engine.node.stacks()[0])
    queue.set_repetition(2)
    return telemetry.tracer, queue


class TestTracer:
    def test_records_memcpy_and_kernel(self, traced):
        tracer, queue = traced
        host = queue.malloc_host(1 << 20)
        dev = queue.malloc_device(1 << 20)
        queue.memcpy(dev, host)
        queue.submit(triad_kernel(1 << 20))
        queue.memcpy(host, dev)
        events = tracer.events
        assert len(events) == 3
        assert events[0].category == "transfer"
        assert events[1].category == "kernel"
        assert "stream-triad" in events[1].name

    def test_events_nonoverlapping_in_order(self, traced):
        tracer, queue = traced
        host = queue.malloc_host(1 << 20)
        dev = queue.malloc_device(1 << 20)
        for _ in range(4):
            queue.memcpy(dev, host)
        ends = 0.0
        for e in tracer.events:
            assert e.start_us >= ends
            ends = e.start_us + e.duration_us

    def test_busy_time_and_span(self, traced):
        tracer, queue = traced
        host = queue.malloc_host(1 << 20)
        dev = queue.malloc_device(1 << 20)
        queue.memcpy(dev, host)
        queue.memcpy(host, dev)
        busy = tracer.total_busy_us("gpu 0.0")
        assert busy > 0
        assert tracer.span_us() >= busy * 0.99

    def test_chrome_export_is_valid_json(self, traced):
        tracer, queue = traced
        host = queue.malloc_host(1 << 16)
        dev = queue.malloc_device(1 << 16)
        queue.memcpy(dev, host)
        doc = json.loads(tracer.export_json())
        assert doc["traceEvents"]
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert any(e["name"] == "process_name" for e in meta)
        assert any(
            e["name"] == "thread_name" and e["args"]["name"] == "gpu 0.0"
            for e in meta
        )
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert complete[0]["args"]["nbytes"] == 1 << 16

    def test_multiple_lanes_sorted_by_key(self):
        telemetry = Telemetry()
        engine = _engine(telemetry)
        stacks = engine.node.stacks()
        # Acquire out of order: the export must still sort by sort key.
        q1 = telemetry.sycl_queue(engine, stacks[1])
        q0 = telemetry.sycl_queue(engine, stacks[0])
        q0.submit(triad_kernel(1 << 16))
        q1.submit(triad_kernel(1 << 16))
        tracer = telemetry.tracer
        assert tracer.lanes() == ["run", "gpu 0.0", "gpu 0.1"]
        doc = json.loads(tracer.export_json())
        tids = {e["tid"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert tids == {1, 2}

    def test_rank_and_queue_lanes_interleaved_sort_canonically(self):
        # Ranks and queues registered in scrambled order must export in
        # the canonical order: run, ranks numerically (rank 2 before
        # rank 10, despite "rank 10" < "rank 2" lexically), queues by
        # (card, stack), then the default group (faults).
        from repro.hw.ids import StackRef

        telemetry = Telemetry()
        telemetry.gpu_lane(StackRef(1, 1))
        telemetry.rank_lane(10)
        telemetry.fault_lane()
        telemetry.rank_lane(2)
        telemetry.gpu_lane(StackRef(0, 0))
        assert telemetry.tracer.lanes() == [
            "run", "rank 2", "rank 10", "gpu 0.0", "gpu 1.1", "faults",
        ]

    def test_span_nests_and_covers_children(self):
        tracer = Tracer()
        with tracer.span("outer", lane="run"):
            tracer.complete("child a", "run", duration_us=5.0)
            with tracer.span("inner", lane="run"):
                tracer.complete("child b", "run", duration_us=7.0)
        spans = {e.name: e for e in tracer.events}
        assert spans["inner"].duration_us == pytest.approx(7.0)
        assert spans["outer"].duration_us == pytest.approx(12.0)
        assert spans["outer"].start_us == 0.0

    def test_instant_markers_counted(self):
        tracer = Tracer()
        tracer.instant("device 0.0 lost", "faults", kind="device-loss")
        assert tracer.n_instants() == 1
        assert tracer.n_instants("fault") == 1
        assert tracer.n_instants("other") == 0
        doc = json.loads(tracer.export_json())
        inst = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert inst and inst[0]["s"] == "t"

    def test_export_is_deterministic(self):
        def build() -> str:
            telemetry = Telemetry()
            engine = _engine(telemetry)
            queue = telemetry.sycl_queue(engine, engine.node.stacks()[0])
            queue.set_repetition(1)
            host = queue.malloc_host(1 << 16)
            dev = queue.malloc_device(1 << 16)
            queue.memcpy(dev, host)
            queue.submit(triad_kernel(1 << 16))
            return telemetry.tracer.export_json()

        assert build() == build()

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Tracer().record(
                TraceEvent(name="x", lane="l", start_us=0.0, duration_us=-1.0)
            )

    def test_queue_exposes_usm_and_clock(self, traced):
        _, queue = traced
        alloc = queue.malloc_shared(64)
        assert alloc.nbytes == 64
        assert queue.now_ns >= 0


class TestReportGenerators:
    def test_full_report_mentions_everything(self):
        from repro.analysis.report import full_report

        text = full_report()
        for token in (
            "Table II",
            "Table VI",
            "Figure 2",
            "fp64_flops",
            "minibude",
            "| yes |",
        ):
            assert token in text
        assert "| NO |" not in text  # every claim holds

    def test_table2_markdown_devs_small(self):
        from repro.analysis.report import table2_markdown

        text = table2_markdown()
        rows = [l for l in text.splitlines() if l.startswith("| fp64")]
        assert rows
        for row in rows:
            dev = float(row.split("|")[-2].strip().rstrip("%"))
            assert abs(dev) < 6.0
