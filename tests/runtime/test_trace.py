"""Execution tracing."""

import json

import numpy as np
import pytest

from repro.runtime.sycl import SyclRuntime
from repro.runtime.trace import TracedQueue, TraceEvent, Tracer
from repro.sim.kernel import triad_kernel


@pytest.fixture()
def traced(aurora):
    tracer = Tracer()
    rt = SyclRuntime(aurora)
    q = rt.queue()
    q.set_repetition(2)
    return tracer, TracedQueue(q, tracer, lane="gpu 0.0")


class TestTracer:
    def test_records_memcpy_and_kernel(self, traced):
        tracer, queue = traced
        host = queue.malloc_host(1 << 20)
        dev = queue.malloc_device(1 << 20)
        queue.memcpy(dev, host)
        queue.submit(triad_kernel(1 << 20))
        queue.memcpy(host, dev)
        events = tracer.events
        assert len(events) == 3
        assert events[0].category == "transfer"
        assert events[1].category == "kernel"
        assert "stream-triad" in events[1].name

    def test_events_nonoverlapping_in_order(self, traced):
        tracer, queue = traced
        host = queue.malloc_host(1 << 20)
        dev = queue.malloc_device(1 << 20)
        for _ in range(4):
            queue.memcpy(dev, host)
        ends = 0.0
        for e in tracer.events:
            assert e.start_us >= ends
            ends = e.start_us + e.duration_us

    def test_busy_time_and_span(self, traced):
        tracer, queue = traced
        host = queue.malloc_host(1 << 20)
        dev = queue.malloc_device(1 << 20)
        queue.memcpy(dev, host)
        queue.memcpy(host, dev)
        busy = tracer.total_busy_us("gpu 0.0")
        assert busy > 0
        assert tracer.span_us() >= busy * 0.99

    def test_chrome_export_is_valid_json(self, traced):
        tracer, queue = traced
        host = queue.malloc_host(1 << 16)
        dev = queue.malloc_device(1 << 16)
        queue.memcpy(dev, host)
        doc = json.loads(tracer.export_json())
        assert doc["traceEvents"]
        event = doc["traceEvents"][0]
        assert event["ph"] == "X"
        assert event["args"]["nbytes"] == 1 << 16

    def test_multiple_lanes(self, aurora):
        tracer = Tracer()
        rt = SyclRuntime(aurora)
        q0 = TracedQueue(rt.queue(rt.devices()[0]), tracer, "gpu 0.0")
        q1 = TracedQueue(rt.queue(rt.devices()[1]), tracer, "gpu 0.1")
        q0.submit(triad_kernel(1 << 16))
        q1.submit(triad_kernel(1 << 16))
        assert tracer.lanes() == ["gpu 0.0", "gpu 0.1"]
        doc = json.loads(tracer.export_json())
        tids = {e["tid"] for e in doc["traceEvents"]}
        assert tids == {0, 1}

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Tracer().record(
                TraceEvent(name="x", lane="l", start_us=0.0, duration_us=-1.0)
            )

    def test_wrapper_delegates_unknown_attrs(self, traced):
        _, queue = traced
        alloc = queue.malloc_shared(64)  # passes through to the real queue
        assert alloc.nbytes == 64
        assert queue.now_ns >= 0


class TestReportGenerators:
    def test_full_report_mentions_everything(self):
        from repro.analysis.report import full_report

        text = full_report()
        for token in (
            "Table II",
            "Table VI",
            "Figure 2",
            "fp64_flops",
            "minibude",
            "| yes |",
        ):
            assert token in text
        assert "| NO |" not in text  # every claim holds

    def test_table2_markdown_devs_small(self):
        from repro.analysis.report import table2_markdown

        text = table2_markdown()
        rows = [l for l in text.splitlines() if l.startswith("| fp64")]
        assert rows
        for row in rows:
            dev = float(row.split("|")[-2].strip().rstrip("%"))
            assert abs(dev) < 6.0
