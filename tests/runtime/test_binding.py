"""Rank binding (Section IV-A)."""

import pytest

from repro.errors import ConfigurationError
from repro.hw.ids import StackRef
from repro.hw.systems import get_system
from repro.runtime.binding import explicit_scaling_binding, ranks_per_socket


class TestExplicitScaling:
    def test_rank0_is_core1_stack_0_0(self):
        # "rank 0 is bound to CPU core 1 and PVC 0 Stack 0".
        b = explicit_scaling_binding(get_system("aurora").node)[0]
        assert b.cpu_core == 1
        assert b.stack == StackRef(0, 0)
        assert b.socket == 0

    def test_one_rank_per_stack(self):
        node = get_system("aurora").node
        bindings = explicit_scaling_binding(node)
        assert len(bindings) == 12
        assert [b.stack for b in bindings] == node.stacks()

    def test_socket1_ranks_skip_core_52(self):
        # Aurora reserves cores 0 and 52 for the OS.
        node = get_system("aurora").node
        bindings = explicit_scaling_binding(node)
        socket1 = [b for b in bindings if b.socket == 1]
        assert socket1[0].cpu_core == 53

    def test_cores_unique(self):
        bindings = explicit_scaling_binding(get_system("dawn").node)
        cores = [b.cpu_core for b in bindings]
        assert len(set(cores)) == len(cores)

    def test_ranks_bound_to_closest_socket(self):
        node = get_system("dawn").node
        for b in explicit_scaling_binding(node):
            assert b.socket == node.socket_of(b.stack)

    def test_partial_ranks(self):
        bindings = explicit_scaling_binding(get_system("aurora").node, 2)
        assert len(bindings) == 2
        assert bindings[1].stack == StackRef(0, 1)

    def test_rejects_too_many_ranks(self):
        with pytest.raises(ConfigurationError):
            explicit_scaling_binding(get_system("dawn").node, 9)

    def test_rejects_zero_ranks(self):
        with pytest.raises(ConfigurationError):
            explicit_scaling_binding(get_system("dawn").node, 0)


class TestRanksPerSocket:
    def test_aurora_full_is_6_per_socket(self):
        node = get_system("aurora").node
        counts = ranks_per_socket(explicit_scaling_binding(node), 2)
        assert counts == [6, 6]

    def test_two_ranks_both_on_socket0(self):
        node = get_system("aurora").node
        counts = ranks_per_socket(explicit_scaling_binding(node, 2), 2)
        assert counts == [2, 0]
