"""Toolchain model: per-system compilers + the MI250 Fortran failure."""

import pytest

from repro.errors import BuildError
from repro.hw.systems import get_system
from repro.runtime.toolchain import toolchain_for


class TestToolchains:
    def test_pvc_systems_use_oneapi(self):
        assert "oneAPI" in toolchain_for("aurora").name
        assert "oneAPI" in toolchain_for("dawn").name

    def test_accepts_system_object(self):
        tc = toolchain_for(get_system("jlse-h100"))
        assert tc.c_cxx_compiler == "nvc++"

    def test_unknown_system(self):
        with pytest.raises(BuildError):
            toolchain_for("frontier")


class TestBuilds:
    def test_sycl_builds_everywhere_cpp(self):
        for name in ("aurora", "dawn", "jlse-h100", "jlse-mi250"):
            binary = toolchain_for(name).build("CloverLeaf", "C++", "sycl")
            assert binary.system == name

    def test_fortran_openmp_fails_on_mi250(self):
        # Section V-B.3: GAMESS RI-MP2 "failed to build with the AMD
        # Fortran compiler".
        with pytest.raises(BuildError, match="amdflang"):
            toolchain_for("jlse-mi250").build(
                "GAMESS RI-MP2 mini-app", "Fortran", "OpenMP"
            )

    def test_fortran_openmp_builds_on_intel_and_nvidia(self):
        for name in ("aurora", "dawn", "jlse-h100"):
            binary = toolchain_for(name).build("RI-MP2", "Fortran", "OpenMP")
            assert binary.compiler in ("ifx", "nvfortran")

    def test_binary_records_metadata(self):
        b = toolchain_for("aurora").build("miniBUDE", "C++", "SYCL")
        assert b.app == "miniBUDE"
        assert b.programming_model == "SYCL"
