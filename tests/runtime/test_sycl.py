"""SYCL-like runtime: USM, queues, profiling events."""

import numpy as np
import pytest

from repro.errors import AllocationError
from repro.runtime.sycl import SyclRuntime, UsmKind


@pytest.fixture()
def runtime(aurora):
    return SyclRuntime(aurora)


@pytest.fixture()
def queue(runtime):
    q = runtime.queue()
    q.set_repetition(2)  # skip the warm-up penalty
    return q


class TestDiscovery:
    def test_devices_follow_affinity(self, aurora):
        rt = SyclRuntime(aurora, affinity_mask="1.0,2.1")
        devices = rt.devices()
        assert len(devices) == 2
        assert str(devices[0].ref) == "1.0"

    def test_device_info(self, runtime):
        info = runtime.default_device().info()
        assert info["max_compute_units"] == 56  # Aurora stack
        assert info["global_mem_size"] == 64 * 10**9


class TestUsm:
    def test_malloc_kinds(self, queue):
        assert queue.malloc_host(16).kind is UsmKind.HOST
        assert queue.malloc_device(16).kind is UsmKind.DEVICE
        assert queue.malloc_shared(16).kind is UsmKind.SHARED

    def test_device_alloc_tagged_with_stack(self, queue):
        alloc = queue.malloc_device(16)
        assert alloc.device == queue.device.ref

    def test_rejects_zero_size(self, queue):
        with pytest.raises(AllocationError):
            queue.malloc_host(0)

    def test_rejects_oversized_device_alloc(self, queue):
        with pytest.raises(AllocationError):
            queue.malloc_device(65 * 10**9)

    def test_use_after_free(self, queue):
        alloc = queue.malloc_host(16)
        queue.free(alloc)
        with pytest.raises(AllocationError):
            alloc.view(np.uint8)
        with pytest.raises(AllocationError):
            queue.free(alloc)

    def test_typed_view_roundtrip(self, queue):
        alloc = queue.malloc_host(64)
        alloc.view(np.float64)[:] = np.arange(8)
        assert alloc.view(np.float64)[5] == 5.0


class TestMemcpy:
    def test_h2d_moves_data(self, queue):
        host = queue.malloc_host(1024)
        dev = queue.malloc_device(1024)
        host.buffer[:4] = [1, 2, 3, 4]
        queue.memcpy(dev, host)
        assert list(dev.buffer[:4]) == [1, 2, 3, 4]

    def test_h2d_bandwidth_near_54gb(self, queue):
        host = queue.malloc_host(500_000_000)
        dev = queue.malloc_device(500_000_000)
        ev = queue.memcpy(dev, host)
        bw = 500e6 / ev.duration_s
        assert bw == pytest.approx(54e9, rel=0.05)

    def test_overrun_rejected(self, queue):
        host = queue.malloc_host(16)
        dev = queue.malloc_device(8)
        with pytest.raises(AllocationError):
            queue.memcpy(dev, host, nbytes=16)

    def test_d2d_cross_stack_uses_fabric(self, runtime, aurora):
        q0 = runtime.queue(runtime.devices()[0])
        q1 = runtime.queue(runtime.devices()[1])
        q0.set_repetition(2)
        a = q0.malloc_device(100_000_000)
        b = q1.malloc_device(100_000_000)
        ev = q0.memcpy(b, a)
        bw = 1e8 / ev.duration_s
        # Stacks 0.0 -> 0.1: MDFI at ~197 GB/s.
        assert bw == pytest.approx(197e9, rel=0.05)

    def test_events_are_ordered_and_accumulate(self, queue):
        h = queue.malloc_host(1024)
        d = queue.malloc_device(1024)
        e1 = queue.memcpy(d, h)
        e2 = queue.memcpy(h, d)
        assert e1.end_ns <= e2.start_ns
        assert queue.now_ns == e2.end_ns
        assert len(queue.events) == 2

    def test_profiling_info_keys(self, queue):
        h = queue.malloc_host(64)
        d = queue.malloc_device(64)
        info = queue.memcpy(d, h).profiling_info()
        assert set(info) == {"command_submit", "command_start", "command_end"}


class TestSubmit:
    def test_kernel_runs_functionally(self, queue, aurora):
        from repro.sim.kernel import triad_kernel

        out = {}

        def body():
            out["x"] = 42

        ev = queue.submit(triad_kernel(1 << 20), body)
        assert out["x"] == 42
        assert ev.duration_s > 0

    def test_wait_is_noop_for_inorder(self, queue):
        queue.wait()  # must not raise
