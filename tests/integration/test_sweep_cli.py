"""End-to-end design-space sweeps: the sweep command and the BENCH_3
throughput gate.

Acceptance contract (ISSUE 10): one ``pvc-bench sweep million``
invocation rooflines >= 10^6 points through the batch engine; the
``ci`` sweep beats the scalar golden reference by >= 50x points/s and
``pvc-bench profile sweep`` gates that figure against
``BENCH_3.json``-style baselines.
"""

import json

import pytest

from repro.cli import main
from repro.sweep.spec import get_sweep_spec


def _run(capsys, args):
    rc = main(args)
    captured = capsys.readouterr()
    return rc, captured.out, captured.err


class TestSweepCommand:
    def test_smoke_sweep_writes_artifacts(self, tmp_path, capsys):
        out_dir = tmp_path / "run"
        rc, out, err = _run(
            capsys,
            ["sweep", "smoke", "--dir", str(out_dir), "--ndjson",
             "--verify", "8"],
        )
        assert rc == 0
        assert "# sweep smoke: 72 points" in out
        assert "bit-for-bit OK" in out
        assert "artifacts written" in err
        summary = json.loads((out_dir / "sweep.json").read_text())
        assert summary["points"] == 72
        assert summary["scalar"]["verified"] is True
        assert len((out_dir / "topk.ndjson").read_text().splitlines()) == 16
        assert (
            len((out_dir / "results.ndjson").read_text().splitlines()) == 72
        )

    def test_report_is_deterministic(self, capsys):
        args = ["sweep", "smoke", "--verify", "0", "--top-k", "4"]
        rc1, out1, _ = _run(capsys, args)
        rc2, out2, _ = _run(capsys, args)
        assert rc1 == rc2 == 0
        # The header carries wall-clock; the ranking table must not.
        assert out1.splitlines()[1:] == out2.splitlines()[1:]

    def test_custom_spec_file(self, tmp_path, capsys):
        spec = get_sweep_spec("smoke").to_doc()
        spec["name"] = "mine"
        path = tmp_path / "space.json"
        path.write_text(json.dumps(spec))
        rc, out, _ = _run(
            capsys, ["sweep", str(path), "--verify", "4", "--top-k", "2"]
        )
        assert rc == 0
        assert "# sweep mine" in out

    def test_unknown_spec_fails_cleanly(self, capsys):
        rc = main(["sweep", "enormous"])
        assert rc == 2
        assert "no builtin sweep spec" in capsys.readouterr().err

    def test_chunked_sharded_run_matches_serial(self, tmp_path, capsys):
        serial = tmp_path / "serial"
        forked = tmp_path / "forked"
        base = ["sweep", "smoke", "--ndjson", "--verify", "0",
                "--chunk", "16"]
        assert main(base + ["--dir", str(serial)]) == 0
        assert main(base + ["--dir", str(forked), "--jobs", "3"]) == 0
        capsys.readouterr()
        for name in ("topk.ndjson", "results.ndjson"):
            assert (serial / name).read_bytes() == (forked / name).read_bytes()


class TestProfileSweepGate:
    @pytest.fixture(scope="class")
    def baseline(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("gate") / "BENCH_sweep.json"
        rc = main(["profile", "sweep", "--write-baseline", str(path)])
        assert rc == 0
        return str(path)

    def test_gate_reports_throughput_and_floor(self, capsys):
        rc, out, err = _run(capsys, ["profile", "sweep"])
        assert rc == 0, err
        assert "sweep@ci" in out
        assert "points" in out and "vs scalar" in out

    def test_self_comparison_passes(self, baseline, capsys):
        rc, out, _ = _run(capsys, ["profile", "sweep", "--baseline", baseline])
        assert rc == 0
        assert "regressed" not in out

    def test_committed_bench3_has_the_gate_entry(self):
        import os

        root = os.path.join(os.path.dirname(__file__), "..", "..")
        doc = json.loads(
            open(os.path.join(root, "BENCH_3.json")).read()
        )
        entry = doc["entries"]["sweep@ci"]
        assert entry["points"] == get_sweep_spec("ci").n_points()
        assert entry["batch_speedup"] >= 50.0
        assert entry["verified_sample"] == 64
