"""Failure injection: every guarded error path fires correctly."""

import numpy as np
import pytest

from repro.errors import (
    AffinityError,
    AllocationError,
    BuildError,
    CalibrationError,
    ConfigurationError,
    MPIError,
    NotMeasuredError,
    ReproError,
    TopologyError,
)


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        for exc in (
            AffinityError,
            AllocationError,
            BuildError,
            CalibrationError,
            ConfigurationError,
            MPIError,
            NotMeasuredError,
            TopologyError,
        ):
            assert issubclass(exc, ReproError)

    def test_single_catch_clause_works(self, mi250):
        from repro.miniapps import Rimp2

        with pytest.raises(ReproError):
            Rimp2().fom(mi250, 1)


class TestMpiDeadlockDetection:
    def test_recv_without_send_times_out(self, aurora, monkeypatch):
        import repro.runtime.mpi as mpi_mod

        monkeypatch.setattr(mpi_mod, "_TIMEOUT_S", 0.3)

        def prog(comm):
            if comm.rank == 1:
                comm.Recv(source=0)  # rank 0 never sends
            return None

        with pytest.raises(MPIError, match="timed out"):
            mpi_mod.SimMPI(aurora, 2).run(prog)

    def test_mismatched_collective_times_out(self, aurora, monkeypatch):
        import repro.runtime.mpi as mpi_mod

        monkeypatch.setattr(mpi_mod, "_TIMEOUT_S", 0.3)

        def prog(comm):
            if comm.rank == 0:
                comm.Barrier()  # rank 1 never enters
            return None

        with pytest.raises(MPIError, match="timed out"):
            mpi_mod.SimMPI(aurora, 2).run(prog)


class TestAllocatorFailures:
    def test_oversubscribed_hbm(self, aurora):
        from repro.runtime.sycl import SyclRuntime

        queue = SyclRuntime(aurora).queue()
        with pytest.raises(AllocationError):
            queue.malloc_device(100 * 10**9)  # > 64 GB stack HBM

    def test_double_free_detected(self, aurora):
        from repro.runtime.sycl import SyclRuntime

        queue = SyclRuntime(aurora).queue()
        alloc = queue.malloc_host(64)
        queue.free(alloc)
        with pytest.raises(AllocationError):
            queue.free(alloc)

    def test_memcpy_into_freed_buffer(self, aurora):
        from repro.runtime.sycl import SyclRuntime

        queue = SyclRuntime(aurora).queue()
        a = queue.malloc_host(64)
        b = queue.malloc_host(64)
        queue.free(b)
        with pytest.raises(AllocationError):
            queue.memcpy(b, a)

    def test_timed_nbytes_below_payload(self, aurora):
        from repro.runtime.sycl import SyclRuntime

        queue = SyclRuntime(aurora).queue()
        a = queue.malloc_host(128)
        b = queue.malloc_host(128)
        with pytest.raises(AllocationError):
            queue.memcpy(b, a, timed_nbytes=64)


class TestTopologyFailures:
    def test_route_to_unknown_stack(self, aurora):
        from repro.hw.ids import StackRef

        with pytest.raises(TopologyError):
            aurora.node.fabric.route(StackRef(0, 0), StackRef(9, 0))

    def test_affinity_mask_beyond_node(self, aurora):
        from repro.runtime.ze import ZeDriver

        with pytest.raises(AffinityError):
            ZeDriver(aurora.node, "7.0")


class TestEngineGuards:
    def test_zero_stacks_rejected_everywhere(self, aurora):
        from repro.dtypes import Precision

        for call in (
            lambda: aurora.fma_rate(Precision.FP64, 0),
            lambda: aurora.stream_bw(0),
            lambda: aurora.gemm_rate(Precision.FP64, 0),
            lambda: aurora.fft_rate(1, 0),
        ):
            with pytest.raises(ValueError):
                call()

    def test_oversized_scope_rejected(self, dawn):
        from repro.dtypes import Precision

        with pytest.raises(ValueError):
            dawn.fma_rate(Precision.FP64, 9)  # Dawn has 8 stacks

    def test_fom_scope_validation(self, aurora):
        from repro.miniapps import CloverLeaf

        with pytest.raises(ValueError):
            CloverLeaf().fom(aurora, 0)


class TestDeterminismUnderFailure:
    def test_failed_rank_does_not_corrupt_survivors(self, aurora):
        """A raising rank aborts the job but the error is the rank's own."""
        from repro.runtime.mpi import SimMPI

        def prog(comm):
            if comm.rank == 2:
                raise ValueError("injected")
            return comm.rank

        with pytest.raises(ValueError, match="injected"):
            SimMPI(aurora, 3).run(prog)
