"""Failure injection: every guarded error path fires correctly."""

import numpy as np
import pytest

from repro.errors import (
    AffinityError,
    AllocationError,
    BuildError,
    CalibrationError,
    ConfigurationError,
    MPIError,
    NotMeasuredError,
    ReproError,
    TopologyError,
)


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        for exc in (
            AffinityError,
            AllocationError,
            BuildError,
            CalibrationError,
            ConfigurationError,
            MPIError,
            NotMeasuredError,
            TopologyError,
        ):
            assert issubclass(exc, ReproError)

    def test_single_catch_clause_works(self, mi250):
        from repro.miniapps import Rimp2

        with pytest.raises(ReproError):
            Rimp2().fom(mi250, 1)


class TestMpiDeadlockDetection:
    def test_recv_without_send_times_out(self, aurora, monkeypatch):
        import repro.runtime.mpi as mpi_mod

        monkeypatch.setattr(mpi_mod, "_TIMEOUT_S", 0.3)

        def prog(comm):
            if comm.rank == 1:
                comm.Recv(source=0)  # rank 0 never sends
            return None

        with pytest.raises(MPIError, match="timed out"):
            mpi_mod.SimMPI(aurora, 2).run(prog)

    def test_mismatched_collective_times_out(self, aurora, monkeypatch):
        import repro.runtime.mpi as mpi_mod

        monkeypatch.setattr(mpi_mod, "_TIMEOUT_S", 0.3)

        def prog(comm):
            if comm.rank == 0:
                comm.Barrier()  # rank 1 never enters
            return None

        with pytest.raises(MPIError, match="timed out"):
            mpi_mod.SimMPI(aurora, 2).run(prog)


class TestAllocatorFailures:
    def test_oversubscribed_hbm(self, aurora):
        from repro.runtime.sycl import SyclRuntime

        queue = SyclRuntime(aurora).queue()
        with pytest.raises(AllocationError):
            queue.malloc_device(100 * 10**9)  # > 64 GB stack HBM

    def test_double_free_detected(self, aurora):
        from repro.runtime.sycl import SyclRuntime

        queue = SyclRuntime(aurora).queue()
        alloc = queue.malloc_host(64)
        queue.free(alloc)
        with pytest.raises(AllocationError):
            queue.free(alloc)

    def test_memcpy_into_freed_buffer(self, aurora):
        from repro.runtime.sycl import SyclRuntime

        queue = SyclRuntime(aurora).queue()
        a = queue.malloc_host(64)
        b = queue.malloc_host(64)
        queue.free(b)
        with pytest.raises(AllocationError):
            queue.memcpy(b, a)

    def test_timed_nbytes_below_payload(self, aurora):
        from repro.runtime.sycl import SyclRuntime

        queue = SyclRuntime(aurora).queue()
        a = queue.malloc_host(128)
        b = queue.malloc_host(128)
        with pytest.raises(AllocationError):
            queue.memcpy(b, a, timed_nbytes=64)


class TestTopologyFailures:
    def test_route_to_unknown_stack(self, aurora):
        from repro.hw.ids import StackRef

        with pytest.raises(TopologyError):
            aurora.node.fabric.route(StackRef(0, 0), StackRef(9, 0))

    def test_affinity_mask_beyond_node(self, aurora):
        from repro.runtime.ze import ZeDriver

        with pytest.raises(AffinityError):
            ZeDriver(aurora.node, "7.0")


class TestEngineGuards:
    def test_zero_stacks_rejected_everywhere(self, aurora):
        from repro.dtypes import Precision

        for call in (
            lambda: aurora.fma_rate(Precision.FP64, 0),
            lambda: aurora.stream_bw(0),
            lambda: aurora.gemm_rate(Precision.FP64, 0),
            lambda: aurora.fft_rate(1, 0),
        ):
            with pytest.raises(ValueError):
                call()

    def test_oversized_scope_rejected(self, dawn):
        from repro.dtypes import Precision

        with pytest.raises(ValueError):
            dawn.fma_rate(Precision.FP64, 9)  # Dawn has 8 stacks

    def test_fom_scope_validation(self, aurora):
        from repro.miniapps import CloverLeaf

        with pytest.raises(ValueError):
            CloverLeaf().fom(aurora, 0)


class TestDeterminismUnderFailure:
    def test_failed_rank_does_not_corrupt_survivors(self, aurora):
        """A raising rank aborts the job but the error is the rank's own."""
        from repro.runtime.mpi import SimMPI

        def prog(comm):
            if comm.rank == 2:
                raise ValueError("injected")
            return comm.rank

        with pytest.raises(ValueError, match="injected"):
            SimMPI(aurora, 3).run(prog)


class TestEveryErrorHasACallSite:
    """Each repro.errors subclass fires from at least one real code path."""

    def test_unknown_system(self):
        from repro.errors import UnknownSystemError
        from repro.hw.systems import get_system

        with pytest.raises(UnknownSystemError):
            get_system("cray-1")

    def test_unknown_benchmark(self):
        from repro.core.registry import global_registry
        from repro.errors import UnknownBenchmarkError

        with pytest.raises(UnknownBenchmarkError):
            global_registry().get("linpackzilla")

    def test_missing_calibration(self):
        from repro.sim.calibration import get_calibration

        with pytest.raises(CalibrationError):
            get_calibration("cray-1")

    def test_unknown_scenario(self):
        from repro.errors import ScenarioError
        from repro.faults import ExecutionContext

        with pytest.raises(ScenarioError):
            ExecutionContext("meteor-strike", 0)

    def test_bad_kernel_spec(self):
        from repro.errors import KernelSpecError
        from repro.sim.kernel import KernelSpec

        with pytest.raises(KernelSpecError):
            KernelSpec(name="bad", flops=-1.0)

    def test_not_measured_scope(self, aurora):
        from repro.apps import Hacc

        with pytest.raises(NotMeasuredError):
            Hacc().fom(aurora, 1)

    def test_device_lost(self):
        from repro.errors import DeviceLostError
        from repro.faults import FaultInjector
        from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
        from repro.hw.ids import StackRef
        from repro.hw.systems import get_system
        from repro.runtime.sycl import SyclRuntime
        from repro.sim.engine import PerfEngine
        from repro.sim.noise import QUIET

        system = get_system("dawn")
        events = tuple(
            FaultEvent(FaultKind.DEVICE_LOSS, at=1, target=ref)
            for ref in system.node.stacks()
        )
        injector = FaultInjector(
            FaultPlan(scenario="test", seed=0, events=events), system.node
        )
        injector.fast_forward()
        engine = PerfEngine(system, noise=QUIET, faults=injector)
        with pytest.raises(DeviceLostError):
            SyclRuntime(engine)  # no device enumerates

    def test_transient_kernel_failure(self):
        from repro.errors import TransientKernelError
        from repro.faults import FaultInjector
        from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
        from repro.hw.systems import get_system
        from repro.sim.engine import PerfEngine
        from repro.sim.kernel import KernelSpec
        from repro.sim.noise import QUIET

        system = get_system("aurora")
        injector = FaultInjector(
            FaultPlan(
                scenario="test",
                seed=0,
                events=(FaultEvent(FaultKind.KERNEL_TRANSIENT, at=1),),
            ),
            system.node,
        )
        engine = PerfEngine(system, noise=QUIET, faults=injector)
        spec = KernelSpec(name="k", flops=1e9)
        with pytest.raises(TransientKernelError):
            engine.kernel_time_s(spec)
        engine.kernel_time_s(spec)  # transient: clears on retry

    def test_benchmark_timeout(self):
        from repro.core.resilient import ResiliencePolicy, ResilientRunner
        from repro.core.result import DeviceScope, Measurement
        from repro.core.runner import RunPlan
        from repro.errors import BenchmarkTimeoutError

        runner = ResilientRunner(
            RunPlan(repetitions=2, warmup=0),
            ResiliencePolicy(rep_timeout_s=0.5),
        )
        with pytest.raises(BenchmarkTimeoutError):
            runner.run(
                benchmark="slow",
                system="test",
                scope=DeviceScope("One Stack", 1),
                measure=lambda rep: Measurement(
                    elapsed_s=9.0, work=1.0, unit="B/s"
                ),
            )

    def test_measurement_error_wraps_mid_plan_failure(self):
        from repro.core.result import DeviceScope, Measurement
        from repro.core.runner import Runner, RunPlan
        from repro.errors import MeasurementError

        def measure(rep):
            if rep == 2:
                raise AllocationError("out of device memory")
            return Measurement(elapsed_s=1e-3, work=1.0, unit="B/s")

        with pytest.raises(MeasurementError) as info:
            Runner(RunPlan(repetitions=4, warmup=0)).run(
                benchmark="bench",
                system="sys",
                scope=DeviceScope("One Stack", 1),
                measure=measure,
            )
        err = info.value
        assert err.benchmark == "bench"
        assert err.system == "sys"
        assert err.repetition == 2
        assert len(err.partial) == 2  # the reps that did complete
        assert isinstance(err.__cause__, AllocationError)
