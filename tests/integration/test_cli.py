"""CLI smoke tests (every subcommand)."""

import pytest

from repro.cli import main


class TestCli:
    @pytest.mark.parametrize(
        "command",
        [
            "table1",
            "table3",
            "table4",
            "table5",
            "fig2",
            "claims",
            "systems",
            "roofline",
            "top500",
        ],
    )
    def test_command_runs(self, command, capsys):
        assert main([command]) == 0
        out = capsys.readouterr().out
        assert out.strip()

    def test_table2_prints_paper_rows(self, capsys):
        main(["table2"])
        out = capsys.readouterr().out
        assert "Double Precision Peak Flops" in out
        assert "Aurora (PVC) / Six PVC" in out
        assert "17 TFlop/s" in out

    def test_table6_prints_foms(self, capsys):
        main(["table6"])
        out = capsys.readouterr().out
        assert "miniBUDE" in out and "HACC" in out

    def test_claims_all_pass(self, capsys):
        main(["claims"])
        out = capsys.readouterr().out
        assert "FAIL" not in out

    def test_fig1_prints_series(self, capsys):
        main(["fig1"])
        out = capsys.readouterr().out
        assert "# aurora" in out and "cycles" in out

    def test_fig3_marks_minibude_deviation(self, capsys):
        main(["fig3"])
        out = capsys.readouterr().out
        assert "[deviates]" in out  # miniBUDE beats its expected bar
        assert "[as expected]" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["table9"])


class TestFaultInjectionCli:
    def test_device_loss_degrades_but_completes(self, capsys):
        # Acceptance: the full suite completes, affected cells are marked
        # DEGRADED with provenance, and the exit code is 1 — no traceback.
        assert main(["table2", "--inject", "device-loss", "--seed", "0"]) == 1
        out = capsys.readouterr().out
        assert "DEGRADED" in out
        assert "fault provenance:" in out
        assert "Double Precision Peak Flops" in out  # table still rendered

    def test_injected_run_is_deterministic(self, capsys):
        assert main(["table3", "--inject", "plane-outage", "--seed", "0"]) == 1
        first = capsys.readouterr().out
        assert main(["table3", "--inject", "plane-outage", "--seed", "0"]) == 1
        second = capsys.readouterr().out
        assert first == second

    def test_plane_outage_changes_table3_cells(self, capsys):
        main(["table3"])
        clean = capsys.readouterr().out
        main(["table3", "--inject", "plane-outage", "--seed", "0"])
        faulted = capsys.readouterr().out
        # Values change (rerouted traffic), not just annotations.
        clean_cells = [l.split("*")[0].rstrip() for l in clean.splitlines()]
        faulted_cells = [
            l.split("*")[0].rstrip()
            for l in faulted.splitlines()[: len(clean_cells)]
        ]
        assert clean_cells != faulted_cells

    def test_partition_fails_cells_exit_2(self, capsys):
        assert main(["table3", "--inject", "partition", "--seed", "0"]) == 2
        out = capsys.readouterr().out
        assert "FAILED" in out
        assert "TopologyError" in out

    def test_unknown_scenario_one_line_diagnosis(self, capsys):
        assert main(["table2", "--inject", "meteor-strike"]) == 2
        captured = capsys.readouterr()
        assert "pvc-bench: ScenarioError:" in captured.err
        assert len(captured.err.strip().splitlines()) == 1

    def test_clean_run_unchanged_by_flag_defaults(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "fault provenance" not in out

    def test_health_clean(self, capsys):
        assert main(["health"]) == 0
        out = capsys.readouterr().out
        assert "verdict: HEALTHY" in out

    def test_health_under_injection(self, capsys):
        assert main(["health", "--inject", "device-loss", "--seed", "0"]) == 1
        out = capsys.readouterr().out
        assert "verdict: DEGRADED" in out
        assert "fault history" in out

    def test_inject_ignored_command_warns(self, capsys):
        assert main(["table4", "--inject", "throttle"]) == 0
        captured = capsys.readouterr()
        assert "ignores --inject" in captured.err
