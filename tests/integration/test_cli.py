"""CLI smoke tests (every subcommand)."""

import pytest

from repro.cli import main


class TestCli:
    @pytest.mark.parametrize(
        "command",
        [
            "table1",
            "table3",
            "table4",
            "table5",
            "fig2",
            "claims",
            "systems",
            "roofline",
            "top500",
        ],
    )
    def test_command_runs(self, command, capsys):
        assert main([command]) == 0
        out = capsys.readouterr().out
        assert out.strip()

    def test_table2_prints_paper_rows(self, capsys):
        main(["table2"])
        out = capsys.readouterr().out
        assert "Double Precision Peak Flops" in out
        assert "Aurora (PVC) / Six PVC" in out
        assert "17 TFlop/s" in out

    def test_table6_prints_foms(self, capsys):
        main(["table6"])
        out = capsys.readouterr().out
        assert "miniBUDE" in out and "HACC" in out

    def test_claims_all_pass(self, capsys):
        main(["claims"])
        out = capsys.readouterr().out
        assert "FAIL" not in out

    def test_fig1_prints_series(self, capsys):
        main(["fig1"])
        out = capsys.readouterr().out
        assert "# aurora" in out and "cycles" in out

    def test_fig3_marks_minibude_deviation(self, capsys):
        main(["fig3"])
        out = capsys.readouterr().out
        assert "[deviates]" in out  # miniBUDE beats its expected bar
        assert "[as expected]" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["table9"])
