"""End-to-end scenarios crossing every layer of the stack."""

import numpy as np
import pytest

from repro.dtypes import Precision
from repro.hw.ids import StackRef
from repro.hw.systems import get_system
from repro.miniapps.cloverleaf import EulerSolver2D, exchange_halos, sod_state
from repro.runtime.mpi import SimMPI
from repro.runtime.sycl import SyclRuntime
from repro.sim.engine import PerfEngine
from repro.sim.noise import QUIET


class TestDistributedCloverLeaf:
    """A real weak-scaled hydro run over the simulated MPI fabric."""

    def test_strip_decomposition_matches_serial(self, aurora):
        n, steps = 32, 6
        serial = EulerSolver2D(sod_state(n), boundary="periodic")
        serial_dts = [serial.step() for _ in range(steps)]
        reference = serial.state.u

        n_ranks = 4
        width = n // n_ranks

        def prog(comm):
            # Strip decomposition along x, periodic ring of neighbours.
            lo = comm.rank * width
            local = sod_state(n).u[:, :, lo : lo + width].copy()
            left = (comm.rank - 1) % comm.size
            right = (comm.rank + 1) % comm.size
            for dt in serial_dts:
                halo_l, halo_r = exchange_halos(comm, local, left, right)
                padded = np.concatenate(
                    [halo_l[:, :, None], local, halo_r[:, :, None]], axis=2
                )
                # One global step on the padded strip via a scratch solver
                # (periodic pad already applied; use the serial kernels).
                from repro.miniapps.cloverleaf import EulerState, _hll_flux

                # x half step
                def sweep_x(u, dt):
                    f = _hll_flux(u[:, :, :-1], u[:, :, 1:])
                    return dt * (f[:, :, 1:] - f[:, :, :-1])

                local = local - sweep_x(padded, 0.5 * dt)
                # y full step (local in y; periodic pad in y)
                swapped = local[[0, 2, 1, 3]]
                u_y = np.concatenate(
                    [swapped[:, -1:, :], swapped, swapped[:, :1, :]], axis=1
                )
                f = _hll_flux(u_y[:, :-1, :], u_y[:, 1:, :])
                local = local - (dt * (f[:, 1:, :] - f[:, :-1, :]))[[0, 2, 1, 3]]
                # second x half step with fresh halos
                halo_l, halo_r = exchange_halos(comm, local, left, right)
                padded = np.concatenate(
                    [halo_l[:, :, None], local, halo_r[:, :, None]], axis=2
                )
                local = local - sweep_x(padded, 0.5 * dt)
            return local

        strips = SimMPI(aurora, n_ranks).run(prog)
        distributed = np.concatenate(strips, axis=2)
        assert np.allclose(distributed, reference, atol=1e-10)


class TestSyclPipeline:
    def test_offload_roundtrip_with_compute(self, aurora):
        """H2D -> kernel -> D2H through the SYCL layer, checking both the
        data and the simulated timeline."""
        rt = SyclRuntime(aurora, affinity_mask="2.1")
        q = rt.queue()
        q.set_repetition(1)
        n = 1 << 16
        host_in = q.malloc_host(8 * n)
        host_out = q.malloc_host(8 * n)
        dev_a = q.malloc_device(8 * n)
        host_in.view(np.float64)[:] = np.arange(n)
        e1 = q.memcpy(dev_a, host_in)

        from repro.sim.kernel import triad_kernel

        def body():
            x = dev_a.view(np.float64)
            x *= 2.0

        e2 = q.submit(triad_kernel(8 * n), body)
        e3 = q.memcpy(host_out, dev_a)
        assert np.allclose(host_out.view(np.float64), 2.0 * np.arange(n))
        assert e1.end_ns <= e2.start_ns <= e3.start_ns

    def test_affinity_restricts_devices(self, aurora):
        rt = SyclRuntime(aurora, affinity_mask="0.0,5.1")
        refs = [d.ref for d in rt.devices()]
        assert refs == [StackRef(0, 0), StackRef(5, 1)]


class TestCrossSystemStory:
    """The paper's overall narrative must hold end to end."""

    def test_pvc_single_device_fom_range_vs_h100(self, engines):
        # "the figure-of-merit of the mini-apps on a single PVC ranges
        # from 0.6-1.8X the performance of an H100" (abstract).
        from repro.miniapps import CloverLeaf, MiniBude, MiniQmc, Rimp2

        h100 = engines["jlse-h100"]
        ratios = []
        for system in ("aurora", "dawn"):
            pvc = engines[system]
            for app in (MiniBude(), CloverLeaf(), MiniQmc(), Rimp2()):
                ratios.append(app.fom(pvc, 2) / app.fom(h100, 1))
        assert 0.55 <= min(ratios) <= 0.65
        assert 1.70 <= max(ratios) <= 1.85

    def test_pvc_stack_fom_range_vs_mi250_gcd(self, engines):
        # "... and 0.8-7.5X of a MI250" (abstract; per stack vs GCD,
        # excluding the unbuildable mini-GAMESS).
        from repro.errors import BuildError
        from repro.miniapps import CloverLeaf, MiniBude, MiniQmc, Rimp2

        mi250 = engines["jlse-mi250"]
        ratios = []
        for system in ("aurora", "dawn"):
            pvc = engines[system]
            for app in (MiniBude(), CloverLeaf(), MiniQmc(), Rimp2()):
                try:
                    ratios.append(app.fom(pvc, 1) / app.fom(mi250, 1))
                except BuildError:
                    continue
        assert 0.75 <= min(ratios) <= 0.9
        assert 7.0 <= max(ratios) <= 8.0

    def test_openmc_aurora_1p7x_h100_node(self, engines):
        # Section VI-B.1: "the Aurora 6x PVC node design offering 1.7x the
        # performance of the JLSE 4x H100 node design".
        from repro.apps import OpenMc

        app = OpenMc()
        ratio = app.fom(engines["aurora"]) / app.fom(engines["jlse-h100"])
        assert ratio == pytest.approx(1.7, abs=0.05)

    def test_fresh_engine_matches_session_engine(self):
        fresh = PerfEngine(get_system("aurora"), noise=QUIET)
        assert fresh.fma_rate(Precision.FP64, 1) == pytest.approx(17e12, rel=0.02)
