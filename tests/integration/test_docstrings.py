"""Documentation quality gate: every public item carries a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro

_SKIP_MODULES = {"repro.cli"}  # argparse plumbing


def _public_modules():
    out = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name in _SKIP_MODULES or "._" in info.name:
            continue
        out.append(info.name)
    return sorted(out)


@pytest.mark.parametrize("module_name", _public_modules())
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"
    assert len(module.__doc__.strip()) > 20


@pytest.mark.parametrize("module_name", _public_modules())
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    public = getattr(module, "__all__", None)
    if public is None:
        return
    undocumented = []
    for name in public:
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if obj.__module__ != module_name:
                continue  # re-export; documented at its home
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
    assert not undocumented, f"{module_name}: {undocumented}"


def test_every_package_exports_all():
    missing = []
    for module_name in _public_modules():
        module = importlib.import_module(module_name)
        if module_name.count(".") == 1 and not hasattr(module, "__file__"):
            continue
        if not hasattr(module, "__all__") and not module_name.endswith(
            ("conftest",)
        ):
            # Top-level subpackage __init__s and leaf modules both export.
            if getattr(module, "__package__", "") == module_name:
                continue
            missing.append(module_name)
    # Allow a handful of internal helpers, but the norm is explicit __all__.
    assert len(missing) <= 3, missing
