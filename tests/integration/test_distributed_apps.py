"""Distributed functional drivers over the simulated MPI fabric."""

import numpy as np
import pytest

from repro.apps.openmc import TransportProblem, run_distributed, smr_materials
from repro.miniapps.rimp2 import (
    make_input,
    rimp2_energy,
    rimp2_energy_distributed,
)
from repro.runtime.mpi import SimMPI


class TestDistributedRimp2:
    def test_matches_serial_exactly(self, aurora):
        inp = make_input(n_aux=12, n_occ=6, n_virt=8, seed=2)
        serial = rimp2_energy(inp)
        results = SimMPI(aurora, 4).run(
            lambda comm: rimp2_energy_distributed(comm, inp)
        )
        for value in results:
            assert value == pytest.approx(serial, rel=1e-12)

    def test_rank_count_invariance(self, aurora):
        inp = make_input(n_aux=10, n_occ=5, n_virt=7, seed=7)
        one = SimMPI(aurora, 1).run(
            lambda comm: rimp2_energy_distributed(comm, inp)
        )[0]
        six = SimMPI(aurora, 6).run(
            lambda comm: rimp2_energy_distributed(comm, inp)
        )[0]
        assert one == pytest.approx(six, rel=1e-12)

    def test_more_ranks_than_pairs(self, aurora):
        # 2 occupied orbitals -> 4 pairs over 8 ranks: idle ranks must
        # still participate in the Allreduce.
        inp = make_input(n_aux=8, n_occ=2, n_virt=4, seed=1)
        results = SimMPI(aurora, 8).run(
            lambda comm: rimp2_energy_distributed(comm, inp)
        )
        assert results[0] == pytest.approx(rimp2_energy(inp), rel=1e-12)


class TestDistributedOpenMc:
    @pytest.fixture(scope="class")
    def problem(self):
        return TransportProblem(smr_materials(), nmesh=2)

    def test_all_ranks_agree_after_reduce(self, aurora, problem):
        results = SimMPI(aurora, 4).run(
            lambda comm: run_distributed(comm, problem, 300, seed=11)
        )
        first = results[0]
        for r in results[1:]:
            assert np.array_equal(r.flux, first.flux)
            assert r.collisions == first.collisions

    def test_history_conservation_across_ranks(self, aurora, problem):
        result = SimMPI(aurora, 4).run(
            lambda comm: run_distributed(comm, problem, 250, seed=3)
        )[0]
        assert result.histories == 1000
        assert result.absorptions + result.leaks == result.histories

    def test_reduction_equals_sum_of_rank_runs(self, aurora, problem):
        n_ranks, per_rank, seed = 3, 200, 21
        combined = SimMPI(aurora, n_ranks).run(
            lambda comm: run_distributed(comm, problem, per_rank, seed=seed)
        )[0]
        manual = sum(
            problem.run(per_rank, seed=seed + 1000 * r).collisions
            for r in range(n_ranks)
        )
        assert combined.collisions == manual

    def test_statistics_tighten_with_ranks(self, aurora):
        """More ranks, more histories: k estimate approaches analytic."""
        from repro.apps.openmc import Material

        medium = Material(
            name="m",
            sigma_t=np.array([1.0]),
            sigma_a=np.array([0.4]),
            scatter=np.array([[0.6]]),
            nu_fission=np.array([0.44]),
        )
        problem = TransportProblem(
            (medium,), boundary="reflective", checkerboard=False, nmesh=2
        )
        result = SimMPI(aurora, 8).run(
            lambda comm: run_distributed(comm, problem, 1000, seed=5)
        )[0]
        assert result.k_estimate == pytest.approx(1.1, rel=0.03)
