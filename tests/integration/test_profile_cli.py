"""End-to-end profiling: the profile command, baselines, riders.

Acceptance contract (ISSUE 4): ``pvc-bench profile gemm --system
aurora`` prints deterministic iprof-style tables with roofline
attribution, byte-identical across two same-seed runs; the baseline
comparator exits non-zero on an injected slowdown; ``--profile``
campaign manifests embed profile digests that survive crash/resume
byte-identically.
"""

import json

import pytest

from repro.cli import main

_PROFILE_ARGS = ["profile", "gemm", "--system", "aurora"]


def _run(capsys, args):
    rc = main(args)
    captured = capsys.readouterr()
    return rc, captured.out


class TestProfileCommand:
    def test_report_is_byte_identical_across_runs(self, capsys):
        rc1, out1 = _run(capsys, _PROFILE_ARGS)
        rc2, out2 = _run(capsys, _PROFILE_ARGS)
        assert rc1 == rc2 == 0
        assert out1 == out2

    def test_report_has_iprof_sections_and_attribution(self, capsys):
        _, out = _run(capsys, _PROFILE_ARGS)
        for section in (
            "BACKEND_ZE | Host profiling",
            "BACKEND_SYCL | Host profiling",
            "Device profiling",
            "Explicit memory traffic",
            "Kernel roofline attribution",
        ):
            assert section in out, section
        assert "gemm-fp64" in out
        assert "compute" in out
        assert "Time(%)" in out and "Calls" in out

    def test_unknown_bench_fails_cleanly(self, capsys):
        rc = main(["profile", "hpl"])
        assert rc == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_faulted_profile_degrades_not_crashes(self, capsys):
        rc, out = _run(
            capsys,
            _PROFILE_ARGS + ["--inject", "device-loss", "--seed", "7"],
        )
        assert rc == 1
        assert "Kernel roofline attribution" in out


class TestBaselineGate:
    @pytest.fixture()
    def baseline(self, tmp_path, capsys):
        path = tmp_path / "BENCH_0.json"
        rc = main(_PROFILE_ARGS + ["--write-baseline", str(path)])
        capsys.readouterr()
        assert rc == 0
        return path

    def test_self_comparison_passes(self, baseline, capsys):
        rc, out = _run(capsys, _PROFILE_ARGS + ["--baseline", str(baseline)])
        assert rc == 0
        assert "verdict: OK" in out

    def test_injected_slowdown_exits_nonzero(self, baseline, capsys):
        doc = json.loads(baseline.read_text())
        entry = doc["entries"]["gemm@aurora"]
        entry["fom"] *= 1.10  # pretend the baseline was 10% faster
        baseline.write_text(json.dumps(doc))
        rc, out = _run(capsys, _PROFILE_ARGS + ["--baseline", str(baseline)])
        assert rc == 1
        assert "regressed" in out
        assert "verdict: REGRESSED" in out

    def test_committed_baseline_matches_smoke_set(self, capsys):
        # The repo-root BENCH_0.json is the CI gate; it must stay in
        # sync with the current model constants.
        rc, out = _run(capsys, ["profile", "smoke", "--baseline", "BENCH_0.json"])
        assert rc == 0, out
        assert "verdict: OK" in out


class TestRiders:
    def test_flamegraph_export_is_deterministic(self, tmp_path, capsys):
        a, b = tmp_path / "a.collapsed", tmp_path / "b.collapsed"
        assert main(_PROFILE_ARGS + ["--flamegraph", str(a)]) == 0
        assert main(_PROFILE_ARGS + ["--flamegraph", str(b)]) == 0
        capsys.readouterr()
        body = a.read_text()
        assert body == b.read_text()
        lines = body.splitlines()
        assert lines == sorted(lines)
        assert all(line.startswith("gemm@aurora;") for line in lines)
        assert any("gemm-fp64" in line for line in lines)

    def test_profile_json_out(self, tmp_path, capsys):
        out = tmp_path / "profile.json"
        assert main(_PROFILE_ARGS + ["--out", str(out)]) == 0
        capsys.readouterr()
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro.profiler.profileset/v1"
        prof = doc["profiles"]["gemm@aurora"]
        assert prof["schema"] == "repro.profiler.profile/v1"
        assert prof["api_calls"] > 0
        assert prof["clock_violations"] == 0

    def test_manifest_embeds_profile_digest(self, tmp_path, capsys):
        manifest = tmp_path / "run.json"
        assert main(_PROFILE_ARGS + ["--manifest", str(manifest)]) == 0
        capsys.readouterr()
        doc = json.loads(manifest.read_text())
        assert doc["schema"].startswith("repro.telemetry.manifest/")
        assert doc["profile"]["api_calls"] > 0
        assert len(doc["profile"]["digest"]) == 64

    def test_profile_flag_on_table_command(self, tmp_path, capsys):
        manifest = tmp_path / "run.json"
        rc = main(["table2", "--profile", "--manifest", str(manifest)])
        capsys.readouterr()
        assert rc == 0
        doc = json.loads(manifest.read_text())
        assert "profile" in doc
        assert doc["profile"]["kernels"] > 0

    def test_health_includes_profiler_selfcheck(self, capsys):
        rc, out = _run(capsys, ["health"])
        assert rc == 0
        assert "[ok ] profiler" in out
        assert "[FAIL] profiler" not in out


class TestCampaignProfile:
    def test_crash_resume_manifest_with_profile_digests(
        self, tmp_path, capsys
    ):
        clean = tmp_path / "clean"
        assert main(
            ["campaign", "run", "--dir", str(clean), "--spec", "smoke",
             "--profile"]
        ) == 0
        crash = tmp_path / "crash"
        assert main(
            ["campaign", "run", "--dir", str(crash), "--spec", "smoke",
             "--profile", "--inject", "crash-midrun"]
        ) == 3
        assert main(["campaign", "resume", "--dir", str(crash)]) == 0
        capsys.readouterr()
        a = (clean / "manifest.json").read_bytes()
        b = (crash / "manifest.json").read_bytes()
        assert a == b
        doc = json.loads(a)
        assert doc["campaign"]["profile"] is True
        digests = [
            u["profile_digest"]
            for u in doc["campaign"]["units"]
            if "profile_digest" in u
        ]
        assert digests, "no unit embedded a profile digest"
        assert all(len(d) == 64 for d in digests)

    def test_unprofiled_campaign_has_no_digests(self, tmp_path, capsys):
        out = tmp_path / "plain"
        assert main(
            ["campaign", "run", "--dir", str(out), "--spec", "smoke"]
        ) == 0
        capsys.readouterr()
        doc = json.loads((out / "manifest.json").read_text())
        assert doc["campaign"]["profile"] is False
        assert all(
            "profile_digest" not in u for u in doc["campaign"]["units"]
        )
