"""``pvc-bench campaign`` end-to-end: exit-code taxonomy and artifacts."""

import json

import pytest

from repro.cli import main


def _run(*argv):
    return main(list(argv))


class TestCampaignRun:
    def test_clean_smoke_campaign(self, tmp_path, capsys):
        d = str(tmp_path / "c")
        assert _run("campaign", "run", "--dir", d, "--spec", "smoke") == 0
        assert (tmp_path / "c" / "tables" / "table3.txt").exists()
        assert (tmp_path / "c" / "tables" / "summary.txt").exists()
        assert (tmp_path / "c" / "journal.jsonl").exists()

    def test_campaign_table_matches_cli_table(self, tmp_path, capsys):
        d = str(tmp_path / "c")
        _run("campaign", "run", "--dir", d, "--spec", "smoke")
        capsys.readouterr()
        assert _run("table3") == 0
        stdout = capsys.readouterr().out
        artifact = (tmp_path / "c" / "tables" / "table3.txt").read_text()
        assert artifact == stdout

    def test_manifest_has_campaign_section(self, tmp_path):
        d = str(tmp_path / "c")
        _run("campaign", "run", "--dir", d, "--spec", "smoke")
        doc = json.loads((tmp_path / "c" / "manifest.json").read_text())
        campaign = doc["campaign"]
        assert campaign["spec"] == "smoke"
        assert [u["id"] for u in campaign["units"]] == [
            "table3:aurora",
            "table3:dawn",
            "table3:render",
            "campaign:summary",
        ]
        assert all(len(u["digest"]) == 64 for u in campaign["units"])
        assert doc["config"]["systems"] == ["aurora", "dawn"]

    def test_run_without_dir_fails_unhealthy(self, capsys):
        assert _run("campaign", "run") == 2
        assert "--dir" in capsys.readouterr().err

    def test_unknown_action_fails_unhealthy(self, tmp_path, capsys):
        assert _run("campaign", "dance", "--dir", str(tmp_path)) == 2

    def test_unknown_scenario_fails_unhealthy(self, tmp_path, capsys):
        rc = _run(
            "campaign", "run", "--dir", str(tmp_path / "c"),
            "--spec", "smoke", "--inject", "nope",
        )
        assert rc == 2
        assert "nope" in capsys.readouterr().err

    def test_rerun_in_same_dir_suggests_resume(self, tmp_path, capsys):
        d = str(tmp_path / "c")
        _run("campaign", "run", "--dir", d, "--spec", "smoke")
        assert _run("campaign", "run", "--dir", d, "--spec", "smoke") == 2
        assert "resume" in capsys.readouterr().err


class TestCrashResume:
    def test_crash_midrun_exits_3_then_resume_completes(self, tmp_path, capsys):
        d = str(tmp_path / "c")
        rc = _run(
            "campaign", "run", "--dir", d, "--spec", "smoke",
            "--inject", "crash-midrun",
        )
        assert rc == 3
        assert not (tmp_path / "c" / "manifest.json").exists()
        assert _run("campaign", "resume", "--dir", d) == 0
        assert (tmp_path / "c" / "manifest.json").exists()

    def test_resumed_artifacts_match_uninterrupted_run(self, tmp_path):
        clean, crash = str(tmp_path / "clean"), str(tmp_path / "crash")
        assert _run("campaign", "run", "--dir", clean, "--spec", "smoke") == 0
        _run(
            "campaign", "run", "--dir", crash, "--spec", "smoke",
            "--inject", "crash-midrun",
        )
        assert _run("campaign", "resume", "--dir", crash) == 0
        for name in ("tables/table3.txt", "tables/summary.txt", "manifest.json"):
            assert (tmp_path / "clean" / name).read_bytes() == (
                tmp_path / "crash" / name
            ).read_bytes(), name

    def test_journal_truncate_verify_exits_4_then_resume_heals(
        self, tmp_path, capsys
    ):
        d = str(tmp_path / "c")
        rc = _run(
            "campaign", "run", "--dir", d, "--spec", "smoke",
            "--inject", "journal-truncate",
        )
        assert rc == 3
        assert _run("campaign", "verify", "--dir", d) == 4
        assert "corrupt" in capsys.readouterr().out
        assert _run("campaign", "resume", "--dir", d) == 0
        assert _run("campaign", "verify", "--dir", d) == 0

    def test_resume_without_campaign_fails_unhealthy(self, tmp_path, capsys):
        assert _run("campaign", "resume", "--dir", str(tmp_path / "x")) == 2


class TestStatusAndVerify:
    def test_status_reports_pending_units(self, tmp_path, capsys):
        d = str(tmp_path / "c")
        _run(
            "campaign", "run", "--dir", d, "--spec", "smoke",
            "--inject", "crash-midrun",
        )
        capsys.readouterr()
        assert _run("campaign", "status", "--dir", d) == 0
        out = capsys.readouterr().out
        assert "pending" in out
        assert "campaign incomplete" in out

    def test_verify_incomplete_exits_3(self, tmp_path, capsys):
        d = str(tmp_path / "c")
        _run(
            "campaign", "run", "--dir", d, "--spec", "smoke",
            "--inject", "crash-midrun",
        )
        assert _run("campaign", "verify", "--dir", d) == 3

    def test_verify_complete_exits_0(self, tmp_path, capsys):
        d = str(tmp_path / "c")
        _run("campaign", "run", "--dir", d, "--spec", "smoke")
        assert _run("campaign", "verify", "--dir", d) == 0
        assert "complete and verified" in capsys.readouterr().out


class TestSupervisionFlags:
    def test_deadline_exits_resumable(self, tmp_path, capsys):
        d = str(tmp_path / "c")
        rc = _run(
            "campaign", "run", "--dir", d, "--spec", "smoke",
            "--deadline", "1e-9",
        )
        assert rc == 3
        assert _run("campaign", "resume", "--dir", d) == 0

    def test_unit_timeout_demotes_units(self, tmp_path, capsys):
        d = str(tmp_path / "c")
        rc = _run(
            "campaign", "run", "--dir", d, "--spec", "smoke",
            "--unit-timeout", "1e-12",
        )
        assert rc == 2
        summary = (tmp_path / "c" / "tables" / "summary.txt").read_text()
        assert "FAILED" in summary


def _tree(directory):
    import os

    out = {}
    for root, _, files in os.walk(directory):
        for name in files:
            if name == "live.ndjson":  # wall-clock stream, never compared
                continue
            full = os.path.join(root, name)
            with open(full, "rb") as fh:
                out[os.path.relpath(full, directory)] = fh.read()
    return out


class TestWorkerScenarios:
    """The process-level chaos scenarios, driven through the CLI."""

    def _serial(self, tmp_path):
        d = tmp_path / "serial"
        assert _run("campaign", "run", "--dir", str(d), "--spec", "smoke") == 0
        return _tree(d)

    def test_worker_kill_heals_byte_identically(self, tmp_path):
        golden = self._serial(tmp_path)
        d = tmp_path / "chaos"
        rc = _run(
            "campaign", "run", "--dir", str(d), "--spec", "smoke",
            "--inject", "worker-kill", "--seed", "0", "--jobs", "2",
        )
        assert rc == 0
        assert _tree(d) == golden

    def test_worker_hang_with_timeout_heals(self, tmp_path):
        golden = self._serial(tmp_path)
        d = tmp_path / "chaos"
        rc = _run(
            "campaign", "run", "--dir", str(d), "--spec", "smoke",
            "--inject", "worker-hang", "--seed", "0", "--jobs", "2",
            "--hang-timeout", "1",
        )
        assert rc == 0
        assert _tree(d) == golden

    def test_io_enospc_is_transparent(self, tmp_path):
        golden = self._serial(tmp_path)
        d = tmp_path / "chaos"
        rc = _run(
            "campaign", "run", "--dir", str(d), "--spec", "smoke",
            "--inject", "io-enospc", "--seed", "0",
        )
        assert rc == 0
        assert _tree(d) == golden

    def test_worker_poison_quarantines_and_status_reports(
        self, tmp_path, capsys
    ):
        d = str(tmp_path / "c")
        rc = _run(
            "campaign", "run", "--dir", d, "--spec", "smoke",
            "--inject", "worker-poison", "--seed", "0", "--jobs", "2",
        )
        assert rc == 2
        capsys.readouterr()
        assert _run("campaign", "status", "--dir", d) == 0
        out = capsys.readouterr().out
        assert "QUARANTINED" in out
        assert "-9" in out  # SIGKILL provenance surfaces to the operator

    def test_exhausted_respawn_budget_degrades_but_completes(self, tmp_path):
        d = tmp_path / "c"
        rc = _run(
            "campaign", "run", "--dir", str(d), "--spec", "smoke",
            "--inject", "worker-poison", "--seed", "0", "--jobs", "2",
            "--max-respawns", "0",
        )
        # The in-process drain is fault-free, so the campaign finishes
        # cleanly; only the manifest records the degradation.
        assert rc == 0
        doc = json.loads((d / "manifest.json").read_text())
        supervision = doc["campaign"]["supervision"]
        assert supervision["degraded"] is True
        metrics = doc["campaign"]["metrics"]
        assert metrics["scheduler.degraded"]["samples"][0]["value"] == 1.0

    def test_error_lists_worker_scenarios(self, tmp_path, capsys):
        rc = _run(
            "campaign", "run", "--dir", str(tmp_path / "c"),
            "--spec", "smoke", "--inject", "nope",
        )
        assert rc == 2
        err = capsys.readouterr().err
        assert "worker-kill" in err and "worker-poison" in err
