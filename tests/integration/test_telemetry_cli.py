"""End-to-end telemetry: trace/metrics CLI, manifests, golden schema.

The acceptance contract: ``pvc-bench trace gemm --inject device-loss
--seed 7 --out t.json`` run twice produces byte-identical
Perfetto-loadable output showing the injected fault as an instant event
on the dead stack's lane, retry spans on the run lane, and a per-queue
kernel timeline; ``pvc-bench metrics`` on the same run emits Prometheus
text with ``retry_count`` > 0.
"""

import json

import pytest

from repro.cli import main

_TRACE_ARGS = ["trace", "gemm", "--inject", "device-loss", "--seed", "7"]


def _thread_names(events: list[dict]) -> dict[int, str]:
    return {
        e["tid"]: e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "thread_name"
    }


class TestTraceCommand:
    @pytest.fixture(scope="class")
    def trace_doc(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("trace") / "t.json"
        rc = main(_TRACE_ARGS + ["--out", str(out)])
        assert rc == 1  # device loss absorbed -> DEGRADED contract
        return json.loads(out.read_text())

    def test_byte_identical_across_runs(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(_TRACE_ARGS + ["--out", str(a)]) == 1
        assert main(_TRACE_ARGS + ["--out", str(b)]) == 1
        assert a.read_bytes() == b.read_bytes()

    def test_schema_is_perfetto_loadable(self, trace_doc):
        assert trace_doc["displayTimeUnit"] == "ms"
        events = trace_doc["traceEvents"]
        assert events[0]["name"] == "process_name"
        for e in events:
            assert e["ph"] in ("M", "X", "i")
            assert e["pid"] == 0
            if e["ph"] == "X":
                assert e["dur"] >= 0 and e["ts"] >= 0
            if e["ph"] == "i":
                assert e["s"] == "t"

    def test_injected_loss_on_the_dead_stacks_lane(self, trace_doc):
        events = trace_doc["traceEvents"]
        names = _thread_names(events)
        losses = [
            e
            for e in events
            if e["ph"] == "i" and e["args"].get("kind") == "device-loss"
        ]
        assert losses
        for loss in losses:
            # "device C.S lost" must sit on lane "gpu C.S".
            ref = loss["name"].split()[1]
            assert names[loss["tid"]] == f"gpu {ref}"

    def test_retry_spans_on_run_lane(self, trace_doc):
        events = trace_doc["traceEvents"]
        names = _thread_names(events)
        retries = [
            e for e in events if e["ph"] == "X" and e["cat"] == "retry"
        ]
        assert retries
        assert all(names[e["tid"]] == "run" for e in retries)

    def test_per_queue_kernel_timeline(self, trace_doc):
        events = trace_doc["traceEvents"]
        names = _thread_names(events)
        kernel_lanes = {
            names[e["tid"]]
            for e in events
            if e["ph"] == "X" and e["cat"] == "kernel"
        }
        # Every stack of the full-node scope contributes a timeline.
        assert len([l for l in kernel_lanes if l.startswith("gpu ")]) >= 11

    def test_stdout_mode_prints_json(self, capsys):
        rc = main(["trace", "triad", "--seed", "0"])
        assert rc == 0
        out = capsys.readouterr().out
        doc = json.loads(out)
        assert doc["traceEvents"]

    def test_unknown_bench_rejected(self, capsys):
        assert main(["trace", "nope"]) == 2
        assert "nope" in capsys.readouterr().err


class TestMetricsCommand:
    def test_prometheus_text_with_retries(self, capsys):
        rc = main(["metrics", "gemm", "--inject", "device-loss", "--seed", "7"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "# TYPE retry_count counter" in out
        retry_total = sum(
            float(line.split()[-1])
            for line in out.splitlines()
            if line.startswith("retry_count")
        )
        assert retry_total > 0
        assert "# TYPE fault_count counter" in out
        assert "kernel_flops" in out
        assert "# TYPE kernel_time_us histogram" in out

    def test_clean_run_exposes_zero_counters(self, capsys):
        rc = main(["metrics", "triad", "--seed", "0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "retry_count 0" in out
        assert "quarantine_count 0" in out
        assert "kernel_occupancy" in out
        assert "roofline_regime" in out

    def test_simcache_and_scheduler_counters_always_exported(self, capsys):
        # Dashboards alert on missing series, so the sim-cache and
        # scheduler supervision counters must always appear, even in a
        # run that never exercised them.
        rc = main(["metrics", "triad", "--seed", "0"])
        assert rc == 0
        out = capsys.readouterr().out
        for family in (
            "simcache_hit",
            "simcache_miss",
            "simcache_bypass",
            "worker_respawns",
            "unit_quarantined",
            "scheduler_degraded",
        ):
            assert f"# TYPE {family} counter" in out, f"missing: {family}"
        # A single-process bench run touches the sim cache but never the
        # campaign supervisor: those counters surface at literal zero.
        for series in (
            "simcache_bypass 0",
            "worker_respawns 0",
            "unit_quarantined 0",
            "scheduler_degraded 0",
        ):
            assert series in out, f"missing zero-valued series: {series}"
        # The cache itself was genuinely exercised by the run.
        hit_lines = [
            line for line in out.splitlines()
            if line.startswith("simcache_hit ")
        ]
        assert hit_lines and float(hit_lines[0].split()[-1]) > 0

    def test_metric_names_and_labels_are_sorted(self, capsys):
        # The scrape is byte-deterministic: metric families in sorted
        # order, and every label set sorted by key.
        rc = main(["metrics", "gemm", "--inject", "device-loss", "--seed", "7"])
        assert rc == 1
        out = capsys.readouterr().out
        families = [
            line.split()[2]
            for line in out.splitlines()
            if line.startswith("# TYPE ")
        ]
        assert families == sorted(families)
        for line in out.splitlines():
            if line.startswith("#") or "{" not in line:
                continue
            labels = line[line.index("{") + 1 : line.rindex("}")]
            keys = [
                part.split("=", 1)[0]
                for part in labels.split(",")
                if part
            ]
            assert keys == sorted(keys), f"unsorted labels in: {line}"


class TestManifestFlag:
    def test_trace_with_manifest(self, tmp_path):
        out = tmp_path / "t.json"
        manifest = tmp_path / "run.json"
        rc = main(
            _TRACE_ARGS + ["--out", str(out), "--manifest", str(manifest)]
        )
        assert rc == 1
        doc = json.loads(manifest.read_text())
        assert doc["command"] == "trace"
        assert doc["config"]["scenario"] == "device-loss"
        assert doc["config"]["seed"] == 7
        assert doc["status"]["exit_code"] == 1
        assert doc["trace_files"] == [str(out)]
        assert doc["metrics"]["retry.count"]["samples"]

    def test_table_command_with_manifest(self, tmp_path, capsys):
        manifest = tmp_path / "run.json"
        rc = main(["table2", "--manifest", str(manifest)])
        assert rc == 0
        doc = json.loads(manifest.read_text())
        assert doc["command"] == "table2"
        assert doc["config"]["scenario"] is None
        assert doc["telemetry"]["enabled"] is True


class TestHealthSummary:
    def test_health_prints_telemetry_line(self, capsys):
        assert main(["health"]) == 0
        out = capsys.readouterr().out
        assert "telemetry:" in out
        assert "span(s)" in out

    def test_health_under_injection_reports_faults(self, capsys):
        rc = main(["health", "--inject", "device-loss", "--seed", "7"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "telemetry:" in out

    def test_health_includes_scheduler_selfcheck(self, capsys):
        rc = main(["health"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "[ok ] scheduler" in out
        assert "[FAIL] scheduler" not in out
        # The selfcheck provably kills a worker and proves clean reaping.
        assert "scheduler.respawn" in out
        assert "scheduler.no-leaked-children" in out
