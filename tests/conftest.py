"""Shared fixtures: one quiet engine per system, reused session-wide."""

from __future__ import annotations

import pytest

from repro.hw.systems import get_system
from repro.sim.engine import PerfEngine
from repro.sim.noise import QUIET


@pytest.fixture(scope="session")
def aurora() -> PerfEngine:
    return PerfEngine(get_system("aurora"), noise=QUIET)


@pytest.fixture(scope="session")
def dawn() -> PerfEngine:
    return PerfEngine(get_system("dawn"), noise=QUIET)


@pytest.fixture(scope="session")
def h100() -> PerfEngine:
    return PerfEngine(get_system("jlse-h100"), noise=QUIET)


@pytest.fixture(scope="session")
def mi250() -> PerfEngine:
    return PerfEngine(get_system("jlse-mi250"), noise=QUIET)


@pytest.fixture(scope="session")
def engines(aurora, dawn, h100, mi250) -> dict[str, PerfEngine]:
    return {
        "aurora": aurora,
        "dawn": dawn,
        "jlse-h100": h100,
        "jlse-mi250": mi250,
    }


@pytest.fixture()
def noisy_aurora() -> PerfEngine:
    """An engine with the default (non-quiet) noise model."""
    return PerfEngine(get_system("aurora"))
