"""Measurement protocol containers."""

import pytest

from repro.core.result import (
    BenchmarkResult,
    DeviceScope,
    Measurement,
    ResultTable,
    SampleSet,
)
from repro.core.units import Quantity


class TestMeasurement:
    def test_rate(self):
        m = Measurement(elapsed_s=2.0, work=10.0, unit="Flop/s")
        assert m.rate == pytest.approx(5.0)

    def test_rejects_zero_elapsed(self):
        with pytest.raises(ValueError):
            Measurement(elapsed_s=0.0, work=1.0)

    def test_rejects_negative_work(self):
        with pytest.raises(ValueError):
            Measurement(elapsed_s=1.0, work=-1.0)

    def test_as_quantity(self):
        m = Measurement(elapsed_s=1.0, work=17e12, unit="Flop/s")
        assert str(m.as_quantity()) == "17 TFlop/s"


class TestSampleSet:
    def _samples(self):
        return SampleSet(
            [
                Measurement(elapsed_s=1.2, work=10.0),
                Measurement(elapsed_s=1.0, work=10.0),  # best
                Measurement(elapsed_s=1.5, work=10.0),  # worst
            ]
        )

    def test_best_is_highest_rate(self):
        assert self._samples().best.elapsed_s == pytest.approx(1.0)

    def test_worst(self):
        assert self._samples().worst.elapsed_s == pytest.approx(1.5)

    def test_median(self):
        assert self._samples().median_rate == pytest.approx(10.0 / 1.2)

    def test_spread_nonnegative(self):
        assert 0.0 <= self._samples().spread < 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            _ = SampleSet().best

    def test_add_and_len(self):
        s = SampleSet()
        s.add(Measurement(elapsed_s=1.0, work=1.0))
        assert len(s) == 1


class TestDeviceScope:
    def test_rejects_zero_stacks(self):
        with pytest.raises(ValueError):
            DeviceScope("bad", 0)

    def test_str(self):
        assert str(DeviceScope("One PVC", 2)) == "One PVC"


class TestBenchmarkResult:
    def test_quantity_uses_best(self):
        samples = SampleSet(
            [
                Measurement(elapsed_s=2.0, work=10.0, unit="B/s"),
                Measurement(elapsed_s=1.0, work=10.0, unit="B/s"),
            ]
        )
        result = BenchmarkResult(
            benchmark="x",
            system="aurora",
            scope=DeviceScope("One Stack", 1),
            samples=samples,
        )
        assert result.value == pytest.approx(10.0)
        assert "aurora" in result.describe()


class TestResultTable:
    def test_render_has_dash_for_none(self):
        t = ResultTable("T")
        t.set("row", "colA", Quantity(1e12, "Flop/s"))
        t.set("row", "colB", None)
        rendered = t.render()
        assert "1 TFlop/s" in rendered
        assert "-" in rendered

    def test_row_column_order_preserved(self):
        t = ResultTable("T")
        t.set("r2", "c1", None)
        t.set("r1", "c2", None)
        assert t.rows == ["r2", "r1"]
        assert t.columns == ["c1", "c2"]

    def test_get_roundtrip(self):
        t = ResultTable("T")
        q = Quantity(5.0, "B/s")
        t.set("r", "c", q)
        assert t.get("r", "c") == q
