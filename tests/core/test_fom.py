"""Table V FOM specifications."""

from repro.core.fom import FOM_SPECS, Bound


class TestFomSpecs:
    def test_all_six_apps_present(self):
        assert set(FOM_SPECS) == {
            "minibude",
            "cloverleaf",
            "miniqmc",
            "rimp2",
            "openmc",
            "hacc",
        }

    def test_bounds_match_table_v(self):
        assert FOM_SPECS["minibude"].bound is Bound.FP32_FLOPS
        assert FOM_SPECS["cloverleaf"].bound is Bound.MEMORY_BW
        assert FOM_SPECS["rimp2"].bound is Bound.DGEMM
        assert FOM_SPECS["openmc"].bound is Bound.MEMORY_LATENCY
        assert FOM_SPECS["hacc"].bound is Bound.CPU_BW_FP32
        assert FOM_SPECS["miniqmc"].bound is Bound.MIXED_CPU

    def test_languages(self):
        assert FOM_SPECS["rimp2"].language == "Fortran"
        assert FOM_SPECS["cloverleaf"].language == "C++"

    def test_describe_mentions_formula(self):
        text = FOM_SPECS["miniqmc"].describe()
        assert "N_w" in text and "diffusion" in text

    def test_scaling_modes(self):
        assert FOM_SPECS["rimp2"].scaling.value == "Strong"
        assert FOM_SPECS["cloverleaf"].scaling.value == "Weak"
        assert FOM_SPECS["minibude"].scaling.value == "N/A"
