"""Repeat-and-take-best protocol."""

import pytest

from repro.core.result import DeviceScope, Measurement
from repro.core.runner import RunPlan, Runner


class TestRunPlan:
    def test_defaults(self):
        plan = RunPlan()
        assert plan.repetitions >= 1

    def test_rejects_zero_reps(self):
        with pytest.raises(ValueError):
            RunPlan(repetitions=0)

    def test_rejects_negative_warmup(self):
        with pytest.raises(ValueError):
            RunPlan(warmup=-1)


class TestRunner:
    def test_warmup_discarded(self):
        seen = []

        def measure(rep):
            seen.append(rep)
            # Repetition 0 is artificially slow (warm-up).
            elapsed = 10.0 if rep == 0 else 1.0 + 0.01 * rep
            return Measurement(elapsed_s=elapsed, work=1.0)

        result = Runner(RunPlan(repetitions=4, warmup=1)).run(
            "bench", "sys", DeviceScope("One Stack", 1), measure
        )
        assert seen == [0, 1, 2, 3, 4]
        assert len(result.samples) == 4
        # Warm-up sample (rate 0.1) must not be in the set.
        assert result.samples.worst.rate > 0.5

    def test_best_of_n_converges_to_fastest(self):
        def measure(rep):
            return Measurement(elapsed_s=1.0 + (rep % 3) * 0.5, work=1.0)

        result = Runner(RunPlan(repetitions=6, warmup=0)).run(
            "bench", "sys", DeviceScope("One Stack", 1), measure
        )
        assert result.best.elapsed_s == pytest.approx(1.0)

    def test_params_recorded(self):
        result = Runner(RunPlan(repetitions=1, warmup=0)).run(
            "bench",
            "sys",
            DeviceScope("One Stack", 1),
            lambda rep: Measurement(elapsed_s=1.0, work=1.0),
            params={"dtype": "fp64"},
        )
        assert result.params["dtype"] == "fp64"
