"""Statistics helpers."""

import numpy as np
import pytest

from repro.core.result import Measurement, SampleSet
from repro.core.stats import (
    bootstrap_ci,
    geometric_mean,
    harmonic_mean,
    sample_set_ci,
    speedup_summary,
)


class TestMeans:
    def test_geometric_mean_of_reciprocal_ratios_is_one(self):
        # The defining property: speedup and slowdown cancel.
        assert geometric_mean([2.0, 0.5]) == pytest.approx(1.0)

    def test_geometric_mean_known(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_harmonic_mean_of_rates(self):
        # Half the work at 60, half at 30 -> overall 40 (classic).
        assert harmonic_mean([60.0, 30.0]) == pytest.approx(40.0)

    def test_ordering(self):
        vals = [1.0, 2.0, 8.0]
        assert harmonic_mean(vals) < geometric_mean(vals) < np.mean(vals)

    @pytest.mark.parametrize("fn", [geometric_mean, harmonic_mean])
    def test_rejects_empty_and_nonpositive(self, fn):
        with pytest.raises(ValueError):
            fn([])
        with pytest.raises(ValueError):
            fn([1.0, -1.0])


class TestBootstrap:
    def test_ci_contains_true_mean_for_clean_data(self):
        rng = np.random.default_rng(0)
        data = rng.normal(10.0, 1.0, 40)
        ci = bootstrap_ci(data)
        assert 10.0 in ci
        assert ci.low < ci.point < ci.high

    def test_ci_narrows_with_samples(self):
        rng = np.random.default_rng(1)
        small = bootstrap_ci(rng.normal(5, 1, 10), seed=2)
        large = bootstrap_ci(rng.normal(5, 1, 200), seed=2)
        assert large.half_width < small.half_width

    def test_deterministic_given_seed(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert bootstrap_ci(data, seed=7) == bootstrap_ci(data, seed=7)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], confidence=1.5)

    def test_sample_set_ci(self):
        samples = SampleSet(
            Measurement(elapsed_s=1.0 + 0.01 * i, work=100.0) for i in range(8)
        )
        ci = sample_set_ci(samples)
        assert ci.low <= samples.median_rate <= ci.high


class TestSpeedupSummary:
    def test_paper_abstract_envelope(self):
        # "0.6-1.8X the performance of an H100".
        summary = speedup_summary([0.61, 0.93, 1.39, 1.76])
        assert summary["min"] == pytest.approx(0.61)
        assert summary["max"] == pytest.approx(1.76)
        assert 0.9 < summary["geomean"] < 1.2

    def test_filters_none(self):
        summary = speedup_summary([1.0, None, 2.0])
        assert summary["count"] == 2

    def test_rejects_all_none(self):
        with pytest.raises(ValueError):
            speedup_summary([None])
