"""Bounded IO retry: transient disk faults absorbed byte-exactly."""

import errno
import os
import threading
import time

import pytest

import repro.ioutils as ioutils
from repro.ioutils import (
    IO_RETRY_ATTEMPTS,
    atomic_write_text,
    fsync_append_text,
    io_retry_count,
    reset_io_retry_count,
    set_io_fault_gate,
)


@pytest.fixture(autouse=True)
def _clean_gate():
    reset_io_retry_count()
    yield
    set_io_fault_gate(None)
    reset_io_retry_count()


def _fail_first(n, err=errno.ENOSPC):
    """A gate failing the first *n* attempts of every op."""

    def gate(op, path, attempt):
        if attempt <= n:
            raise OSError(err, f"injected ({op} attempt {attempt})", path)

    return gate


class TestRetryOnTransientFaults:
    def test_atomic_write_survives_transient_enospc(self, tmp_path):
        path = tmp_path / "out.txt"
        set_io_fault_gate(_fail_first(2))
        atomic_write_text(path, "payload\n")
        assert path.read_text() == "payload\n"
        assert io_retry_count() == 2

    def test_append_survives_transient_enospc(self, tmp_path):
        path = tmp_path / "log.jsonl"
        fsync_append_text(path, "one\n")
        set_io_fault_gate(_fail_first(1))
        fsync_append_text(path, "two\n")
        assert path.read_text() == "one\ntwo\n"
        assert io_retry_count() == 1

    def test_edquot_is_retryable_too(self, tmp_path):
        path = tmp_path / "out.txt"
        set_io_fault_gate(_fail_first(1, errno.EDQUOT))
        atomic_write_text(path, "x")
        assert path.read_text() == "x"

    def test_persistent_fault_escapes_after_budget(self, tmp_path):
        path = tmp_path / "out.txt"
        set_io_fault_gate(_fail_first(IO_RETRY_ATTEMPTS + 1))
        with pytest.raises(OSError) as excinfo:
            atomic_write_text(path, "x")
        assert excinfo.value.errno == errno.ENOSPC
        assert io_retry_count() == IO_RETRY_ATTEMPTS - 1

    def test_non_retryable_errno_escapes_immediately(self, tmp_path):
        path = tmp_path / "out.txt"
        set_io_fault_gate(_fail_first(1, errno.EACCES))
        with pytest.raises(OSError) as excinfo:
            atomic_write_text(path, "x")
        assert excinfo.value.errno == errno.EACCES
        assert io_retry_count() == 0


class TestNoTornBytes:
    def test_partial_append_is_truncated_before_retry(self, tmp_path):
        # Simulate an append that landed partial bytes before failing:
        # the retry must truncate back to the pre-append length, never
        # duplicate or interleave.
        path = tmp_path / "log.jsonl"
        fsync_append_text(path, "intact\n")
        fired = {"n": 0}

        def torn_gate(op, p, attempt):
            if attempt == 1:
                fired["n"] += 1
                with open(p, "a", encoding="utf-8") as fh:
                    fh.write("TORN")
                raise OSError(errno.ENOSPC, "injected mid-append", p)

        set_io_fault_gate(torn_gate)
        fsync_append_text(path, "next\n")
        assert fired["n"] == 1
        assert path.read_text() == "intact\nnext\n"

    def test_concurrent_append_survives_retry_truncation(self, tmp_path):
        # A's first attempt lands partial bytes and fails; B appends
        # concurrently.  A's retry truncates back to its pre-append
        # base — the file lock must keep B outside that window, or the
        # truncation would destroy B's committed record.
        path = tmp_path / "log.jsonl"
        fsync_append_text(path, "intact\n")
        injected = threading.Event()
        proceed = threading.Event()

        def gate(op, p, attempt):
            if op == "append" and not injected.is_set():
                injected.set()
                with open(p, "a", encoding="utf-8") as fh:
                    fh.write("PART")
                # Hold A's failure open until B has had time to try.
                proceed.wait(5.0)
                raise OSError(errno.ENOSPC, "injected mid-append", p)

        set_io_fault_gate(gate)
        writer_a = threading.Thread(
            target=fsync_append_text, args=(path, "AAAA\n")
        )
        writer_a.start()
        assert injected.wait(5.0)
        writer_b = threading.Thread(
            target=fsync_append_text, args=(path, "BBBB\n")
        )
        writer_b.start()
        time.sleep(0.2)  # let B reach (and block on) the file lock
        proceed.set()
        writer_a.join(timeout=5.0)
        writer_b.join(timeout=5.0)
        assert not writer_a.is_alive() and not writer_b.is_alive()
        # B could not interleave with A's failed attempt, so both
        # records are intact and in lock-acquisition order.
        assert path.read_text() == "intact\nAAAA\nBBBB\n"

    def test_failed_atomic_write_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "out.txt"
        set_io_fault_gate(_fail_first(IO_RETRY_ATTEMPTS + 1))
        with pytest.raises(OSError):
            atomic_write_text(path, "x")
        set_io_fault_gate(None)
        assert os.listdir(tmp_path) == []


class TestBackoffAndGateProtocol:
    def test_backoff_doubles_per_retry(self, tmp_path, monkeypatch):
        sleeps = []
        monkeypatch.setattr(ioutils, "_sleep", sleeps.append)
        set_io_fault_gate(_fail_first(3))
        atomic_write_text(tmp_path / "out.txt", "x")
        assert len(sleeps) == 3
        assert sleeps[1] == pytest.approx(sleeps[0] * 2)
        assert sleeps[2] == pytest.approx(sleeps[0] * 4)

    def test_gate_sees_op_kind_and_one_based_attempts(self, tmp_path):
        seen = []

        def recording_gate(op, path, attempt):
            seen.append((op, attempt))

        set_io_fault_gate(recording_gate)
        atomic_write_text(tmp_path / "a.txt", "x")
        fsync_append_text(tmp_path / "b.txt", "y")
        assert seen == [("write", 1), ("append", 1)]

    def test_set_gate_returns_previous(self):
        first = _fail_first(0)
        assert set_io_fault_gate(first) is None
        assert set_io_fault_gate(None) is first
