"""Units and paper-style formatting."""

import math

import pytest

from repro.core.units import (
    GIGA,
    KIB,
    MIB,
    PETA,
    TERA,
    Quantity,
    bandwidth,
    flops,
    iops,
    parse_rate,
    si_format,
)


class TestSiFormat:
    def test_teraflops(self):
        assert si_format(17e12, "Flop/s") == "17 TFlop/s"

    def test_gigabytes(self):
        assert si_format(54e9, "B/s") == "54 GB/s"

    def test_petaiops(self):
        assert si_format(5.0e15, "Iop/s") == "5 PIop/s"

    def test_fractional(self):
        assert si_format(3.1e12, "Flop/s") == "3.1 TFlop/s"

    def test_fixed_prefix_keeps_gb(self):
        # Table III prints "1129 GB/s", not "1.13 TB/s".
        assert si_format(1129e9, "B/s", prefix="G") == "1129 GB/s"

    def test_zero(self):
        assert si_format(0.0, "B/s") == "0 B/s"

    def test_negative(self):
        assert si_format(-2e9, "B/s").startswith("-2 ")

    def test_trailing_zeros_dropped(self):
        assert si_format(2.0e12, "Flop/s") == "2 TFlop/s"


class TestParseRate:
    @pytest.mark.parametrize(
        "text,value",
        [
            ("17 TFlop/s", 17e12),
            ("54 GB/s", 54e9),
            ("5 PIop/s", 5e15),
            ("1.3 TB/s", 1.3e12),
        ],
    )
    def test_roundtrip(self, text, value):
        assert parse_rate(text) == pytest.approx(value)

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_rate("fast")


class TestQuantity:
    def test_str_flops(self):
        assert str(flops(17e12)) == "17 TFlop/s"

    def test_nonscalable_unit_prints_raw(self):
        assert str(Quantity(2039.0, "kparticles/s")) == "2039 kparticles/s"

    def test_add_same_unit(self):
        q = flops(1e12) + flops(2e12)
        assert q.value == pytest.approx(3e12)

    def test_add_mismatched_units_raises(self):
        with pytest.raises(ValueError):
            flops(1.0) + bandwidth(1.0)

    def test_scale(self):
        assert (2 * flops(1e12)).value == pytest.approx(2e12)

    def test_ratio(self):
        assert flops(2e12).ratio(flops(1e12)) == pytest.approx(2.0)

    def test_divide_by_scalar(self):
        assert (flops(2e12) / 2).value == pytest.approx(1e12)

    def test_divide_by_quantity_is_dimensionless(self):
        assert flops(2e12) / flops(1e12) == pytest.approx(2.0)

    def test_ordering(self):
        assert flops(1e12) < flops(2e12)
        assert flops(1e12) <= flops(1e12)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            Quantity(math.nan, "B/s")

    def test_iops_unit(self):
        assert iops(448e12).unit == "Iop/s"


class TestConstants:
    def test_binary_vs_decimal(self):
        assert KIB == 1024
        assert MIB == 1024**2
        assert GIGA == 1e9
        assert TERA == 1e12
        assert PETA == 1e15
