"""Benchmark registry."""

import pytest

from repro.core.registry import BenchmarkInfo, Registry, global_registry
from repro.errors import UnknownBenchmarkError


def _info(name: str, category: str = "micro") -> BenchmarkInfo:
    return BenchmarkInfo(
        name=name,
        category=category,
        programming_model="SYCL",
        description="test",
        factory=dict,
    )


class TestRegistry:
    def test_add_and_get(self):
        r = Registry()
        r.add(_info("a"))
        assert r.get("a").name == "a"
        assert "a" in r

    def test_duplicate_rejected(self):
        r = Registry()
        r.add(_info("a"))
        with pytest.raises(ValueError):
            r.add(_info("a"))

    def test_unknown_raises_with_suggestions(self):
        r = Registry()
        r.add(_info("triad"))
        with pytest.raises(UnknownBenchmarkError, match="triad"):
            r.get("nope")

    def test_category_filter(self):
        r = Registry()
        r.add(_info("a", "micro"))
        r.add(_info("b", "miniapp"))
        assert r.names("micro") == ["a"]
        assert r.names() == ["a", "b"]

    def test_create_instantiates(self):
        r = Registry()
        r.add(_info("a"))
        assert r.create("a") == {}

    def test_len_iter(self):
        r = Registry()
        r.add(_info("a"))
        r.add(_info("b"))
        assert len(r) == 2
        assert {i.name for i in r} == {"a", "b"}


class TestGlobalRegistry:
    def test_all_seven_micros_registered(self):
        import repro.micro  # noqa: F401

        names = global_registry().names("micro")
        assert set(names) >= {
            "peak_flops",
            "triad",
            "pcie",
            "p2p",
            "gemm",
            "fft",
            "lats",
        }

    def test_miniapps_and_apps_registered(self):
        import repro.apps  # noqa: F401
        import repro.miniapps  # noqa: F401

        reg = global_registry()
        assert set(reg.names("miniapp")) >= {
            "minibude",
            "cloverleaf",
            "miniqmc",
            "rimp2",
        }
        assert set(reg.names("app")) >= {"openmc", "hacc"}
