"""Benches for the distributed (simulated-MPI) functional drivers."""

import numpy as np
import pytest

from repro.apps.openmc import TransportProblem, smr_materials
from repro.apps.openmc import run_distributed as openmc_distributed
from repro.miniapps.cloverleaf import run_distributed as clover_distributed
from repro.miniapps.rimp2 import make_input, rimp2_energy_distributed
from repro.runtime.mpi import SimMPI


class TestDistributedDrivers:
    def test_clover_4_ranks(self, benchmark, aurora):
        state, vtime = benchmark(
            lambda: clover_distributed(aurora, n=32, steps=4, n_ranks=4)
        )
        benchmark.extra_info["virtual_comm_time"] = f"{vtime * 1e6:.1f} us"
        assert np.all(np.isfinite(state.u))

    def test_rimp2_12_ranks(self, benchmark, aurora):
        inp = make_input(n_aux=12, n_occ=6, n_virt=8, seed=5)

        def run():
            return SimMPI(aurora, 12).run(
                lambda comm: rimp2_energy_distributed(comm, inp)
            )[0]

        energy = benchmark(run)
        assert energy < 0

    def test_openmc_4_ranks(self, benchmark, aurora):
        problem = TransportProblem(smr_materials(), nmesh=2)

        def run():
            return SimMPI(aurora, 4).run(
                lambda comm: openmc_distributed(comm, problem, 200, seed=2)
            )[0]

        result = benchmark(run)
        assert result.histories == 800

    def test_allreduce_scaling_12_ranks(self, benchmark, aurora):
        def run():
            return SimMPI(aurora).run(
                lambda comm: float(
                    comm.Allreduce(np.full(1024, comm.rank + 1.0))[0]
                )
            )

        results = benchmark(run)
        assert results[0] == pytest.approx(sum(range(1, 13)))
