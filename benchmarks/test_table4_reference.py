"""Regenerate Table IV: reference-GPU characteristics.

These cells are vendor/Frontier reference points; the benchmark verifies
the device models and the calibrated engine reproduce them.
"""

import pytest

from repro.analysis.paper_values import TABLE_IV
from repro.analysis.tables import table_iv
from repro.dtypes import Precision


def test_table4_renders(benchmark):
    table = benchmark(table_iv)
    assert table.get("FP32 peak", "H100").value == pytest.approx(67e12)


@pytest.mark.parametrize(
    "system,precision,paper_key",
    [
        ("jlse-h100", Precision.FP32, "fp32_peak"),
        ("jlse-h100", Precision.FP64, "fp64_peak"),
        ("jlse-mi250", Precision.FP64, "fp64_peak"),
    ],
)
def test_device_peaks_match_table4(benchmark, engines, system, precision, paper_key):
    engine = engines[system]
    paper = TABLE_IV["h100" if system == "jlse-h100" else "mi250"][paper_key]
    if system == "jlse-mi250":
        paper = paper / 2  # per GCD

    def nameplate():
        return engine.device.nameplate_flops(precision)

    value = benchmark(nameplate)
    benchmark.extra_info["simulated"] = f"{value / 1e12:.1f} TFlop/s"
    benchmark.extra_info["paper"] = f"{paper / 1e12:.1f} TFlop/s"
    assert value == pytest.approx(paper, rel=0.02)


@pytest.mark.parametrize(
    "system,metric,paper",
    [
        ("jlse-mi250", "dgemm", 24.1e12),
        ("jlse-mi250", "sgemm", 33.8e12),
        ("jlse-mi250", "stream", 1.3e12),
        ("jlse-mi250", "gcd2gcd", 37e9),
    ],
)
def test_mi250x_measured_points(benchmark, engines, system, metric, paper):
    engine = engines[system]

    def measure():
        if metric == "dgemm":
            return engine.gemm_rate(Precision.FP64, 1)
        if metric == "sgemm":
            return engine.gemm_rate(Precision.FP32, 1)
        if metric == "stream":
            return engine.stream_bw(1)
        from repro.hw.ids import StackRef

        return engine.transfers.p2p_bw(StackRef(0, 0), StackRef(0, 1))

    value = benchmark(measure)
    benchmark.extra_info["simulated"] = f"{value:.3g}"
    assert value == pytest.approx(paper, rel=0.03)
