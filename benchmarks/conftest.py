"""Shared fixtures for the benchmark harness.

Run with::

    pytest benchmarks/ --benchmark-only

Each benchmark regenerates one row/series of a paper table or figure and
attaches the simulated value (and the paper's value where applicable) to
``benchmark.extra_info``, so ``--benchmark-verbose`` output reads like the
publication.
"""

from __future__ import annotations

import pytest

from repro.hw.systems import get_system
from repro.sim.engine import PerfEngine
from repro.sim.noise import QUIET


@pytest.fixture(scope="session")
def engines() -> dict[str, PerfEngine]:
    return {
        name: PerfEngine(get_system(name), noise=QUIET)
        for name in ("aurora", "dawn", "jlse-h100", "jlse-mi250")
    }


@pytest.fixture(scope="session")
def aurora(engines) -> PerfEngine:
    return engines["aurora"]


@pytest.fixture(scope="session")
def dawn(engines) -> PerfEngine:
    return engines["dawn"]
