"""Regenerate Table II: every microbenchmark row at every scope.

Each benchmark measures the wall-clock cost of one full
repeat-and-take-best microbenchmark run (functional kernel + performance
model); the *simulated* rate it reproduces is attached as extra_info next
to the paper's published value.
"""

import pytest

from repro.analysis.paper_values import TABLE_II
from repro.core.runner import RunPlan
from repro.dtypes import Precision
from repro.micro.fft import Fft
from repro.micro.gemm import Gemm
from repro.micro.pcie import PcieBandwidth
from repro.micro.peak_flops import PeakFlops
from repro.micro.triad import Triad

_PLAN = RunPlan(repetitions=3, warmup=1)

_ROWS = {
    "fp64_flops": lambda: PeakFlops(Precision.FP64),
    "fp32_flops": lambda: PeakFlops(Precision.FP32),
    "triad": Triad,
    "pcie_h2d": lambda: PcieBandwidth("h2d", payload_bytes=1 << 22),
    "pcie_d2h": lambda: PcieBandwidth("d2h", payload_bytes=1 << 22),
    "pcie_bidir": lambda: PcieBandwidth("bidir", payload_bytes=1 << 22),
    "dgemm": lambda: Gemm(Precision.FP64),
    "sgemm": lambda: Gemm(Precision.FP32),
    "hgemm": lambda: Gemm(Precision.FP16),
    "bf16gemm": lambda: Gemm(Precision.BF16),
    "tf32gemm": lambda: Gemm(Precision.TF32),
    "i8gemm": lambda: Gemm(Precision.I8),
    "fft_1d": lambda: Fft(1),
    "fft_2d": lambda: Fft(2),
}

_SCOPES = {"aurora": {"1stack": 1, "1pvc": 2, "node": 12},
           "dawn": {"1stack": 1, "1pvc": 2, "node": 8}}
_SCOPE_KEY = {"1stack": 1, "1pvc": 2, "node": "node"}


@pytest.mark.parametrize("system", ["aurora", "dawn"])
@pytest.mark.parametrize("scope", ["1stack", "1pvc", "node"])
@pytest.mark.parametrize("row", sorted(_ROWS))
def test_table2_row(benchmark, engines, system, scope, row):
    engine = engines[system]
    n = _SCOPES[system][scope]
    bench = _ROWS[row]()

    result = benchmark(lambda: bench.measure(engine, n, _PLAN))
    paper = TABLE_II[row][system][_SCOPE_KEY[scope]]
    benchmark.extra_info["simulated"] = str(result.quantity)
    benchmark.extra_info["paper"] = f"{paper:.3g}"
    # Shape check: within the fidelity tolerances asserted in tests/.
    assert result.value == pytest.approx(paper, rel=0.16)
