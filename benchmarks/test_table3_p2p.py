"""Regenerate Table III: stack-to-stack point-to-point bandwidths."""

import pytest

from repro.analysis.paper_values import TABLE_III
from repro.core.runner import RunPlan
from repro.micro.p2p import P2PBandwidth

_PLAN = RunPlan(repetitions=3, warmup=1)

_ROWS = {
    "local_uni": ("local", False),
    "local_bidir": ("local", True),
    "remote_uni": ("remote", False),
    "remote_bidir": ("remote", True),
}


@pytest.mark.parametrize("system", ["aurora", "dawn"])
@pytest.mark.parametrize("pairs", ["one", "all"])
@pytest.mark.parametrize("row", sorted(_ROWS))
def test_table3_row(benchmark, engines, system, pairs, row):
    paper = TABLE_III[row][system][pairs]
    if paper is None:
        pytest.skip("cell not measured in the paper ('-')")
    engine = engines[system]
    pair_class, bidir = _ROWS[row]
    bench = P2PBandwidth(pair_class, bidirectional=bidir)
    n = 1 if pairs == "one" else engine.node.n_stacks

    result = benchmark(lambda: bench.measure(engine, n, _PLAN))
    benchmark.extra_info["simulated"] = str(result.quantity)
    benchmark.extra_info["paper"] = f"{paper / 1e9:.0f} GB/s"
    assert result.value == pytest.approx(paper, rel=0.08)
