"""Regenerate Figure 1: memory-latency curves for all four systems.

The benchmark runs the real pointer chase (ring and coalesced-16 modes)
at test scale and produces the cycle-latency curve the figure plots.
"""

import numpy as np
import pytest

from repro.analysis.figures import figure1
from repro.micro.lats import build_chain, chase, chase_coalesced, latency_curve


def test_figure1_all_series(benchmark):
    series = benchmark(figure1)
    names = {s.system for s in series}
    assert names == {"aurora", "dawn", "jlse-h100", "jlse-mi250"}


@pytest.mark.parametrize("system", ["aurora", "dawn", "jlse-h100", "jlse-mi250"])
def test_latency_curve_per_system(benchmark, engines, system):
    engine = engines[system]
    sizes, lats = benchmark(lambda: latency_curve(engine))
    benchmark.extra_info["L1_cycles"] = f"{lats[0]:.0f}"
    benchmark.extra_info["HBM_cycles"] = f"{lats[-1]:.0f}"
    assert np.all(np.diff(lats) >= -1e-9)


@pytest.mark.parametrize("mode", ["ring", "coalesced"])
def test_functional_pointer_chase(benchmark, mode):
    """The actual dependent-load chase the lats benchmark times."""
    chain = build_chain(4096, seed=1, ring=(mode == "ring"))

    if mode == "coalesced":
        result = benchmark(lambda: chase_coalesced(chain, 2048))
        assert result.shape == (16,)
    else:
        result = benchmark(lambda: chase(chain, 2048))
        assert 0 <= result < 4096


def test_relative_latency_claims(benchmark, engines):
    """PVC vs H100/MI250 latency ratios (Section IV-B.6)."""

    def ratios():
        pvc = engines["aurora"].device.memory
        h100 = engines["jlse-h100"].device.memory
        mi250 = engines["jlse-mi250"].device.memory
        return {
            level: (
                pvc[level].latency_cycles / h100[level].latency_cycles,
                pvc[level].latency_cycles / mi250[level].latency_cycles,
            )
            for level in ("L1", "L2", "HBM")
        }

    out = benchmark(ratios)
    assert out["L1"][0] == pytest.approx(1.90, abs=0.02)
    assert out["L1"][1] == pytest.approx(0.49, abs=0.02)
    assert out["HBM"][0] == pytest.approx(1.23, abs=0.02)
