"""Extension benches: sweeps, autotuning, power, Frontier/A100.

These go beyond the paper's tables — each maps to a discussion point
(the ppwi/wgsize search, the TDP/power-cap narrative, the future-work
Frontier comparison, and the A100 data point).
"""

import pytest

from repro.dtypes import Precision
from repro.hw.extensions import frontier, jlse_a100
from repro.hw.ids import StackRef
from repro.micro.sweep import (
    fma_chain_sweep,
    gemm_size_sweep,
    half_bandwidth_point,
    message_size_sweep,
)
from repro.miniapps import BudeAutotuner, MiniBude
from repro.sim.engine import PerfEngine
from repro.sim.kernel import gemm_kernel
from repro.sim.noise import QUIET
from repro.sim.power import PowerModel


class TestSweeps:
    def test_p2p_message_size_sweep(self, benchmark, aurora):
        points = benchmark(
            lambda: message_size_sweep(aurora, StackRef(0, 0), StackRef(0, 1))
        )
        benchmark.extra_info["asymptote"] = f"{points[-1].value / 1e9:.0f} GB/s"
        benchmark.extra_info["n_half"] = f"{half_bandwidth_point(points) / 1e3:.0f} kB"
        assert points[-1].value == pytest.approx(197e9, rel=0.02)

    def test_gemm_size_sweep(self, benchmark, aurora):
        points = benchmark(lambda: gemm_size_sweep(aurora, Precision.FP64))
        assert points[-1].value == pytest.approx(13e12, rel=0.03)

    def test_fma_chain_sweep(self, benchmark, aurora):
        points = benchmark(lambda: fma_chain_sweep(aurora, Precision.FP64))
        assert points[-1].value > 5 * points[0].value


class TestAutotuning:
    def test_bude_sweep(self, benchmark, aurora):
        tuner = BudeAutotuner(aurora)
        best = benchmark(tuner.best)
        benchmark.extra_info["best"] = str(best)
        assert best.ppwi == 16
        assert 0.42 <= tuner.tuned_fraction_of_peak() <= 0.52


class TestPower:
    @pytest.mark.parametrize("system", ["aurora", "dawn"])
    def test_dgemm_energy_to_solution(self, benchmark, engines, system):
        pm = PowerModel(engines[system])
        spec = gemm_kernel(Precision.FP64)
        report = benchmark(
            lambda: pm.energy_to_solution(spec, engines[system].node.n_stacks)
        )
        benchmark.extra_info["energy_j"] = f"{report.energy_j:.0f} J"
        assert report.energy_j > 0

    def test_aurora_beats_dawn_fp64_per_watt(self, benchmark, engines):
        def ratio():
            a = PowerModel(engines["aurora"]).flops_per_watt(Precision.FP64)
            d = PowerModel(engines["dawn"]).flops_per_watt(Precision.FP64)
            return a / d

        value = benchmark(ratio)
        assert value > 1.0


class TestExtensionSystems:
    def test_frontier_matches_table_iv_points(self, benchmark):
        engine = PerfEngine(frontier(), noise=QUIET)

        def measure():
            return (
                engine.gemm_rate(Precision.FP64, 1),
                engine.stream_bw(1),
                engine.transfers.p2p_bw(StackRef(0, 0), StackRef(0, 1)),
            )

        dgemm, stream, gcd = benchmark(measure)
        benchmark.extra_info["dgemm"] = f"{dgemm / 1e12:.1f} TFlop/s"
        assert dgemm == pytest.approx(24.1e12, rel=0.06)
        assert stream == pytest.approx(1.3e12, rel=0.02)
        assert gcd == pytest.approx(37e9, rel=0.02)

    def test_a100_minibude_62_percent(self, benchmark):
        engine = PerfEngine(jlse_a100(), noise=QUIET)
        app = MiniBude()
        fom = benchmark(lambda: app.fom(engine, 1))
        benchmark.extra_info["fom"] = f"{fom:.1f} GI/s"
        assert app.achieved_fp32_fraction(engine) == pytest.approx(0.62)
