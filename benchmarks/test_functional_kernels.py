"""Throughput of the functional (really-computing) kernels.

These are genuine wall-clock benchmarks of the NumPy substrate: the FFT
stack vs numpy.fft, the blocked GEMM, the Euler step, delta-tracking
transport, docking energies, QMC sweeps, and the N-body force kernel.
"""

import numpy as np
import pytest

from repro.apps.hacc import NBodySystem, crk_interpolate
from repro.apps.openmc import TransportProblem, smr_materials
from repro.micro.fft import fft, fft2
from repro.micro.gemm import blocked_gemm
from repro.miniapps.cloverleaf import EulerSolver2D, sod_state
from repro.miniapps.minibude import evaluate_poses, make_deck
from repro.miniapps.miniqmc import HarmonicTrialWavefunction, VmcDriver

rng = np.random.default_rng(0)


class TestFftKernels:
    _x_pow2 = rng.standard_normal(4096) + 1j * rng.standard_normal(4096)
    _x_bluestein = rng.standard_normal(2000) + 1j * rng.standard_normal(2000)
    _x_2d = rng.standard_normal((128, 128)) + 1j * rng.standard_normal((128, 128))

    def test_radix2_4096(self, benchmark):
        out = benchmark(lambda: fft(self._x_pow2))
        assert np.allclose(out, np.fft.fft(self._x_pow2), atol=1e-7)

    def test_bluestein_2000(self, benchmark):
        out = benchmark(lambda: fft(self._x_bluestein))
        assert np.allclose(out, np.fft.fft(self._x_bluestein), atol=1e-7)

    def test_fft2_128(self, benchmark):
        out = benchmark(lambda: fft2(self._x_2d))
        assert np.allclose(out, np.fft.fft2(self._x_2d), atol=1e-6)


class TestGemmKernel:
    _a = rng.standard_normal((256, 256))
    _b = rng.standard_normal((256, 256))

    def test_blocked_gemm_256(self, benchmark):
        out = benchmark(lambda: blocked_gemm(self._a, self._b, block=64))
        assert np.allclose(out, self._a @ self._b)


class TestHydroKernel:
    def test_euler_step_128(self, benchmark):
        solver = EulerSolver2D(sod_state(128), boundary="reflective")
        benchmark(solver.step)
        assert solver.steps_taken >= 1


class TestTransportKernel:
    def test_delta_tracking_2000_histories(self, benchmark):
        problem = TransportProblem(smr_materials(), nmesh=4)
        result = benchmark(lambda: problem.run(2000, seed=3))
        assert result.histories == 2000


class TestDockingKernel:
    _deck = make_deck(n_ligand=64, n_protein=64, n_poses=256)

    def test_pose_energies(self, benchmark):
        energies = benchmark(lambda: evaluate_poses(self._deck))
        assert energies.shape == (256,)


class TestQmcKernel:
    def test_vmc_sweep(self, benchmark):
        driver = VmcDriver(
            HarmonicTrialWavefunction(alpha=1.0), n_walkers=256, n_electrons=16
        )
        energies = benchmark(driver.step)
        assert np.allclose(energies, 24.0, atol=1e-9)


class TestNbodyKernels:
    _system = NBodySystem(
        pos=rng.uniform(-1, 1, (256, 3)),
        vel=rng.normal(0, 0.05, (256, 3)),
        mass=np.full(256, 1.0 / 256),
        softening=0.05,
    )

    def test_direct_forces_256(self, benchmark):
        acc = benchmark(self._system.accelerations)
        assert acc.shape == (256, 3)

    def test_crk_interpolation_200(self, benchmark):
        pos = rng.uniform(0, 1, (200, 3))
        vol = np.full(200, 1.0 / 200)
        field = 1.0 + pos[:, 0]
        out = benchmark(lambda: crk_interpolate(pos, vol, field, h=0.4))
        assert np.allclose(out, field, atol=1e-9)
