"""Regenerate Table VI: every mini-app/application FOM cell.

Each benchmark runs the app's *functional* kernel at test scale (so the
measured wall time is real compute) and reproduces the paper-scale FOM
through the performance model.
"""

import pytest

from repro.analysis.paper_values import TABLE_VI
from repro.apps import Hacc, OpenMc
from repro.errors import BuildError
from repro.miniapps import CloverLeaf, MiniBude, MiniQmc, Rimp2

_APPS = {
    "minibude": MiniBude,
    "cloverleaf": CloverLeaf,
    "miniqmc": MiniQmc,
    "rimp2": Rimp2,
    "openmc": OpenMc,
    "hacc": Hacc,
}

_CELLS = [
    (app, system, scope)
    for app, columns in TABLE_VI.items()
    for system, cells in columns.items()
    for scope, value in cells.items()
    if value is not None
]


def _functional(app_key, app):
    if app_key == "minibude":
        return lambda: app.run_functional()
    if app_key == "cloverleaf":
        return lambda: app.run_functional(n=32, steps=3)
    if app_key == "miniqmc":
        return lambda: app.run_functional(n_walkers=16, n_electrons=4, steps=5)
    if app_key == "rimp2":
        return lambda: app.run_functional()
    if app_key == "openmc":
        return lambda: app.run_functional(n_particles=300)
    return lambda: app.run_functional(n_particles=24, steps=2)


@pytest.mark.parametrize("app_key,system,scope", _CELLS)
def test_table6_cell(benchmark, engines, app_key, system, scope):
    engine = engines[system]
    app = _APPS[app_key]()
    n = engine.node.n_stacks if scope == "node" else int(scope)
    paper = TABLE_VI[app_key][system][scope]

    benchmark(_functional(app_key, app))
    fom = app.fom(engine, n)
    benchmark.extra_info["fom_simulated"] = f"{fom:.4g} {app.fom_spec.unit}"
    benchmark.extra_info["fom_paper"] = f"{paper:.4g}"
    assert fom == pytest.approx(paper, rel=0.10)


def test_rimp2_mi250_build_failure(benchmark, engines):
    """The paper's '-' cells: the AMD Fortran build fails."""

    def attempt():
        with pytest.raises(BuildError):
            Rimp2().fom(engines["jlse-mi250"], 1)

    benchmark(attempt)
