"""Regenerate Figure 2: FOMs on Aurora relative to Dawn + expected bars."""

import pytest

from repro.analysis.figures import figure2


def test_figure2_series(benchmark):
    points = benchmark(figure2)
    assert len(points) >= 10
    by_key = {(p.app, p.scope): p for p in points}

    # Paper ratios from Table VI.
    assert by_key[("minibude", "One Stack")].ratio == pytest.approx(
        293.02 / 366.17, rel=0.03
    )
    assert by_key[("cloverleaf", "Full node")].ratio == pytest.approx(
        240.89 / 167.15, rel=0.05
    )
    assert by_key[("rimp2", "Full node")].ratio == pytest.approx(
        197.08 / 164.71, rel=0.07
    )
    # miniQMC full-node inversion: ratio < 1 despite 1.5x the GPUs.
    assert by_key[("miniqmc", "Full node")].ratio < 1.0


def test_expected_bars_track_measurements(benchmark):
    points = benchmark(figure2)
    for p in points:
        if p.expected.ratio is not None and p.ratio is not None:
            assert p.within_expectation, (p.app, p.scope)
