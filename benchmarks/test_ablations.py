"""Ablation benches: what each model component buys.

Each ablation maps to a discussion point in the paper (DESIGN.md §6):

* TDP downclock  <-> the FP32:FP64 = 1.3x observation (Section IV-B.2);
* host contention <-> full-node PCIe scaling at ~40% (Section IV-B.4);
* plane topology <-> the extra-hop remote routing (Section IV-A.4).
"""

import pytest

from repro.dtypes import Precision
from repro.hw.ids import StackRef
from repro.hw.systems import get_system
from repro.sim.engine import PerfEngine
from repro.sim.noise import QUIET


def _engine(**kw) -> PerfEngine:
    return PerfEngine(get_system("aurora"), noise=QUIET, **kw)


class TestTdpAblation:
    def test_with_tdp(self, benchmark, engines):
        e = engines["aurora"]
        ratio = benchmark(
            lambda: e.fma_rate(Precision.FP32, 1) / e.fma_rate(Precision.FP64, 1)
        )
        benchmark.extra_info["fp32_fp64_ratio"] = f"{ratio:.2f}x"
        assert ratio == pytest.approx(23 / 17, rel=0.05)

    def test_without_tdp(self, benchmark):
        e = _engine(enable_tdp=False)
        ratio = benchmark(
            lambda: e.fma_rate(Precision.FP32, 1) / e.fma_rate(Precision.FP64, 1)
        )
        benchmark.extra_info["fp32_fp64_ratio"] = f"{ratio:.2f}x"
        assert ratio == pytest.approx(1.0, abs=0.03)


class TestContentionAblation:
    def test_with_contention(self, benchmark, engines):
        e = engines["aurora"]
        total = benchmark(lambda: e.transfers.node_host_bw("d2h"))
        benchmark.extra_info["node_d2h"] = f"{total / 1e9:.0f} GB/s"
        assert total == pytest.approx(264e9, rel=0.02)

    def test_without_contention(self, benchmark):
        e = _engine(enable_contention=False)
        total = benchmark(lambda: e.transfers.node_host_bw("d2h"))
        benchmark.extra_info["node_d2h"] = f"{total / 1e9:.0f} GB/s"
        assert total == pytest.approx(6 * 53e9, rel=0.02)


class TestPlaneAblation:
    def test_with_planes_cross_plane_two_hops(self, benchmark, engines):
        e = engines["aurora"]
        route = benchmark(
            lambda: e.transfers.p2p_route(StackRef(0, 0), StackRef(1, 0))
        )
        benchmark.extra_info["route"] = route.describe()
        assert route.n_hops == 2

    def test_without_planes_single_hop_model(self, benchmark):
        e = _engine(enable_planes=False)
        bw = benchmark(
            lambda: e.transfers.p2p_bw(StackRef(0, 0), StackRef(1, 0))
        )
        # Bandwidth is Xe-Link-bottlenecked either way; the ablation
        # removes only the extra hop's latency.
        assert bw == pytest.approx(15e9, rel=0.02)


class TestNoiseProtocolAblation:
    """Best-of-N vs single-shot: what the paper's protocol removes."""

    def test_single_shot_includes_noise(self, benchmark):
        from repro.core.runner import RunPlan
        from repro.micro.peak_flops import PeakFlops

        e = PerfEngine(get_system("aurora"))  # noisy
        bench = PeakFlops(Precision.FP64)
        result = benchmark(
            lambda: bench.measure(e, 1, RunPlan(repetitions=1, warmup=0))
        )
        # Repetition 0 carries the warm-up penalty: visibly below peak.
        assert result.value < 17e12 * 0.95

    def test_best_of_five_recovers_peak(self, benchmark):
        from repro.core.runner import RunPlan
        from repro.micro.peak_flops import PeakFlops

        e = PerfEngine(get_system("aurora"))
        bench = PeakFlops(Precision.FP64)
        result = benchmark(
            lambda: bench.measure(e, 1, RunPlan(repetitions=5, warmup=1))
        )
        assert result.value == pytest.approx(17e12, rel=0.02)
