"""Regenerate Figure 3: FOMs relative to JLSE-H100 + expected bars."""

import pytest

from repro.analysis.figures import figure3


def test_figure3_series(benchmark):
    points = benchmark(figure3)
    by_key = {(p.app, p.scope): p for p in points}

    # Single-GPU (one PVC vs one H100) range "from 0.6x and 1.8x".
    gpu_ratios = [p.ratio for p in points if p.scope == "gpu" and p.ratio]
    assert min(gpu_ratios) == pytest.approx(0.61, abs=0.05)
    assert max(gpu_ratios) == pytest.approx(1.76, abs=0.1)

    # Full-node range "0.6x (Cloverleaf) ... 1.3x (miniQMC)".
    node_ratios = {
        p.app: p.ratio for p in points if p.scope == "node" and p.ratio
    }
    assert node_ratios["cloverleaf:dawn"] == pytest.approx(0.64, abs=0.05)
    assert node_ratios["miniqmc:dawn"] == pytest.approx(1.32, abs=0.08)

    # CloverLeaf expected bar: 2 / 3.35 = 0.59.
    clv = by_key[("cloverleaf:aurora", "gpu")]
    assert clv.expected.ratio == pytest.approx(0.597, abs=0.02)


def test_minibude_above_expected(benchmark):
    """'we see miniBUDE performing better than expected'."""
    points = benchmark(figure3)
    for p in points:
        if p.app.startswith("minibude") and p.expected.ratio is not None:
            assert p.ratio > p.expected.ratio
