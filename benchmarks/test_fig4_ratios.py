"""Regenerate Figure 4: FOMs relative to JLSE-MI250 + expected bars."""

import pytest

from repro.analysis.figures import figure4


def test_figure4_series(benchmark):
    points = benchmark(figure4)

    # Per-stack-vs-GCD range "from 0.8x to 7.5x".
    stack_points = [p for p in points if p.scope == "stack" and p.ratio]
    ratios = {p.app: p.ratio for p in stack_points}
    assert min(ratios.values()) == pytest.approx(0.81, abs=0.06)
    assert max(ratios.values()) == pytest.approx(7.44, abs=0.4)
    assert min(ratios, key=ratios.get).startswith("cloverleaf")
    assert max(ratios, key=ratios.get).startswith("miniqmc")

    # miniBUDE expected bar for Aurora: "1.0X (23 / (45.3/2))".
    for p in stack_points:
        if p.app == "minibude:aurora":
            assert p.expected.ratio == pytest.approx(1.0, abs=0.03)


def test_miniqmc_mi250_penalty(benchmark):
    """MI250 miniQMC is an order of magnitude slower (software)."""
    points = benchmark(figure4)
    qmc = [p.ratio for p in points if p.app.startswith("miniqmc") and p.ratio]
    assert max(qmc) > 10.0


def test_rimp2_has_no_mi250_ratio(benchmark):
    points = benchmark(figure4)
    for p in points:
        if p.app.startswith("rimp2"):
            assert p.ratio is None
