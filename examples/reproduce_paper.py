#!/usr/bin/env python3
"""Reproduce every table and figure of the paper in one run.

The artifact-evaluation flow of the appendix, end to end:

* Tables I-VI regenerated from the simulation;
* Figures 1-4 as printed data series with the expected-performance bars;
* every prose claim of the evaluation section checked.

Run:  python examples/reproduce_paper.py          (full output)
      python examples/reproduce_paper.py --quick  (tables II/VI + claims)
"""

import sys

from repro.analysis import (
    all_claims,
    figure1,
    figure2,
    figure3,
    figure4,
    table_i,
    table_ii,
    table_iii,
    table_iv,
    table_v,
    table_vi,
)

def banner(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)

def print_ratios(points, label: str) -> None:
    banner(label)
    for p in points:
        measured = "   - " if p.ratio is None else f"{p.ratio:5.2f}"
        bar = (
            "          "
            if p.expected.ratio is None
            else f"bar {p.expected.ratio:5.2f}"
        )
        note = ""
        if p.within_expectation is True:
            note = "  as expected"
        elif p.within_expectation is False:
            note = "  deviates (discussed in the paper)"
        print(f"  {p.app:22s} {p.scope:10s} {measured}x  {bar}{note}")

def main() -> None:
    quick = "--quick" in sys.argv

    if not quick:
        banner("Table I: microbenchmark summary")
        print(table_i())

    banner("Table II: microbenchmark results")
    print(table_ii().render())

    if not quick:
        banner("Table III: stack-to-stack point-to-point")
        print(table_iii().render())

        banner("Table IV: reference GPU characteristics")
        print(table_iv().render())

        banner("Table V: mini-app and application descriptions")
        print(table_v())

    banner("Table VI: mini-app and application FOMs")
    print(table_vi().render())

    if not quick:
        banner("Figure 1: memory latency (cycles) vs working set")
        for series in figure1():
            picks = [0, len(series.sizes_bytes) // 2, len(series.sizes_bytes) - 1]
            cells = "  ".join(
                f"{int(series.sizes_bytes[i]) >> 10:>9d}KiB:{series.latency_cycles[i]:6.0f}"
                for i in picks
            )
            print(f"  {series.system:12s} {cells}")

        print_ratios(figure2(), "Figure 2: Aurora relative to Dawn")
        print_ratios(figure3(), "Figure 3: relative to JLSE-H100")
        print_ratios(figure4(), "Figure 4: relative to JLSE-MI250")

    banner("Evaluation-section claims")
    claims = all_claims()
    width = max(len(c.name) for c in claims)
    passed = 0
    for c in claims:
        mark = "ok " if c.holds else "FAIL"
        passed += c.holds
        print(f"  [{mark}] {c.name:{width}s}  paper: {c.paper:24s} sim: {c.simulated}")
    print(f"\n  {passed}/{len(claims)} claims reproduced")

if __name__ == "__main__":
    main()
