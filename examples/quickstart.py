#!/usr/bin/env python3
"""Quickstart: characterize a PVC stack in ten lines.

Builds the Aurora node model, asks the engine for the headline rates of
the paper's Table II, and runs one real microbenchmark through the
repeat-and-take-best protocol.

Run:  python examples/quickstart.py
"""

from repro import PerfEngine, Precision, get_system
from repro.micro import PeakFlops, Triad

def main() -> None:
    system = get_system("aurora")
    engine = PerfEngine(system)

    print(system.node.describe())
    print(f"software: {system.software}")
    print()

    # Derived + calibrated rates (Table II, One Stack column).
    print("One PVC stack on Aurora:")
    print(f"  FP64 peak flops : {engine.fma_rate(Precision.FP64) / 1e12:6.1f} TFlop/s")
    print(f"  FP32 peak flops : {engine.fma_rate(Precision.FP32) / 1e12:6.1f} TFlop/s")
    print(f"  stream triad    : {engine.stream_bw() / 1e12:6.2f} TB/s")
    print(f"  DGEMM           : {engine.gemm_rate(Precision.FP64) / 1e12:6.1f} TFlop/s")
    print()

    # A real microbenchmark run: functional FMA chain + best-of-5 protocol.
    result = PeakFlops(Precision.FP64).measure(engine, n_stacks=1)
    print(f"peak_flops benchmark ({len(result.samples)} reps, best kept):")
    print(f"  {result.describe()}")
    print(f"  run-to-run spread: {result.samples.spread:.2%}")
    print()

    result = Triad().measure(engine, n_stacks=system.n_stacks)
    print(f"full-node triad: {result.quantity}  (paper: 12 TB/s)")

if __name__ == "__main__":
    main()
