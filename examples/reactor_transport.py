#!/usr/bin/env python3
"""Monte Carlo reactor physics with the OpenMC-style transport kernel.

Three real transport studies on the delta-tracking engine:

1. infinite-medium verification: collision density and k_inf against the
   analytic one-group answers;
2. a leakage study: how the non-leakage probability grows with core size;
3. the SMR-style depleted-fuel problem with per-nuclide tallies, plus the
   paper-scale node FOMs.

Run:  python examples/reactor_transport.py
"""

import numpy as np

from repro import PerfEngine, get_system
from repro.apps import OpenMc, TransportProblem, smr_materials
from repro.apps.openmc import Material

def infinite_medium() -> None:
    sigma_a, sigma_s, nu_f = 0.3, 0.9, 0.39
    medium = Material(
        name="verif",
        sigma_t=np.array([sigma_a + sigma_s]),
        sigma_a=np.array([sigma_a]),
        scatter=np.array([[sigma_s]]),
        nu_fission=np.array([nu_f]),
    )
    problem = TransportProblem(
        (medium,), boundary="reflective", checkerboard=False, nmesh=2
    )
    res = problem.run(50_000, seed=0)
    print("1. infinite-medium verification (50k histories)")
    print(f"   collisions/history: {res.collisions_per_history:6.3f}"
          f"  (analytic {(sigma_a + sigma_s) / sigma_a:.3f})")
    print(f"   k_inf:              {res.k_estimate:6.3f}"
          f"  (analytic {nu_f / sigma_a:.3f})")

def leakage_study() -> None:
    print("\n2. leakage vs core size (vacuum boundaries)")
    for size in (5.0, 10.0, 20.0, 40.0, 80.0):
        problem = TransportProblem(smr_materials(), size=size, nmesh=4)
        res = problem.run(20_000, seed=1)
        print(
            f"   {size:5.0f} cm core: leakage {res.leakage_fraction:6.1%}"
            f"   k (collision est.) {res.k_estimate:5.3f}"
        )

def smr_benchmark() -> None:
    print("\n3. SMR depleted-fuel benchmark (per-nuclide tallies)")
    problem = TransportProblem(smr_materials(n_nuclides=16), size=40.0, nmesh=4)
    res = problem.run(30_000, seed=2)
    flux = res.flux
    fast = flux[..., 0, :].sum()
    thermal = flux[..., 1, :].sum()
    print(f"   tally array shape: {flux.shape} "
          f"(mesh^3 x groups x nuclides)")
    print(f"   fast/thermal collision ratio: {fast / thermal:5.2f}")
    print(f"   histories absorbed: {res.absorptions}, leaked: {res.leaks}")

    print("\n   paper-scale full-node FOM (kparticles/s):")
    app = OpenMc()
    for name in ("aurora", "dawn", "jlse-h100", "jlse-mi250"):
        engine = PerfEngine(get_system(name))
        note = "  (prediction; paper '-')" if name == "dawn" else ""
        print(f"     {engine.system.display_name:14s} {app.fom(engine):7.0f}{note}")
    print("   paper Table VI: Aurora 2039, H100 1191, MI250 720")

def main() -> None:
    infinite_medium()
    leakage_study()
    smr_benchmark()

if __name__ == "__main__":
    main()
