#!/usr/bin/env python3
"""Compressible hydrodynamics with the CloverLeaf solver (Section V-A.2).

Solves the Sod shock tube with the real 2D finite-volume Euler solver,
prints the density profile (shock, contact, rarefaction), verifies
conservation, then runs the same problem strip-decomposed over four
simulated MPI ranks with halo exchange and reports the communication time
the fabric model charges.

Run:  python examples/shock_tube.py
"""

import numpy as np

from repro import PerfEngine, get_system
from repro.miniapps import CloverLeaf, EulerSolver2D, exchange_halos, sod_state
from repro.runtime.mpi import SimMPI

def ascii_profile(rho: np.ndarray, width: int = 64, height: int = 12) -> str:
    xs = np.linspace(0, len(rho) - 1, width).astype(int)
    vals = rho[xs]
    lo, hi = float(vals.min()), float(vals.max())
    rows = []
    for level in range(height, 0, -1):
        threshold = lo + (hi - lo) * (level - 0.5) / height
        rows.append("".join("#" if v >= threshold else " " for v in vals))
    rows.append("-" * width)
    return "\n".join(rows)

def main() -> None:
    n, steps = 128, 60
    solver = EulerSolver2D(sod_state(n), boundary="reflective")
    before = solver.state.totals()
    solver.run(steps)
    after = solver.state.totals()

    rho = solver.state.density[0]
    print(f"Sod shock tube, {n}x{n} cells, {steps} steps, t = {solver.time:.3f}")
    print(ascii_profile(rho))
    print(f"density range: {rho.min():.3f} .. {rho.max():.3f}")
    print(f"mass conservation error:   {abs(after[0] - before[0]) / before[0]:.2e}")
    print(f"energy conservation error: {abs(after[3] - before[3]) / before[3]:.2e}")

    # --- distributed run over the simulated fabric ----------------------
    engine = PerfEngine(get_system("aurora"))
    n_ranks = 4
    width = n // n_ranks

    def prog(comm):
        local = sod_state(n).u[:, :, comm.rank * width : (comm.rank + 1) * width]
        local = np.ascontiguousarray(local)
        left = (comm.rank - 1) % comm.size
        right = (comm.rank + 1) % comm.size
        for _ in range(10):
            exchange_halos(comm, local, left, right)
            comm.advance(0.001)  # local compute per step
        return comm.now

    times = SimMPI(engine, n_ranks).run(prog)
    print()
    print(f"strip-decomposed over {n_ranks} Aurora stacks:")
    print(f"  simulated time/rank incl. halo exchange: {max(times) * 1e3:.2f} ms")

    # --- paper-scale FOM ----------------------------------------------
    app = CloverLeaf()
    print()
    print("paper-scale FOM (15360^2 cells/rank, weak scaled):")
    for name in ("aurora", "dawn", "jlse-h100", "jlse-mi250"):
        e = PerfEngine(get_system(name))
        print(
            f"  {e.system.display_name:14s} one device: {app.fom(e, 1):6.1f}"
            f"  full node: {app.fom(e, e.node.n_stacks):6.1f} Mcells/s"
        )

if __name__ == "__main__":
    main()
