#!/usr/bin/env python3
"""Virtual drug screening with the miniBUDE kernel (Section V-A.1).

A real (small-scale) docking run: generate a synthetic NDM-1-style deck,
evaluate every pose's BUDE energy for real, rank the poses, then project
the paper-scale figure of merit on each of the four systems.

Run:  python examples/docking_screen.py
"""

import numpy as np

from repro import PerfEngine, get_system
from repro.miniapps import MiniBude, evaluate_poses, make_deck

def main() -> None:
    # --- the actual docking computation -------------------------------
    deck = make_deck(n_ligand=96, n_protein=128, n_poses=512, seed=11)
    energies = evaluate_poses(deck)
    order = np.argsort(energies)

    print(f"screened {deck.poses.shape[0]} poses "
          f"({deck.n_interactions / 1e6:.1f} M atom-atom interactions)")
    print("top five poses by BUDE energy:")
    for rank, idx in enumerate(order[:5], 1):
        angles = np.degrees(deck.poses[idx, :3])
        trans = deck.poses[idx, 3:]
        print(
            f"  #{rank}: pose {idx:4d}  E = {energies[idx]:10.2f}"
            f"  rot=({angles[0]:6.1f},{angles[1]:6.1f},{angles[2]:6.1f}) deg"
            f"  t=({trans[0]:+.2f},{trans[1]:+.2f},{trans[2]:+.2f}) A"
        )

    # --- paper-scale FOM on every system -------------------------------
    app = MiniBude()
    print()
    print("paper-scale FOM (983040 poses, 2672x2672 atoms), one device:")
    for name in ("aurora", "dawn", "jlse-h100", "jlse-mi250"):
        engine = PerfEngine(get_system(name))
        fom = app.fom(engine, 1)
        frac = app.achieved_fp32_fraction(engine)
        print(
            f"  {engine.system.display_name:14s} {fom:8.1f} GInteractions/s"
            f"  ({frac:.0%} of FP32 peak)"
        )
    print()
    print("(paper Table VI: 293.02 / 366.17 / 638.40 / 193.66)")

if __name__ == "__main__":
    main()
