#!/usr/bin/env python3
"""Launch tuning, power, and the extension systems.

Three studies the paper's discussion motivates but doesn't tabulate:

1. the miniBUDE (ppwi x work-group) autotuning sweep — the search the
   paper runs "to find the fastest result";
2. energy-to-solution and flops/W under the two PVC power caps (Aurora
   500 W vs Dawn 600 W) and on the reference GPUs;
3. the extension systems: a Frontier MI250X node and the A100 data point
   (Section V-B.2's "62% of its peak").

Run:  python examples/tuning_energy_tradeoffs.py
"""

from repro import PerfEngine, Precision, get_system
from repro.hw.extensions import frontier, jlse_a100
from repro.miniapps import BudeAutotuner, MiniBude
from repro.sim.kernel import gemm_kernel
from repro.sim.power import PowerModel

def tuning_study() -> None:
    print("1. miniBUDE launch-parameter autotuning on one Aurora stack")
    tuner = BudeAutotuner(PerfEngine(get_system("aurora")))
    print("   ppwi \\ wgsize:   32     64    128    256    512   1024")
    for ppwi in (1, 4, 16, 32, 128):
        row = [tuner.throughput(ppwi, w) for w in (32, 64, 128, 256, 512, 1024)]
        print(f"   {ppwi:4d}        " + "".join(f"{v:7.0f}" for v in row))
    best = tuner.best()
    print(f"   best: {best}")
    print(f"   tuned fraction of FP32 peak: {tuner.tuned_fraction_of_peak():.0%}"
          f"  (paper: ~45-50% on PVC)")

def power_study() -> None:
    print("\n2. power and energy-to-solution (DGEMM, N=20480, full node)")
    spec = gemm_kernel(Precision.FP64)
    print(f"   {'system':14s} {'cap/card':>9s} {'node GPU W':>11s}"
          f" {'time':>8s} {'energy':>9s} {'GF/J':>7s}")
    for name in ("aurora", "dawn", "jlse-h100", "jlse-mi250"):
        engine = PerfEngine(get_system(name))
        pm = PowerModel(engine)
        report = pm.energy_to_solution(spec, engine.node.n_stacks)
        print(
            f"   {name:14s} {pm.card_cap_w:7.0f} W {pm.node_power_budget_w():9.0f} W"
            f" {report.time_s * 1e3:6.1f}ms {report.energy_j:7.1f} J"
            f" {report.work_per_joule / 1e9:7.1f}"
        )
    a = PowerModel(PerfEngine(get_system("aurora")))
    d = PowerModel(PerfEngine(get_system("dawn")))
    print(f"   FP64 efficiency: Aurora {a.flops_per_watt(Precision.FP64)/1e9:.0f}"
          f" vs Dawn {d.flops_per_watt(Precision.FP64)/1e9:.0f} GFlop/s/W")

def extension_study() -> None:
    print("\n3. extension systems (future-work comparisons)")
    app = MiniBude()
    for system in (frontier(), jlse_a100()):
        engine = PerfEngine(system)
        print(f"   {system.node.describe()}")
        print(
            f"     DGEMM/GCD-or-GPU: {engine.gemm_rate(Precision.FP64, 1)/1e12:5.1f} TFlop/s"
            f"   stream: {engine.stream_bw(1)/1e12:4.2f} TB/s"
        )
        fom = app.fom(engine, 1)
        frac = app.achieved_fp32_fraction(engine)
        print(f"     miniBUDE: {fom:6.1f} GInteractions/s ({frac:.0%} of peak)")
    print("   (paper: A100 'reached 62% of its peak'; Frontier numbers "
          "match its Table IV MI250x column)")

def main() -> None:
    tuning_study()
    power_study()
    extension_study()

if __name__ == "__main__":
    main()
