#!/usr/bin/env python3
"""Distributed runs across a node's stacks, with execution tracing.

Shows the explicit-scaling pattern the paper uses everywhere (one MPI
rank per stack) driving real computations over the simulated fabric:

1. CloverLeaf strip-decomposed over four Aurora stacks, bit-identical to
   the serial solver;
2. RI-MP2 strong-scaled over twelve stacks with an Allreduce;
3. OpenMC domain-replicated transport with tally reduction;
4. a Chrome-trace timeline of a SYCL offload pipeline (load it in
   Perfetto via chrome://tracing).

Run:  python examples/distributed_node.py
"""

import numpy as np

from repro import PerfEngine, get_system
from repro.apps.openmc import TransportProblem, smr_materials
from repro.apps.openmc import run_distributed as openmc_distributed
from repro.miniapps.cloverleaf import (
    EulerSolver2D,
    run_distributed as clover_distributed,
    sod_state,
)
from repro.miniapps.rimp2 import make_input, rimp2_energy, rimp2_energy_distributed
from repro.runtime.mpi import SimMPI
from repro.sim.kernel import gemm_kernel, triad_kernel
from repro.telemetry import Telemetry
from repro.dtypes import Precision

def clover() -> None:
    engine = PerfEngine(get_system("aurora"))
    n, steps = 64, 8
    serial = EulerSolver2D(sod_state(n), boundary="periodic")
    serial.run(steps)
    state, vtime = clover_distributed(engine, n=n, steps=steps, n_ranks=4)
    identical = np.allclose(state.u, serial.state.u, atol=1e-12)
    print("1. CloverLeaf over 4 stacks")
    print(f"   bit-identical to serial: {identical}")
    print(f"   simulated halo-exchange time: {vtime * 1e3:.3f} ms "
          f"({2 * steps} exchanges over MDFI/Xe-Link)")

def rimp2() -> None:
    engine = PerfEngine(get_system("aurora"))
    inp = make_input(n_aux=16, n_occ=8, n_virt=12, seed=3)
    serial = rimp2_energy(inp)
    results = SimMPI(engine, 12).run(
        lambda comm: rimp2_energy_distributed(comm, inp)
    )
    print("\n2. RI-MP2 strong-scaled over 12 stacks")
    print(f"   serial E_corr      = {serial:+.10f} Ha")
    print(f"   distributed E_corr = {results[0]:+.10f} Ha")

def openmc() -> None:
    engine = PerfEngine(get_system("aurora"))
    problem = TransportProblem(smr_materials(), size=40.0, nmesh=4)
    result = SimMPI(engine, 12).run(
        lambda comm: openmc_distributed(comm, problem, 1000, seed=17)
    )[0]
    print("\n3. OpenMC domain-replicated over 12 stacks")
    print(f"   {result.histories} histories, {result.collisions} collisions")
    print(f"   k (collision estimator) = {result.k_estimate:.4f}, "
          f"leakage {result.leakage_fraction:.1%}")

def trace() -> None:
    telemetry = Telemetry()
    engine = PerfEngine(get_system("aurora"), telemetry=telemetry)
    queue = telemetry.sycl_queue(engine, engine.node.stacks()[0])
    queue.set_repetition(2)
    host = queue.malloc_host(1 << 26)
    dev = queue.malloc_device(1 << 26)
    queue.memcpy(dev, host)
    queue.submit(triad_kernel(1 << 26))
    queue.submit(gemm_kernel(Precision.FP64, 4096))
    queue.memcpy(host, dev)
    tracer = telemetry.tracer
    print("\n4. execution trace of an offload pipeline (gpu 0.0)")
    for event in tracer.events:
        print(f"   {event.start_us:10.1f} us  {event.duration_us:10.1f} us  {event.name}")
    print(f"   total busy: {tracer.total_busy_us('gpu 0.0') / 1e3:.2f} ms; "
          f"export via tracer.export_json() -> chrome://tracing")
    print("   " + telemetry.summary())

def main() -> None:
    clover()
    rimp2()
    openmc()
    trace()

if __name__ == "__main__":
    main()
