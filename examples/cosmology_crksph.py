#!/usr/bin/env python3
"""Structure formation with the CRK-HACC kernels (Section VI-A.2).

Runs a real small N-body collapse with leapfrog gravity, demonstrates the
conservative-reproducing-kernel correction that distinguishes CRKSPH from
plain SPH, and reports the paper-scale node FOMs.

Run:  python examples/cosmology_crksph.py
"""

import numpy as np

from repro import PerfEngine, get_system
from repro.apps import (
    Hacc,
    NBodySystem,
    crk_interpolate,
    cubic_spline_kernel,
    sph_density,
)

def collapse_run() -> None:
    rng = np.random.default_rng(4)
    n = 128
    system = NBodySystem(
        pos=rng.normal(0, 1.0, (n, 3)),
        vel=np.zeros((n, 3)),
        mass=np.full(n, 1.0 / n),
        softening=0.1,
    )
    e0 = system.total_energy()
    p0 = system.total_momentum()
    r0 = float(np.mean(np.linalg.norm(system.pos, axis=1)))
    system.run(steps=150, dt=0.02)
    r1 = float(np.mean(np.linalg.norm(system.pos, axis=1)))
    print("1. cold collapse of a Gaussian cloud (128 particles, 150 steps)")
    print(f"   mean radius: {r0:.3f} -> {r1:.3f} (gravitational collapse)")
    print(f"   energy drift:   {abs(system.total_energy() - e0) / abs(e0):.2e}")
    print(f"   momentum drift: {np.abs(system.total_momentum() - p0).max():.2e}")

def crk_demo() -> None:
    rng = np.random.default_rng(5)
    pos = rng.uniform(0, 1, (150, 3))
    vol = np.full(150, 1.0 / 150)
    field = 2.0 + 3.0 * pos[:, 0] - 1.0 * pos[:, 2]

    diff = pos[:, None, :] - pos[None, :, :]
    r = np.sqrt((diff**2).sum(-1))
    plain = cubic_spline_kernel(r, 0.4) @ (vol * field)
    crk = crk_interpolate(pos, vol, field, h=0.4)
    print("\n2. reproducing-kernel correction on an irregular particle set")
    print(f"   plain SPH max error on a linear field: {np.abs(plain - field).max():.3f}")
    print(f"   CRK-SPH  max error on the same field:  {np.abs(crk - field).max():.2e}")

    rho = sph_density(pos, vol, h=0.25)
    print(f"   SPH density of the unit cloud: mean {rho.mean():.3f}")

def node_foms() -> None:
    print("\n3. paper-scale CRK-HACC node FOMs")
    app = Hacc()
    for name in ("aurora", "dawn", "jlse-h100", "jlse-mi250"):
        engine = PerfEngine(get_system(name))
        t = app.node_time_per_step(engine)
        print(
            f"   {engine.system.display_name:14s} FOM {app.fom(engine):6.2f}"
            f"  ({t:5.2f} s/step node model)"
        )
    print("   paper Table VI: 13.81 / 12.26 / 12.46 / 10.70")

def main() -> None:
    collapse_run()
    crk_demo()
    node_foms()

if __name__ == "__main__":
    main()
