#!/usr/bin/env python3
"""Characterize any of the four systems the way Section IV does.

Walks one system through the whole microbenchmark suite at every scope,
prints a Table II-style column, the memory-latency staircase (Figure 1),
and a roofline classification of representative kernels.

Run:  python examples/characterize_system.py [aurora|dawn|h100|mi250]
"""

import sys

from repro import PerfEngine, Precision, get_system
from repro.core.runner import RunPlan
from repro.micro import (
    Fft,
    Gemm,
    Lats,
    PcieBandwidth,
    PeakFlops,
    Triad,
    latency_curve,
)
from repro.sim.kernel import gemm_kernel, pointer_chase_kernel, triad_kernel

def characterize(name: str) -> None:
    system = get_system(name)
    engine = PerfEngine(system)
    plan = RunPlan(repetitions=5, warmup=1)
    scopes = [1]
    if system.node.card.n_devices == 2:
        scopes.append(2)
    scopes.append(system.n_stacks)

    print(system.node.describe())
    print("=" * 72)

    benches = [
        ("FP64 peak flops", PeakFlops(Precision.FP64)),
        ("FP32 peak flops", PeakFlops(Precision.FP32)),
        ("stream triad", Triad()),
        ("PCIe H2D", PcieBandwidth("h2d", payload_bytes=1 << 22)),
        ("PCIe bidir", PcieBandwidth("bidir", payload_bytes=1 << 22)),
        ("DGEMM", Gemm(Precision.FP64)),
        ("SGEMM", Gemm(Precision.FP32)),
        ("FFT C2C 1D", Fft(1)),
    ]
    header = "".join(f"{f'{n} dev':>16s}" for n in scopes)
    print(f"{'benchmark':20s}{header}")
    for label, bench in benches:
        cells = []
        for n in scopes:
            try:
                cells.append(f"{str(bench.measure(engine, n, plan).quantity):>16s}")
            except Exception:
                cells.append(f"{'-':>16s}")
        print(f"{label:20s}" + "".join(cells))

    print()
    print("memory latency staircase (pointer chase, cycles):")
    sizes, lats = latency_curve(engine)
    for pick in (0, len(sizes) // 3, 2 * len(sizes) // 3, len(sizes) - 1):
        size = int(sizes[pick])
        level = engine.device.memory.level_for(size).name
        print(f"  {size / 1024:12.0f} KiB -> {lats[pick]:7.1f} cycles  [{level}]")

    print()
    print("roofline classification:")
    for spec in (
        gemm_kernel(Precision.FP64, 4096),
        triad_kernel(),
        pointer_chase_kernel(1 << 30, n_chases=1_000_000),
    ):
        point = engine.roofline(spec)
        print(
            f"  {spec.name:22s} AI={spec.arithmetic_intensity:8.2f} flop/B"
            f"  -> {point.bound}-bound, {point.total_s * 1e3:8.3f} ms"
        )

def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "aurora"
    characterize(name)

if __name__ == "__main__":
    main()
