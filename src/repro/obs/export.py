"""Exporters over a run directory's event streams.

Two consumers, one source of truth (:mod:`.events`):

* :func:`export_chrome` turns a run directory into the standard
  ``chrome://tracing`` / Perfetto trace-event JSON by replaying the
  streams through :class:`repro.telemetry.trace.Tracer`.  A run with a
  live stream gets one lane per worker with wall-clock dispatch →
  completion spans plus instants for deaths, respawns, hang kills,
  quarantines and degradation; a deterministic-only directory (old
  runs, stripped archives) degrades to a single commit lane on the
  simulated clock with fault-injection instants.
* :func:`run_registry` folds the deterministic stream into a
  :class:`~repro.telemetry.metrics.MetricsRegistry` — unit/status
  counters, sim-cache counters, fault counts, a simulated-duration
  histogram — which the ``obs serve`` HTTP exporter renders with
  :meth:`~repro.telemetry.metrics.MetricsRegistry.to_openmetrics`.

A third consumer arrived with the benchmark service:
:func:`export_service_chrome` merges a **service state directory**
into one trace — per-tenant request lanes (whole-request spans with
nested phase spans from ``requests.ndjson``) alongside every spawned
campaign's worker lanes, all on one wall clock.  Spans carry their
``trace_id``, so Perfetto's flow/search follows a single id from HTTP
accept through queue wait into the fork worker that did the work.
:func:`export_main` auto-detects which shape a directory is.
"""

from __future__ import annotations

import json
import os
import sys

from ..errors import CampaignError
from ..ioutils import atomic_write_text
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.trace import Tracer
from .events import EVENTS_FILE, LIVE_FILE, read_events
from .requests import PHASES, REQUESTS_FILE, read_requests

__all__ = [
    "export_chrome",
    "export_json",
    "export_main",
    "export_service_chrome",
    "export_sweep_chrome",
    "run_registry",
]


def _live_trace(
    tracer: Tracer,
    live: list[dict],
    prefix: str = "",
    t0: float | None = None,
    group: int = 1,
) -> None:
    """Worker lanes on the wall clock, relative to the run-live mark.

    *prefix*/*t0*/*group* exist for the merged service export: lane
    names are prefixed with the spawning campaign's digest, timestamps
    are made relative to the service's epoch instead of the campaign's
    own first event, and the sort group places each campaign's lanes
    below the request lanes.  The defaults reproduce the single-run
    export byte for byte.
    """
    t0 = live[0]["ts"] if t0 is None else t0

    def us(ts: float) -> float:
        return (ts - t0) * 1e6

    lane_of: dict[int, str] = {}
    open_spans: dict[str, tuple[str, float, int, dict]] = {}

    def lane(index: int) -> str:
        if index not in lane_of:
            name = f"{prefix}worker-{index}"
            lane_of[index] = tracer.lane(name, sort_key=(group, index, 0))
        return lane_of[index]

    for rec in live:
        etype = rec["type"]
        if etype == "worker-spawn":
            name = tracer.lane(
                f"{prefix}worker-{rec['index']}", (group, rec["index"], 0)
            )
            lane_of[rec["index"]] = name
            tracer.instant(
                "worker-spawn",
                name,
                ts_us=us(rec["ts"]),
                category="supervision",
                worker=rec["worker"],
            )
        elif etype == "unit-dispatched":
            # A trace id stamped by the EventBus live_context rides
            # along onto the span, linking the worker's work back to
            # the service request that caused it.
            extra = (
                {"trace_id": rec["trace_id"]} if "trace_id" in rec else {}
            )
            open_spans[rec["unit"]] = (
                lane(rec["index"]),
                rec["ts"],
                rec["attempt"],
                extra,
            )
        elif etype == "unit-completed" and rec["unit"] in open_spans:
            span_lane, start_ts, attempt, extra = open_spans.pop(rec["unit"])
            tracer.complete(
                rec["unit"],
                span_lane,
                us(rec["ts"]) - us(start_ts),
                start_us=us(start_ts),
                category="unit",
                status=rec["status"],
                attempt=attempt,
                **extra,
            )
        elif etype in (
            "worker-exit",
            "worker-respawn",
            "worker-hang-kill",
            "quarantine",
            "pool-degraded",
        ):
            target = tracer.lane(f"{prefix}supervisor", (group - 1, 0, 0))
            if etype in ("worker-exit", "worker-hang-kill"):
                # Anchor the death marker on the lane that died; worker
                # names end in the spawn index ("campaign-worker-3").
                suffix = rec.get("worker", "").rsplit("-", 1)[-1]
                if suffix.isdigit() and int(suffix) in lane_of:
                    target = lane_of[int(suffix)]
            args = {
                k: v for k, v in rec.items() if k not in ("v", "type", "ts")
            }
            tracer.instant(
                etype,
                target,
                ts_us=us(rec["ts"]),
                category="supervision",
                **args,
            )


def _deterministic_trace(tracer: Tracer, det: list[dict]) -> None:
    """One commit lane on the simulated clock (no live stream)."""
    lane = tracer.lane("commit", (0, 0, 0))
    prev_us = 0.0
    for rec in det:
        if rec["type"] == "unit-committed":
            start = rec["sim_us"] - rec["simulated_s"] * 1e6
            tracer.complete(
                rec["unit"],
                lane,
                rec["simulated_s"] * 1e6,
                start_us=max(start, prev_us),
                category="unit",
                status=rec["status"],
            )
            prev_us = rec["sim_us"]
        elif rec["type"] == "fault-injected":
            tracer.instant(
                rec["incident"],
                lane,
                ts_us=rec["sim_us"],
                category="fault",
                unit=rec["unit"],
            )


def export_sweep_chrome(rundir: str | os.PathLike) -> dict:
    """A sweep run directory's timeline as a trace-event document.

    One ``sweep`` lane with a span per evaluation chunk (system, point
    count and grid offset in the args), laid end to end on the
    measured chunk walls, a ``best-point`` instant carrying the
    winning configuration, and a closing ``sweep-summary`` instant
    with the throughput figures the BENCH_3 gate pins.
    """
    from ..sweep.runner import SWEEP_FILE

    rundir = os.fspath(rundir)
    try:
        with open(os.path.join(rundir, SWEEP_FILE)) as handle:
            summary = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise CampaignError(f"{rundir} holds no readable sweep summary: {exc}")
    tracer = Tracer()
    lane = tracer.lane("sweep", (0, 0, 0))
    offset_us = 0.0
    for chunk in summary.get("chunks", []):
        dur_us = float(chunk["wall_s"]) * 1e6
        tracer.complete(
            f"chunk-{chunk['chunk']}",
            lane,
            dur_us,
            start_us=offset_us,
            category="sweep",
            system=chunk["system"],
            points=chunk["points"],
            offset=chunk["offset"],
        )
        offset_us += dur_us
    best = summary.get("best")
    if best:
        tracer.instant(
            "best-point",
            lane,
            ts_us=offset_us,
            category="sweep",
            system=best["system"],
            n_stacks=best["n_stacks"],
            precision=best["precision"],
            gflops=best["gflops"],
            bound=best["bound"],
            **{f"param_{k}": v for k, v in best.get("params", {}).items()},
        )
    scalar = summary.get("scalar", {})
    tracer.instant(
        "sweep-summary",
        lane,
        ts_us=offset_us,
        category="sweep",
        spec=summary.get("spec", {}).get("name"),
        points=summary.get("points"),
        points_per_s=summary.get("points_per_s"),
        batch_speedup=scalar.get("speedup"),
        verified_sample=scalar.get("sample"),
    )
    return tracer.to_chrome()


def export_chrome(rundir: str | os.PathLike) -> dict:
    """The run directory's timeline as a trace-event document.

    A directory carrying a ``requests.ndjson`` stream is a service
    state directory and gets the merged request + campaign-worker
    export; one carrying a ``sweep.json`` summary is a sweep run and
    gets the chunk-timeline export; a campaign run directory gets
    worker lanes (or the deterministic fallback).
    """
    from ..sweep.runner import SWEEP_FILE

    rundir = os.fspath(rundir)
    if os.path.exists(os.path.join(rundir, REQUESTS_FILE)):
        return export_service_chrome(rundir)
    if os.path.exists(os.path.join(rundir, SWEEP_FILE)):
        return export_sweep_chrome(rundir)
    det = read_events(os.path.join(rundir, EVENTS_FILE))
    live = read_events(os.path.join(rundir, LIVE_FILE))
    if not det and not live:
        raise CampaignError(f"{rundir} holds no event streams to export")
    tracer = Tracer()
    if live:
        _live_trace(tracer, live)
    else:
        _deterministic_trace(tracer, det)
    return tracer.to_chrome()


def _service_epoch(spans: list[dict], live: list[dict]) -> float:
    """The earliest wall-clock instant either stream knows about."""
    candidates = [rec["ts"] - rec.get("latency_s", 0.0) for rec in spans]
    candidates.extend(rec["ts"] for rec in live)
    return min(candidates)


def export_service_chrome(state_dir: str | os.PathLike) -> dict:
    """One merged trace for a service state directory.

    Lanes, top to bottom: a ``service`` lane (start/drain/quarantine
    instants), one lane per tenant holding whole-request spans with the
    phase breakdown nested inside each, then every spawned campaign's
    worker lanes (lane names prefixed with the campaign digest).  All
    spans carry ``trace_id`` args — the acceptance criterion that one
    trace shows HTTP accept → queue → fork worker → memo hit is
    literally "search the trace for the id from the response header".
    """
    state_dir = os.fspath(state_dir)
    spans = read_requests(os.path.join(state_dir, REQUESTS_FILE))
    live = read_events(os.path.join(state_dir, LIVE_FILE))
    if not spans and not live:
        raise CampaignError(
            f"{state_dir} holds no request or live streams to export"
        )
    tracer = Tracer()
    t0 = _service_epoch(spans, live)

    def us(ts: float) -> float:
        return (ts - t0) * 1e6

    service_lane = tracer.lane("service", (0, 0, 0))
    tenant_lanes: dict[str, str] = {}

    def tenant_lane(tenant: str) -> str:
        if tenant not in tenant_lanes:
            tenant_lanes[tenant] = tracer.lane(
                tenant, sort_key=(1, len(tenant_lanes), 0)
            )
        return tenant_lanes[tenant]

    for rec in spans:
        lane = tenant_lane(rec["tenant"])
        if rec["type"] == "request-shed":
            tracer.instant(
                "request-shed",
                lane,
                ts_us=us(rec["ts"]),
                category="request",
                request=rec["request"],
                reason=rec["reason"],
                trace_id=rec["trace_id"],
            )
            continue
        latency_us = rec["latency_s"] * 1e6
        start_us = us(rec["ts"]) - latency_us
        tracer.complete(
            rec["request"],
            lane,
            latency_us,
            start_us=start_us,
            category="request",
            trace_id=rec["trace_id"],
            endpoint=rec["endpoint"],
            status=rec["status"],
            cached=rec["cached"],
        )
        # Phase breakdown nested inside the request span, laid out
        # sequentially in lifecycle order (the phases are disjoint by
        # construction; their sum may undershoot the whole-request
        # latency — the gap is untracked handler time).
        offset = start_us
        for phase in PHASES:
            if phase not in rec.get("phases", {}):
                continue
            dur = rec["phases"][phase] * 1e6
            tracer.complete(
                f"{phase}",
                lane,
                dur,
                start_us=offset,
                category="phase",
                request=rec["request"],
                trace_id=rec["trace_id"],
            )
            offset += dur

    for rec in live:
        if rec["type"] in ("service-start", "service-drain",
                           "cache-quarantined"):
            args = {
                k: v for k, v in rec.items() if k not in ("v", "type", "ts")
            }
            tracer.instant(
                rec["type"],
                service_lane,
                ts_us=us(rec["ts"]),
                category="service",
                **args,
            )

    # Merge every spawned campaign's worker telemetry, on the same
    # epoch, each in its own lane group below the tenants.
    campaigns = os.path.join(state_dir, "campaigns")
    if os.path.isdir(campaigns):
        for index, digest in enumerate(sorted(os.listdir(campaigns))):
            campaign_live = read_events(
                os.path.join(campaigns, digest, LIVE_FILE)
            )
            if campaign_live:
                _live_trace(
                    tracer,
                    campaign_live,
                    prefix=f"{digest}/",
                    t0=t0,
                    group=3 + 2 * index,
                )
    return tracer.to_chrome()


def export_json(rundir: str | os.PathLike) -> str:
    """The Chrome-trace document serialized deterministically (sorted
    keys, stable indentation) so repeated exports compare with cmp."""
    return json.dumps(export_chrome(rundir), indent=2, sort_keys=True)


def run_registry(rundir: str | os.PathLike) -> MetricsRegistry:
    """Fold the deterministic stream into an exportable registry."""
    rundir = os.fspath(rundir)
    registry = MetricsRegistry()
    registry.counter("campaign.units", "campaign units committed, by status")
    registry.counter("simcache.hit", "sim memo cache hits")
    registry.counter("simcache.miss", "sim memo cache misses")
    registry.counter("simcache.bypass", "sim memo cache bypasses")
    registry.counter("fault.injected", "fault injections observed")
    registry.histogram(
        "unit.simulated_us", "per-unit simulated duration (microseconds)"
    )
    registry.gauge("campaign.simulated_seconds", "cumulative simulated clock")
    registry.gauge("campaign.complete", "1 once campaign-done was published")
    for rec in read_events(os.path.join(rundir, EVENTS_FILE)):
        etype = rec["type"]
        if etype == "unit-committed":
            registry.inc("campaign.units", 1, status=rec["status"])
            registry.observe(
                "unit.simulated_us", rec["simulated_s"] * 1e6
            )
        elif etype == "cache-stats":
            registry.inc("simcache.hit", rec["hits"])
            registry.inc("simcache.miss", rec["misses"])
            registry.inc("simcache.bypass", rec["bypasses"])
        elif etype == "fault-injected":
            registry.inc("fault.injected", 1, unit=rec["unit"])
        elif etype == "campaign-done":
            registry.set_gauge("campaign.complete", 1.0)
        registry.set_gauge("campaign.simulated_seconds", rec["sim_us"] / 1e6)
    for rec in read_events(os.path.join(rundir, LIVE_FILE)):
        if rec["type"] == "worker-respawn":
            registry.inc("worker.respawns")
        elif rec["type"] == "worker-hang-kill":
            registry.inc("worker.hang_kills")
        elif rec["type"] == "quarantine":
            registry.inc("unit.quarantined", 1, unit=rec["unit"])
    return registry


def export_main(args) -> int:
    """Dispatch ``pvc-bench obs export <rundir> [--out trace.json]``."""
    rundir = args.dir or (args.extra[0] if getattr(args, "extra", None) else None)
    if not rundir:
        raise CampaignError(
            "obs export needs a run directory "
            "(positional or --dir <directory>)"
        )
    text = export_json(rundir)
    if args.out:
        atomic_write_text(args.out, text + "\n")
        n = len(export_chrome(rundir)["traceEvents"])
        print(f"wrote {n} trace event(s) to {args.out}", file=sys.stderr)
    else:
        print(text)
    return 0
