"""Exporters over a run directory's event streams.

Two consumers, one source of truth (:mod:`.events`):

* :func:`export_chrome` turns a run directory into the standard
  ``chrome://tracing`` / Perfetto trace-event JSON by replaying the
  streams through :class:`repro.telemetry.trace.Tracer`.  A run with a
  live stream gets one lane per worker with wall-clock dispatch →
  completion spans plus instants for deaths, respawns, hang kills,
  quarantines and degradation; a deterministic-only directory (old
  runs, stripped archives) degrades to a single commit lane on the
  simulated clock with fault-injection instants.
* :func:`run_registry` folds the deterministic stream into a
  :class:`~repro.telemetry.metrics.MetricsRegistry` — unit/status
  counters, sim-cache counters, fault counts, a simulated-duration
  histogram — which the ``obs serve`` HTTP exporter renders with
  :meth:`~repro.telemetry.metrics.MetricsRegistry.to_openmetrics`.
"""

from __future__ import annotations

import json
import os
import sys

from ..errors import CampaignError
from ..ioutils import atomic_write_text
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.trace import Tracer
from .events import EVENTS_FILE, LIVE_FILE, read_events

__all__ = ["export_chrome", "export_json", "export_main", "run_registry"]


def _live_trace(tracer: Tracer, live: list[dict]) -> None:
    """Worker lanes on the wall clock, relative to the run-live mark."""
    t0 = live[0]["ts"]

    def us(ts: float) -> float:
        return (ts - t0) * 1e6

    lane_of: dict[int, str] = {}
    open_spans: dict[str, tuple[str, float, int]] = {}  # unit -> lane, ts, att

    def lane(index: int) -> str:
        if index not in lane_of:
            name = f"worker-{index}"
            lane_of[index] = tracer.lane(name, sort_key=(1, index, 0))
        return lane_of[index]

    for rec in live:
        etype = rec["type"]
        if etype == "worker-spawn":
            name = tracer.lane(f"worker-{rec['index']}", (1, rec["index"], 0))
            lane_of[rec["index"]] = name
            tracer.instant(
                "worker-spawn",
                name,
                ts_us=us(rec["ts"]),
                category="supervision",
                worker=rec["worker"],
            )
        elif etype == "unit-dispatched":
            open_spans[rec["unit"]] = (
                lane(rec["index"]),
                rec["ts"],
                rec["attempt"],
            )
        elif etype == "unit-completed" and rec["unit"] in open_spans:
            span_lane, start_ts, attempt = open_spans.pop(rec["unit"])
            tracer.complete(
                rec["unit"],
                span_lane,
                us(rec["ts"]) - us(start_ts),
                start_us=us(start_ts),
                category="unit",
                status=rec["status"],
                attempt=attempt,
            )
        elif etype in (
            "worker-exit",
            "worker-respawn",
            "worker-hang-kill",
            "quarantine",
            "pool-degraded",
        ):
            target = tracer.lane("supervisor", (0, 0, 0))
            if etype in ("worker-exit", "worker-hang-kill"):
                # Anchor the death marker on the lane that died; worker
                # names end in the spawn index ("campaign-worker-3").
                suffix = rec.get("worker", "").rsplit("-", 1)[-1]
                if suffix.isdigit() and int(suffix) in lane_of:
                    target = lane_of[int(suffix)]
            args = {
                k: v for k, v in rec.items() if k not in ("v", "type", "ts")
            }
            tracer.instant(
                etype,
                target,
                ts_us=us(rec["ts"]),
                category="supervision",
                **args,
            )


def _deterministic_trace(tracer: Tracer, det: list[dict]) -> None:
    """One commit lane on the simulated clock (no live stream)."""
    lane = tracer.lane("commit", (0, 0, 0))
    prev_us = 0.0
    for rec in det:
        if rec["type"] == "unit-committed":
            start = rec["sim_us"] - rec["simulated_s"] * 1e6
            tracer.complete(
                rec["unit"],
                lane,
                rec["simulated_s"] * 1e6,
                start_us=max(start, prev_us),
                category="unit",
                status=rec["status"],
            )
            prev_us = rec["sim_us"]
        elif rec["type"] == "fault-injected":
            tracer.instant(
                rec["incident"],
                lane,
                ts_us=rec["sim_us"],
                category="fault",
                unit=rec["unit"],
            )


def export_chrome(rundir: str | os.PathLike) -> dict:
    """The run directory's timeline as a trace-event document."""
    rundir = os.fspath(rundir)
    det = read_events(os.path.join(rundir, EVENTS_FILE))
    live = read_events(os.path.join(rundir, LIVE_FILE))
    if not det and not live:
        raise CampaignError(f"{rundir} holds no event streams to export")
    tracer = Tracer()
    if live:
        _live_trace(tracer, live)
    else:
        _deterministic_trace(tracer, det)
    return tracer.to_chrome()


def export_json(rundir: str | os.PathLike) -> str:
    """The Chrome-trace document serialized deterministically (sorted
    keys, stable indentation) so repeated exports compare with cmp."""
    return json.dumps(export_chrome(rundir), indent=2, sort_keys=True)


def run_registry(rundir: str | os.PathLike) -> MetricsRegistry:
    """Fold the deterministic stream into an exportable registry."""
    rundir = os.fspath(rundir)
    registry = MetricsRegistry()
    registry.counter("campaign.units", "campaign units committed, by status")
    registry.counter("simcache.hit", "sim memo cache hits")
    registry.counter("simcache.miss", "sim memo cache misses")
    registry.counter("simcache.bypass", "sim memo cache bypasses")
    registry.counter("fault.injected", "fault injections observed")
    registry.histogram(
        "unit.simulated_us", "per-unit simulated duration (microseconds)"
    )
    registry.gauge("campaign.simulated_seconds", "cumulative simulated clock")
    registry.gauge("campaign.complete", "1 once campaign-done was published")
    for rec in read_events(os.path.join(rundir, EVENTS_FILE)):
        etype = rec["type"]
        if etype == "unit-committed":
            registry.inc("campaign.units", 1, status=rec["status"])
            registry.observe(
                "unit.simulated_us", rec["simulated_s"] * 1e6
            )
        elif etype == "cache-stats":
            registry.inc("simcache.hit", rec["hits"])
            registry.inc("simcache.miss", rec["misses"])
            registry.inc("simcache.bypass", rec["bypasses"])
        elif etype == "fault-injected":
            registry.inc("fault.injected", 1, unit=rec["unit"])
        elif etype == "campaign-done":
            registry.set_gauge("campaign.complete", 1.0)
        registry.set_gauge("campaign.simulated_seconds", rec["sim_us"] / 1e6)
    for rec in read_events(os.path.join(rundir, LIVE_FILE)):
        if rec["type"] == "worker-respawn":
            registry.inc("worker.respawns")
        elif rec["type"] == "worker-hang-kill":
            registry.inc("worker.hang_kills")
        elif rec["type"] == "quarantine":
            registry.inc("unit.quarantined", 1, unit=rec["unit"])
    return registry


def export_main(args) -> int:
    """Dispatch ``pvc-bench obs export <rundir> [--out trace.json]``."""
    rundir = args.dir or (args.extra[0] if getattr(args, "extra", None) else None)
    if not rundir:
        raise CampaignError(
            "obs export needs a run directory "
            "(positional or --dir <directory>)"
        )
    text = export_json(rundir)
    if args.out:
        atomic_write_text(args.out, text + "\n")
        n = len(export_chrome(rundir)["traceEvents"])
        print(f"wrote {n} trace event(s) to {args.out}", file=sys.stderr)
    else:
        print(text)
    return 0
