"""Request-level observability: trace context, lifecycle stream, RED/SLO.

PR 8's daemon made a request durable; this module makes it *visible*.
Three pieces, all stdlib, all deterministic where the rest of the repo
demands it:

* **Trace context** — a W3C ``traceparent``-style identity minted per
  request.  The ids are pure functions of ``(request_id, content
  digest)`` via SHA-256 — no wall clock, no randomness — so a request
  retried after a SIGKILL, replayed from the queue journal, or executed
  under ``--jobs 4`` instead of serially carries byte-identical trace
  ids.  The daemon returns the ``traceparent`` header and exports
  :data:`TRACEPARENT_ENV` into campaign workers, so one id links the
  HTTP accept, the queue wait, the fork worker's spans and the memo
  store hits it caused.
* **Request lifecycle stream** — ``requests.ndjson`` in the service
  state directory: one schema-validated record per terminal request
  (phase spans: parse, admission, queue, cache, execute, serialize) or
  shed.  Same discipline as :mod:`.events`: append-only NDJSON, a
  torn-tail-tolerant reader (:func:`read_requests`), and a validator
  (:func:`validate_request_record`) the CI smoke job runs over the
  whole stream.
* **RED / SLO** — folding helpers that turn span records into
  per-tenant/per-endpoint rate/error/duration metrics
  (:func:`register_red_metrics` / :func:`record_span_metrics` /
  :func:`red_registry`) on the shared
  :class:`~repro.telemetry.metrics.MetricsRegistry`, plus
  :class:`SLOTracker`: configurable latency/availability objectives
  with multi-window burn rates (error rate over the window divided by
  the error budget — burn 1.0 means "spending the budget exactly as
  fast as the objective allows", sustained burn above 1.0 means the
  objective will be breached).
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass

from ..telemetry.metrics import MetricsRegistry
from .events import read_events

__all__ = [
    "LATENCY_BUCKETS_S",
    "PHASES",
    "REQUESTS_FILE",
    "REQUEST_SCHEMA_VERSION",
    "SLOConfig",
    "SLOTracker",
    "TRACEPARENT_ENV",
    "TRACEPARENT_HEADER",
    "TraceContext",
    "RequestLog",
    "child_span_id",
    "mint_trace",
    "parse_traceparent",
    "read_requests",
    "record_span_metrics",
    "red_registry",
    "register_red_metrics",
    "validate_request_record",
]

REQUEST_SCHEMA_VERSION = 1

#: The request lifecycle stream inside a service state directory.
REQUESTS_FILE = "requests.ndjson"

#: Environment variable carrying the active traceparent into campaign
#: orchestrators and their forked workers.
TRACEPARENT_ENV = "REPRO_TRACEPARENT"

#: HTTP header name (lowercase per the W3C Trace Context spec).
TRACEPARENT_HEADER = "traceparent"

#: Phase spans a request record may carry, in lifecycle order.
PHASES = ("parse", "admission", "queue", "cache", "execute", "serialize")

#: Latency histogram bounds shared by the daemon's RED metrics and the
#: loadgen client, so client- and server-side percentiles use one
#: estimator over one bucket layout.
LATENCY_BUCKETS_S = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0,
)

#: Request stream: record type -> required fields beyond the
#: ``v``/``type``/``ts`` envelope.
REQUEST_EVENTS: dict[str, dict[str, type | tuple[type, ...]]] = {
    "request-span": {
        "trace_id": str,
        "span_id": str,
        "request": str,
        "tenant": str,
        "endpoint": str,
        "status": str,
        "cached": bool,
        "latency_s": (int, float),
        "phases": dict,
    },
    "request-shed": {
        "trace_id": str,
        "request": str,
        "tenant": str,
        "endpoint": str,
        "reason": str,
    },
}


# ----------------------------------------------------------------------
# trace context
# ----------------------------------------------------------------------


def _hex(parts: tuple[str, ...], nbytes: int) -> str:
    digest = hashlib.sha256("\x1f".join(parts).encode("utf-8")).hexdigest()
    return digest[: nbytes * 2]


@dataclass(frozen=True, slots=True)
class TraceContext:
    """One request's W3C-style trace identity (hex ids, version 00)."""

    trace_id: str  # 32 hex chars (16 bytes)
    span_id: str  # 16 hex chars (8 bytes)

    @property
    def traceparent(self) -> str:
        return f"00-{self.trace_id}-{self.span_id}-01"


def mint_trace(request_id: str, digest: str) -> TraceContext:
    """The deterministic trace identity of one request.

    Pure function of the client's retry key and the request's content
    digest: a retry, a journal replay after SIGKILL, and the same
    content executed serially or under ``--jobs N`` all mint identical
    ids — which is exactly what lets one Perfetto trace stitch a
    pre-crash accept to its post-restart execution.
    """
    trace_id = _hex(("repro.trace", request_id, digest), 16)
    span_id = _hex(("repro.span", request_id, digest), 8)
    return TraceContext(trace_id, span_id)


def child_span_id(trace: TraceContext, name: str) -> str:
    """A deterministic child span id under *trace* (for sub-phases)."""
    return _hex(("repro.span", trace.trace_id, trace.span_id, name), 8)


def parse_traceparent(header: str | None) -> TraceContext | None:
    """Decode a ``traceparent`` header; ``None`` on anything malformed.

    Lenient on version/flags (future versions still carry ids in the
    same positions), strict on id shape: 32/16 lowercase hex chars,
    not all zeros (the W3C invalid sentinel).
    """
    if not header:
        return None
    parts = header.strip().split("-")
    if len(parts) < 4 or len(parts[1]) != 32 or len(parts[2]) != 16:
        return None
    trace_id, span_id = parts[1], parts[2]
    hexdigits = set("0123456789abcdef")
    if not (set(trace_id) <= hexdigits and set(span_id) <= hexdigits):
        return None
    if set(trace_id) == {"0"} or set(span_id) == {"0"}:
        return None
    return TraceContext(trace_id, span_id)


# ----------------------------------------------------------------------
# lifecycle stream
# ----------------------------------------------------------------------


def validate_request_record(record: object) -> str:
    """Check one decoded record against the request-stream schema.

    Returns the record type on success; raises :class:`ValueError`
    otherwise.  ``phases`` values must be non-negative numbers keyed by
    the known phase names — an unknown phase is a schema bug, not data.
    """
    if not isinstance(record, dict):
        raise ValueError(f"request record is not an object: {record!r}")
    if record.get("v") != REQUEST_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported request schema version {record.get('v')!r}"
        )
    rtype = record.get("type")
    if rtype not in REQUEST_EVENTS:
        raise ValueError(f"unknown request record type {rtype!r}")
    fields = REQUEST_EVENTS[rtype]
    for key, expected in {"ts": (int, float), **fields}.items():
        if key not in record:
            raise ValueError(f"{rtype}: missing field {key!r}")
        if not isinstance(record[key], expected):
            raise ValueError(
                f"{rtype}: field {key!r} has {type(record[key]).__name__}, "
                f"expected {expected}"
            )
    phases = record.get("phases")
    if phases is not None:
        for name, value in phases.items():
            if name not in PHASES:
                raise ValueError(f"{rtype}: unknown phase {name!r}")
            if not isinstance(value, (int, float)) or value < 0:
                raise ValueError(
                    f"{rtype}: phase {name!r} must be a non-negative "
                    f"number, got {value!r}"
                )
    return rtype


def read_requests(path: str | os.PathLike) -> list[dict]:
    """Decode a request stream, tolerating a torn tail.

    Same contract as :func:`repro.obs.events.read_events` — the longest
    intact prefix of wholly-written lines — with one addition: a
    decodable line that fails schema validation also ends the trusted
    prefix (foreign bytes that happen to be JSON are still foreign).
    """
    records: list[dict] = []
    for record in read_events(path):
        try:
            validate_request_record(record)
        except ValueError:
            break
        records.append(record)
    return records


class RequestLog:
    """Appender for the request lifecycle stream.

    Append-only buffered line writes with an explicit flush, exactly
    like the live event stream: a concurrent board sees whole lines
    promptly and a crash tears at most the final line, which
    :func:`read_requests` tolerates.  Thread-safe — executor threads
    finish requests concurrently.
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = os.fspath(directory)
        self.path = os.path.join(self.directory, REQUESTS_FILE)
        self._lock = threading.Lock()

    def append(self, rtype: str, **fields) -> dict:
        record = {
            "v": REQUEST_SCHEMA_VERSION,
            "type": rtype,
            "ts": time.time(),
            **fields,
        }
        validate_request_record(record)
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._lock:
            os.makedirs(self.directory, exist_ok=True)
            with open(self.path, "a", encoding="utf-8", newline="") as fh:
                fh.write(line)
                fh.flush()
        return record

    def records(self) -> list[dict]:
        return read_requests(self.path)


# ----------------------------------------------------------------------
# RED metrics
# ----------------------------------------------------------------------


def register_red_metrics(registry: MetricsRegistry) -> None:
    """Declare the per-tenant/per-endpoint RED families (idempotent).

    Declared up front so a scrape of an idle daemon still exports every
    series dashboards alert on.
    """
    registry.counter(
        "service.request.count", "requests by tenant/endpoint/status"
    )
    registry.counter(
        "service.request.errors", "non-done requests by tenant/endpoint"
    )
    registry.counter(
        "service.request.sheds", "admission sheds by tenant/reason"
    )
    registry.histogram(
        "service.request.latency_s",
        "end-to-end request latency by tenant/endpoint",
        buckets=LATENCY_BUCKETS_S,
    )
    registry.histogram(
        "service.request.phase_s",
        "per-phase request latency (parse/admission/queue/cache/"
        "execute/serialize)",
        buckets=LATENCY_BUCKETS_S,
    )


def record_span_metrics(registry: MetricsRegistry, record: dict) -> None:
    """Fold one request-span / request-shed record into the registry."""
    tenant = record["tenant"]
    if record["type"] == "request-shed":
        registry.inc(
            "service.request.sheds", tenant=tenant, reason=record["reason"]
        )
        return
    endpoint = record["endpoint"]
    registry.inc(
        "service.request.count",
        tenant=tenant,
        endpoint=endpoint,
        status=record["status"],
    )
    if record["status"] != "done":
        registry.inc(
            "service.request.errors", tenant=tenant, endpoint=endpoint
        )
    registry.observe(
        "service.request.latency_s",
        float(record["latency_s"]),
        tenant=tenant,
        endpoint=endpoint,
    )
    for phase, seconds in record.get("phases", {}).items():
        registry.observe(
            "service.request.phase_s", float(seconds), phase=phase
        )


def red_registry(directory: str | os.PathLike) -> MetricsRegistry:
    """Rebuild the RED registry from a state directory's bytes on disk.

    The offline twin of the daemon's live registry: ``obs serve``
    pointed at a service state directory and post-mortem tooling both
    fold the same stream through the same code path.
    """
    registry = MetricsRegistry()
    register_red_metrics(registry)
    path = os.path.join(os.fspath(directory), REQUESTS_FILE)
    for record in read_requests(path):
        record_span_metrics(registry, record)
    return registry


# ----------------------------------------------------------------------
# SLO tracking
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class SLOConfig:
    """The service objective: latency bound, availability target, windows.

    A request is *good* when it finished with status ``done`` within
    ``latency_s``.  The objective promises at least ``availability``
    good requests; the error budget is ``1 - availability``.
    """

    latency_s: float = 5.0
    availability: float = 0.99
    windows_s: tuple[float, ...] = (60.0, 300.0, 3600.0)

    def __post_init__(self) -> None:
        if self.latency_s <= 0:
            raise ValueError("SLO latency objective must be positive")
        if not 0.0 < self.availability < 1.0:
            raise ValueError("SLO availability must be in (0, 1)")
        if not self.windows_s or any(w <= 0 for w in self.windows_s):
            raise ValueError("SLO windows must be positive")


#: Sample-count ceiling: the tracker is a ring over recent requests,
#: bounded so a month-long daemon cannot grow without limit.
_MAX_SLO_SAMPLES = 100_000


class SLOTracker:
    """Multi-window burn-rate computation over a good/bad request stream.

    Burn rate per window = (error rate in the window) / (error budget).
    1.0 means the budget is being spent exactly at the sustainable
    rate; above 1.0 the objective is being breached if sustained.  The
    clock is injectable so offline replays (``service watch`` over a
    dead state directory) can drive it with record timestamps.
    """

    def __init__(
        self, config: SLOConfig | None = None, clock=time.monotonic
    ) -> None:
        self.config = config or SLOConfig()
        self.clock = clock
        self.good = 0
        self.total = 0
        self._samples: deque[tuple[float, bool]] = deque(
            maxlen=_MAX_SLO_SAMPLES
        )
        self._lock = threading.Lock()

    def record(
        self, ok: bool, latency_s: float, now: float | None = None
    ) -> bool:
        """Account one finished request; returns whether it was good."""
        now = self.clock() if now is None else now
        good = bool(ok) and latency_s <= self.config.latency_s
        horizon = now - max(self.config.windows_s)
        with self._lock:
            self.total += 1
            self.good += good
            self._samples.append((now, good))
            while self._samples and self._samples[0][0] < horizon:
                self._samples.popleft()
        return good

    def window_counts(
        self, window_s: float, now: float | None = None
    ) -> tuple[int, int]:
        """``(good, total)`` among samples inside the trailing window."""
        now = self.clock() if now is None else now
        cutoff = now - window_s
        good = total = 0
        with self._lock:
            for ts, ok in reversed(self._samples):
                if ts < cutoff:
                    break
                total += 1
                good += ok
        return good, total

    def burn_rate(self, window_s: float, now: float | None = None) -> float:
        """The window's error-budget burn rate (0.0 when no samples)."""
        good, total = self.window_counts(window_s, now)
        if not total:
            return 0.0
        error_rate = (total - good) / total
        budget = 1.0 - self.config.availability
        return error_rate / budget

    def snapshot(self, now: float | None = None) -> dict:
        """The JSON document ``/healthz`` and the board embed."""
        now = self.clock() if now is None else now
        windows = {}
        burning = False
        for window_s in self.config.windows_s:
            good, total = self.window_counts(window_s, now)
            burn = self.burn_rate(window_s, now)
            burning = burning or burn > 1.0
            windows[f"{window_s:g}s"] = {
                "total": total,
                "good": good,
                "error_rate": round(
                    (total - good) / total if total else 0.0, 6
                ),
                "burn_rate": round(burn, 4),
            }
        with self._lock:
            good, total = self.good, self.total
        return {
            "objective": {
                "latency_s": self.config.latency_s,
                "availability": self.config.availability,
            },
            "total": total,
            "good": good,
            "compliance": round(good / total if total else 1.0, 6),
            "windows": windows,
            "status": "burning" if burning else "ok",
        }
