"""Live observability for campaigns and benchmarks.

Four pieces layered over the telemetry/campaign/profiler stack:

* :mod:`repro.obs.events` — the structured event bus: every layer
  (orchestrator commits, supervisor respawns/heartbeats, memo-cache
  accounting, fault injections, profiler attribution) publishes typed
  NDJSON records into the run directory.  The deterministic stream
  (``events.ndjson``) is stamped with the simulated clock and is
  byte-identical across serial and parallel runs; the live stream
  (``live.ndjson``) carries wall-clock worker telemetry for watching.
* :mod:`repro.obs.watch` — ``pvc-bench campaign watch <rundir>``: a
  status board tailing the journal + event streams from another
  process, with per-worker lanes, cache hit rate, quarantines and ETA.
* :mod:`repro.obs.export` — Chrome-trace-event/Perfetto export of a
  run's unit spans with worker lanes, and the OpenMetrics snapshot the
  ``obs serve`` stdlib HTTP exporter publishes.
* :mod:`repro.obs.trend` — cross-run analytics over ``BENCH_*.json``
  baselines: attributes FOM / wall-clock / sim-cache deltas to the
  kernels and roofline bounds that moved.
* :mod:`repro.obs.requests` — service-side request observability:
  deterministic W3C-style trace contexts, the ``requests.ndjson``
  lifecycle stream, per-tenant RED metrics and the SLO burn tracker
  behind ``pvc-bench service watch`` and the daemon's ``/metrics``.
"""

from .events import (
    DETERMINISTIC_EVENTS,
    EVENTS_FILE,
    EVENT_SCHEMA_VERSION,
    LIVE_EVENTS,
    LIVE_FILE,
    EventBus,
    read_events,
    validate_event,
)
from .requests import (
    REQUESTS_FILE,
    RequestLog,
    SLOConfig,
    SLOTracker,
    TraceContext,
    mint_trace,
    parse_traceparent,
    read_requests,
    red_registry,
    validate_request_record,
)

__all__ = [
    "DETERMINISTIC_EVENTS",
    "EVENTS_FILE",
    "EVENT_SCHEMA_VERSION",
    "EventBus",
    "LIVE_EVENTS",
    "LIVE_FILE",
    "REQUESTS_FILE",
    "RequestLog",
    "SLOConfig",
    "SLOTracker",
    "TraceContext",
    "mint_trace",
    "parse_traceparent",
    "read_events",
    "read_requests",
    "red_registry",
    "validate_event",
    "validate_request_record",
]
