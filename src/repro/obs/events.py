"""The structured event bus: typed NDJSON streams in the run directory.

Two append-only streams live next to the campaign journal:

* ``events.ndjson`` — the **deterministic** stream.  Records are
  emitted at unit *commit* points (the same topological order the
  journal uses), stamped with a sequence number and the cumulative
  simulated clock, and never carry wall-clock time, hostnames or PIDs.
  For a given (spec, scenario, seed) the stream is byte-identical
  however the run was parallelised — the CI ``obs-smoke`` job ``cmp``\\ s
  a ``--jobs 4`` stream against the serial golden.
* ``live.ndjson`` — the **live** stream.  Worker-pool telemetry
  (spawns, dispatches, heartbeats, respawns, hang kills, degradation)
  stamped with ``time.time()``; explicitly excluded from the
  determinism guarantee and consumed by ``campaign watch`` /
  ``campaign status`` for lanes, heartbeat ages and ETA.

Every record is one JSON object per line with ``v`` (schema version)
and ``type``; :func:`validate_event` checks a record against the typed
schema and is what the CI smoke job runs over the whole stream.
Readers tolerate a torn last line (the writer appends without an
atomic rename), mirroring the journal's torn-tail recovery.
"""

from __future__ import annotations

import json
import os
import time

__all__ = [
    "DETERMINISTIC_EVENTS",
    "EVENTS_FILE",
    "EVENT_SCHEMA_VERSION",
    "EventBus",
    "LIVE_EVENTS",
    "LIVE_FILE",
    "read_events",
    "validate_event",
]

EVENT_SCHEMA_VERSION = 1

#: File names inside a campaign run directory.
EVENTS_FILE = "events.ndjson"
LIVE_FILE = "live.ndjson"

#: Deterministic stream: event type -> required fields (beyond the
#: envelope ``v``/``type``/``seq``/``sim_us``) and their types.
DETERMINISTIC_EVENTS: dict[str, dict[str, type | tuple[type, ...]]] = {
    "campaign-start": {
        "spec": str,
        "spec_digest": str,
        "scenario": (str, type(None)),
        "seed": int,
        "units": int,
    },
    "unit-committed": {
        "unit": str,
        "status": str,
        "digest": str,
        "simulated_s": (int, float),
    },
    "cache-stats": {
        "unit": str,
        "hits": (int, float),
        "misses": (int, float),
        "bypasses": (int, float),
    },
    "fault-injected": {"unit": str, "incident": str},
    "profile-attributed": {
        "unit": str,
        "digest": str,
        "device_us": (int, float),
        "kernels": int,
    },
    "resume": {"skipped": int, "rerun": int},
    "interrupted": {"before": str},
    "deadline": {"before": str, "simulated_s": (int, float)},
    "campaign-done": {"exit": int},
}

#: Live stream: event type -> required fields (beyond ``v``/``type``/``ts``).
LIVE_EVENTS: dict[str, dict[str, type | tuple[type, ...]]] = {
    "run-live": {"jobs": int, "pid": int, "units": int},
    "worker-spawn": {"worker": str, "index": int},
    "unit-dispatched": {"unit": str, "index": int, "attempt": int},
    "worker-heartbeat": {"index": int, "unit": str},
    "unit-completed": {"unit": str, "status": str},
    "worker-exit": {
        "worker": str,
        "exitcode": (int, type(None)),
        "unit": (str, type(None)),
    },
    "worker-respawn": {"worker": str, "replaces": str, "respawns_used": int},
    "worker-hang-kill": {"worker": str, "unit": str},
    "pool-degraded": {},
    "quarantine": {"unit": str, "exit_codes": list},
    # Benchmark-service telemetry (repro.service.daemon): the daemon's
    # state directory carries the same live stream as a campaign dir,
    # so watch-style tooling and the smoke jobs tail one format.
    "service-start": {"pid": int, "port": int, "recovered": int},
    "request-accepted": {"request": str, "tenant": str, "kind": str},
    "request-shed": {"tenant": str, "reason": str},
    "request-executing": {"request": str, "tenant": str},
    "request-cache": {"request": str, "hit": bool},
    "request-completed": {"request": str, "status": str, "cached": bool},
    "request-recovered": {"request": str, "tenant": str},
    "cache-quarantined": {"key": str},
    "service-drain": {"inflight": int, "queued": int},
}


def validate_event(record: object) -> str:
    """Check one decoded record against the event schema.

    Returns the event type on success; raises :class:`ValueError` with a
    precise complaint otherwise.  Deterministic records must carry the
    ``seq``/``sim_us`` envelope and no wall-clock field; live records
    the ``ts`` envelope.
    """
    if not isinstance(record, dict):
        raise ValueError(f"event record is not an object: {record!r}")
    if record.get("v") != EVENT_SCHEMA_VERSION:
        raise ValueError(f"unsupported event schema version {record.get('v')!r}")
    etype = record.get("type")
    if etype in DETERMINISTIC_EVENTS:
        fields = DETERMINISTIC_EVENTS[etype]
        envelope = {"seq": int, "sim_us": (int, float)}
        if "ts" in record:
            raise ValueError(
                f"{etype}: deterministic events must not carry wall time"
            )
    elif etype in LIVE_EVENTS:
        fields = LIVE_EVENTS[etype]
        envelope = {"ts": (int, float)}
    else:
        raise ValueError(f"unknown event type {etype!r}")
    for key, expected in {**envelope, **fields}.items():
        if key not in record:
            raise ValueError(f"{etype}: missing field {key!r}")
        if not isinstance(record[key], expected):
            raise ValueError(
                f"{etype}: field {key!r} has {type(record[key]).__name__}, "
                f"expected {expected}"
            )
    return etype


def read_events(path: str | os.PathLike) -> list[dict]:
    """Decode an NDJSON event stream, tolerating a torn last line.

    A missing file reads as an empty stream (older run directories have
    no event streams; a watch attached before the first commit sees no
    events yet).  Any undecodable line ends the trusted prefix.
    """
    path = os.fspath(path)
    if not os.path.exists(path):
        return []
    records: list[dict] = []
    # errors="replace": undecodable bytes (a torn multi-byte character,
    # foreign garbage) become U+FFFD, fail json.loads, and end the
    # trusted prefix instead of raising out of the reader.
    with open(path, "r", encoding="utf-8", errors="replace", newline="") as fh:
        for raw in fh:
            line = raw.strip()
            if not line or not raw.endswith("\n"):
                break
            try:
                doc = json.loads(line)
            except json.JSONDecodeError:
                break
            records.append(doc)
    return records


class EventBus:
    """Publishes typed records into a run directory's event streams.

    Files are created lazily on first emit, so read-only consumers
    (``status``, ``verify``, ``watch``) can construct a bus without
    touching the directory.  Appends are buffered line writes with an
    explicit flush — a concurrent watcher sees whole lines promptly,
    and a crash can tear at most the last line, which every reader
    tolerates.  On construction over an existing stream the sequence
    counter resumes after the last trusted record, so a resumed
    campaign extends the stream exactly like the journal.

    ``live_context`` fields are merged into every live record (explicit
    fields win).  The daemon uses it to stamp a campaign run's worker
    telemetry with the originating request's ``trace_id`` — the
    deterministic stream never carries it, preserving byte-identity.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        enabled: bool = True,
        live_context: dict | None = None,
    ) -> None:
        self.directory = os.fspath(directory)
        self.enabled = enabled
        self.live_context = dict(live_context) if live_context else {}
        self.events_path = os.path.join(self.directory, EVENTS_FILE)
        self.live_path = os.path.join(self.directory, LIVE_FILE)
        self._seq: int | None = None  # scanned lazily on first emit

    # ------------------------------------------------------------------

    def _next_seq(self) -> int:
        if self._seq is None:
            existing = read_events(self.events_path)
            self._seq = existing[-1]["seq"] + 1 if existing else 0
        seq, self._seq = self._seq, self._seq + 1
        return seq

    def _append(self, path: str, record: dict) -> None:
        os.makedirs(self.directory, exist_ok=True)
        line = json.dumps(record, sort_keys=True) + "\n"
        with open(path, "a", encoding="utf-8", newline="") as fh:
            fh.write(line)
            fh.flush()

    # ------------------------------------------------------------------

    def emit(self, etype: str, *, sim_us: float, **fields) -> dict | None:
        """Publish one deterministic record (commit-order stream)."""
        if not self.enabled:
            return None
        if etype not in DETERMINISTIC_EVENTS:
            raise ValueError(f"unknown deterministic event type {etype!r}")
        record = {
            "v": EVENT_SCHEMA_VERSION,
            "type": etype,
            "seq": self._next_seq(),
            "sim_us": float(sim_us),
            **fields,
        }
        validate_event(record)
        self._append(self.events_path, record)
        return record

    def live(self, etype: str, **fields) -> dict | None:
        """Publish one live record (wall-clock worker telemetry)."""
        if not self.enabled:
            return None
        if etype not in LIVE_EVENTS:
            raise ValueError(f"unknown live event type {etype!r}")
        record = {
            "v": EVENT_SCHEMA_VERSION,
            "type": etype,
            "ts": time.time(),
            **self.live_context,
            **fields,
        }
        validate_event(record)
        self._append(self.live_path, record)
        return record

    # ------------------------------------------------------------------

    def deterministic_records(self) -> list[dict]:
        return read_events(self.events_path)

    def live_records(self) -> list[dict]:
        return read_events(self.live_path)
