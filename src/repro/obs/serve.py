"""``pvc-bench obs serve``: a stdlib OpenMetrics exporter for run dirs.

A :class:`~http.server.ThreadingHTTPServer` publishing three routes:

* ``/metrics`` — the run directory folded into an OpenMetrics
  exposition (:func:`repro.obs.export.run_registry` +
  :meth:`~repro.telemetry.metrics.MetricsRegistry.to_openmetrics`).
  Rebuilt from disk on every scrape, so a Prometheus pointed at a
  *running* campaign sees live progress without any coupling to the
  orchestrator process.
* ``/healthz`` — liveness (always 200 once the server is up).
* ``/`` — a plain-text index.

No third-party dependencies: the whole exporter is ``http.server``
over the same event-stream readers the watch board uses.  Port 0 binds
an ephemeral port (tests scrape ``server.server_address``).
"""

from __future__ import annotations

import os
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..errors import CampaignError
from .export import run_registry

__all__ = ["ObsServer", "serve_main"]

#: Content type the OpenMetrics spec registers for text expositions.
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-obs/1"

    def _send(self, status: int, body: str, content_type: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        rundir = self.server.rundir  # type: ignore[attr-defined]
        if self.path == "/metrics":
            try:
                body = run_registry(rundir).to_openmetrics()
            except Exception as exc:  # noqa: BLE001 - surfaced as 500
                self._send(500, f"scrape failed: {exc}\n", "text/plain")
                return
            self._send(200, body, OPENMETRICS_CONTENT_TYPE)
        elif self.path == "/healthz":
            self._send(200, "ok\n", "text/plain")
        elif self.path == "/":
            self._send(
                200,
                f"repro obs exporter for {rundir}\n"
                "routes: /metrics /healthz\n",
                "text/plain",
            )
        else:
            self._send(404, "not found\n", "text/plain")

    def log_message(self, format, *args) -> None:  # noqa: A002
        # Scrape chatter stays off stderr; failures surface as statuses.
        pass


class ObsServer(ThreadingHTTPServer):
    """The exporter bound to one run directory."""

    daemon_threads = True

    def __init__(self, rundir: str | os.PathLike, port: int = 0,
                 host: str = "127.0.0.1") -> None:
        self.rundir = os.fspath(rundir)
        super().__init__((host, port), _Handler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def serve_background(self) -> threading.Thread:
        """Serve from a daemon thread (tests; embedding in a watch)."""
        thread = threading.Thread(
            target=self.serve_forever, name="obs-serve", daemon=True
        )
        thread.start()
        return thread


def serve_main(args) -> int:
    """Dispatch ``pvc-bench obs serve <rundir> [--port N]``."""
    rundir = args.dir or (args.extra[0] if getattr(args, "extra", None) else None)
    if not rundir:
        raise CampaignError(
            "obs serve needs a run directory "
            "(positional or --dir <directory>)"
        )
    if not os.path.isdir(rundir):
        raise CampaignError(f"{rundir} is not a directory")
    server = ObsServer(rundir, port=getattr(args, "port", None) or 0)
    print(
        f"serving OpenMetrics for {rundir} at {server.url}/metrics "
        "(Ctrl-C stops)",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass
    finally:
        server.server_close()
    return 0
