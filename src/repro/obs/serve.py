"""``pvc-bench obs serve``: a stdlib OpenMetrics exporter for run dirs.

A :class:`~repro.service.httpd.GracefulHTTPServer` publishing three
routes:

* ``/metrics`` — the run directory folded into an OpenMetrics
  exposition (:func:`repro.obs.export.run_registry` +
  :meth:`~repro.telemetry.metrics.MetricsRegistry.to_openmetrics`).
  Rebuilt from disk on every scrape, so a Prometheus pointed at a
  *running* campaign sees live progress without any coupling to the
  orchestrator process.  When the directory is a *service* state dir
  (it contains ``requests.ndjson``), the exposition is the per-tenant
  RED registry (:func:`repro.obs.requests.red_registry`) instead.
* ``/healthz`` — liveness (always 200 once the server is up).
* ``/`` — a plain-text index.

No third-party dependencies: the whole exporter is ``http.server``
over the same event-stream readers the watch board uses.  Port 0 binds
an ephemeral port (tests scrape ``server.server_address``).

Shutdown is the graceful path the benchmark daemon uses: handler
threads are *daemonic by deliberate choice* (a drain overrun must
never hang interpreter exit) but tracked, and :meth:`ObsServer.stop`
drains in-flight scrapes against a bound before closing the socket —
a mid-scrape Ctrl-C finishes the response it owes instead of tearing
the connection mid-write.
"""

from __future__ import annotations

import os
import signal
import sys
import threading
from http.server import BaseHTTPRequestHandler

from ..errors import CampaignError
from ..service.httpd import GracefulHTTPServer
from .export import run_registry
from .requests import REQUESTS_FILE, red_registry


def _scrape_registry(rundir: str):
    """Pick the registry that matches what the directory holds."""
    if os.path.exists(os.path.join(rundir, REQUESTS_FILE)):
        return red_registry(rundir)
    return run_registry(rundir)

__all__ = ["ObsServer", "serve_main"]

#: Content type the OpenMetrics spec registers for text expositions.
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-obs/1"

    def _send(self, status: int, body: str, content_type: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        rundir = self.server.rundir  # type: ignore[attr-defined]
        if self.path == "/metrics":
            try:
                body = _scrape_registry(rundir).to_openmetrics()
            except Exception as exc:  # noqa: BLE001 - surfaced as 500
                self._send(500, f"scrape failed: {exc}\n", "text/plain")
                return
            self._send(200, body, OPENMETRICS_CONTENT_TYPE)
        elif self.path == "/healthz":
            self._send(200, "ok\n", "text/plain")
        elif self.path == "/":
            self._send(
                200,
                f"repro obs exporter for {rundir}\n"
                "routes: /metrics /healthz\n",
                "text/plain",
            )
        else:
            self._send(404, "not found\n", "text/plain")

    def log_message(self, format, *args) -> None:  # noqa: A002
        # Scrape chatter stays off stderr; failures surface as statuses.
        pass


class ObsServer(GracefulHTTPServer):
    """The exporter bound to one run directory."""

    def __init__(self, rundir: str | os.PathLike, port: int = 0,
                 host: str = "127.0.0.1") -> None:
        self.rundir = os.fspath(rundir)
        super().__init__((host, port), _Handler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def serve_background(self, name: str = "obs-serve") -> threading.Thread:
        """Serve from a daemon thread (tests; embedding in a watch)."""
        return super().serve_background(name=name)

    def stop(self, timeout_s: float = 5.0) -> bool:
        """Drain in-flight scrapes (bounded) and close the socket."""
        return self.shutdown_gracefully(timeout_s)


def serve_main(args) -> int:
    """Dispatch ``pvc-bench obs serve <rundir> [--port N]``."""
    rundir = args.dir or (args.extra[0] if getattr(args, "extra", None) else None)
    if not rundir:
        raise CampaignError(
            "obs serve needs a run directory "
            "(positional or --dir <directory>)"
        )
    if not os.path.isdir(rundir):
        raise CampaignError(f"{rundir} is not a directory")
    server = ObsServer(rundir, port=getattr(args, "port", None) or 0)
    stop = threading.Event()

    def handler(signum, frame):  # pragma: no cover - signal timing
        stop.set()

    previous = {}
    for sig in (signal.SIGINT, signal.SIGTERM):
        previous[sig] = signal.signal(sig, handler)
    server.serve_background()
    print(
        f"serving OpenMetrics for {rundir} at {server.url}/metrics "
        "(Ctrl-C drains and stops)",
        file=sys.stderr,
    )
    try:
        stop.wait()
    finally:
        for sig, old in previous.items():
            signal.signal(sig, old)
        drained = server.stop()
        if not drained:
            print(
                f"abandoned {server.abandoned_handlers} wedged scrape(s)",
                file=sys.stderr,
            )
    return 0
