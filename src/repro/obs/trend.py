"""``pvc-bench trend``: cross-run analytics over ``BENCH_*.json``.

The profiler's baseline machinery (:mod:`repro.profiler.baseline`)
answers "did this run regress against one pinned snapshot?".  Trend
answers the longitudinal question: given the *sequence* of committed
baselines, where did the figures of merit, wall-clock and sim-cache
behaviour move, and which kernels (and roofline bounds) account for
the device-time deltas?

For every consecutive snapshot pair the report covers:

* the gated fields (``fom`` / ``device_us`` / ``sim_cache_hit_rate``)
  through the same tolerance comparator CI gates on;
* wall-clock and sim-cache numbers for campaign entries —
  informational (wall-clock never gates) but exactly what an operator
  scanning for scheduler drift wants on one line;
* sweep throughput for entries carrying ``points_per_s`` (BENCH_3
  onward): points evaluated, batch points/s movement, and the
  batch-vs-scalar speedup the 50x floor rides on;
* per-kernel attribution: entries that embed ``kernel_attribution``
  rows (PR 7 baselines onward) get kernel-by-kernel ``achieved_us``
  deltas tagged with each kernel's roofline bound, so a device-time
  regression names the kernel that moved instead of a bare aggregate.
  Older snapshots without the rows degrade to a note, keeping
  ``trend BENCH_0.json BENCH_1.json`` useful across the boundary.
"""

from __future__ import annotations

import os

from ..errors import ConfigurationError
from ..profiler.baseline import compare_snapshots, load_baseline

__all__ = ["kernel_deltas", "trend_main", "trend_report"]


def _fmt_rate(hits: float, misses: float) -> str:
    evals = hits + misses
    rate = hits / evals if evals else 0.0
    return f"{rate:.1%} hit rate ({hits:.0f} hit(s) / {misses:.0f} miss(es))"


def kernel_deltas(base_entry: dict, cur_entry: dict) -> list[str]:
    """Per-kernel attribution lines for one ``bench@system`` pair."""
    base_rows = {
        r["kernel"]: r for r in base_entry.get("kernel_attribution", [])
    }
    cur_rows = {
        r["kernel"]: r for r in cur_entry.get("kernel_attribution", [])
    }
    if not cur_rows and not base_rows:
        return []
    lines: list[str] = []
    for name in sorted(set(base_rows) | set(cur_rows)):
        cur = cur_rows.get(name)
        base = base_rows.get(name)
        if cur is None:
            lines.append(f"{name}: dropped (was in the older snapshot)")
            continue
        bound = cur.get("bound", "?")
        achieved = float(cur.get("achieved_us", 0.0))
        if base is None:
            lines.append(
                f"{name} [{bound}-bound] {achieved:.1f}us achieved "
                f"({float(cur.get('model_pct', 0.0)):.1f}% of model)"
            )
            continue
        before = float(base.get("achieved_us", 0.0))
        ratio = achieved / before if before else float("inf")
        lines.append(
            f"{name} [{bound}-bound] device {before:.1f}us -> "
            f"{achieved:.1f}us (x{ratio:.4f})"
        )
    return lines


def _campaign_lines(base_entries: dict, cur_entries: dict) -> list[str]:
    """Wall-clock + sim-cache lines for every campaign entry seen."""
    lines: list[str] = []
    for key in sorted(set(base_entries) | set(cur_entries)):
        cur = cur_entries.get(key)
        base = base_entries.get(key)
        probe = cur if cur is not None else base
        if probe is None or "sim_cache_hit_rate" not in probe:
            continue
        if cur is None:
            lines.append(f"{key}: dropped from the newer snapshot")
            continue
        cache = _fmt_rate(
            float(cur.get("sim_cache_hits", 0.0)),
            float(cur.get("sim_cache_misses", 0.0)),
        )
        if base is None:
            lines.append(
                f"{key}: wall {float(cur.get('wall_s', 0.0)):.2f}s, "
                f"sim-cache {cache}  [new entry]"
            )
            continue
        wall_b = float(base.get("wall_s", 0.0))
        wall_c = float(cur.get("wall_s", 0.0))
        wall_ratio = wall_c / wall_b if wall_b else float("inf")
        rate_b = float(base.get("sim_cache_hit_rate", 0.0))
        rate_c = float(cur.get("sim_cache_hit_rate", 0.0))
        lines.append(
            f"{key}: wall {wall_b:.2f}s -> {wall_c:.2f}s "
            f"(x{wall_ratio:.2f}, informational), "
            f"sim-cache {rate_b:.1%} -> {rate_c:.1%}"
        )
    return lines


def _sweep_lines(base_entries: dict, cur_entries: dict) -> list[str]:
    """Throughput lines for every sweep entry seen (BENCH_3 onward)."""
    lines: list[str] = []
    for key in sorted(set(base_entries) | set(cur_entries)):
        cur = cur_entries.get(key)
        base = base_entries.get(key)
        probe = cur if cur is not None else base
        if probe is None or "points_per_s" not in probe:
            continue
        if cur is None:
            lines.append(f"{key}: dropped from the newer snapshot")
            continue
        points = float(cur.get("points", 0.0))
        rate_c = float(cur.get("points_per_s") or 0.0)
        speed_c = float(cur.get("batch_speedup") or 0.0)
        if base is None:
            lines.append(
                f"{key}: {points:,.0f} points, "
                f"{rate_c / 1e6:.1f} M points/s, batch speedup "
                f"x{speed_c:.0f}  [new entry]"
            )
            continue
        rate_b = float(base.get("points_per_s") or 0.0)
        speed_b = float(base.get("batch_speedup") or 0.0)
        ratio = rate_c / rate_b if rate_b else float("inf")
        lines.append(
            f"{key}: {points:,.0f} points, "
            f"{rate_b / 1e6:.1f} -> {rate_c / 1e6:.1f} M points/s "
            f"(x{ratio:.2f}), batch speedup x{speed_b:.0f} -> "
            f"x{speed_c:.0f}"
        )
    return lines


def trend_report(paths: list[str]) -> str:
    """The full longitudinal report over ≥2 baseline snapshots."""
    if len(paths) < 2:
        raise ConfigurationError(
            "trend needs at least two baseline files (oldest first), "
            "e.g. 'trend BENCH_0.json BENCH_1.json'"
        )
    docs = [(path, load_baseline(path)) for path in paths]
    labels = [os.path.basename(p) for p, _ in docs]
    lines = [
        f"perf trend across {len(docs)} snapshot(s): "
        + " -> ".join(labels)
    ]
    for (_, base), (_, cur), label_b, label_c in zip(
        docs, docs[1:], labels, labels[1:]
    ):
        lines.append("")
        lines.append(f"{label_b} -> {label_c}")
        comparison = compare_snapshots(base, cur)
        moved = [
            d for d in comparison.deltas if d.verdict not in ("ok",)
        ]
        lines.append(
            f"  gated fields (tolerance {comparison.tolerance:.1%}): "
            f"{len(comparison.deltas)} compared, "
            f"{sum(1 for d in comparison.deltas if d.verdict == 'regressed')}"
            " regressed"
        )
        for d in moved:
            if d.verdict in ("new", "missing"):
                lines.append(f"    {d.verdict:>9}  {d.key}")
            else:
                lines.append(
                    f"    {d.verdict:>9}  {d.key} {d.metric}: "
                    f"{d.base:.6g} -> {d.current:.6g} (x{d.ratio:.4f})"
                )
        base_entries = base.get("entries", {})
        cur_entries = cur.get("entries", {})
        campaign = _campaign_lines(base_entries, cur_entries)
        if campaign:
            lines.append("  campaign wall-clock / sim-cache:")
            lines.extend(f"    {line}" for line in campaign)
        sweep = _sweep_lines(base_entries, cur_entries)
        if sweep:
            lines.append("  sweep throughput:")
            lines.extend(f"    {line}" for line in sweep)
        attributed = False
        for key in sorted(set(base_entries) & set(cur_entries)):
            rows = kernel_deltas(base_entries[key], cur_entries[key])
            if not rows:
                continue
            if not attributed:
                lines.append("  kernel attribution:")
                attributed = True
            lines.append(f"    {key}:")
            lines.extend(f"      {row}" for row in rows)
        for key in sorted(set(cur_entries) - set(base_entries)):
            rows = kernel_deltas({}, cur_entries[key])
            if not rows:
                continue
            if not attributed:
                lines.append("  kernel attribution:")
                attributed = True
            lines.append(f"    {key} (new entry):")
            lines.extend(f"      {row}" for row in rows)
        if not attributed:
            lines.append(
                "  kernel attribution: not embedded in these snapshots "
                "(refresh with 'profile full --write-baseline')"
            )
    return "\n".join(lines) + "\n"


def trend_main(args) -> int:
    """Dispatch ``pvc-bench trend BENCH_0.json BENCH_1.json [...]``."""
    paths: list[str] = []
    if getattr(args, "bench", None):
        paths.append(args.bench)
    paths.extend(getattr(args, "extra", None) or [])
    print(trend_report(paths), end="")
    return 0
