"""``pvc-bench campaign watch``: a live status board for run dirs.

The watcher is a pure *reader*: it tails the journal and both event
streams (:mod:`.events`) from outside the orchestrator process, so it
can attach to a running campaign, a crashed one, or a finished one and
always render something truthful.  Everything is rebuilt from bytes on
disk on every poll — there is no shared state with the run, and a torn
last line in any stream is simply not yet visible.

Three layers:

* :func:`worker_lanes` folds the live stream into per-worker lanes
  (RUNNING / IDLE / DEAD / RESPAWNED / HUNG, in-flight unit, last
  heartbeat, respawn provenance).  ``campaign status`` reuses this for
  its per-worker heartbeat-age lines.
* :func:`load_snapshot` combines journal + deterministic events + lanes
  into one :class:`RunSnapshot`.
* :func:`render` draws the board.  It takes ``now`` explicitly so the
  crashed/quarantined/degraded golden tests are reproducible without a
  live process; :func:`follow` loops it until ``campaign-done``
  appears (or immediately degrades to a final snapshot when the run is
  already complete).
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import dataclass, field

from ..campaign.journal import Journal
from ..errors import CampaignError
from .events import EVENTS_FILE, LIVE_FILE, read_events

__all__ = [
    "RunSnapshot",
    "WorkerLane",
    "follow",
    "follow_service",
    "load_service_board",
    "load_snapshot",
    "render",
    "render_service_board",
    "service_watch_main",
    "watch_main",
    "worker_lanes",
]


@dataclass
class WorkerLane:
    """One worker's current story, folded from the live stream."""

    index: int
    worker: str
    state: str = "IDLE"  # RUNNING | IDLE | DEAD | RESPAWNED | HUNG
    unit: str | None = None
    attempt: int = 1
    last_beat: float | None = None
    dispatched_ts: float | None = None
    respawns_used: int = 0
    exitcode: int | None = None


def worker_lanes(live_records: list[dict]) -> list[WorkerLane]:
    """Fold the live stream into per-worker lanes, oldest lane first.

    A respawned worker gets its own lane (worker indices are never
    reused); the lane it replaces is marked RESPAWNED so the board
    shows the whole supervision history, not just the survivors.
    Serial runs (``run-live`` with ``jobs=1``) get a single synthetic
    ``serial`` lane fed by the orchestrator's own dispatch records.
    """
    lanes: dict[int, WorkerLane] = {}
    by_name: dict[str, WorkerLane] = {}

    def lane(index: int) -> WorkerLane:
        if index not in lanes:
            lanes[index] = WorkerLane(index=index, worker=f"worker-{index}")
        return lanes[index]

    for rec in live_records:
        etype = rec["type"]
        if etype == "worker-spawn":
            ln = WorkerLane(index=rec["index"], worker=rec["worker"])
            lanes[rec["index"]] = ln
            by_name[rec["worker"]] = ln
        elif etype == "run-live" and rec["jobs"] == 1:
            ln = WorkerLane(index=0, worker="serial")
            lanes[0] = ln
            by_name["serial"] = ln
        elif etype == "unit-dispatched":
            ln = lane(rec["index"])
            ln.unit = rec["unit"]
            ln.state = "RUNNING"
            ln.attempt = rec["attempt"]
            ln.dispatched_ts = rec["ts"]
            ln.last_beat = rec["ts"]
        elif etype == "worker-heartbeat":
            ln = lane(rec["index"])
            ln.last_beat = rec["ts"]
        elif etype == "unit-completed":
            for ln in lanes.values():
                if ln.unit == rec["unit"] and ln.state == "RUNNING":
                    ln.unit = None
                    ln.state = "IDLE"
                    ln.last_beat = rec["ts"]
                    break
        elif etype == "worker-hang-kill":
            ln = by_name.get(rec["worker"])
            if ln is not None:
                ln.state = "HUNG"
        elif etype == "worker-exit":
            ln = by_name.get(rec["worker"])
            if ln is not None:
                ln.state = "DEAD"
                ln.exitcode = rec["exitcode"]
                ln.unit = rec["unit"]
        elif etype == "worker-respawn":
            old = by_name.get(rec["replaces"])
            if old is not None:
                old.state = "RESPAWNED"
            new = by_name.get(rec["worker"])
            if new is not None:
                new.respawns_used = rec["respawns_used"]
    return [lanes[i] for i in sorted(lanes)]


@dataclass
class RunSnapshot:
    """Everything the board knows about one run directory, one poll."""

    directory: str
    spec: str
    scenario: str | None
    seed: int
    unit_states: dict[str, str]
    quarantined: dict[str, list]
    lanes: list[WorkerLane] = field(default_factory=list)
    jobs: int | None = None
    pid: int | None = None
    cache_hits: float = 0.0
    cache_misses: float = 0.0
    cache_bypasses: float = 0.0
    faults: list[str] = field(default_factory=list)
    simulated_s: float = 0.0
    degraded: bool = False
    interrupted: bool = False
    complete: bool = False
    exit_code: int | None = None
    started_ts: float | None = None
    completed_ts: list[float] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.unit_states)

    @property
    def done(self) -> int:
        return sum(
            1
            for s in self.unit_states.values()
            if s not in ("pending", "started")
        )

    @property
    def cache_hit_rate(self) -> float | None:
        attempts = self.cache_hits + self.cache_misses
        return self.cache_hits / attempts if attempts else None

    def in_flight(self) -> list[WorkerLane]:
        return [ln for ln in self.lanes if ln.state == "RUNNING"]

    def eta_s(self, now: float) -> float | None:
        """Wall-clock ETA from the live completion rate, if measurable."""
        if self.complete or self.started_ts is None or not self.completed_ts:
            return None
        elapsed = max(now - self.started_ts, 1e-9)
        rate = len(self.completed_ts) / elapsed
        remaining = self.total - self.done
        return remaining / rate if rate > 0 else None


def load_snapshot(rundir: str | os.PathLike) -> RunSnapshot:
    """Rebuild the board state from a run directory's bytes on disk."""
    rundir = os.fspath(rundir)
    journal = Journal.load(os.path.join(rundir, "journal.jsonl"))
    start = journal.of_type("campaign-start")
    if not start:
        raise CampaignError(f"{rundir} holds no campaign journal")
    config = start[0]
    unit_states: dict[str, str] = {
        uid: "pending" for uid in config.get("units", [])
    }
    quarantined: dict[str, list] = {}
    for rec in journal.records:
        if rec["type"] == "unit-quarantined":
            unit_states[rec["unit"]] = "QUARANTINED"
            quarantined[rec["unit"]] = rec.get("exit_codes", [])
        elif rec["type"] in ("unit-done", "unit-failed"):
            unit_states[rec["unit"]] = rec["status"]
        elif (
            rec["type"] == "unit-start"
            and unit_states.get(rec["unit"]) == "pending"
        ):
            unit_states[rec["unit"]] = "started"
    snap = RunSnapshot(
        directory=rundir,
        spec=config["spec"],
        scenario=config["scenario"],
        seed=config["seed"],
        unit_states=unit_states,
        quarantined=quarantined,
    )
    snap.interrupted = bool(
        journal.of_type("interrupted") or journal.of_type("deadline")
    )
    for rec in read_events(os.path.join(rundir, EVENTS_FILE)):
        if rec["type"] == "cache-stats":
            snap.cache_hits += rec["hits"]
            snap.cache_misses += rec["misses"]
            snap.cache_bypasses += rec["bypasses"]
        elif rec["type"] == "fault-injected":
            snap.faults.append(f"{rec['unit']}: {rec['incident']}")
        snap.simulated_s = rec["sim_us"] / 1e6
    done = journal.of_type("campaign-done")
    if done:
        snap.complete = True
        snap.exit_code = done[-1]["exit"]
    live = read_events(os.path.join(rundir, LIVE_FILE))
    snap.lanes = worker_lanes(live)
    for rec in live:
        if rec["type"] == "run-live":
            snap.jobs = rec["jobs"]
            snap.pid = rec["pid"]
            if snap.started_ts is None:
                snap.started_ts = rec["ts"]
        elif rec["type"] == "unit-completed":
            snap.completed_ts.append(rec["ts"])
        elif rec["type"] == "pool-degraded":
            snap.degraded = True
    return snap


def _age(ts: float | None, now: float) -> str:
    return f"{max(now - ts, 0.0):.1f}s ago" if ts is not None else "never"


def _lane_line(ln: WorkerLane, now: float) -> str:
    parts = [f"[{ln.index}] {ln.worker:22s} {ln.state:9s}"]
    if ln.state == "RUNNING" and ln.unit:
        note = f" (attempt {ln.attempt})" if ln.attempt > 1 else ""
        parts.append(f"{ln.unit}{note}")
    elif ln.state in ("DEAD", "RESPAWNED", "HUNG"):
        held = f" holding {ln.unit}" if ln.unit else ""
        code = f" exit {ln.exitcode}" if ln.exitcode is not None else ""
        parts.append(f"{code}{held}".strip())
    if ln.respawns_used:
        parts.append(f"[respawn {ln.respawns_used}]")
    parts.append(f"hb {_age(ln.last_beat, now)}")
    return "  ".join(p for p in parts if p)


def render(snap: RunSnapshot, now: float | None = None) -> str:
    """Draw the status board (``now`` injectable for golden tests)."""
    if now is None:
        now = time.time()
    if snap.complete:
        phase = f"COMPLETE (exit {snap.exit_code})"
    elif snap.interrupted:
        phase = "INTERRUPTED (resumable)"
    else:
        phase = "RUNNING"
    lines = [
        f"campaign {snap.spec!r} in {snap.directory} — {phase}",
        f"  progress: {snap.done}/{snap.total} unit(s), "
        f"simulated {snap.simulated_s:.2f}s"
        + (f", scenario {snap.scenario!r}" if snap.scenario else "")
        + f", seed {snap.seed}",
    ]
    if snap.jobs is not None:
        run = f"  run: {snap.jobs} job(s)"
        if snap.pid is not None:
            run += f", pid {snap.pid}"
        if snap.degraded:
            run += " — POOL DEGRADED (serial in-process drain)"
        lines.append(run)
    if snap.lanes:
        lines.append("  workers:")
        lines.extend(f"    {_lane_line(ln, now)}" for ln in snap.lanes)
    counts: dict[str, int] = {}
    for state in snap.unit_states.values():
        counts[state] = counts.get(state, 0) + 1
    summary = ", ".join(f"{n} {s}" for s, n in sorted(counts.items()))
    lines.append(f"  units: {summary}")
    for uid, state in snap.unit_states.items():
        if state in ("started", "QUARANTINED") or (
            state not in ("pending", "OK") and not snap.complete
        ):
            provenance = ""
            if uid in snap.quarantined:
                codes = ", ".join(str(c) for c in snap.quarantined[uid])
                provenance = f" (worker exit codes: {codes})"
            lines.append(f"    {uid:24s} {state}{provenance}")
    rate = snap.cache_hit_rate
    if rate is not None:
        lines.append(
            f"  sim cache: {snap.cache_hits:.0f} hit(s) / "
            f"{snap.cache_misses:.0f} miss(es) ({rate:.1%} hit rate)"
        )
    if snap.faults:
        lines.append(f"  faults injected: {len(snap.faults)}")
        lines.extend(f"    {note}" for note in snap.faults[-5:])
    if snap.quarantined:
        lines.append(
            f"  {len(snap.quarantined)} unit(s) quarantined after "
            "repeated worker crashes"
        )
    if not snap.complete:
        eta = snap.eta_s(now)
        lines.append(
            f"  eta: ~{eta:.1f}s" if eta is not None else "  eta: --"
        )
        lines.append(
            "  (incomplete: finish with 'campaign resume')"
            if snap.interrupted
            else "  (watching; Ctrl-C detaches without touching the run)"
        )
    return "\n".join(lines)


def follow(
    rundir: str | os.PathLike,
    interval_s: float = 0.5,
    once: bool = False,
    stream=None,
    max_polls: int | None = None,
) -> int:
    """Poll-and-redraw until the campaign completes (or ``once``).

    Attaching to a finished run degrades to a single final snapshot;
    attaching before the journal exists waits for it.  ``max_polls``
    bounds the loop for tests.
    """
    stream = stream if stream is not None else sys.stdout
    polls = 0
    while True:
        polls += 1
        try:
            snap = load_snapshot(rundir)
        except CampaignError:
            snap = None
        if snap is not None:
            board = render(snap, now=time.time())
            if stream.isatty():  # pragma: no cover - interactive only
                stream.write("\x1b[2J\x1b[H")
            stream.write(board + "\n")
            stream.flush()
            if snap.complete:
                return snap.exit_code or 0
        else:
            stream.write(f"waiting for a campaign journal in {rundir}...\n")
            stream.flush()
        if once or (max_polls is not None and polls >= max_polls):
            return 0
        time.sleep(interval_s)


def watch_main(args) -> int:
    """Dispatch ``pvc-bench campaign watch <rundir>``."""
    rundir = args.dir or (args.extra[0] if getattr(args, "extra", None) else None)
    if not rundir:
        raise CampaignError(
            "campaign watch needs a run directory "
            "(positional or --dir <directory>)"
        )
    try:
        return follow(
            rundir,
            interval_s=getattr(args, "interval", None) or 0.5,
            once=bool(getattr(args, "once", False)),
        )
    except KeyboardInterrupt:  # pragma: no cover - interactive detach
        print("detached; the campaign keeps running", file=sys.stderr)
        return 0


# ----------------------------------------------------------------------
# service board (``pvc-bench service watch``)
# ----------------------------------------------------------------------


def load_service_board(state_dir: str | os.PathLike) -> dict:
    """Rebuild the service board from a state directory's bytes on disk.

    The offline twin of ``BenchDaemon.board()``: the same document
    shape folded from ``requests.ndjson`` + ``live.ndjson``, so the
    board renders identically for a live daemon (scraped over HTTP) and
    a dead state directory (post-mortem).  Fields only a live process
    knows (token-bucket levels) come back ``None``; the SLO replay is
    driven by record timestamps, not the wall clock, so it reports the
    state as of the last request.
    """
    from .requests import PHASES, SLOTracker, read_requests

    state_dir = os.fspath(state_dir)
    spans = read_requests(os.path.join(state_dir, "requests.ndjson"))
    live = read_events(os.path.join(state_dir, LIVE_FILE))
    if not spans and not live:
        raise CampaignError(
            f"{state_dir} holds no service streams to fold"
        )
    registry = _service_registry(spans)
    latency = registry.histogram("service.request.latency_s")
    phase_hist = registry.histogram("service.request.phase_s")
    count = registry.counter("service.request.count")
    errors = registry.counter("service.request.errors")
    sheds = registry.counter("service.request.sheds")

    # Live-stream fold: request lifecycle counts and daemon identity.
    pid = recovered = None
    draining = False
    tenant_of: dict[str, str] = {}
    queued: dict[str, set] = {}
    running: dict[str, set] = {}
    cache_hits = cache_misses = 0
    for rec in live:
        etype = rec["type"]
        if etype == "service-start":
            pid, recovered, draining = rec["pid"], rec["recovered"], False
        elif etype == "service-drain":
            draining = True
        elif etype in ("request-accepted", "request-recovered"):
            tenant_of[rec["request"]] = rec["tenant"]
            queued.setdefault(rec["tenant"], set()).add(rec["request"])
        elif etype == "request-executing":
            queued.get(rec["tenant"], set()).discard(rec["request"])
            running.setdefault(rec["tenant"], set()).add(rec["request"])
        elif etype == "request-cache":
            cache_hits += rec["hit"]
            cache_misses += not rec["hit"]
        elif etype == "request-completed":
            tenant = tenant_of.get(rec["request"])
            if tenant is not None:
                queued.get(tenant, set()).discard(rec["request"])
                running.get(tenant, set()).discard(rec["request"])

    # SLO replay on record timestamps (the stream's clock, not ours).
    now_ts = spans[-1]["ts"] if spans else None
    slo = SLOTracker()
    tenant_slo: dict[str, SLOTracker] = {}
    for rec in spans:
        if rec["type"] != "request-span":
            continue
        ok = rec["status"] == "done"
        slo.record(ok, rec["latency_s"], now=rec["ts"])
        tenant_slo.setdefault(rec["tenant"], SLOTracker()).record(
            ok, rec["latency_s"], now=rec["ts"]
        )

    tenants = (
        {r["tenant"] for r in spans} | set(queued) | set(running)
    )
    per_tenant: dict[str, dict] = {}
    for tenant in sorted(tenants):
        tracker = tenant_slo.get(tenant)
        per_tenant[tenant] = {
            "in_flight": len(running.get(tenant, ())),
            "queued": len(queued.get(tenant, ())),
            "tokens": None,
            "capacity": None,
            "shed": int(sheds.total(tenant=tenant)),
            "requests": int(count.total(tenant=tenant)),
            "errors": int(errors.total(tenant=tenant)),
            "p50_s": round(latency.folded_percentile(0.5, tenant=tenant), 6),
            "p99_s": round(latency.folded_percentile(0.99, tenant=tenant), 6),
            "slo": tracker.snapshot(now=now_ts) if tracker else None,
        }
    phases = {
        phase: {
            "count": phase_hist.folded_state(phase=phase).total,
            "p50_s": round(phase_hist.folded_percentile(0.5, phase=phase), 6),
            "p99_s": round(phase_hist.folded_percentile(0.99, phase=phase), 6),
        }
        for phase in PHASES
    }
    hits_total = cache_hits + cache_misses
    return {
        "draining": draining,
        "pid": pid,
        "recovered": recovered,
        "cache": {
            "hits": cache_hits,
            "misses": cache_misses,
            "hit_rate": cache_hits / hits_total if hits_total else 0.0,
        },
        "admission": {
            "depth": sum(len(s) for s in queued.values()),
            "admitted": int(count.total()),
            "shed_tenant": None,
            "shed_backlog": None,
        },
        "tenants": per_tenant,
        "phases": phases,
        "slo": slo.snapshot(now=now_ts),
    }


def _service_registry(spans: list[dict]):
    from ..telemetry.metrics import MetricsRegistry
    from .requests import record_span_metrics, register_red_metrics

    registry = MetricsRegistry()
    register_red_metrics(registry)
    for rec in spans:
        record_span_metrics(registry, rec)
    return registry


def _ms(seconds: float | None) -> str:
    return f"{seconds * 1e3:.1f}ms" if seconds is not None else "--"


def _slo_mark(snapshot: dict | None) -> str:
    if not snapshot:
        return "--"
    burns = " ".join(
        f"burn[{w}]={doc['burn_rate']:.2f}"
        for w, doc in snapshot["windows"].items()
    )
    return (
        f"{snapshot['status']} "
        f"(compliance {snapshot['compliance']:.1%})  {burns}"
    )


def render_service_board(board: dict, source: str = "") -> str:
    """Draw the per-tenant RED/SLO board from a board document."""
    phase = "DRAINING" if board.get("draining") else "SERVING"
    head = f"service board — {source} — {phase}" if source else (
        f"service board — {phase}"
    )
    lines = [head]
    identity = []
    if board.get("pid") is not None:
        identity.append(f"pid {board['pid']}")
    if board.get("recovered") is not None:
        identity.append(f"recovered {board['recovered']}")
    if identity:
        lines.append("  " + ", ".join(identity))
    lines.append(f"  slo: {_slo_mark(board.get('slo'))}")
    cache = board.get("cache") or {}
    if cache:
        lines.append(
            f"  cache: hit rate {cache.get('hit_rate', 0.0):.1%} "
            f"({cache.get('hits', 0):.0f} hit(s) / "
            f"{cache.get('misses', 0):.0f} miss(es))"
        )
    admission = board.get("admission") or {}
    if admission:
        shed_bits = ""
        if admission.get("shed_tenant") is not None:
            shed_bits = (
                f", shed {admission['shed_tenant']} tenant"
                f" / {admission['shed_backlog']} backlog"
            )
        lines.append(
            f"  admission: depth {admission.get('depth', 0)}, "
            f"admitted {admission.get('admitted', 0)}{shed_bits}"
        )
    tenants = board.get("tenants") or {}
    if tenants:
        lines.append("  tenants:")
        for tenant, row in tenants.items():
            tokens = (
                f"{row['tokens']:.1f}/{row['capacity']:.0f}"
                if row.get("tokens") is not None
                else "--"
            )
            slo_doc = row.get("slo") or {}
            slo_status = slo_doc.get("status", "--")
            lines.append(
                f"    {tenant:<12} req {row['requests']:5d}"
                f"  err {row['errors']:3d}"
                f"  shed {row['shed']:3d}"
                f"  inflight {row['in_flight']:2d}"
                f"  queued {row['queued']:3d}"
                f"  tokens {tokens:>9}"
                f"  p50 {_ms(row['p50_s']):>8}"
                f"  p99 {_ms(row['p99_s']):>8}"
                f"  slo {slo_status}"
            )
    phases = board.get("phases") or {}
    active = {k: v for k, v in phases.items() if v.get("count")}
    if active:
        lines.append("  phases:")
        for name, row in active.items():
            lines.append(
                f"    {name:<10} p50 {_ms(row['p50_s']):>8}"
                f"  p99 {_ms(row['p99_s']):>8}  (n={row['count']})"
            )
    return "\n".join(lines)


def _scrape_board(host: str, port: int, timeout_s: float = 10.0) -> dict:
    import http.client
    import json as _json

    conn = http.client.HTTPConnection(host, port, timeout=timeout_s)
    try:
        conn.request("GET", "/board")
        resp = conn.getresponse()
        raw = resp.read()
        if resp.status != 200:
            raise CampaignError(
                f"GET /board returned {resp.status} from {host}:{port}"
            )
        return _json.loads(raw)
    finally:
        conn.close()


def follow_service(
    source,
    label: str,
    interval_s: float = 0.5,
    once: bool = False,
    stream=None,
    max_polls: int | None = None,
) -> int:
    """Poll-and-redraw the service board; ``source()`` yields documents."""
    stream = stream if stream is not None else sys.stdout
    polls = 0
    while True:
        polls += 1
        note = f"waiting for a service board at {label}...\n"
        try:
            board = source()
        except (CampaignError, OSError) as exc:
            board = None
            note = f"waiting for a service board at {label}: {exc}\n"
        if board is not None:
            text = render_service_board(board, source=label)
            if stream.isatty():  # pragma: no cover - interactive only
                stream.write("\x1b[2J\x1b[H")
            stream.write(text + "\n")
            stream.flush()
        else:
            stream.write(note)
            stream.flush()
        if once or (max_polls is not None and polls >= max_polls):
            return 0
        time.sleep(interval_s)


def service_watch_main(args) -> int:
    """Dispatch ``pvc-bench service watch [--port N | --dir state]``.

    With ``--port`` the board is scraped from the live daemon's
    ``GET /board``; with ``--dir`` it is folded offline from the state
    directory's streams (works on a dead or post-mortem directory).
    """
    port = getattr(args, "port", None)
    directory = args.dir or (
        args.extra[0] if getattr(args, "extra", None) else None
    )
    if port:
        host = getattr(args, "host", None) or "127.0.0.1"
        label = f"http://{host}:{port}"
        source = lambda: _scrape_board(host, port)  # noqa: E731
    elif directory:
        label = os.fspath(directory)
        source = lambda: load_service_board(directory)  # noqa: E731
    else:
        raise CampaignError(
            "service watch needs --port <daemon port> or "
            "--dir <state directory>"
        )
    try:
        return follow_service(
            source,
            label,
            interval_s=getattr(args, "interval", None) or 0.5,
            once=bool(getattr(args, "once", False)),
        )
    except KeyboardInterrupt:  # pragma: no cover - interactive detach
        print("detached; the service keeps running", file=sys.stderr)
        return 0
