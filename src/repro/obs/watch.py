"""``pvc-bench campaign watch``: a live status board for run dirs.

The watcher is a pure *reader*: it tails the journal and both event
streams (:mod:`.events`) from outside the orchestrator process, so it
can attach to a running campaign, a crashed one, or a finished one and
always render something truthful.  Everything is rebuilt from bytes on
disk on every poll — there is no shared state with the run, and a torn
last line in any stream is simply not yet visible.

Three layers:

* :func:`worker_lanes` folds the live stream into per-worker lanes
  (RUNNING / IDLE / DEAD / RESPAWNED / HUNG, in-flight unit, last
  heartbeat, respawn provenance).  ``campaign status`` reuses this for
  its per-worker heartbeat-age lines.
* :func:`load_snapshot` combines journal + deterministic events + lanes
  into one :class:`RunSnapshot`.
* :func:`render` draws the board.  It takes ``now`` explicitly so the
  crashed/quarantined/degraded golden tests are reproducible without a
  live process; :func:`follow` loops it until ``campaign-done``
  appears (or immediately degrades to a final snapshot when the run is
  already complete).
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import dataclass, field

from ..campaign.journal import Journal
from ..errors import CampaignError
from .events import EVENTS_FILE, LIVE_FILE, read_events

__all__ = [
    "RunSnapshot",
    "WorkerLane",
    "follow",
    "load_snapshot",
    "render",
    "watch_main",
    "worker_lanes",
]


@dataclass
class WorkerLane:
    """One worker's current story, folded from the live stream."""

    index: int
    worker: str
    state: str = "IDLE"  # RUNNING | IDLE | DEAD | RESPAWNED | HUNG
    unit: str | None = None
    attempt: int = 1
    last_beat: float | None = None
    dispatched_ts: float | None = None
    respawns_used: int = 0
    exitcode: int | None = None


def worker_lanes(live_records: list[dict]) -> list[WorkerLane]:
    """Fold the live stream into per-worker lanes, oldest lane first.

    A respawned worker gets its own lane (worker indices are never
    reused); the lane it replaces is marked RESPAWNED so the board
    shows the whole supervision history, not just the survivors.
    Serial runs (``run-live`` with ``jobs=1``) get a single synthetic
    ``serial`` lane fed by the orchestrator's own dispatch records.
    """
    lanes: dict[int, WorkerLane] = {}
    by_name: dict[str, WorkerLane] = {}

    def lane(index: int) -> WorkerLane:
        if index not in lanes:
            lanes[index] = WorkerLane(index=index, worker=f"worker-{index}")
        return lanes[index]

    for rec in live_records:
        etype = rec["type"]
        if etype == "worker-spawn":
            ln = WorkerLane(index=rec["index"], worker=rec["worker"])
            lanes[rec["index"]] = ln
            by_name[rec["worker"]] = ln
        elif etype == "run-live" and rec["jobs"] == 1:
            ln = WorkerLane(index=0, worker="serial")
            lanes[0] = ln
            by_name["serial"] = ln
        elif etype == "unit-dispatched":
            ln = lane(rec["index"])
            ln.unit = rec["unit"]
            ln.state = "RUNNING"
            ln.attempt = rec["attempt"]
            ln.dispatched_ts = rec["ts"]
            ln.last_beat = rec["ts"]
        elif etype == "worker-heartbeat":
            ln = lane(rec["index"])
            ln.last_beat = rec["ts"]
        elif etype == "unit-completed":
            for ln in lanes.values():
                if ln.unit == rec["unit"] and ln.state == "RUNNING":
                    ln.unit = None
                    ln.state = "IDLE"
                    ln.last_beat = rec["ts"]
                    break
        elif etype == "worker-hang-kill":
            ln = by_name.get(rec["worker"])
            if ln is not None:
                ln.state = "HUNG"
        elif etype == "worker-exit":
            ln = by_name.get(rec["worker"])
            if ln is not None:
                ln.state = "DEAD"
                ln.exitcode = rec["exitcode"]
                ln.unit = rec["unit"]
        elif etype == "worker-respawn":
            old = by_name.get(rec["replaces"])
            if old is not None:
                old.state = "RESPAWNED"
            new = by_name.get(rec["worker"])
            if new is not None:
                new.respawns_used = rec["respawns_used"]
    return [lanes[i] for i in sorted(lanes)]


@dataclass
class RunSnapshot:
    """Everything the board knows about one run directory, one poll."""

    directory: str
    spec: str
    scenario: str | None
    seed: int
    unit_states: dict[str, str]
    quarantined: dict[str, list]
    lanes: list[WorkerLane] = field(default_factory=list)
    jobs: int | None = None
    pid: int | None = None
    cache_hits: float = 0.0
    cache_misses: float = 0.0
    cache_bypasses: float = 0.0
    faults: list[str] = field(default_factory=list)
    simulated_s: float = 0.0
    degraded: bool = False
    interrupted: bool = False
    complete: bool = False
    exit_code: int | None = None
    started_ts: float | None = None
    completed_ts: list[float] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.unit_states)

    @property
    def done(self) -> int:
        return sum(
            1
            for s in self.unit_states.values()
            if s not in ("pending", "started")
        )

    @property
    def cache_hit_rate(self) -> float | None:
        attempts = self.cache_hits + self.cache_misses
        return self.cache_hits / attempts if attempts else None

    def in_flight(self) -> list[WorkerLane]:
        return [ln for ln in self.lanes if ln.state == "RUNNING"]

    def eta_s(self, now: float) -> float | None:
        """Wall-clock ETA from the live completion rate, if measurable."""
        if self.complete or self.started_ts is None or not self.completed_ts:
            return None
        elapsed = max(now - self.started_ts, 1e-9)
        rate = len(self.completed_ts) / elapsed
        remaining = self.total - self.done
        return remaining / rate if rate > 0 else None


def load_snapshot(rundir: str | os.PathLike) -> RunSnapshot:
    """Rebuild the board state from a run directory's bytes on disk."""
    rundir = os.fspath(rundir)
    journal = Journal.load(os.path.join(rundir, "journal.jsonl"))
    start = journal.of_type("campaign-start")
    if not start:
        raise CampaignError(f"{rundir} holds no campaign journal")
    config = start[0]
    unit_states: dict[str, str] = {
        uid: "pending" for uid in config.get("units", [])
    }
    quarantined: dict[str, list] = {}
    for rec in journal.records:
        if rec["type"] == "unit-quarantined":
            unit_states[rec["unit"]] = "QUARANTINED"
            quarantined[rec["unit"]] = rec.get("exit_codes", [])
        elif rec["type"] in ("unit-done", "unit-failed"):
            unit_states[rec["unit"]] = rec["status"]
        elif (
            rec["type"] == "unit-start"
            and unit_states.get(rec["unit"]) == "pending"
        ):
            unit_states[rec["unit"]] = "started"
    snap = RunSnapshot(
        directory=rundir,
        spec=config["spec"],
        scenario=config["scenario"],
        seed=config["seed"],
        unit_states=unit_states,
        quarantined=quarantined,
    )
    snap.interrupted = bool(
        journal.of_type("interrupted") or journal.of_type("deadline")
    )
    for rec in read_events(os.path.join(rundir, EVENTS_FILE)):
        if rec["type"] == "cache-stats":
            snap.cache_hits += rec["hits"]
            snap.cache_misses += rec["misses"]
            snap.cache_bypasses += rec["bypasses"]
        elif rec["type"] == "fault-injected":
            snap.faults.append(f"{rec['unit']}: {rec['incident']}")
        snap.simulated_s = rec["sim_us"] / 1e6
    done = journal.of_type("campaign-done")
    if done:
        snap.complete = True
        snap.exit_code = done[-1]["exit"]
    live = read_events(os.path.join(rundir, LIVE_FILE))
    snap.lanes = worker_lanes(live)
    for rec in live:
        if rec["type"] == "run-live":
            snap.jobs = rec["jobs"]
            snap.pid = rec["pid"]
            if snap.started_ts is None:
                snap.started_ts = rec["ts"]
        elif rec["type"] == "unit-completed":
            snap.completed_ts.append(rec["ts"])
        elif rec["type"] == "pool-degraded":
            snap.degraded = True
    return snap


def _age(ts: float | None, now: float) -> str:
    return f"{max(now - ts, 0.0):.1f}s ago" if ts is not None else "never"


def _lane_line(ln: WorkerLane, now: float) -> str:
    parts = [f"[{ln.index}] {ln.worker:22s} {ln.state:9s}"]
    if ln.state == "RUNNING" and ln.unit:
        note = f" (attempt {ln.attempt})" if ln.attempt > 1 else ""
        parts.append(f"{ln.unit}{note}")
    elif ln.state in ("DEAD", "RESPAWNED", "HUNG"):
        held = f" holding {ln.unit}" if ln.unit else ""
        code = f" exit {ln.exitcode}" if ln.exitcode is not None else ""
        parts.append(f"{code}{held}".strip())
    if ln.respawns_used:
        parts.append(f"[respawn {ln.respawns_used}]")
    parts.append(f"hb {_age(ln.last_beat, now)}")
    return "  ".join(p for p in parts if p)


def render(snap: RunSnapshot, now: float | None = None) -> str:
    """Draw the status board (``now`` injectable for golden tests)."""
    if now is None:
        now = time.time()
    if snap.complete:
        phase = f"COMPLETE (exit {snap.exit_code})"
    elif snap.interrupted:
        phase = "INTERRUPTED (resumable)"
    else:
        phase = "RUNNING"
    lines = [
        f"campaign {snap.spec!r} in {snap.directory} — {phase}",
        f"  progress: {snap.done}/{snap.total} unit(s), "
        f"simulated {snap.simulated_s:.2f}s"
        + (f", scenario {snap.scenario!r}" if snap.scenario else "")
        + f", seed {snap.seed}",
    ]
    if snap.jobs is not None:
        run = f"  run: {snap.jobs} job(s)"
        if snap.pid is not None:
            run += f", pid {snap.pid}"
        if snap.degraded:
            run += " — POOL DEGRADED (serial in-process drain)"
        lines.append(run)
    if snap.lanes:
        lines.append("  workers:")
        lines.extend(f"    {_lane_line(ln, now)}" for ln in snap.lanes)
    counts: dict[str, int] = {}
    for state in snap.unit_states.values():
        counts[state] = counts.get(state, 0) + 1
    summary = ", ".join(f"{n} {s}" for s, n in sorted(counts.items()))
    lines.append(f"  units: {summary}")
    for uid, state in snap.unit_states.items():
        if state in ("started", "QUARANTINED") or (
            state not in ("pending", "OK") and not snap.complete
        ):
            provenance = ""
            if uid in snap.quarantined:
                codes = ", ".join(str(c) for c in snap.quarantined[uid])
                provenance = f" (worker exit codes: {codes})"
            lines.append(f"    {uid:24s} {state}{provenance}")
    rate = snap.cache_hit_rate
    if rate is not None:
        lines.append(
            f"  sim cache: {snap.cache_hits:.0f} hit(s) / "
            f"{snap.cache_misses:.0f} miss(es) ({rate:.1%} hit rate)"
        )
    if snap.faults:
        lines.append(f"  faults injected: {len(snap.faults)}")
        lines.extend(f"    {note}" for note in snap.faults[-5:])
    if snap.quarantined:
        lines.append(
            f"  {len(snap.quarantined)} unit(s) quarantined after "
            "repeated worker crashes"
        )
    if not snap.complete:
        eta = snap.eta_s(now)
        lines.append(
            f"  eta: ~{eta:.1f}s" if eta is not None else "  eta: --"
        )
        lines.append(
            "  (incomplete: finish with 'campaign resume')"
            if snap.interrupted
            else "  (watching; Ctrl-C detaches without touching the run)"
        )
    return "\n".join(lines)


def follow(
    rundir: str | os.PathLike,
    interval_s: float = 0.5,
    once: bool = False,
    stream=None,
    max_polls: int | None = None,
) -> int:
    """Poll-and-redraw until the campaign completes (or ``once``).

    Attaching to a finished run degrades to a single final snapshot;
    attaching before the journal exists waits for it.  ``max_polls``
    bounds the loop for tests.
    """
    stream = stream if stream is not None else sys.stdout
    polls = 0
    while True:
        polls += 1
        try:
            snap = load_snapshot(rundir)
        except CampaignError:
            snap = None
        if snap is not None:
            board = render(snap, now=time.time())
            if stream.isatty():  # pragma: no cover - interactive only
                stream.write("\x1b[2J\x1b[H")
            stream.write(board + "\n")
            stream.flush()
            if snap.complete:
                return snap.exit_code or 0
        else:
            stream.write(f"waiting for a campaign journal in {rundir}...\n")
            stream.flush()
        if once or (max_polls is not None and polls >= max_polls):
            return 0
        time.sleep(interval_s)


def watch_main(args) -> int:
    """Dispatch ``pvc-bench campaign watch <rundir>``."""
    rundir = args.dir or (args.extra[0] if getattr(args, "extra", None) else None)
    if not rundir:
        raise CampaignError(
            "campaign watch needs a run directory "
            "(positional or --dir <directory>)"
        )
    try:
        return follow(
            rundir,
            interval_s=getattr(args, "interval", None) or 0.5,
            once=bool(getattr(args, "once", False)),
        )
    except KeyboardInterrupt:  # pragma: no cover - interactive detach
        print("detached; the campaign keeps running", file=sys.stderr)
        return 0
