"""Exception hierarchy for the ``repro`` package.

Every error raised intentionally by this library derives from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` etc.)
propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with inconsistent values."""


class UnknownSystemError(ConfigurationError):
    """A system name did not match any registered system factory."""


class UnknownBenchmarkError(ConfigurationError):
    """A benchmark name did not match any registered benchmark."""


class CalibrationError(ConfigurationError):
    """A calibration table is missing an entry required by the engine."""


class TopologyError(ReproError):
    """The interconnect topology cannot satisfy a routing request."""


class AllocationError(ReproError):
    """A USM or host allocation request could not be satisfied."""


class AffinityError(ReproError):
    """An affinity mask referenced a device or stack that does not exist."""


class MPIError(ReproError):
    """Misuse of the simulated MPI layer (bad rank, tag mismatch, ...)."""


class BuildError(ReproError):
    """A (simulated) toolchain failed to build an application.

    The paper reports that the GAMESS RI-MP2 mini-app failed to build with
    the AMD Fortran compiler on the JLSE-MI250 node; the toolchain model in
    :mod:`repro.runtime.toolchain` reproduces that behaviour by raising this
    exception.
    """


class KernelSpecError(ReproError):
    """A kernel workload descriptor is malformed (negative flops, ...)."""


class NotMeasuredError(ReproError):
    """The paper did not measure this cell (rendered as '-' in its tables)."""


class ScenarioError(ConfigurationError):
    """A fault-injection scenario name or specification is invalid."""


class DeviceLostError(ReproError):
    """A logical device dropped off the bus (injected or detected).

    Production PVC nodes lose stacks mid-run; the fault-injection layer
    reproduces that by marking a stack dead in the fabric, after which any
    attempt to move data to or from it raises this error.
    """

    def __init__(self, message: str, stack: object | None = None) -> None:
        super().__init__(message)
        self.stack = stack


class TransientKernelError(ReproError):
    """A kernel launch failed transiently; a retry may succeed."""


class BenchmarkTimeoutError(ReproError):
    """A repetition or benchmark exceeded its (simulated) time budget."""


class CampaignError(ReproError):
    """A campaign cannot be orchestrated as requested (bad spec, bad
    directory, resume of a campaign that was never started, ...)."""


class WorkerCrashError(CampaignError):
    """A campaign worker process failed in a way supervision cannot heal.

    Raised when a unit's code raised an unexpected (non-:class:`ReproError`)
    exception inside a worker — the same bug would be fatal in-process, so
    respawning the worker would only crash it again — or when the
    supervisor's own invariants are violated.  Dead or hung workers do
    *not* raise this: the :class:`~repro.campaign.supervisor.WorkerSupervisor`
    respawns them, re-enqueues their in-flight units, and quarantines
    units that keep killing workers.
    """


class CampaignCorruptError(CampaignError):
    """A journal record or result-store entry failed its integrity check.

    Raised (or reported as exit code 4) when a checksum or digest does
    not match — the signature of a torn write, manual tampering, or disk
    corruption rather than an ordinary interrupted run.
    """


class MeasurementError(ReproError):
    """A measurement failed mid-plan.

    Carries the benchmark identity and the partial sample set collected
    before the failure so callers can salvage a degraded result instead of
    losing everything (the resilient runner does exactly that).
    """

    def __init__(
        self,
        message: str,
        *,
        benchmark: str = "?",
        system: str = "?",
        repetition: int = -1,
        partial: object | None = None,
    ) -> None:
        super().__init__(message)
        self.benchmark = benchmark
        self.system = system
        self.repetition = repetition
        self.partial = partial
