"""OpenMC-style Monte Carlo neutral-particle transport (Section VI-A.1).

"OpenMC is a Monte Carlo neutral particle transport code ... We assess
the performance of OpenMC on a small modular reactor (SMR) benchmark
problem featuring depleted fuel ... The figure of merit is derived from
the rate of execution of the program when in the 'active' phase of the
simulation that involves highly complex tallying operations, and is
measured in units of thousands of particles per second."

Functional leg: a real multigroup Monte Carlo transport kernel,
vectorised over particles with **Woodcock delta-tracking** (the standard
GPU-friendly technique): sample flight distances against a majorant cross
section, accept real collisions with probability ``sigma_t(x)/sigma_maj``,
then absorb / scatter (with group transfer) / count fission production.
Tallies use the collision estimator on a spatial mesh with a per-nuclide
axis (the "depleted fuel" tally load).  Infinite-medium physics —
expected collisions per history ``sigma_t/sigma_a`` and
``k_inf = nu*sigma_f/sigma_a`` — gives sharp correctness oracles.

FOM leg: OpenMC is memory-latency/bandwidth bound (Table V); the paper
reports full-node FOMs only (Aurora 2039, H100 1191, MI250 720 kparticles/s;
Dawn was not measured — the model predicts it from the PVC rate).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.registry import register
from ..errors import ConfigurationError
from ..sim.calibration import OpenMcCalibration, get_app_calibration
from ..sim.engine import PerfEngine
from ..miniapps.base import MiniApp

__all__ = [
    "Material",
    "TransportProblem",
    "TransportResult",
    "KEffResult",
    "KEigenvalueSolver",
    "shannon_entropy",
    "run_distributed",
    "smr_materials",
    "OpenMc",
]


@dataclass(frozen=True)
class Material:
    """Multigroup macroscopic cross sections (per cm).

    ``scatter[g, g']`` is the group-transfer matrix; ``nu_fission`` is
    nu * sigma_f per group.  ``n_nuclides`` spreads the tally over a
    per-nuclide axis, modelling the depleted-fuel tally width.
    """

    name: str
    sigma_t: np.ndarray  # (G,)
    sigma_a: np.ndarray  # (G,)
    scatter: np.ndarray  # (G, G)
    nu_fission: np.ndarray  # (G,)
    n_nuclides: int = 1

    def __post_init__(self) -> None:
        g = self.sigma_t.shape[0]
        if self.sigma_a.shape != (g,) or self.scatter.shape != (g, g):
            raise ConfigurationError(f"{self.name}: inconsistent group data")
        if self.nu_fission.shape != (g,):
            raise ConfigurationError(f"{self.name}: bad nu_fission")
        total_out = self.sigma_a + self.scatter.sum(axis=1)
        if not np.allclose(total_out, self.sigma_t, rtol=1e-10):
            raise ConfigurationError(
                f"{self.name}: sigma_t must equal sigma_a + total scattering"
            )
        if np.any(self.sigma_t <= 0):
            raise ConfigurationError(f"{self.name}: sigma_t must be positive")

    @property
    def n_groups(self) -> int:
        return self.sigma_t.shape[0]


def smr_materials(n_nuclides: int = 16) -> tuple[Material, Material]:
    """Two-group depleted-fuel + moderator pair with SMR-like constants."""
    fuel = Material(
        name="depleted fuel",
        sigma_t=np.array([0.35, 0.60]),
        sigma_a=np.array([0.07, 0.22]),
        scatter=np.array([[0.26, 0.02], [0.00, 0.38]]),
        nu_fission=np.array([0.04, 0.30]),
        n_nuclides=n_nuclides,
    )
    moderator = Material(
        name="moderator",
        sigma_t=np.array([0.60, 1.80]),
        sigma_a=np.array([0.01, 0.03]),
        scatter=np.array([[0.54, 0.05], [0.00, 1.77]]),
        nu_fission=np.zeros(2),
    )
    return fuel, moderator


@dataclass
class TransportResult:
    """Tallies from one transport run."""

    flux: np.ndarray  # (mesh, mesh, mesh, groups, nuclides) collision tally
    collisions: int
    absorptions: int
    leaks: int
    fission_production: float
    histories: int
    #: Banked fission sites (S, 3) and their statistical weights (S,);
    #: populated when the run banks fission (k-eigenvalue mode).
    fission_sites: np.ndarray | None = None
    fission_weights: np.ndarray | None = None

    @property
    def k_estimate(self) -> float:
        """Collision-estimator k: fission neutrons produced per history."""
        return self.fission_production / self.histories

    @property
    def collisions_per_history(self) -> float:
        return self.collisions / self.histories

    @property
    def leakage_fraction(self) -> float:
        return self.leaks / self.histories


class TransportProblem:
    """A box of side ``size`` cm with a checkerboard fuel/moderator
    lattice on an ``nmesh^3`` mesh (``vacuum``) or an infinite medium
    (``reflective`` boundaries, single material)."""

    def __init__(
        self,
        materials: tuple[Material, ...],
        size: float = 40.0,
        nmesh: int = 4,
        boundary: str = "vacuum",
        checkerboard: bool = True,
    ) -> None:
        if boundary not in ("vacuum", "reflective"):
            raise ConfigurationError(f"bad boundary {boundary!r}")
        if not materials:
            raise ConfigurationError("need at least one material")
        groups = {m.n_groups for m in materials}
        if len(groups) != 1:
            raise ConfigurationError("materials disagree on group count")
        self.materials = materials
        self.size = float(size)
        self.nmesh = nmesh
        self.boundary = boundary
        self.checkerboard = checkerboard and len(materials) > 1
        self.n_groups = groups.pop()
        self.n_nuclides = max(m.n_nuclides for m in materials)
        # Majorant over materials and groups (delta tracking).
        self.sigma_maj = float(max(m.sigma_t.max() for m in materials))

    # -- geometry --------------------------------------------------------

    def mesh_index(self, pos: np.ndarray) -> np.ndarray:
        """Mesh cell indices (N, 3) for positions (N, 3)."""
        idx = np.floor(pos / self.size * self.nmesh).astype(np.int64)
        return np.clip(idx, 0, self.nmesh - 1)

    def material_id(self, pos: np.ndarray) -> np.ndarray:
        if not self.checkerboard:
            return np.zeros(pos.shape[0], dtype=np.int64)
        idx = self.mesh_index(pos)
        return (idx.sum(axis=1) % 2).astype(np.int64)

    # -- transport ----------------------------------------------------------

    def run(
        self,
        n_particles: int,
        seed: int = 0,
        source: np.ndarray | None = None,
        bank_fission: bool = False,
    ) -> TransportResult:
        """Transport *n_particles* histories with delta tracking.

        ``source`` overrides the default uniform birth positions (the
        k-eigenvalue solver feeds the previous generation's fission bank);
        ``bank_fission`` records fission sites + weights in the result.
        """
        if n_particles < 1:
            raise ConfigurationError("need at least one particle")
        rng = np.random.default_rng(seed)
        if source is not None:
            source = np.asarray(source, dtype=float)
            if source.shape != (n_particles, 3):
                raise ConfigurationError(
                    f"source must be ({n_particles}, 3), got {source.shape}"
                )
            pos = np.clip(source.copy(), 0.0, self.size)
        else:
            pos = rng.uniform(0.0, self.size, (n_particles, 3))
        mu = rng.uniform(-1.0, 1.0, n_particles)
        phi = rng.uniform(0.0, 2.0 * np.pi, n_particles)
        sin_t = np.sqrt(1.0 - mu * mu)
        direction = np.stack(
            [sin_t * np.cos(phi), sin_t * np.sin(phi), mu], axis=1
        )
        group = np.zeros(n_particles, dtype=np.int64)  # born fast
        alive = np.ones(n_particles, dtype=bool)

        flux = np.zeros(
            (self.nmesh, self.nmesh, self.nmesh, self.n_groups, self.n_nuclides)
        )
        collisions = absorptions = leaks = 0
        fission_production = 0.0
        site_positions: list[np.ndarray] = []
        site_weights: list[np.ndarray] = []

        sig_t = np.stack([m.sigma_t for m in self.materials])  # (M, G)
        sig_a = np.stack([m.sigma_a for m in self.materials])
        nu_f = np.stack([m.nu_fission for m in self.materials])
        # Scatter CDF per material/group over outgoing groups.
        scat = np.stack([m.scatter for m in self.materials])  # (M, G, G)
        scat_tot = scat.sum(axis=2)
        with np.errstate(invalid="ignore", divide="ignore"):
            scat_cdf = np.cumsum(scat, axis=2) / scat_tot[:, :, None]
        scat_cdf = np.nan_to_num(scat_cdf, nan=1.0)

        max_events = 10_000
        for _ in range(max_events):
            if not alive.any():
                break
            n_live = int(np.count_nonzero(alive))
            dist = -np.log(rng.uniform(size=n_live)) / self.sigma_maj
            pos[alive] += direction[alive] * dist[:, None]

            # Boundary handling.
            out = np.any((pos < 0.0) | (pos > self.size), axis=1) & alive
            if self.boundary == "vacuum":
                leaks += int(np.count_nonzero(out))
                alive &= ~out
            else:
                low = pos < 0.0
                high = pos > self.size
                direction = np.where(low | high, -direction, direction)
                pos = np.where(low, -pos, pos)
                pos = np.where(high, 2.0 * self.size - pos, pos)
                pos = np.clip(pos, 0.0, self.size)

            live_idx = np.flatnonzero(alive)
            if live_idx.size == 0:
                break
            mat = self.material_id(pos[live_idx])
            grp = group[live_idx]
            sigma_here = sig_t[mat, grp]
            real = rng.uniform(size=live_idx.size) < sigma_here / self.sigma_maj
            hit = live_idx[real]
            if hit.size == 0:
                continue

            collisions += hit.size
            mat_h = mat[real]
            grp_h = grp[real]
            mesh = self.mesh_index(pos[hit])
            nuc = rng.integers(0, self.n_nuclides, size=hit.size)
            np.add.at(
                flux, (mesh[:, 0], mesh[:, 1], mesh[:, 2], grp_h, nuc), 1.0
            )
            site_w = nu_f[mat_h, grp_h] / sig_t[mat_h, grp_h]
            fission_production += float(np.sum(site_w))
            if bank_fission:
                fissile = site_w > 0.0
                if np.any(fissile):
                    site_positions.append(pos[hit[fissile]].copy())
                    site_weights.append(site_w[fissile].copy())

            absorbed = rng.uniform(size=hit.size) < (
                sig_a[mat_h, grp_h] / sig_t[mat_h, grp_h]
            )
            absorptions += int(np.count_nonzero(absorbed))
            alive[hit[absorbed]] = False

            # Scattering: new group + isotropic redirection.
            scat_idx = hit[~absorbed]
            if scat_idx.size:
                cdf = scat_cdf[mat_h[~absorbed], grp_h[~absorbed]]
                u = rng.uniform(size=scat_idx.size)
                group[scat_idx] = (cdf < u[:, None]).sum(axis=1)
                mu = rng.uniform(-1.0, 1.0, scat_idx.size)
                phi = rng.uniform(0.0, 2.0 * np.pi, scat_idx.size)
                sin_t = np.sqrt(1.0 - mu * mu)
                direction[scat_idx] = np.stack(
                    [sin_t * np.cos(phi), sin_t * np.sin(phi), mu], axis=1
                )
        else:  # pragma: no cover - bounded-event safeguard
            raise RuntimeError("transport did not terminate")

        sites = weights = None
        if bank_fission:
            if site_positions:
                sites = np.concatenate(site_positions)
                weights = np.concatenate(site_weights)
            else:
                sites = np.empty((0, 3))
                weights = np.empty(0)
        return TransportResult(
            flux=flux,
            collisions=collisions,
            absorptions=absorptions,
            leaks=leaks,
            fission_production=fission_production,
            histories=n_particles,
            fission_sites=sites,
            fission_weights=weights,
        )


def shannon_entropy(
    sites: np.ndarray, weights: np.ndarray, size: float, nmesh: int
) -> float:
    """Shannon entropy of a fission source over a mesh (bits).

    OpenMC's standard source-convergence diagnostic: the entropy of the
    binned source distribution plateaus once the power iteration has
    converged the spatial shape.
    """
    if len(sites) == 0:
        return 0.0
    idx = np.clip(
        np.floor(sites / size * nmesh).astype(np.int64), 0, nmesh - 1
    )
    flat = np.ravel_multi_index((idx[:, 0], idx[:, 1], idx[:, 2]), (nmesh,) * 3)
    hist = np.bincount(flat, weights=weights, minlength=nmesh**3)
    p = hist / hist.sum()
    nonzero = p[p > 0]
    return float(-np.sum(nonzero * np.log2(nonzero)))


@dataclass
class KEffResult:
    """Outcome of a k-eigenvalue power iteration."""

    k_per_batch: np.ndarray
    inactive: int
    #: Shannon entropy of the fission source per batch (bits).
    entropy_per_batch: np.ndarray | None = None

    @property
    def active_batches(self) -> np.ndarray:
        return self.k_per_batch[self.inactive :]

    @property
    def k_eff(self) -> float:
        return float(self.active_batches.mean())

    @property
    def k_std_error(self) -> float:
        active = self.active_batches
        if active.size < 2:
            return float("inf")
        return float(active.std(ddof=1) / np.sqrt(active.size))

    def source_converged(self, window: int = 3, tol: float = 0.15) -> bool:
        """True when the entropy has plateaued over the last *window*
        batches (the standard inactive-batch sufficiency check)."""
        h = self.entropy_per_batch
        if h is None or len(h) < window + 1:
            return False
        tail = h[-window:]
        return float(tail.max() - tail.min()) < tol


class KEigenvalueSolver:
    """Monte Carlo k-eigenvalue power iteration.

    The mode OpenMC runs reactors in: transport a generation from the
    current fission source, bank the fission sites it produces, estimate
    ``k = production / histories``, then resample the next generation's
    source from the bank.  Inactive batches converge the source; active
    batches accumulate the k statistics (the "active phase" whose rate
    defines the paper's FOM).
    """

    def __init__(
        self,
        problem: TransportProblem,
        particles_per_batch: int = 5000,
        inactive_batches: int = 5,
        active_batches: int = 10,
        seed: int = 0,
    ) -> None:
        if particles_per_batch < 10:
            raise ConfigurationError("need at least 10 particles per batch")
        if inactive_batches < 0 or active_batches < 1:
            raise ConfigurationError("bad batch configuration")
        self.problem = problem
        self.particles_per_batch = particles_per_batch
        self.inactive_batches = inactive_batches
        self.active_batches = active_batches
        self.seed = seed

    def solve(self) -> KEffResult:
        rng = np.random.default_rng(self.seed)
        n = self.particles_per_batch
        source: np.ndarray | None = None
        ks = []
        entropies = []
        total = self.inactive_batches + self.active_batches
        for batch in range(total):
            result = self.problem.run(
                n, seed=self.seed + 1 + batch, source=source, bank_fission=True
            )
            ks.append(result.k_estimate)
            sites = result.fission_sites
            weights = result.fission_weights
            assert sites is not None and weights is not None
            if len(sites) == 0:
                raise ConfigurationError(
                    "fission source died out (subcritical problem with too "
                    "few particles)"
                )
            entropies.append(
                shannon_entropy(
                    sites, weights, self.problem.size, self.problem.nmesh
                )
            )
            # Resample n sites with probability proportional to weight.
            p = weights / weights.sum()
            idx = rng.choice(len(sites), size=n, p=p)
            source = sites[idx]
        return KEffResult(
            k_per_batch=np.array(ks),
            inactive=self.inactive_batches,
            entropy_per_batch=np.array(entropies),
        )


def run_distributed(
    comm, problem: TransportProblem, histories_per_rank: int, seed: int = 0
) -> TransportResult:
    """Weak-scaled transport over the simulated MPI job.

    Each rank transports its own histories with an independent RNG
    stream, then the mesh tallies and scalar counters are reduced —
    exactly OpenMC's domain-replicated mode.  The reduced result equals
    the sum of the per-rank runs by construction (tested).
    """
    local = problem.run(histories_per_rank, seed=seed + 1000 * comm.rank)
    flux = comm.Allreduce(local.flux)
    counters = comm.Allreduce(
        np.array(
            [
                float(local.collisions),
                float(local.absorptions),
                float(local.leaks),
                local.fission_production,
            ]
        )
    )
    return TransportResult(
        flux=flux,
        collisions=int(counters[0]),
        absorptions=int(counters[1]),
        leaks=int(counters[2]),
        fission_production=float(counters[3]),
        histories=histories_per_rank * comm.size,
    )


@register(
    name="openmc",
    category="app",
    programming_model="OpenMP",
    description="Monte Carlo particle transport, SMR depleted-fuel tallies",
)
class OpenMc(MiniApp):
    """FOM = thousand particles / second (Table V), full node."""

    app_key = "openmc"

    def run_functional(
        self, n_particles: int = 2000, seed: int = 0
    ) -> TransportResult:
        problem = TransportProblem(smr_materials(), nmesh=4)
        return problem.run(n_particles, seed)

    def fom(self, engine: PerfEngine, n_stacks: int | None = None) -> float:
        """kparticles/s with *n_stacks* devices (default: full node)."""
        if n_stacks is None:
            n_stacks = engine.node.n_stacks
        self._check_stacks(engine, n_stacks)
        cal = get_app_calibration("openmc", engine.system.calibration_key)
        assert isinstance(cal, OpenMcCalibration)
        return cal.kparticles_per_device * n_stacks
