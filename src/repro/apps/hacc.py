"""CRK-HACC-style cosmology: N-body gravity + CRK-SPH hydro (Section VI-A.2).

"The Hardware/Hybrid Accelerated Cosmology Code (HACC) is an N-body
simulation code designed for large-scale structure formation studies.
... CRK-HACC now incorporates gas hydrodynamics using a modern
smoothed-particle hydrodynamics (SPH) approach called conservative
reproducing kernel SPH (CRKSPH)."

Functional leg:

* **gravity**: direct softened N-body forces with leapfrog (KDK)
  integration — momentum conservation is exact by construction and the
  tests verify orbital energy stability;
* **CRK-SPH**: cubic-spline SPH density summation plus the
  zeroth/first-order *reproducing-kernel correction* — per-particle
  coefficients (A_i, B_i) solved from the moment conditions so the
  corrected kernel reproduces constant and linear fields exactly, which
  the tests check against machine precision on irregular particle sets.

FOM leg: Table V classifies HACC as "CPU memory BW bound, GPU FP32
flop-rate bound"; the node model is a two-term sum — GPU FP32 force work
plus host-side work scaling with effective CPU cores (Aurora's
HBM-backed Xeons get a bandwidth uplift) — which reproduces the four
Table VI full-node FOMs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.registry import register
from ..dtypes import Precision
from ..errors import ConfigurationError, NotMeasuredError
from ..sim.calibration import HaccCalibration, get_app_calibration
from ..sim.engine import PerfEngine
from ..miniapps.base import MiniApp

__all__ = [
    "NBodySystem",
    "SphGasSystem",
    "cubic_spline_kernel",
    "cubic_spline_gradient",
    "crk_coefficients",
    "crk_interpolate",
    "sph_density",
    "two_body_circular",
    "Hacc",
    "PAPER_STEPS",
]

#: The FOM model's step count (FOM = steps / node-time; the paper's FOM is
#: N_p * N_steps / time, which reduces to this for the fixed inputs).
PAPER_STEPS = 100

#: GPU FP32 work per step (flops) and host work per step (core-seconds)
#: back-solved from the JLSE-H100 and JLSE-MI250 rows of Table VI against
#: the engine's achieved full-node FP32 rates and usable core counts.
GPU_FLOPS_PER_STEP = 1.1038e15
HOST_CORE_SECONDS_PER_STEP = 352.68


# ---------------------------------------------------------------------------
# Gravity
# ---------------------------------------------------------------------------


@dataclass
class NBodySystem:
    """Self-gravitating particles (G = 1) with Plummer softening."""

    pos: np.ndarray  # (N, 3)
    vel: np.ndarray  # (N, 3)
    mass: np.ndarray  # (N,)
    softening: float = 1e-3

    def __post_init__(self) -> None:
        n = self.pos.shape[0]
        if self.pos.shape != (n, 3) or self.vel.shape != (n, 3):
            raise ConfigurationError("positions/velocities must be (N, 3)")
        if self.mass.shape != (n,):
            raise ConfigurationError("masses must be (N,)")
        if np.any(self.mass <= 0):
            raise ConfigurationError("masses must be positive")

    @property
    def n(self) -> int:
        return self.pos.shape[0]

    def accelerations(self) -> np.ndarray:
        """Direct-sum softened gravitational accelerations."""
        diff = self.pos[None, :, :] - self.pos[:, None, :]  # (i, j, 3)
        r2 = np.sum(diff * diff, axis=-1) + self.softening**2
        inv_r3 = r2**-1.5
        np.fill_diagonal(inv_r3, 0.0)
        return np.einsum("ij,j,ijk->ik", inv_r3, self.mass, diff)

    def step(self, dt: float) -> None:
        """Leapfrog kick-drift-kick."""
        if dt <= 0:
            raise ConfigurationError("dt must be positive")
        acc = self.accelerations()
        self.vel += 0.5 * dt * acc
        self.pos += dt * self.vel
        self.vel += 0.5 * dt * self.accelerations()

    def run(self, steps: int, dt: float) -> None:
        for _ in range(steps):
            self.step(dt)

    # -- invariants -----------------------------------------------------------

    def total_momentum(self) -> np.ndarray:
        return np.sum(self.mass[:, None] * self.vel, axis=0)

    def total_energy(self) -> float:
        kinetic = 0.5 * float(
            np.sum(self.mass * np.sum(self.vel * self.vel, axis=1))
        )
        diff = self.pos[None, :, :] - self.pos[:, None, :]
        r = np.sqrt(np.sum(diff * diff, axis=-1) + self.softening**2)
        mm = self.mass[:, None] * self.mass[None, :]
        inv = mm / r
        potential = -0.5 * float(np.sum(inv) - np.trace(inv))
        return kinetic + potential


def two_body_circular(separation: float = 1.0, mass: float = 0.5) -> NBodySystem:
    """Equal masses on a circular orbit (analytic period 2*pi*r^1.5/sqrt(M))."""
    r = separation / 2.0
    v = np.sqrt(mass / (2.0 * separation))
    return NBodySystem(
        pos=np.array([[-r, 0.0, 0.0], [r, 0.0, 0.0]]),
        vel=np.array([[0.0, -v, 0.0], [0.0, v, 0.0]]),
        mass=np.array([mass, mass]),
        softening=1e-6,
    )


# ---------------------------------------------------------------------------
# CRK-SPH
# ---------------------------------------------------------------------------


def cubic_spline_kernel(r: np.ndarray, h: float) -> np.ndarray:
    """The M4 cubic spline kernel in 3D (normalised)."""
    if h <= 0:
        raise ConfigurationError("smoothing length must be positive")
    q = np.asarray(r) / h
    sigma = 1.0 / (np.pi * h**3)
    w = np.where(
        q < 1.0,
        1.0 - 1.5 * q**2 + 0.75 * q**3,
        np.where(q < 2.0, 0.25 * (2.0 - q) ** 3, 0.0),
    )
    return sigma * w


def sph_density(
    pos: np.ndarray, mass: np.ndarray, h: float
) -> np.ndarray:
    """Standard SPH density summation ``rho_i = sum_j m_j W(|xi-xj|, h)``."""
    diff = pos[:, None, :] - pos[None, :, :]
    r = np.sqrt(np.sum(diff * diff, axis=-1))
    return cubic_spline_kernel(r, h) @ mass


def crk_coefficients(
    pos: np.ndarray, volume: np.ndarray, h: float
) -> tuple[np.ndarray, np.ndarray]:
    """First-order reproducing-kernel correction coefficients (A_i, B_i).

    The corrected kernel ``W~_ij = A_i (1 + B_i . (x_i - x_j)) W_ij``
    satisfies the moment conditions

        sum_j V_j W~_ij = 1        (reproduces constants)
        sum_j V_j W~_ij (x_j - x_i) = 0   (reproduces linear fields)

    which yields a 4x4 linear solve per particle in the raw moments
    m0 = sum V W, m1 = sum V W dx, m2 = sum V W dx dx^T.
    """
    n = pos.shape[0]
    diff = pos[:, None, :] - pos[None, :, :]  # x_i - x_j
    r = np.sqrt(np.sum(diff * diff, axis=-1))
    w = cubic_spline_kernel(r, h)  # (i, j)
    vw = volume[None, :] * w
    m0 = vw.sum(axis=1)  # (i,)
    m1 = np.einsum("ij,ijk->ik", vw, diff)  # sum V W (x_i - x_j)
    m2 = np.einsum("ij,ijk,ijl->ikl", vw, diff, diff)
    # Solve per particle: [m0, m1^T; m1, m2] [A; A*B] = [1; 0].
    mat = np.empty((n, 4, 4))
    mat[:, 0, 0] = m0
    mat[:, 0, 1:] = m1
    mat[:, 1:, 0] = m1
    mat[:, 1:, 1:] = m2
    rhs = np.zeros((n, 4, 1))
    rhs[:, 0, 0] = 1.0
    sol = np.linalg.solve(mat, rhs)[:, :, 0]
    a = sol[:, 0]
    b = sol[:, 1:] / a[:, None]
    return a, b


def crk_interpolate(
    pos: np.ndarray,
    volume: np.ndarray,
    values: np.ndarray,
    h: float,
) -> np.ndarray:
    """CRK-corrected SPH interpolation of a particle field.

    Exactly reproduces constant and linear fields on arbitrary particle
    arrangements — the property that distinguishes CRKSPH from standard
    SPH (whose interpolation error the tests demonstrate).
    """
    a, b = crk_coefficients(pos, volume, h)
    diff = pos[:, None, :] - pos[None, :, :]
    r = np.sqrt(np.sum(diff * diff, axis=-1))
    w = cubic_spline_kernel(r, h)
    corrected = a[:, None] * (1.0 + np.einsum("ik,ijk->ij", b, diff)) * w
    return corrected @ (volume * values)


def cubic_spline_gradient(
    diff: np.ndarray, r: np.ndarray, h: float
) -> np.ndarray:
    """Gradient of the M4 kernel w.r.t. x_i: dW/dr * (x_i - x_j)/r.

    ``diff`` is (..., 3) with ``r = |diff|``; returns (..., 3).
    """
    if h <= 0:
        raise ConfigurationError("smoothing length must be positive")
    q = r / h
    sigma = 1.0 / (np.pi * h**3)
    dwdq = np.where(
        q < 1.0,
        -3.0 * q + 2.25 * q**2,
        np.where(q < 2.0, -0.75 * (2.0 - q) ** 2, 0.0),
    )
    dwdr = sigma * dwdq / h
    with np.errstate(invalid="ignore", divide="ignore"):
        unit = np.where(r[..., None] > 1e-12, diff / r[..., None], 0.0)
    return dwdr[..., None] * unit


@dataclass
class SphGasSystem:
    """Self-interacting ideal gas evolved with classic SPH.

    The hydrodynamic half of CRK-HACC (here in the standard
    momentum-conserving SPH form; the CRK correction functions above are
    its interpolation-accuracy upgrade):

    * density by kernel summation;
    * pressure from the ideal-gas EOS ``P = (gamma - 1) rho u``;
    * pairwise-antisymmetric pressure acceleration
      ``a_i = -sum_j m_j (P_i/rho_i^2 + P_j/rho_j^2) gradW_ij``
      (total momentum conserved to round-off by construction);
    * matching specific-internal-energy equation, conserving total
      energy (kinetic + internal) to integration error.
    """

    pos: np.ndarray  # (N, 3)
    vel: np.ndarray  # (N, 3)
    mass: np.ndarray  # (N,)
    internal_energy: np.ndarray  # (N,) specific
    h: float
    gamma: float = 5.0 / 3.0

    def __post_init__(self) -> None:
        n = self.pos.shape[0]
        if self.pos.shape != (n, 3) or self.vel.shape != (n, 3):
            raise ConfigurationError("positions/velocities must be (N, 3)")
        if self.mass.shape != (n,) or self.internal_energy.shape != (n,):
            raise ConfigurationError("mass/energy must be (N,)")
        if np.any(self.internal_energy < 0):
            raise ConfigurationError("internal energy must be non-negative")
        if self.h <= 0:
            raise ConfigurationError("smoothing length must be positive")

    @property
    def n(self) -> int:
        return self.pos.shape[0]

    def density(self) -> np.ndarray:
        return sph_density(self.pos, self.mass, self.h)

    def pressure(self, rho: np.ndarray | None = None) -> np.ndarray:
        rho = self.density() if rho is None else rho
        return (self.gamma - 1.0) * rho * self.internal_energy

    def _pair_terms(self):
        diff = self.pos[:, None, :] - self.pos[None, :, :]
        r = np.sqrt(np.sum(diff * diff, axis=-1))
        grad = cubic_spline_gradient(diff, r, self.h)  # (i, j, 3)
        rho = self.density()
        p = self.pressure(rho)
        coeff = p / rho**2
        sym = coeff[:, None] + coeff[None, :]  # (i, j)
        np.fill_diagonal(sym, 0.0)
        return grad, sym, rho

    def accelerations(self) -> np.ndarray:
        grad, sym, _ = self._pair_terms()
        return -np.einsum("j,ij,ijk->ik", self.mass, sym, grad)

    def energy_rate(self) -> np.ndarray:
        """du/dt from the matching (conservative) SPH energy equation."""
        grad, sym, rho = self._pair_terms()
        dvel = self.vel[:, None, :] - self.vel[None, :, :]
        p = self.pressure(rho)
        coeff = p / rho**2
        return 0.5 * np.einsum(
            "j,i,ijk,ijk->i", self.mass, 2.0 * coeff, dvel, grad
        )

    def stable_dt(self, cfl: float = 0.25) -> float:
        rho = self.density()
        c = np.sqrt(self.gamma * np.maximum(self.pressure(rho), 1e-12) / rho)
        vmax = float(np.max(np.linalg.norm(self.vel, axis=1) + c))
        return cfl * self.h / max(vmax, 1e-12)

    def step(self, dt: float | None = None) -> float:
        """One kick-drift-kick step of the gas."""
        if dt is None:
            dt = self.stable_dt()
        if dt <= 0:
            raise ConfigurationError("dt must be positive")
        acc = self.accelerations()
        dudt = self.energy_rate()
        self.vel += 0.5 * dt * acc
        self.internal_energy = np.maximum(
            self.internal_energy + 0.5 * dt * dudt, 0.0
        )
        self.pos += dt * self.vel
        acc = self.accelerations()
        dudt = self.energy_rate()
        self.vel += 0.5 * dt * acc
        self.internal_energy = np.maximum(
            self.internal_energy + 0.5 * dt * dudt, 0.0
        )
        return dt

    def total_momentum(self) -> np.ndarray:
        return np.sum(self.mass[:, None] * self.vel, axis=0)

    def total_energy(self) -> float:
        kinetic = 0.5 * float(
            np.sum(self.mass * np.sum(self.vel * self.vel, axis=1))
        )
        thermal = float(np.sum(self.mass * self.internal_energy))
        return kinetic + thermal


# ---------------------------------------------------------------------------
# The application wrapper
# ---------------------------------------------------------------------------


@register(
    name="hacc",
    category="app",
    programming_model="SYCL, HIP, CUDA",
    description="N-body gravity + CRK-SPH hydrodynamics (CRK-HACC)",
)
class Hacc(MiniApp):
    """FOM = N_p * N_steps / time (Table V), full node only in Table VI."""

    app_key = "hacc"

    def run_functional(
        self, n_particles: int = 64, steps: int = 10, seed: int = 0
    ) -> NBodySystem:
        rng = np.random.default_rng(seed)
        system = NBodySystem(
            pos=rng.uniform(-1, 1, (n_particles, 3)),
            vel=rng.normal(0, 0.05, (n_particles, 3)),
            mass=np.full(n_particles, 1.0 / n_particles),
            softening=0.05,
        )
        system.run(steps, dt=0.01)
        return system

    def node_time_per_step(self, engine: PerfEngine) -> float:
        """Two-term node model: GPU FP32 force work + host-side work."""
        cal = get_app_calibration("hacc", engine.system.calibration_key)
        assert isinstance(cal, HaccCalibration)
        sp_node = engine.fma_rate(Precision.FP32, engine.node.n_stacks)
        t_gpu = GPU_FLOPS_PER_STEP / (sp_node * cal.gpu_efficiency)
        cores = engine.node.usable_cores * cal.cpu_core_boost
        t_host = HOST_CORE_SECONDS_PER_STEP / cores
        return t_gpu + t_host

    def fom(self, engine: PerfEngine, n_stacks: int | None = None) -> float:
        """FOM in the paper's scaled units: ``N_steps / walltime`` with the
        fixed per-system inputs folded into the per-step constants."""
        if n_stacks is None:
            n_stacks = engine.node.n_stacks
        if n_stacks != engine.node.n_stacks:
            raise NotMeasuredError(
                "the paper reports HACC FOMs for full nodes only"
            )
        return PAPER_STEPS / self.node_time_per_step(engine)
