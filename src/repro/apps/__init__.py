"""The two science applications of Section VI.

Importing this package registers both applications in the global registry.
"""

from .hacc import (
    Hacc,
    NBodySystem,
    crk_coefficients,
    crk_interpolate,
    cubic_spline_kernel,
    sph_density,
    two_body_circular,
)
from .openmc import (
    KEffResult,
    KEigenvalueSolver,
    Material,
    OpenMc,
    TransportProblem,
    TransportResult,
    smr_materials,
)

__all__ = [
    "Hacc",
    "NBodySystem",
    "crk_coefficients",
    "crk_interpolate",
    "cubic_spline_kernel",
    "sph_density",
    "two_body_circular",
    "KEffResult",
    "KEigenvalueSolver",
    "Material",
    "OpenMc",
    "TransportProblem",
    "TransportResult",
    "smr_materials",
]
