"""Numeric precisions used across the benchmark suite.

The paper's GEMM benchmark covers FP64, FP32, FP16, BF16, TF32 and I8
(Table II); the FMA/flops benchmarks cover FP64 and FP32.
"""

from __future__ import annotations

import enum

import numpy as np

__all__ = ["Precision", "ENGINE_VECTOR", "ENGINE_MATRIX"]

#: Which execution unit a precision maps to on PVC (Section II: the matrix
#: unit "supports only lower precision operations").
ENGINE_VECTOR = "vector"
ENGINE_MATRIX = "matrix"


class Precision(enum.Enum):
    """A numeric precision with its storage size and preferred engine."""

    FP64 = ("fp64", 8, ENGINE_VECTOR)
    FP32 = ("fp32", 4, ENGINE_VECTOR)
    FP16 = ("fp16", 2, ENGINE_MATRIX)
    BF16 = ("bf16", 2, ENGINE_MATRIX)
    TF32 = ("tf32", 4, ENGINE_MATRIX)
    I8 = ("i8", 1, ENGINE_MATRIX)

    def __init__(self, label: str, itemsize: int, engine: str) -> None:
        self.label = label
        self.itemsize = itemsize
        self.engine = engine

    @property
    def is_integer(self) -> bool:
        return self is Precision.I8

    @property
    def numpy_dtype(self) -> np.dtype:
        """Closest NumPy dtype for functional execution.

        TF32 and BF16 have no native NumPy representation; functional
        kernels compute them in float32 (which strictly contains both
        formats' dynamic range for the purposes of the validation tests).
        """
        return np.dtype(
            {
                Precision.FP64: np.float64,
                Precision.FP32: np.float32,
                Precision.FP16: np.float16,
                Precision.BF16: np.float32,
                Precision.TF32: np.float32,
                Precision.I8: np.int8,
            }[self]
        )

    @classmethod
    def from_label(cls, label: str) -> "Precision":
        for p in cls:
            if p.label == label.lower():
                return p
        raise ValueError(f"unknown precision: {label!r}")

    def __str__(self) -> str:
        return self.label
