"""Content-addressed memoization for model evaluations.

Sweep tables and re-profiled campaign units evaluate the same roofline
points over and over: every repetition of a benchmark cell asks the
engine for the identical :class:`~repro.sim.roofline.RooflinePoint`
(noise is applied *after* the roofline, per rep), and multi-stack
sweeps revisit the same ``(kernel, n_stacks)`` grid.  The evaluation is
a pure function of the system model, the calibration table, and the
kernel descriptor — so it is safe to cache by *content*:

    key = (engine identity digest, kernel signature, n_stacks)

where the engine identity digest hashes the system name, the
calibration table's canonical JSON, and the ablation switches that
feed the roofline, and the kernel signature hashes the
:class:`~repro.sim.kernel.KernelSpec` fields.  Two engines built from
equal content share cache entries; any drift in calibration or spec
changes the key and misses cleanly.

Fault-injected engines bypass the cache entirely: injector state (clock
excursions, lost stacks, notes appended on scope clipping) makes the
evaluation impure.

Caches are scoped, not global — each
:class:`~repro.faults.ExecutionContext` owns one — so a campaign unit's
hit/miss counters (exported as ``simcache.hit`` / ``simcache.miss``
through the metrics registry) are a pure function of the unit, which
keeps serial and parallel campaign runs byte-identical.

The benchmark service shares evaluations *across* requests and daemon
restarts by swapping in
:class:`~repro.sim.memostore.PersistentMemoCache`, which layers this
in-memory tier over the on-disk content-addressed
:class:`~repro.sim.memostore.MemoStore`.  Campaign runs deliberately
keep the plain scoped cache: a persistent tier would make the
journalled hit/miss counters depend on prior runs and break the
byte-identity invariants.
"""

from __future__ import annotations

import dataclasses
from enum import Enum
from functools import lru_cache
from typing import Hashable, Mapping

from ..ioutils import canonical_json, sha256_text

__all__ = [
    "MemoCache",
    "batch_digest",
    "content_digest",
    "kernel_signature",
]

#: Default entry cap; FIFO eviction beyond it.  Generous relative to
#: the paper's sweep grids (a few hundred distinct points).
DEFAULT_MAX_ENTRIES = 4096


def _canon(obj: object) -> object:
    """Reduce *obj* to canonical-JSON-ready primitives, recursively.

    Handles the shapes calibration tables are built from: frozen
    dataclasses, ``MappingProxyType`` fields keyed by enums, tuples.
    """
    if isinstance(obj, Mapping):
        return {
            str(k): _canon(v)
            for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(obj, (list, tuple)):
        return [_canon(v) for v in obj]
    if isinstance(obj, Enum):
        return str(obj)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _canon(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    return obj


def content_digest(obj: object) -> str:
    """Hex SHA-256 of *obj*'s canonical form (the content address)."""
    return sha256_text(canonical_json(_canon(obj)))


def batch_digest(arrays: Mapping[str, object]) -> str:
    """Hex SHA-256 over a *block* of named arrays, not per element.

    The batch-evaluation path (:mod:`repro.sim.batch`) memoizes whole
    sweep chunks as single cache objects; keying per point would thrash
    the LRU with millions of tiny entries.  The digest covers each
    column's name, dtype, shape and raw little-endian bytes, so any
    drift in any point — or in the column layout — misses cleanly.
    """
    import hashlib

    import numpy as np

    h = hashlib.sha256()
    for name in sorted(arrays):
        column = np.ascontiguousarray(arrays[name])
        column = column.astype(column.dtype.newbyteorder("<"), copy=False)
        h.update(name.encode())
        h.update(str(column.dtype).encode())
        h.update(str(column.shape).encode())
        h.update(column.tobytes())
    return h.hexdigest()


@lru_cache(maxsize=DEFAULT_MAX_ENTRIES)
def kernel_signature(spec) -> str:
    """Content digest of a :class:`KernelSpec` (cached — specs are
    frozen and hashable, so the digest is computed once per spec)."""
    return content_digest(spec)


class MemoCache:
    """A bounded content-addressed cache with hit/miss accounting."""

    __slots__ = ("max_entries", "hits", "misses", "evictions", "_data")

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: dict[Hashable, object] = {}

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: Hashable):
        """The cached value, or ``None`` (counted as hit/miss)."""
        value = self._data.get(key)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def put(self, key: Hashable, value) -> None:
        if value is None:
            raise ValueError("MemoCache cannot store None (miss sentinel)")
        if key not in self._data and len(self._data) >= self.max_entries:
            # FIFO eviction: drop the oldest insertion.  Deterministic
            # (dict preserves insertion order) and cheap; sweep working
            # sets are far below the cap, so eviction is a safety valve,
            # not a tuning knob.
            self._data.pop(next(iter(self._data)))
            self.evictions += 1
        self._data[key] = value

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "entries": len(self._data),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
        }

    def clear(self) -> None:
        self._data.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
