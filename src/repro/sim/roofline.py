"""Roofline time estimation.

The classic roofline: a kernel's time is the maximum of its compute time
and its memory time (overlapped execution), plus a serialized
latency term for dependent-load chains (which overlap with nothing).

This module is pure arithmetic — the engine supplies achieved rates that
already fold in calibration and scaling.
"""

from __future__ import annotations

from dataclasses import dataclass

from .kernel import KernelSpec

__all__ = ["RooflinePoint", "kernel_time", "classify"]


@dataclass(frozen=True, slots=True)
class RooflinePoint:
    """Diagnostic decomposition of a kernel's roofline time.

    ``compute_rate``/``mem_bw`` stash the achieved-rate ceilings the
    model was evaluated with, so the profiler can attribute a kernel
    without re-querying the engine (which would re-trigger
    fault-injection notes).
    """

    compute_s: float
    memory_s: float
    latency_s: float
    compute_rate: float = 0.0
    mem_bw: float = 0.0

    @property
    def total_s(self) -> float:
        return max(self.compute_s, self.memory_s) + self.latency_s

    @property
    def bound(self) -> str:
        if self.latency_s > max(self.compute_s, self.memory_s):
            return "latency"
        return "compute" if self.compute_s >= self.memory_s else "memory"


def kernel_time(
    spec: KernelSpec,
    compute_rate: float,
    mem_bw: float,
    chase_latency_s: float = 0.0,
) -> RooflinePoint:
    """Roofline execution time of *spec*.

    Parameters
    ----------
    compute_rate:
        Achieved flop/s (or iop/s) for this kernel's precision/engine.
    mem_bw:
        Achieved device-memory bandwidth in B/s.
    chase_latency_s:
        Load-to-use latency per dependent access (for pointer chases).
    """
    if compute_rate <= 0 or mem_bw <= 0:
        raise ValueError("rates must be positive")
    compute_s = spec.flops / compute_rate if spec.flops else 0.0
    memory_s = spec.total_bytes / mem_bw if spec.total_bytes else 0.0
    latency_s = spec.serial_chases * chase_latency_s
    return RooflinePoint(
        compute_s, memory_s, latency_s,
        compute_rate=compute_rate, mem_bw=mem_bw,
    )


def classify(
    spec: KernelSpec, compute_rate: float, mem_bw: float
) -> str:
    """Which side of the roofline ridge the kernel sits on.

    Returns ``"compute"`` or ``"memory"``; the ridge is at arithmetic
    intensity ``compute_rate / mem_bw`` flops per byte.
    """
    ridge = compute_rate / mem_bw
    return "compute" if spec.arithmetic_intensity >= ridge else "memory"
