"""Vectorized batch evaluation of the roofline model.

:class:`~repro.sim.engine.PerfEngine` evaluates one ``(kernel, system,
n_stacks)`` point per Python call — fine for the paper's tables (a few
hundred points), hopeless for design-space exploration, where a
tile-size × precision × stack-count grid runs to millions of points and
the interpreter overhead per point dwarfs the arithmetic.  This module
evaluates whole design spaces in a handful of NumPy array ops:

* kernels arrive as a **struct-of-arrays** (:class:`KernelBatch`):
  flops, bytes read/written, working-set, chase counts, a precision
  code, a workload-kind code and a stack count per point;
* achieved-rate ceilings are resolved **once per distinct**
  ``(precision, kind, n_stacks)`` combination — by calling the scalar
  engine's own ``fma_rate``/``gemm_rate``/``stream_bw`` methods, so the
  ceilings are the *same floats* the scalar path uses — and scattered
  to the points through boolean masks;
* one vectorized pass per bound (compute ceiling with the TDP
  downclock folded into the rates, memory bandwidth, serialized chase
  latency), then a vectorized ``max``/compare over the bounds yields
  time and regime per point.

Because every per-point operation (division, addition, max) is the
same IEEE-754 double operation the scalar path performs on the same
operands, the batch result is **bit-for-bit identical** to calling
:meth:`PerfEngine.roofline` point by point.  The scalar path stays the
golden reference; ``tests/properties/test_prop_batch.py`` pins the
equality over randomized grids and ablations.

Whole chunks memoize as **single objects**: :meth:`KernelBatch.digest`
hashes the raw array block (see :func:`repro.sim.memo.batch_digest`),
so a million-point chunk occupies one cache entry instead of thrashing
an LRU with a million tiny ones.  :data:`BATCH_CODEC` round-trips a
:class:`BatchResult` through the on-disk
:class:`~repro.sim.memostore.MemoStore` for cross-process reuse.

Fault-injected engines are rejected: injector state (clock excursions,
lost stacks) makes evaluation impure per point, which is exactly what
the scalar path with its bypass counters is for.
"""

from __future__ import annotations

import base64
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..dtypes import ENGINE_MATRIX, Precision
from ..errors import KernelSpecError
from ..hw.frequency import WorkloadKind
from .kernel import KernelSpec
from .memo import batch_digest
from .roofline import RooflinePoint

__all__ = [
    "KernelBatch",
    "BatchResult",
    "BatchEngine",
    "BATCH_CODEC",
    "BOUND_LABELS",
    "PRECISION_CODES",
    "KIND_CODES",
]

#: Bound regime per code — matches the engine's ``_REGIME_CODE`` gauge
#: encoding (0 = latency, 1 = memory, 2 = compute).
BOUND_LABELS: tuple[str, ...] = ("latency", "memory", "compute")

#: Stable integer code per precision (-1 encodes "no precision", the
#: pure-data-movement case, which the engine treats as FP32 for rates).
PRECISION_CODES: dict[Precision | None, int] = {
    p: i for i, p in enumerate(Precision)
}
PRECISION_CODES[None] = -1
_PRECISION_BY_CODE: dict[int, Precision | None] = {
    code: p for p, code in PRECISION_CODES.items()
}

#: Stable integer code per workload kind.
KIND_CODES: dict[WorkloadKind, int] = {
    k: i for i, k in enumerate(WorkloadKind)
}
_KIND_BY_CODE: dict[int, WorkloadKind] = {
    code: k for k, code in KIND_CODES.items()
}


def _column(values, dtype, n: int | None) -> np.ndarray:
    array = np.asarray(values, dtype=dtype)
    if array.ndim == 0:
        array = array.reshape(1)
    if array.ndim != 1:
        raise KernelSpecError("batch columns must be one-dimensional")
    if n is not None and array.shape[0] != n:
        if array.shape[0] == 1:
            array = np.broadcast_to(array, (n,)).copy()
        else:
            raise KernelSpecError(
                f"batch column length {array.shape[0]} != {n}"
            )
    return array


@dataclass(frozen=True)
class KernelBatch:
    """A struct-of-arrays block of kernel workload descriptors.

    The columns mirror :class:`~repro.sim.kernel.KernelSpec` field for
    field; ``precision_code``/``kind_code`` carry the enum codes from
    :data:`PRECISION_CODES`/:data:`KIND_CODES` and ``n_stacks`` the
    evaluation scope per point.  Length-1 columns broadcast.
    """

    flops: np.ndarray
    bytes_read: np.ndarray
    bytes_written: np.ndarray
    working_set_bytes: np.ndarray
    serial_chases: np.ndarray
    precision_code: np.ndarray
    kind_code: np.ndarray
    n_stacks: np.ndarray

    @classmethod
    def from_arrays(
        cls,
        *,
        flops=0.0,
        bytes_read=0.0,
        bytes_written=0.0,
        working_set_bytes=0,
        serial_chases=0,
        precision: Precision | None | Sequence = Precision.FP32,
        kind: WorkloadKind | Sequence = WorkloadKind.FMA_CHAIN,
        n_stacks=1,
    ) -> "KernelBatch":
        """Build a batch from columns (scalars broadcast).

        ``precision`` and ``kind`` accept enum members, ``None`` (for
        precision), raw integer codes, or sequences of either.
        """

        def codes(values, table, name) -> np.ndarray:
            if isinstance(values, (Precision, WorkloadKind)) or values is None:
                values = [values]
            elif isinstance(values, (int, np.integer)):
                values = [int(values)]
            out = []
            for v in values:
                if isinstance(v, (int, np.integer)):
                    code = int(v)
                    if code not in (
                        _PRECISION_BY_CODE if name == "precision"
                        else _KIND_BY_CODE
                    ):
                        raise KernelSpecError(f"unknown {name} code {code}")
                    out.append(code)
                else:
                    try:
                        out.append(table[v])
                    except KeyError:
                        raise KernelSpecError(
                            f"unknown {name}: {v!r}"
                        ) from None
            return np.asarray(out, dtype=np.int8)

        columns = {
            "flops": np.asarray(flops, dtype=np.float64),
            "bytes_read": np.asarray(bytes_read, dtype=np.float64),
            "bytes_written": np.asarray(bytes_written, dtype=np.float64),
            "working_set_bytes": np.asarray(working_set_bytes, np.int64),
            "serial_chases": np.asarray(serial_chases, dtype=np.int64),
            "precision_code": codes(precision, PRECISION_CODES, "precision"),
            "kind_code": codes(kind, KIND_CODES, "kind"),
            "n_stacks": np.asarray(n_stacks, dtype=np.int16),
        }
        n = max(
            (np.atleast_1d(c).shape[0] for c in columns.values()), default=1
        )
        dtypes = {
            "flops": np.float64,
            "bytes_read": np.float64,
            "bytes_written": np.float64,
            "working_set_bytes": np.int64,
            "serial_chases": np.int64,
            "precision_code": np.int8,
            "kind_code": np.int8,
            "n_stacks": np.int16,
        }
        return cls(
            **{
                name: _column(col, dtypes[name], n)
                for name, col in columns.items()
            }
        )

    @classmethod
    def from_specs(
        cls, specs: Iterable[KernelSpec], n_stacks=1
    ) -> "KernelBatch":
        """Pack scalar :class:`KernelSpec` objects into one batch."""
        specs = list(specs)
        return cls.from_arrays(
            flops=[s.flops for s in specs],
            bytes_read=[s.bytes_read for s in specs],
            bytes_written=[s.bytes_written for s in specs],
            working_set_bytes=[s.working_set_bytes for s in specs],
            serial_chases=[s.serial_chases for s in specs],
            precision=[s.precision for s in specs],
            kind=[s.kind for s in specs],
            n_stacks=n_stacks,
        )

    def __post_init__(self) -> None:
        n = self.flops.shape[0]
        for name in (
            "bytes_read", "bytes_written", "working_set_bytes",
            "serial_chases", "precision_code", "kind_code", "n_stacks",
        ):
            if getattr(self, name).shape != (n,):
                raise KernelSpecError(
                    f"batch column {name} shape mismatch"
                )
        if n == 0:
            raise KernelSpecError("empty batch")
        if (
            bool(np.any(self.flops < 0))
            or bool(np.any(self.bytes_read < 0))
            or bool(np.any(self.bytes_written < 0))
        ):
            raise KernelSpecError("batch point with negative work")
        if bool(np.any(self.serial_chases < 0)):
            raise KernelSpecError("batch point with negative chase count")
        empty = (
            (self.flops == 0)
            & (self.bytes_read + self.bytes_written == 0)
            & (self.serial_chases == 0)
        )
        if bool(np.any(empty)):
            raise KernelSpecError(
                f"batch holds {int(np.sum(empty))} empty kernel point(s)"
            )
        chasing = self.serial_chases > 0
        if bool(np.any(chasing & (self.working_set_bytes <= 0))):
            raise KernelSpecError(
                "chase points need a positive working set"
            )

    def __len__(self) -> int:
        return self.flops.shape[0]

    def __getitem__(self, index: slice) -> "KernelBatch":
        if not isinstance(index, slice):
            raise TypeError("KernelBatch indexing takes slices (chunking)")
        return KernelBatch(
            flops=self.flops[index],
            bytes_read=self.bytes_read[index],
            bytes_written=self.bytes_written[index],
            working_set_bytes=self.working_set_bytes[index],
            serial_chases=self.serial_chases[index],
            precision_code=self.precision_code[index],
            kind_code=self.kind_code[index],
            n_stacks=self.n_stacks[index],
        )

    @property
    def total_bytes(self) -> np.ndarray:
        return self.bytes_read + self.bytes_written

    def spec(self, i: int, name: str | None = None) -> KernelSpec:
        """Reconstruct point *i* as a scalar :class:`KernelSpec`.

        The golden-reference hook: the property suite evaluates
        ``batch.spec(i)`` through the scalar engine and demands
        bit-for-bit agreement with the batch columns at *i*.
        """
        return KernelSpec(
            name=name or f"batch[{i}]",
            precision=_PRECISION_BY_CODE[int(self.precision_code[i])],
            flops=float(self.flops[i]),
            bytes_read=float(self.bytes_read[i]),
            bytes_written=float(self.bytes_written[i]),
            working_set_bytes=int(self.working_set_bytes[i]),
            kind=_KIND_BY_CODE[int(self.kind_code[i])],
            serial_chases=int(self.serial_chases[i]),
        )

    def digest(self) -> str:
        """Content digest over the raw array block (one hash for the
        whole chunk — the memoization key component that lets sweep
        chunks cache as single objects)."""
        return batch_digest(
            {
                "flops": self.flops,
                "bytes_read": self.bytes_read,
                "bytes_written": self.bytes_written,
                "working_set_bytes": self.working_set_bytes,
                "serial_chases": self.serial_chases,
                "precision_code": self.precision_code,
                "kind_code": self.kind_code,
                "n_stacks": self.n_stacks,
            }
        )


#: BatchResult columns serialized by the memostore codec, in order.
_RESULT_COLUMNS = (
    ("compute_s", np.float64),
    ("memory_s", np.float64),
    ("latency_s", np.float64),
    ("compute_rate", np.float64),
    ("mem_bw", np.float64),
)


@dataclass(frozen=True)
class BatchResult:
    """Roofline decomposition of every point of a :class:`KernelBatch`.

    The columns carry exactly what a per-point
    :class:`~repro.sim.roofline.RooflinePoint` would: the bound times,
    the achieved-rate ceilings the model was evaluated with, and the
    derived total/bound.  ``point(i)`` reconstructs the scalar object.
    """

    compute_s: np.ndarray
    memory_s: np.ndarray
    latency_s: np.ndarray
    compute_rate: np.ndarray
    mem_bw: np.ndarray

    def __len__(self) -> int:
        return self.compute_s.shape[0]

    @property
    def total_s(self) -> np.ndarray:
        return np.maximum(self.compute_s, self.memory_s) + self.latency_s

    @property
    def bound_code(self) -> np.ndarray:
        """0 = latency, 1 = memory, 2 = compute (:data:`BOUND_LABELS`)."""
        overlap = np.maximum(self.compute_s, self.memory_s)
        code = np.where(self.compute_s >= self.memory_s, 2, 1).astype(np.int8)
        return np.where(self.latency_s > overlap, np.int8(0), code)

    def bounds(self) -> np.ndarray:
        """Bound labels per point (object array of str)."""
        return np.array(BOUND_LABELS, dtype=object)[self.bound_code]

    def flops_per_s(self, flops: np.ndarray) -> np.ndarray:
        """Achieved flop rate per point (0 where a point has no flops)."""
        total = self.total_s
        with np.errstate(divide="ignore", invalid="ignore"):
            rate = np.where(total > 0, flops / total, 0.0)
        return rate

    def point(self, i: int) -> RooflinePoint:
        """Point *i* as the scalar engine's value type."""
        return RooflinePoint(
            compute_s=float(self.compute_s[i]),
            memory_s=float(self.memory_s[i]),
            latency_s=float(self.latency_s[i]),
            compute_rate=float(self.compute_rate[i]),
            mem_bw=float(self.mem_bw[i]),
        )

    def to_doc(self) -> dict:
        """JSON-safe document (base64-packed little-endian doubles) for
        the on-disk memo store."""
        doc: dict = {"schema": "repro.sim.batchresult/v1", "n": len(self)}
        for name, dtype in _RESULT_COLUMNS:
            column = np.ascontiguousarray(
                getattr(self, name), dtype=np.dtype(dtype).newbyteorder("<")
            )
            doc[name] = base64.b64encode(column.tobytes()).decode("ascii")
        return doc

    @classmethod
    def from_doc(cls, doc: dict) -> "BatchResult":
        if doc.get("schema") != "repro.sim.batchresult/v1":
            raise ValueError(
                f"not a batch-result document: {doc.get('schema')!r}"
            )
        n = int(doc["n"])
        columns = {}
        for name, dtype in _RESULT_COLUMNS:
            raw = base64.b64decode(doc[name])
            array = np.frombuffer(
                raw, dtype=np.dtype(dtype).newbyteorder("<")
            ).astype(dtype, copy=True)
            if array.shape[0] != n:
                raise ValueError(f"column {name} length mismatch")
            columns[name] = array
        return cls(**columns)


#: ``(encode, decode)`` pair that round-trips a :class:`BatchResult`
#: through :class:`~repro.sim.memostore.PersistentMemoCache`, so sweep
#: chunks share one sealed store object per chunk across processes and
#: daemon restarts.
BATCH_CODEC = (BatchResult.to_doc, BatchResult.from_doc)


class BatchEngine:
    """Vectorized evaluator bound to one (clean) scalar engine.

    The scalar :class:`~repro.sim.engine.PerfEngine` stays the single
    source of truth for achieved rates: this class only *amortizes* the
    rate queries over every point sharing a ``(precision, kind,
    n_stacks)`` combination and runs the roofline arithmetic as array
    ops.  Construct via :meth:`PerfEngine.batch`.
    """

    def __init__(self, engine) -> None:
        if engine.faults is not None:
            raise ValueError(
                "batch evaluation requires a fault-free engine "
                "(injector state is impure per point; use the scalar path)"
            )
        self.engine = engine
        # (precision_code, kind_code, n_stacks) -> compute ceiling.
        self._rate_cache: dict[tuple[int, int, int], float] = {}
        # n_stacks -> achieved stream bandwidth.
        self._bw_cache: dict[int, float] = {}
        # working_set_bytes -> chase latency seconds.
        self._chase_cache: dict[int, float] = {}

    # -- ceilings ----------------------------------------------------------

    def _compute_rate(self, pcode: int, kcode: int, stacks: int) -> float:
        key = (pcode, kcode, stacks)
        rate = self._rate_cache.get(key)
        if rate is None:
            precision = _PRECISION_BY_CODE[pcode] or Precision.FP32
            kind = _KIND_BY_CODE[kcode]
            if kind is WorkloadKind.GEMM or precision.engine == ENGINE_MATRIX:
                rate = self.engine.gemm_rate(precision, stacks)
            else:
                rate = self.engine.fma_rate(precision, stacks)
            self._rate_cache[key] = rate
        return rate

    def _stream_bw(self, stacks: int) -> float:
        bw = self._bw_cache.get(stacks)
        if bw is None:
            bw = self.engine.stream_bw(stacks)
            self._bw_cache[stacks] = bw
        return bw

    def _chase_latency(self, working_set: int) -> float:
        chase = self._chase_cache.get(working_set)
        if chase is None:
            chase = self.engine.latency_seconds(working_set)
            self._chase_cache[working_set] = chase
        return chase

    # -- evaluation --------------------------------------------------------

    def evaluate(
        self, batch: KernelBatch, *, memoize: bool = False
    ) -> BatchResult:
        """Roofline-decompose every point of *batch*.

        With ``memoize=True`` the whole chunk is looked up in (and
        written through) the engine's memo cache under a single
        batch-digest key — the chunk-granular analogue of the scalar
        path's per-point memoization.
        """
        key = None
        if memoize:
            key = ("batch", self.engine.identity_digest(), batch.digest())
            cached = self.engine.memo.get(key)
            if cached is not None:
                self._note(len(batch), hit=True)
                return cached
        n = len(batch)
        # Dense rate lookup: pack (precision, kind, n_stacks) into one
        # small integer, resolve each combination *present* once via the
        # scalar engine, then gather.  O(n) bincount + two gathers beats
        # a sort-based unique by an order of magnitude at 10^6 points.
        max_stacks = self.engine.node.n_stacks
        stacks = batch.n_stacks.astype(np.int64)
        lo, hi = int(stacks.min()), int(stacks.max())
        if lo < 1 or hi > max_stacks:
            # Same contract as the scalar path's _check_stacks.
            bad = lo if lo < 1 else hi
            raise ValueError(
                f"{self.engine.system.name} has 1..{max_stacks} stacks, "
                f"got {bad}"
            )
        stride = len(KIND_CODES) * (max_stacks + 1)
        flat = (
            (batch.precision_code.astype(np.int64) + 1) * stride
            + batch.kind_code.astype(np.int64) * (max_stacks + 1)
            + stacks
        )
        table_size = len(PRECISION_CODES) * stride
        present = np.nonzero(np.bincount(flat, minlength=table_size))[0]
        rate_lut = np.zeros(table_size, dtype=np.float64)
        bw_lut = np.zeros(table_size, dtype=np.float64)
        for code in present:
            code = int(code)
            pcode = code // stride - 1
            rem = code % stride
            rate_lut[code] = self._compute_rate(
                pcode, rem // (max_stacks + 1), rem % (max_stacks + 1)
            )
            bw_lut[code] = self._stream_bw(rem % (max_stacks + 1))
        compute_rate = rate_lut[flat]
        mem_bw = bw_lut[flat]
        # One pass per bound.  0/rate == 0.0 exactly, which is what the
        # scalar path's ``if spec.flops`` short-circuit produces, so no
        # masking is needed for work-free points.
        compute_s = batch.flops / compute_rate
        memory_s = batch.total_bytes / mem_bw
        latency_s = np.zeros(n, dtype=np.float64)
        chasing = np.flatnonzero(batch.serial_chases > 0)
        if chasing.size:
            ws = batch.working_set_bytes[chasing]
            chase = np.empty(chasing.size, dtype=np.float64)
            for value in np.unique(ws):
                chase[ws == value] = self._chase_latency(int(value))
            latency_s[chasing] = (
                batch.serial_chases[chasing].astype(np.float64) * chase
            )
        result = BatchResult(
            compute_s=compute_s,
            memory_s=memory_s,
            latency_s=latency_s,
            compute_rate=compute_rate,
            mem_bw=mem_bw,
        )
        if key is not None:
            self.engine.memo.put(key, result)
        self._note(n, hit=False)
        return result

    def _note(self, n_points: int, *, hit: bool) -> None:
        telemetry = self.engine.telemetry
        if telemetry is not None:
            telemetry.metrics.inc("batch.evals")
            telemetry.metrics.inc("batch.points", float(n_points))
            if hit:
                telemetry.metrics.inc("batch.chunk_hits")
