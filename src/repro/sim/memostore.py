"""The persistent, shared, on-disk content-addressed memo store.

:class:`~repro.sim.memo.MemoCache` is context-scoped: it dies with the
run that built it.  The benchmark service (:mod:`repro.service`) needs
the opposite — the paper campaign's 95.4% hit rate only makes repeated
user queries near-free if the cache *survives* across requests and
across daemon restarts.  :class:`MemoStore` is that shared tier: a
directory of content-addressed JSON objects engineered for failure
first.

Layout (under one root directory)::

    objects/<aa>/<digest>.json   sealed {"key", "value", "sha256"} docs
    index.jsonl                  checksummed LRU journal (put/touch/evict)
    quarantine/                  corrupt objects moved aside, never trusted

Robustness properties:

* **Atomic two-phase writes** — every object lands via
  :func:`repro.ioutils.atomic_write_json` (temp file + fsync +
  ``os.replace``), then the index journal records it with one fsync'd
  append.  A crash between the phases leaves an orphan object that the
  next index rebuild re-adopts; a crash mid-append leaves a torn index
  tail that the reader drops, backed by the objects on disk.
* **Checksum verification on read** — each object doc seals its own
  SHA-256 (the journal-record scheme).  A mismatch — bit rot, a torn
  foreign write, deliberate corruption from the ``cache-corruption``
  drill — never crashes the request: the file is moved into
  ``quarantine/`` with a unique suffix, the read reports a miss, and
  the caller recomputes and re-puts a clean copy.
* **Size-bounded LRU eviction** — ``max_entries`` bounds the store;
  ``get``/``put`` append ``touch``/``put`` records so recency survives
  restarts, and eviction unlinks the coldest object and journals it.
  The index journal itself is compacted with one atomic rewrite when
  it grows past a small multiple of the live entry count.
* **Bounded ENOSPC retry** — index appends and object writes go
  through :mod:`repro.ioutils`, so transient disk-pressure faults are
  absorbed by the same bounded backoff the campaign journal uses (the
  ``io-enospc`` drill in the chaos suite points the fault gate at this
  store).

Concurrent writers are expected (daemon executor threads): mutating
entry points take an in-process lock, and cross-process sharing is
safe because objects are content-addressed (two writers racing on one
key write identical bytes) and the index is append-only with
self-checksummed records — appends (including the ENOSPC-retry
truncation window) are serialized under the exclusive file lock
:func:`repro.ioutils.fsync_append_text` holds, so one writer's retry
can never clobber another's committed record.  Even a lost index
record only costs recency: the objects on disk are the truth and the
next index rebuild re-adopts them.
"""

from __future__ import annotations

import json
import os
import threading

from ..ioutils import (
    atomic_write_json,
    atomic_write_text,
    fsync_append_text,
    read_sealed_ndjson,
    record_intact,
    seal_record,
)
from .memo import MemoCache, content_digest

__all__ = ["MemoStore", "PersistentMemoCache", "read_index"]

#: Default entry bound, matching the in-memory cache's cap.
DEFAULT_MAX_ENTRIES = 4096

#: Index journal schema version.
INDEX_VERSION = 1

#: Operations an index record may carry.
INDEX_OPS = ("put", "touch", "evict", "quarantine")

#: Compact the index once it holds more than this many records per live
#: entry (touches dominate; without compaction the journal grows
#: without bound while the store stays the same size).
_COMPACT_FACTOR = 8


def _valid_index_record(doc: dict) -> bool:
    return (
        doc.get("v") == INDEX_VERSION
        and doc.get("op") in INDEX_OPS
        and isinstance(doc.get("key"), str)
    )


def read_index(path: str | os.PathLike) -> tuple[list[dict], int]:
    """Decode an index journal, keeping the longest intact prefix.

    Returns ``(records, dropped)`` where *dropped* counts trailing
    lines rejected for torn writes, checksum failures, or unknown
    shapes — the same torn-tail contract as the campaign journal, so a
    reader tailing the index while a writer is mid-append never sees a
    partial record.
    """
    return read_sealed_ndjson(path, accept=_valid_index_record)


class MemoStore:
    """A crash-safe shared content-addressed store of JSON values."""

    def __init__(
        self,
        root: str | os.PathLike,
        max_entries: int = DEFAULT_MAX_ENTRIES,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.root = os.fspath(root)
        self.max_entries = max_entries
        #: Optional observer called with the key after a quarantine
        #: (the daemon publishes it as a ``cache-quarantined`` live
        #: event).  Failures in the observer never fail the read.
        self.on_quarantine = None
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.quarantined = 0
        self._lock = threading.Lock()
        #: key -> True, in LRU order (oldest first).  Rebuilt from the
        #: index journal, reconciled against the objects on disk.
        self._lru: dict[str, bool] = {}
        self._index_records = 0
        os.makedirs(self.objects_dir, exist_ok=True)
        self._recover()

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------

    @property
    def objects_dir(self) -> str:
        return os.path.join(self.root, "objects")

    @property
    def quarantine_dir(self) -> str:
        return os.path.join(self.root, "quarantine")

    @property
    def index_path(self) -> str:
        return os.path.join(self.root, "index.jsonl")

    def object_path(self, key: str) -> str:
        return os.path.join(self.objects_dir, key[:2], key + ".json")

    # ------------------------------------------------------------------
    # recovery / index maintenance
    # ------------------------------------------------------------------

    def _scan_objects(self) -> set[str]:
        keys: set[str] = set()
        for shard in sorted(os.listdir(self.objects_dir)):
            shard_dir = os.path.join(self.objects_dir, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json"):
                    keys.add(name[: -len(".json")])
        return keys

    def _recover(self) -> None:
        """Rebuild the LRU from the index journal and the objects dir.

        The journal is advisory (recency + provenance); the objects on
        disk are the truth.  Orphan objects (index lost, or a crash
        between the object write and the index append) are re-adopted
        in sorted order ahead of journalled recency; index entries
        whose object vanished are dropped.
        """
        records, _dropped = read_index(self.index_path)
        on_disk = self._scan_objects()
        lru: dict[str, bool] = {}
        for rec in records:
            key = rec["key"]
            if rec["op"] in ("put", "touch"):
                lru.pop(key, None)
                lru[key] = True
            else:  # evict / quarantine
                lru.pop(key, None)
        self._lru = {k: True for k in sorted(on_disk - set(lru))}
        self._lru.update({k: True for k in lru if k in on_disk})
        self._index_records = len(records)
        if len(self._lru) != len(lru) or _dropped:
            # The journal disagreed with the disk (orphans, stale
            # entries, torn tail): rewrite it to match reality once,
            # atomically, then go back to O(1) appends.
            self._compact()

    def _append_index(self, op: str, key: str) -> None:
        rec = seal_record({"v": INDEX_VERSION, "op": op, "key": key})
        fsync_append_text(self.index_path, json.dumps(rec, sort_keys=True) + "\n")
        self._index_records += 1
        if self._index_records > max(_COMPACT_FACTOR * len(self._lru),
                                     _COMPACT_FACTOR):
            self._compact()

    def _compact(self) -> None:
        """One atomic rewrite: a ``put`` record per live entry, in LRU order."""
        lines = []
        for key in self._lru:
            rec = seal_record({"v": INDEX_VERSION, "op": "put", "key": key})
            lines.append(json.dumps(rec, sort_keys=True) + "\n")
        atomic_write_text(self.index_path, "".join(lines))
        self._index_records = len(lines)

    # ------------------------------------------------------------------
    # read / write
    # ------------------------------------------------------------------

    def get(self, key: str):
        """The stored value, or ``None`` (counted as hit/miss).

        A payload that is unreadable, unparseable, or fails its sealed
        checksum is *quarantined*: moved into ``quarantine/`` with a
        unique suffix and journalled, and the read reports a miss so
        the caller recomputes.  Corruption never propagates and never
        raises.
        """
        path = self.object_path(key)
        with self._lock:
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    doc = json.load(fh)
            except FileNotFoundError:
                self.misses += 1
                return None
            except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                self._quarantine(key, path)
                self.misses += 1
                return None
            if (
                not isinstance(doc, dict)
                or doc.get("key") != key
                or not record_intact(doc)
            ):
                self._quarantine(key, path)
                self.misses += 1
                return None
            self.hits += 1
            # Refresh recency (memory + journal) so eviction stays LRU
            # across restarts.
            self._lru.pop(key, None)
            self._lru[key] = True
            self._append_index("touch", key)
            return doc["value"]

    def put(self, key: str, value) -> None:
        """Persist *value* under *key* (idempotent, two-phase, bounded)."""
        if value is None:
            raise ValueError("MemoStore cannot store None (miss sentinel)")
        path = self.object_path(key)
        with self._lock:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            atomic_write_json(path, seal_record({"key": key, "value": value}))
            self._lru.pop(key, None)
            self._lru[key] = True
            self._append_index("put", key)
            while len(self._lru) > self.max_entries:
                self._evict_coldest()

    def _evict_coldest(self) -> None:
        coldest = next(iter(self._lru))
        del self._lru[coldest]
        try:
            os.unlink(self.object_path(coldest))
        except OSError:
            pass
        self.evictions += 1
        self._append_index("evict", coldest)

    def _quarantine(self, key: str, path: str) -> None:
        os.makedirs(self.quarantine_dir, exist_ok=True)
        self.quarantined += 1
        dest = os.path.join(
            self.quarantine_dir, f"{key}.{self.quarantined:04d}.bad"
        )
        try:
            os.replace(path, dest)
        except OSError:
            try:
                os.unlink(path)
            except OSError:
                pass
        self._lru.pop(key, None)
        self._append_index("quarantine", key)
        if self.on_quarantine is not None:
            try:
                self.on_quarantine(key)
            except Exception:  # noqa: BLE001 - observers must not fail reads
                pass

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._lru)

    def __contains__(self, key: str) -> bool:
        return key in self._lru

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def keys(self) -> list[str]:
        """Live keys, coldest first (the eviction order)."""
        return list(self._lru)

    def stats(self) -> dict:
        return {
            "entries": len(self._lru),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "quarantined": self.quarantined,
        }


class PersistentMemoCache(MemoCache):
    """A :class:`MemoCache` write-through layered over a :class:`MemoStore`.

    The in-memory tier keeps the hot working set at dict speed; every
    miss consults the shared store (decoding through *decode*), and
    every computed value is written through (encoding through
    *encode*), so a second process — or the same daemon after a
    restart — starts warm.  Keys may be arbitrary hashables: they are
    content-addressed into the store via
    :func:`~repro.sim.memo.content_digest`.

    The default codec round-trips :class:`~repro.sim.roofline.RooflinePoint`
    (the engine's memoized value type); pass *encode*/*decode* for
    other payloads.
    """

    __slots__ = ("store", "_encode", "_decode")

    def __init__(
        self,
        store: MemoStore,
        max_entries: int | None = None,
        encode=None,
        decode=None,
    ) -> None:
        super().__init__(max_entries or store.max_entries)
        self.store = store
        if encode is None or decode is None:
            from .roofline import RooflinePoint
            import dataclasses

            encode = encode or dataclasses.asdict
            decode = decode or (lambda doc: RooflinePoint(**doc))
        self._encode = encode
        self._decode = decode

    def get(self, key):
        value = super().get(key)
        if value is not None:
            return value
        stored = self.store.get(content_digest(key))
        if stored is None:
            return None
        value = self._decode(stored)
        # Promote into the hot tier without re-writing the store.
        super().put(key, value)
        return value

    def put(self, key, value) -> None:
        super().put(key, value)
        self.store.put(content_digest(key), self._encode(value))
