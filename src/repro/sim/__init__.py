"""Performance simulator: kernels, calibration, roofline, transfers, engine."""

from .calibration import (
    APP_CALIBRATIONS,
    CALIBRATIONS,
    ScalingCurve,
    SystemCalibration,
    get_app_calibration,
    get_calibration,
)
from .batch import BATCH_CODEC, BatchEngine, BatchResult, KernelBatch
from .contention import aggregate_rate, proportional_share, shared_throughput
from .engine import PerfEngine
from .memo import MemoCache, batch_digest, content_digest, kernel_signature
from .memostore import MemoStore, PersistentMemoCache
from .kernel import (
    GEMM_N,
    TRIAD_ARRAY_BYTES,
    KernelSpec,
    fft_kernel,
    fma_chain_kernel,
    gemm_kernel,
    pointer_chase_kernel,
    triad_kernel,
)
from .noise import QUIET, NoiseModel
from .power import EnergyReport, PowerModel
from .roofline import RooflinePoint, classify, kernel_time
from .transfer import TransferModel

__all__ = [
    "APP_CALIBRATIONS",
    "CALIBRATIONS",
    "ScalingCurve",
    "SystemCalibration",
    "get_app_calibration",
    "get_calibration",
    "aggregate_rate",
    "proportional_share",
    "shared_throughput",
    "PerfEngine",
    "BATCH_CODEC",
    "BatchEngine",
    "BatchResult",
    "KernelBatch",
    "MemoCache",
    "batch_digest",
    "MemoStore",
    "PersistentMemoCache",
    "content_digest",
    "kernel_signature",
    "GEMM_N",
    "TRIAD_ARRAY_BYTES",
    "KernelSpec",
    "fft_kernel",
    "fma_chain_kernel",
    "gemm_kernel",
    "pointer_chase_kernel",
    "triad_kernel",
    "QUIET",
    "NoiseModel",
    "EnergyReport",
    "PowerModel",
    "RooflinePoint",
    "classify",
    "kernel_time",
    "TransferModel",
]
