"""Shared-resource contention.

The paper's full-node PCIe result — "The PCIe bandwidth between the host
CPU and the GPU scales poorly for the full node, 40% = 264/(53x12),
suggesting some contention on the host side" (Section IV-B.4) — is the
canonical instance: twelve stack-level transfers demand ~12x the single
link rate, but the host can only source/sink a node-level aggregate.

The model is proportional-share throttling: when aggregate demand exceeds
the cap, every flow is scaled by ``cap / demand``.  This is what a fair
PCIe/IOMMU arbiter converges to for equal-sized concurrent transfers.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["shared_throughput", "proportional_share", "aggregate_rate"]


def proportional_share(
    demands: Sequence[float], cap: float | None
) -> list[float]:
    """Achieved per-flow rates under a shared aggregate *cap*.

    ``cap=None`` means the resource is not limiting.
    """
    if any(d < 0 for d in demands):
        raise ValueError("demands must be non-negative")
    total = sum(demands)
    if cap is None or total <= cap or total == 0:
        return list(demands)
    scale = cap / total
    return [d * scale for d in demands]


def aggregate_rate(demands: Sequence[float], cap: float | None) -> float:
    """Total achieved rate under the cap."""
    return sum(proportional_share(demands, cap))


def shared_throughput(
    per_flow_rate: float, n_flows: int, cap: float | None
) -> float:
    """Aggregate rate of *n_flows* identical flows under a shared cap."""
    if n_flows < 0:
        raise ValueError("n_flows must be non-negative")
    return aggregate_rate([per_flow_rate] * n_flows, cap)
