"""Kernel workload descriptors.

A :class:`KernelSpec` describes *what a kernel does* — flops by precision,
bytes moved to/from device memory, the working-set footprint, and the
workload class for the frequency model — independent of *how fast* any
device runs it.  The engine (:mod:`repro.sim.engine`) turns a spec plus a
device model into a simulated execution time.

Constructors at the bottom build the specs for each microbenchmark exactly
as Section IV describes them (FMA chain of 16x128 operations, stream triad
over 805 MB arrays, N=20480 GEMMs, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..core.units import MB, MIB
from ..dtypes import Precision
from ..errors import KernelSpecError
from ..hw.frequency import WorkloadKind

__all__ = [
    "KernelSpec",
    "fma_chain_kernel",
    "triad_kernel",
    "gemm_kernel",
    "fft_kernel",
    "pointer_chase_kernel",
    "TRIAD_ARRAY_BYTES",
    "GEMM_N",
]

#: Section IV-A.2: the triad loads "805 MB (192*1024*1024 Bytes (LLC per
#: Stack) * 4 (STREAM factor)) of double precision values per array".
TRIAD_ARRAY_BYTES = 192 * MIB * 4

#: Section IV-A.5: square GEMM with N = 20480.
GEMM_N = 20480


@dataclass(frozen=True, slots=True)
class KernelSpec:
    """A device-kernel workload description.

    Attributes
    ----------
    name:
        Human-readable kernel label.
    precision:
        Numeric precision of the arithmetic (None for pure data movement).
    flops:
        Total floating-point (or integer) operations.
    bytes_read / bytes_written:
        Device-memory traffic.  Cache-resident re-use is already folded
        out: these are the *DRAM-visible* bytes.
    working_set_bytes:
        Footprint used for cache-level/latency classification.
    kind:
        Workload class for the TDP frequency model.
    serial_chases:
        Number of *dependent* (serialized) memory accesses — nonzero only
        for pointer-chase-style kernels, which are latency-bound.
    """

    name: str
    precision: Precision | None = None
    flops: float = 0.0
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    working_set_bytes: int = 0
    kind: WorkloadKind = WorkloadKind.FMA_CHAIN
    serial_chases: int = 0

    def __post_init__(self) -> None:
        if self.flops < 0 or self.bytes_read < 0 or self.bytes_written < 0:
            raise KernelSpecError(f"{self.name}: negative work")
        if self.flops == 0 and self.total_bytes == 0 and self.serial_chases == 0:
            raise KernelSpecError(f"{self.name}: empty kernel")
        if self.working_set_bytes < 0:
            raise KernelSpecError(f"{self.name}: negative working set")
        if self.serial_chases < 0:
            raise KernelSpecError(f"{self.name}: negative chase count")

    @property
    def total_bytes(self) -> float:
        return self.bytes_read + self.bytes_written

    def signature(self) -> str:
        """Content digest of the workload (memoization key component)."""
        from .memo import kernel_signature

        return kernel_signature(self)

    @property
    def arithmetic_intensity(self) -> float:
        """Flops per DRAM byte (infinity for pure-compute kernels)."""
        if self.total_bytes == 0:
            return float("inf")
        return self.flops / self.total_bytes

    def scaled(self, factor: float) -> "KernelSpec":
        """The same kernel with all work scaled by *factor* (weak scaling)."""
        if factor <= 0:
            raise KernelSpecError("scale factor must be positive")
        return replace(
            self,
            flops=self.flops * factor,
            bytes_read=self.bytes_read * factor,
            bytes_written=self.bytes_written * factor,
            serial_chases=round(self.serial_chases * factor),
        )


def fma_chain_kernel(
    precision: Precision,
    lanes: int = 1,
    chain_length: int = 16 * 128,
    repeats: int = 1_000,
) -> KernelSpec:
    """The peak-flops microbenchmark: a chain of FMAs (Section IV-A.1).

    Each logical lane performs ``chain_length`` FMA operations
    (= 2 flops each) per repeat; lanes represent the total concurrent
    work-items launched to fill the device.
    """
    flops = 2.0 * chain_length * lanes * repeats
    return KernelSpec(
        name=f"fma-chain-{precision}",
        precision=precision,
        flops=flops,
        working_set_bytes=lanes * precision.itemsize,
        kind=WorkloadKind.FMA_CHAIN,
    )


def triad_kernel(array_bytes: int = TRIAD_ARRAY_BYTES) -> KernelSpec:
    """STREAM triad ``a[i] = b[i] + k * c[i]``: two loads and one store of
    FP64 values per element (Section IV-A.2)."""
    return KernelSpec(
        name="stream-triad",
        precision=Precision.FP64,
        flops=2.0 * (array_bytes / 8),
        bytes_read=2.0 * array_bytes,
        bytes_written=1.0 * array_bytes,
        working_set_bytes=3 * array_bytes,
        kind=WorkloadKind.STREAM,
    )


def gemm_kernel(precision: Precision, n: int = GEMM_N) -> KernelSpec:
    """Square GEMM: ``2 * N^3`` operations (Section IV-A.5)."""
    itemsize = precision.itemsize
    return KernelSpec(
        name=f"gemm-{precision}-n{n}",
        precision=precision,
        flops=2.0 * n**3,
        bytes_read=2.0 * n * n * itemsize,
        bytes_written=1.0 * n * n * itemsize,
        working_set_bytes=3 * n * n * itemsize,
        kind=WorkloadKind.GEMM,
    )


def fft_kernel(
    n: int,
    ndim: int = 1,
    real: bool = False,
    batch: int = 1,
) -> KernelSpec:
    """FFT flop accounting per Section IV-A.6.

    "the standard Cooley-Tukey FFT of 5 x N x log2 N number of flops for
    complex transform and 2.5 x N x log2 N for real", where N is the total
    point count (``n ** ndim``).
    """
    import math

    points = n**ndim
    factor = 2.5 if real else 5.0
    flops = factor * points * math.log2(points) * batch
    itemsize = 8  # single-precision complex
    return KernelSpec(
        name=f"fft-{ndim}d-n{n}",
        precision=Precision.FP32,
        flops=flops,
        bytes_read=points * itemsize * batch,
        bytes_written=points * itemsize * batch,
        working_set_bytes=points * itemsize,
        kind=WorkloadKind.STREAM,
    )


def pointer_chase_kernel(
    working_set_bytes: int, n_chases: int, stride_bytes: int = 8
) -> KernelSpec:
    """The ``lats`` benchmark: a chain of dependent loads (Section IV-A.7)."""
    return KernelSpec(
        name=f"lats-{working_set_bytes}B",
        precision=None,
        bytes_read=float(n_chases * stride_bytes),
        working_set_bytes=working_set_bytes,
        kind=WorkloadKind.STREAM,
        serial_chases=n_chases,
    )
