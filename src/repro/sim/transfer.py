"""Data-transfer performance model.

Covers the paper's three transfer benchmarks:

* **Host <-> device over PCIe** (Section IV-A.3): per-card Gen5 x16 link
  with calibrated efficiency; a PVC card's two stacks share stack 0's
  link; full-node aggregates are throttled by the host-side cap
  (:mod:`repro.sim.contention`).
* **Local stack pair** (Section IV-A.4 first case): the on-card MDFI
  stack-to-stack interconnect.
* **Remote stack pair over Xe-Link** (second case): routed through the
  plane topology; cross-plane pairs take one of the two 2-hop paths the
  paper describes, and the Xe-Link hop is the bottleneck either way.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..errors import TopologyError
from ..hw.ids import StackRef
from ..hw.interconnect import HOST, LinkKind, Route
from ..hw.node import Node
from .calibration import SystemCalibration
from .contention import aggregate_rate

__all__ = ["TransferModel"]

_DEFAULT_LINK_EFFICIENCY = 0.85

#: Per-extra-hop efficiency when a dead link forces a longer-than-healthy
#: route: each relay stack forwards at a fraction of the link rate.  Healthy
#: routes (hop count equal to the pristine topology's minimum) never pay it.
_RELAY_EFFICIENCY = 0.6


class TransferModel:
    """Achieved transfer bandwidths for one node.

    ``enable_planes=False`` is an ablation switch: remote stacks are then
    modelled as directly connected (single Xe-Link hop) regardless of the
    plane wiring.  ``enable_contention=False`` drops the host aggregate
    caps, isolating their contribution to the full-node PCIe rows.
    """

    def __init__(
        self,
        node: Node,
        cal: SystemCalibration,
        *,
        enable_planes: bool = True,
        enable_contention: bool = True,
    ) -> None:
        self.node = node
        self.cal = cal
        self.enable_planes = enable_planes
        self.enable_contention = enable_contention

    # ------------------------------------------------------------------
    # link helpers
    # ------------------------------------------------------------------

    def link_efficiency(self, kind: LinkKind) -> float:
        return self.cal.link_efficiency.get(kind, _DEFAULT_LINK_EFFICIENCY)

    def link_bidir_factor(self, kind: LinkKind) -> float:
        return self.cal.link_bidir_factor.get(kind, 2.0)

    def achieved_link_bw(self, kind: LinkKind) -> float:
        """Single-direction achieved bandwidth of one link of *kind*."""
        return kind.peak_bw_per_dir * self.link_efficiency(kind)

    # ------------------------------------------------------------------
    # Host <-> device (PCIe)
    # ------------------------------------------------------------------

    def _pcie_kind(self, ref: StackRef) -> LinkKind:
        route = self.node.fabric.host_route(self.node.socket_of(ref), ref)
        for _, _, link in route.hops:
            if link.kind in (LinkKind.PCIE_GEN5_X16, LinkKind.PCIE_GEN4_X16):
                return link.kind
        raise TopologyError(f"no PCIe hop on host route to {ref}")

    def host_device_bw(self, ref: StackRef, direction: str = "h2d") -> float:
        """Achieved host<->device bandwidth of a single transfer.

        ``direction`` is ``"h2d"``, ``"d2h"`` or ``"bidir"`` (total of the
        simultaneous two-way transfer — the paper's 1 GB case).
        """
        kind = self._pcie_kind(ref)
        if direction == "bidir":
            base = kind.peak_bw_per_dir * self.cal.pcie_efficiency["h2d"]
            return base * self.cal.pcie_bidir_factor
        try:
            eff = self.cal.pcie_efficiency[direction]
        except KeyError:
            raise ValueError(f"bad direction {direction!r}") from None
        return kind.peak_bw_per_dir * eff

    def node_host_bw(
        self, direction: str, refs: Sequence[StackRef] | None = None
    ) -> float:
        """Aggregate host<->device bandwidth with *refs* all active.

        Stacks sharing a card share that card's single PCIe link (only
        stack 0 carries it, Section II); the per-card flows are then
        throttled by the node-level host cap.
        """
        if refs is None:
            refs = self.node.stacks()
        cards = sorted({r.card for r in refs})
        demands = [
            self.host_device_bw(StackRef(card, 0), direction)
            for card in cards
        ]
        cap = (
            self.cal.host_agg_caps.get(direction)
            if self.enable_contention
            else None
        )
        return aggregate_rate(demands, cap)

    def host_transfer_time(
        self, ref: StackRef, nbytes: float, direction: str = "h2d"
    ) -> float:
        route = self.node.fabric.host_route(self.node.socket_of(ref), ref)
        return nbytes / self.host_device_bw(ref, direction) + route.latency_s

    # ------------------------------------------------------------------
    # Device <-> device
    # ------------------------------------------------------------------

    def p2p_route(self, src: StackRef, dst: StackRef) -> Route:
        return self.node.fabric.route(src, dst)

    def p2p_routes(self, src: StackRef, dst: StackRef) -> list[Route]:
        return self.node.fabric.routes(src, dst)

    def pair_class(self, src: StackRef, dst: StackRef) -> str:
        """"local" for same-card stack pairs, "remote" otherwise."""
        return "local" if src.card == dst.card else "remote"

    def _bottleneck(self, route: Route) -> tuple[LinkKind, float]:
        fabric = self.node.fabric
        best_kind, best_bw = None, float("inf")
        for u, v, link in route.hops:
            bw = self.achieved_link_bw(link.kind) * fabric.link_health(u, v)
            if bw < best_bw:
                best_kind, best_bw = link.kind, bw
        assert best_kind is not None
        return best_kind, best_bw

    def p2p_bw(
        self, src: StackRef, dst: StackRef, *, bidirectional: bool = False
    ) -> float:
        """Achieved bandwidth of a single pairwise transfer.

        Unidirectional: the bottleneck hop's achieved rate.  Bidirectional:
        the total two-way rate, ``uni * bidir_factor`` of the bottleneck
        link kind (the paper's local pair reaches only 284/2x197 = 72% of
        doubling; Xe-Link 23/2x15).
        """
        if not self.enable_planes and self.pair_class(src, dst) == "remote":
            # Ablation: pretend a direct Xe-Link (or fabric) hop exists.
            kind = self._remote_kind()
            uni = self.achieved_link_bw(kind)
        else:
            fabric = self.node.fabric
            route = self.p2p_route(src, dst)
            kind, uni = self._bottleneck(route)
            if fabric.has_degradation:
                extra = route.n_hops - fabric.healthy_hops(src, dst)
                if extra > 0:
                    uni *= _RELAY_EFFICIENCY ** extra
        if bidirectional:
            return uni * self.link_bidir_factor(kind)
        return uni

    def _remote_kind(self) -> LinkKind:
        arch = self.node.device.arch
        return {
            "pvc": LinkKind.XELINK,
            "h100": LinkKind.NVLINK4,
            "a100": LinkKind.NVLINK4,
            "mi250": LinkKind.XGMI,
        }[arch]

    def concurrent_p2p_bw(
        self,
        pairs: Iterable[tuple[StackRef, StackRef]],
        *,
        bidirectional: bool = False,
    ) -> float:
        """Aggregate bandwidth with many pairs communicating at once.

        Applies the measured parallel efficiency per pair class (Table III:
        six local pairs on Aurora reach 95% of 6x the single-pair rate).
        """
        pairs = list(pairs)
        if not pairs:
            return 0.0
        total = 0.0
        by_class: dict[str, float] = {}
        for src, dst in pairs:
            cls = self.pair_class(src, dst)
            by_class[cls] = by_class.get(cls, 0.0) + self.p2p_bw(
                src, dst, bidirectional=bidirectional
            )
        for cls, demand in by_class.items():
            total += demand * self.cal.p2p_parallel_efficiency.get(cls, 1.0)
        return total

    def p2p_transfer_time(
        self, src: StackRef, dst: StackRef, nbytes: float
    ) -> float:
        route = self.p2p_route(src, dst)
        return nbytes / self.p2p_bw(src, dst) + route.latency_s
