"""The performance engine: hardware model + calibration -> simulated time.

:class:`PerfEngine` is the single place where architectural derivations
(:mod:`repro.hw`), calibrated efficiencies (:mod:`repro.sim.calibration`),
the roofline (:mod:`repro.sim.roofline`), the transfer model and the noise
model meet.  Microbenchmarks, the runtime layers, mini-apps and the
analysis code all consume this one API.

Ablation switches (each maps to a discussion point in the paper):

* ``enable_tdp=False`` — clocks never downclock; kills the FP32:FP64=1.3x
  observation of Section IV-B.2.
* ``enable_contention=False`` — no host-side aggregate cap; kills the
  "PCIe scales poorly for the full node" result of Section IV-B.4.
* ``enable_planes=False`` — remote stacks become directly connected;
  removes the extra-hop routing of Section IV-A.4.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..dtypes import ENGINE_MATRIX, Precision
from ..errors import DeviceLostError
from ..hw.frequency import WorkloadKind
from ..hw.ids import StackRef
from ..hw.systems import System
from .calibration import SystemCalibration, get_calibration
from .kernel import KernelSpec
from .memo import MemoCache, content_digest
from .noise import NoiseModel, QUIET
from .roofline import RooflinePoint, kernel_time
from .transfer import TransferModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults.injectors import FaultInjector
    from ..telemetry.session import Telemetry

__all__ = ["PerfEngine"]

#: Numeric encoding of the roofline regime for the gauge exporter.
_REGIME_CODE = {"latency": 0.0, "memory": 1.0, "compute": 2.0}


class PerfEngine:
    """Simulated performance of one system."""

    def __init__(
        self,
        system: System,
        *,
        noise: NoiseModel | None = None,
        enable_tdp: bool = True,
        enable_contention: bool = True,
        enable_planes: bool = True,
        faults: "FaultInjector | None" = None,
        telemetry: "Telemetry | None" = None,
        memo: MemoCache | None = None,
    ) -> None:
        self.system = system
        self.node = system.node
        self.device = system.device
        self.cal: SystemCalibration = get_calibration(system.calibration_key)
        self.memo = memo if memo is not None else MemoCache()
        self._identity: str | None = None
        self.noise = noise if noise is not None else NoiseModel(
            amplitude=self.cal.noise_amplitude
        )
        self.enable_tdp = enable_tdp
        self.faults = faults
        self.telemetry = telemetry
        self.transfers = TransferModel(
            self.node,
            self.cal,
            enable_planes=enable_planes,
            enable_contention=enable_contention,
        )
        if telemetry is not None:
            self.node.fabric.set_observer(self._on_route)

    def _on_route(self, src: object, dst: object, route) -> None:
        """Fabric routing observer: one counter sample per decision."""
        if self.telemetry is None:  # pragma: no cover - observer cleared
            return
        degraded = any(
            self.node.fabric.link_health(u, v) < 1.0
            for u, v, _ in route.hops
        )
        self.telemetry.metrics.inc(
            "route.count",
            hops=route.n_hops,
            degraded=str(degraded).lower(),
        )

    # ------------------------------------------------------------------
    # clocks and peaks
    # ------------------------------------------------------------------

    def sustained_hz(
        self, precision: Precision | None, kind: WorkloadKind
    ) -> float:
        ratio = 1.0 if self.faults is None else self.faults.clock_ratio()
        if not self.enable_tdp:
            return self.device.frequency.max_hz * ratio
        return self.device.frequency.sustained_hz(precision, kind) * ratio

    def sustained_peak(
        self, precision: Precision, kind: WorkloadKind = WorkloadKind.FMA_CHAIN
    ) -> float:
        """Theoretical peak at the sustained (TDP-aware) clock, one stack."""
        try:
            per_clock = self.device.flops_per_clock[precision]
        except KeyError:
            raise ValueError(
                f"{self.device.name} has no {precision} pipeline"
            ) from None
        return per_clock * self.sustained_hz(precision, kind)

    # ------------------------------------------------------------------
    # achieved rates (fold in calibration + multi-stack scaling)
    # ------------------------------------------------------------------

    def _scaled(self, family: str, single: float, n_stacks: int) -> float:
        self._check_stacks(n_stacks)
        n_stacks = self._effective_stacks(n_stacks)
        return self.cal.scaling_curve(family).aggregate(single, n_stacks)

    def _check_stacks(self, n: int) -> None:
        if not (1 <= n <= self.node.n_stacks):
            raise ValueError(
                f"{self.system.name} has 1..{self.node.n_stacks} stacks, got {n}"
            )

    def _effective_stacks(self, n: int) -> int:
        """Clip a requested scope to the devices still alive."""
        if self.faults is None:
            return n
        alive = len(self.faults.alive(self.node.stacks()))
        if alive == 0:
            raise DeviceLostError(f"{self.system.name}: all devices lost")
        if n > alive:
            self.faults.note(
                f"scope clipped from {n} to {alive} stack(s) after device loss"
            )
            return alive
        return n

    def alive_stacks(self) -> list[StackRef]:
        """Stacks not lost to injected faults (all stacks when clean)."""
        refs = list(self.node.stacks())
        return refs if self.faults is None else self.faults.alive(refs)

    def select_stacks(self, n: int) -> list[StackRef]:
        """The first *n* alive stacks (or all alive, if fewer survive)."""
        alive = self.alive_stacks()
        if not alive:
            raise DeviceLostError(f"{self.system.name}: all devices lost")
        if len(alive) < n and self.faults is not None:
            self.faults.note(
                f"requested {n} stack(s) but only {len(alive)} alive"
            )
        return alive[:n]

    def fma_rate(self, precision: Precision, n_stacks: int = 1) -> float:
        """Achieved FMA-chain flop rate (the paper's Peak Flops rows)."""
        eff = self.cal.fma_efficiency.get(precision, 1.0)
        single = self.sustained_peak(precision, WorkloadKind.FMA_CHAIN) * eff
        return self._scaled(f"flops-{precision.label}", single, n_stacks)

    def stream_bw(self, n_stacks: int = 1) -> float:
        """Achieved triad bandwidth (Device Memory Bandwidth rows)."""
        single = self.device.hbm_peak_bw * self.cal.stream_efficiency
        if self.faults is not None:
            # HBM runs off the same clock domain: a DVFS excursion drops
            # streaming rate along with the compute clocks.
            single *= self.faults.clock_ratio()
        return self._scaled("stream", single, n_stacks)

    def gemm_rate(self, precision: Precision, n_stacks: int = 1) -> float:
        """Achieved GEMM rate for a precision (Table II GEMM rows)."""
        eff = self.cal.require_gemm(precision)
        mult = self.cal.gemm_peak_multiplier.get(precision, 1.0)
        single = (
            self.sustained_peak(precision, WorkloadKind.GEMM) * mult * eff
        )
        return self._scaled("gemm", single, n_stacks)

    def fft_rate(self, ndim: int, n_stacks: int = 1) -> float:
        """Achieved single-precision C2C FFT flop rate (Table II FFT rows)."""
        try:
            frac = self.cal.fft_fraction[ndim]
        except KeyError:
            raise ValueError(f"no FFT calibration for {ndim}D") from None
        single = (
            self.sustained_peak(Precision.FP32, WorkloadKind.STREAM) * frac
        )
        return self._scaled(f"fft{ndim}d", single, n_stacks)

    # ------------------------------------------------------------------
    # latency
    # ------------------------------------------------------------------

    def latency_cycles(self, working_set_bytes: int) -> float:
        """Pointer-chase latency in cycles (the Fig. 1 y-axis)."""
        return self.device.memory.latency_cycles(working_set_bytes)

    def latency_seconds(self, working_set_bytes: int) -> float:
        clock = self.sustained_hz(None, WorkloadKind.STREAM)
        return self.latency_cycles(working_set_bytes) / clock

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------

    def _compute_rate_for(self, spec: KernelSpec, n_stacks: int) -> float:
        precision = spec.precision or Precision.FP32
        if spec.kind is WorkloadKind.GEMM or precision.engine == ENGINE_MATRIX:
            return self.gemm_rate(precision, n_stacks)
        return self.fma_rate(precision, n_stacks)

    def identity_digest(self) -> str:
        """Content digest of everything the roofline depends on: the
        system, the calibration table, and the ablation switches.
        Computed once per engine; the memoization key component that
        lets equal-content engines share cache entries safely."""
        if self._identity is None:
            self._identity = content_digest(
                {
                    "system": self.system.name,
                    "calibration": self.cal.digest(),
                    "enable_tdp": self.enable_tdp,
                }
            )
        return self._identity

    def _roofline_eval(self, spec: KernelSpec, n_stacks: int) -> RooflinePoint:
        rate = self._compute_rate_for(spec, n_stacks)
        bw = self.stream_bw(n_stacks)
        chase = (
            self.latency_seconds(spec.working_set_bytes)
            if spec.serial_chases
            else 0.0
        )
        return kernel_time(spec, rate, bw, chase)

    def roofline(self, spec: KernelSpec, n_stacks: int = 1) -> RooflinePoint:
        """Roofline decomposition of *spec* on *n_stacks* stacks.

        Clean (fault-free) evaluations are memoized by content —
        ``(engine identity, kernel signature, n_stacks)`` — because the
        decomposition is a pure function of those three.  A
        fault-injected engine bypasses the cache: injector state (clock
        excursions, lost stacks, notes emitted while clipping scope)
        legitimately changes the answer between calls.
        """
        if self.faults is not None:
            if self.telemetry is not None:
                self.telemetry.metrics.inc("simcache.bypass")
            return self._roofline_eval(spec, n_stacks)
        key = (self.identity_digest(), spec.signature(), n_stacks)
        point = self.memo.get(key)
        hit = point is not None
        if not hit:
            point = self._roofline_eval(spec, n_stacks)
            self.memo.put(key, point)
        if self.telemetry is not None:
            self.telemetry.metrics.inc(
                "simcache.hit" if hit else "simcache.miss"
            )
        return point

    def kernel_time_s(
        self,
        spec: KernelSpec,
        n_stacks: int = 1,
        *,
        rep: int | None = None,
    ) -> float:
        """Simulated execution time; pass *rep* to include run-to-run noise."""
        if self.faults is not None:
            self.faults.on_kernel(spec.name)
        point = self.roofline(spec, n_stacks)
        t = point.total_s
        if rep is not None:
            t = self.noise.apply(t, f"{self.system.name}:{spec.name}", rep)
        if self.telemetry is not None:
            m = self.telemetry.metrics
            m.inc("kernel.count", bound=point.bound, kernel=spec.name)
            if spec.flops:
                m.inc("kernel.flops", spec.flops)
            if spec.total_bytes:
                m.inc("kernel.bytes", spec.total_bytes)
            m.observe("kernel.time_us", t * 1e6, kernel=spec.name)
            m.set_gauge(
                "roofline.regime", _REGIME_CODE[point.bound], kernel=spec.name
            )
            # Fraction of the roofline window the compute pipes are busy;
            # 1.0 means fully compute-bound, ~0 means stalled on memory.
            m.set_gauge(
                "kernel.occupancy",
                point.compute_s / point.total_s if point.total_s else 0.0,
                kernel=spec.name,
            )
            profiler = getattr(self.telemetry, "profiler", None)
            if profiler is not None:
                from ..profiler.core import KernelSample

                profiler.kernel(
                    KernelSample(
                        name=spec.name,
                        system=self.system.name,
                        n_stacks=n_stacks,
                        achieved_s=t,
                        compute_s=point.compute_s,
                        memory_s=point.memory_s,
                        latency_s=point.latency_s,
                        flops=float(spec.flops),
                        nbytes=float(spec.total_bytes),
                        compute_rate=point.compute_rate,
                        mem_bw=point.mem_bw,
                    )
                )
        return t

    # ------------------------------------------------------------------
    # batch evaluation (vectorized design-space sweeps)
    # ------------------------------------------------------------------

    def batch(self) -> "BatchEngine":
        """A vectorized evaluator bound to this engine.

        The batch path (:mod:`repro.sim.batch`) resolves achieved-rate
        ceilings through this engine's own ``fma_rate``/``gemm_rate``/
        ``stream_bw`` methods and runs the roofline arithmetic as NumPy
        array ops, so its results are bit-for-bit identical to calling
        :meth:`roofline` per point — the scalar path stays the golden
        reference.  Requires a fault-free engine.
        """
        from .batch import BatchEngine

        return BatchEngine(self)

    # ------------------------------------------------------------------
    # transfers (delegate to the transfer model, adding noise hooks)
    # ------------------------------------------------------------------

    def host_transfer_time(
        self,
        ref: StackRef,
        nbytes: float,
        direction: str = "h2d",
        *,
        rep: int | None = None,
    ) -> float:
        if self.faults is not None:
            self.faults.check_stack(ref)
        t = self.transfers.host_transfer_time(ref, nbytes, direction)
        if rep is not None:
            t = self.noise.apply(
                t, f"{self.system.name}:pcie:{direction}:{ref}", rep
            )
        if self.telemetry is not None:
            m = self.telemetry.metrics
            m.inc(
                "transfer.bytes", float(nbytes),
                path="pcie", direction=direction,
            )
            m.observe("transfer.time_us", t * 1e6, path="pcie")
        return t

    def p2p_transfer_time(
        self,
        src: StackRef,
        dst: StackRef,
        nbytes: float,
        *,
        rep: int | None = None,
    ) -> float:
        if self.faults is not None:
            self.faults.check_stack(src, dst)
            if (
                self.node.fabric.has_degradation
                and self.node.fabric.is_route_degraded(src, dst)
            ):
                self.faults.note(
                    f"p2p {src} -> {dst} rerouted over degraded fabric"
                )
        t = self.transfers.p2p_transfer_time(src, dst, nbytes)
        if rep is not None:
            t = self.noise.apply(
                t, f"{self.system.name}:p2p:{src}:{dst}", rep
            )
        if self.telemetry is not None:
            route = self.node.fabric.route(src, dst)
            # Label by the bottleneck link (the one the bandwidth model
            # charges): mdfi for on-card pairs, xelink across planes, ...
            slowest = min(
                route.hops, key=lambda hop: hop[2].peak_bw_per_dir
            )[2].kind
            m = self.telemetry.metrics
            m.inc(
                "transfer.bytes", float(nbytes),
                path=slowest.name.lower(), hops=route.n_hops,
            )
            m.observe(
                "transfer.time_us", t * 1e6, path=slowest.name.lower()
            )
        return t

    # ------------------------------------------------------------------
    # convenience for the analysis layer
    # ------------------------------------------------------------------

    def quiet(self) -> "PerfEngine":
        """A copy of this engine with the noise model disabled.

        Shares the memo cache: noise applies after the roofline, so the
        quiet copy's evaluations are content-identical.
        """
        return PerfEngine(
            self.system,
            noise=QUIET,
            enable_tdp=self.enable_tdp,
            enable_contention=self.transfers.enable_contention,
            enable_planes=self.transfers.enable_planes,
            faults=self.faults,
            telemetry=self.telemetry,
            memo=self.memo,
        )

    def all_stacks(self) -> Sequence[StackRef]:
        return self.node.stacks()
