"""Power and energy-to-solution model.

TDP is the paper's recurring explanatory variable: the FP64 downclock
(Section IV-B.2), the per-card power caps that differ between Dawn
(600 W) and Aurora (500 W, Section III), and the speculation that DGEMM's
efficiency drop is thermal.  This module makes those effects quantifiable:

* a compute-saturating kernel pins the card at its power cap — that is
  *why* the clock drops for FP64 FMA chains rather than the chip slowing
  down gratuitously;
* bandwidth-bound kernels draw a calibrated fraction of the cap;
* energy-to-solution = power x simulated time, giving perf/W comparisons
  between the systems (Aurora's lower cap and fewer active Xe-Cores make
  it the more efficient FP64 part per watt).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.frequency import WorkloadKind
from .engine import PerfEngine
from .kernel import KernelSpec

__all__ = ["PowerModel", "EnergyReport"]

#: Fraction of the card cap drawn per workload class.
_DRAW_FRACTION = {
    WorkloadKind.FMA_CHAIN: 1.00,  # compute-saturating: pinned at cap
    WorkloadKind.GEMM: 1.00,
    WorkloadKind.STREAM: 0.62,  # HBM streaming without full ALU load
    WorkloadKind.IDLE: 0.18,
}

#: Host power charged per active rank's core (W) — small but nonzero.
_HOST_W_PER_CORE = 6.0


@dataclass(frozen=True, slots=True)
class EnergyReport:
    """Energy accounting for one kernel execution."""

    time_s: float
    gpu_power_w: float
    host_power_w: float
    work: float
    work_unit: str

    @property
    def total_power_w(self) -> float:
        return self.gpu_power_w + self.host_power_w

    @property
    def energy_j(self) -> float:
        return self.total_power_w * self.time_s

    @property
    def work_per_joule(self) -> float:
        return self.work / self.energy_j if self.energy_j else 0.0


class PowerModel:
    """Power draw and energy-to-solution on one system."""

    def __init__(self, engine: PerfEngine) -> None:
        self.engine = engine

    @property
    def card_cap_w(self) -> float:
        cap = self.engine.device.frequency.power_cap_w
        if cap is None:
            raise ValueError(
                f"{self.engine.device.name} has no power cap configured"
            )
        return cap

    def stack_power_w(self, kind: WorkloadKind) -> float:
        """Per-stack draw for a workload class.

        The cap is per *card*; a PVC stack owns half of it.
        """
        per_device = self.card_cap_w / self.engine.node.card.n_devices
        return per_device * _DRAW_FRACTION[kind]

    def kernel_power_w(self, spec: KernelSpec, n_stacks: int = 1) -> float:
        """Aggregate GPU power while *spec* runs on *n_stacks* stacks."""
        return self.stack_power_w(spec.kind) * n_stacks

    def energy_to_solution(
        self, spec: KernelSpec, n_stacks: int = 1
    ) -> EnergyReport:
        """Run *spec* through the engine and account its energy."""
        time_s = self.engine.kernel_time_s(spec, n_stacks)
        gpu_w = self.kernel_power_w(spec, n_stacks)
        host_w = _HOST_W_PER_CORE * n_stacks  # one bound core per rank
        unit = "Iop" if (spec.precision and spec.precision.is_integer) else "Flop"
        work = spec.flops if spec.flops else spec.total_bytes
        if not spec.flops:
            unit = "B"
        return EnergyReport(
            time_s=time_s,
            gpu_power_w=gpu_w,
            host_power_w=host_w,
            work=work,
            work_unit=unit,
        )

    def flops_per_watt(self, precision, n_stacks: int = 1) -> float:
        """Sustained flop/s per GPU watt for an FMA-chain workload."""
        rate = self.engine.fma_rate(precision, n_stacks)
        power = self.stack_power_w(WorkloadKind.FMA_CHAIN) * n_stacks
        return rate / power

    def node_power_budget_w(self) -> float:
        """Full-node GPU power at the caps (the node-design quantity the
        paper's TDP discussion turns on: 6 x 500 W on Aurora vs
        4 x 600 W on Dawn)."""
        return self.card_cap_w * self.engine.node.n_cards
