"""Deterministic run-to-run variation.

Real benchmark repetitions differ by a few percent (clock jitter, page
faults, link training); the paper's protocol neutralises this by taking
the best of several repetitions.  To exercise that protocol end-to-end the
engine injects a *deterministic* pseudo-random slowdown per repetition,
derived from a SHA-256 hash of (seed, key, repetition) — stable across
processes and Python hash randomisation.

Repetition 0 additionally carries a first-touch penalty, modelling warm-up
effects the paper's scripts discard.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass

__all__ = ["NoiseModel", "QUIET"]


@dataclass(frozen=True, slots=True)
class NoiseModel:
    """Multiplicative slowdown factors in ``[1, 1 + amplitude]``.

    A factor of 1.0 is the best (fastest) repetition; the best-of-N
    protocol converges to the noise-free value as N grows.
    """

    amplitude: float = 0.012
    warmup_penalty: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.amplitude < 0 or self.warmup_penalty < 0:
            raise ValueError("noise parameters must be non-negative")

    def _unit(self, key: str, rep: int) -> float:
        """A stable uniform sample in [0, 1) for (seed, key, rep)."""
        digest = hashlib.sha256(
            f"{self.seed}|{key}|{rep}".encode()
        ).digest()
        (word,) = struct.unpack_from("<Q", digest)
        return word / 2**64

    def slowdown(self, key: str, rep: int) -> float:
        """Multiplicative time factor (>= 1) for repetition *rep*.

        One repetition in each window of ~3 lands exactly at 1.0 so the
        best-of-N protocol can actually observe the clean value.
        """
        u = self._unit(key, rep)
        base = 1.0 + self.amplitude * u if u > 1.0 / 3.0 else 1.0
        if rep == 0:
            base += self.warmup_penalty
        return base

    def apply(self, time_s: float, key: str, rep: int) -> float:
        return time_s * self.slowdown(key, rep)


#: A noiseless model (used by analytical queries and expected-bar math).
QUIET = NoiseModel(amplitude=0.0, warmup_penalty=0.0)
