"""Calibrated efficiency constants, one table per system.

POLICY (DESIGN.md Section 4): everything that can be derived from first
principles — theoretical peaks, plane topology, cache sizes, latency
ratios — is *derived* in :mod:`repro.hw` and never appears here.  This
module holds only the *achieved-fraction-of-derived-peak* constants that,
on real hardware, come out of the measurement itself.  Every value is
annotated with the paper table/section that motivates it, so the
provenance of each number is auditable.

Two kinds of entries:

* **Micro efficiencies** (:class:`SystemCalibration`): fraction of the
  derived peak each microbenchmark achieves, e.g. Aurora DGEMM = 0.756 of
  the 17.2 TFlop/s sustained FP64 peak because Table II reports
  13 TFlop/s (the paper itself highlights "DGEMM reaches nearly 80% of
  the measured peak", Section IV-B.5).
* **Scaling curves** (:class:`ScalingCurve`): multi-stack parallel
  efficiency, e.g. Aurora flops scale at 97% for two stacks and ~95% for
  the full node (Section IV-B.1).

Application-level constants (mini-app achieved fractions, congestion
fits) live in :data:`APP_CALIBRATIONS`, keyed by ``(app, system)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

from ..core.units import GIGA
from ..dtypes import Precision
from ..errors import CalibrationError
from ..hw.interconnect import LinkKind

__all__ = [
    "ScalingCurve",
    "SystemCalibration",
    "get_calibration",
    "CALIBRATIONS",
    "APP_CALIBRATIONS",
    "MiniBudeCalibration",
    "CloverLeafCalibration",
    "MiniQmcCalibration",
    "Rimp2Calibration",
    "OpenMcCalibration",
    "HaccCalibration",
    "get_app_calibration",
]


@dataclass(frozen=True, slots=True)
class ScalingCurve:
    """Piecewise-linear parallel-efficiency curve over stack counts.

    ``points`` maps a stack count to the aggregate efficiency at that
    count; intermediate counts interpolate linearly, counts beyond the
    largest point clamp to its efficiency.
    """

    points: tuple[tuple[int, float], ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise CalibrationError("scaling curve needs at least one point")
        ns = [n for n, _ in self.points]
        if ns != sorted(ns) or len(set(ns)) != len(ns):
            raise CalibrationError(f"curve points must be strictly sorted: {ns}")
        for n, eff in self.points:
            if n < 1 or not (0.0 < eff <= 1.001):
                raise CalibrationError(f"bad curve point ({n}, {eff})")

    @classmethod
    def of(cls, mapping: Mapping[int, float]) -> "ScalingCurve":
        return cls(tuple(sorted(mapping.items())))

    def efficiency(self, n: int) -> float:
        """Aggregate efficiency when n stacks run concurrently."""
        if n < 1:
            raise CalibrationError(f"stack count must be >= 1: {n}")
        pts = self.points
        if n <= pts[0][0]:
            return pts[0][1]
        for (n0, e0), (n1, e1) in zip(pts, pts[1:]):
            if n <= n1:
                frac = (n - n0) / (n1 - n0)
                return e0 + frac * (e1 - e0)
        return pts[-1][1]

    def aggregate(self, single_rate: float, n: int) -> float:
        """Aggregate rate of *n* stacks given a single-stack rate."""
        return single_rate * n * self.efficiency(n)


PERFECT = ScalingCurve.of({1: 1.0})


@dataclass(frozen=True)
class SystemCalibration:
    """Microbenchmark efficiency constants for one system."""

    name: str
    #: Fraction of the *sustained* theoretical peak the FMA-chain achieves.
    fma_efficiency: Mapping[Precision, float]
    #: Triad bandwidth as a fraction of the HBM spec peak.
    stream_efficiency: float
    #: GEMM throughput as a fraction of the sustained peak per precision.
    gemm_efficiency: Mapping[Precision, float]
    #: Multiplier on the device's flops_per_clock used as the GEMM peak
    #: reference (MI250 GEMMs run on the matrix cores at 2x the vector
    #: peak, Section IV-B.5).
    gemm_peak_multiplier: Mapping[Precision, float]
    #: Achieved single-precision FFT rate as a fraction of sustained FP32
    #: peak, keyed by transform dimensionality.
    fft_fraction: Mapping[int, float]
    #: PCIe link efficiency per transfer direction.
    pcie_efficiency: Mapping[str, float]
    #: Measured bidirectional speedup over unidirectional (ideal = 2.0;
    #: the paper observes only ~1.4x, Section IV-B.4).
    pcie_bidir_factor: float
    #: Node-level aggregate host transfer caps in B/s (None = unbounded);
    #: the origin of the "scales poorly for the full node, 40%" result.
    host_agg_caps: Mapping[str, float | None]
    #: Per-link-kind achieved fraction of the raw link bandwidth.
    link_efficiency: Mapping[LinkKind, float]
    #: Per-link-kind bidirectional speedup factor (ideal = 2.0).
    link_bidir_factor: Mapping[LinkKind, float]
    #: Parallel efficiency when all stack-pairs communicate at once.
    p2p_parallel_efficiency: Mapping[str, float]
    #: Multi-stack scaling curves keyed by benchmark family.
    scaling: Mapping[str, ScalingCurve]
    #: Run-to-run variation amplitude for the noise model.
    noise_amplitude: float = 0.012

    def scaling_curve(self, family: str) -> ScalingCurve:
        if family in self.scaling:
            return self.scaling[family]
        return self.scaling.get("default", PERFECT)

    def digest(self) -> str:
        """Content digest of the full calibration table.

        Part of the memoization key for model evaluations
        (:mod:`repro.sim.memo`): editing any calibration constant
        changes the digest and invalidates every cached point.
        """
        from .memo import content_digest

        return content_digest(self)

    def require_gemm(self, precision: Precision) -> float:
        try:
            return self.gemm_efficiency[precision]
        except KeyError:
            raise CalibrationError(
                f"{self.name}: no GEMM calibration for {precision}"
            ) from None


def _mp(d: dict) -> Mapping:
    return MappingProxyType(dict(d))


# ---------------------------------------------------------------------------
# Aurora  (Table II "Aurora (PVC)" column block; Sections IV-B.1..7)
# ---------------------------------------------------------------------------
_AURORA = SystemCalibration(
    name="aurora",
    # Table II: 17 / 23 TFlop/s vs derived sustained peaks 17.2 / 22.9.
    fma_efficiency=_mp({Precision.FP64: 0.99, Precision.FP32: 1.00}),
    # Table II triad 1 TB/s vs 1.638 TB/s per-stack HBM spec (Section
    # IV-B.3 notes the stream number is low vs the HBM2e spec).
    stream_efficiency=0.61,
    # Table II GEMM rows vs sustained peaks (Section IV-B.5: "SGEMM
    # reaches nearly 95% of the peak, and DGEMM reaches nearly 80%").
    gemm_efficiency=_mp(
        {
            Precision.FP64: 0.756,  # 13 / 17.2
            Precision.FP32: 0.916,  # 21 / 22.9
            Precision.FP16: 0.564,  # 207 / 367 (matrix peak @1.6 GHz)
            Precision.BF16: 0.589,  # 216 / 367
            Precision.TF32: 0.583,  # 107 / 183.5
            Precision.I8: 0.610,  # 448 / 734
        }
    ),
    gemm_peak_multiplier=_mp({}),
    # Table II FFT rows vs 22.9 TFlop/s FP32 sustained peak.
    fft_fraction=_mp({1: 0.135, 2: 0.148}),
    # Table II: H2D 54, D2H 53 GB/s vs PCIe Gen5 x16 = 64 GB/s.
    pcie_efficiency=_mp({"h2d": 0.844, "d2h": 0.828}),
    # Table II: 76 GB/s bidir vs 54 uni -> 1.4x (Section IV-B.4).
    pcie_bidir_factor=1.41,
    # Table II full-node rows: H2D 329, D2H 264, bidir 350 GB/s; D2H and
    # bidir are host-side-contention-limited ("40% = 264/(53x12)").
    host_agg_caps=_mp(
        {"h2d": 330 * GIGA, "d2h": 264 * GIGA, "bidir": 350 * GIGA}
    ),
    # Table III: local stack pair 197 GB/s vs 230 GB/s MDFI raw; remote
    # (Xe-Link) 15 GB/s vs 26.6 GB/s raw ("55% efficiency in each
    # direction", Section IV-B.7).
    link_efficiency=_mp(
        {
            LinkKind.MDFI: 0.857,
            LinkKind.XELINK: 0.564,
            LinkKind.PCIE_GEN5_X16: 0.844,
        }
    ),
    # Table III: bidir 284 vs uni 197 -> 1.44x; remote 23 vs 15 -> 1.53x.
    link_bidir_factor=_mp({LinkKind.MDFI: 1.44, LinkKind.XELINK: 1.53}),
    # Table III: six local pairs 1129 vs 6x197 -> 95.5% ("The parallel
    # efficiency is scaling linearly as expected ... 95%").
    p2p_parallel_efficiency=_mp({"local": 0.955, "remote": 1.0}),
    scaling=_mp(
        {
            # Section IV-B.1: 97% for two stacks, 95% full node.
            "flops-fp64": ScalingCurve.of({1: 1.0, 2: 0.97, 12: 0.955}),
            "flops-fp32": ScalingCurve.of({1: 1.0, 2: 0.98, 12: 0.97}),
            # Table II GEMM rows: ~0.93-0.97 full-node scaling.
            "gemm": ScalingCurve.of({1: 1.0, 2: 0.99, 12: 0.94}),
            "fft1d": ScalingCurve.of({1: 1.0, 2: 0.95, 12: 0.887}),
            "fft2d": ScalingCurve.of({1: 1.0, 2: 0.88, 12: 0.833}),
            # Section IV-B.1: "perfect scaling of main memory bandwidth".
            "stream": PERFECT,
        }
    ),
)

# ---------------------------------------------------------------------------
# Dawn  (Table II "Dawn (PVC)" column block)
# ---------------------------------------------------------------------------
_DAWN = SystemCalibration(
    name="dawn",
    # Table II: 20 / 26 TFlop/s vs derived 19.7 / 26.2.
    fma_efficiency=_mp({Precision.FP64: 1.00, Precision.FP32: 0.99}),
    stream_efficiency=0.61,
    gemm_efficiency=_mp(
        {
            Precision.FP64: 0.865,  # 17 / 19.7
            Precision.FP32: 0.963,  # 25 / 26.0
            Precision.FP16: 0.587,  # 246 / 419.4
            Precision.BF16: 0.606,  # 254 / 419.4
            Precision.TF32: 0.563,  # 118 / 209.7
            Precision.I8: 0.626,  # 525 / 838.9
        }
    ),
    gemm_peak_multiplier=_mp({}),
    fft_fraction=_mp({1: 0.139, 2: 0.139}),
    # Table II: H2D 53, D2H 51 GB/s.
    pcie_efficiency=_mp({"h2d": 0.828, "d2h": 0.797}),
    # Table II: 72 vs 53 -> 1.36x.
    pcie_bidir_factor=1.36,
    # Dawn's 4 cards never saturate the host side (Table II full-node
    # PCIe rows are ~4x the single-card rates).
    host_agg_caps=_mp({"h2d": None, "d2h": None, "bidir": None}),
    link_efficiency=_mp(
        {
            LinkKind.MDFI: 0.852,  # Table III: 196 GB/s local pair
            LinkKind.XELINK: 0.564,  # not measured on Dawn; same silicon
            LinkKind.PCIE_GEN5_X16: 0.828,
        }
    ),
    link_bidir_factor=_mp({LinkKind.MDFI: 1.46, LinkKind.XELINK: 1.53}),
    # Table III: four local pairs 786 vs 4x196 -> ~100%.
    p2p_parallel_efficiency=_mp({"local": 1.0, "remote": 1.0}),
    scaling=_mp(
        {
            # Section IV-B.1: "92% and 88% scaling efficiency ... on Dawn"
            # (FP64); FP32 scales essentially perfectly in Table II.
            "flops-fp64": ScalingCurve.of({1: 1.0, 2: 0.94, 8: 0.885}),
            "flops-fp32": ScalingCurve.of({1: 1.0, 2: 1.0, 8: 0.995}),
            "gemm": ScalingCurve.of({1: 1.0, 2: 0.96, 8: 0.92}),
            "fft1d": ScalingCurve.of({1: 1.0, 2: 0.917, 8: 0.90}),
            "fft2d": ScalingCurve.of({1: 1.0, 2: 0.90, 8: 0.868}),
            "stream": PERFECT,
        }
    ),
)

# ---------------------------------------------------------------------------
# JLSE-H100  (reference points: Table IV + mini-app sections)
# ---------------------------------------------------------------------------
_H100 = SystemCalibration(
    name="jlse-h100",
    fma_efficiency=_mp({Precision.FP64: 0.985, Precision.FP32: 0.985}),
    # Published H100 stream results sit near 80% of the 3.35 TB/s spec.
    stream_efficiency=0.82,
    gemm_efficiency=_mp(
        {
            Precision.FP64: 0.985,
            Precision.FP32: 0.95,
            Precision.FP16: 0.70,
            Precision.BF16: 0.70,
            Precision.TF32: 0.70,
            Precision.I8: 0.72,
        }
    ),
    gemm_peak_multiplier=_mp({}),
    fft_fraction=_mp({1: 0.14, 2: 0.14}),
    pcie_efficiency=_mp({"h2d": 0.86, "d2h": 0.86}),
    pcie_bidir_factor=1.7,
    host_agg_caps=_mp({"h2d": None, "d2h": None, "bidir": None}),
    link_efficiency=_mp(
        {LinkKind.NVLINK4: 0.85, LinkKind.PCIE_GEN5_X16: 0.86}
    ),
    link_bidir_factor=_mp({LinkKind.NVLINK4: 1.9}),
    p2p_parallel_efficiency=_mp({"local": 0.97, "remote": 0.97}),
    scaling=_mp(
        {
            "flops-fp64": ScalingCurve.of({1: 1.0, 4: 0.98}),
            "flops-fp32": ScalingCurve.of({1: 1.0, 4: 0.98}),
            "gemm": ScalingCurve.of({1: 1.0, 4: 0.97}),
            "fft1d": ScalingCurve.of({1: 1.0, 4: 0.95}),
            "fft2d": ScalingCurve.of({1: 1.0, 4: 0.95}),
            "stream": PERFECT,
        }
    ),
)

# ---------------------------------------------------------------------------
# JLSE-MI250  (reference points: Table IV, MI250x Frontier data [13])
# ---------------------------------------------------------------------------
_MI250 = SystemCalibration(
    name="jlse-mi250",
    fma_efficiency=_mp({Precision.FP64: 0.97, Precision.FP32: 0.97}),
    # Frontier MI250x reaches 1.3 TB/s per GCD vs 1.6 spec ("matching the
    # expected 80% of the theoretical peak", Section IV-B.3).
    stream_efficiency=0.8125,
    # Section IV-B.5: MI250x GEMMs use the matrix cores (2x vector peak)
    # at ~50% efficiency: 24.1 / 48 FP64, 33.8 / 45.3 FP32 per GCD.
    gemm_efficiency=_mp(
        {
            Precision.FP64: 0.53,
            Precision.FP32: 0.747,
            Precision.FP16: 0.60,
            Precision.BF16: 0.60,
            Precision.I8: 0.60,
        }
    ),
    gemm_peak_multiplier=_mp({Precision.FP64: 2.0, Precision.FP32: 2.0}),
    fft_fraction=_mp({1: 0.12, 2: 0.12}),
    # Table IV: 25 GB/s measured unidirectional over PCIe Gen4 (32 GB/s).
    pcie_efficiency=_mp({"h2d": 0.78, "d2h": 0.78}),
    pcie_bidir_factor=1.5,
    host_agg_caps=_mp({"h2d": None, "d2h": None, "bidir": None}),
    # Table IV: 37 GB/s GCD-to-GCD on Frontier vs 50 GB/s IF raw.
    link_efficiency=_mp(
        {
            LinkKind.INFINITY_FABRIC: 0.74,
            LinkKind.XGMI: 0.74,
            LinkKind.PCIE_GEN4_X16: 0.78,
        }
    ),
    link_bidir_factor=_mp(
        {LinkKind.INFINITY_FABRIC: 1.6, LinkKind.XGMI: 1.6}
    ),
    p2p_parallel_efficiency=_mp({"local": 0.95, "remote": 0.95}),
    scaling=_mp(
        {
            "flops-fp64": ScalingCurve.of({1: 1.0, 8: 0.96}),
            "flops-fp32": ScalingCurve.of({1: 1.0, 8: 0.96}),
            "gemm": ScalingCurve.of({1: 1.0, 8: 0.95}),
            "fft1d": ScalingCurve.of({1: 1.0, 8: 0.93}),
            "fft2d": ScalingCurve.of({1: 1.0, 8: 0.93}),
            "stream": PERFECT,
        }
    ),
)

# ---------------------------------------------------------------------------
# JLSE-A100 (extension system; Section V-B.2's miniBUDE comparison point)
# ---------------------------------------------------------------------------
_A100 = SystemCalibration(
    name="jlse-a100",
    fma_efficiency=_mp({Precision.FP64: 0.98, Precision.FP32: 0.98}),
    stream_efficiency=0.87,  # ~1.35 TB/s of 1.555 spec (published stream)
    gemm_efficiency=_mp(
        {
            Precision.FP64: 0.95,
            Precision.FP32: 0.93,
            Precision.FP16: 0.70,
            Precision.BF16: 0.70,
            Precision.TF32: 0.70,
            Precision.I8: 0.72,
        }
    ),
    # A100 DGEMM runs on the FP64 tensor cores at 2x the vector peak.
    gemm_peak_multiplier=_mp({Precision.FP64: 2.0}),
    fft_fraction=_mp({1: 0.14, 2: 0.14}),
    pcie_efficiency=_mp({"h2d": 0.81, "d2h": 0.81}),
    pcie_bidir_factor=1.7,
    host_agg_caps=_mp({"h2d": None, "d2h": None, "bidir": None}),
    link_efficiency=_mp(
        {LinkKind.NVLINK4: 0.85, LinkKind.PCIE_GEN4_X16: 0.81}
    ),
    link_bidir_factor=_mp({LinkKind.NVLINK4: 1.9}),
    p2p_parallel_efficiency=_mp({"local": 0.97, "remote": 0.97}),
    scaling=_mp(
        {
            "flops-fp64": ScalingCurve.of({1: 1.0, 4: 0.98}),
            "flops-fp32": ScalingCurve.of({1: 1.0, 4: 0.98}),
            "gemm": ScalingCurve.of({1: 1.0, 4: 0.97}),
            "fft1d": ScalingCurve.of({1: 1.0, 4: 0.95}),
            "fft2d": ScalingCurve.of({1: 1.0, 4: 0.95}),
            "stream": PERFECT,
        }
    ),
)

CALIBRATIONS: Mapping[str, SystemCalibration] = _mp(
    {
        "aurora": _AURORA,
        "dawn": _DAWN,
        "jlse-h100": _H100,
        "jlse-mi250": _MI250,
        "jlse-a100": _A100,
    }
)


def get_calibration(key: str) -> SystemCalibration:
    """Look up a system's calibration table by its calibration key."""
    try:
        return CALIBRATIONS[key]
    except KeyError:
        raise CalibrationError(f"no calibration for system {key!r}") from None


# ===========================================================================
# Application-level calibrations
# ===========================================================================


@dataclass(frozen=True, slots=True)
class MiniBudeCalibration:
    """Achieved fraction of sustained FP32 peak (Section V-B: "the results
    on Aurora and Dawn place them around 45% and 49% of their peak single
    precision flops ... H100 reaches 30% of its peak")."""

    fp32_fraction: float


@dataclass(frozen=True, slots=True)
class CloverLeafCalibration:
    """Achieved fraction of stream bandwidth, plus MPI weak-scaling
    efficiency (derived from Table VI rows)."""

    stream_fraction: float
    weak_scaling: ScalingCurve


@dataclass(frozen=True, slots=True)
class MiniQmcCalibration:
    """CPU-congestion fit for the diffusion time (Section V-B.1: shared
    DDR and PCIe buses penalize intra-node weak scaling; none of the
    microbenchmarks capture this bottleneck).

    Per-rank diffusion time is modelled ``t_gpu + t_host * r**p`` in units
    of the single-rank time, where ``r`` is the max number of ranks
    sharing a CPU socket.  ``fom_single`` anchors the absolute FOM.
    """

    fom_single: float
    t_gpu: float
    t_host: float
    congestion_exponent: float


@dataclass(frozen=True, slots=True)
class Rimp2Calibration:
    """Serial (non-DGEMM) walltime seconds for the W90.rand input; the
    DGEMM part uses the engine's measured DGEMM rate (Table V: "DGEMM
    bound", strong scaling)."""

    serial_seconds: float
    #: The paper reports the MI250 build failed with the AMD Fortran
    #: compiler (Section V-B.3); systems listed here raise BuildError.
    build_fails: bool = False


@dataclass(frozen=True, slots=True)
class OpenMcCalibration:
    """Per logical device particle rate (thousand particles/s) on the SMR
    depleted-fuel benchmark (Table VI full-node FOMs / device count)."""

    kparticles_per_device: float


@dataclass(frozen=True, slots=True)
class HaccCalibration:
    """Two-term CRK-HACC node model: GPU FP32-bound force kernels plus
    host-side SPH/CPU work (Table V: "CPU memory BW bound, GPU FP32
    flop-rate bound")."""

    gpu_efficiency: float
    #: Effective CPU-core multiplier (Aurora's HBM-backed Xeons act like
    #: ~25% more cores for the bandwidth-bound host phase).
    cpu_core_boost: float


APP_CALIBRATIONS: Mapping[tuple[str, str], object] = _mp(
    {
        # ---- miniBUDE (fractions reproduce Table VI at 35.3 flops per
        # pose-atom-atom interaction) ----
        ("minibude", "aurora"): MiniBudeCalibration(0.4509),
        ("minibude", "dawn"): MiniBudeCalibration(0.4981),
        ("minibude", "jlse-h100"): MiniBudeCalibration(0.3368),
        ("minibude", "jlse-mi250"): MiniBudeCalibration(0.3021),
        # Section V-B.2: "we also performed a similar test on an A100,
        # which reached 62% of its peak".
        ("minibude", "jlse-a100"): MiniBudeCalibration(0.62),
        # ---- CloverLeaf ----
        ("cloverleaf", "aurora"): CloverLeafCalibration(
            0.8495, ScalingCurve.of({1: 1.0, 2: 0.9705, 12: 0.9642})
        ),
        ("cloverleaf", "dawn"): CloverLeafCalibration(
            0.9164, ScalingCurve.of({1: 1.0, 2: 0.9332, 8: 0.9303})
        ),
        ("cloverleaf", "jlse-h100"): CloverLeafCalibration(
            0.9779, ScalingCurve.of({1: 1.0, 4: 0.9919})
        ),
        ("cloverleaf", "jlse-mi250"): CloverLeafCalibration(
            0.8069, ScalingCurve.of({1: 1.0, 8: 0.9368})
        ),
        # ---- miniQMC (fits to the three Table VI points per system; the
        # congestion exponent differs per host because the paper's own
        # data shows Dawn's 4-rank-per-socket point degrading much faster
        # than Aurora's trajectory) ----
        ("miniqmc", "aurora"): MiniQmcCalibration(3.16, 0.9161, 0.0839, 1.613),
        ("miniqmc", "dawn"): MiniQmcCalibration(3.72, 0.98869, 0.011313, 3.1065),
        ("miniqmc", "jlse-h100"): MiniQmcCalibration(3.89, 0.87054, 0.12946, 1.6),
        ("miniqmc", "jlse-mi250"): MiniQmcCalibration(0.50, 0.57941, 0.42059, 1.6),
        # ---- GAMESS RI-MP2 ----
        ("rimp2", "aurora"): Rimp2Calibration(serial_seconds=2.54),
        ("rimp2", "dawn"): Rimp2Calibration(serial_seconds=2.07),
        ("rimp2", "jlse-h100"): Rimp2Calibration(serial_seconds=2.0),
        ("rimp2", "jlse-mi250"): Rimp2Calibration(
            serial_seconds=2.0, build_fails=True
        ),
        # ---- OpenMC (Aurora 2039/12, H100 1191/4, MI250 720/8; Dawn not
        # measured in the paper — predicted from the PVC rate scaled by
        # active Xe-Cores) ----
        ("openmc", "aurora"): OpenMcCalibration(169.9),
        ("openmc", "dawn"): OpenMcCalibration(169.9 * 64 / 56),
        ("openmc", "jlse-h100"): OpenMcCalibration(297.75),
        ("openmc", "jlse-mi250"): OpenMcCalibration(90.0),
        # ---- CRK-HACC (gpu_efficiency folds the per-implementation SYCL/
        # CUDA/HIP force-kernel efficiency; Dawn's >1 value reflects that
        # its measured FP32 flops baseline understates what the SYCL HACC
        # kernels sustain relative to H100's CUDA baseline) ----
        ("hacc", "aurora"): HaccCalibration(0.924, 1.25),
        ("hacc", "dawn"): HaccCalibration(1.213, 1.0),
        ("hacc", "jlse-h100"): HaccCalibration(1.0, 1.0),
        ("hacc", "jlse-mi250"): HaccCalibration(1.0, 1.0),
    }
)


def get_app_calibration(app: str, system: str):
    """Look up one (application, system) calibration entry."""
    try:
        return APP_CALIBRATIONS[(app, system)]
    except KeyError:
        raise CalibrationError(
            f"no calibration for app {app!r} on system {system!r}"
        ) from None
