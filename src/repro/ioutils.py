"""Crash-safe file output helpers.

Every on-disk artifact this package produces (trace exports, run
manifests, metrics dumps, campaign journals and result stores) goes
through :func:`atomic_write_text` / :func:`atomic_write_json`: the
content is written to a temporary sibling file, flushed and fsynced,
then moved into place with :func:`os.replace`.  A reader therefore
never observes a torn write — after a crash or SIGKILL the path either
holds the previous complete content or the new complete content,
never a prefix of the new one.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile

__all__ = [
    "atomic_write_text",
    "atomic_write_json",
    "canonical_json",
    "fsync_append_text",
    "sha256_text",
    "sha256_file",
]


def atomic_write_text(path: str | os.PathLike, text: str) -> None:
    """Write *text* to *path* atomically (temp file + flush + replace)."""
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def fsync_append_text(path: str | os.PathLike, text: str) -> int:
    """Append *text* to *path* with an fsync; returns the bytes written.

    Unlike :func:`atomic_write_text` this is O(len(text)), not O(file):
    the write lands at the end of the existing content and only the new
    bytes hit the disk.  A crash mid-append can leave a *torn tail* — a
    partial last line — which is why every appended record must carry
    its own checksum and readers must tolerate (and quarantine) a
    trailing record that fails it.  The containing directory is not
    fsynced: the file itself already exists, so no directory entry
    changes.
    """
    path = os.fspath(path)
    data = text.encode("utf-8")
    fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
    try:
        os.write(fd, data)
        os.fsync(fd)
    finally:
        os.close(fd)
    return len(data)


def canonical_json(doc: object) -> str:
    """The canonical (sorted, compact) JSON form used for checksumming."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def atomic_write_json(path: str | os.PathLike, doc: object) -> None:
    """Serialise *doc* as stable, human-readable JSON and write atomically."""
    atomic_write_text(path, json.dumps(doc, indent=2, sort_keys=True) + "\n")


def sha256_text(text: str) -> str:
    """Hex SHA-256 digest of *text* (UTF-8)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def sha256_file(path: str | os.PathLike) -> str:
    """Hex SHA-256 digest of the file at *path*."""
    with open(path, "rb") as fh:
        return hashlib.sha256(fh.read()).hexdigest()
