"""Crash-safe file output helpers.

Every on-disk artifact this package produces (trace exports, run
manifests, metrics dumps, campaign journals and result stores) goes
through :func:`atomic_write_text` / :func:`atomic_write_json`: the
content is written to a temporary sibling file, flushed and fsynced,
then moved into place with :func:`os.replace`.  A reader therefore
never observes a torn write — after a crash or SIGKILL the path either
holds the previous complete content or the new complete content,
never a prefix of the new one.

Transient disk faults (``ENOSPC``/``EDQUOT`` — a log rotation or a
neighbouring tenant briefly filling the volume) are absorbed with a
bounded retry + exponential backoff: :func:`_retry_io` re-attempts the
whole write up to :data:`IO_RETRY_ATTEMPTS` times, truncating a torn
partial append back to its pre-attempt length first so a retried append
never duplicates bytes.  Appends hold an exclusive ``flock`` across the
attempt-and-retry sequence, so that truncation can never destroy a
record a concurrent appender (thread or foreign process) committed in
between.  The fault-injection subsystem hooks the same
path via :func:`set_io_fault_gate` (the ``io-enospc`` campaign
scenario), which is how the chaos suite proves journal and store bytes
survive disk-pressure blips unchanged.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import tempfile
import time

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None

__all__ = [
    "IO_RETRY_ATTEMPTS",
    "atomic_write_text",
    "atomic_write_json",
    "canonical_json",
    "fsync_append_text",
    "io_retry_count",
    "read_sealed_ndjson",
    "record_intact",
    "reset_io_retry_count",
    "seal_record",
    "set_io_fault_gate",
    "sha256_text",
    "sha256_file",
]

#: Attempts per write before a retryable OSError is allowed to escape.
IO_RETRY_ATTEMPTS = 5

#: errnos treated as transient disk pressure rather than hard failures.
_RETRYABLE_ERRNOS = frozenset(
    code
    for code in (
        errno.ENOSPC,
        getattr(errno, "EDQUOT", None),
        errno.EAGAIN,
    )
    if code is not None
)

#: First backoff sleep; doubles per attempt (2 ms, 4 ms, 8 ms, ...).
_BACKOFF_BASE_S = 0.002

#: Injectable sleep so tests (and the simulated clock) can avoid real
#: waits; the schedule itself is deterministic.
_sleep = time.sleep

#: Optional fault gate ``gate(op, path, attempt) -> None`` consulted
#: before every write attempt; raising ``OSError`` simulates the write
#: failing.  ``op`` is ``"append"`` or ``"write"``; ``attempt`` is
#: 1-based so a gate can fail the first M attempts of an op and then
#: let the retry through (a *transient* fault).
_io_fault_gate = None

#: Retries performed since the last reset (observability for tests and
#: the campaign supervisor's degraded-mode reporting).
_io_retries = 0


def set_io_fault_gate(gate):
    """Install (or with ``None`` clear) the write fault gate.

    Returns the previously installed gate so callers can restore it.
    """
    global _io_fault_gate
    previous = _io_fault_gate
    _io_fault_gate = gate
    return previous


def io_retry_count() -> int:
    """Writes retried (after a transient fault) since the last reset."""
    return _io_retries


def reset_io_retry_count() -> None:
    """Zero the retry counter (start of a run or a test)."""
    global _io_retries
    _io_retries = 0


def _retry_io(op: str, path: str, attempt_fn):
    """Run one write attempt with bounded retry on transient errnos."""
    global _io_retries
    for attempt in range(1, IO_RETRY_ATTEMPTS + 1):
        try:
            if _io_fault_gate is not None:
                _io_fault_gate(op, path, attempt)
            return attempt_fn()
        except OSError as exc:
            if exc.errno not in _RETRYABLE_ERRNOS or attempt == IO_RETRY_ATTEMPTS:
                raise
            _io_retries += 1
            _sleep(_BACKOFF_BASE_S * (2 ** (attempt - 1)))
    raise AssertionError("unreachable")  # pragma: no cover


def atomic_write_text(path: str | os.PathLike, text: str) -> None:
    """Write *text* to *path* atomically (temp file + flush + replace).

    Transient ``ENOSPC``-class failures are retried with backoff; every
    attempt is self-contained (its temp file is unlinked on failure), so
    the destination only ever flips from old complete content to new
    complete content.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."

    def _attempt() -> None:
        fd, tmp = tempfile.mkstemp(
            prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(text)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    _retry_io("write", path, _attempt)


def fsync_append_text(path: str | os.PathLike, text: str) -> int:
    """Append *text* to *path* with an fsync; returns the bytes written.

    Unlike :func:`atomic_write_text` this is O(len(text)), not O(file):
    the write lands at the end of the existing content and only the new
    bytes hit the disk.  A crash mid-append can leave a *torn tail* — a
    partial last line — which is why every appended record must carry
    its own checksum and readers must tolerate (and quarantine) a
    trailing record that fails it.  The containing directory is not
    fsynced: the file itself already exists, so no directory entry
    changes.

    Transient disk faults are retried; before each retry the file is
    truncated back to its pre-append length, so a partially landed
    attempt is never duplicated.  An exclusive ``flock`` is held for
    the whole append-plus-retry sequence, so a concurrent appender (a
    thread or another process sharing the journal) can never land a
    record inside the truncation window and have it destroyed — its
    append simply waits its turn.
    """
    path = os.fspath(path)
    data = text.encode("utf-8")
    fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
    try:
        if fcntl is not None:
            fcntl.flock(fd, fcntl.LOCK_EX)
        base = os.fstat(fd).st_size

        def _attempt() -> int:
            if os.fstat(fd).st_size > base:
                os.ftruncate(fd, base)
            view = memoryview(data)
            while view:
                view = view[os.write(fd, view):]
            os.fsync(fd)
            return len(data)

        return _retry_io("append", path, _attempt)
    finally:
        os.close(fd)


def canonical_json(doc: object) -> str:
    """The canonical (sorted, compact) JSON form used for checksumming."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def atomic_write_json(path: str | os.PathLike, doc: object) -> None:
    """Serialise *doc* as stable, human-readable JSON and write atomically."""
    atomic_write_text(path, json.dumps(doc, indent=2, sort_keys=True) + "\n")


def seal_record(body: dict) -> dict:
    """Attach a ``sha256`` integrity field to *body* (checksum of its
    canonical JSON with the field removed) — the self-describing record
    scheme shared by the campaign journal, the memo-store index, and
    the service request queue."""
    doc = {k: v for k, v in body.items() if k != "sha256"}
    doc["sha256"] = sha256_text(canonical_json(doc))
    return doc


def record_intact(doc: dict) -> bool:
    """True when *doc*'s ``sha256`` matches its own canonical body."""
    body = {k: v for k, v in doc.items() if k != "sha256"}
    return doc.get("sha256") == sha256_text(canonical_json(body))


def read_sealed_ndjson(path: str | os.PathLike, accept=None) -> tuple[list[dict], int]:
    """Decode a sealed-record NDJSON file, keeping the longest intact prefix.

    Returns ``(records, dropped)``.  The trusted prefix ends at the
    first line that is torn (no trailing newline), not JSON, not a
    sealed-intact object, or rejected by *accept*; that line and
    everything after it count as *dropped*.  A writer mid-append can
    therefore never expose a partial record to a concurrent reader —
    the contract the torn-tail property suite enforces byte by byte.
    A missing file reads as an empty stream.
    """
    path = os.fspath(path)
    if not os.path.exists(path):
        return [], 0
    # errors="replace": undecodable bytes fail json.loads and end the
    # trusted prefix rather than raising out of the reader.
    with open(path, "r", encoding="utf-8", errors="replace", newline="") as fh:
        raw_lines = fh.read().splitlines(keepends=True)
    records: list[dict] = []
    for lineno, raw in enumerate(raw_lines):
        line = raw.strip()
        if not line:
            continue
        if not raw.endswith("\n"):
            break
        try:
            doc = json.loads(line)
        except json.JSONDecodeError:
            break
        if not isinstance(doc, dict) or not record_intact(doc):
            break
        if accept is not None and not accept(doc):
            break
        records.append(doc)
    else:
        return records, 0
    return records, sum(1 for l in raw_lines[lineno:] if l.strip())


def sha256_text(text: str) -> str:
    """Hex SHA-256 digest of *text* (UTF-8)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def sha256_file(path: str | os.PathLike) -> str:
    """Hex SHA-256 digest of the file at *path*."""
    with open(path, "rb") as fh:
        return hashlib.sha256(fh.read()).hexdigest()
