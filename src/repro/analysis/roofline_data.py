"""Roofline chart data for the four systems.

Not a figure in the paper, but the analytical frame its microbenchmark
discussion lives in: each system's roof (memory-bandwidth slope meeting
the compute ceiling at the ridge point) with the paper's kernels placed
on it.  Returns plain data series for any plotting frontend.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dtypes import Precision
from ..sim.engine import PerfEngine
from ..sim.kernel import (
    KernelSpec,
    fma_chain_kernel,
    gemm_kernel,
    triad_kernel,
)

__all__ = ["RooflineSeries", "KernelPoint", "roofline_series", "paper_kernels"]


@dataclass(frozen=True)
class RooflineSeries:
    """One system's roofline: attainable flop/s vs arithmetic intensity."""

    system: str
    precision: Precision
    intensity: np.ndarray  # flop/byte
    attainable: np.ndarray  # flop/s
    ridge_intensity: float
    compute_roof: float
    memory_slope: float


@dataclass(frozen=True)
class KernelPoint:
    """A kernel placed on the roofline."""

    name: str
    intensity: float
    achieved: float
    bound: str


def roofline_series(
    engine: PerfEngine,
    precision: Precision = Precision.FP64,
    n_stacks: int = 1,
    intensities: np.ndarray | None = None,
) -> RooflineSeries:
    """The attainable-performance roof for one system/precision."""
    roof = engine.fma_rate(precision, n_stacks)
    bw = engine.stream_bw(n_stacks)
    ridge = roof / bw
    if intensities is None:
        intensities = np.logspace(-2, np.log10(ridge * 32), 64)
    attainable = np.minimum(roof, bw * intensities)
    return RooflineSeries(
        system=engine.system.name,
        precision=precision,
        intensity=intensities,
        attainable=attainable,
        ridge_intensity=ridge,
        compute_roof=roof,
        memory_slope=bw,
    )


def paper_kernels(
    engine: PerfEngine, n_stacks: int = 1
) -> list[KernelPoint]:
    """The paper's kernels positioned on the system's roofline."""
    specs: list[KernelSpec] = [
        triad_kernel(),
        gemm_kernel(Precision.FP64),
        gemm_kernel(Precision.FP32),
        fma_chain_kernel(Precision.FP64, lanes=2**20),
    ]
    points = []
    for spec in specs:
        result = engine.roofline(spec, n_stacks)
        achieved = (
            spec.flops / result.total_s if spec.flops else 0.0
        )
        intensity = spec.arithmetic_intensity
        if not np.isfinite(intensity):
            intensity = 1e6  # pure compute: park far right of the ridge
        points.append(
            KernelPoint(
                name=spec.name,
                intensity=float(intensity),
                achieved=achieved,
                bound=result.bound,
            )
        )
    return points
