"""Intra-node scaling curves for every benchmark and app.

The paper reports three scopes (one stack / one PVC / full node); this
module fills in the whole 1..N curve, exposing *where* efficiency is
lost — the data behind Section IV-B.1's scaling-efficiency quotes and
Section V-B.1's miniQMC congestion discussion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..dtypes import Precision
from ..errors import BuildError, NotMeasuredError
from ..sim.engine import PerfEngine

__all__ = ["ScalingPoint", "ScalingStudy", "micro_scaling", "app_scaling"]


@dataclass(frozen=True)
class ScalingPoint:
    """One point of a scaling curve."""

    n_stacks: int
    value: float
    efficiency: float  # vs linear scaling of the 1-stack value


@dataclass(frozen=True)
class ScalingStudy:
    """A full intra-node scaling curve."""

    name: str
    system: str
    points: tuple[ScalingPoint, ...]

    @property
    def full_node_efficiency(self) -> float:
        return self.points[-1].efficiency

    def knee(self, threshold: float = 0.9) -> int | None:
        """First stack count whose efficiency drops below *threshold*."""
        for p in self.points:
            if p.efficiency < threshold:
                return p.n_stacks
        return None


def _study(
    name: str,
    engine: PerfEngine,
    value_at: Callable[[int], float],
) -> ScalingStudy:
    points = []
    base = None
    for n in range(1, engine.node.n_stacks + 1):
        try:
            value = value_at(n)
        except (NotMeasuredError, BuildError):
            continue
        if base is None:
            base = value / n
        points.append(
            ScalingPoint(n, value, value / (base * n) if base else 0.0)
        )
    return ScalingStudy(name=name, system=engine.system.name, points=tuple(points))


def micro_scaling(engine: PerfEngine) -> list[ScalingStudy]:
    """Scaling curves for the Table II benchmark families."""
    return [
        _study("fp64_flops", engine, lambda n: engine.fma_rate(Precision.FP64, n)),
        _study("fp32_flops", engine, lambda n: engine.fma_rate(Precision.FP32, n)),
        _study("triad", engine, lambda n: engine.stream_bw(n)),
        _study("dgemm", engine, lambda n: engine.gemm_rate(Precision.FP64, n)),
        _study("fft1d", engine, lambda n: engine.fft_rate(1, n)),
        _study(
            "pcie_d2h",
            engine,
            lambda n: engine.transfers.node_host_bw(
                "d2h", engine.node.stacks()[:n]
            ),
        ),
    ]


def app_scaling(engine: PerfEngine) -> list[ScalingStudy]:
    """Scaling curves for the mini-apps (weak or strong per Table V)."""
    from ..miniapps import CloverLeaf, MiniQmc, Rimp2

    return [
        _study("cloverleaf", engine, lambda n: CloverLeaf().fom(engine, n)),
        _study("miniqmc", engine, lambda n: MiniQmc().fom(engine, n)),
        _study("rimp2", engine, lambda n: Rimp2().fom(engine, n)),
    ]
