"""Regenerate the paper's tables from the simulation.

Each function returns a :class:`repro.core.result.ResultTable` whose rows
and columns mirror the publication, so ``render()`` prints a table a
reader can hold next to the paper.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ..core.fom import FOM_SPECS
from ..core.registry import global_registry
from ..core.result import BenchmarkResult, CellStatus, Quantity, ResultTable
from ..core.runner import RunPlan
from ..dtypes import Precision
from ..errors import (
    AllocationError,
    BuildError,
    NotMeasuredError,
    ReproError,
    TransientKernelError,
)
from ..hw.systems import get_system

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults.context import ExecutionContext
from ..micro.fft import Fft
from ..micro.gemm import Gemm
from ..micro.p2p import P2PBandwidth
from ..micro.pcie import PcieBandwidth
from ..micro.peak_flops import PeakFlops
from ..micro.triad import Triad
from ..miniapps import CloverLeaf, MiniBude, MiniQmc, Rimp2
from ..apps import Hacc, OpenMc
from ..sim.engine import PerfEngine
from .paper_values import TABLE_IV

__all__ = ["table_i", "table_ii", "table_iii", "table_iv", "table_v", "table_vi"]

_PLAN = RunPlan(repetitions=5, warmup=1)

#: Functional buffer bound for the PCIe cells.  The *simulated* timing
#: always uses the benchmark's declared 500 MB message (``timed_nbytes``);
#: the actual numpy payload only exists to verify data integrity, and
#: copying 500 MB of host memory per rep dominated the table's
#: wall-clock.  1 MiB keeps the integrity check meaningful at ~1/500th
#: of the cost, with byte-identical table output.
_PCIE_PAYLOAD_BYTES = 1 << 20


def _engine_for(sys_name: str, ctx: "ExecutionContext | None") -> PerfEngine:
    if ctx is not None:
        return ctx.engine(sys_name)
    return PerfEngine(get_system(sys_name))


def _measure_cell(
    table: ResultTable,
    row: str,
    col: str,
    ctx: "ExecutionContext | None",
    fn: Callable[[], BenchmarkResult],
) -> None:
    """Fill one cell, isolating fault-injection failures to that cell.

    Without an active fault context this is exactly ``table.set(fn())``,
    so clean runs keep their fail-fast behaviour.  Under injection a
    benchmark that cannot produce a number becomes a FAILED cell instead
    of aborting the whole table.
    """
    if ctx is None or not ctx.active:
        table.set(row, col, fn())
        return
    try:
        result = fn()
    except ReproError as exc:
        table.set_failed(row, col, f"{type(exc).__name__}: {exc}")
        ctx.record(CellStatus.FAILED)
        return
    table.set(row, col, result)
    prov = result.provenance
    ctx.record(prov.status if prov is not None else CellStatus.OK)


def table_i() -> str:
    """Table I: the microbenchmark summary (rendered text)."""
    import repro.micro  # noqa: F401 - ensure registration

    lines = ["Summary of microbenchmarks (Table I)", "-" * 72]
    for name in global_registry().names("micro"):
        info = global_registry().get(name)
        lines.append(
            f"{info.name:12s} {info.programming_model:18s} {info.description}"
        )
    return "\n".join(lines)


_TABLE_II_ROWS = [
    ("Double Precision Peak Flops", lambda: PeakFlops(Precision.FP64)),
    ("Single Precision Peak Flops", lambda: PeakFlops(Precision.FP32)),
    ("Memory Bandwidth (triad)", Triad),
    (
        "PCIe Unidirectional Bandwidth (H2D)",
        lambda: PcieBandwidth("h2d", payload_bytes=_PCIE_PAYLOAD_BYTES),
    ),
    (
        "PCIe Unidirectional Bandwidth (D2H)",
        lambda: PcieBandwidth("d2h", payload_bytes=_PCIE_PAYLOAD_BYTES),
    ),
    (
        "PCIe Bidirectional Bandwidth",
        lambda: PcieBandwidth("bidir", payload_bytes=_PCIE_PAYLOAD_BYTES),
    ),
    ("DGEMM", lambda: Gemm(Precision.FP64)),
    ("SGEMM", lambda: Gemm(Precision.FP32)),
    ("HGEMM", lambda: Gemm(Precision.FP16)),
    ("BF16GEMM", lambda: Gemm(Precision.BF16)),
    ("TF32GEMM", lambda: Gemm(Precision.TF32)),
    ("I8GEMM", lambda: Gemm(Precision.I8)),
    ("Single-precision FFT C2C 1D", lambda: Fft(1)),
    ("Single-precision FFT C2C 2D", lambda: Fft(2)),
]


def table_ii(
    systems: tuple[str, ...] = ("aurora", "dawn"),
    ctx: "ExecutionContext | None" = None,
) -> ResultTable:
    """Table II: microbenchmark results at one Stack / one PVC / full node."""
    table = ResultTable("Table II")
    for sys_name in systems:
        engine = _engine_for(sys_name, ctx)
        scopes = [
            ("One Stack", 1),
            ("One PVC", engine.node.card.n_devices),
            (engine.system.full_node_scope_name(), engine.node.n_stacks),
        ]
        for row_name, factory in _TABLE_II_ROWS:
            bench = factory()
            for scope_name, n in scopes:
                col = f"{engine.system.display_name} / {scope_name}"
                _measure_cell(
                    table,
                    row_name,
                    col,
                    ctx,
                    lambda bench=bench, n=n: bench.measure(engine, n, _PLAN),
                )
    return table


def table_iii(
    systems: tuple[str, ...] = ("aurora", "dawn"),
    ctx: "ExecutionContext | None" = None,
) -> ResultTable:
    """Table III: stack-to-stack point-to-point bandwidths."""
    table = ResultTable("Table III")
    rows = [
        ("Local Stack Unidirectional Bandwidth", "local", False),
        ("Local Stack Bidirectional Bandwidth", "local", True),
        ("Remote Stack Unidirectional Bandwidth", "remote", False),
        ("Remote Stack Bidirectional Bandwidth", "remote", True),
    ]
    for sys_name in systems:
        engine = _engine_for(sys_name, ctx)
        n_pairs = engine.node.n_cards
        for row_name, pair_class, bidir in rows:
            bench = P2PBandwidth(pair_class, bidirectional=bidir)
            one_col = f"{engine.system.display_name} / One Stack-Pair"
            all_col = f"{engine.system.display_name} / All Stack-Pairs"
            # Dawn's remote rows are '-' in the paper (not measured).
            if pair_class == "remote" and sys_name == "dawn":
                table.set(row_name, one_col, None)
                table.set(row_name, all_col, None)
                continue
            _measure_cell(
                table, row_name, one_col, ctx,
                lambda bench=bench: bench.measure(engine, 1, _PLAN),
            )
            _measure_cell(
                table, row_name, all_col, ctx,
                lambda bench=bench: bench.measure(engine, 2 * n_pairs, _PLAN),
            )
    return table


def table_iv() -> ResultTable:
    """Table IV: reference characteristics of H100 / MI250 / MI250x GCD."""
    table = ResultTable("Table IV")
    rows = [
        ("FP32 peak", "fp32_peak", "Flop/s"),
        ("FP64 peak", "fp64_peak", "Flop/s"),
        ("SGEMM", "sgemm", "Flop/s"),
        ("DGEMM", "dgemm", "Flop/s"),
        ("Memory BW", "mem_bw", "B/s"),
        ("PCIe BW", "pcie_bw", "B/s"),
        ("GCD to GCD", "gcd_to_gcd", "B/s"),
    ]
    cols = [("H100", "h100"), ("MI250", "mi250"), ("1x GCD MI250x", "mi250x_gcd")]
    for row_name, key, unit in rows:
        for col_name, sys_key in cols:
            value = TABLE_IV[sys_key][key]
            table.set(
                row_name,
                col_name,
                None if value is None else Quantity(value, unit),
            )
    return table


def table_v() -> str:
    """Table V: mini-app and application descriptions (rendered text)."""
    lines = ["Mini-App and Application Descriptions (Table V)", "-" * 72]
    for spec in FOM_SPECS.values():
        lines.append(spec.describe())
    return "\n".join(lines)


_TABLE_VI_APPS = [
    ("miniBUDE", MiniBude),
    ("CloverLeaf", CloverLeaf),
    ("miniQMC", MiniQmc),
    ("mini-GAMESS", Rimp2),
    ("OpenMC", OpenMc),
    ("HACC", Hacc),
]


def table_vi(
    systems: tuple[str, ...] = ("aurora", "dawn", "jlse-h100", "jlse-mi250"),
    ctx: "ExecutionContext | None" = None,
) -> ResultTable:
    """Table VI: mini-app and application FOMs across all four systems.

    Cells the paper leaves blank (no measurement, MI250 build failure,
    non-MPI apps beyond one device) appear as '-' here too, except OpenMC
    on Dawn where the engine *predicts* a value the paper does not report
    — that cell carries the prediction (flagged in EXPERIMENTS.md).
    """
    table = ResultTable("Table VI")
    for sys_name in systems:
        engine = _engine_for(sys_name, ctx)
        injector = engine.faults
        is_pvc = engine.device.arch == "pvc"
        scopes: list[tuple[str, int]] = []
        if is_pvc:
            scopes = [("One Stack", 1), ("One GPU", 2)]
        else:
            scopes = [("One GCD" if engine.device.arch == "mi250" else "One GPU", 1)]
        scopes.append((engine.system.full_node_scope_name(), engine.node.n_stacks))
        for app_name, cls in _TABLE_VI_APPS:
            app = cls()
            for scope_name, n in scopes:
                col = f"{engine.system.display_name} / {scope_name}"
                if injector is not None:
                    # Apps don't go through a Runner, so the table driver
                    # advances the fault clock once per cell.
                    injector.tick()
                try:
                    try:
                        fom = app.fom(engine, n)
                    except (TransientKernelError, AllocationError):
                        if ctx is None or not ctx.active:
                            raise
                        # Transient faults clear on retry (the stream
                        # counter has advanced past the event).
                        fom = app.fom(engine, n)
                except (NotMeasuredError, BuildError):
                    table.set(app_name, col, None)
                    continue
                except ReproError as exc:
                    if ctx is None or not ctx.active:
                        raise
                    table.set_failed(
                        app_name, col, f"{type(exc).__name__}: {exc}"
                    )
                    ctx.record(CellStatus.FAILED)
                    continue
                # The paper measures miniBUDE on a single device only, and
                # OpenMC/HACC on full nodes only.
                if app_name == "miniBUDE" and n != 1:
                    table.set(app_name, col, None)
                    continue
                incidents = injector.drain() if injector is not None else []
                if incidents:
                    table.set(
                        app_name,
                        col,
                        Quantity(fom, app.fom_spec.unit),
                        status=CellStatus.DEGRADED,
                        note="; ".join(incidents),
                    )
                    if ctx is not None:
                        ctx.record(CellStatus.DEGRADED)
                else:
                    table.set(app_name, col, Quantity(fom, app.fom_spec.unit))
    return table
