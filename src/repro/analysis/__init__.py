"""Paper reproduction layer: published values, tables, figures, claims."""

from .compare import Claim, all_claims
from .expected import ExpectedBar, fig2_expected, fig3_expected, fig4_expected
from .figures import (
    FIGURE_TITLES,
    MINIAPP_ORDER,
    LatencySeries,
    RatioPoint,
    figure1,
    figure2,
    figure3,
    figure4,
    render_figure,
    render_ratio_points,
)
from .report import claims_markdown, full_report, table2_markdown, table6_markdown
from .roofline_data import KernelPoint, RooflineSeries, paper_kernels, roofline_series
from .scaling_study import ScalingPoint, ScalingStudy, app_scaling, micro_scaling
from .paper_values import (
    FIG1_RELATIVE_LATENCY,
    MINIBUDE_PEAK_FRACTIONS,
    SCALING_QUOTES,
    TABLE_II,
    TABLE_III,
    TABLE_IV,
    TABLE_VI,
    scope_key,
)
from .tables import table_i, table_ii, table_iii, table_iv, table_v, table_vi

__all__ = [
    "Claim",
    "all_claims",
    "ExpectedBar",
    "fig2_expected",
    "fig3_expected",
    "fig4_expected",
    "MINIAPP_ORDER",
    "LatencySeries",
    "RatioPoint",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "render_figure",
    "render_ratio_points",
    "FIGURE_TITLES",
    "claims_markdown",
    "full_report",
    "table2_markdown",
    "table6_markdown",
    "KernelPoint",
    "RooflineSeries",
    "paper_kernels",
    "roofline_series",
    "ScalingPoint",
    "ScalingStudy",
    "app_scaling",
    "micro_scaling",
    "FIG1_RELATIVE_LATENCY",
    "MINIBUDE_PEAK_FRACTIONS",
    "SCALING_QUOTES",
    "TABLE_II",
    "TABLE_III",
    "TABLE_IV",
    "TABLE_VI",
    "scope_key",
    "table_i",
    "table_ii",
    "table_iii",
    "table_iv",
    "table_v",
    "table_vi",
]
