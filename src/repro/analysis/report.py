"""Markdown report generator: the whole reproduction in one document.

``pvc-bench report`` (or :func:`full_report`) renders every regenerated
table, the figure series, the expected bars, and the claim checklist into
a single Markdown document — the programmatic source of EXPERIMENTS.md's
comparison sections.
"""

from __future__ import annotations

import io

from ..dtypes import Precision
from ..hw.systems import get_system
from ..sim.engine import PerfEngine
from ..sim.noise import QUIET
from .compare import all_claims
from .figures import figure1, figure2, figure3, figure4
from .paper_values import TABLE_II, TABLE_VI
from .tables import table_iii, table_iv, table_v, table_vi

__all__ = ["full_report", "table2_markdown", "table6_markdown", "claims_markdown"]

_GEMM = {
    "dgemm": Precision.FP64,
    "sgemm": Precision.FP32,
    "hgemm": Precision.FP16,
    "bf16gemm": Precision.BF16,
    "tf32gemm": Precision.TF32,
    "i8gemm": Precision.I8,
}

_SCOPES = {"aurora": {1: 1, 2: 2, "node": 12}, "dawn": {1: 1, 2: 2, "node": 8}}


def _cell_value(engine: PerfEngine, row: str, n: int) -> float:
    if row in _GEMM:
        return engine.gemm_rate(_GEMM[row], n)
    if row == "fp64_flops":
        return engine.fma_rate(Precision.FP64, n)
    if row == "fp32_flops":
        return engine.fma_rate(Precision.FP32, n)
    if row == "triad":
        return engine.stream_bw(n)
    if row.startswith("pcie"):
        direction = row.split("_")[1]
        refs = engine.node.stacks()[:n]
        if n == 1:
            return engine.transfers.host_device_bw(refs[0], direction)
        return engine.transfers.node_host_bw(direction, refs)
    if row.startswith("fft"):
        return engine.fft_rate(int(row[4]), n)
    raise KeyError(row)


def _engines() -> dict[str, PerfEngine]:
    return {
        name: PerfEngine(get_system(name), noise=QUIET)
        for name in ("aurora", "dawn", "jlse-h100", "jlse-mi250")
    }


def table2_markdown() -> str:
    """Per-cell Table II comparison as a Markdown table."""
    engines = _engines()
    out = io.StringIO()
    out.write("| Row | System | Scope | Paper | Simulated | Dev |\n")
    out.write("|---|---|---|---|---|---|\n")
    for row, columns in TABLE_II.items():
        for system, cells in columns.items():
            for scope, paper in cells.items():
                n = _SCOPES[system][scope]
                got = _cell_value(engines[system], row, n)
                dev = 100 * (got - paper) / paper
                out.write(
                    f"| {row} | {system} | {scope} | {paper:.3g} | "
                    f"{got:.3g} | {dev:+.1f}% |\n"
                )
    return out.getvalue()


def table6_markdown() -> str:
    """Per-cell Table VI comparison as a Markdown table."""
    from ..apps import Hacc, OpenMc
    from ..errors import BuildError
    from ..miniapps import CloverLeaf, MiniBude, MiniQmc, Rimp2

    apps = {
        "minibude": MiniBude(),
        "cloverleaf": CloverLeaf(),
        "miniqmc": MiniQmc(),
        "rimp2": Rimp2(),
        "openmc": OpenMc(),
        "hacc": Hacc(),
    }
    engines = _engines()
    out = io.StringIO()
    out.write("| App | System | Scope | Paper | Simulated | Dev |\n")
    out.write("|---|---|---|---|---|---|\n")
    for app_key, columns in TABLE_VI.items():
        for system, cells in columns.items():
            engine = engines[system]
            for scope, paper in cells.items():
                n = engine.node.n_stacks if scope == "node" else int(scope)
                try:
                    got = apps[app_key].fom(engine, n)
                except BuildError:
                    got = None
                paper_s = "-" if paper is None else f"{paper:g}"
                got_s = "build fails" if got is None else f"{got:.4g}"
                dev = (
                    ""
                    if paper is None or got is None
                    else f"{100 * (got - paper) / paper:+.1f}%"
                )
                out.write(
                    f"| {app_key} | {system} | {scope} | {paper_s} | "
                    f"{got_s} | {dev} |\n"
                )
    return out.getvalue()


def claims_markdown() -> str:
    """The prose-claim checklist as a Markdown table."""
    out = io.StringIO()
    out.write("| Claim | Paper | Simulated | Holds |\n|---|---|---|---|\n")
    for c in all_claims():
        out.write(
            f"| {c.name} | {c.paper} | {c.simulated} | "
            f"{'yes' if c.holds else 'NO'} |\n"
        )
    return out.getvalue()


def figures_markdown() -> str:
    out = io.StringIO()
    out.write("### Figure 1 endpoints (cycles)\n\n")
    out.write("| System | L1 plateau | HBM plateau |\n|---|---|---|\n")
    for s in figure1():
        out.write(
            f"| {s.system} | {s.latency_cycles[0]:.0f} | "
            f"{s.latency_cycles[-1]:.0f} |\n"
        )
    for label, points in (
        ("Figure 2 (Aurora/Dawn)", figure2()),
        ("Figure 3 (vs H100)", figure3()),
        ("Figure 4 (vs MI250)", figure4()),
    ):
        out.write(f"\n### {label}\n\n")
        out.write("| App | Scope | Measured | Expected bar |\n|---|---|---|---|\n")
        for p in points:
            measured = "-" if p.ratio is None else f"{p.ratio:.2f}x"
            bar = "-" if p.expected.ratio is None else f"{p.expected.ratio:.2f}x"
            out.write(f"| {p.app} | {p.scope} | {measured} | {bar} |\n")
    return out.getvalue()


def fault_injection_markdown(ctx) -> str:
    """Fault-injection section: active scenario, schedules, incident log."""
    for name in ("aurora", "dawn"):
        # Materialise the per-system plans so the section can list them.
        ctx.engine(name)
    out = io.StringIO()
    out.write("```\n")
    out.write(ctx.describe())
    out.write("\n```\n")
    incidents = ctx.incident_log()
    if incidents:
        out.write("\nIncidents applied during this report:\n\n")
        for msg in incidents:
            out.write(f"- {msg}\n")
    out.write(f"\nWorst cell status: **{ctx.worst_status.name}**\n")
    return out.getvalue()


def full_report(ctx=None) -> str:
    """The complete reproduction report as Markdown.

    Pass an active :class:`~repro.faults.ExecutionContext` to append a
    fault-injection section documenting the scenario and its incidents.
    """
    parts = [
        "# Reproduction report",
        "",
        "## Table II: microbenchmarks",
        "",
        table2_markdown(),
        "## Table III: point-to-point",
        "",
        "```",
        table_iii(ctx=ctx).render(),
        "```",
        "",
        "## Table IV: reference GPUs",
        "",
        "```",
        table_iv().render(),
        "```",
        "",
        "## Table V: applications",
        "",
        "```",
        table_v(),
        "```",
        "",
        "## Table VI: figures of merit",
        "",
        table6_markdown(),
        "## Figures",
        "",
        figures_markdown(),
        "## Claims",
        "",
        claims_markdown(),
    ]
    if ctx is not None and ctx.active:
        parts += ["## Fault injection", "", fault_injection_markdown(ctx)]
    return "\n".join(parts)
