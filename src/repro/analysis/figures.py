"""Regenerate the paper's figures as data series.

* :func:`figure1` — memory-latency-vs-working-set curves for the four
  systems (cycles; the Fig. 1 staircase).
* :func:`figure2` — mini-app FOM on Aurora relative to Dawn, with the
  expected black bars.
* :func:`figure3` / :func:`figure4` — FOMs on Aurora and Dawn relative to
  JLSE-H100 / JLSE-MI250, with expected bars.

Everything returns plain data (no plotting dependency); the benchmark
harness prints the series the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import BuildError, NotMeasuredError
from ..hw.systems import get_system
from ..micro.lats import default_sizes
from ..miniapps import CloverLeaf, MiniBude, MiniQmc, Rimp2
from ..sim.engine import PerfEngine
from ..sim.noise import QUIET
from .expected import ExpectedBar, fig2_expected, fig3_expected, fig4_expected

__all__ = [
    "LatencySeries",
    "RatioPoint",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "render_figure",
    "render_ratio_points",
    "FIGURE_TITLES",
    "MINIAPP_ORDER",
]

MINIAPP_ORDER = ("minibude", "cloverleaf", "miniqmc", "rimp2")

_APPS = {
    "minibude": MiniBude,
    "cloverleaf": CloverLeaf,
    "miniqmc": MiniQmc,
    "rimp2": Rimp2,
}


def _engines(names=("aurora", "dawn", "jlse-h100", "jlse-mi250")):
    return {n: PerfEngine(get_system(n), noise=QUIET) for n in names}


@dataclass(frozen=True)
class LatencySeries:
    """One Figure 1 curve."""

    system: str
    sizes_bytes: np.ndarray
    latency_cycles: np.ndarray


@dataclass(frozen=True)
class RatioPoint:
    """One bar of Figures 2-4: measured ratio + expected bar."""

    app: str
    scope: str
    ratio: float | None
    expected: ExpectedBar

    @property
    def within_expectation(self) -> bool | None:
        """True when the measured bar is within 25% of the black bar
        (the paper's qualitative "close to the black bars")."""
        if self.ratio is None or self.expected.ratio is None:
            return None
        return abs(self.ratio - self.expected.ratio) <= 0.25 * self.expected.ratio


def figure1(max_bytes: int = 8 << 30) -> list[LatencySeries]:
    """Latency curves for Aurora, Dawn, JLSE-H100, JLSE-MI250."""
    out = []
    for name, engine in _engines().items():
        sizes = default_sizes(min(max_bytes, engine.device.hbm_capacity_bytes // 4))
        lats = np.array([engine.latency_cycles(int(s)) for s in sizes])
        out.append(LatencySeries(name, sizes, lats))
    return out


def _fom_or_none(app_key: str, engine: PerfEngine, n_stacks: int) -> float | None:
    app = _APPS[app_key]()
    try:
        return app.fom(engine, n_stacks)
    except (NotMeasuredError, BuildError):
        return None


def figure2() -> list[RatioPoint]:
    """FOMs on Aurora relative to Dawn (one stack, one PVC, full node)."""
    eng = _engines(("aurora", "dawn"))
    a, d = eng["aurora"], eng["dawn"]
    points: list[RatioPoint] = []
    for app in MINIAPP_ORDER:
        scopes: list[tuple[str, int, int]] = [("One Stack", 1, 1)]
        if app != "minibude":
            scopes += [
                ("One PVC", 2, 2),
                ("Full node", a.node.n_stacks, d.node.n_stacks),
            ]
        for label, na, nd in scopes:
            fa = _fom_or_none(app, a, na)
            fd = _fom_or_none(app, d, nd)
            ratio = None if fa is None or fd is None else fa / fd
            points.append(
                RatioPoint(app, label, ratio, fig2_expected(app, a, d, na, nd))
            )
    return points


def _vs_reference(
    reference: str, expected_fn, gpu_stacks: int
) -> list[RatioPoint]:
    eng = _engines()
    ref = eng[reference]
    points: list[RatioPoint] = []
    for app in MINIAPP_ORDER:
        for pvc_name in ("aurora", "dawn"):
            pvc = eng[pvc_name]
            # One GPU (vs H100) / one stack-vs-GCD (vs MI250).
            scope_small = "gpu" if reference == "jlse-h100" else "stack"
            f_pvc = _fom_or_none(app, pvc, gpu_stacks)
            if app == "minibude" and gpu_stacks == 2:
                # Paper: "since the application is not MPI, we doubled the
                # single-Stack value to get a full PVC value" — fom()
                # already applies that doubling for n_stacks=2.
                pass
            f_ref = _fom_or_none(app, ref, 1)
            ratio = None if f_pvc is None or f_ref is None else f_pvc / f_ref
            points.append(
                RatioPoint(
                    f"{app}:{pvc_name}",
                    scope_small,
                    ratio,
                    expected_fn(app, pvc, scope_small),
                )
            )
            # Full node vs full node (miniBUDE is not MPI and is only
            # compared per device / per doubled card in the paper).
            if app == "minibude":
                continue
            f_pvc_n = _fom_or_none(app, pvc, pvc.node.n_stacks)
            f_ref_n = _fom_or_none(app, ref, ref.node.n_stacks)
            ratio_n = (
                None if f_pvc_n is None or f_ref_n is None else f_pvc_n / f_ref_n
            )
            points.append(
                RatioPoint(
                    f"{app}:{pvc_name}",
                    "node",
                    ratio_n,
                    expected_fn(app, pvc, "node"),
                )
            )
    return points


def figure3() -> list[RatioPoint]:
    """FOMs on Aurora and Dawn relative to JLSE-H100."""
    return _vs_reference("jlse-h100", fig3_expected, gpu_stacks=2)


def figure4() -> list[RatioPoint]:
    """FOMs on Aurora and Dawn relative to JLSE-MI250 (per stack vs GCD)."""
    return _vs_reference("jlse-mi250", fig4_expected, gpu_stacks=1)


# ----------------------------------------------------------------------
# text renderers (shared by the CLI and the campaign result store)
# ----------------------------------------------------------------------

FIGURE_TITLES = {
    "fig2": "Figure 2: FOMs on Aurora relative to Dawn",
    "fig3": "Figure 3: FOMs relative to JLSE-H100",
    "fig4": "Figure 4: FOMs relative to JLSE-MI250",
}


def render_ratio_points(points: list[RatioPoint], title: str) -> str:
    """The Figures 2-4 bar listing as plain text."""
    lines = [title, "-" * 72]
    for p in points:
        measured = "-" if p.ratio is None else f"{p.ratio:5.2f}x"
        expected = (
            "(no bar)"
            if p.expected.ratio is None
            else f"expected {p.expected.ratio:5.2f}x"
        )
        flag = ""
        if p.within_expectation is True:
            flag = "  [as expected]"
        elif p.within_expectation is False:
            flag = "  [deviates]"
        lines.append(f"{p.app:22s} {p.scope:10s} {measured}  {expected}{flag}")
    return "\n".join(lines)


def _render_figure1() -> str:
    lines: list[str] = []
    for series in figure1():
        lines.append(f"# {series.system}")
        for size, cycles in zip(series.sizes_bytes, series.latency_cycles):
            lines.append(f"{int(size):>12d} B  {cycles:8.1f} cycles")
        lines.append("")
    return "\n".join(lines)


def render_figure(name: str) -> str:
    """Render one figure (``fig1``..``fig4``) exactly as the CLI prints it."""
    if name == "fig1":
        return _render_figure1()
    points = {"fig2": figure2, "fig3": figure3, "fig4": figure4}[name]()
    return render_ratio_points(points, FIGURE_TITLES[name])
