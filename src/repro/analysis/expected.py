"""Expected-relative-performance "black bars" (Figures 2-4).

The paper's appendix spells out the recipe:

* each mini-app has a *bound* (Table V: miniBUDE -> FP32 flops,
  CloverLeaf -> memory bandwidth, RI-MP2 -> DGEMM);
* the expected ratio between two systems is the ratio of that bound's
  **measured microbenchmark value** on the PVC systems (Table II) to the
  measured value (Fig 2) or **theoretical peak** (Figs 3-4, Table IV) on
  the reference system;
* e.g. miniBUDE Aurora/Dawn = 23/26 = 0.88x; CloverLeaf one-GPU vs H100 =
  2 TB/s / 3.35 TB/s = 0.59x; miniBUDE one-Stack vs one MI250 GCD =
  23 / (45.3/2) = 1.0x.

miniQMC gets no bar: "miniQMC does not have the expected performance
bars ... since it is affected by CPU congestion and GPU instruction
throughput ... not captured by the microbenchmarks."
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dtypes import Precision
from ..sim.engine import PerfEngine
from .paper_values import TABLE_IV

__all__ = ["ExpectedBar", "fig2_expected", "fig3_expected", "fig4_expected"]

_MINIAPPS = ("minibude", "cloverleaf", "miniqmc", "rimp2")


@dataclass(frozen=True, slots=True)
class ExpectedBar:
    """One black bar: the expected ratio and how it was computed."""

    app: str
    scope: str
    ratio: float | None
    formula: str


def _bound_value(app: str, engine: PerfEngine, n_stacks: int) -> float | None:
    """The measured microbenchmark value of the app's bound resource."""
    if app == "minibude":
        return engine.fma_rate(Precision.FP32, n_stacks)
    if app == "cloverleaf":
        return engine.stream_bw(n_stacks)
    if app == "rimp2":
        return engine.gemm_rate(Precision.FP64, n_stacks)
    return None  # miniQMC: no bar


def _reference_peak(app: str, reference: str, n_devices: int) -> float | None:
    """Theoretical bound peak of the reference system (Table IV)."""
    table = TABLE_IV[reference]
    if app == "minibude":
        peak = table["fp32_peak"]
    elif app == "cloverleaf":
        peak = table["mem_bw"]
    elif app == "rimp2":
        peak = table["fp64_peak"]
    else:
        return None
    assert peak is not None
    if reference == "mi250" and n_devices == 1:
        # One GCD owns half the card's peak (the appendix's "divided by
        # two since it's run on a single GCD").
        return peak / 2.0
    return peak * n_devices if reference == "h100" else peak * (n_devices / 2.0)


def fig2_expected(app: str, engine_aurora: PerfEngine, engine_dawn: PerfEngine,
                  n_stacks_aurora: int = 1, n_stacks_dawn: int | None = None) -> ExpectedBar:
    """Aurora-relative-to-Dawn bar at matching scopes."""
    if app not in _MINIAPPS:
        raise ValueError(f"no Figure 2 bar for {app!r}")
    if n_stacks_dawn is None:
        n_stacks_dawn = n_stacks_aurora
    a = _bound_value(app, engine_aurora, n_stacks_aurora)
    d = _bound_value(app, engine_dawn, n_stacks_dawn)
    if a is None or d is None:
        return ExpectedBar(app, f"{n_stacks_aurora} stacks", None,
                           "no bar: bound not captured by the microbenchmarks")
    return ExpectedBar(
        app,
        f"{n_stacks_aurora} stacks",
        a / d,
        f"bound(aurora, {n_stacks_aurora}) / bound(dawn, {n_stacks_dawn})",
    )


def _vs_reference(
    app: str,
    engine_pvc: PerfEngine,
    reference: str,
    scope: str,
    pvc_stacks: int,
    ref_devices: int,
) -> ExpectedBar:
    measured = _bound_value(app, engine_pvc, pvc_stacks)
    peak = _reference_peak(app, reference, ref_devices)
    if measured is None or peak is None:
        return ExpectedBar(app, scope, None,
                           "no bar: bound not captured by the microbenchmarks")
    return ExpectedBar(
        app,
        scope,
        measured / peak,
        f"measured bound({engine_pvc.system.name}, {pvc_stacks} stacks) / "
        f"theoretical {reference} peak x {ref_devices}",
    )


def fig3_expected(
    app: str, engine_pvc: PerfEngine, scope: str = "gpu"
) -> ExpectedBar:
    """PVC-system-relative-to-JLSE-H100 bar.

    ``scope``: "gpu" compares one PVC (two stacks) to one H100; "node"
    compares full nodes.
    """
    if scope == "gpu":
        return _vs_reference(app, engine_pvc, "h100", scope, 2, 1)
    if scope == "node":
        return _vs_reference(
            app, engine_pvc, "h100", scope, engine_pvc.node.n_stacks, 4
        )
    raise ValueError(f"bad scope {scope!r}")


def fig4_expected(
    app: str, engine_pvc: PerfEngine, scope: str = "stack"
) -> ExpectedBar:
    """PVC-system-relative-to-JLSE-MI250 bar.

    ``scope``: "stack" compares one stack to one GCD; "node" compares the
    full PVC node to the 4-card (8-GCD) MI250 node.
    """
    if scope == "stack":
        return _vs_reference(app, engine_pvc, "mi250", scope, 1, 1)
    if scope == "node":
        return _vs_reference(
            app, engine_pvc, "mi250", scope, engine_pvc.node.n_stacks, 8
        )
    raise ValueError(f"bad scope {scope!r}")
