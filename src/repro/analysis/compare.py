"""Paper-vs-simulated shape checks.

Each function verifies one *claim* of the evaluation section — not just a
cell value but the relationship the paper draws from it.  The test suite
asserts these; the EXPERIMENTS.md generator prints them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dtypes import Precision
from ..hw.ids import StackRef
from ..hw.systems import get_system
from ..miniapps import MiniQmc
from ..sim.engine import PerfEngine
from ..sim.noise import QUIET
from .paper_values import FIG1_RELATIVE_LATENCY

__all__ = [
    "Claim",
    "scaling_efficiencies",
    "fp32_fp64_ratio",
    "gemm_efficiencies",
    "pcie_full_node_scaling",
    "xelink_slower_than_pcie",
    "latency_relations",
    "miniqmc_inversion",
    "all_claims",
]


@dataclass(frozen=True)
class Claim:
    """One checked claim: what the paper says, what the simulation gives."""

    name: str
    paper: str
    simulated: str
    holds: bool


def _engine(name: str) -> PerfEngine:
    return PerfEngine(get_system(name), noise=QUIET)


def scaling_efficiencies() -> list[Claim]:
    """Section IV-B.1: 97%/95% flops scaling on Aurora, 92%/88% on Dawn."""
    claims = []
    for name, (two, full) in (("aurora", (0.97, 0.95)), ("dawn", (0.92, 0.88))):
        e = _engine(name)
        single = e.fma_rate(Precision.FP64, 1)
        eff2 = e.fma_rate(Precision.FP64, 2) / (2 * single)
        effn = e.fma_rate(Precision.FP64, e.node.n_stacks) / (
            e.node.n_stacks * single
        )
        claims.append(
            Claim(
                f"{name} FP64 two-stack scaling",
                f"~{two:.0%}",
                f"{eff2:.1%}",
                abs(eff2 - two) < 0.04,
            )
        )
        claims.append(
            Claim(
                f"{name} FP64 full-node scaling",
                f"~{full:.0%}",
                f"{effn:.1%}",
                abs(effn - full) < 0.04,
            )
        )
    return claims


def fp32_fp64_ratio() -> list[Claim]:
    """Section IV-B.2: FP32:FP64 = ~1.3x on a Stack, caused by the FP64
    TDP downclock (1.2 vs 1.6 GHz); disappears with TDP modelling off."""
    e = _engine("aurora")
    ratio = e.fma_rate(Precision.FP32, 1) / e.fma_rate(Precision.FP64, 1)
    no_tdp = PerfEngine(get_system("aurora"), noise=QUIET, enable_tdp=False)
    flat = no_tdp.fma_rate(Precision.FP32, 1) / no_tdp.fma_rate(
        Precision.FP64, 1
    )
    return [
        Claim(
            "aurora FP32:FP64 flops ratio",
            "~1.3x (23/17)",
            f"{ratio:.2f}x",
            abs(ratio - 23 / 17) < 0.08,
        ),
        Claim(
            "ratio without TDP downclock (ablation)",
            "~1.0x by design spec",
            f"{flat:.2f}x",
            abs(flat - 1.0) < 0.05,
        ),
    ]


def gemm_efficiencies() -> list[Claim]:
    """Section IV-B.5: SGEMM ~95% of peak flops, DGEMM ~80%."""
    e = _engine("dawn")
    sgemm = e.gemm_rate(Precision.FP32, 1) / e.fma_rate(Precision.FP32, 1)
    dgemm = e.gemm_rate(Precision.FP64, 1) / e.fma_rate(Precision.FP64, 1)
    return [
        Claim("SGEMM fraction of measured peak", "~95%", f"{sgemm:.0%}",
              0.90 <= sgemm <= 1.0),
        Claim("DGEMM fraction of measured peak", "~80%", f"{dgemm:.0%}",
              0.74 <= dgemm <= 0.90),
        Claim("DGEMM efficiency below SGEMM", "relative drop unexplained",
              f"{dgemm:.0%} < {sgemm:.0%}", dgemm < sgemm),
    ]


def pcie_full_node_scaling() -> list[Claim]:
    """Section IV-B.4: D2H scales at ~40% on the Aurora full node (host
    contention) and bidir reaches only ~1.4x unidirectional."""
    e = _engine("aurora")
    single = e.transfers.host_device_bw(StackRef(0, 0), "d2h")
    node = e.transfers.node_host_bw("d2h")
    frac = node / (single * e.node.n_stacks)
    bidir = e.transfers.host_device_bw(StackRef(0, 0), "bidir")
    h2d = e.transfers.host_device_bw(StackRef(0, 0), "h2d")
    no_cont = PerfEngine(
        get_system("aurora"), noise=QUIET, enable_contention=False
    )
    node_free = no_cont.transfers.node_host_bw("d2h")
    # Without the host cap the ceiling is linear in *cards* (the two
    # stacks of a card share its single PCIe link by construction).
    linear_cards = single * no_cont.node.n_cards
    return [
        Claim("aurora full-node D2H scaling", "40% = 264/(53x12)",
              f"{frac:.0%}", abs(frac - 0.40) < 0.05),
        Claim("bidirectional vs unidirectional PCIe", "1.4x, not 2x",
              f"{bidir / h2d:.2f}x", abs(bidir / h2d - 1.4) < 0.1),
        Claim("contention ablation recovers per-card-linear D2H",
              "(model check)", f"{node_free / linear_cards:.0%}",
              node_free / linear_cards > 0.99),
    ]


def xelink_slower_than_pcie() -> list[Claim]:
    """Section IV-B.7: Xe-Link remote-stack bandwidth is slower than PCIe."""
    e = _engine("aurora")
    remote = e.transfers.p2p_bw(StackRef(0, 0), StackRef(1, 0))
    pcie = e.transfers.host_device_bw(StackRef(0, 0), "h2d")
    local = e.transfers.p2p_bw(StackRef(0, 0), StackRef(0, 1))
    return [
        Claim("remote stack slower than PCIe", "15 GB/s < 54 GB/s",
              f"{remote / 1e9:.0f} < {pcie / 1e9:.0f} GB/s", remote < pcie),
        Claim("local pair much faster than remote", "197 vs 15 GB/s",
              f"{local / remote:.0f}x", local / remote > 10),
    ]


def latency_relations() -> list[Claim]:
    """Section IV-B.6: the Fig. 1 relative latency statements."""
    pvc = _engine("aurora").device.memory
    h100 = _engine("jlse-h100").device.memory
    mi250 = _engine("jlse-mi250").device.memory
    claims = []
    for level, rel in FIG1_RELATIVE_LATENCY.items():
        p = pvc[level].latency_cycles
        h = h100[level].latency_cycles
        m = mi250[level].latency_cycles
        got_h = p / h - 1.0
        got_m = p / m - 1.0
        claims.append(
            Claim(
                f"PVC {level} latency vs H100",
                f"{rel['vs_h100']:+.0%}",
                f"{got_h:+.1%}",
                abs(got_h - rel["vs_h100"]) < 0.03,
            )
        )
        claims.append(
            Claim(
                f"PVC {level} latency vs MI250",
                f"{rel['vs_mi250']:+.0%}",
                f"{got_m:+.1%}",
                abs(got_m - rel["vs_mi250"]) < 0.03,
            )
        )
    claims.append(
        Claim(
            "PVC L1 larger than other GPUs' L1",
            "512 KiB Xe-Core L1",
            f"{pvc['L1'].capacity_bytes >> 10} KiB vs "
            f"{h100['L1'].capacity_bytes >> 10}/{mi250['L1'].capacity_bytes >> 10} KiB",
            pvc["L1"].capacity_bytes
            > max(h100["L1"].capacity_bytes, mi250["L1"].capacity_bytes),
        )
    )
    return claims


def miniqmc_inversion() -> list[Claim]:
    """Section V-B.1: miniQMC's six-GPU Aurora FOM is *below* the
    four-GPU Dawn FOM (CPU congestion), despite 1.5x the GPUs."""
    app = MiniQmc()
    aurora = _engine("aurora")
    dawn = _engine("dawn")
    fa = app.fom(aurora, aurora.node.n_stacks)
    fd = app.fom(dawn, dawn.node.n_stacks)
    mi250 = _engine("jlse-mi250")
    h100 = _engine("jlse-h100")
    f_mi = app.fom(mi250, 1)
    f_h = app.fom(h100, 1)
    f_stack = app.fom(aurora, 1)
    return [
        Claim("miniQMC: Aurora 6-GPU < Dawn 4-GPU",
              "15.64 < 16.28 (CPU congestion)",
              f"{fa:.2f} vs {fd:.2f}", fa < fd),
        Claim("miniQMC: MI250 order of magnitude slower",
              "software inefficiency penalty",
              f"H100 {f_h:.2f} vs MI250 GCD {f_mi:.2f}", f_h / f_mi > 5),
        Claim("miniQMC: H100 on par with one PVC stack",
              "3.89 vs 3.16-3.72",
              f"{f_h:.2f} vs {f_stack:.2f}",
              0.7 < f_stack / f_h < 1.3),
    ]


def all_claims() -> list[Claim]:
    """Every checked claim, in evaluation-section order."""
    out: list[Claim] = []
    out += scaling_efficiencies()
    out += fp32_fp64_ratio()
    out += gemm_efficiencies()
    out += pcie_full_node_scaling()
    out += xelink_slower_than_pcie()
    out += latency_relations()
    out += miniqmc_inversion()
    return out
