"""The paper's published numbers, as data.

Everything the evaluation section reports is recorded here so the test
suite and EXPERIMENTS.md generator can compare simulated output against
the publication cell by cell.  Units are SI base units (flop/s, B/s);
``None`` marks cells the paper prints as '-'.

Scope keys: ``1`` = One Stack / One GPU / One GCD, ``2`` = One PVC
(two stacks), ``"node"`` = the full node.
"""

from __future__ import annotations

from ..core.units import GIGA, PETA, TERA

__all__ = [
    "TABLE_II",
    "TABLE_III",
    "TABLE_IV",
    "TABLE_VI",
    "SCALING_QUOTES",
    "FIG1_RELATIVE_LATENCY",
    "MINIBUDE_PEAK_FRACTIONS",
    "scope_key",
]

# ---------------------------------------------------------------------------
# Table II: microbenchmark results (Aurora, Dawn).
# ---------------------------------------------------------------------------
TABLE_II: dict[str, dict[str, dict[object, float]]] = {
    "fp64_flops": {
        "aurora": {1: 17 * TERA, 2: 33 * TERA, "node": 195 * TERA},
        "dawn": {1: 20 * TERA, 2: 37 * TERA, "node": 140 * TERA},
    },
    "fp32_flops": {
        "aurora": {1: 23 * TERA, 2: 45 * TERA, "node": 268 * TERA},
        "dawn": {1: 26 * TERA, 2: 52 * TERA, "node": 207 * TERA},
    },
    "triad": {
        "aurora": {1: 1 * TERA, 2: 2 * TERA, "node": 12 * TERA},
        "dawn": {1: 1 * TERA, 2: 2 * TERA, "node": 8 * TERA},
    },
    "pcie_h2d": {
        "aurora": {1: 54 * GIGA, 2: 55 * GIGA, "node": 329 * GIGA},
        "dawn": {1: 53 * GIGA, 2: 54 * GIGA, "node": 218 * GIGA},
    },
    "pcie_d2h": {
        "aurora": {1: 53 * GIGA, 2: 56 * GIGA, "node": 264 * GIGA},
        "dawn": {1: 51 * GIGA, 2: 53 * GIGA, "node": 212 * GIGA},
    },
    "pcie_bidir": {
        "aurora": {1: 76 * GIGA, 2: 77 * GIGA, "node": 350 * GIGA},
        "dawn": {1: 72 * GIGA, 2: 72 * GIGA, "node": 285 * GIGA},
    },
    "dgemm": {
        "aurora": {1: 13 * TERA, 2: 26 * TERA, "node": 151 * TERA},
        "dawn": {1: 17 * TERA, 2: 30 * TERA, "node": 120 * TERA},
    },
    "sgemm": {
        "aurora": {1: 21 * TERA, 2: 42 * TERA, "node": 242 * TERA},
        "dawn": {1: 25 * TERA, 2: 48 * TERA, "node": 188 * TERA},
    },
    "hgemm": {
        "aurora": {1: 207 * TERA, 2: 411 * TERA, "node": 2.3 * PETA},
        "dawn": {1: 246 * TERA, 2: 509 * TERA, "node": 1.9 * PETA},
    },
    "bf16gemm": {
        "aurora": {1: 216 * TERA, 2: 434 * TERA, "node": 2.4 * PETA},
        "dawn": {1: 254 * TERA, 2: 501 * TERA, "node": 2.0 * PETA},
    },
    "tf32gemm": {
        "aurora": {1: 107 * TERA, 2: 208 * TERA, "node": 1.2 * PETA},
        "dawn": {1: 118 * TERA, 2: 200 * TERA, "node": 850 * TERA},
    },
    "i8gemm": {
        "aurora": {1: 448 * TERA, 2: 864 * TERA, "node": 5.0 * PETA},
        "dawn": {1: 525 * TERA, 2: 1.1 * PETA, "node": 4.1 * PETA},
    },
    "fft_1d": {
        "aurora": {1: 3.1 * TERA, 2: 5.9 * TERA, "node": 33 * TERA},
        "dawn": {1: 3.6 * TERA, 2: 6.6 * TERA, "node": 26 * TERA},
    },
    "fft_2d": {
        "aurora": {1: 3.4 * TERA, 2: 6.0 * TERA, "node": 34 * TERA},
        "dawn": {1: 3.6 * TERA, 2: 6.5 * TERA, "node": 25 * TERA},
    },
}

# ---------------------------------------------------------------------------
# Table III: stack-to-stack point-to-point (B/s).  Scope keys: "one" /
# "all" pairs.
# ---------------------------------------------------------------------------
TABLE_III: dict[str, dict[str, dict[str, float | None]]] = {
    "local_uni": {
        "aurora": {"one": 197 * GIGA, "all": 1129 * GIGA},
        "dawn": {"one": 196 * GIGA, "all": 786 * GIGA},
    },
    "local_bidir": {
        "aurora": {"one": 284 * GIGA, "all": 1661 * GIGA},
        "dawn": {"one": 287 * GIGA, "all": 1145 * GIGA},
    },
    "remote_uni": {
        "aurora": {"one": 15 * GIGA, "all": 95 * GIGA},
        "dawn": {"one": None, "all": None},
    },
    "remote_bidir": {
        "aurora": {"one": 23 * GIGA, "all": 142 * GIGA},
        "dawn": {"one": None, "all": None},
    },
}

# ---------------------------------------------------------------------------
# Table IV: reference GPU characteristics.
# ---------------------------------------------------------------------------
TABLE_IV: dict[str, dict[str, float | None]] = {
    "h100": {
        "fp32_peak": 67.0 * TERA,
        "fp64_peak": 34.0 * TERA,
        "sgemm": None,
        "dgemm": None,
        "mem_bw": 3.35 * TERA,  # the text uses 3.35 TB/s for the bars
        "pcie_bw": 128.0 * GIGA,
        "gcd_to_gcd": None,
    },
    "mi250": {
        "fp32_peak": 45.3 * TERA,
        "fp64_peak": 45.3 * TERA,
        "sgemm": None,
        "dgemm": None,
        "mem_bw": 3.2 * TERA,
        "pcie_bw": 64.0 * GIGA,
        "gcd_to_gcd": None,
    },
    "mi250x_gcd": {
        "fp32_peak": None,
        "fp64_peak": None,
        "sgemm": 33.8 * TERA,
        "dgemm": 24.1 * TERA,
        "mem_bw": 1.3 * TERA,
        "pcie_bw": 25.0 * GIGA,
        "gcd_to_gcd": 37.0 * GIGA,
    },
}

# ---------------------------------------------------------------------------
# Table VI: mini-app and application FOMs.  Scope keys: 1 (stack/GCD/GPU),
# 2 (one PVC / two ranks), "node".
# ---------------------------------------------------------------------------
TABLE_VI: dict[str, dict[str, dict[object, float | None]]] = {
    "minibude": {
        "aurora": {1: 293.02, 2: None, "node": None},
        "dawn": {1: 366.17, 2: None, "node": None},
        "jlse-h100": {1: 638.40, "node": None},
        "jlse-mi250": {1: 193.66, "node": None},
    },
    "cloverleaf": {
        "aurora": {1: 20.82, 2: 40.41, "node": 240.89},
        "dawn": {1: 22.46, 2: 41.92, "node": 167.15},
        "jlse-h100": {1: 65.87, "node": 261.37},
        "jlse-mi250": {1: 25.71, "node": 192.68},
    },
    "miniqmc": {
        "aurora": {1: 3.16, 2: 5.39, "node": 15.64},
        "dawn": {1: 3.72, 2: 6.85, "node": 16.28},
        "jlse-h100": {1: 3.89, "node": 12.32},
        "jlse-mi250": {1: 0.50, "node": 0.90},
    },
    "rimp2": {
        "aurora": {1: 19.44, 2: 38.50, "node": 197.08},
        "dawn": {1: 24.57, 2: 43.88, "node": 164.71},
        "jlse-h100": {1: 49.30, "node": 168.97},
        "jlse-mi250": {1: None, "node": None},
    },
    "openmc": {
        "aurora": {"node": 2039.0},
        "dawn": {"node": None},
        "jlse-h100": {"node": 1191.0},
        "jlse-mi250": {"node": 720.0},
    },
    "hacc": {
        "aurora": {"node": 13.81},
        "dawn": {"node": 12.26},
        "jlse-h100": {"node": 12.46},
        "jlse-mi250": {"node": 10.70},
    },
}

# ---------------------------------------------------------------------------
# Prose claims used as shape assertions.
# ---------------------------------------------------------------------------

#: Section IV-B.1/2: flops scaling efficiencies.
SCALING_QUOTES = {
    "aurora": {"two_stacks": 0.97, "full_node": 0.95},
    "dawn": {"two_stacks": 0.92, "full_node": 0.88},
}

#: Section IV-B.6: PVC latency relative to H100 and MI250 per level.
FIG1_RELATIVE_LATENCY = {
    "L1": {"vs_h100": +0.90, "vs_mi250": -0.51},
    "L2": {"vs_h100": +0.50, "vs_mi250": +0.78},
    "HBM": {"vs_h100": +0.23, "vs_mi250": +0.44},
}

#: Section V-B: miniBUDE achieved fraction of FP32 peak (prose, rounded).
MINIBUDE_PEAK_FRACTIONS = {
    "aurora": 0.45,
    "dawn": 0.49,
    "jlse-h100": 0.30,
    "jlse-mi250": 0.26,
}


def scope_key(n_stacks: int, node_stacks: int) -> object:
    """Map a stack count to this module's scope keys."""
    if n_stacks == node_stacks:
        return "node"
    return n_stacks
