"""Million-point design-space sweep campaigns.

The batch roofline engine (:mod:`repro.sim.batch`) evaluates whole
parameter grids as NumPy array ops; this package turns that capability
into a workload: declarative sweep specs (tile-size × ppwi × wgsize ×
precision × stack-count × system grids), chunked evaluation with
bounded memory, fork-worker sharding, top-K selection, NDJSON result
streams through the atomic io helpers, and a ``sweep.json`` summary
that the observability surfaces (``obs export``, ``trend``) and the
``BENCH_3.json`` perf gate consume.
"""

from .spec import SWEEP_SPEC_NAMES, SweepSpec, get_sweep_spec, load_sweep_spec
from .runner import SweepOutcome, run_sweep, sweep_main

__all__ = [
    "SWEEP_SPEC_NAMES",
    "SweepSpec",
    "SweepOutcome",
    "get_sweep_spec",
    "load_sweep_spec",
    "run_sweep",
    "sweep_main",
]
