"""Chunked execution of sweep specs over the batch engine.

The runner never materializes a design space: a chunk of global indices
is decomposed into per-axis value arrays with ``divmod`` array ops
(last axis fastest, mirroring the spec's declared order), the workload
family turns the values into :class:`~repro.sim.batch.KernelBatch`
columns, and one :meth:`~repro.sim.batch.BatchEngine.evaluate` call
rooflines the whole chunk.  Chunks shard across fork workers
(``--jobs``) and merge in chunk order, so the artifacts are
byte-identical to a serial run.

Artifacts (all through the atomic io helpers):

* ``sweep.json`` — the run summary (schema ``repro.sweep.summary/v1``):
  spec, point count, wall clock, batch points/s, the scalar-sampled
  speedup, the best point and the top-K table, per-chunk accounting;
* ``topk.ndjson`` — the top-K rows, one JSON object per line;
* ``results.ndjson`` (``--ndjson``) — every evaluated point.

A deterministically sampled subset re-evaluates through the scalar
:meth:`~repro.sim.engine.PerfEngine.roofline` golden reference; any
mismatch is a model bug and fails the run with
``ExitCode.MEASUREMENT``.  The same sample times the scalar path,
which is where the summary's ``batch_speedup`` (gated at >= 50x in
``BENCH_3.json``) comes from.
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import dataclass

import numpy as np

from ..dtypes import Precision
from ..errors import ConfigurationError, MeasurementError
from ..hw.frequency import WorkloadKind
from ..hw.systems import get_system
from ..ioutils import atomic_write_json, atomic_write_text
from ..sim.batch import BOUND_LABELS, KIND_CODES, KernelBatch
from ..sim.engine import PerfEngine
from ..sim.noise import QUIET
from .spec import NO_PRECISION, SweepSpec, load_sweep_spec

__all__ = [
    "SWEEP_SUMMARY_SCHEMA",
    "SweepOutcome",
    "run_sweep",
    "sweep_benchmark_entries",
    "sweep_main",
]

SWEEP_SUMMARY_SCHEMA = "repro.sweep.summary/v1"

#: Summary file a sweep run directory is recognized by (``obs export``
#: auto-detects it the way ``requests.ndjson`` marks a service dir).
SWEEP_FILE = "sweep.json"

#: Default points per chunk: ~17 MB of column data, small enough to
#: stay cache-friendly, large enough to amortize the per-chunk rate
#: resolution.
DEFAULT_CHUNK_POINTS = 262_144

#: Default scalar-verification sample size.
DEFAULT_VERIFY_SAMPLE = 64

#: The acceptance floor: the batch path must beat the scalar golden
#: reference by at least this factor in points per second.
SPEEDUP_FLOOR = 50.0

#: Storage bytes per precision code (indexed by code; the trailing
#: entry serves code -1, "no precision", which the engine rates as
#: FP32).
_ITEMSIZE = np.array(
    [float(p.itemsize) for p in Precision] + [4.0], dtype=np.float64
)

_LABEL_BY_CODE = {i: p.label for i, p in enumerate(Precision)}
_LABEL_BY_CODE[-1] = NO_PRECISION


# ---------------------------------------------------------------------------
# grid expansion
# ---------------------------------------------------------------------------


def _axis_values(
    spec: SweepSpec, sysname: str, offset: int, count: int
) -> dict[str, np.ndarray]:
    """Per-axis value arrays for global indices [offset, offset+count).

    The grid is row-major over (n_stacks, precision, *axes) with the
    last axis varying fastest — pure divmod arithmetic, no Python loop
    over points.
    """
    # 32-bit index arithmetic halves the expansion cost; fall back to
    # 64-bit only when a (huge) grid actually needs it.
    itype = np.int32 if offset + count <= np.iinfo(np.int32).max else np.int64
    axes: list[tuple[str, np.ndarray]] = [
        ("n_stacks", np.asarray(spec.stack_values(sysname), dtype=np.int64)),
        ("precision_code", np.asarray(spec.precision_codes(), dtype=np.int64)),
    ]
    axes.extend(
        (name, np.asarray(values, dtype=np.int64))
        for name, values in spec.axes
    )
    rem = np.arange(offset, offset + count, dtype=itype)
    out: dict[str, np.ndarray] = {}
    for name, values in reversed(axes):
        size = values.shape[0]
        out[name] = values[rem % size]
        rem = rem // size
    return out


# ---------------------------------------------------------------------------
# workload families: axis values -> kernel columns
# ---------------------------------------------------------------------------


def _gemm_tile(v: dict[str, np.ndarray]) -> dict:
    """A tile of C += A x B: the classic blocked-GEMM working point."""
    m, n, k = v["tile_m"], v["tile_n"], v["tile_k"]
    item = _ITEMSIZE[v["precision_code"]]
    return {
        "flops": 2.0 * (m * n * k),
        "bytes_read": (m * k + k * n).astype(np.float64) * item,
        "bytes_written": (m * n).astype(np.float64) * item,
        "working_set_bytes": (
            (m * k + k * n + m * n).astype(np.float64) * item
        ).astype(np.int64),
        "kind": WorkloadKind.GEMM,
    }


def _fma(v: dict[str, np.ndarray]) -> dict:
    """The FMA-chain microbenchmark family (pure compute)."""
    lanes, chain = v["lanes"], v["chain"]
    item = _ITEMSIZE[v["precision_code"]]
    return {
        "flops": 2.0 * (lanes * chain),
        "bytes_read": np.zeros(lanes.shape[0], dtype=np.float64),
        "bytes_written": np.zeros(lanes.shape[0], dtype=np.float64),
        "working_set_bytes": (lanes.astype(np.float64) * item).astype(
            np.int64
        ),
        "kind": WorkloadKind.FMA_CHAIN,
    }


def _stream(v: dict[str, np.ndarray]) -> dict:
    """STREAM-triad shapes at varying array footprints."""
    a = v["array_mib"].astype(np.float64) * float(1024 * 1024)
    return {
        "flops": 2.0 * (a / 8.0),
        "bytes_read": 2.0 * a,
        "bytes_written": 1.0 * a,
        "working_set_bytes": (3.0 * a).astype(np.int64),
        "kind": WorkloadKind.STREAM,
    }


def _bude(v: dict[str, np.ndarray]) -> dict:
    """miniBUDE's launch grid as a roofline space.

    Work per point follows the pose kernel's shape: ppwi poses per
    work-item over a 64 Ki work-item launch, with the protein-atom
    reload amortized across the poses each item holds (higher ppwi =
    fewer DRAM-visible bytes per interaction) and a register-footprint
    working set.
    """
    from ..miniapps.minibude import FLOPS_PER_INTERACTION

    ppwi, wgsize = v["ppwi"], v["wgsize"]
    items = 64.0 * 1024.0
    interactions = ppwi.astype(np.float64) * items * 256.0
    return {
        "flops": FLOPS_PER_INTERACTION * interactions,
        "bytes_read": interactions * (16.0 / ppwi.astype(np.float64)),
        "bytes_written": np.full(ppwi.shape[0], items * 4.0),
        "working_set_bytes": (
            wgsize.astype(np.float64)
            * (24.0 + 5.0 * ppwi.astype(np.float64))
            * 4.0
        ).astype(np.int64),
        "kind": WorkloadKind.FMA_CHAIN,
    }


def _mix(v: dict[str, np.ndarray]) -> dict:
    """An arithmetic-intensity ladder: intensity_q quarter-flops per
    byte over a size_kib footprint (sweeps across the ridge point)."""
    size = v["size_kib"].astype(np.float64) * 1024.0
    intensity = v["intensity_q"].astype(np.float64) / 4.0
    return {
        "flops": intensity * size,
        "bytes_read": 0.75 * size,
        "bytes_written": 0.25 * size,
        "working_set_bytes": size.astype(np.int64),
        "kind": WorkloadKind.STREAM,
    }


_WORKLOADS = {
    "gemm-tile": _gemm_tile,
    "fma": _fma,
    "stream": _stream,
    "bude": _bude,
    "mix": _mix,
}


def _chunk_batch(
    spec: SweepSpec, sysname: str, offset: int, count: int
) -> tuple[KernelBatch, dict[str, np.ndarray]]:
    """The KernelBatch for one chunk, plus the axis value arrays."""
    values = _axis_values(spec, sysname, offset, count)
    cols = _WORKLOADS[spec.workload](values)
    kind = cols.pop("kind")
    batch = KernelBatch(
        flops=np.ascontiguousarray(cols["flops"], dtype=np.float64),
        bytes_read=np.ascontiguousarray(cols["bytes_read"], dtype=np.float64),
        bytes_written=np.ascontiguousarray(
            cols["bytes_written"], dtype=np.float64
        ),
        working_set_bytes=np.ascontiguousarray(
            cols["working_set_bytes"], dtype=np.int64
        ),
        serial_chases=np.zeros(count, dtype=np.int64),
        precision_code=values["precision_code"].astype(np.int8),
        kind_code=np.full(count, KIND_CODES[kind], dtype=np.int8),
        n_stacks=values["n_stacks"].astype(np.int16),
    )
    return batch, values


# ---------------------------------------------------------------------------
# chunk execution (fork-worker entry point)
# ---------------------------------------------------------------------------

#: Per-process engine cache: fork workers evaluate many chunks of the
#: same few systems; the BatchEngine's rate caches stay warm across
#: chunks.
_ENGINES: dict[str, object] = {}


def _batch_engine(sysname: str):
    engine = _ENGINES.get(sysname)
    if engine is None:
        engine = PerfEngine(get_system(sysname), noise=QUIET).batch()
        _ENGINES[sysname] = engine
    return engine


def _ndjson_lines(
    spec: SweepSpec,
    sysname: str,
    offset: int,
    values: dict[str, np.ndarray],
    fom: np.ndarray,
    total_s: np.ndarray,
    bound_code: np.ndarray,
) -> str:
    """One JSON object per evaluated point, in index order."""
    axis_names = [name for name, _ in spec.axes]
    axis_cols = [values[name].tolist() for name in axis_names]
    stacks = values["n_stacks"].tolist()
    pcodes = values["precision_code"].tolist()
    foms = fom.tolist()
    totals = total_s.tolist()
    bounds = bound_code.tolist()
    lines = []
    for i in range(len(foms)):
        params = ", ".join(
            f'"{name}": {col[i]}'
            for name, col in zip(axis_names, axis_cols)
        )
        lines.append(
            f'{{"v": 1, "spec": "{spec.name}", "system": "{sysname}", '
            f'"index": {offset + i}, "n_stacks": {stacks[i]}, '
            f'"precision": "{_LABEL_BY_CODE[pcodes[i]]}", '
            f"\"params\": {{{params}}}, "
            f'"gflops": {foms[i] / 1e9!r}, "total_s": {totals[i]!r}, '
            f'"bound": "{BOUND_LABELS[bounds[i]]}"}}'
        )
    return "\n".join(lines)


def _chunk_worker(task: tuple) -> dict:
    """Evaluate one chunk; runs in the parent or in a fork worker."""
    spec_doc, sysname, chunk_index, offset, count, top_k, want_ndjson = task
    spec = SweepSpec.from_doc(spec_doc)
    engine = _batch_engine(sysname)
    t0 = time.perf_counter()
    batch, values = _chunk_batch(spec, sysname, offset, count)
    result = engine.evaluate(batch)
    # One shared total_s pass (flops_per_s/bound_code would each
    # recompute the property on a million-point chunk).
    total_s = result.total_s
    with np.errstate(divide="ignore", invalid="ignore"):
        fom = np.where(total_s > 0, batch.flops / total_s, 0.0)
    bound_code = result.bound_code
    wall_s = time.perf_counter() - t0
    k = min(top_k, count)
    if k < count:
        cand = np.argpartition(-fom, k - 1)[:k]
    else:
        cand = np.arange(count)
    # Deterministic order: fom descending, then local index ascending.
    cand = cand[np.lexsort((cand, -fom[cand]))]
    return {
        "chunk": chunk_index,
        "system": sysname,
        "offset": offset,
        "points": count,
        "wall_s": wall_s,
        "top_index": (offset + cand).tolist(),
        "top_fom": fom[cand].tolist(),
        "top_total_s": total_s[cand].tolist(),
        "top_bound": bound_code[cand].tolist(),
        "ndjson": (
            _ndjson_lines(
                spec, sysname, offset, values, fom, total_s, bound_code
            )
            if want_ndjson
            else None
        ),
    }


# ---------------------------------------------------------------------------
# top-K merge and row reconstruction
# ---------------------------------------------------------------------------


def _point_row(
    spec: SweepSpec,
    sysname: str,
    index: int,
    fom: float,
    total_s: float,
    bound_code: int,
) -> dict:
    """A full result row for one global index (axis values recomputed
    from the index — only the K winners ever pay this)."""
    values = _axis_values(spec, sysname, index, 1)
    row = {
        "spec": spec.name,
        "system": sysname,
        "index": index,
        "n_stacks": int(values["n_stacks"][0]),
        "precision": _LABEL_BY_CODE[int(values["precision_code"][0])],
        "params": {
            name: int(values[name][0]) for name, _ in spec.axes
        },
        "gflops": fom / 1e9,
        "total_s": total_s,
        "bound": BOUND_LABELS[bound_code],
    }
    return row


def _merge_topk(
    spec: SweepSpec, chunk_results: list[dict], top_k: int
) -> list[dict]:
    system_order = {name: i for i, name in enumerate(spec.systems)}
    rows: list[tuple] = []
    for res in chunk_results:
        for index, fom, total_s, bound in zip(
            res["top_index"],
            res["top_fom"],
            res["top_total_s"],
            res["top_bound"],
        ):
            rows.append(
                (-fom, system_order[res["system"]], index, total_s, bound,
                 res["system"])
            )
    rows.sort()
    return [
        _point_row(spec, sysname, index, -neg_fom, total_s, bound)
        for neg_fom, _, index, total_s, bound, sysname in rows[:top_k]
    ]


# ---------------------------------------------------------------------------
# scalar golden-reference sampling
# ---------------------------------------------------------------------------


def _scalar_check(
    spec: SweepSpec,
    segments: list[tuple[str, int, int]],
    sample: int,
) -> dict:
    """Re-evaluate a deterministic sample through the scalar engine.

    Returns the sample size, the scalar points-per-second measurement,
    and whether every sampled point matched the batch path bit for
    bit.  Mismatches raise (a model bug, not a perf regression).
    """
    total = sum(count for _, _, count in segments)
    sample = min(sample, total)
    if sample <= 0:
        return {"sample": 0, "points_per_s": None, "verified": False}
    picks = sorted({(i * total) // sample for i in range(sample)})
    specs: list[tuple[str, object, int]] = []
    for g in picks:
        for sysname, start, count in segments:
            if start <= g < start + count:
                local = g - start
                batch, _ = _chunk_batch(spec, sysname, local, 1)
                point = _batch_engine(sysname).evaluate(batch).point(0)
                kernel = batch.spec(0, name=f"{spec.name}[{sysname}:{local}]")
                n_stacks = int(batch.n_stacks[0])
                specs.append((sysname, kernel, n_stacks, point))
                break
    engines = {
        sysname: PerfEngine(get_system(sysname), noise=QUIET)
        for sysname in {s for s, _, _, _ in specs}
    }
    # Time the scalar path over enough passes to get off the clock
    # floor; each pass clears the memo so every call pays the real
    # evaluation cost a fresh sweep would.
    wall = 0.0
    evaluated = 0
    golden: list[object] = []
    while wall < 0.05 or not golden:
        first = not golden
        for engine in engines.values():
            engine.memo.clear()
        t0 = time.perf_counter()
        points = [
            engines[sysname].roofline(kernel, n_stacks)
            for sysname, kernel, n_stacks, _ in specs
        ]
        wall += time.perf_counter() - t0
        evaluated += len(points)
        if first:
            golden = points
    mismatches = [
        (entry[0], entry[1].name)
        for entry, scalar in zip(specs, golden)
        if scalar != entry[3]
    ]
    if mismatches:
        sysname, kernel = mismatches[0]
        raise MeasurementError(
            f"batch/scalar divergence on {len(mismatches)} of "
            f"{len(specs)} sampled point(s); first: {kernel} on {sysname}"
        )
    return {
        "sample": len(specs),
        "points_per_s": evaluated / wall if wall else None,
        "verified": True,
    }


# ---------------------------------------------------------------------------
# the sweep proper
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SweepOutcome:
    """What a sweep run produced (summary doc + the top-K rows)."""

    summary: dict
    topk: list[dict]

    @property
    def best(self) -> dict | None:
        return self.topk[0] if self.topk else None


def run_sweep(
    spec: SweepSpec,
    *,
    out_dir: str | os.PathLike | None = None,
    top_k: int = 16,
    chunk_points: int = DEFAULT_CHUNK_POINTS,
    jobs: int = 1,
    ndjson: bool = False,
    verify: int = DEFAULT_VERIFY_SAMPLE,
) -> SweepOutcome:
    """Evaluate *spec* end to end.

    Chunks are dispatched in deterministic order (systems in spec
    order, offsets ascending); with ``jobs > 1`` they shard across a
    fork pool and merge back in chunk order, so every artifact is
    byte-identical to a serial run.
    """
    if top_k < 1:
        raise ConfigurationError("top_k must be >= 1")
    if chunk_points < 1:
        raise ConfigurationError("chunk_points must be >= 1")
    if jobs < 1:
        raise ConfigurationError("jobs must be >= 1")
    spec_doc = spec.to_doc()
    tasks: list[tuple] = []
    segments: list[tuple[str, int, int]] = []
    start = 0
    for sysname in spec.systems:
        points = spec.system_points(sysname)
        segments.append((sysname, start, points))
        start += points
        for offset in range(0, points, chunk_points):
            count = min(chunk_points, points - offset)
            tasks.append(
                (spec_doc, sysname, len(tasks), offset, count, top_k, ndjson)
            )
    total_points = start
    t0 = time.perf_counter()
    if jobs > 1 and len(tasks) > 1:
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(processes=min(jobs, len(tasks))) as pool:
            chunk_results = pool.map(_chunk_worker, tasks)
    else:
        chunk_results = [_chunk_worker(task) for task in tasks]
    eval_wall_s = time.perf_counter() - t0
    points_per_s = total_points / eval_wall_s if eval_wall_s else None
    topk_rows = _merge_topk(spec, chunk_results, top_k)
    scalar = _scalar_check(spec, segments, verify)
    speedup = (
        points_per_s / scalar["points_per_s"]
        if points_per_s and scalar.get("points_per_s")
        else None
    )
    summary = {
        "schema": SWEEP_SUMMARY_SCHEMA,
        "spec": spec_doc,
        "points": total_points,
        "chunk_points": chunk_points,
        "jobs": jobs,
        "eval_wall_s": eval_wall_s,
        "points_per_s": points_per_s,
        "scalar": {**scalar, "speedup": speedup},
        "best": topk_rows[0] if topk_rows else None,
        "topk": topk_rows,
        "chunks": [
            {
                "chunk": res["chunk"],
                "system": res["system"],
                "offset": res["offset"],
                "points": res["points"],
                "wall_s": res["wall_s"],
            }
            for res in chunk_results
        ],
        "results": "results.ndjson" if ndjson else None,
    }
    if out_dir is not None:
        out_dir = os.fspath(out_dir)
        os.makedirs(out_dir, exist_ok=True)
        atomic_write_json(os.path.join(out_dir, SWEEP_FILE), summary)
        atomic_write_text(
            os.path.join(out_dir, "topk.ndjson"),
            "\n".join(json.dumps(row, sort_keys=True) for row in topk_rows)
            + "\n",
        )
        if ndjson:
            atomic_write_text(
                os.path.join(out_dir, "results.ndjson"),
                "\n".join(res["ndjson"] for res in chunk_results) + "\n",
            )
    return SweepOutcome(summary=summary, topk=topk_rows)


# ---------------------------------------------------------------------------
# benchmark entries (the BENCH_3 gate) and the CLI
# ---------------------------------------------------------------------------


def sweep_benchmark_entries(
    spec_name: str = "ci",
    *,
    jobs: int = 1,
    verify: int = DEFAULT_VERIFY_SAMPLE,
) -> list[dict]:
    """Baseline entries for ``pvc-bench profile sweep``.

    One entry per sweep spec, keyed ``sweep@<spec>``; ``fom`` carries
    the best point's GFLOP/s (deterministic — the model is exact), and
    ``points_per_s`` / ``batch_speedup`` carry the gated throughput
    figures (wall-clock-dependent, gated with the wide service-style
    tolerance).
    """
    spec = load_sweep_spec(spec_name)
    outcome = run_sweep(spec, jobs=jobs, verify=verify)
    summary = outcome.summary
    best = outcome.best or {}
    return [
        {
            "bench": "sweep",
            "system": spec.name,
            "points": summary["points"],
            "wall_s": summary["eval_wall_s"],
            "points_per_s": summary["points_per_s"],
            "batch_speedup": summary["scalar"]["speedup"],
            "scalar_points_per_s": summary["scalar"]["points_per_s"],
            "verified_sample": summary["scalar"]["sample"],
            "fom": best.get("gflops", 0.0),
        }
    ]


def render_summary(summary: dict, topk: list[dict]) -> str:
    """Human-readable sweep report."""
    scalar = summary["scalar"]
    lines = [
        f"# sweep {summary['spec']['name']}: {summary['points']:,} points "
        f"in {summary['eval_wall_s']:.3f}s "
        f"({summary['points_per_s'] / 1e6:.1f} M points/s, "
        f"{len(summary['chunks'])} chunk(s), jobs={summary['jobs']})",
    ]
    if scalar.get("points_per_s"):
        lines.append(
            f"# scalar reference: {scalar['points_per_s'] / 1e3:.1f} k "
            f"points/s over {scalar['sample']} sampled point(s) -> "
            f"batch speedup x{scalar['speedup']:.0f}, "
            f"bit-for-bit {'OK' if scalar['verified'] else 'UNVERIFIED'}"
        )
    lines.append(
        f"{'rank':>4} {'system':<10} {'stacks':>6} {'prec':>5} "
        f"{'params':<28} {'GFLOP/s':>12} {'bound':<8}"
    )
    for rank, row in enumerate(topk, start=1):
        params = ",".join(f"{k}={v}" for k, v in row["params"].items())
        lines.append(
            f"{rank:>4} {row['system']:<10} {row['n_stacks']:>6} "
            f"{row['precision']:>5} {params:<28} {row['gflops']:>12.1f} "
            f"{row['bound']:<8}"
        )
    return "\n".join(lines)


def sweep_main(args) -> int:
    """Dispatch ``pvc-bench sweep <spec|spec.json> [--dir out] ...``."""
    spec = load_sweep_spec(args.bench)
    outcome = run_sweep(
        spec,
        out_dir=args.dir,
        top_k=args.top_k or 16,
        chunk_points=args.chunk or DEFAULT_CHUNK_POINTS,
        jobs=args.jobs or 1,
        ndjson=bool(args.ndjson),
        verify=(
            args.verify if args.verify is not None else DEFAULT_VERIFY_SAMPLE
        ),
    )
    print(render_summary(outcome.summary, outcome.topk))
    if args.dir:
        wrote = ["sweep.json", "topk.ndjson"]
        if args.ndjson:
            wrote.append("results.ndjson")
        print(
            f"artifacts written to {args.dir}: {', '.join(wrote)}",
            file=sys.stderr,
        )
    return 0
