"""Declarative sweep specifications.

A :class:`SweepSpec` names a design space, not a result: a workload
family (how axis values become kernel descriptors), the systems to
evaluate on, the precision and stack-count scopes, and the parameter
axes proper (tile sizes, lane counts, ppwi, work-group sizes, ...).
The runner (:mod:`.runner`) expands the cross product lazily — a chunk
of global indices turns into per-axis value arrays with a few ``divmod``
array ops, never a Python loop over points — so a million-point spec
costs a few hundred bytes until evaluated.

Builtin specs cover the paper's exploration needs (a test-sized
``smoke``, the ~140k-point ``ci`` gate sweep, the ≥10^6-point
``million`` space, the miniBUDE launch grid, and an instruction-mix
space across all four systems); arbitrary spaces load from JSON files
with the ``repro.sweep.spec/v1`` schema.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from ..dtypes import Precision
from ..errors import ConfigurationError
from ..hw.systems import SYSTEM_NAMES, get_system

__all__ = [
    "SWEEP_SPEC_NAMES",
    "SWEEP_SPEC_SCHEMA",
    "WORKLOAD_NAMES",
    "SweepSpec",
    "get_sweep_spec",
    "load_sweep_spec",
]

SWEEP_SPEC_SCHEMA = "repro.sweep.spec/v1"

#: Workload families the runner knows how to turn into kernel columns,
#: with the axes each one requires (in grid order).
_WORKLOAD_AXES: dict[str, tuple[str, ...]] = {
    "gemm-tile": ("tile_m", "tile_n", "tile_k"),
    "fma": ("lanes", "chain"),
    "stream": ("array_mib",),
    "bude": ("ppwi", "wgsize"),
    "mix": ("intensity_q", "size_kib"),
}

WORKLOAD_NAMES: tuple[str, ...] = tuple(sorted(_WORKLOAD_AXES))

#: Precision label used in specs/rows for "no precision" (pure data
#: movement; the engine rates it as FP32).
NO_PRECISION = "none"


def _precision_code(label: str) -> int:
    from ..sim.batch import PRECISION_CODES

    if label == NO_PRECISION:
        return PRECISION_CODES[None]
    try:
        return PRECISION_CODES[Precision.from_label(label)]
    except ValueError as exc:
        raise ConfigurationError(str(exc)) from None


@dataclass(frozen=True)
class SweepSpec:
    """One declarative design space.

    Attributes
    ----------
    name:
        Spec label (rides into ``sweep.json`` and baseline entries).
    workload:
        Workload family; decides which axes are required and how axis
        values become kernel descriptors (see :data:`WORKLOAD_NAMES`).
    systems:
        System names (grid-outermost; each system's sub-grid is
        evaluated on its own engine).
    precisions:
        Precision labels (``"fp64"``, ..., or ``"none"``).
    stacks:
        Explicit stack counts, or ``"all"`` for 1..n_stacks per system
        (so Aurora contributes 12 scopes where Dawn contributes 8).
    axes:
        Ordered ``(name, values)`` pairs; the last axis varies fastest.
    description:
        One line for ``pvc-bench sweep --list`` style surfaces.
    """

    name: str
    workload: str
    systems: tuple[str, ...]
    precisions: tuple[str, ...]
    stacks: tuple[int, ...] | str
    axes: tuple[tuple[str, tuple[int, ...]], ...]
    description: str = ""

    def __post_init__(self) -> None:
        if self.workload not in _WORKLOAD_AXES:
            raise ConfigurationError(
                f"unknown sweep workload {self.workload!r}; known: "
                + ", ".join(WORKLOAD_NAMES)
            )
        required = _WORKLOAD_AXES[self.workload]
        names = tuple(name for name, _ in self.axes)
        if names != required:
            raise ConfigurationError(
                f"workload {self.workload!r} needs axes {required}, "
                f"spec {self.name!r} has {names}"
            )
        if not self.systems:
            raise ConfigurationError(f"spec {self.name!r} names no systems")
        for sysname in self.systems:
            get_system(sysname)  # raises UnknownSystemError early
        if not self.precisions:
            raise ConfigurationError(
                f"spec {self.name!r} names no precisions"
            )
        for label in self.precisions:
            _precision_code(label)
        if isinstance(self.stacks, str):
            if self.stacks != "all":
                raise ConfigurationError(
                    f"stacks must be explicit counts or 'all', "
                    f"got {self.stacks!r}"
                )
        elif not self.stacks or any(s < 1 for s in self.stacks):
            raise ConfigurationError(
                f"spec {self.name!r} has an empty or non-positive "
                "stack list"
            )
        for axis, values in self.axes:
            if not values:
                raise ConfigurationError(
                    f"spec {self.name!r} axis {axis!r} is empty"
                )
            if any(v < 1 for v in values):
                raise ConfigurationError(
                    f"spec {self.name!r} axis {axis!r} has non-positive "
                    "values"
                )

    # -- geometry ----------------------------------------------------------

    def stack_values(self, sysname: str) -> tuple[int, ...]:
        """The stack-count scope for one system."""
        if self.stacks == "all":
            return tuple(range(1, get_system(sysname).n_stacks + 1))
        n = get_system(sysname).n_stacks
        bad = [s for s in self.stacks if s > n]
        if bad:
            raise ConfigurationError(
                f"spec {self.name!r} asks for {max(bad)} stack(s) on "
                f"{sysname} (has {n})"
            )
        return tuple(self.stacks)

    def precision_codes(self) -> tuple[int, ...]:
        return tuple(_precision_code(label) for label in self.precisions)

    def system_points(self, sysname: str) -> int:
        """Grid size of one system's sub-grid."""
        n = len(self.stack_values(sysname)) * len(self.precisions)
        for _, values in self.axes:
            n *= len(values)
        return n

    def n_points(self) -> int:
        """Total points across every system."""
        return sum(self.system_points(s) for s in self.systems)

    # -- serialization -----------------------------------------------------

    def to_doc(self) -> dict:
        return {
            "schema": SWEEP_SPEC_SCHEMA,
            "name": self.name,
            "workload": self.workload,
            "systems": list(self.systems),
            "precisions": list(self.precisions),
            "stacks": (
                self.stacks if isinstance(self.stacks, str)
                else list(self.stacks)
            ),
            "axes": [[name, list(values)] for name, values in self.axes],
            "description": self.description,
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "SweepSpec":
        if not isinstance(doc, dict) or doc.get("schema") != SWEEP_SPEC_SCHEMA:
            raise ConfigurationError(
                "not a sweep spec document (expected schema "
                f"{SWEEP_SPEC_SCHEMA!r}, got "
                f"{doc.get('schema') if isinstance(doc, dict) else None!r})"
            )
        stacks = doc.get("stacks", "all")
        return cls(
            name=str(doc["name"]),
            workload=str(doc["workload"]),
            systems=tuple(str(s) for s in doc["systems"]),
            precisions=tuple(str(p) for p in doc["precisions"]),
            stacks=(
                stacks if isinstance(stacks, str)
                else tuple(int(s) for s in stacks)
            ),
            axes=tuple(
                (str(name), tuple(int(v) for v in values))
                for name, values in doc["axes"]
            ),
            description=str(doc.get("description", "")),
        )


def _tile_axis(lo: int, hi: int, step: int) -> tuple[int, ...]:
    return tuple(range(lo, hi + 1, step))


#: The builtin design spaces.  ``million`` is the acceptance space:
#: 48 x 48 tile shapes x 4 depths x 6 precisions x every stack scope of
#: Aurora (12) and Dawn (8) = 9216 x 4 x 6 x 20 / 4 ... = 1,105,920
#: points, all through the batch path in one CLI invocation.  The PVC
#: and H100 calibrations cover all six GEMM precisions; MI250 lacks
#: TF32, so the cross-system ``mix`` space sticks to the vector
#: precisions.
_BUILTIN_SPECS: dict[str, SweepSpec] = {
    spec.name: spec
    for spec in (
        SweepSpec(
            name="smoke",
            workload="gemm-tile",
            systems=("aurora",),
            precisions=("fp64", "fp32"),
            stacks=(1, 2),
            axes=(
                ("tile_m", (64, 128, 256)),
                ("tile_n", (64, 128, 256)),
                ("tile_k", (16, 32)),
            ),
            description="72-point test space (fast enough for unit tests)",
        ),
        SweepSpec(
            name="ci",
            workload="gemm-tile",
            systems=("aurora", "dawn"),
            precisions=("fp64", "fp32", "fp16", "bf16", "tf32", "i8"),
            stacks="all",
            axes=(
                ("tile_m", _tile_axis(16, 384, 16)),
                ("tile_n", _tile_axis(16, 384, 16)),
                ("tile_k", (16, 32)),
            ),
            description="~138k-point PVC tile space (the BENCH_3 gate sweep)",
        ),
        SweepSpec(
            name="million",
            workload="gemm-tile",
            systems=("aurora", "dawn"),
            precisions=("fp64", "fp32", "fp16", "bf16", "tf32", "i8"),
            stacks="all",
            axes=(
                ("tile_m", _tile_axis(16, 768, 16)),
                ("tile_n", _tile_axis(16, 768, 16)),
                ("tile_k", (16, 32, 64, 128)),
            ),
            description=">=10^6-point tile space (the acceptance sweep)",
        ),
        SweepSpec(
            name="bude-tune",
            workload="bude",
            systems=("aurora", "dawn"),
            precisions=("fp32",),
            stacks=(1,),
            axes=(
                ("ppwi", (1, 2, 4, 8, 16, 32, 64, 128)),
                ("wgsize", (32, 64, 128, 256, 512, 1024)),
            ),
            description="miniBUDE launch grid as a roofline space",
        ),
        SweepSpec(
            name="mix",
            workload="mix",
            systems=SYSTEM_NAMES,
            precisions=("fp64", "fp32"),
            stacks="all",
            axes=(
                ("intensity_q", (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)),
                ("size_kib", (64, 256, 1024, 4096, 16384)),
            ),
            description="arithmetic-intensity ladder across all four systems",
        ),
    )
}

SWEEP_SPEC_NAMES: tuple[str, ...] = tuple(sorted(_BUILTIN_SPECS))


def get_sweep_spec(name: str) -> SweepSpec:
    """A builtin spec by name."""
    try:
        return _BUILTIN_SPECS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown sweep spec {name!r}; builtin: "
            + ", ".join(SWEEP_SPEC_NAMES)
        ) from None


def load_sweep_spec(name_or_path: str) -> SweepSpec:
    """A builtin spec by name, or a JSON spec file by path."""
    if name_or_path in _BUILTIN_SPECS:
        return _BUILTIN_SPECS[name_or_path]
    path = Path(name_or_path)
    if not path.exists():
        raise ConfigurationError(
            f"no builtin sweep spec and no spec file at {name_or_path!r}; "
            f"builtin: {', '.join(SWEEP_SPEC_NAMES)}"
        )
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"sweep spec {path} is not valid JSON: {exc}"
        ) from exc
    return SweepSpec.from_doc(doc)


# Re-exported for the runner (the axis contract belongs to the
# workload registry, not to the dataclass API).
WORKLOAD_AXES = _WORKLOAD_AXES
