"""repro: a reproduction of "Ponte Vecchio Across the Atlantic" (SC 2024).

Single-node benchmarking of Intel PVC systems (Aurora, Dawn) against
NVIDIA H100 and AMD MI250 nodes — rebuilt on a simulated hardware
substrate (see DESIGN.md for the substitution rationale).

Quick start::

    from repro import PerfEngine, get_system, Precision
    engine = PerfEngine(get_system("aurora"))
    engine.fma_rate(Precision.FP64)        # ~17e12, Table II
    engine.stream_bw()                     # ~1e12

    from repro.analysis import table_ii
    print(table_ii().render())
"""

from .dtypes import Precision
from .errors import (
    BuildError,
    CalibrationError,
    ConfigurationError,
    NotMeasuredError,
    ReproError,
    TopologyError,
    UnknownBenchmarkError,
    UnknownSystemError,
)
from .hw.ids import StackRef
from .hw.systems import SYSTEM_NAMES, System, all_systems, get_system
from .sim.engine import PerfEngine
from .sim.noise import NoiseModel

__version__ = "1.0.0"

__all__ = [
    "Precision",
    "BuildError",
    "CalibrationError",
    "ConfigurationError",
    "NotMeasuredError",
    "ReproError",
    "TopologyError",
    "UnknownBenchmarkError",
    "UnknownSystemError",
    "StackRef",
    "SYSTEM_NAMES",
    "System",
    "all_systems",
    "get_system",
    "PerfEngine",
    "NoiseModel",
    "__version__",
]
