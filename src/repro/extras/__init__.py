"""Extras: the Top500 headline benchmarks (HPL/HPCG) on a node."""

from .hpcg import (
    CgResult,
    HpcgModel,
    HplModel,
    build_hpcg_operator,
    conjugate_gradient,
)

__all__ = [
    "CgResult",
    "HpcgModel",
    "HplModel",
    "build_hpcg_operator",
    "conjugate_gradient",
]
