"""HPCG-style conjugate-gradient benchmark.

The paper's introduction situates Dawn (#51) and Aurora (#2) on the June
2024 Top500 via LINPACK and HPCG, noting those machine-scale results "are
not always useful for application optimizations".  This module provides
the single-node analogue so the two headline benchmarks can be related to
the microbenchmarks:

* a **real CG solver** on the HPCG operator — the symmetric positive
  definite 27-point stencil on a 3D grid — with optional symmetric
  Gauss-Seidel preconditioning, validated against direct solves;
* a **performance model**: HPCG is bandwidth-bound (its arithmetic
  intensity is ~0.25 flop/byte, far left of every GPU's ridge point), so
  node HPCG flops ~ stream bandwidth x intensity — which is why Aurora's
  HPCG fraction-of-peak is tiny compared to its HPL number.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..dtypes import Precision
from ..sim.engine import PerfEngine

__all__ = [
    "build_hpcg_operator",
    "CgResult",
    "conjugate_gradient",
    "HpcgModel",
    "HplModel",
]


def build_hpcg_operator(n: int) -> sp.csr_matrix:
    """The HPCG matrix: 27-point stencil on an n^3 grid.

    Diagonal 26, off-diagonals -1 to every 3D neighbour (the reference
    HPCG problem); symmetric positive definite.
    """
    if n < 2:
        raise ValueError("grid must be at least 2^3")
    idx = np.arange(n**3).reshape(n, n, n)
    rows, cols, vals = [], [], []
    offsets = [
        (dx, dy, dz)
        for dx in (-1, 0, 1)
        for dy in (-1, 0, 1)
        for dz in (-1, 0, 1)
    ]
    for dx, dy, dz in offsets:
        src = idx[
            max(0, -dx) : n - max(0, dx),
            max(0, -dy) : n - max(0, dy),
            max(0, -dz) : n - max(0, dz),
        ]
        dst = idx[
            max(0, dx) : n - max(0, -dx),
            max(0, dy) : n - max(0, -dy),
            max(0, dz) : n - max(0, -dz),
        ]
        rows.append(src.ravel())
        cols.append(dst.ravel())
        value = 26.0 if (dx, dy, dz) == (0, 0, 0) else -1.0
        vals.append(np.full(src.size, value))
    matrix = sp.csr_matrix(
        (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
        shape=(n**3, n**3),
    )
    return matrix


@dataclass(frozen=True)
class CgResult:
    x: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool


def _sym_gauss_seidel(a: sp.csr_matrix):
    """Symmetric Gauss-Seidel preconditioner (HPCG's smoother)."""
    lower = sp.tril(a, format="csr")
    upper = sp.triu(a, format="csr")
    diag = a.diagonal()

    def apply(r: np.ndarray) -> np.ndarray:
        y = spla.spsolve_triangular(lower, r, lower=True)
        return spla.spsolve_triangular(upper, diag * y, lower=False)

    return apply


def conjugate_gradient(
    a: sp.csr_matrix,
    b: np.ndarray,
    tol: float = 1e-8,
    max_iter: int = 500,
    preconditioned: bool = True,
) -> CgResult:
    """(Preconditioned) conjugate gradients, the HPCG iteration."""
    if b.ndim != 1 or a.shape[0] != b.shape[0]:
        raise ValueError("shape mismatch")
    precond = _sym_gauss_seidel(a) if preconditioned else (lambda r: r)
    x = np.zeros_like(b)
    r = b - a @ x
    z = precond(r)
    p = z.copy()
    rz = float(r @ z)
    b_norm = float(np.linalg.norm(b)) or 1.0
    for iteration in range(1, max_iter + 1):
        ap = a @ p
        alpha = rz / float(p @ ap)
        x += alpha * p
        r -= alpha * ap
        res = float(np.linalg.norm(r))
        if res / b_norm < tol:
            return CgResult(x, iteration, res, True)
        z = precond(r)
        rz_new = float(r @ z)
        p = z + (rz_new / rz) * p
        rz = rz_new
    return CgResult(x, max_iter, float(np.linalg.norm(r)), False)


class HpcgModel:
    """Single-node HPCG rate from the bandwidth model.

    HPCG moves ~(27 nonzeros x 12 B + vectors) per row per iteration for
    ~54 flops: an arithmetic intensity near 0.25 flop/B.  Bandwidth-bound
    everywhere, so: HPCG flops ~ stream_bw x intensity x overhead.
    """

    #: Effective flops per DRAM byte of the full CG iteration.
    INTENSITY = 0.25
    #: Fraction of stream bandwidth HPCG's irregular access sustains.
    ACCESS_EFFICIENCY = 0.72

    def __init__(self, engine: PerfEngine) -> None:
        self.engine = engine

    def node_rate(self) -> float:
        """Modelled node HPCG flop/s."""
        bw = self.engine.stream_bw(self.engine.node.n_stacks)
        return bw * self.INTENSITY * self.ACCESS_EFFICIENCY

    def fraction_of_peak(self) -> float:
        """HPCG/peak — the tiny ratio the Top500 HPCG list shows."""
        return self.node_rate() / self.engine.fma_rate(
            Precision.FP64, self.engine.node.n_stacks
        )


class HplModel:
    """Single-node HPL (LINPACK) rate: DGEMM-bound by construction."""

    #: HPL sustains most of DGEMM (panel factorisation overhead).
    DGEMM_FRACTION = 0.92

    def __init__(self, engine: PerfEngine) -> None:
        self.engine = engine

    def node_rate(self) -> float:
        return (
            self.engine.gemm_rate(Precision.FP64, self.engine.node.n_stacks)
            * self.DGEMM_FRACTION
        )

    def fraction_of_peak(self) -> float:
        return self.node_rate() / self.engine.fma_rate(
            Precision.FP64, self.engine.node.n_stacks
        )
